//! Monte-Carlo-style chained cross-validation: feed each digest back as
//! the next message for hundreds of iterations, on three independent
//! execution paths (host reference, simulated vector processor, simulated
//! scalar core). Any divergence anywhere in any path compounds and is
//! caught at the end.

use keccak_rvv::baselines::ScalarKeccak;
use keccak_rvv::core::{KernelKind, VectorKeccakEngine};
use keccak_rvv::sha3::{PermutationBackend, Sha3_256};

fn chain<B: PermutationBackend>(mut backend: B, iterations: usize) -> [u8; 32] {
    let mut digest = [0u8; 32];
    for i in 0..iterations {
        let mut hasher = Sha3_256::with_backend(&mut backend);
        hasher.update(&digest);
        hasher.update(&(i as u32).to_le_bytes());
        digest = hasher.finalize();
    }
    digest
}

#[test]
fn three_hundred_chained_digests_agree_across_backends() {
    const ITERATIONS: usize = 300;
    let reference = chain(keccak_rvv::sha3::ReferenceBackend::new(), ITERATIONS);
    let vector64 = chain(VectorKeccakEngine::new(KernelKind::E64Lmul8, 2), ITERATIONS);
    assert_eq!(reference, vector64, "64-bit vector engine diverged");
    let vector32 = chain(VectorKeccakEngine::new(KernelKind::E32Lmul8, 1), ITERATIONS);
    assert_eq!(reference, vector32, "32-bit vector engine diverged");
}

#[test]
fn chained_digests_agree_with_scalar_core() {
    // The scalar core is ~20× slower to simulate; keep the chain shorter.
    const ITERATIONS: usize = 40;
    let reference = chain(keccak_rvv::sha3::ReferenceBackend::new(), ITERATIONS);
    let scalar = chain(ScalarKeccak::new(), ITERATIONS);
    assert_eq!(reference, scalar, "scalar baseline diverged");
}

#[test]
fn fused_and_ablation_kernels_agree_over_a_chain() {
    const ITERATIONS: usize = 100;
    let reference = chain(keccak_rvv::sha3::ReferenceBackend::new(), ITERATIONS);
    let fused = chain(VectorKeccakEngine::new(KernelKind::E64Fused, 1), ITERATIONS);
    assert_eq!(reference, fused, "fused vrhopi kernel diverged");
    let ablation = chain(
        VectorKeccakEngine::new(KernelKind::E64Lmul41, 3),
        ITERATIONS,
    );
    assert_eq!(reference, ablation, "LMUL=4+1 ablation kernel diverged");
}
