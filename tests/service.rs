//! Workspace-level guard on the serving layer: the continuous-batching
//! service must degrade gracefully when an engine-pool worker dies —
//! the in-flight batch fails once, is retried on the survivors, and
//! every batch formed afterwards completes at the reduced width.
//!
//! The finer-grained behaviours (backpressure, deadlines, all-workers
//! lost) are unit-tested inside `krv-service`; this test exercises the
//! whole lifecycle through the public API only.

use krv_service::{HashRequest, Service, ServiceConfig, Ticket};
use krv_sha3::{Sha3_256, Shake128};
use krv_testkit::Rng;
use std::time::Duration;

#[test]
fn service_survives_a_worker_loss_and_keeps_serving() {
    // slots = 2 workers × SN 2 = 4 and a wide batching window: every
    // burst below closes only once all four requests are queued, so the
    // doomed batch deterministically spans the killed worker.
    let service = Service::start(ServiceConfig {
        sn: 2,
        workers: 2,
        max_wait: Duration::from_secs(2),
        ..ServiceConfig::default()
    });
    let mut rng = Rng::new(0x00DE_6ADE);

    // A healthy burst first, so the failure hits a warmed-up service.
    let healthy: Vec<Vec<u8>> = (0..4).map(|i| rng.bytes(40 + i * 31)).collect();
    let tickets: Vec<Ticket> = healthy
        .iter()
        .map(|m| service.submit(HashRequest::sha3_256(m.clone())).unwrap())
        .collect();
    for (message, ticket) in healthy.iter().zip(tickets) {
        let completion = ticket.wait();
        assert_eq!(
            completion.result.expect("healthy burst"),
            Sha3_256::digest(message)
        );
        assert!(!completion.timing.retried);
    }

    // Kill worker 1. The next batch is dispatched across both workers,
    // fails mid-flight, and is retried once on the survivor — callers
    // only ever observe correct digests and a `retried` timing flag.
    service.inject_worker_failure(1);
    let doomed: Vec<Vec<u8>> = (0..4).map(|i| rng.bytes(100 + i * 53)).collect();
    let tickets: Vec<Ticket> = doomed
        .iter()
        .map(|m| {
            service
                .submit(HashRequest::shake128(m.clone(), 32))
                .unwrap()
        })
        .collect();
    for (message, ticket) in doomed.iter().zip(tickets) {
        let completion = ticket.wait();
        assert_eq!(
            completion.result.expect("retry on the survivor succeeds"),
            Shake128::digest(message, 32)
        );
        assert!(completion.timing.retried, "the killed batch was retried");
    }
    // Later batches: the service now forms 2-slot batches on the
    // surviving worker. Three more bursts, all first-try successes.
    for burst in 0..3 {
        let messages: Vec<Vec<u8>> = (0..2).map(|i| rng.bytes(10 + burst * 64 + i)).collect();
        let tickets: Vec<Ticket> = messages
            .iter()
            .map(|m| service.submit(HashRequest::sha3_256(m.clone())).unwrap())
            .collect();
        for (message, ticket) in messages.iter().zip(tickets) {
            let completion = ticket.wait();
            assert_eq!(
                completion.result.expect("degraded service still serves"),
                Sha3_256::digest(message),
                "burst {burst} digest"
            );
            assert!(!completion.timing.retried, "survivor batches are clean");
            assert!(completion.timing.batch_slots <= 2, "width stayed reduced");
        }
    }
    // The scheduler publishes a batch's stats before forming the next
    // one, so with the degraded bursts done the retry is visible.
    let mid = service.metrics();
    assert_eq!(mid.alive_workers, 1, "effective workers dropped");
    assert_eq!(mid.batch_slots, 2, "batch width shrank with the pool");
    assert_eq!(mid.retries, 1, "exactly one retry for the lost batch");
    assert_eq!(mid.worker_failures, 0, "no caller saw the failure");

    let report = service.shutdown();
    assert_eq!(report.completed, 14, "4 healthy + 4 retried + 6 degraded");
    assert_eq!(report.retries, 1);
    assert_eq!(report.worker_failures, 0);
    assert_eq!(report.timeouts, 0);
    assert_eq!(report.rejected, 0);
    assert_eq!(report.alive_workers, 1);
    assert_eq!(
        report.e2e_ns.count, 14,
        "every success has a latency sample"
    );
}
