//! Guards on the reproduced numbers: the paper's Tables 7/8 cycle
//! figures and the §4.2 ratios must keep reproducing.

use keccak_rvv::area::{slices, AreaArch};
use keccak_rvv::baselines::{paper_rows, ScalarKeccak};
use keccak_rvv::core::{KernelKind, VectorKeccakEngine};

#[test]
fn cycles_per_round_are_the_papers() {
    for (kind, expected) in [
        (KernelKind::E64Lmul1, 103u64),
        (KernelKind::E64Lmul8, 75),
        (KernelKind::E32Lmul8, 147),
    ] {
        let mut engine = VectorKeccakEngine::new(kind, 1);
        let metrics = engine.measure().expect("kernel runs");
        assert_eq!(metrics.cycles_per_round, expected, "{kind}");
        assert_eq!(
            Some(metrics.cycles_per_round),
            kind.paper_cycles_per_round()
        );
    }
}

#[test]
fn permutation_latency_within_one_percent_of_paper() {
    for kind in KernelKind::ALL {
        let mut engine = VectorKeccakEngine::new(kind, 3);
        let metrics = engine.measure().expect("kernel runs");
        let paper = kind.paper_permutation_cycles().expect("paper kernel") as f64;
        let delta = (metrics.permutation_cycles as f64 - paper).abs() / paper;
        assert!(
            delta < 0.01,
            "{kind}: measured {} vs paper {paper}",
            metrics.permutation_cycles
        );
    }
}

#[test]
fn table7_throughput_figures_reproduce() {
    // Paper Table 7 throughput column, (bits/cycle) × 10⁻³.
    let expectations = [
        (KernelKind::E64Lmul1, 1, 624.02),
        (KernelKind::E64Lmul1, 3, 1872.07),
        (KernelKind::E64Lmul1, 6, 3744.15),
        (KernelKind::E64Lmul8, 1, 845.67),
        (KernelKind::E64Lmul8, 3, 2537.00),
        (KernelKind::E64Lmul8, 6, 5073.00),
    ];
    for (kind, states, expected) in expectations {
        let mut engine = VectorKeccakEngine::new(kind, states);
        let measured = engine
            .measure()
            .expect("kernel runs")
            .throughput_millibits_per_cycle();
        let delta = (measured - expected).abs() / expected;
        assert!(
            delta < 0.01,
            "{kind} × {states}: measured {measured:.2} vs paper {expected:.2}"
        );
    }
}

#[test]
fn table8_throughput_figures_reproduce() {
    let expectations = [(1usize, 441.98), (3, 1325.97), (6, 2651.93)];
    for (states, expected) in expectations {
        let mut engine = VectorKeccakEngine::new(KernelKind::E32Lmul8, states);
        let measured = engine
            .measure()
            .expect("kernel runs")
            .throughput_millibits_per_cycle();
        let delta = (measured - expected).abs() / expected;
        assert!(
            delta < 0.01,
            "32-bit × {states}: measured {measured:.2} vs paper {expected:.2}"
        );
    }
}

#[test]
fn area_columns_reproduce_paper_tables() {
    for (elenum, expected) in [(5usize, 7323.0), (15, 24789.0), (30, 48180.0)] {
        assert_eq!(slices(AreaArch::Simd64, elenum), expected);
    }
    for (elenum, expected) in [(5usize, 6359.0), (15, 23408.0), (30, 48036.0)] {
        assert_eq!(slices(AreaArch::Simd32, elenum), expected);
    }
}

#[test]
fn section42_winners_hold() {
    // Who wins, per paper §4.2 — checked on live measurements.
    let mut lmul1 = VectorKeccakEngine::new(KernelKind::E64Lmul1, 6);
    let mut lmul8 = VectorKeccakEngine::new(KernelKind::E64Lmul8, 6);
    let mut e32 = VectorKeccakEngine::new(KernelKind::E32Lmul8, 6);
    let t_lmul1 = lmul1.measure().unwrap().throughput_millibits_per_cycle();
    let t_lmul8 = lmul8.measure().unwrap().throughput_millibits_per_cycle();
    let t_e32 = e32.measure().unwrap().throughput_millibits_per_cycle();
    // LMUL=8 beats LMUL=1 by ~1.35×.
    let f = t_lmul8 / t_lmul1;
    assert!((1.3..1.4).contains(&f), "LMUL8/LMUL1 = {f:.3}");
    // 64-bit runs about twice as fast as 32-bit.
    let f = t_lmul8 / t_e32;
    assert!((1.8..2.05).contains(&f), "64/32 = {f:.3}");
    // Against every published comparator, the vector design wins by a
    // large margin (paper: 45.7× vs MIPS Coproc, 43.2× vs DASIP,
    // 5.3× vs Rawat).
    for row in paper_rows() {
        let ours = if row.table7 { t_lmul8 } else { t_e32 };
        assert!(
            ours > 2.0 * row.throughput_millibits,
            "{} should lose clearly (ours {ours:.1} vs {:.1})",
            row.name,
            row.throughput_millibits
        );
    }
    // And the measured scalar baseline loses by well over an order of
    // magnitude.
    let scalar = ScalarKeccak::new()
        .measure()
        .unwrap()
        .throughput_millibits_per_cycle();
    assert!(
        t_e32 / scalar > 20.0,
        "32-bit vs scalar = {:.1}×",
        t_e32 / scalar
    );
}

#[test]
fn latency_constant_as_states_scale() {
    for kind in KernelKind::ALL {
        let mut cycles = Vec::new();
        for states in [1usize, 3, 6] {
            let mut engine = VectorKeccakEngine::new(kind, states);
            cycles.push(engine.measure().unwrap().permutation_cycles);
        }
        assert!(
            cycles.windows(2).all(|w| w[0] == w[1]),
            "{kind}: {cycles:?}"
        );
    }
}
