//! The paper's §5 future work, end to end: CRYSTALS-Kyber K-PKE key
//! generation with every Keccak invocation (G, the SHAKE128 matrix
//! expansion, the SHAKE256 PRF) executed on the simulated SIMD processor
//! with custom vector extensions.

use keccak_rvv::core::{KernelKind, VectorKeccakEngine};
use keccak_rvv::kyber::{keygen, KyberParams};
use keccak_rvv::sha3::ReferenceBackend;

#[test]
fn kyber768_keygen_on_the_vector_processor() {
    let seed = [0xA7u8; 32];
    let reference = keygen(KyberParams::KYBER768, &seed, ReferenceBackend::new());
    let mut engine = VectorKeccakEngine::new(KernelKind::E64Lmul8, 6);
    let accelerated = keygen(KyberParams::KYBER768, &seed, &mut engine);
    assert_eq!(reference, accelerated, "keys must be backend-independent");
    assert!(
        engine.permutations() >= 4,
        "matrix + secrets expansion used the hardware ({} passes)",
        engine.permutations()
    );
}

#[test]
fn kyber1024_matrix_uses_six_state_batches() {
    // Kyber1024 expands 16 XOF streams; a 6-state engine covers them in
    // ceil(16/6) = 3 hardware passes per permutation step.
    let seed = [0x11u8; 32];
    let mut engine = VectorKeccakEngine::new(KernelKind::E64Lmul8, 6);
    let keypair = keygen(KyberParams::KYBER1024, &seed, &mut engine);
    assert_eq!(keypair.t_hat.len(), 4);
    let reference = keygen(KyberParams::KYBER1024, &seed, ReferenceBackend::new());
    assert_eq!(keypair, reference);
}

#[test]
fn thirty_two_bit_architecture_also_works() {
    let seed = [0xC3u8; 32];
    let reference = keygen(KyberParams::KYBER512, &seed, ReferenceBackend::new());
    let mut engine = VectorKeccakEngine::new(KernelKind::E32Lmul8, 3);
    assert_eq!(keygen(KyberParams::KYBER512, &seed, &mut engine), reference);
}

#[test]
fn full_pke_round_trip_on_the_vector_processor() {
    use keccak_rvv::kyber::{decrypt, encrypt};
    let params = KyberParams::KYBER768;
    let seed = [0x3Cu8; 32];
    let mut engine = VectorKeccakEngine::new(KernelKind::E64Lmul8, 6);
    let keypair = keygen(params, &seed, &mut engine);
    let message = *b"a secret worth 32 bytes exactly!";
    let ciphertext = encrypt(params, &keypair, &message, &[0x77u8; 32], &mut engine);
    assert_eq!(decrypt(params, &keypair, &ciphertext), message);
    // The same ciphertext decrypts identically when produced on the host.
    let host_ct = encrypt(
        params,
        &keypair,
        &message,
        &[0x77u8; 32],
        ReferenceBackend::new(),
    );
    assert_eq!(ciphertext, host_ct, "ciphertexts are backend-independent");
}

#[test]
fn keccak_work_per_keygen_is_accounted() {
    // How much device Keccak work one Kyber768 keygen needs: G (1 pass
    // batch-of-1) + matrix (9 XOF streams → 2 six-state passes × absorb +
    // squeeze blocks) + PRF (6 streams → 1 pass). The exact count is a
    // stable regression value for the cost model.
    let mut engine = VectorKeccakEngine::new(KernelKind::E64Lmul8, 6);
    let _ = keygen(KyberParams::KYBER768, &[1u8; 32], &mut engine);
    let passes = engine.permutations();
    assert!(
        (5..=40).contains(&passes),
        "unexpected hardware pass count {passes}"
    );
    if let Some(metrics) = engine.last_metrics() {
        let total_keccak_cycles = passes * metrics.permutation_cycles;
        // Order of magnitude: tens of thousands of device cycles.
        assert!(total_keccak_cycles > 10_000 && total_keccak_cycles < 200_000);
    }
}
