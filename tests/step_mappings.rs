//! Step-by-step validation: each phase of the vector kernels, executed
//! in isolation on the simulator, must match the corresponding reference
//! step mapping (θ, ρ, π, χ, ι) from `krv-keccak`.

use keccak_rvv::asm::assemble;
use keccak_rvv::isa::{Lmul, Sew, VReg, Vtype, XReg};
use keccak_rvv::keccak::{steps, KeccakState};
use keccak_rvv::vproc::{Processor, ProcessorConfig};

const ELENUM: usize = 10; // two states
const STATES: usize = 2;

fn sample_states() -> Vec<KeccakState> {
    (0..STATES)
        .map(|s| {
            let mut lanes = [0u64; 25];
            for (i, lane) in lanes.iter_mut().enumerate() {
                *lane = (0x9E37_79B9_7F4A_7C15u64)
                    .wrapping_mul(i as u64 + 1)
                    .wrapping_add(s as u64 * 0x1234_5678_9ABC_DEF1);
            }
            KeccakState::from_lanes(lanes)
        })
        .collect()
}

/// Loads states plane-per-plane into v0–v4 of a 64-bit processor.
fn load_states(cpu: &mut Processor, states: &[KeccakState]) {
    let vu = cpu.vector_unit_mut();
    vu.set_config(
        ELENUM as u32,
        Vtype::new(Sew::E64, Lmul::M1).tail_undisturbed(),
    )
    .expect("config");
    for (s, state) in states.iter().enumerate() {
        for y in 0..5 {
            for x in 0..5 {
                vu.write_elem_sew(VReg::from_index(y), 5 * s + x, Sew::E64, state.lane(x, y));
            }
        }
    }
}

/// Reads states back from the given base register group.
fn read_states(cpu: &Processor, base: usize) -> Vec<KeccakState> {
    let vu = cpu.vector_unit();
    (0..STATES)
        .map(|s| {
            let mut state = KeccakState::new();
            for y in 0..5 {
                for x in 0..5 {
                    state.set_lane(
                        x,
                        y,
                        vu.read_elem_sew(VReg::from_index(base + y), 5 * s + x, Sew::E64),
                    );
                }
            }
            state
        })
        .collect()
}

fn run_snippet(body: &str, states: &[KeccakState]) -> Processor {
    let source =
        format!("li s1, {ELENUM}\nli s2, -1\nvsetvli x0, s1, e64, m1, tu, mu\n{body}\necall\n");
    let program = assemble(&source).expect("snippet assembles");
    let mut cpu = Processor::new(ProcessorConfig::elen64(ELENUM));
    cpu.load_program(program.instructions());
    load_states(&mut cpu, states);
    cpu.run(100_000).expect("snippet runs");
    cpu
}

#[test]
fn theta_sequence_matches_reference() {
    let states = sample_states();
    let cpu = run_snippet(
        "vxor.vv v5, v3, v4\n\
         vxor.vv v6, v1, v2\n\
         vxor.vv v7, v0, v6\n\
         vxor.vv v5, v5, v7\n\
         vslideupm.vi v6, v5, 1\n\
         vslidedownm.vi v7, v5, 1\n\
         vrotup.vi v7, v7, 1\n\
         vxor.vv v5, v6, v7\n\
         vxor.vv v0, v0, v5\n\
         vxor.vv v1, v1, v5\n\
         vxor.vv v2, v2, v5\n\
         vxor.vv v3, v3, v5\n\
         vxor.vv v4, v4, v5",
        &states,
    );
    let results = read_states(&cpu, 0);
    for (result, state) in results.iter().zip(&states) {
        assert_eq!(*result, steps::theta(state));
    }
}

#[test]
fn rho_sequence_matches_reference() {
    let states = sample_states();
    let cpu = run_snippet(
        "v64rho.vi v0, v0, 0\n\
         v64rho.vi v1, v1, 1\n\
         v64rho.vi v2, v2, 2\n\
         v64rho.vi v3, v3, 3\n\
         v64rho.vi v4, v4, 4",
        &states,
    );
    let results = read_states(&cpu, 0);
    for (result, state) in results.iter().zip(&states) {
        assert_eq!(*result, steps::rho(state));
    }
}

#[test]
fn pi_sequence_matches_reference() {
    let states = sample_states();
    let cpu = run_snippet(
        "vpi.vi v5, v0, 0\n\
         vpi.vi v5, v1, 1\n\
         vpi.vi v5, v2, 2\n\
         vpi.vi v5, v3, 3\n\
         vpi.vi v5, v4, 4",
        &states,
    );
    let results = read_states(&cpu, 5);
    for (result, state) in results.iter().zip(&states) {
        assert_eq!(*result, steps::pi(state));
    }
}

#[test]
fn chi_sequence_matches_reference() {
    let states = sample_states();
    // χ consumes the π output registers v5–v9 in the kernel; here feed
    // the raw states through π-less χ by first copying v0–v4 to v5–v9.
    let cpu = run_snippet(
        "vmv.v.v v5, v0\n\
         vmv.v.v v6, v1\n\
         vmv.v.v v7, v2\n\
         vmv.v.v v8, v3\n\
         vmv.v.v v9, v4\n\
         vslidedownm.vi v10, v5, 1\n\
         vslidedownm.vi v11, v6, 1\n\
         vslidedownm.vi v12, v7, 1\n\
         vslidedownm.vi v13, v8, 1\n\
         vslidedownm.vi v14, v9, 1\n\
         vxor.vx v10, v10, s2\n\
         vxor.vx v11, v11, s2\n\
         vxor.vx v12, v12, s2\n\
         vxor.vx v13, v13, s2\n\
         vxor.vx v14, v14, s2\n\
         vslidedownm.vi v15, v5, 2\n\
         vslidedownm.vi v16, v6, 2\n\
         vslidedownm.vi v17, v7, 2\n\
         vslidedownm.vi v18, v8, 2\n\
         vslidedownm.vi v19, v9, 2\n\
         vand.vv v10, v10, v15\n\
         vand.vv v11, v11, v16\n\
         vand.vv v12, v12, v17\n\
         vand.vv v13, v13, v18\n\
         vand.vv v14, v14, v19\n\
         vxor.vv v0, v5, v10\n\
         vxor.vv v1, v6, v11\n\
         vxor.vv v2, v7, v12\n\
         vxor.vv v3, v8, v13\n\
         vxor.vv v4, v9, v14",
        &states,
    );
    let results = read_states(&cpu, 0);
    for (result, state) in results.iter().zip(&states) {
        assert_eq!(*result, steps::chi(state));
    }
}

#[test]
fn iota_instruction_matches_reference() {
    let states = sample_states();
    for round in [0usize, 7, 23] {
        let cpu = run_snippet(&format!("li s3, {round}\nviota.vx v0, v0, s3"), &states);
        let results = read_states(&cpu, 0);
        for (result, state) in results.iter().zip(&states) {
            assert_eq!(*result, steps::iota(state, round), "round {round}");
        }
    }
}

#[test]
fn full_round_sequence_matches_round_trace() {
    use keccak_rvv::keccak::steps::RoundTrace;
    let states = sample_states();
    let trace = RoundTrace::capture(&states[0], 0);
    // One full LMUL=1 round via the engine-generated kernel (single
    // round: set s4 = 1).
    let kernel = keccak_rvv::core::programs::kernel_e64_lmul1(ELENUM);
    let one_round = kernel.source.replace("li s4, 24", "li s4, 1");
    let program = assemble(&one_round).expect("assembles");
    let mut cpu = Processor::new(ProcessorConfig::elen64(ELENUM));
    keccak_rvv::core::layout::write_states_64(cpu.dmem_mut(), 0, ELENUM, &states)
        .expect("states fit");
    for &(reg, addr) in &kernel.presets {
        cpu.set_xreg(reg, addr);
    }
    cpu.load_program(program.instructions());
    cpu.run(100_000).expect("runs");
    let results =
        keccak_rvv::core::layout::read_states_64(cpu.dmem(), 0, ELENUM, STATES).expect("reads");
    assert_eq!(results[0], trace.after_iota);
    let _ = cpu.xreg(XReg::X0);
}
