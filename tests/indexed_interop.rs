//! The paper's §3.2 interoperability claim, exercised end-to-end: with
//! the high/low lane split (rather than bit interleaving), a Keccak
//! state stored as an ordinary contiguous 200-byte buffer can be moved
//! into the 32-bit architecture's split register layout directly with
//! **indexed vector loads** — no pre-/post-processing pass over the data.

use keccak_rvv::asm::assemble;
use keccak_rvv::isa::{Sew, VReg};
use keccak_rvv::keccak::KeccakState;
use keccak_rvv::vproc::{Processor, ProcessorConfig};

/// Gathers plane `y` of a state stored FIPS-style at `state_base` into
/// low words (v1) and high words (v2) using `vluxei32`, then scatters it
/// back to a second buffer with `vsuxei32` — all through the vector LSU.
#[test]
fn split_registers_via_indexed_loads() {
    let source = r"
        li s1, 5
        vsetvli x0, s1, e32, m1, tu, mu
        li a1, 1024          # index vector (low-word offsets) lives here
        vle32.v v8, (a1)     # v8 = byte offsets of the 5 low words
        vadd.vi v9, v8, 4    # high words sit 4 bytes above the low words
        li a0, 0             # state base
        vluxei32.v v1, (a0), v8
        vluxei32.v v2, (a0), v9
        li a2, 2048          # write-back buffer
        vsuxei32.v v1, (a2), v8
        vsuxei32.v v2, (a2), v9
        ecall
    ";
    let program = assemble(source).expect("assembles");
    let mut cpu = Processor::new(ProcessorConfig::elen32(5));

    // A distinctive state, serialized as the standard contiguous buffer.
    let mut state = KeccakState::new();
    for x in 0..5 {
        state.set_lane(x, 2, 0x1111_2222_0000_0000u64 * (x as u64 + 1) + x as u64);
    }
    cpu.dmem_mut().write_bytes(0, &state.to_bytes()).unwrap();

    // Index vector: byte offsets of plane y=2's five lanes (lane (x, 2)
    // starts at 8·(x + 10) in the FIPS layout).
    for x in 0..5u32 {
        cpu.dmem_mut()
            .write(1024 + 4 * x, 4, (8 * (x + 10)) as u64)
            .unwrap();
    }

    cpu.load_program(program.instructions());
    cpu.run(10_000).expect("runs");

    // Registers hold the split halves, exactly as Figure 6 requires.
    let vu = cpu.vector_unit();
    for x in 0..5usize {
        let lane = state.lane(x, 2);
        assert_eq!(vu.read_elem_sew(VReg::V1, x, Sew::E32), lane & 0xFFFF_FFFF);
        assert_eq!(vu.read_elem_sew(VReg::V2, x, Sew::E32), lane >> 32);
    }

    // And the scatter reproduced the lanes in the second buffer.
    for x in 0..5u32 {
        let addr = 2048 + 8 * (x + 10);
        let lane =
            cpu.dmem().read(addr, 4).unwrap() | (cpu.dmem().read(addr + 4, 4).unwrap() << 32);
        assert_eq!(lane, state.lane(x as usize, 2));
    }
}

/// Contrast case the paper raises: with bit interleaving, the same
/// exchange needs a software transform on every word, which the split
/// layout avoids entirely.
#[test]
fn bit_interleaving_needs_a_software_transform() {
    use keccak_rvv::keccak::interleave::{deinterleave, interleave, split_lane};
    let lane = 0x0123_4567_89AB_CDEFu64;
    // Hi/lo split is a pure type-level view: the memory bytes of the
    // halves are the memory bytes of the lane.
    let (lo, hi) = split_lane(lane);
    assert_eq!(((hi as u64) << 32) | lo as u64, lane);
    // Interleaving is not: the even/odd words do not appear anywhere in
    // the lane's natural byte representation.
    let (even, odd) = interleave(lane);
    assert_ne!(((odd as u64) << 32) | even as u64, lane);
    assert_eq!(deinterleave(even, odd), lane);
}
