//! Workspace-level remote hashing guard: the daemon's wire algorithm
//! ids against the conformance KAT vectors, end to end over loopback.
//!
//! Every [`WireAlgorithm`] maps onto exactly one conformance
//! [`Algorithm`]; each suite's short KAT tier is submitted over a real
//! socket and checked against the published digests. A mis-numbered
//! algorithm id, a sponge-parameter mix-up in [`WireAlgorithm::params`]
//! or an output-length bug on the wire all land here as a digest
//! mismatch naming the algorithm and vector.

use keccak_rvv::server::protocol::encode_tuple_payload;
use keccak_rvv::server::{AlgorithmParams, Client, Server, ServerConfig, WireAlgorithm};
use keccak_rvv::sha3::hex;
use krv_conformance::{vectors, Algorithm, DerivedAlgorithm, DerivedVector};
use krv_service::ServiceConfig;
use std::time::Duration;

/// The wire id an algorithm travels as. Exhaustive: a new conformance
/// algorithm without a wire id fails to compile here.
fn wire(algorithm: Algorithm) -> WireAlgorithm {
    match algorithm {
        Algorithm::Sha3_224 => WireAlgorithm::Sha3_224,
        Algorithm::Sha3_256 => WireAlgorithm::Sha3_256,
        Algorithm::Sha3_384 => WireAlgorithm::Sha3_384,
        Algorithm::Sha3_512 => WireAlgorithm::Sha3_512,
        Algorithm::Shake128 => WireAlgorithm::Shake128,
        Algorithm::Shake256 => WireAlgorithm::Shake256,
    }
}

/// The wire id an SP 800-185 derived function travels as. Exhaustive
/// for the same reason as [`wire`].
fn derived_wire(algorithm: DerivedAlgorithm) -> WireAlgorithm {
    match algorithm {
        DerivedAlgorithm::CShake128 => WireAlgorithm::CShake128,
        DerivedAlgorithm::CShake256 => WireAlgorithm::CShake256,
        DerivedAlgorithm::Kmac128 => WireAlgorithm::Kmac128,
        DerivedAlgorithm::Kmac256 => WireAlgorithm::Kmac256,
        DerivedAlgorithm::TupleHash128 => WireAlgorithm::TupleHash128,
        DerivedAlgorithm::TupleHash256 => WireAlgorithm::TupleHash256,
        DerivedAlgorithm::ParallelHash128 => WireAlgorithm::ParallelHash128,
        DerivedAlgorithm::ParallelHash256 => WireAlgorithm::ParallelHash256,
        DerivedAlgorithm::KrvTree256 => WireAlgorithm::TreeHash256,
    }
}

/// The wire parameter block a conformance vector hashes under.
fn wire_params(vector: &DerivedVector) -> AlgorithmParams {
    match vector.algorithm {
        DerivedAlgorithm::CShake128 | DerivedAlgorithm::CShake256 => {
            AlgorithmParams::cshake(vector.name, vector.customization)
        }
        DerivedAlgorithm::Kmac128 | DerivedAlgorithm::Kmac256 => {
            AlgorithmParams::kmac(vector.key, vector.customization)
        }
        DerivedAlgorithm::TupleHash128
        | DerivedAlgorithm::TupleHash256
        | DerivedAlgorithm::KrvTree256 => AlgorithmParams::customization(vector.customization),
        DerivedAlgorithm::ParallelHash128 | DerivedAlgorithm::ParallelHash256 => {
            AlgorithmParams::parallel_hash(vector.block_size as u32, vector.customization)
        }
    }
}

/// The wire payload for a vector: TupleHash entries travel
/// length-framed; everything else travels raw.
fn wire_payload(vector: &DerivedVector) -> Vec<u8> {
    let message = vector.message.bytes();
    if vector.tuple_splits.is_empty() {
        return message;
    }
    let mut at = 0;
    let entries: Vec<&[u8]> = vector
        .tuple_splits
        .iter()
        .map(|&len| {
            let entry = &message[at..at + len];
            at += len;
            entry
        })
        .collect();
    encode_tuple_payload(&entries)
}

fn quick_config() -> ServerConfig {
    ServerConfig {
        service: ServiceConfig {
            max_wait: Duration::from_micros(200),
            ..ServiceConfig::default()
        },
        ..ServerConfig::default()
    }
}

#[test]
fn the_wire_algorithm_ids_cover_the_conformance_roster_exactly() {
    // FIPS 202 ids 1..=6 cover the conformance roster; the SP 800-185
    // ids 7..=15 cover the derived functions. Together they are ALL.
    assert_eq!(Algorithm::ALL.len(), WireAlgorithm::FIPS.len());
    assert_eq!(
        Algorithm::ALL.len() + DerivedAlgorithm::ALL.len(),
        WireAlgorithm::ALL.len()
    );
    for algorithm in Algorithm::ALL {
        let on_wire = wire(algorithm);
        // Ids are stable protocol surface: 1..=6 in FIPS 202 order.
        let position = WireAlgorithm::ALL
            .iter()
            .position(|w| *w == on_wire)
            .expect("wire id is in ALL");
        assert_eq!(on_wire.id() as usize, position + 1);
        assert_eq!(WireAlgorithm::from_id(on_wire.id()), Ok(on_wire));
    }
    for (offset, algorithm) in DerivedAlgorithm::ALL.into_iter().enumerate() {
        let on_wire = derived_wire(algorithm);
        // 7..=15 in SP 800-185 presentation order, KRV tree last.
        assert_eq!(on_wire.id() as usize, Algorithm::ALL.len() + offset + 1);
        assert_eq!(WireAlgorithm::from_id(on_wire.id()), Ok(on_wire));
        assert!(!on_wire.is_fips());
    }
}

#[test]
fn every_sp800_185_vector_round_trips_over_the_wire() {
    let server = Server::bind("127.0.0.1:0", quick_config()).expect("bind");
    let client = Client::connect(server.local_addr()).expect("connect");
    for vector in krv_conformance::sp800::VECTORS {
        let algorithm = derived_wire(vector.algorithm);
        let digest = client
            .hash_with(
                algorithm,
                wire_params(vector),
                &wire_payload(vector),
                vector.output_len,
            )
            .expect("SP 800-185 digest over the wire");
        assert_eq!(
            hex(&digest),
            vector.digest_hex,
            "{} KAT, {} byte message",
            algorithm.name(),
            vector.message.len()
        );
    }
    let report = server.shutdown();
    assert_eq!(report.worker_failures, 0);
}

#[test]
fn every_short_kat_vector_round_trips_over_the_wire() {
    let server = Server::bind("127.0.0.1:0", quick_config()).expect("bind");
    let client = Client::connect(server.local_addr()).expect("connect");
    let mut vectors_checked = 0u64;
    for suite in &vectors::SUITES {
        let algorithm = wire(suite.algorithm);
        // The whole suite is pipelined on the socket at once; replies
        // land by request id, not arrival order.
        let pending: Vec<_> = suite
            .short
            .iter()
            .map(|entry| {
                let message = entry.message.bytes();
                client
                    .submit(algorithm, &message, entry.output_len, None)
                    .expect("submit KAT vector")
            })
            .collect();
        for (entry, pending) in suite.short.iter().zip(pending) {
            let digest = pending.wait_digest().expect("KAT digest");
            assert_eq!(
                hex(&digest),
                entry.digest_hex,
                "{} KAT, {} byte message",
                algorithm.name(),
                entry.message.len()
            );
            vectors_checked += 1;
        }
    }
    let report = server.shutdown();
    assert_eq!(report.completed, vectors_checked);
    assert_eq!(report.worker_failures, 0);
}

#[test]
fn shutdown_drains_a_kat_burst_that_is_still_in_flight() {
    let server = Server::bind("127.0.0.1:0", quick_config()).expect("bind");
    let client = Client::connect(server.local_addr()).expect("connect");
    let suite = vectors::SUITES
        .iter()
        .find(|s| s.algorithm == Algorithm::Shake128)
        .expect("SHAKE128 suite");
    let pending: Vec<_> = suite
        .short
        .iter()
        .map(|entry| {
            let message = entry.message.bytes();
            client
                .submit(WireAlgorithm::Shake128, &message, entry.output_len, None)
                .expect("submit")
        })
        .collect();
    // The stats reply is a read barrier: the server has admitted every
    // request submitted before it on this socket.
    client.stats().expect("stats");
    let report = server.shutdown();
    for (entry, pending) in suite.short.iter().zip(pending) {
        let digest = pending
            .wait_digest()
            .expect("in-flight KAT answers during graceful shutdown");
        assert_eq!(hex(&digest), entry.digest_hex);
    }
    assert_eq!(report.completed, suite.short.len() as u64);
}
