//! Cross-crate end-to-end tests: random states through every kernel,
//! SHA-3 known answers on the simulated hardware, lockstep batches.

use keccak_rvv::core::{KernelKind, VectorKeccakEngine};
use keccak_rvv::keccak::{keccak_f1600, KeccakState};
use keccak_rvv::sha3::{hex, BatchSponge, Sha3_256, Sha3_512, Shake128, SpongeParams, Xof};
use krv_testkit::Rng;

fn random_states(rng: &mut Rng, n: usize) -> Vec<KeccakState> {
    (0..n)
        .map(|_| {
            let mut lanes = [0u64; 25];
            for lane in lanes.iter_mut() {
                *lane = rng.next_u64();
            }
            KeccakState::from_lanes(lanes)
        })
        .collect()
}

#[test]
fn random_states_through_every_kernel() {
    let mut rng = Rng::new(0xC0FFEE);
    for kind in KernelKind::ALL {
        for sn in [1usize, 2, 3, 6] {
            let mut engine = VectorKeccakEngine::new(kind, sn);
            for _ in 0..3 {
                let mut states = random_states(&mut rng, sn);
                let mut expected = states.clone();
                engine.permute_slice(&mut states).expect("kernel runs");
                for state in &mut expected {
                    keccak_f1600(state);
                }
                assert_eq!(states, expected, "{kind} SN={sn}");
            }
        }
    }
}

#[test]
fn sha3_kats_on_the_simulated_processor() {
    // FIPS-202 known answers computed entirely on the simulated SIMD
    // processor with custom vector extensions.
    let engine = VectorKeccakEngine::new(KernelKind::E32Lmul8, 1);
    let mut hasher = Sha3_256::with_backend(engine);
    hasher.update(b"abc");
    assert_eq!(
        hex(&hasher.finalize()),
        "3a985da74fe225b2045c172d6bd390bd855f086e3e9d525b46bfe24511431532"
    );
    let engine = VectorKeccakEngine::new(KernelKind::E64Lmul1, 1);
    let mut hasher = Sha3_512::with_backend(engine);
    hasher.update(b"");
    assert_eq!(
        hex(&hasher.finalize()),
        "a69f73cca23a9ac5c8b567dc185a756e97c982164fe25859e0d1dcc1475c80a6\
         15b2123af1f5f94c11e3e9402c3ac558f500199d95b6d3e301758586281dcd26"
    );
}

#[test]
fn shake_streaming_on_the_simulated_processor() {
    let engine = VectorKeccakEngine::new(KernelKind::E64Lmul8, 1);
    let mut simulated = Shake128::with_backend(engine);
    simulated.update(b"stream me");
    let mut reference = Shake128::new();
    reference.update(b"stream me");
    // Cross several squeeze blocks (rate = 168 bytes).
    for len in [10usize, 158, 168, 500] {
        assert_eq!(simulated.squeeze(len), reference.squeeze(len), "len {len}");
    }
}

#[test]
fn batch_on_hardware_matches_batch_on_software() {
    let inputs: Vec<Vec<u8>> = (0..6u8).map(|i| vec![i ^ 0x5A; 333]).collect();
    let refs: Vec<&[u8]> = inputs.iter().map(|v| v.as_slice()).collect();

    let mut hw = BatchSponge::new(
        SpongeParams::shake(256),
        VectorKeccakEngine::new(KernelKind::E64Lmul8, 6),
        6,
    );
    hw.absorb(&refs);
    let hw_out = hw.squeeze(256);

    let mut sw = BatchSponge::new(
        SpongeParams::shake(256),
        keccak_rvv::sha3::ReferenceBackend::new(),
        6,
    );
    sw.absorb(&refs);
    assert_eq!(hw_out, sw.squeeze(256));
}

#[test]
fn engines_report_monotone_permutation_counts() {
    let mut engine = VectorKeccakEngine::new(KernelKind::E64Lmul1, 2);
    assert_eq!(engine.permutations(), 0);
    let mut states = vec![KeccakState::new(); 4];
    engine.permute_slice(&mut states).unwrap();
    assert_eq!(engine.permutations(), 2, "two chunks of two");
}

#[test]
fn mixed_backends_agree_on_long_messages() {
    let message: Vec<u8> = (0..100_000u32).map(|i| (i * 7 + 3) as u8).collect();
    let expected = Sha3_256::digest(&message);
    let mut hasher = Sha3_256::with_backend(VectorKeccakEngine::new(KernelKind::E64Lmul8, 1));
    hasher.update(&message);
    assert_eq!(hasher.finalize(), expected);
}
