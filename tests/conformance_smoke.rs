//! Workspace-level conformance smoke: the short-KAT tier of the
//! differential conformance suite, sized to stay fast in a debug build.
//!
//! The deeper tiers run through the `conformance` binary
//! (`cargo run --release -p krv-conformance -- --smoke` in CI,
//! `--full` nightly); this test guards the same machinery from plain
//! `cargo test` at the workspace root.

use krv_conformance::{fuzz_backend, kat, run_oracle, vectors, Algorithm, PassMatrix, Tier};
use krv_core::BackendKind;

/// Suites the whole roster runs in the smoke test (one fixed-output
/// hash, one XOF — the other four run on the reference backend only,
/// keeping debug-build wall time in seconds).
const ROSTER_ALGORITHMS: [Algorithm; 2] = [Algorithm::Sha3_256, Algorithm::Shake128];

#[test]
fn short_kats_pass_on_every_backend() {
    let mut matrix = PassMatrix::new();
    for kind in BackendKind::conformance_roster() {
        for suite in &vectors::SUITES {
            let full_set = kind == BackendKind::Reference;
            if full_set || ROSTER_ALGORITHMS.contains(&suite.algorithm) {
                matrix.record(kat::run_suite(&kind, suite, Tier::Short));
            }
        }
    }
    // The continuous-batching service is a roster row too: the same
    // vectors, but submitted through the admission queue and scheduler —
    // and the sharded path a row of its own, adding the consistent-hash
    // routing and the merged-metrics health check.
    for suite in &vectors::SUITES {
        if ROSTER_ALGORITHMS.contains(&suite.algorithm) {
            matrix.record(kat::run_service_suite(suite, Tier::Short));
            matrix.record(kat::run_sharded_service_suite(suite, Tier::Short));
        }
    }
    assert!(matrix.render().contains(kat::SERVICE_LABEL));
    assert!(matrix.render().contains(kat::SHARDED_SERVICE_LABEL));
    assert!(
        matrix.passed(),
        "KAT failures:\n{}\n{:?}",
        matrix.render(),
        matrix.failures()
    );
    // 8 roster backends × 2 suites + reference × 4 more suites.
    assert!(matrix.total_cases() > 100, "suite selection shrank");
}

#[test]
fn differential_fuzz_smoke_is_clean() {
    for kind in BackendKind::conformance_roster() {
        if kind == BackendKind::Reference {
            continue;
        }
        let mut backend = kind.instantiate(2);
        let report = fuzz_backend(backend.as_mut(), &kind.label(), 18, 0x00DD_BA11);
        assert!(
            report.passed(),
            "{}: {} mismatches: {:?}",
            kind.label(),
            report.mismatches.len(),
            report.mismatches
        );
    }
}

#[test]
fn instruction_oracle_smoke_is_clean() {
    for outcome in run_oracle(3, 0xF1A5_C0DE) {
        assert!(outcome.passed(), "{}: {:?}", outcome.op, outcome.failures);
    }
}
