//! Workspace-level remote ML-KEM guard: the daemon's three KEM request
//! kinds against direct `krv_kyber` library calls, end to end over
//! loopback.
//!
//! Every parameter set keygens, encapsulates and decapsulates over a
//! real socket from deterministic seeds, and each wire answer must be
//! byte-identical to the in-process `ml_kem_*` result from the same
//! seeds — so a framing bug, a parameter-set id mix-up or a staging
//! bug in the service's KEM lane lands here as a mismatch naming the
//! parameter set. Malformed keys must come back as request-level
//! `BAD_KEY` errors that leave the connection serving, and an unknown
//! parameter-set id must end the connection like any framing violation.

use keccak_rvv::kyber::{ml_kem_decaps, ml_kem_encaps, ml_kem_keygen};
use keccak_rvv::server::{
    Client, ClientError, ErrorCode, KemParameterSet, Server, ServerConfig, WireAlgorithm,
};
use krv_native::NativeBackend;
use krv_service::ServiceConfig;
use std::time::Duration;

fn quick_config() -> ServerConfig {
    ServerConfig {
        service: ServiceConfig {
            max_wait: Duration::from_micros(200),
            ..ServiceConfig::default()
        },
        ..ServerConfig::default()
    }
}

/// A distinct, reproducible 32-byte seed per (parameter set, role).
fn seed(tag: u8, set: KemParameterSet) -> [u8; 32] {
    let mut out = [0u8; 32];
    for (i, byte) in out.iter_mut().enumerate() {
        *byte = tag ^ set.id().wrapping_mul(0x3B) ^ (i as u8).wrapping_mul(0x5D);
    }
    out
}

#[test]
fn every_parameter_set_serves_the_full_kem_flow_over_the_wire() {
    let server = Server::bind("127.0.0.1:0", quick_config()).expect("bind");
    let client = Client::connect(server.local_addr()).expect("connect");
    let mut direct = NativeBackend::new();
    for set in KemParameterSet::ALL {
        let params = set.params();
        let (d, z, m) = (seed(0x11, set), seed(0x22, set), seed(0x33, set));

        let (ek, dk) = client.kem_keygen(set, d, z).expect("KEM_KEYGEN");
        assert_eq!(ek.len(), params.ek_len(), "{} ek length", set.name());
        assert_eq!(dk.len(), params.dk_len(), "{} dk length", set.name());
        let (direct_ek, direct_dk) = ml_kem_keygen(params, &d, &z, &mut direct);
        assert_eq!(ek, direct_ek, "{} keygen ek over the wire", set.name());
        assert_eq!(dk, direct_dk, "{} keygen dk over the wire", set.name());

        let (ct, shared) = client.kem_encaps(set, &ek, m).expect("KEM_ENCAPS");
        assert_eq!(ct.len(), params.ct_len(), "{} ct length", set.name());
        let (direct_ct, direct_shared) =
            ml_kem_encaps(params, &ek, &m, &mut direct).expect("direct encaps");
        assert_eq!(ct, direct_ct, "{} encaps ct over the wire", set.name());
        assert_eq!(shared, direct_shared, "{} encaps secret", set.name());

        let decapsed = client.kem_decaps(set, &dk, &ct).expect("KEM_DECAPS");
        assert_eq!(decapsed, shared, "{} shared secrets agree", set.name());

        // A tampered ciphertext is well-formed on the wire; implicit
        // rejection answers with the library's rejection secret, not an
        // error.
        let mut tampered = ct.clone();
        tampered[0] ^= 1;
        let rejected = client
            .kem_decaps(set, &dk, &tampered)
            .expect("tampered KEM_DECAPS still answers");
        assert_ne!(
            rejected,
            shared,
            "{} tampering changes the secret",
            set.name()
        );
        let direct_rejected =
            ml_kem_decaps(params, &dk, &tampered, &mut direct).expect("direct decaps");
        assert_eq!(rejected, direct_rejected, "{} rejection secret", set.name());
    }
    let report = server.shutdown();
    // 3 sets x (keygen + encaps + 2 decaps) all completed.
    assert_eq!(report.completed, 12);
    assert_eq!(report.worker_failures, 0);
    assert_eq!(report.kem_keygen, 3);
    assert_eq!(report.kem_encaps, 3);
    assert_eq!(report.kem_decaps, 6);
    assert_eq!(report.kem_invalid, 0);
    assert!(report.kem_dispatches > 0);
}

#[test]
fn malformed_keys_draw_bad_key_and_the_connection_keeps_serving() {
    let server = Server::bind("127.0.0.1:0", quick_config()).expect("bind");
    let client = Client::connect(server.local_addr()).expect("connect");
    let set = KemParameterSet::MlKem768;

    // A wrong-length encapsulation key: request-level BAD_KEY.
    let outcome = client.kem_encaps(set, &[0u8; 17], [0u8; 32]);
    match outcome {
        Err(ClientError::Remote(remote)) => {
            assert_eq!(remote.code, ErrorCode::BadKey, "detail: {}", remote.detail);
        }
        other => panic!("expected a BAD_KEY remote error, got {other:?}"),
    }

    // A wrong-length decapsulation key draws the same typed error.
    let outcome = client.kem_decaps(set, &[0u8; 9], &vec![0u8; set.params().ct_len()]);
    match outcome {
        Err(ClientError::Remote(remote)) => {
            assert_eq!(remote.code, ErrorCode::BadKey, "detail: {}", remote.detail);
        }
        other => panic!("expected a BAD_KEY remote error, got {other:?}"),
    }

    // The connection survived both: hashes and KEM ops still serve.
    let digest = client
        .digest(WireAlgorithm::Sha3_256, b"still serving")
        .expect("hash after BAD_KEY");
    assert_eq!(digest.len(), 32);
    let (ek, dk) = client
        .kem_keygen(set, [7u8; 32], [8u8; 32])
        .expect("keygen after BAD_KEY");
    assert_eq!(ek.len(), set.params().ek_len());
    assert_eq!(dk.len(), set.params().dk_len());

    let report = server.shutdown();
    assert_eq!(report.kem_invalid, 2);
    assert_eq!(report.kem_keygen, 1);
}

#[test]
fn an_unknown_parameter_set_id_is_a_connection_fatal_violation() {
    use keccak_rvv::server::protocol::{write_frame, Request};
    use std::io::{Read, Write};
    use std::net::TcpStream;

    let server = Server::bind("127.0.0.1:0", quick_config()).expect("bind");
    let mut socket = TcpStream::connect(server.local_addr()).expect("connect");

    // A well-formed KEM_KEYGEN frame, then the set id byte (first byte
    // after the header) corrupted to an unassigned value.
    let mut body = Request::KemKeygen {
        id: 1,
        set: KemParameterSet::MlKem512,
        deadline: None,
        d: [0u8; 32],
        z: [0u8; 32],
    }
    .encode();
    let header_len = body.len() - (1 + 8 + 32 + 32);
    body[header_len] = 0xEE;
    write_frame(&mut socket, &body).expect("write corrupted frame");
    socket.flush().expect("flush");

    // The server drains the connection without answering: EOF, not a
    // response frame.
    let mut rest = Vec::new();
    socket
        .read_to_end(&mut rest)
        .expect("server closes the socket");
    assert!(rest.is_empty(), "no response precedes the close: {rest:?}");
    server.shutdown();
}
