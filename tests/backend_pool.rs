//! Acceptance tests for the pooled execution backend.
//!
//! The contract: an [`EnginePool`] is *behaviorally invisible* — any
//! batch scheduled through it produces bit-identical output to the
//! scalar [`ReferenceBackend`], and its cycle accounting is
//! deterministic regardless of how many worker threads carry the load.

use keccak_rvv::core::{EnginePool, KernelKind};
use keccak_rvv::keccak::KeccakState;
use keccak_rvv::sha3::{
    hash_batch, BatchRequest, PermutationBackend, ReferenceBackend, SpongeParams,
};
use krv_testkit::Rng;

/// The headline acceptance case: 1000 mixed-length SHAKE128 messages
/// through a pool of 4 worker engines must match the reference backend
/// bit for bit.
#[test]
fn pool_matches_reference_on_a_thousand_mixed_messages() {
    let mut rng = Rng::new(0x9E3779B97F4A7C15);
    let messages: Vec<Vec<u8>> = (0..1000)
        .map(|_| {
            let len = rng.below(600);
            rng.bytes(len)
        })
        .collect();
    let requests: Vec<BatchRequest<'_>> =
        messages.iter().map(|m| BatchRequest::new(m, 32)).collect();
    let params = SpongeParams::shake(128);

    let expected = hash_batch(params, ReferenceBackend::new(), &requests);
    let mut pool = EnginePool::new(KernelKind::E64Lmul8, 4, 4);
    let pooled = hash_batch(params, &mut pool, &requests);

    assert_eq!(pooled, expected, "pooled output diverged from reference");
    assert!(pool.permutations() > 0, "the pool did the work");
}

/// State counts that do not divide evenly into the pool's width —
/// including fewer states than one engine holds — still round-trip.
#[test]
fn ragged_state_counts_match_reference() {
    let mut pool = EnginePool::new(KernelKind::E64Lmul8, 3, 4);
    for count in [1usize, 2, 3, 5, 11, 13] {
        let mut rng = Rng::new(0xC0FFEE ^ count as u64);
        let mut states: Vec<KeccakState> = (0..count)
            .map(|_| {
                let mut lanes = [0u64; 25];
                for lane in &mut lanes {
                    *lane = rng.next_u64();
                }
                KeccakState::from_lanes(lanes)
            })
            .collect();
        let mut expected = states.clone();
        ReferenceBackend::new().permute_all(&mut expected);
        pool.permute_slice(&mut states).expect("pool dispatch");
        assert_eq!(states, expected, "count = {count}");
    }
}

/// An empty dispatch is a no-op, not a panic.
#[test]
fn empty_batch_and_empty_slice_are_no_ops() {
    let mut pool = EnginePool::new(KernelKind::E64Lmul8, 2, 4);
    pool.permute_slice(&mut []).expect("empty slice");
    assert_eq!(pool.permutations(), 0);
    let outputs = hash_batch(SpongeParams::shake(128), &mut pool, &[]);
    assert!(outputs.is_empty());
}

/// The simulated cycle totals are a property of the *work*, not the
/// worker count: any pool shape reports the same `total_cycles` for the
/// same states, and more workers only shrink the critical path.
#[test]
fn cycle_accounting_is_deterministic_across_worker_counts() {
    let mut rng = Rng::new(0xDE7E_2215);
    let base: Vec<KeccakState> = (0..10)
        .map(|_| {
            let mut lanes = [0u64; 25];
            for lane in &mut lanes {
                *lane = rng.next_u64();
            }
            KeccakState::from_lanes(lanes)
        })
        .collect();

    let mut totals = Vec::new();
    let mut outputs = Vec::new();
    for workers in [1usize, 2, 4, 5] {
        let mut pool = EnginePool::new(KernelKind::E64Lmul8, 2, workers);
        let mut states = base.clone();
        pool.permute_slice(&mut states).expect("pool dispatch");
        let metrics = pool.last_metrics().expect("metrics recorded").clone();
        assert_eq!(
            metrics.per_engine.len(),
            workers,
            "one load entry per worker"
        );
        if workers > 1 {
            assert!(metrics.speedup() > 1.0, "parallelism shortens the path");
        }
        totals.push(metrics.total_cycles);
        outputs.push(states);
    }
    assert!(
        totals.windows(2).all(|pair| pair[0] == pair[1]),
        "total cycles varied with worker count: {totals:?}"
    );
    assert!(
        outputs.windows(2).all(|pair| pair[0] == pair[1]),
        "outputs varied with worker count"
    );
}
