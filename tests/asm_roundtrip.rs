//! Property test: every instruction's `Display` rendering re-parses to
//! the identical instruction (assembler ↔ disassembler consistency), and
//! machine code survives disassemble → reassemble.

use keccak_rvv::asm::{assemble, disassemble};
use keccak_rvv::isa::{
    BranchKind, Csr, CustomOp, Instruction, Lmul, LoadKind, MemMode, OpImmKind, OpKind, RhoRow,
    Sew, StoreKind, VArithOp, VReg, VSource, Vtype, XReg,
};
use krv_testkit::{cases, Rng};

fn xreg(rng: &mut Rng) -> XReg {
    XReg::from_index(rng.below(32))
}

fn vreg(rng: &mut Rng) -> VReg {
    VReg::from_index(rng.below(32))
}

fn rho_row(rng: &mut Rng) -> RhoRow {
    if rng.next_bool() {
        RhoRow::All
    } else {
        RhoRow::Row(rng.below(5) as u8)
    }
}

fn custom(rng: &mut Rng) -> CustomOp {
    let (vd, vs2, vm) = (vreg(rng), vreg(rng), rng.next_bool());
    match rng.below(8) {
        0 => CustomOp::Vslidedownm {
            vd,
            vs2,
            uimm: rng.below(32) as u8,
            vm,
        },
        1 => CustomOp::Vslideupm {
            vd,
            vs2,
            uimm: rng.below(32) as u8,
            vm,
        },
        2 => CustomOp::Vrotup {
            vd,
            vs2,
            uimm: rng.below(32) as u8,
            vm,
        },
        3 => CustomOp::V32lrotup {
            vd,
            vs2,
            vs1: vreg(rng),
            vm,
        },
        4 => CustomOp::V32hrho {
            vd,
            vs2,
            vs1: vreg(rng),
            vm,
        },
        5 => CustomOp::V64rho {
            vd,
            vs2,
            row: rho_row(rng),
            vm,
        },
        6 => CustomOp::Vpi {
            vd,
            vs2,
            row: rho_row(rng),
            vm,
        },
        _ => CustomOp::Viota {
            vd,
            vs2,
            rs1: xreg(rng),
            vm,
        },
    }
}

/// Instructions whose rendering is position-independent (no labels).
fn renderable_instruction(rng: &mut Rng) -> Instruction {
    match rng.below(15) {
        0 => Instruction::Branch {
            kind: *rng.pick(&[
                BranchKind::Beq,
                BranchKind::Bne,
                BranchKind::Blt,
                BranchKind::Bge,
                BranchKind::Bltu,
                BranchKind::Bgeu,
            ]),
            rs1: xreg(rng),
            rs2: xreg(rng),
            offset: rng.range(-512, 512) as i32 * 2,
        },
        1 => Instruction::Load {
            kind: *rng.pick(&[
                LoadKind::Lb,
                LoadKind::Lh,
                LoadKind::Lw,
                LoadKind::Lbu,
                LoadKind::Lhu,
            ]),
            rd: xreg(rng),
            rs1: xreg(rng),
            offset: rng.range(-2048, 2048) as i32,
        },
        2 => Instruction::Store {
            kind: *rng.pick(&[StoreKind::Sb, StoreKind::Sh, StoreKind::Sw]),
            rs2: xreg(rng),
            rs1: xreg(rng),
            offset: rng.range(-2048, 2048) as i32,
        },
        3 => {
            let kind = *rng.pick(&[
                OpImmKind::Addi,
                OpImmKind::Slti,
                OpImmKind::Xori,
                OpImmKind::Andi,
                OpImmKind::Slli,
                OpImmKind::Srai,
            ]);
            let imm = rng.range(-2048, 2048) as i32;
            Instruction::OpImm {
                kind,
                rd: xreg(rng),
                rs1: xreg(rng),
                imm: if kind.is_shift() {
                    imm.rem_euclid(32)
                } else {
                    imm
                },
            }
        }
        4 => Instruction::Op {
            kind: *rng.pick(&[
                OpKind::Add,
                OpKind::Sub,
                OpKind::Xor,
                OpKind::Mul,
                OpKind::Divu,
            ]),
            rd: xreg(rng),
            rs1: xreg(rng),
            rs2: xreg(rng),
        },
        5 => {
            // Operand form must be defined for the chosen op: retry
            // until op and source form are compatible.
            loop {
                let op = *rng.pick(&[
                    VArithOp::Add,
                    VArithOp::And,
                    VArithOp::Or,
                    VArithOp::Xor,
                    VArithOp::Sll,
                    VArithOp::Srl,
                    VArithOp::Mseq,
                    VArithOp::Slideup,
                    VArithOp::Slidedown,
                ]);
                let src = match rng.below(3) {
                    0 => VSource::Vector(vreg(rng)),
                    1 => VSource::Scalar(xreg(rng)),
                    _ => VSource::Imm(rng.range(-16, 16) as i32),
                };
                let ok = match src {
                    VSource::Vector(_) => op.supports_vv(),
                    VSource::Scalar(_) => true,
                    VSource::Imm(_) => op.supports_vi(),
                };
                if ok {
                    return Instruction::VArith {
                        op,
                        vd: vreg(rng),
                        vs2: vreg(rng),
                        src,
                        vm: rng.next_bool(),
                    };
                }
            }
        }
        6 => {
            let eew = *rng.pick(&[Sew::E8, Sew::E16, Sew::E32, Sew::E64]);
            let mode = match rng.below(3) {
                0 => MemMode::UnitStride,
                1 => MemMode::Strided(xreg(rng)),
                _ => MemMode::Indexed(vreg(rng)),
            };
            let (v, rs1, vm) = (vreg(rng), xreg(rng), rng.next_bool());
            if rng.next_bool() {
                Instruction::VLoad {
                    eew,
                    vd: v,
                    rs1,
                    mode,
                    vm,
                }
            } else {
                Instruction::VStore {
                    eew,
                    vs3: v,
                    rs1,
                    mode,
                    vm,
                }
            }
        }
        7 => Instruction::Vsetvli {
            rd: xreg(rng),
            rs1: xreg(rng),
            vtype: Vtype::new(
                *rng.pick(&[Sew::E32, Sew::E64]),
                *rng.pick(&[Lmul::M1, Lmul::M8]),
            )
            .tail_undisturbed()
            .mask_undisturbed(),
        },
        8 => Instruction::Custom(custom(rng)),
        9 => Instruction::Ecall,
        10 => Instruction::Ebreak,
        11 => Instruction::Csrr {
            rd: xreg(rng),
            csr: *rng.pick(&[Csr::Vl, Csr::Vtype, Csr::Vlenb, Csr::Cycle, Csr::Instret]),
        },
        12 => Instruction::VmvXs {
            rd: xreg(rng),
            vs2: vreg(rng),
        },
        13 => Instruction::VmvSx {
            vd: vreg(rng),
            rs1: xreg(rng),
        },
        _ => Instruction::Vid {
            vd: vreg(rng),
            vm: rng.next_bool(),
        },
    }
}

#[test]
fn display_reparses_identically() {
    cases(1500, |rng| {
        let instr = renderable_instruction(rng);
        let text = instr.to_string();
        let program = assemble(&text).unwrap_or_else(|e| panic!("`{text}` failed to parse: {e}"));
        assert_eq!(program.instructions(), &[instr]);
    });
}

#[test]
fn disassemble_reassemble_fixed_point() {
    cases(300, |rng| {
        let count = 1 + rng.below(39);
        let instrs: Vec<Instruction> = (0..count).map(|_| renderable_instruction(rng)).collect();
        let text = disassemble(&instrs);
        let program = assemble(&text).expect("disassembly parses");
        assert_eq!(program.instructions(), &instrs[..]);
        // Second round trip is a fixed point.
        let text2 = disassemble(program.instructions());
        assert_eq!(text, text2);
    });
}
