//! Property test: every instruction's `Display` rendering re-parses to
//! the identical instruction (assembler ↔ disassembler consistency), and
//! machine code survives disassemble → reassemble.

use keccak_rvv::asm::{assemble, disassemble};
use keccak_rvv::isa::{
    BranchKind, Csr, CustomOp, Instruction, Lmul, LoadKind, MemMode, OpImmKind, OpKind, RhoRow,
    Sew, StoreKind, VArithOp, VReg, VSource, Vtype, XReg,
};
use proptest::prelude::*;

fn xreg() -> impl Strategy<Value = XReg> {
    (0usize..32).prop_map(XReg::from_index)
}

fn vreg() -> impl Strategy<Value = VReg> {
    (0usize..32).prop_map(VReg::from_index)
}

/// Instructions whose rendering is position-independent (no labels).
fn renderable_instruction() -> impl Strategy<Value = Instruction> {
    let branch = (
        prop_oneof![
            Just(BranchKind::Beq),
            Just(BranchKind::Bne),
            Just(BranchKind::Blt),
            Just(BranchKind::Bge),
            Just(BranchKind::Bltu),
            Just(BranchKind::Bgeu)
        ],
        xreg(),
        xreg(),
        -512i32..512,
    )
        .prop_map(|(kind, rs1, rs2, o)| Instruction::Branch {
            kind,
            rs1,
            rs2,
            offset: o * 2,
        });
    let loads = (
        prop_oneof![
            Just(LoadKind::Lb),
            Just(LoadKind::Lh),
            Just(LoadKind::Lw),
            Just(LoadKind::Lbu),
            Just(LoadKind::Lhu)
        ],
        xreg(),
        xreg(),
        -2048i32..2048,
    )
        .prop_map(|(kind, rd, rs1, offset)| Instruction::Load {
            kind,
            rd,
            rs1,
            offset,
        });
    let stores = (
        prop_oneof![
            Just(StoreKind::Sb),
            Just(StoreKind::Sh),
            Just(StoreKind::Sw)
        ],
        xreg(),
        xreg(),
        -2048i32..2048,
    )
        .prop_map(|(kind, rs2, rs1, offset)| Instruction::Store {
            kind,
            rs2,
            rs1,
            offset,
        });
    let opimm = (
        prop_oneof![
            Just(OpImmKind::Addi),
            Just(OpImmKind::Slti),
            Just(OpImmKind::Xori),
            Just(OpImmKind::Andi),
            Just(OpImmKind::Slli),
            Just(OpImmKind::Srai)
        ],
        xreg(),
        xreg(),
        -2048i32..2048,
    )
        .prop_map(|(kind, rd, rs1, imm)| Instruction::OpImm {
            kind,
            rd,
            rs1,
            imm: if kind.is_shift() {
                imm.rem_euclid(32)
            } else {
                imm
            },
        });
    let ops = (
        prop_oneof![
            Just(OpKind::Add),
            Just(OpKind::Sub),
            Just(OpKind::Xor),
            Just(OpKind::Mul),
            Just(OpKind::Divu)
        ],
        xreg(),
        xreg(),
        xreg(),
    )
        .prop_map(|(kind, rd, rs1, rs2)| Instruction::Op { kind, rd, rs1, rs2 });
    let varith = (
        prop_oneof![
            Just(VArithOp::Add),
            Just(VArithOp::And),
            Just(VArithOp::Or),
            Just(VArithOp::Xor),
            Just(VArithOp::Sll),
            Just(VArithOp::Srl),
            Just(VArithOp::Mseq),
            Just(VArithOp::Slideup),
            Just(VArithOp::Slidedown)
        ],
        vreg(),
        vreg(),
        prop_oneof![
            vreg().prop_map(VSource::Vector),
            xreg().prop_map(VSource::Scalar),
            (-16i32..16).prop_map(VSource::Imm)
        ],
        any::<bool>(),
    )
        .prop_filter_map("operand form defined", |(op, vd, vs2, src, vm)| {
            let ok = match src {
                VSource::Vector(_) => op.supports_vv(),
                VSource::Scalar(_) => true,
                VSource::Imm(_) => op.supports_vi(),
            };
            ok.then_some(Instruction::VArith {
                op,
                vd,
                vs2,
                src,
                vm,
            })
        });
    let vmem = (
        prop_oneof![
            Just(Sew::E8),
            Just(Sew::E16),
            Just(Sew::E32),
            Just(Sew::E64)
        ],
        vreg(),
        xreg(),
        prop_oneof![
            Just(MemMode::UnitStride),
            xreg().prop_map(MemMode::Strided),
            vreg().prop_map(MemMode::Indexed)
        ],
        any::<bool>(),
        any::<bool>(),
    )
        .prop_map(|(eew, v, rs1, mode, vm, load)| {
            if load {
                Instruction::VLoad {
                    eew,
                    vd: v,
                    rs1,
                    mode,
                    vm,
                }
            } else {
                Instruction::VStore {
                    eew,
                    vs3: v,
                    rs1,
                    mode,
                    vm,
                }
            }
        });
    let vsetvli = (
        xreg(),
        xreg(),
        prop_oneof![Just(Sew::E32), Just(Sew::E64)],
        prop_oneof![Just(Lmul::M1), Just(Lmul::M8)],
    )
        .prop_map(|(rd, rs1, sew, lmul)| Instruction::Vsetvli {
            rd,
            rs1,
            vtype: Vtype::new(sew, lmul).tail_undisturbed().mask_undisturbed(),
        });
    let rho_row = prop_oneof![Just(RhoRow::All), (0u8..5).prop_map(RhoRow::Row)];
    let customs =
        prop_oneof![
            (vreg(), vreg(), 0u8..32, any::<bool>())
                .prop_map(|(vd, vs2, uimm, vm)| CustomOp::Vslidedownm { vd, vs2, uimm, vm }),
            (vreg(), vreg(), 0u8..32, any::<bool>())
                .prop_map(|(vd, vs2, uimm, vm)| CustomOp::Vslideupm { vd, vs2, uimm, vm }),
            (vreg(), vreg(), 0u8..32, any::<bool>())
                .prop_map(|(vd, vs2, uimm, vm)| CustomOp::Vrotup { vd, vs2, uimm, vm }),
            (vreg(), vreg(), vreg(), any::<bool>())
                .prop_map(|(vd, vs2, vs1, vm)| CustomOp::V32lrotup { vd, vs2, vs1, vm }),
            (vreg(), vreg(), vreg(), any::<bool>())
                .prop_map(|(vd, vs2, vs1, vm)| CustomOp::V32hrho { vd, vs2, vs1, vm }),
            (vreg(), vreg(), rho_row.clone(), any::<bool>())
                .prop_map(|(vd, vs2, row, vm)| CustomOp::V64rho { vd, vs2, row, vm }),
            (vreg(), vreg(), rho_row, any::<bool>()).prop_map(|(vd, vs2, row, vm)| CustomOp::Vpi {
                vd,
                vs2,
                row,
                vm
            }),
            (vreg(), vreg(), xreg(), any::<bool>())
                .prop_map(|(vd, vs2, rs1, vm)| CustomOp::Viota { vd, vs2, rs1, vm }),
        ]
        .prop_map(Instruction::Custom);
    prop_oneof![
        branch,
        loads,
        stores,
        opimm,
        ops,
        varith,
        vmem,
        vsetvli,
        customs,
        Just(Instruction::Ecall),
        Just(Instruction::Ebreak),
        (
            xreg(),
            prop_oneof![
                Just(Csr::Vl),
                Just(Csr::Vtype),
                Just(Csr::Vlenb),
                Just(Csr::Cycle),
                Just(Csr::Instret)
            ]
        )
            .prop_map(|(rd, csr)| Instruction::Csrr { rd, csr }),
        (xreg(), vreg()).prop_map(|(rd, vs2)| Instruction::VmvXs { rd, vs2 }),
        (vreg(), xreg()).prop_map(|(vd, rs1)| Instruction::VmvSx { vd, rs1 }),
        (vreg(), any::<bool>()).prop_map(|(vd, vm)| Instruction::Vid { vd, vm }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(1500))]

    #[test]
    fn display_reparses_identically(instr in renderable_instruction()) {
        let text = instr.to_string();
        let program = assemble(&text)
            .unwrap_or_else(|e| panic!("`{text}` failed to parse: {e}"));
        prop_assert_eq!(program.instructions(), &[instr]);
    }

    #[test]
    fn disassemble_reassemble_fixed_point(instrs in proptest::collection::vec(renderable_instruction(), 1..40)) {
        let text = disassemble(&instrs);
        let program = assemble(&text).expect("disassembly parses");
        prop_assert_eq!(program.instructions(), &instrs[..]);
        // Second round trip is a fixed point.
        let text2 = disassemble(program.instructions());
        prop_assert_eq!(text, text2);
    }
}
