//! Chunked single-level tree hashing: SP 800-185 ParallelHash (§6) and
//! the KRV tree-hash mode.
//!
//! Both functions share one shape — a BLAKE3-style chunked tree of
//! depth one. The message splits into `block_size`-byte chunks; every
//! chunk is hashed *independently* to a short leaf digest (plain SHAKE,
//! because the leaf call is cSHAKE with empty `N`/`S`); the ordered
//! leaf digests, wrapped in length framing, feed one cSHAKE root call
//! whose function name separates the modes. Because the leaves are
//! independent fixed-size one-shot hashes, they are exactly the
//! workload [`crate::hash_batch`] (and, over the wire, the serving
//! tier's micro-batch scheduler) packs into `SN`-wide hardware passes —
//! one large message becomes the paper's register-layout batch.
//!
//! The two instances:
//!
//! * [`TreeMode::parallel_hash`] — ParallelHash128/256 exactly per
//!   §6.2/§6.3: leaf output `2·security/8` bytes, root name
//!   `"ParallelHash"`, caller-chosen block size.
//! * [`TreeMode::krv_tree256`] — the KRV tree-hash: SHAKE256 leaves
//!   truncated to 32-byte chaining values (BLAKE3's chain width), a
//!   fixed 4 KiB chunk, root name `"KRV-TreeHash"`. Structurally it is
//!   ParallelHash with a different name and leaf width, so the same
//!   security argument applies, while the fixed chunk makes wire
//!   sessions unambiguous without negotiating a block size.
//!
//! Root input layout (§6.2 step 2–5):
//! `left_encode(B) ‖ leaf₀ ‖ … ‖ leafₙ₋₁ ‖ right_encode(n) ‖
//! right_encode(L·8)`, absorbed by `cSHAKE(N, S)`. The
//! [`TreeMode::root_prefix`]/[`TreeMode::root_suffix`] split exposes
//! that layout for streamed sessions, which absorb the prefix at
//! `OPEN`, leaf digests as they complete, and the suffix at `FINALIZE`.

use crate::backend::PermutationBackend;
use crate::batch::{hash_batch, BatchRequest};
use crate::sp800_185::{cshake_params, cshake_stream_prefix, left_encode, right_encode};
use crate::sponge::{Sponge, SpongeParams};

/// One chunked-tree instance: the knobs that separate ParallelHash from
/// the KRV tree-hash.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TreeMode {
    security_bits: usize,
    block_size: usize,
    leaf_len: usize,
    function_name: &'static [u8],
}

impl TreeMode {
    /// The KRV tree-hash chunk size: 4 KiB, fixed by the mode.
    pub const KRV_TREE_CHUNK: usize = 4096;

    /// ParallelHash (SP 800-185 §6) at 128- or 256-bit security with
    /// the given block size `B`.
    ///
    /// # Panics
    ///
    /// Panics if `security_bits` is not 128 or 256, or `block_size` is 0.
    pub fn parallel_hash(security_bits: usize, block_size: usize) -> Self {
        assert!(
            security_bits == 128 || security_bits == 256,
            "ParallelHash is defined at 128/256-bit security, got {security_bits}"
        );
        assert!(block_size > 0, "block size must be positive");
        Self {
            security_bits,
            block_size,
            // §6.2 step 6: each leaf is cSHAKE(X_i, 2·security, "", "").
            leaf_len: security_bits / 4,
            function_name: b"ParallelHash",
        }
    }

    /// The KRV tree-hash mode: 256-bit leaves truncated to 32-byte
    /// chaining values over fixed 4 KiB chunks.
    pub fn krv_tree256() -> Self {
        Self {
            security_bits: 256,
            block_size: Self::KRV_TREE_CHUNK,
            leaf_len: 32,
            function_name: b"KRV-TreeHash",
        }
    }

    /// The chunk size `B` in bytes.
    pub const fn block_size(&self) -> usize {
        self.block_size
    }

    /// The per-leaf digest length in bytes.
    pub const fn leaf_len(&self) -> usize {
        self.leaf_len
    }

    /// The root cSHAKE function name (`"ParallelHash"`/`"KRV-TreeHash"`).
    pub const fn function_name(&self) -> &'static [u8] {
        self.function_name
    }

    /// Sponge parameters of a leaf: plain SHAKE at the mode's security
    /// level (cSHAKE with empty `N`/`S` degenerates to SHAKE, §3.3).
    pub fn leaf_params(&self) -> SpongeParams {
        SpongeParams::shake(self.security_bits)
    }

    /// Sponge parameters of the root cSHAKE call.
    pub fn root_params(&self) -> SpongeParams {
        cshake_params(self.security_bits, self.function_name, b"")
    }

    /// Bytes the root sponge absorbs before any leaf digest: the cSHAKE
    /// `N`/`S` prefix followed by `left_encode(B)`.
    pub fn root_prefix(&self, customization: &[u8]) -> Vec<u8> {
        let mut prefix =
            cshake_stream_prefix(self.security_bits, self.function_name, customization);
        prefix.extend(left_encode(self.block_size as u64));
        prefix
    }

    /// Bytes the root sponge absorbs after the last leaf digest:
    /// `right_encode(n) ‖ right_encode(L·8)`.
    pub fn root_suffix(&self, leaves: u64, output_len: usize) -> Vec<u8> {
        let mut suffix = right_encode(leaves);
        suffix.extend(right_encode(output_len as u64 * 8));
        suffix
    }

    /// The number of leaves an `len`-byte message produces: `⌈len/B⌉`
    /// (zero for the empty message, §6.2 step 1).
    pub const fn leaf_count(&self, len: usize) -> usize {
        len.div_ceil(self.block_size)
    }

    /// One-shot digest. The leaves go through [`hash_batch`] — one
    /// drain-and-refill schedule over all chunks, so a wide backend
    /// packs them into `⌈n/SN⌉ `hardware passes per round — and the
    /// root cSHAKE call runs on the same backend afterwards.
    pub fn digest<B: PermutationBackend>(
        &self,
        mut backend: B,
        message: &[u8],
        customization: &[u8],
        output_len: usize,
    ) -> Vec<u8> {
        let requests: Vec<BatchRequest<'_>> = message
            .chunks(self.block_size)
            .map(|chunk| BatchRequest::new(chunk, self.leaf_len))
            .collect();
        let leaves = hash_batch(self.leaf_params(), &mut backend, &requests);
        let mut root = Sponge::new(self.root_params(), &mut backend);
        root.absorb(&self.root_prefix(customization));
        for leaf in &leaves {
            root.absorb(leaf);
        }
        root.absorb(&self.root_suffix(leaves.len() as u64, output_len));
        root.squeeze(output_len)
    }
}

/// ParallelHash128 (SP 800-185 §6) on the reference backend.
pub fn parallel_hash128(
    message: &[u8],
    block_size: usize,
    output_len: usize,
    customization: &[u8],
) -> Vec<u8> {
    TreeMode::parallel_hash(128, block_size).digest(
        crate::ReferenceBackend::new(),
        message,
        customization,
        output_len,
    )
}

/// ParallelHash256 (SP 800-185 §6) on the reference backend.
pub fn parallel_hash256(
    message: &[u8],
    block_size: usize,
    output_len: usize,
    customization: &[u8],
) -> Vec<u8> {
    TreeMode::parallel_hash(256, block_size).digest(
        crate::ReferenceBackend::new(),
        message,
        customization,
        output_len,
    )
}

/// The KRV tree-hash on the reference backend: 4 KiB chunks, 32-byte
/// SHAKE256 leaves, cSHAKE256 root.
pub fn krv_tree_hash256(message: &[u8], output_len: usize, customization: &[u8]) -> Vec<u8> {
    TreeMode::krv_tree256().digest(
        crate::ReferenceBackend::new(),
        message,
        customization,
        output_len,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::ReferenceBackend;
    use crate::functions::Xof;
    use crate::hex;
    use crate::Shake256;

    #[test]
    fn parallel_hash128_nist_sample_one() {
        // NIST SP 800-185 sample file, ParallelHash128 Sample #1:
        // X = 000102030405060710111213141516172021222324252627,
        // B = 8, L = 256, S = "".
        let msg: Vec<u8> = [0x00u8, 0x10, 0x20]
            .iter()
            .flat_map(|&hi| (0..8).map(move |lo| hi | lo))
            .collect();
        let out = parallel_hash128(&msg, 8, 32, b"");
        assert_eq!(
            hex(&out),
            "ba8dc1d1d979331d3f813603c67f72609ab5e44b94a0b8f9af46514454a2b4f5"
        );
    }

    #[test]
    fn leaf_is_plain_shake_of_each_chunk() {
        // Recompute a two-chunk ParallelHash256 by hand: leaves are
        // SHAKE256(chunk, 64), the root is cSHAKE256 over the framed
        // leaf digests.
        let mode = TreeMode::parallel_hash(256, 16);
        let msg: Vec<u8> = (0..24u8).collect();
        let leaf0 = Shake256::digest(&msg[..16], 64);
        let leaf1 = Shake256::digest(&msg[16..], 64);
        let mut root = crate::sp800_185::CShake256::new(b"ParallelHash", b"ctx");
        root.update(&left_encode(16));
        root.update(&leaf0);
        root.update(&leaf1);
        root.update(&right_encode(2));
        root.update(&right_encode(48 * 8));
        assert_eq!(
            root.squeeze(48),
            mode.digest(ReferenceBackend::new(), &msg, b"ctx", 48)
        );
    }

    #[test]
    fn empty_message_has_zero_leaves() {
        // §6.2 step 1: n = ⌈0/B⌉ = 0 — the root absorbs no leaves, only
        // the framing, and still produces a well-defined digest.
        let mode = TreeMode::parallel_hash(128, 64);
        assert_eq!(mode.leaf_count(0), 0);
        let out = mode.digest(ReferenceBackend::new(), b"", b"", 32);
        assert_eq!(out.len(), 32);
        assert_ne!(out, parallel_hash128(b"x", 64, 32, b""));
    }

    #[test]
    fn chunk_boundaries_change_the_digest() {
        // Same bytes, different block size → different tree → different
        // digest (B is bound into the root via left_encode).
        let msg = vec![0x5Au8; 100];
        assert_ne!(
            parallel_hash256(&msg, 32, 32, b""),
            parallel_hash256(&msg, 64, 32, b"")
        );
    }

    #[test]
    fn krv_tree_matches_manual_recomputation() {
        // Two full chunks plus a partial tail.
        let mode = TreeMode::krv_tree256();
        let msg: Vec<u8> = (0..2 * 4096 + 1000).map(|i| (i * 31) as u8).collect();
        assert_eq!(mode.leaf_count(msg.len()), 3);
        let mut root = crate::sp800_185::CShake256::new(b"KRV-TreeHash", b"");
        root.update(&left_encode(4096));
        for chunk in msg.chunks(4096) {
            root.update(&Shake256::digest(chunk, 32));
        }
        root.update(&right_encode(3));
        root.update(&right_encode(32 * 8));
        assert_eq!(root.squeeze(32), krv_tree_hash256(&msg, 32, b""));
    }

    #[test]
    fn krv_tree_differs_from_flat_shake_and_parallel_hash() {
        let msg = vec![7u8; 5000];
        let tree = krv_tree_hash256(&msg, 32, b"");
        assert_ne!(tree, Shake256::digest(&msg, 32));
        assert_ne!(tree, parallel_hash256(&msg, 4096, 32, b""));
    }

    #[test]
    fn root_prefix_and_suffix_reassemble_the_digest() {
        // The streamed decomposition: prefix at OPEN, leaves as they
        // complete, suffix at FINALIZE.
        let mode = TreeMode::krv_tree256();
        let msg: Vec<u8> = (0..9000u16).map(|i| i as u8).collect();
        let mut root = Sponge::new(mode.root_params(), ReferenceBackend::new());
        root.absorb(&mode.root_prefix(b""));
        let mut leaves = 0u64;
        for chunk in msg.chunks(mode.block_size()) {
            root.absorb(&Shake256::digest(chunk, mode.leaf_len()));
            leaves += 1;
        }
        root.absorb(&mode.root_suffix(leaves, 64));
        assert_eq!(root.squeeze(64), krv_tree_hash256(&msg, 64, b""));
    }
}
