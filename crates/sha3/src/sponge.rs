//! The sponge construction (paper Figure 1): padding, absorbing, squeezing.

use crate::backend::PermutationBackend;
use krv_keccak::constants::STATE_BYTES;
use krv_keccak::KeccakState;

/// Domain-separation suffix appended before the pad10*1 padding.
///
/// FIPS 202 distinguishes the hash functions from the XOFs by two extra
/// bits; combined with the first padding bit these become the byte values
/// below (bits appended LSB-first).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DomainSeparator {
    /// SHA-3 hash functions: suffix bits `01`, padded byte `0x06`.
    Sha3,
    /// SHAKE extendable-output functions: suffix bits `1111`, `0x1F`.
    Shake,
    /// cSHAKE with non-empty N/S (SP 800-185): suffix bits `00`, `0x04`.
    CShake,
    /// Raw Keccak (pre-FIPS padding): no suffix bits, padded byte `0x01`.
    Keccak,
}

impl DomainSeparator {
    /// The first padding byte: domain bits followed by the initial `1`
    /// bit of pad10*1.
    pub const fn first_pad_byte(self) -> u8 {
        match self {
            DomainSeparator::Sha3 => 0x06,
            DomainSeparator::Shake => 0x1F,
            DomainSeparator::CShake => 0x04,
            DomainSeparator::Keccak => 0x01,
        }
    }
}

/// Rate/capacity parameters of a sponge instance.
///
/// `rate + capacity = 1600` bits; the rate is the number of message bytes
/// absorbed or squeezed per permutation call.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SpongeParams {
    rate_bytes: usize,
    domain: DomainSeparator,
}

impl SpongeParams {
    /// Creates sponge parameters from a rate in bytes.
    ///
    /// # Panics
    ///
    /// Panics if `rate_bytes` is zero or not smaller than the 200-byte
    /// state (a sponge needs non-zero capacity).
    pub fn new(rate_bytes: usize, domain: DomainSeparator) -> Self {
        assert!(
            rate_bytes > 0 && rate_bytes < STATE_BYTES,
            "rate must be in 1..200 bytes, got {rate_bytes}"
        );
        Self { rate_bytes, domain }
    }

    /// Parameters for a SHA-3 hash with `digest_bits` output: capacity is
    /// twice the digest length.
    ///
    /// # Panics
    ///
    /// Panics if `digest_bits` is not a positive multiple of 8 smaller
    /// than 800.
    pub fn sha3(digest_bits: usize) -> Self {
        assert!(
            digest_bits > 0 && digest_bits.is_multiple_of(8) && digest_bits < 800,
            "unsupported SHA-3 digest length {digest_bits}"
        );
        Self::new(STATE_BYTES - 2 * digest_bits / 8, DomainSeparator::Sha3)
    }

    /// Parameters for SHAKE with `security_bits` strength (128 or 256).
    pub fn shake(security_bits: usize) -> Self {
        Self::new(STATE_BYTES - 2 * security_bits / 8, DomainSeparator::Shake)
    }

    /// The rate in bytes.
    pub const fn rate_bytes(&self) -> usize {
        self.rate_bytes
    }

    /// The capacity in bytes.
    pub const fn capacity_bytes(&self) -> usize {
        STATE_BYTES - self.rate_bytes
    }

    /// The domain separator.
    pub const fn domain(&self) -> DomainSeparator {
        self.domain
    }
}

/// An incremental Keccak sponge over a permutation backend.
///
/// Drives the three phases of paper Figure 1: message bytes are absorbed
/// `rate` bytes at a time (with a permutation between blocks), the final
/// partial block is padded with pad10*1 plus the domain suffix, and output
/// is squeezed `rate` bytes per permutation.
///
/// # Example
///
/// ```
/// use krv_sha3::{Sponge, SpongeParams, DomainSeparator, ReferenceBackend};
///
/// let params = SpongeParams::sha3(256);
/// let mut sponge = Sponge::new(params, ReferenceBackend::new());
/// sponge.absorb(b"abc");
/// let digest = sponge.squeeze(32);
/// assert_eq!(digest.len(), 32);
/// ```
#[derive(Debug, Clone)]
pub struct Sponge<B> {
    params: SpongeParams,
    backend: B,
    state: KeccakState,
    /// Bytes absorbed into the current partial block.
    absorbed: usize,
    /// Squeeze offset within the current output block; `None` while
    /// absorbing.
    squeeze_offset: Option<usize>,
}

impl<B: PermutationBackend> Sponge<B> {
    /// Creates an empty sponge with the given parameters and backend.
    pub fn new(params: SpongeParams, backend: B) -> Self {
        Self {
            params,
            backend,
            state: KeccakState::new(),
            absorbed: 0,
            squeeze_offset: None,
        }
    }

    /// The sponge parameters.
    pub fn params(&self) -> SpongeParams {
        self.params
    }

    /// Read access to the internal state (for tests and diagnostics).
    pub fn state(&self) -> &KeccakState {
        &self.state
    }

    /// Absorbs message bytes.
    ///
    /// # Panics
    ///
    /// Panics if called after squeezing has started: a FIPS-202 sponge is
    /// not duplex; absorb-after-squeeze is almost always a bug.
    pub fn absorb(&mut self, mut data: &[u8]) {
        assert!(
            self.squeeze_offset.is_none(),
            "cannot absorb after squeezing has started"
        );
        let rate = self.params.rate_bytes;
        while !data.is_empty() {
            let take = (rate - self.absorbed).min(data.len());
            let mut block = [0u8; STATE_BYTES];
            block[self.absorbed..self.absorbed + take].copy_from_slice(&data[..take]);
            self.state.xor_bytes(&block[..self.absorbed + take]);
            self.absorbed += take;
            data = &data[take..];
            if self.absorbed == rate {
                self.backend.permute(&mut self.state);
                self.absorbed = 0;
            }
        }
    }

    /// Applies domain separation and pad10*1, finishing the absorb phase.
    ///
    /// Called automatically by the first [`Sponge::squeeze`]; exposed for
    /// callers that want to observe the padded pre-squeeze state.
    pub fn finalize_absorb(&mut self) {
        if self.squeeze_offset.is_some() {
            return;
        }
        let rate = self.params.rate_bytes;
        let mut block = vec![0u8; rate];
        block[self.absorbed] = self.params.domain.first_pad_byte();
        block[rate - 1] |= 0x80;
        self.state.xor_bytes(&block);
        self.backend.permute(&mut self.state);
        self.absorbed = 0;
        self.squeeze_offset = Some(0);
    }

    /// Squeezes `len` output bytes, permuting between rate-sized blocks.
    ///
    /// May be called repeatedly; output continues where the previous call
    /// stopped (XOF behaviour).
    pub fn squeeze(&mut self, len: usize) -> Vec<u8> {
        let mut out = vec![0u8; len];
        self.squeeze_into(&mut out);
        out
    }

    /// Squeezes exactly `out.len()` bytes into `out`.
    pub fn squeeze_into(&mut self, out: &mut [u8]) {
        self.finalize_absorb();
        let rate = self.params.rate_bytes;
        let mut offset = self
            .squeeze_offset
            .expect("finalize_absorb sets the squeeze offset");
        let mut written = 0;
        while written < out.len() {
            if offset == rate {
                self.backend.permute(&mut self.state);
                offset = 0;
            }
            let take = (rate - offset).min(out.len() - written);
            let bytes = self.state.to_bytes();
            out[written..written + take].copy_from_slice(&bytes[offset..offset + take]);
            offset += take;
            written += take;
        }
        self.squeeze_offset = Some(offset);
    }

    /// Consumes the sponge and returns its backend.
    pub fn into_backend(self) -> B {
        self.backend
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::ReferenceBackend;

    fn sha3_256_digest(msg: &[u8]) -> Vec<u8> {
        let mut sponge = Sponge::new(SpongeParams::sha3(256), ReferenceBackend::new());
        sponge.absorb(msg);
        sponge.squeeze(32)
    }

    #[test]
    fn params_rates_match_fips202() {
        assert_eq!(SpongeParams::sha3(224).rate_bytes(), 144);
        assert_eq!(SpongeParams::sha3(256).rate_bytes(), 136);
        assert_eq!(SpongeParams::sha3(384).rate_bytes(), 104);
        assert_eq!(SpongeParams::sha3(512).rate_bytes(), 72);
        assert_eq!(SpongeParams::shake(128).rate_bytes(), 168);
        assert_eq!(SpongeParams::shake(256).rate_bytes(), 136);
    }

    #[test]
    fn capacity_complements_rate() {
        let p = SpongeParams::sha3(256);
        assert_eq!(p.rate_bytes() + p.capacity_bytes(), 200);
    }

    #[test]
    fn incremental_absorb_equals_oneshot() {
        let msg: Vec<u8> = (0..500u32).map(|i| i as u8).collect();
        let oneshot = sha3_256_digest(&msg);
        let mut sponge = Sponge::new(SpongeParams::sha3(256), ReferenceBackend::new());
        for chunk in msg.chunks(7) {
            sponge.absorb(chunk);
        }
        assert_eq!(sponge.squeeze(32), oneshot);
    }

    #[test]
    fn incremental_squeeze_equals_oneshot() {
        let mut a = Sponge::new(SpongeParams::shake(128), ReferenceBackend::new());
        a.absorb(b"squeeze me");
        let oneshot = a.squeeze(500);
        let mut b = Sponge::new(SpongeParams::shake(128), ReferenceBackend::new());
        b.absorb(b"squeeze me");
        let mut pieces = Vec::new();
        for len in [1, 2, 3, 94, 100, 300] {
            pieces.extend(b.squeeze(len));
        }
        assert_eq!(pieces, oneshot);
    }

    #[test]
    fn rate_boundary_message_lengths() {
        // Absorbing exactly rate, rate-1 and rate+1 bytes must all work
        // (the rate-exact case triggers the extra padding-only block).
        for len in [135usize, 136, 137, 272] {
            let msg = vec![0xA5u8; len];
            let digest = sha3_256_digest(&msg);
            assert_eq!(digest.len(), 32);
            // And must differ from neighbouring lengths.
            let other = sha3_256_digest(&vec![0xA5u8; len + 1]);
            assert_ne!(digest, other);
        }
    }

    #[test]
    #[should_panic(expected = "cannot absorb after squeezing")]
    fn absorb_after_squeeze_panics() {
        let mut sponge = Sponge::new(SpongeParams::sha3(256), ReferenceBackend::new());
        sponge.absorb(b"x");
        let _ = sponge.squeeze(1);
        sponge.absorb(b"y");
    }

    #[test]
    #[should_panic(expected = "rate must be in 1..200")]
    fn zero_rate_rejected() {
        let _ = SpongeParams::new(0, DomainSeparator::Sha3);
    }
}
