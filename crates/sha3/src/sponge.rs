//! The sponge construction (paper Figure 1): padding, absorbing, squeezing.

use crate::backend::PermutationBackend;
use krv_keccak::constants::STATE_BYTES;
use krv_keccak::KeccakState;

/// Domain-separation suffix appended before the pad10*1 padding.
///
/// FIPS 202 distinguishes the hash functions from the XOFs by two extra
/// bits; combined with the first padding bit these become the byte values
/// below (bits appended LSB-first).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DomainSeparator {
    /// SHA-3 hash functions: suffix bits `01`, padded byte `0x06`.
    Sha3,
    /// SHAKE extendable-output functions: suffix bits `1111`, `0x1F`.
    Shake,
    /// cSHAKE with non-empty N/S (SP 800-185): suffix bits `00`, `0x04`.
    CShake,
    /// Raw Keccak (pre-FIPS padding): no suffix bits, padded byte `0x01`.
    Keccak,
}

impl DomainSeparator {
    /// The first padding byte: domain bits followed by the initial `1`
    /// bit of pad10*1.
    pub const fn first_pad_byte(self) -> u8 {
        match self {
            DomainSeparator::Sha3 => 0x06,
            DomainSeparator::Shake => 0x1F,
            DomainSeparator::CShake => 0x04,
            DomainSeparator::Keccak => 0x01,
        }
    }
}

/// Rate/capacity parameters of a sponge instance.
///
/// `rate + capacity = 1600` bits; the rate is the number of message bytes
/// absorbed or squeezed per permutation call.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SpongeParams {
    rate_bytes: usize,
    domain: DomainSeparator,
}

impl SpongeParams {
    /// Creates sponge parameters from a rate in bytes.
    ///
    /// # Panics
    ///
    /// Panics if `rate_bytes` is zero or not smaller than the 200-byte
    /// state (a sponge needs non-zero capacity).
    pub fn new(rate_bytes: usize, domain: DomainSeparator) -> Self {
        assert!(
            rate_bytes > 0 && rate_bytes < STATE_BYTES,
            "rate must be in 1..200 bytes, got {rate_bytes}"
        );
        Self { rate_bytes, domain }
    }

    /// Parameters for a SHA-3 hash with `digest_bits` output: capacity is
    /// twice the digest length.
    ///
    /// # Panics
    ///
    /// Panics if `digest_bits` is not a positive multiple of 8 smaller
    /// than 800.
    pub fn sha3(digest_bits: usize) -> Self {
        assert!(
            digest_bits > 0 && digest_bits.is_multiple_of(8) && digest_bits < 800,
            "unsupported SHA-3 digest length {digest_bits}"
        );
        Self::new(STATE_BYTES - 2 * digest_bits / 8, DomainSeparator::Sha3)
    }

    /// Parameters for SHAKE with `security_bits` strength (128 or 256).
    pub fn shake(security_bits: usize) -> Self {
        Self::new(STATE_BYTES - 2 * security_bits / 8, DomainSeparator::Shake)
    }

    /// The rate in bytes.
    pub const fn rate_bytes(&self) -> usize {
        self.rate_bytes
    }

    /// The capacity in bytes.
    pub const fn capacity_bytes(&self) -> usize {
        STATE_BYTES - self.rate_bytes
    }

    /// The domain separator.
    pub const fn domain(&self) -> DomainSeparator {
        self.domain
    }
}

/// The backend-free half of a sponge: parameters, Keccak state and
/// block-phase bookkeeping, with the permutation factored out.
///
/// [`Sponge`] pairs one of these with a [`PermutationBackend`] and
/// permutes eagerly whenever a rate block fills. A `SpongeState` on its
/// own instead *reports* when it owes a permutation
/// ([`SpongeState::needs_permute`]) and lets an external driver apply it
/// — which is what allows many live streaming sessions to share one
/// `permute_all` round (see [`crate::stream::drive_stream`]): the driver
/// advances every session's host-side byte work, packs exactly the
/// states that stalled on a permutation, and permutes them in one
/// backend call, the same drain-and-refill shape as
/// [`crate::hash_batch`].
///
/// The step methods ([`absorb_step`], [`finalize_pad`],
/// [`squeeze_step`]) each run until the next block boundary; the `_with`
/// convenience methods loop them against a borrowed backend and match
/// [`Sponge`] byte for byte.
///
/// [`absorb_step`]: SpongeState::absorb_step
/// [`finalize_pad`]: SpongeState::finalize_pad
/// [`squeeze_step`]: SpongeState::squeeze_step
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpongeState {
    params: SpongeParams,
    state: KeccakState,
    /// Bytes absorbed into the current partial block.
    absorbed: usize,
    /// Squeeze offset within the current output block; `None` while
    /// absorbing. `Some(rate)` means the current block is exhausted and
    /// a permutation is owed before more output can be read.
    squeeze_offset: Option<usize>,
}

impl SpongeState {
    /// Creates an empty sponge state.
    pub fn new(params: SpongeParams) -> Self {
        Self {
            params,
            state: KeccakState::new(),
            absorbed: 0,
            squeeze_offset: None,
        }
    }

    /// The sponge parameters.
    pub fn params(&self) -> SpongeParams {
        self.params
    }

    /// Read access to the Keccak state.
    pub fn state(&self) -> &KeccakState {
        &self.state
    }

    /// Mutable access to the Keccak state — this is how an external
    /// driver applies the permutation the state is waiting for (followed
    /// by [`SpongeState::note_permuted`]).
    pub fn state_mut(&mut self) -> &mut KeccakState {
        &mut self.state
    }

    /// Whether [`SpongeState::finalize_pad`] has run (the state is in
    /// its squeeze phase).
    pub fn squeezing(&self) -> bool {
        self.squeeze_offset.is_some()
    }

    /// Whether the state owes a permutation before any further absorb or
    /// squeeze progress is possible.
    pub fn needs_permute(&self) -> bool {
        match self.squeeze_offset {
            None => self.absorbed == self.params.rate_bytes,
            Some(offset) => offset == self.params.rate_bytes,
        }
    }

    /// Records that the owed permutation has been applied to
    /// [`SpongeState::state_mut`], resetting the block cursor.
    ///
    /// # Panics
    ///
    /// Panics if no permutation was owed: "permuted without need" would
    /// silently corrupt the stream.
    pub fn note_permuted(&mut self) {
        assert!(self.needs_permute(), "no permutation was owed");
        match &mut self.squeeze_offset {
            None => self.absorbed = 0,
            Some(offset) => *offset = 0,
        }
    }

    /// XORs message bytes into the current rate block, stopping at the
    /// block boundary. Returns the number of bytes consumed; if the
    /// block filled, [`SpongeState::needs_permute`] turns true and the
    /// driver must permute before absorbing the rest.
    ///
    /// # Panics
    ///
    /// Panics if squeezing has started (a FIPS-202 sponge is not duplex)
    /// or if a permutation is owed.
    pub fn absorb_step(&mut self, data: &[u8]) -> usize {
        assert!(
            self.squeeze_offset.is_none(),
            "cannot absorb after squeezing has started"
        );
        assert!(!self.needs_permute(), "permute before absorbing more");
        let rate = self.params.rate_bytes;
        let take = (rate - self.absorbed).min(data.len());
        let mut block = [0u8; STATE_BYTES];
        block[self.absorbed..self.absorbed + take].copy_from_slice(&data[..take]);
        self.state.xor_bytes(&block[..self.absorbed + take]);
        self.absorbed += take;
        take
    }

    /// Applies domain separation and pad10*1, ending the absorb phase.
    /// The state then owes exactly one permutation, after which squeezing
    /// can begin.
    ///
    /// # Panics
    ///
    /// Panics if already finalized or if a permutation is owed.
    pub fn finalize_pad(&mut self) {
        assert!(self.squeeze_offset.is_none(), "already finalized");
        assert!(!self.needs_permute(), "permute before padding");
        let rate = self.params.rate_bytes;
        let mut block = vec![0u8; rate];
        block[self.absorbed] = self.params.domain.first_pad_byte();
        block[rate - 1] |= 0x80;
        self.state.xor_bytes(&block);
        self.absorbed = 0;
        self.squeeze_offset = Some(rate);
    }

    /// Copies output bytes from the current squeeze block into `out`,
    /// stopping at the block boundary. Returns the number of bytes
    /// written; if the block drained before `out` filled, the driver
    /// must permute before squeezing the rest.
    ///
    /// # Panics
    ///
    /// Panics if [`SpongeState::finalize_pad`] has not run or if a
    /// permutation is owed.
    pub fn squeeze_step(&mut self, out: &mut [u8]) -> usize {
        let offset = self.squeeze_offset.expect("finalize_pad before squeezing");
        assert!(!self.needs_permute(), "permute before squeezing more");
        let rate = self.params.rate_bytes;
        let take = (rate - offset).min(out.len());
        let bytes = self.state.to_bytes();
        out[..take].copy_from_slice(&bytes[offset..offset + take]);
        self.squeeze_offset = Some(offset + take);
        take
    }

    /// Absorbs all of `data`, permuting through `backend` at each block
    /// boundary (the synchronous single-state driver).
    pub fn absorb_with<B: PermutationBackend>(&mut self, backend: &mut B, mut data: &[u8]) {
        loop {
            let took = self.absorb_step(data);
            data = &data[took..];
            if self.needs_permute() {
                backend.permute(&mut self.state);
                self.note_permuted();
            }
            if data.is_empty() {
                break;
            }
        }
    }

    /// Pads and permutes so that squeezing can begin. No-op if already
    /// finalized.
    pub fn finalize_with<B: PermutationBackend>(&mut self, backend: &mut B) {
        if self.squeeze_offset.is_some() {
            return;
        }
        self.finalize_pad();
        backend.permute(&mut self.state);
        self.note_permuted();
    }

    /// Squeezes exactly `out.len()` bytes, finalizing first if needed.
    pub fn squeeze_into_with<B: PermutationBackend>(&mut self, backend: &mut B, out: &mut [u8]) {
        self.finalize_with(backend);
        let mut written = 0;
        while written < out.len() {
            if self.needs_permute() {
                backend.permute(&mut self.state);
                self.note_permuted();
            }
            written += self.squeeze_step(&mut out[written..]);
        }
    }
}

/// An incremental Keccak sponge over a permutation backend.
///
/// Drives the three phases of paper Figure 1: message bytes are absorbed
/// `rate` bytes at a time (with a permutation between blocks), the final
/// partial block is padded with pad10*1 plus the domain suffix, and output
/// is squeezed `rate` bytes per permutation.
///
/// Internally this is a [`SpongeState`] (the backend-free core the
/// streaming lane carries across micro-batches) paired with an owned
/// backend that permutes eagerly at every block boundary.
///
/// # Example
///
/// ```
/// use krv_sha3::{Sponge, SpongeParams, DomainSeparator, ReferenceBackend};
///
/// let params = SpongeParams::sha3(256);
/// let mut sponge = Sponge::new(params, ReferenceBackend::new());
/// sponge.absorb(b"abc");
/// let digest = sponge.squeeze(32);
/// assert_eq!(digest.len(), 32);
/// ```
#[derive(Debug, Clone)]
pub struct Sponge<B> {
    core: SpongeState,
    backend: B,
}

impl<B: PermutationBackend> Sponge<B> {
    /// Creates an empty sponge with the given parameters and backend.
    pub fn new(params: SpongeParams, backend: B) -> Self {
        Self {
            core: SpongeState::new(params),
            backend,
        }
    }

    /// Resumes a sponge from a previously detached [`SpongeState`].
    pub fn from_state(core: SpongeState, backend: B) -> Self {
        Self { core, backend }
    }

    /// The sponge parameters.
    pub fn params(&self) -> SpongeParams {
        self.core.params()
    }

    /// Read access to the internal state (for tests and diagnostics).
    pub fn state(&self) -> &KeccakState {
        self.core.state()
    }

    /// Absorbs message bytes.
    ///
    /// # Panics
    ///
    /// Panics if called after squeezing has started: a FIPS-202 sponge is
    /// not duplex; absorb-after-squeeze is almost always a bug.
    pub fn absorb(&mut self, data: &[u8]) {
        self.core.absorb_with(&mut self.backend, data);
    }

    /// Applies domain separation and pad10*1, finishing the absorb phase.
    ///
    /// Called automatically by the first [`Sponge::squeeze`]; exposed for
    /// callers that want to observe the padded pre-squeeze state.
    pub fn finalize_absorb(&mut self) {
        self.core.finalize_with(&mut self.backend);
    }

    /// Squeezes `len` output bytes, permuting between rate-sized blocks.
    ///
    /// May be called repeatedly; output continues where the previous call
    /// stopped (XOF behaviour).
    pub fn squeeze(&mut self, len: usize) -> Vec<u8> {
        let mut out = vec![0u8; len];
        self.squeeze_into(&mut out);
        out
    }

    /// Squeezes exactly `out.len()` bytes into `out`.
    pub fn squeeze_into(&mut self, out: &mut [u8]) {
        self.core.squeeze_into_with(&mut self.backend, out);
    }

    /// Detaches the backend-free [`SpongeState`], discarding the backend.
    pub fn into_state(self) -> SpongeState {
        self.core
    }

    /// Consumes the sponge and returns its backend.
    pub fn into_backend(self) -> B {
        self.backend
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::ReferenceBackend;

    fn sha3_256_digest(msg: &[u8]) -> Vec<u8> {
        let mut sponge = Sponge::new(SpongeParams::sha3(256), ReferenceBackend::new());
        sponge.absorb(msg);
        sponge.squeeze(32)
    }

    #[test]
    fn params_rates_match_fips202() {
        assert_eq!(SpongeParams::sha3(224).rate_bytes(), 144);
        assert_eq!(SpongeParams::sha3(256).rate_bytes(), 136);
        assert_eq!(SpongeParams::sha3(384).rate_bytes(), 104);
        assert_eq!(SpongeParams::sha3(512).rate_bytes(), 72);
        assert_eq!(SpongeParams::shake(128).rate_bytes(), 168);
        assert_eq!(SpongeParams::shake(256).rate_bytes(), 136);
    }

    #[test]
    fn capacity_complements_rate() {
        let p = SpongeParams::sha3(256);
        assert_eq!(p.rate_bytes() + p.capacity_bytes(), 200);
    }

    #[test]
    fn incremental_absorb_equals_oneshot() {
        let msg: Vec<u8> = (0..500u32).map(|i| i as u8).collect();
        let oneshot = sha3_256_digest(&msg);
        let mut sponge = Sponge::new(SpongeParams::sha3(256), ReferenceBackend::new());
        for chunk in msg.chunks(7) {
            sponge.absorb(chunk);
        }
        assert_eq!(sponge.squeeze(32), oneshot);
    }

    #[test]
    fn incremental_squeeze_equals_oneshot() {
        let mut a = Sponge::new(SpongeParams::shake(128), ReferenceBackend::new());
        a.absorb(b"squeeze me");
        let oneshot = a.squeeze(500);
        let mut b = Sponge::new(SpongeParams::shake(128), ReferenceBackend::new());
        b.absorb(b"squeeze me");
        let mut pieces = Vec::new();
        for len in [1, 2, 3, 94, 100, 300] {
            pieces.extend(b.squeeze(len));
        }
        assert_eq!(pieces, oneshot);
    }

    #[test]
    fn rate_boundary_message_lengths() {
        // Absorbing exactly rate, rate-1 and rate+1 bytes must all work
        // (the rate-exact case triggers the extra padding-only block).
        for len in [135usize, 136, 137, 272] {
            let msg = vec![0xA5u8; len];
            let digest = sha3_256_digest(&msg);
            assert_eq!(digest.len(), 32);
            // And must differ from neighbouring lengths.
            let other = sha3_256_digest(&vec![0xA5u8; len + 1]);
            assert_ne!(digest, other);
        }
    }

    #[test]
    #[should_panic(expected = "cannot absorb after squeezing")]
    fn absorb_after_squeeze_panics() {
        let mut sponge = Sponge::new(SpongeParams::sha3(256), ReferenceBackend::new());
        sponge.absorb(b"x");
        let _ = sponge.squeeze(1);
        sponge.absorb(b"y");
    }

    #[test]
    #[should_panic(expected = "rate must be in 1..200")]
    fn zero_rate_rejected() {
        let _ = SpongeParams::new(0, DomainSeparator::Sha3);
    }

    #[test]
    fn state_step_api_matches_sponge() {
        // Drive a SpongeState manually — absorb_step/finalize_pad/
        // squeeze_step with explicit permutations — and compare against
        // the eager Sponge on the same input.
        let msg: Vec<u8> = (0..400u16).map(|i| (i * 7) as u8).collect();
        let mut backend = ReferenceBackend::new();
        let mut state = SpongeState::new(SpongeParams::shake(256));
        let mut data = &msg[..];
        while !data.is_empty() {
            let took = state.absorb_step(data);
            data = &data[took..];
            if state.needs_permute() {
                backend.permute(state.state_mut());
                state.note_permuted();
            }
        }
        state.finalize_pad();
        assert!(state.needs_permute(), "pad owes one permutation");
        backend.permute(state.state_mut());
        state.note_permuted();
        let mut out = vec![0u8; 300];
        let mut written = 0;
        while written < out.len() {
            if state.needs_permute() {
                backend.permute(state.state_mut());
                state.note_permuted();
            }
            written += state.squeeze_step(&mut out[written..]);
        }
        let mut sponge = Sponge::new(SpongeParams::shake(256), ReferenceBackend::new());
        sponge.absorb(&msg);
        assert_eq!(out, sponge.squeeze(300));
    }

    #[test]
    fn detached_state_resumes_mid_stream() {
        // A sponge detached mid-absorb and resumed elsewhere (the
        // session table's lifecycle) must lose nothing.
        let mut sponge = Sponge::new(SpongeParams::sha3(256), ReferenceBackend::new());
        sponge.absorb(b"carried across ");
        let state = sponge.into_state();
        assert!(!state.squeezing());
        let mut resumed = Sponge::from_state(state, ReferenceBackend::new());
        resumed.absorb(b"micro-batches");
        assert_eq!(
            resumed.squeeze(32),
            sha3_256_digest(b"carried across micro-batches")
        );
    }

    #[test]
    fn convenience_drivers_match_sponge() {
        let msg = vec![0x3Cu8; 271];
        let mut state = SpongeState::new(SpongeParams::shake(128));
        let mut backend = ReferenceBackend::new();
        state.absorb_with(&mut backend, &msg);
        state.absorb_with(&mut backend, b"");
        let mut out = [0u8; 96];
        state.squeeze_into_with(&mut backend, &mut out);
        let mut sponge = Sponge::new(SpongeParams::shake(128), ReferenceBackend::new());
        sponge.absorb(&msg);
        assert_eq!(out.to_vec(), sponge.squeeze(96));
    }

    #[test]
    #[should_panic(expected = "no permutation was owed")]
    fn spurious_note_permuted_panics() {
        let mut state = SpongeState::new(SpongeParams::sha3(256));
        state.note_permuted();
    }
}
