//! The six FIPS-202 functions: SHA3-224/256/384/512, SHAKE128/256.

use crate::backend::{PermutationBackend, ReferenceBackend};
use crate::sponge::{Sponge, SpongeParams};

macro_rules! sha3_function {
    ($(#[$doc:meta])* $name:ident, $bits:expr) => {
        $(#[$doc])*
        #[derive(Debug, Clone)]
        pub struct $name<B = ReferenceBackend> {
            sponge: Sponge<B>,
        }

        impl $name<ReferenceBackend> {
            /// Creates a hasher using the software reference backend.
            pub fn new() -> Self {
                Self::with_backend(ReferenceBackend::new())
            }

            /// One-shot digest of `msg` using the reference backend.
            pub fn digest(msg: &[u8]) -> [u8; $bits / 8] {
                let mut hasher = Self::new();
                hasher.update(msg);
                hasher.finalize()
            }
        }

        impl Default for $name<ReferenceBackend> {
            fn default() -> Self {
                Self::new()
            }
        }

        impl<B: PermutationBackend> $name<B> {
            /// Creates a hasher over a custom permutation backend (for
            /// example the simulated vector processor).
            pub fn with_backend(backend: B) -> Self {
                Self {
                    sponge: Sponge::new(SpongeParams::sha3($bits), backend),
                }
            }

            /// Absorbs more message bytes.
            pub fn update(&mut self, data: &[u8]) {
                self.sponge.absorb(data);
            }

            /// Finishes hashing and returns the digest.
            pub fn finalize(mut self) -> [u8; $bits / 8] {
                let mut out = [0u8; $bits / 8];
                self.sponge.squeeze_into(&mut out);
                out
            }

            /// Digest length in bytes.
            pub const fn output_len() -> usize {
                $bits / 8
            }

            /// Hashes every message with one work-scheduled batch on
            /// `backend` (see [`crate::hash_batch`]); messages may have
            /// arbitrary, different lengths. Digests come back in
            /// message order.
            pub fn digest_batch(backend: B, messages: &[&[u8]]) -> Vec<[u8; $bits / 8]> {
                let requests: Vec<crate::batch::BatchRequest<'_>> = messages
                    .iter()
                    .map(|m| crate::batch::BatchRequest::new(m, $bits / 8))
                    .collect();
                crate::batch::hash_batch(SpongeParams::sha3($bits), backend, &requests)
                    .into_iter()
                    .map(|bytes| {
                        let mut digest = [0u8; $bits / 8];
                        digest.copy_from_slice(&bytes);
                        digest
                    })
                    .collect()
            }
        }

        impl<B: PermutationBackend> std::io::Write for $name<B> {
            /// Absorbs the buffer; never errors.
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.update(buf);
                Ok(buf.len())
            }

            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
    };
}

sha3_function!(
    /// SHA3-224 (FIPS 202 §6.1): 224-bit digest, rate 1152 bits.
    Sha3_224,
    224
);
sha3_function!(
    /// SHA3-256 (FIPS 202 §6.1): 256-bit digest, rate 1088 bits.
    ///
    /// # Example
    ///
    /// ```
    /// let digest = krv_sha3::Sha3_256::digest(b"");
    /// assert_eq!(
    ///     krv_sha3::hex(&digest),
    ///     "a7ffc6f8bf1ed76651c14756a061d662f580ff4de43b49fa82d80a4b80f8434a"
    /// );
    /// ```
    Sha3_256,
    256
);
sha3_function!(
    /// SHA3-384 (FIPS 202 §6.1): 384-bit digest, rate 832 bits.
    Sha3_384,
    384
);
sha3_function!(
    /// SHA3-512 (FIPS 202 §6.1): 512-bit digest, rate 576 bits.
    Sha3_512,
    512
);

/// An extendable-output function: absorb once, squeeze any length.
pub trait Xof {
    /// Absorbs more input.
    fn update(&mut self, data: &[u8]);
    /// Squeezes the next `out.len()` output bytes.
    fn squeeze_into(&mut self, out: &mut [u8]);
    /// Squeezes the next `len` output bytes.
    fn squeeze(&mut self, len: usize) -> Vec<u8> {
        let mut out = vec![0u8; len];
        self.squeeze_into(&mut out);
        out
    }
}

macro_rules! shake_function {
    ($(#[$doc:meta])* $name:ident, $bits:expr) => {
        $(#[$doc])*
        #[derive(Debug, Clone)]
        pub struct $name<B = ReferenceBackend> {
            sponge: Sponge<B>,
        }

        impl $name<ReferenceBackend> {
            /// Creates an XOF using the software reference backend.
            pub fn new() -> Self {
                Self::with_backend(ReferenceBackend::new())
            }

            /// One-shot: absorb `msg`, squeeze `len` bytes.
            pub fn digest(msg: &[u8], len: usize) -> Vec<u8> {
                let mut xof = Self::new();
                xof.update(msg);
                xof.squeeze(len)
            }
        }

        impl Default for $name<ReferenceBackend> {
            fn default() -> Self {
                Self::new()
            }
        }

        impl<B: PermutationBackend> $name<B> {
            /// Creates an XOF over a custom permutation backend.
            pub fn with_backend(backend: B) -> Self {
                Self {
                    sponge: Sponge::new(SpongeParams::shake($bits), backend),
                }
            }

            /// Hashes every message with one work-scheduled batch on
            /// `backend` (see [`crate::hash_batch`]), squeezing `len`
            /// bytes per message; messages may have arbitrary,
            /// different lengths. Outputs come back in message order.
            pub fn digest_batch(backend: B, messages: &[&[u8]], len: usize) -> Vec<Vec<u8>> {
                let requests: Vec<crate::batch::BatchRequest<'_>> = messages
                    .iter()
                    .map(|m| crate::batch::BatchRequest::new(m, len))
                    .collect();
                crate::batch::hash_batch(SpongeParams::shake($bits), backend, &requests)
            }
        }

        impl<B: PermutationBackend> Xof for $name<B> {
            fn update(&mut self, data: &[u8]) {
                self.sponge.absorb(data);
            }

            fn squeeze_into(&mut self, out: &mut [u8]) {
                self.sponge.squeeze_into(out);
            }
        }

        impl<B: PermutationBackend> std::io::Write for $name<B> {
            /// Absorbs the buffer; never errors.
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.update(buf);
                Ok(buf.len())
            }

            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
    };
}

shake_function!(
    /// SHAKE128 (FIPS 202 §6.2): 128-bit security XOF, rate 1344 bits.
    ///
    /// # Example
    ///
    /// ```
    /// use krv_sha3::{Shake128, Xof};
    ///
    /// let mut xof = Shake128::new();
    /// xof.update(b"seed");
    /// let out = xof.squeeze(64);
    /// assert_eq!(out.len(), 64);
    /// ```
    Shake128,
    128
);
shake_function!(
    /// SHAKE256 (FIPS 202 §6.2): 256-bit security XOF, rate 1088 bits.
    Shake256,
    256
);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hex;

    // FIPS-202 known-answer vectors for the empty message and "abc".
    #[test]
    fn sha3_224_kat() {
        assert_eq!(
            hex(&Sha3_224::digest(b"")),
            "6b4e03423667dbb73b6e15454f0eb1abd4597f9a1b078e3f5b5a6bc7"
        );
        assert_eq!(
            hex(&Sha3_224::digest(b"abc")),
            "e642824c3f8cf24ad09234ee7d3c766fc9a3a5168d0c94ad73b46fdf"
        );
    }

    #[test]
    fn sha3_256_kat() {
        assert_eq!(
            hex(&Sha3_256::digest(b"")),
            "a7ffc6f8bf1ed76651c14756a061d662f580ff4de43b49fa82d80a4b80f8434a"
        );
        assert_eq!(
            hex(&Sha3_256::digest(b"abc")),
            "3a985da74fe225b2045c172d6bd390bd855f086e3e9d525b46bfe24511431532"
        );
    }

    #[test]
    fn sha3_384_kat() {
        assert_eq!(
            hex(&Sha3_384::digest(b"")),
            "0c63a75b845e4f7d01107d852e4c2485c51a50aaaa94fc61995e71bbee983a2a\
             c3713831264adb47fb6bd1e058d5f004"
        );
        assert_eq!(
            hex(&Sha3_384::digest(b"abc")),
            "ec01498288516fc926459f58e2c6ad8df9b473cb0fc08c2596da7cf0e49be4b2\
             98d88cea927ac7f539f1edf228376d25"
        );
    }

    #[test]
    fn sha3_512_kat() {
        assert_eq!(
            hex(&Sha3_512::digest(b"")),
            "a69f73cca23a9ac5c8b567dc185a756e97c982164fe25859e0d1dcc1475c80a6\
             15b2123af1f5f94c11e3e9402c3ac558f500199d95b6d3e301758586281dcd26"
        );
        assert_eq!(
            hex(&Sha3_512::digest(b"abc")),
            "b751850b1a57168a5693cd924b6b096e08f621827444f70d884f5d0240d2712e\
             10e116e9192af3c91a7ec57647e3934057340b4cf408d5a56592f8274eec53f0"
        );
    }

    #[test]
    fn shake128_kat() {
        assert_eq!(
            hex(&Shake128::digest(b"", 32)),
            "7f9c2ba4e88f827d616045507605853ed73b8093f6efbc88eb1a6eacfa66ef26"
        );
    }

    #[test]
    fn shake256_kat() {
        assert_eq!(
            hex(&Shake256::digest(b"", 32)),
            "46b9dd2b0ba88d13233b3feb743eeb243fcd52ea62b81b82b50c27646ed5762f"
        );
    }

    #[test]
    fn incremental_update_matches_oneshot() {
        let msg = b"the quick brown fox jumps over the lazy dog";
        let mut hasher = Sha3_256::new();
        hasher.update(&msg[..10]);
        hasher.update(&msg[10..]);
        assert_eq!(hasher.finalize(), Sha3_256::digest(msg));
    }

    #[test]
    fn xof_streaming_matches_oneshot() {
        let mut xof = Shake256::new();
        xof.update(b"stream");
        let mut streamed = xof.squeeze(10);
        streamed.extend(xof.squeeze(90));
        assert_eq!(streamed, Shake256::digest(b"stream", 100));
    }

    #[test]
    fn hashers_are_io_writers() {
        use std::io::Write as _;
        let mut hasher = Sha3_256::new();
        std::io::copy(&mut &b"abc"[..], &mut hasher).expect("copy into hasher");
        assert_eq!(hasher.finalize(), Sha3_256::digest(b"abc"));
        let mut xof = Shake128::new();
        write!(xof, "seed-{}", 42).expect("formatted absorb");
        let mut reference = Shake128::new();
        reference.update(b"seed-42");
        assert_eq!(xof.squeeze(32), reference.squeeze(32));
    }

    #[test]
    fn digest_batch_matches_one_shot() {
        use crate::backend::ReferenceBackend;
        let messages: [&[u8]; 3] = [b"", b"abc", b"a much longer message for batching"];
        let digests = Sha3_256::digest_batch(ReferenceBackend::new(), &messages);
        for (message, digest) in messages.iter().zip(&digests) {
            assert_eq!(*digest, Sha3_256::digest(message));
        }
        let outs = Shake256::digest_batch(ReferenceBackend::new(), &messages, 48);
        for (message, out) in messages.iter().zip(&outs) {
            assert_eq!(*out, Shake256::digest(message, 48));
        }
    }

    #[test]
    fn long_message_crosses_many_blocks() {
        let msg = vec![0x61u8; 1_000_000]; // one million 'a's
        let digest = Sha3_256::digest(&msg);
        // Well-known "million a" vector for SHA3-256.
        assert_eq!(
            hex(&digest),
            "5c8875ae474a3634ba4fd55ec85bffd661f32aca75c6d699d0cdcb6c115891c1"
        );
    }
}
