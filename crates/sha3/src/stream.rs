//! Batched streaming: many live sponge sessions sharing each
//! permutation round.
//!
//! One-shot traffic gets its drain-and-refill schedule from
//! [`crate::hash_batch`]. Streaming sessions cannot use it: their
//! [`SpongeState`]s live across micro-batches (in a server session
//! table), and each scheduler pass only carries *one bounded operation*
//! per session — absorb a chunk, pad, squeeze a window. [`drive_stream`]
//! is the batched driver for exactly that shape: it advances every
//! operation's host-side byte work until the state stalls on a
//! permutation, packs precisely the stalled states, permutes them in one
//! backend call, and repeats until every operation completes. Finished
//! operations drop out and the pack compacts, so a short absorb never
//! pads out the schedule of a long one — the same minimum-pass property
//! as `hash_batch`, but over borrowed, resumable states.
//!
//! Unlike `hash_batch`, operations in one drive need **not** share
//! [`SpongeParams`](crate::SpongeParams): the permutation is
//! rate-agnostic, so a SHAKE128 absorb and a SHA3-512 squeeze happily
//! share hardware passes.

use crate::backend::PermutationBackend;
use crate::sponge::SpongeState;
use krv_keccak::KeccakState;

/// One bounded streaming operation: absorb `absorb`, then (optionally)
/// pad, then squeeze `squeeze.len()` bytes — any of the three parts may
/// be empty, and a full one-shot hash is all three at once.
///
/// The phases mirror the sponge lifecycle, so the usual wire mapping is:
/// `ABSORB(chunk)` → `{absorb: chunk}`, `FINALIZE` → `{finalize: true}`
/// (with any algorithm suffix, e.g. KMAC's `right_encode(L·8)`, carried
/// in `absorb`), `SQUEEZE(len)` → `{squeeze: &mut out}`.
#[derive(Debug, Default)]
pub struct StreamOp<'a> {
    /// Message bytes to absorb first (may be empty).
    pub absorb: &'a [u8],
    /// Whether to apply domain separation + pad10*1 after absorbing.
    pub finalize: bool,
    /// Output buffer to squeeze after padding (may be empty). Requires
    /// the state to be finalized — by this op or a previous one.
    pub squeeze: &'a mut [u8],
}

impl<'a> StreamOp<'a> {
    /// An absorb-only operation.
    pub fn absorb(data: &'a [u8]) -> Self {
        Self {
            absorb: data,
            finalize: false,
            squeeze: &mut [],
        }
    }

    /// A finalize-only operation (pad, ready the squeeze phase).
    pub fn finalize() -> Self {
        Self {
            absorb: &[],
            finalize: true,
            squeeze: &mut [],
        }
    }

    /// A squeeze-only operation.
    pub fn squeeze(out: &'a mut [u8]) -> Self {
        Self {
            absorb: &[],
            finalize: false,
            squeeze: out,
        }
    }
}

/// One session's entry in a [`drive_stream`] round: its live state and
/// the operation to apply.
#[derive(Debug)]
pub struct StreamItem<'a> {
    /// The session's sponge state, borrowed for the duration of the
    /// drive and advanced in place.
    pub state: &'a mut SpongeState,
    /// The operation to complete.
    pub op: StreamOp<'a>,
}

/// Host-side progress of one operation between permutation rounds.
#[derive(Debug, Clone, Copy, Default)]
struct Progress {
    consumed: usize,
    written: usize,
}

/// Advances one operation until it completes (returns `true`) or its
/// state stalls on a permutation (returns `false`).
fn advance(item: &mut StreamItem<'_>, p: &mut Progress) -> bool {
    loop {
        if item.state.needs_permute() {
            return false;
        }
        if p.consumed < item.op.absorb.len() {
            p.consumed += item.state.absorb_step(&item.op.absorb[p.consumed..]);
            continue;
        }
        if item.op.finalize && !item.state.squeezing() {
            item.state.finalize_pad();
            continue;
        }
        if p.written < item.op.squeeze.len() {
            let written = p.written;
            p.written += item.state.squeeze_step(&mut item.op.squeeze[written..]);
            continue;
        }
        return true;
    }
}

/// Completes every operation in `items`, sharing permutation rounds
/// across all live states.
///
/// Each round packs exactly the states that stalled on a permutation
/// into one dense [`permute_all`] call — on a wide backend that is
/// `⌈live/SN⌉` hardware passes — then resumes their host-side byte
/// work. Operations that finish drop out and the pack compacts. Every
/// state is advanced exactly as a standalone [`crate::Sponge`] would
/// advance it (there are property tests pinning equality at every chunk
/// split); only the scheduling differs.
///
/// Unlike `hash_batch`'s owned pack, states here are borrowed from
/// their sessions, so each round gathers the stalled states into a
/// scratch pack and scatters them back — 200 bytes each way per state
/// per round, noise next to the permutation itself.
///
/// # Panics
///
/// Panics if an operation violates the sponge lifecycle: absorbing on a
/// state already squeezing, finalizing twice, or squeezing an
/// unfinalized state with `finalize: false`. Callers (the service's
/// streaming lane) enforce the session state machine before dispatch.
///
/// [`permute_all`]: PermutationBackend::permute_all
pub fn drive_stream<B: PermutationBackend>(backend: &mut B, items: &mut [StreamItem<'_>]) {
    let mut progress = vec![Progress::default(); items.len()];
    // Indices of operations still stalled on a permutation.
    let mut live: Vec<usize> = Vec::with_capacity(items.len());
    for (index, item) in items.iter_mut().enumerate() {
        if !advance(item, &mut progress[index]) {
            live.push(index);
        }
    }
    let mut pack: Vec<KeccakState> = Vec::with_capacity(live.len());
    while !live.is_empty() {
        pack.clear();
        pack.extend(live.iter().map(|&index| *items[index].state.state()));
        backend.permute_all(&mut pack);
        let mut kept = 0;
        for slot in 0..live.len() {
            let index = live[slot];
            *items[index].state.state_mut() = pack[slot];
            items[index].state.note_permuted();
            if !advance(&mut items[index], &mut progress[index]) {
                live[kept] = index;
                kept += 1;
            }
        }
        live.truncate(kept);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::ReferenceBackend;
    use crate::functions::{Shake128, Shake256};
    use crate::sponge::{Sponge, SpongeParams};
    use crate::Sha3_256;

    /// Runs one session's ops sequentially through drive_stream (each op
    /// its own single-item drive, like one scheduler pass per frame).
    fn run_session(params: SpongeParams, ops: Vec<StreamOp<'_>>) -> SpongeState {
        let mut state = SpongeState::new(params);
        let mut backend = ReferenceBackend::new();
        for op in ops {
            let mut items = [StreamItem {
                state: &mut state,
                op,
            }];
            drive_stream(&mut backend, &mut items);
        }
        state
    }

    #[test]
    fn absorb_at_every_chunk_split_matches_oneshot() {
        let params = SpongeParams::sha3(256);
        let rate = params.rate_bytes();
        let msg: Vec<u8> = (0..rate + 7).map(|i| (i * 13) as u8).collect();
        let expected = Sha3_256::digest(&msg);
        // Splits of 1 byte up to more than a full rate block.
        for split in [1, 2, 3, rate - 1, rate, rate + 1, msg.len()] {
            let mut ops: Vec<StreamOp<'_>> = msg.chunks(split).map(StreamOp::absorb).collect();
            ops.push(StreamOp::finalize());
            let mut out = [0u8; 32];
            ops.push(StreamOp::squeeze(&mut out));
            run_session(params, ops);
            assert_eq!(out, expected, "split {split}");
        }
    }

    #[test]
    fn squeeze_at_every_split_matches_oneshot() {
        let params = SpongeParams::shake(128);
        let rate = params.rate_bytes();
        let total = 2 * rate + 5;
        let expected = Shake128::digest(b"stream squeeze", total);
        for split in [1, 7, rate - 1, rate, rate + 1, total] {
            let mut state = SpongeState::new(params);
            let mut backend = ReferenceBackend::new();
            let mut items = [StreamItem {
                state: &mut state,
                op: StreamOp {
                    absorb: b"stream squeeze",
                    finalize: true,
                    squeeze: &mut [],
                },
            }];
            drive_stream(&mut backend, &mut items);
            let mut out = vec![0u8; total];
            let mut at = 0;
            while at < total {
                let take = split.min(total - at);
                let mut items = [StreamItem {
                    state: &mut state,
                    op: StreamOp::squeeze(&mut out[at..at + take]),
                }];
                drive_stream(&mut backend, &mut items);
                at += take;
            }
            assert_eq!(out, expected, "split {split}");
        }
    }

    #[test]
    fn one_op_can_do_all_three_phases() {
        let mut out = [0u8; 64];
        let mut state = SpongeState::new(SpongeParams::shake(256));
        let mut items = [StreamItem {
            state: &mut state,
            op: StreamOp {
                absorb: b"one shot through the stream driver",
                finalize: true,
                squeeze: &mut out,
            },
        }];
        drive_stream(&mut ReferenceBackend::new(), &mut items);
        assert_eq!(
            out.to_vec(),
            Shake256::digest(b"one shot through the stream driver", 64)
        );
    }

    #[test]
    fn mixed_params_share_one_drive() {
        // Sessions with different rates (and phases) in one round: the
        // permutation is rate-agnostic, so nothing may interfere.
        let long = vec![0xA7u8; 500];
        let mut shake_state = SpongeState::new(SpongeParams::shake(128));
        let mut sha3_state = SpongeState::new(SpongeParams::sha3(512));
        let mut finished = SpongeState::new(SpongeParams::shake(256));
        let mut backend = ReferenceBackend::new();
        let mut setup = [StreamItem {
            state: &mut finished,
            op: StreamOp {
                absorb: b"already finalized",
                finalize: true,
                squeeze: &mut [],
            },
        }];
        drive_stream(&mut backend, &mut setup);
        let mut squeeze_out = [0u8; 100];
        let mut items = [
            StreamItem {
                state: &mut shake_state,
                op: StreamOp::absorb(&long),
            },
            StreamItem {
                state: &mut sha3_state,
                op: StreamOp::absorb(&long),
            },
            StreamItem {
                state: &mut finished,
                op: StreamOp::squeeze(&mut squeeze_out),
            },
        ];
        drive_stream(&mut backend, &mut items);
        // Finish the two absorbing sessions and check all three outputs.
        let mut a = [0u8; 32];
        let mut b = [0u8; 64];
        let mut items = [
            StreamItem {
                state: &mut shake_state,
                op: StreamOp {
                    absorb: &[],
                    finalize: true,
                    squeeze: &mut a,
                },
            },
            StreamItem {
                state: &mut sha3_state,
                op: StreamOp {
                    absorb: &[],
                    finalize: true,
                    squeeze: &mut b,
                },
            },
        ];
        drive_stream(&mut backend, &mut items);
        assert_eq!(a.to_vec(), Shake128::digest(&long, 32));
        let mut sha3 = crate::Sha3_512::new();
        sha3.update(&long);
        assert_eq!(b, sha3.finalize());
        assert_eq!(
            squeeze_out.to_vec(),
            Shake256::digest(b"already finalized", 100)
        );
    }

    /// Records how many states each permute_all call carried.
    struct CountingBackend {
        calls: Vec<usize>,
    }

    impl PermutationBackend for CountingBackend {
        fn permute_all(&mut self, states: &mut [KeccakState]) {
            self.calls.push(states.len());
            ReferenceBackend::new().permute_all(states);
        }
    }

    #[test]
    fn finished_ops_compact_out_of_the_pack() {
        // A 1-block absorb and a 4-block absorb: round 1 permutes both,
        // rounds 2..4 carry only the long one.
        let rate = SpongeParams::shake(128).rate_bytes();
        let short = vec![1u8; rate];
        let long = vec![2u8; 4 * rate];
        let mut s1 = SpongeState::new(SpongeParams::shake(128));
        let mut s2 = SpongeState::new(SpongeParams::shake(128));
        let mut backend = CountingBackend { calls: Vec::new() };
        let mut items = [
            StreamItem {
                state: &mut s1,
                op: StreamOp::absorb(&short),
            },
            StreamItem {
                state: &mut s2,
                op: StreamOp::absorb(&long),
            },
        ];
        drive_stream(&mut backend, &mut items);
        assert_eq!(backend.calls, vec![2, 1, 1, 1]);
    }

    #[test]
    fn empty_ops_need_no_permutation() {
        let mut state = SpongeState::new(SpongeParams::sha3(256));
        let mut backend = CountingBackend { calls: Vec::new() };
        let mut items = [StreamItem {
            state: &mut state,
            op: StreamOp::absorb(b""),
        }];
        drive_stream(&mut backend, &mut items);
        assert!(backend.calls.is_empty(), "no work, no permutations");
        let mut items: [StreamItem<'_>; 0] = [];
        drive_stream(&mut backend, &mut items);
        assert!(backend.calls.is_empty());
    }

    #[test]
    fn chunked_session_matches_incremental_sponge_state() {
        // Interleave absorbs of two sessions across several drives, then
        // squeeze both across several drives: byte-identical to Sponge.
        let msg_a: Vec<u8> = (0..700u16).map(|i| i as u8).collect();
        let msg_b: Vec<u8> = (0..450u16).map(|i| (i * 3) as u8).collect();
        let mut a = SpongeState::new(SpongeParams::shake(256));
        let mut b = SpongeState::new(SpongeParams::shake(256));
        let mut backend = ReferenceBackend::new();
        let chunks_a: Vec<&[u8]> = msg_a.chunks(97).collect();
        let chunks_b: Vec<&[u8]> = msg_b.chunks(61).collect();
        for i in 0..chunks_a.len().max(chunks_b.len()) {
            let mut items = [
                StreamItem {
                    state: &mut a,
                    op: StreamOp::absorb(chunks_a.get(i).copied().unwrap_or(b"")),
                },
                StreamItem {
                    state: &mut b,
                    op: StreamOp::absorb(chunks_b.get(i).copied().unwrap_or(b"")),
                },
            ];
            drive_stream(&mut backend, &mut items);
        }
        let mut out_a = [0u8; 48];
        let mut out_b = [0u8; 48];
        let mut items = [
            StreamItem {
                state: &mut a,
                op: StreamOp {
                    absorb: &[],
                    finalize: true,
                    squeeze: &mut out_a,
                },
            },
            StreamItem {
                state: &mut b,
                op: StreamOp {
                    absorb: &[],
                    finalize: true,
                    squeeze: &mut out_b,
                },
            },
        ];
        drive_stream(&mut backend, &mut items);
        let mut sponge = Sponge::new(SpongeParams::shake(256), ReferenceBackend::new());
        sponge.absorb(&msg_a);
        assert_eq!(out_a.to_vec(), sponge.squeeze(48));
        let mut sponge = Sponge::new(SpongeParams::shake(256), ReferenceBackend::new());
        sponge.absorb(&msg_b);
        assert_eq!(out_b.to_vec(), sponge.squeeze(48));
    }
}
