//! SHA-3 hash functions and SHAKE extendable-output functions over
//! pluggable Keccak-f\[1600\] permutation backends.
//!
//! This crate implements the sponge construction (padding, absorbing,
//! squeezing — paper Figure 1) and the six FIPS-202 functions on top of it:
//! SHA3-224, SHA3-256, SHA3-384, SHA3-512, SHAKE128 and SHAKE256.
//!
//! The permutation itself is abstracted behind [`PermutationBackend`] so
//! that the same sponge code can run on:
//!
//! * the software reference permutation ([`ReferenceBackend`], from
//!   [`krv_keccak`]), and
//! * the cycle-accurate simulated SIMD processor with custom vector
//!   extensions (`krv_core::EngineBackend`), which processes several
//!   sponge states in one permutation call.
//!
//! [`batch`] exposes the multi-state interface the paper motivates with
//! CRYSTALS-Kyber: hash `SN` same-length inputs through a backend that
//! permutes all states simultaneously.
//!
//! # Example
//!
//! ```
//! use krv_sha3::Sha3_256;
//!
//! let digest = Sha3_256::digest(b"abc");
//! assert_eq!(
//!     krv_sha3::hex(&digest),
//!     "3a985da74fe225b2045c172d6bd390bd855f086e3e9d525b46bfe24511431532"
//! );
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
pub mod batch;
pub mod functions;
pub mod legacy;
pub mod sp800_185;
pub mod sponge;
pub mod stream;
pub mod tree;

pub use backend::{
    permute_all_grouped, BatchPermutationBackend, PermutationBackend, ReferenceBackend,
};
pub use batch::{hash_batch, BatchRequest, BatchSponge};
pub use functions::{Sha3_224, Sha3_256, Sha3_384, Sha3_512, Shake128, Shake256, Xof};
pub use sponge::{DomainSeparator, Sponge, SpongeParams, SpongeState};
pub use stream::{drive_stream, StreamItem, StreamOp};
pub use tree::TreeMode;

/// Formats bytes as a lowercase hexadecimal string.
///
/// # Example
///
/// ```
/// assert_eq!(krv_sha3::hex(&[0xDE, 0xAD]), "dead");
/// ```
pub fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

#[cfg(test)]
mod tests {
    #[test]
    fn hex_formats_lowercase() {
        assert_eq!(super::hex(&[0x00, 0xAB, 0xFF]), "00abff");
    }
}
