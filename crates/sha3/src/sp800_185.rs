//! NIST SP 800-185 derived functions: cSHAKE and KMAC.
//!
//! These build on the same sponge (and therefore run on any
//! [`PermutationBackend`], including the simulated vector processor):
//!
//! * [`CShake128`] / [`CShake256`] — customizable SHAKE with a function
//!   name `N` and customization string `S`. With both empty, cSHAKE *is*
//!   SHAKE (SP 800-185 §3.3) — a spec identity the tests assert.
//! * [`kmac128`] / [`kmac256`] — the Keccak message authentication code.

use crate::backend::{PermutationBackend, ReferenceBackend};
use crate::functions::Xof;
use crate::sponge::{DomainSeparator, Sponge, SpongeParams};

/// `left_encode(x)` (SP 800-185 §2.3.1): big-endian bytes of `x`
/// prefixed with their count.
fn left_encode(value: u64) -> Vec<u8> {
    let bytes = value.to_be_bytes();
    let skip = bytes.iter().take_while(|&&b| b == 0).count().min(7);
    let mut out = vec![(8 - skip) as u8];
    out.extend_from_slice(&bytes[skip..]);
    out
}

/// `right_encode(x)` (SP 800-185 §2.3.1): big-endian bytes of `x`
/// suffixed with their count.
fn right_encode(value: u64) -> Vec<u8> {
    let bytes = value.to_be_bytes();
    let skip = bytes.iter().take_while(|&&b| b == 0).count().min(7);
    let mut out = bytes[skip..].to_vec();
    out.push((8 - skip) as u8);
    out
}

/// `encode_string(S)` (SP 800-185 §2.3.2): bit-length prefix + bytes.
fn encode_string(s: &[u8]) -> Vec<u8> {
    let mut out = left_encode(s.len() as u64 * 8);
    out.extend_from_slice(s);
    out
}

/// `bytepad(X, w)` (SP 800-185 §2.3.3): length-prefixed and zero-padded
/// to a multiple of `w`.
fn bytepad(x: &[u8], w: usize) -> Vec<u8> {
    let mut out = left_encode(w as u64);
    out.extend_from_slice(x);
    while !out.len().is_multiple_of(w) {
        out.push(0);
    }
    out
}

macro_rules! cshake {
    ($(#[$doc:meta])* $name:ident, $bits:expr) => {
        $(#[$doc])*
        #[derive(Debug, Clone)]
        pub struct $name<B = ReferenceBackend> {
            sponge: Sponge<B>,
            /// Plain SHAKE mode (both N and S empty, SP 800-185 §3.3).
            plain: bool,
        }

        impl $name<ReferenceBackend> {
            /// Creates a cSHAKE instance with function name `n` and
            /// customization string `s` on the reference backend.
            pub fn new(n: &[u8], s: &[u8]) -> Self {
                Self::with_backend(n, s, ReferenceBackend::new())
            }

            /// One-shot: absorb `msg`, squeeze `len` bytes.
            pub fn digest(n: &[u8], s: &[u8], msg: &[u8], len: usize) -> Vec<u8> {
                let mut xof = Self::new(n, s);
                xof.update(msg);
                xof.squeeze(len)
            }
        }

        impl<B: PermutationBackend> $name<B> {
            /// Creates a cSHAKE instance over a custom backend.
            pub fn with_backend(n: &[u8], s: &[u8], backend: B) -> Self {
                let rate = SpongeParams::shake($bits).rate_bytes();
                let plain = n.is_empty() && s.is_empty();
                // cSHAKE appends the bits `00` (padded byte 0x04); with
                // empty N and S it degenerates to plain SHAKE (§3.3).
                let domain = if plain {
                    DomainSeparator::Shake
                } else {
                    DomainSeparator::CShake
                };
                let params = SpongeParams::new(rate, domain);
                let mut sponge = Sponge::new(params, backend);
                if !plain {
                    let mut prefix = encode_string(n);
                    prefix.extend(encode_string(s));
                    sponge.absorb(&bytepad(&prefix, rate));
                }
                Self { sponge, plain }
            }

            /// Whether this instance degenerated to plain SHAKE.
            pub fn is_plain_shake(&self) -> bool {
                self.plain
            }
        }

        impl<B: PermutationBackend> Xof for $name<B> {
            fn update(&mut self, data: &[u8]) {
                self.sponge.absorb(data);
            }

            fn squeeze_into(&mut self, out: &mut [u8]) {
                self.sponge.squeeze_into(out);
            }
        }
    };
}

cshake!(
    /// cSHAKE128 (SP 800-185 §3): 128-bit security customizable XOF.
    ///
    /// # Example
    ///
    /// ```
    /// use krv_sha3::sp800_185::CShake128;
    /// use krv_sha3::Xof;
    ///
    /// let mut xof = CShake128::new(b"", b"Email Signature");
    /// xof.update(&[0x00, 0x01, 0x02, 0x03]);
    /// let out = xof.squeeze(32);
    /// assert_eq!(out.len(), 32);
    /// ```
    CShake128,
    128
);
cshake!(
    /// cSHAKE256 (SP 800-185 §3): 256-bit security customizable XOF.
    CShake256,
    256
);

macro_rules! kmac {
    ($(#[$doc:meta])* $name:ident, $cshake:ident, $bits:expr) => {
        $(#[$doc])*
        pub fn $name(key: &[u8], message: &[u8], output_len: usize, customization: &[u8]) -> Vec<u8> {
            let rate = SpongeParams::shake($bits).rate_bytes();
            let mut xof = $cshake::new(b"KMAC", customization);
            xof.update(&bytepad(&encode_string(key), rate));
            xof.update(message);
            xof.update(&right_encode(output_len as u64 * 8));
            xof.squeeze(output_len)
        }
    };
}

kmac!(
    /// KMAC128 (SP 800-185 §4).
    ///
    /// # Example
    ///
    /// ```
    /// let tag = krv_sha3::sp800_185::kmac128(b"my key", b"message", 32, b"");
    /// assert_eq!(tag.len(), 32);
    /// ```
    kmac128,
    CShake128,
    128
);
kmac!(
    /// KMAC256 (SP 800-185 §4).
    kmac256,
    CShake256,
    256
);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::functions::{Shake128, Shake256};
    use crate::hex;

    #[test]
    fn left_encode_spec_examples() {
        assert_eq!(left_encode(0), vec![1, 0]);
        assert_eq!(left_encode(168), vec![1, 168]);
        assert_eq!(left_encode(256), vec![2, 1, 0]);
    }

    #[test]
    fn right_encode_spec_examples() {
        assert_eq!(right_encode(0), vec![0, 1]);
        assert_eq!(right_encode(256), vec![1, 0, 2]);
    }

    #[test]
    fn encode_string_prefixes_bit_length() {
        assert_eq!(encode_string(b""), vec![1, 0]);
        assert_eq!(encode_string(b"ab"), vec![1, 16, b'a', b'b']);
    }

    #[test]
    fn bytepad_pads_to_width() {
        let padded = bytepad(b"xyz", 8);
        assert_eq!(padded.len(), 8);
        assert_eq!(&padded[..2], &[1, 8]);
    }

    #[test]
    fn cshake_with_empty_names_is_shake() {
        // SP 800-185 §3.3: cSHAKE(X, L, "", "") = SHAKE(X, L).
        for msg in [&b""[..], b"abc", b"a longer message for the sponge"] {
            let mut cshake = CShake128::new(b"", b"");
            assert!(cshake.is_plain_shake());
            cshake.update(msg);
            let mut shake = Shake128::new();
            shake.update(msg);
            assert_eq!(cshake.squeeze(64), shake.squeeze(64));
            let mut cshake = CShake256::new(b"", b"");
            cshake.update(msg);
            let mut shake = Shake256::new();
            shake.update(msg);
            assert_eq!(cshake.squeeze(64), shake.squeeze(64));
        }
    }

    #[test]
    fn cshake128_nist_sample_one() {
        // NIST SP 800-185 sample file, cSHAKE128 Sample #1:
        // X = 00010203, N = "", S = "Email Signature", L = 256.
        let out = CShake128::digest(b"", b"Email Signature", &[0, 1, 2, 3], 32);
        assert_eq!(
            hex(&out),
            "c1c36925b6409a04f1b504fcbca9d82b4017277cb5ed2b2065fc1d3814d5aaf5"
        );
    }

    #[test]
    fn kmac128_nist_sample_one() {
        // NIST SP 800-185 sample file, KMAC128 Sample #1:
        // K = 40..5f, X = 00010203, L = 256, S = "".
        let key: Vec<u8> = (0x40..=0x5F).collect();
        let tag = kmac128(&key, &[0, 1, 2, 3], 32, b"");
        assert_eq!(
            hex(&tag),
            "e5780b0d3ea6f7d3a429c5706aa43a00fadbd7d49628839e3187243f456ee14e"
        );
    }

    #[test]
    fn kmac_distinguishes_keys_messages_and_customization() {
        let base = kmac128(b"key-a", b"message", 32, b"ctx");
        assert_ne!(base, kmac128(b"key-b", b"message", 32, b"ctx"));
        assert_ne!(base, kmac128(b"key-a", b"messagf", 32, b"ctx"));
        assert_ne!(base, kmac128(b"key-a", b"message", 32, b"ctx2"));
    }

    #[test]
    fn kmac_output_length_is_bound_into_the_tag() {
        // Unlike a raw XOF, truncating KMAC(L=64) does not give KMAC(L=32).
        let long = kmac256(b"key", b"msg", 64, b"");
        let short = kmac256(b"key", b"msg", 32, b"");
        assert_ne!(&long[..32], &short[..]);
    }

    #[test]
    fn cshake_runs_on_custom_backends() {
        // Any PermutationBackend works — here the reference one via the
        // generic constructor, mirroring hardware use.
        let mut xof = CShake128::with_backend(b"KRV", b"test", ReferenceBackend::new());
        xof.update(b"data");
        assert_eq!(xof.squeeze(16).len(), 16);
    }
}
