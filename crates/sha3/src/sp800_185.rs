//! NIST SP 800-185 derived functions: cSHAKE, KMAC and TupleHash
//! (ParallelHash lives in [`crate::tree`], which generalizes its
//! chunked-leaf shape).
//!
//! These build on the same sponge (and therefore run on any
//! [`PermutationBackend`], including the simulated vector processor):
//!
//! * [`CShake128`] / [`CShake256`] — customizable SHAKE with a function
//!   name `N` and customization string `S`. With both empty, cSHAKE *is*
//!   SHAKE (SP 800-185 §3.3) — a spec identity the tests assert.
//! * [`kmac128`] / [`kmac256`] — the Keccak message authentication code.
//! * [`tuple_hash128`] / [`tuple_hash256`] — unambiguous hashing of a
//!   *sequence* of strings: every entry is `encode_string`-framed, so
//!   `("ab", "c")` and `("a", "bc")` hash differently.
//!
//! The `*_prefix` / `*_suffix` helpers expose the byte framing each
//! function wraps around the raw sponge. They exist for the streaming
//! wire path: a server session absorbs `kmac_stream_prefix` once at
//! `OPEN`, raw message chunks per `ABSORB`, and
//! [`output_length_suffix`] at `FINALIZE` — and lands on exactly the
//! same sponge input as the one-shot functions here (property-tested).

use crate::backend::{PermutationBackend, ReferenceBackend};
use crate::functions::Xof;
use crate::sponge::{DomainSeparator, Sponge, SpongeParams};

/// `left_encode(x)` (SP 800-185 §2.3.1): big-endian bytes of `x`
/// prefixed with their count.
pub fn left_encode(value: u64) -> Vec<u8> {
    let bytes = value.to_be_bytes();
    let skip = bytes.iter().take_while(|&&b| b == 0).count().min(7);
    let mut out = vec![(8 - skip) as u8];
    out.extend_from_slice(&bytes[skip..]);
    out
}

/// `right_encode(x)` (SP 800-185 §2.3.1): big-endian bytes of `x`
/// suffixed with their count.
pub fn right_encode(value: u64) -> Vec<u8> {
    let bytes = value.to_be_bytes();
    let skip = bytes.iter().take_while(|&&b| b == 0).count().min(7);
    let mut out = bytes[skip..].to_vec();
    out.push((8 - skip) as u8);
    out
}

/// `encode_string(S)` (SP 800-185 §2.3.2): bit-length prefix + bytes.
pub fn encode_string(s: &[u8]) -> Vec<u8> {
    let mut out = left_encode(s.len() as u64 * 8);
    out.extend_from_slice(s);
    out
}

/// `bytepad(X, w)` (SP 800-185 §2.3.3): length-prefixed and zero-padded
/// to a multiple of `w`.
pub fn bytepad(x: &[u8], w: usize) -> Vec<u8> {
    let mut out = left_encode(w as u64);
    out.extend_from_slice(x);
    while !out.len().is_multiple_of(w) {
        out.push(0);
    }
    out
}

/// The sponge parameters a cSHAKE instance with function name `n` and
/// customization `s` uses: SHAKE's rate, with the cSHAKE domain
/// separator unless both strings are empty (§3.3 — then it *is* SHAKE).
pub fn cshake_params(security_bits: usize, n: &[u8], s: &[u8]) -> SpongeParams {
    let rate = SpongeParams::shake(security_bits).rate_bytes();
    let domain = if n.is_empty() && s.is_empty() {
        DomainSeparator::Shake
    } else {
        DomainSeparator::CShake
    };
    SpongeParams::new(rate, domain)
}

/// The bytes a cSHAKE instance absorbs before the message:
/// `bytepad(encode_string(N) ‖ encode_string(S), rate)` — empty in the
/// plain-SHAKE degenerate case.
pub fn cshake_stream_prefix(security_bits: usize, n: &[u8], s: &[u8]) -> Vec<u8> {
    if n.is_empty() && s.is_empty() {
        return Vec::new();
    }
    let rate = SpongeParams::shake(security_bits).rate_bytes();
    let mut body = encode_string(n);
    body.extend(encode_string(s));
    bytepad(&body, rate)
}

/// The bytes a KMAC instance absorbs before the message: the cSHAKE
/// prefix for `N = "KMAC"` plus the byte-padded key block
/// (§4.3: `bytepad(encode_string(K), rate)`).
pub fn kmac_stream_prefix(security_bits: usize, key: &[u8], customization: &[u8]) -> Vec<u8> {
    let rate = SpongeParams::shake(security_bits).rate_bytes();
    let mut prefix = cshake_stream_prefix(security_bits, b"KMAC", customization);
    prefix.extend(bytepad(&encode_string(key), rate));
    prefix
}

/// The `encode_string` framing absorbed *before* each TupleHash entry:
/// `left_encode(len·8)` followed by the entry bytes themselves.
pub fn tuple_entry_prefix(entry_len: usize) -> Vec<u8> {
    left_encode(entry_len as u64 * 8)
}

/// The output-length binding KMAC and TupleHash absorb after the
/// message: `right_encode(L·8)`. XOF behaviour (length *not* bound into
/// the result) is requested with `output_len = 0` per §4.3.1/§5.3.1.
pub fn output_length_suffix(output_len: usize) -> Vec<u8> {
    right_encode(output_len as u64 * 8)
}

macro_rules! cshake {
    ($(#[$doc:meta])* $name:ident, $bits:expr) => {
        $(#[$doc])*
        #[derive(Debug, Clone)]
        pub struct $name<B = ReferenceBackend> {
            sponge: Sponge<B>,
            /// Plain SHAKE mode (both N and S empty, SP 800-185 §3.3).
            plain: bool,
        }

        impl $name<ReferenceBackend> {
            /// Creates a cSHAKE instance with function name `n` and
            /// customization string `s` on the reference backend.
            pub fn new(n: &[u8], s: &[u8]) -> Self {
                Self::with_backend(n, s, ReferenceBackend::new())
            }

            /// One-shot: absorb `msg`, squeeze `len` bytes.
            pub fn digest(n: &[u8], s: &[u8], msg: &[u8], len: usize) -> Vec<u8> {
                let mut xof = Self::new(n, s);
                xof.update(msg);
                xof.squeeze(len)
            }
        }

        impl<B: PermutationBackend> $name<B> {
            /// Creates a cSHAKE instance over a custom backend.
            pub fn with_backend(n: &[u8], s: &[u8], backend: B) -> Self {
                let plain = n.is_empty() && s.is_empty();
                let params = cshake_params($bits, n, s);
                let mut sponge = Sponge::new(params, backend);
                sponge.absorb(&cshake_stream_prefix($bits, n, s));
                Self { sponge, plain }
            }

            /// Whether this instance degenerated to plain SHAKE.
            pub fn is_plain_shake(&self) -> bool {
                self.plain
            }
        }

        impl<B: PermutationBackend> Xof for $name<B> {
            fn update(&mut self, data: &[u8]) {
                self.sponge.absorb(data);
            }

            fn squeeze_into(&mut self, out: &mut [u8]) {
                self.sponge.squeeze_into(out);
            }
        }
    };
}

cshake!(
    /// cSHAKE128 (SP 800-185 §3): 128-bit security customizable XOF.
    ///
    /// # Example
    ///
    /// ```
    /// use krv_sha3::sp800_185::CShake128;
    /// use krv_sha3::Xof;
    ///
    /// let mut xof = CShake128::new(b"", b"Email Signature");
    /// xof.update(&[0x00, 0x01, 0x02, 0x03]);
    /// let out = xof.squeeze(32);
    /// assert_eq!(out.len(), 32);
    /// ```
    CShake128,
    128
);
cshake!(
    /// cSHAKE256 (SP 800-185 §3): 256-bit security customizable XOF.
    CShake256,
    256
);

macro_rules! kmac {
    ($(#[$doc:meta])* $name:ident, $with_name:ident, $cshake:ident, $bits:expr) => {
        $(#[$doc])*
        pub fn $name(key: &[u8], message: &[u8], output_len: usize, customization: &[u8]) -> Vec<u8> {
            $with_name(ReferenceBackend::new(), key, message, output_len, customization)
        }

        /// Same, over a custom permutation backend.
        pub fn $with_name<B: PermutationBackend>(
            backend: B,
            key: &[u8],
            message: &[u8],
            output_len: usize,
            customization: &[u8],
        ) -> Vec<u8> {
            let mut xof = $cshake::with_backend(b"KMAC", customization, backend);
            let rate = SpongeParams::shake($bits).rate_bytes();
            xof.update(&bytepad(&encode_string(key), rate));
            xof.update(message);
            xof.update(&output_length_suffix(output_len));
            xof.squeeze(output_len)
        }
    };
}

kmac!(
    /// KMAC128 (SP 800-185 §4).
    ///
    /// # Example
    ///
    /// ```
    /// let tag = krv_sha3::sp800_185::kmac128(b"my key", b"message", 32, b"");
    /// assert_eq!(tag.len(), 32);
    /// ```
    kmac128,
    kmac128_with,
    CShake128,
    128
);
kmac!(
    /// KMAC256 (SP 800-185 §4).
    kmac256,
    kmac256_with,
    CShake256,
    256
);

macro_rules! tuple_hash {
    ($(#[$doc:meta])* $name:ident, $with_name:ident, $cshake:ident) => {
        $(#[$doc])*
        pub fn $name(tuple: &[&[u8]], output_len: usize, customization: &[u8]) -> Vec<u8> {
            $with_name(ReferenceBackend::new(), tuple, output_len, customization)
        }

        /// Same, over a custom permutation backend.
        pub fn $with_name<B: PermutationBackend>(
            backend: B,
            tuple: &[&[u8]],
            output_len: usize,
            customization: &[u8],
        ) -> Vec<u8> {
            let mut xof = $cshake::with_backend(b"TupleHash", customization, backend);
            for entry in tuple {
                xof.update(&encode_string(entry));
            }
            xof.update(&output_length_suffix(output_len));
            xof.squeeze(output_len)
        }
    };
}

tuple_hash!(
    /// TupleHash128 (SP 800-185 §5): hashes a sequence of strings
    /// unambiguously — every entry is length-framed, so shifting bytes
    /// between adjacent entries changes the digest.
    ///
    /// # Example
    ///
    /// ```
    /// use krv_sha3::sp800_185::tuple_hash128;
    ///
    /// let ab_c = tuple_hash128(&[b"ab", b"c"], 32, b"");
    /// let a_bc = tuple_hash128(&[b"a", b"bc"], 32, b"");
    /// assert_ne!(ab_c, a_bc);
    /// ```
    tuple_hash128,
    tuple_hash128_with,
    CShake128
);
tuple_hash!(
    /// TupleHash256 (SP 800-185 §5).
    tuple_hash256,
    tuple_hash256_with,
    CShake256
);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::functions::{Shake128, Shake256};
    use crate::hex;

    #[test]
    fn left_encode_spec_examples() {
        assert_eq!(left_encode(0), vec![1, 0]);
        assert_eq!(left_encode(168), vec![1, 168]);
        assert_eq!(left_encode(256), vec![2, 1, 0]);
    }

    #[test]
    fn right_encode_spec_examples() {
        assert_eq!(right_encode(0), vec![0, 1]);
        assert_eq!(right_encode(256), vec![1, 0, 2]);
    }

    #[test]
    fn encode_string_prefixes_bit_length() {
        assert_eq!(encode_string(b""), vec![1, 0]);
        assert_eq!(encode_string(b"ab"), vec![1, 16, b'a', b'b']);
    }

    #[test]
    fn bytepad_pads_to_width() {
        let padded = bytepad(b"xyz", 8);
        assert_eq!(padded.len(), 8);
        assert_eq!(&padded[..2], &[1, 8]);
    }

    #[test]
    fn cshake_with_empty_names_is_shake() {
        // SP 800-185 §3.3: cSHAKE(X, L, "", "") = SHAKE(X, L).
        for msg in [&b""[..], b"abc", b"a longer message for the sponge"] {
            let mut cshake = CShake128::new(b"", b"");
            assert!(cshake.is_plain_shake());
            cshake.update(msg);
            let mut shake = Shake128::new();
            shake.update(msg);
            assert_eq!(cshake.squeeze(64), shake.squeeze(64));
            let mut cshake = CShake256::new(b"", b"");
            cshake.update(msg);
            let mut shake = Shake256::new();
            shake.update(msg);
            assert_eq!(cshake.squeeze(64), shake.squeeze(64));
        }
    }

    #[test]
    fn cshake128_nist_sample_one() {
        // NIST SP 800-185 sample file, cSHAKE128 Sample #1:
        // X = 00010203, N = "", S = "Email Signature", L = 256.
        let out = CShake128::digest(b"", b"Email Signature", &[0, 1, 2, 3], 32);
        assert_eq!(
            hex(&out),
            "c1c36925b6409a04f1b504fcbca9d82b4017277cb5ed2b2065fc1d3814d5aaf5"
        );
    }

    #[test]
    fn kmac128_nist_sample_one() {
        // NIST SP 800-185 sample file, KMAC128 Sample #1:
        // K = 40..5f, X = 00010203, L = 256, S = "".
        let key: Vec<u8> = (0x40..=0x5F).collect();
        let tag = kmac128(&key, &[0, 1, 2, 3], 32, b"");
        assert_eq!(
            hex(&tag),
            "e5780b0d3ea6f7d3a429c5706aa43a00fadbd7d49628839e3187243f456ee14e"
        );
    }

    #[test]
    fn tuple_hash128_nist_sample_one() {
        // NIST SP 800-185 sample file, TupleHash128 Sample #1:
        // tuple = (000102, 101112131415), L = 256, S = "".
        let out = tuple_hash128(
            &[&[0x00, 0x01, 0x02], &[0x10, 0x11, 0x12, 0x13, 0x14, 0x15]],
            32,
            b"",
        );
        assert_eq!(
            hex(&out),
            "c5d8786c1afb9b82111ab34b65b2c0048fa64e6d48e263264ce1707d3ffc8ed1"
        );
    }

    #[test]
    fn tuple_hash_entry_framing_is_unambiguous() {
        let base = tuple_hash256(&[b"ab", b"cd"], 32, b"");
        assert_ne!(base, tuple_hash256(&[b"abc", b"d"], 32, b""));
        assert_ne!(base, tuple_hash256(&[b"abcd"], 32, b""));
        assert_ne!(base, tuple_hash256(&[b"ab", b"cd", b""], 32, b""));
    }

    #[test]
    fn kmac_distinguishes_keys_messages_and_customization() {
        let base = kmac128(b"key-a", b"message", 32, b"ctx");
        assert_ne!(base, kmac128(b"key-b", b"message", 32, b"ctx"));
        assert_ne!(base, kmac128(b"key-a", b"messagf", 32, b"ctx"));
        assert_ne!(base, kmac128(b"key-a", b"message", 32, b"ctx2"));
    }

    #[test]
    fn kmac_output_length_is_bound_into_the_tag() {
        // Unlike a raw XOF, truncating KMAC(L=64) does not give KMAC(L=32).
        let long = kmac256(b"key", b"msg", 64, b"");
        let short = kmac256(b"key", b"msg", 32, b"");
        assert_ne!(&long[..32], &short[..]);
    }

    #[test]
    fn cshake_runs_on_custom_backends() {
        // Any PermutationBackend works — here the reference one via the
        // generic constructor, mirroring hardware use.
        let mut xof = CShake128::with_backend(b"KRV", b"test", ReferenceBackend::new());
        xof.update(b"data");
        assert_eq!(xof.squeeze(16).len(), 16);
    }

    #[test]
    fn stream_framing_matches_oneshot_kmac() {
        // A session that absorbs kmac_stream_prefix at OPEN, message
        // chunks per ABSORB and output_length_suffix at FINALIZE lands
        // on the one-shot kmac256 tag — the wire path's core identity.
        let key = b"stream key";
        let custom = b"stream ctx";
        let msg: Vec<u8> = (0..300u16).map(|i| i as u8).collect();
        let mut sponge = Sponge::new(cshake_params(256, b"KMAC", custom), ReferenceBackend::new());
        sponge.absorb(&kmac_stream_prefix(256, key, custom));
        for chunk in msg.chunks(37) {
            sponge.absorb(chunk);
        }
        sponge.absorb(&output_length_suffix(48));
        assert_eq!(sponge.squeeze(48), kmac256(key, &msg, 48, custom));
    }

    #[test]
    fn stream_framing_matches_oneshot_tuple_hash() {
        // Per-entry framing: tuple_entry_prefix(len) ‖ entry, exactly
        // how a streamed TupleHash session absorbs each ABSORB frame.
        let entries: [&[u8]; 3] = [b"", b"one", b"entry two"];
        let mut sponge = Sponge::new(
            cshake_params(128, b"TupleHash", b""),
            ReferenceBackend::new(),
        );
        sponge.absorb(&cshake_stream_prefix(128, b"TupleHash", b""));
        for entry in entries {
            sponge.absorb(&tuple_entry_prefix(entry.len()));
            sponge.absorb(entry);
        }
        sponge.absorb(&output_length_suffix(32));
        assert_eq!(sponge.squeeze(32), tuple_hash128(&entries, 32, b""));
    }
}
