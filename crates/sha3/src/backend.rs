//! Permutation backends: where Keccak-f\[1600\] actually executes.

use krv_keccak::{keccak_f1600, KeccakState};

/// A provider of the Keccak-f\[1600\] permutation for one or more states.
///
/// The sponge layer is agnostic about *how* the permutation runs: in pure
/// software ([`ReferenceBackend`]) or on the simulated SIMD RISC-V
/// processor with custom vector extensions (`krv_core::EngineBackend`),
/// which can permute up to `SN` states in a single invocation, the way the
/// paper's hardware does.
///
/// Implementations must apply the full 24-round permutation to **every**
/// state in `states`, in place.
pub trait PermutationBackend {
    /// Applies Keccak-f\[1600\] to every state in `states`.
    fn permute_all(&mut self, states: &mut [KeccakState]);

    /// Applies Keccak-f\[1600\] to a single state.
    fn permute(&mut self, state: &mut KeccakState) {
        self.permute_all(core::slice::from_mut(state));
    }

    /// The number of states this backend can process in one hardware
    /// permutation pass (`SN` in the paper). Purely informational; any
    /// slice length must be accepted by [`Self::permute_all`].
    fn parallel_states(&self) -> usize {
        1
    }
}

/// The software reference backend: runs the permutation from
/// [`krv_keccak`] sequentially on each state.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReferenceBackend;

impl ReferenceBackend {
    /// Creates a reference backend.
    pub const fn new() -> Self {
        Self
    }
}

impl PermutationBackend for ReferenceBackend {
    fn permute_all(&mut self, states: &mut [KeccakState]) {
        for state in states {
            keccak_f1600(state);
        }
    }
}

impl<B: PermutationBackend + ?Sized> PermutationBackend for &mut B {
    fn permute_all(&mut self, states: &mut [KeccakState]) {
        (**self).permute_all(states);
    }

    fn parallel_states(&self) -> usize {
        (**self).parallel_states()
    }
}

impl<B: PermutationBackend + ?Sized> PermutationBackend for Box<B> {
    fn permute_all(&mut self, states: &mut [KeccakState]) {
        (**self).permute_all(states);
    }

    fn parallel_states(&self) -> usize {
        (**self).parallel_states()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_backend_matches_direct_permutation() {
        let mut a = KeccakState::new();
        a.set_lane(2, 3, 42);
        let mut b = a;
        ReferenceBackend::new().permute(&mut a);
        keccak_f1600(&mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn permute_all_handles_many_states() {
        let mut states = vec![KeccakState::new(); 7];
        for (i, s) in states.iter_mut().enumerate() {
            s.set_lane(0, 0, i as u64);
        }
        let mut expected = states.clone();
        ReferenceBackend::new().permute_all(&mut states);
        for s in &mut expected {
            keccak_f1600(s);
        }
        assert_eq!(states, expected);
    }

    #[test]
    fn boxed_and_dynamic_backends_work() {
        // The Box blanket impl lets callers pick a backend at run time
        // behind `Box<dyn PermutationBackend>`.
        let mut boxed: Box<dyn PermutationBackend> = Box::new(ReferenceBackend::new());
        let mut a = KeccakState::new();
        a.set_lane(1, 1, 7);
        let mut b = a;
        boxed.permute(&mut a);
        keccak_f1600(&mut b);
        assert_eq!(a, b);
        assert_eq!(boxed.parallel_states(), 1);
    }

    #[test]
    fn backend_usable_through_mut_reference() {
        fn run(mut backend: impl PermutationBackend) -> KeccakState {
            let mut state = KeccakState::new();
            backend.permute(&mut state);
            state
        }
        let mut backend = ReferenceBackend::new();
        let via_ref = run(&mut backend);
        let direct = run(ReferenceBackend::new());
        assert_eq!(via_ref, direct);
    }
}
