//! Permutation backends: where Keccak-f\[1600\] actually executes.

use krv_keccak::{keccak_f1600, KeccakState};

/// A provider of the Keccak-f\[1600\] permutation for one or more states.
///
/// The sponge layer is agnostic about *how* the permutation runs: in pure
/// software ([`ReferenceBackend`]) or on the simulated SIMD RISC-V
/// processor with custom vector extensions (`krv_core::EngineBackend`),
/// which can permute up to `SN` states in a single invocation, the way the
/// paper's hardware does.
///
/// Implementations must apply the full 24-round permutation to **every**
/// state in `states`, in place.
pub trait PermutationBackend {
    /// Applies Keccak-f\[1600\] to every state in `states`.
    fn permute_all(&mut self, states: &mut [KeccakState]);

    /// Applies Keccak-f\[1600\] to a single state.
    fn permute(&mut self, state: &mut KeccakState) {
        self.permute_all(core::slice::from_mut(state));
    }

    /// The number of states this backend can process in one hardware
    /// permutation pass (`SN` in the paper). Purely informational; any
    /// slice length must be accepted by [`Self::permute_all`].
    fn parallel_states(&self) -> usize {
        1
    }

    /// A short human-readable label naming the backend (tier accounting,
    /// bench rows, pass-matrix keys).
    fn label(&self) -> String {
        "backend".to_string()
    }
}

/// A backend whose hardware (or kernel) natively processes fixed-width
/// *groups* of states: `N` sponge states advance through one physical
/// permutation call together.
///
/// [`PermutationBackend::permute_all`] already accepts any slice length,
/// but it hides the grouping — a scheduler packing work for such a
/// backend cannot see where the group boundaries fall. This super-trait
/// exposes them: [`Self::lane_width`] is the native group size `N`, and
/// [`Self::permute_group`] runs exactly one full group, so callers that
/// *can* align their batches (the drain-and-refill scheduler, the
/// serving tier) express "N states at once" natively instead of looping
/// state by state.
///
/// [`permute_all_grouped`] is the canonical driver: full groups through
/// [`Self::permute_group`], the ragged tail through
/// [`PermutationBackend::permute_all`].
pub trait BatchPermutationBackend: PermutationBackend {
    /// The native group width `N`.
    fn lane_width(&self) -> usize;

    /// Permutes exactly one native group.
    ///
    /// # Panics
    ///
    /// Implementations panic if `states.len() != self.lane_width()`.
    fn permute_group(&mut self, states: &mut [KeccakState]);
}

/// Drives a [`BatchPermutationBackend`] over an arbitrary slice: every
/// full `lane_width()` group goes through one [`permute_group`] call and
/// the ragged tail falls back to [`permute_all`].
///
/// [`permute_group`]: BatchPermutationBackend::permute_group
/// [`permute_all`]: PermutationBackend::permute_all
pub fn permute_all_grouped<B: BatchPermutationBackend + ?Sized>(
    backend: &mut B,
    states: &mut [KeccakState],
) {
    let width = backend.lane_width().max(1);
    let full = states.len() / width * width;
    let (groups, tail) = states.split_at_mut(full);
    for group in groups.chunks_mut(width) {
        backend.permute_group(group);
    }
    if !tail.is_empty() {
        backend.permute_all(tail);
    }
}

/// The software reference backend: runs the permutation from
/// [`krv_keccak`] sequentially on each state.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReferenceBackend;

impl ReferenceBackend {
    /// Creates a reference backend.
    pub const fn new() -> Self {
        Self
    }
}

impl PermutationBackend for ReferenceBackend {
    fn permute_all(&mut self, states: &mut [KeccakState]) {
        for state in states {
            keccak_f1600(state);
        }
    }

    fn label(&self) -> String {
        "reference".to_string()
    }
}

impl BatchPermutationBackend for ReferenceBackend {
    fn lane_width(&self) -> usize {
        1
    }

    fn permute_group(&mut self, states: &mut [KeccakState]) {
        assert_eq!(states.len(), 1, "reference groups are single states");
        keccak_f1600(&mut states[0]);
    }
}

impl<B: PermutationBackend + ?Sized> PermutationBackend for &mut B {
    fn permute_all(&mut self, states: &mut [KeccakState]) {
        (**self).permute_all(states);
    }

    fn parallel_states(&self) -> usize {
        (**self).parallel_states()
    }

    fn label(&self) -> String {
        (**self).label()
    }
}

impl<B: PermutationBackend + ?Sized> PermutationBackend for Box<B> {
    fn permute_all(&mut self, states: &mut [KeccakState]) {
        (**self).permute_all(states);
    }

    fn parallel_states(&self) -> usize {
        (**self).parallel_states()
    }

    fn label(&self) -> String {
        (**self).label()
    }
}

impl<B: BatchPermutationBackend + ?Sized> BatchPermutationBackend for &mut B {
    fn lane_width(&self) -> usize {
        (**self).lane_width()
    }

    fn permute_group(&mut self, states: &mut [KeccakState]) {
        (**self).permute_group(states);
    }
}

impl<B: BatchPermutationBackend + ?Sized> BatchPermutationBackend for Box<B> {
    fn lane_width(&self) -> usize {
        (**self).lane_width()
    }

    fn permute_group(&mut self, states: &mut [KeccakState]) {
        (**self).permute_group(states);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_backend_matches_direct_permutation() {
        let mut a = KeccakState::new();
        a.set_lane(2, 3, 42);
        let mut b = a;
        ReferenceBackend::new().permute(&mut a);
        keccak_f1600(&mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn permute_all_handles_many_states() {
        let mut states = vec![KeccakState::new(); 7];
        for (i, s) in states.iter_mut().enumerate() {
            s.set_lane(0, 0, i as u64);
        }
        let mut expected = states.clone();
        ReferenceBackend::new().permute_all(&mut states);
        for s in &mut expected {
            keccak_f1600(s);
        }
        assert_eq!(states, expected);
    }

    #[test]
    fn boxed_and_dynamic_backends_work() {
        // The Box blanket impl lets callers pick a backend at run time
        // behind `Box<dyn PermutationBackend>`.
        let mut boxed: Box<dyn PermutationBackend> = Box::new(ReferenceBackend::new());
        let mut a = KeccakState::new();
        a.set_lane(1, 1, 7);
        let mut b = a;
        boxed.permute(&mut a);
        keccak_f1600(&mut b);
        assert_eq!(a, b);
        assert_eq!(boxed.parallel_states(), 1);
    }

    #[test]
    fn grouped_driver_splits_full_groups_and_tail() {
        /// Width-3 wrapper that records how each call arrived.
        struct Grouped {
            group_calls: Vec<usize>,
            tail_calls: Vec<usize>,
        }

        impl PermutationBackend for Grouped {
            fn permute_all(&mut self, states: &mut [KeccakState]) {
                self.tail_calls.push(states.len());
                ReferenceBackend::new().permute_all(states);
            }
        }

        impl BatchPermutationBackend for Grouped {
            fn lane_width(&self) -> usize {
                3
            }

            fn permute_group(&mut self, states: &mut [KeccakState]) {
                assert_eq!(states.len(), 3);
                self.group_calls.push(states.len());
                ReferenceBackend::new().permute_all(states);
            }
        }

        let mut backend = Grouped {
            group_calls: Vec::new(),
            tail_calls: Vec::new(),
        };
        let mut states = vec![KeccakState::new(); 8];
        for (i, s) in states.iter_mut().enumerate() {
            s.set_lane(0, 0, i as u64);
        }
        let mut expected = states.clone();
        permute_all_grouped(&mut backend, &mut states);
        ReferenceBackend::new().permute_all(&mut expected);
        assert_eq!(states, expected);
        assert_eq!(backend.group_calls, vec![3, 3], "two full groups");
        assert_eq!(backend.tail_calls, vec![2], "one ragged tail");
    }

    #[test]
    fn reference_is_a_width_one_batch_backend() {
        let mut backend = ReferenceBackend::new();
        assert_eq!(backend.lane_width(), 1);
        assert_eq!(backend.label(), "reference");
        let mut states = vec![KeccakState::new(); 5];
        let mut expected = states.clone();
        permute_all_grouped(&mut backend, &mut states);
        for s in &mut expected {
            keccak_f1600(s);
        }
        assert_eq!(states, expected);
    }

    #[test]
    fn labels_propagate_through_wrappers() {
        let mut backend = ReferenceBackend::new();
        assert_eq!(PermutationBackend::label(&&mut backend), "reference");
        let boxed: Box<dyn PermutationBackend> = Box::new(ReferenceBackend::new());
        assert_eq!(boxed.label(), "reference");
    }

    #[test]
    fn backend_usable_through_mut_reference() {
        fn run(mut backend: impl PermutationBackend) -> KeccakState {
            let mut state = KeccakState::new();
            backend.permute(&mut state);
            state
        }
        let mut backend = ReferenceBackend::new();
        let via_ref = run(&mut backend);
        let direct = run(ReferenceBackend::new());
        assert_eq!(via_ref, direct);
    }
}
