//! Batch hashing: many messages sharing the vector hardware.
//!
//! The paper's motivating workload (§1) is CRYSTALS-Kyber matrix
//! expansion, where many SHAKE128 calls process same-length inputs
//! (`seed ‖ row ‖ column`). With a backend whose hardware holds `SN`
//! Keccak states (paper Figures 5/6), all member sponges permute in a
//! single pass of the vector kernel.
//!
//! Two APIs live here:
//!
//! * [`BatchSponge`] — `n` sponges advancing in **lockstep**: inputs
//!   must have equal length so the streams stay aligned on block
//!   boundaries. This is the natural fit for Kyber's fixed-shape PRF
//!   calls and mirrors the paper's presentation.
//! * [`hash_batch`] — a **drain-and-refill scheduler** that lifts the
//!   equal-length restriction: each [`BatchRequest`] is an independent
//!   job with its own message length and output length. Every round the
//!   scheduler drains one block of host-side work per live job (absorb
//!   the next rate-sized block, or note that more squeeze output is
//!   needed), packs exactly the live states, and hands them to the
//!   backend in one call — which the engine layer splits into `SN`-wide
//!   hardware passes. Jobs that finish drop out and the pack compacts,
//!   so short messages never pad out the schedule of long ones: every
//!   pass is as full as the remaining work allows, which is the minimum
//!   `⌈live/SN⌉` passes per round.

use crate::backend::PermutationBackend;
use crate::sponge::SpongeParams;
use krv_keccak::constants::STATE_BYTES;
use krv_keccak::KeccakState;

/// `n` sponge instances that absorb, pad and squeeze in lockstep so every
/// permutation is applied to all states in one backend call.
///
/// All member sponges share one [`SpongeParams`]; inputs must have equal
/// length so the streams stay aligned on block boundaries.
///
/// # Example
///
/// ```
/// use krv_sha3::{BatchSponge, SpongeParams, ReferenceBackend};
///
/// let params = SpongeParams::shake(128);
/// let mut batch = BatchSponge::new(params, ReferenceBackend::new(), 3);
/// batch.absorb(&[b"seed0", b"seed1", b"seed2"]);
/// let outputs = batch.squeeze(16);
/// assert_eq!(outputs.len(), 3);
/// assert_ne!(outputs[0], outputs[1]);
/// ```
#[derive(Debug, Clone)]
pub struct BatchSponge<B> {
    params: SpongeParams,
    backend: B,
    states: Vec<KeccakState>,
    absorbed: usize,
    squeeze_offset: Option<usize>,
}

impl<B: PermutationBackend> BatchSponge<B> {
    /// Creates `n` empty lockstep sponges.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn new(params: SpongeParams, backend: B, n: usize) -> Self {
        assert!(n > 0, "batch must contain at least one sponge");
        Self {
            params,
            backend,
            states: vec![KeccakState::new(); n],
            absorbed: 0,
            squeeze_offset: None,
        }
    }

    /// Number of member sponges.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// Whether the batch is empty (never true; a batch has ≥ 1 member).
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// Read access to the internal states (for tests and diagnostics).
    pub fn states(&self) -> &[KeccakState] {
        &self.states
    }

    /// Absorbs one equal-length chunk into every member sponge.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` differs from the batch size, if the chunk
    /// lengths differ from each other, or if squeezing has started.
    pub fn absorb(&mut self, inputs: &[&[u8]]) {
        assert!(
            self.squeeze_offset.is_none(),
            "cannot absorb after squeezing has started"
        );
        assert_eq!(
            inputs.len(),
            self.states.len(),
            "one input chunk per member sponge required"
        );
        let len = inputs[0].len();
        assert!(
            inputs.iter().all(|i| i.len() == len),
            "lockstep absorption requires equal-length chunks"
        );
        let rate = self.params.rate_bytes();
        let mut consumed = 0;
        while consumed < len {
            let take = (rate - self.absorbed).min(len - consumed);
            for (state, input) in self.states.iter_mut().zip(inputs) {
                let mut block = [0u8; STATE_BYTES];
                block[self.absorbed..self.absorbed + take]
                    .copy_from_slice(&input[consumed..consumed + take]);
                state.xor_bytes(&block[..self.absorbed + take]);
            }
            self.absorbed += take;
            consumed += take;
            if self.absorbed == rate {
                self.backend.permute_all(&mut self.states);
                self.absorbed = 0;
            }
        }
    }

    /// Applies domain separation and padding to every member sponge.
    pub fn finalize_absorb(&mut self) {
        if self.squeeze_offset.is_some() {
            return;
        }
        let rate = self.params.rate_bytes();
        let mut block = vec![0u8; rate];
        block[self.absorbed] = self.params.domain().first_pad_byte();
        block[rate - 1] |= 0x80;
        for state in &mut self.states {
            state.xor_bytes(&block);
        }
        self.backend.permute_all(&mut self.states);
        self.absorbed = 0;
        self.squeeze_offset = Some(0);
    }

    /// Squeezes `len` bytes from every member sponge.
    pub fn squeeze(&mut self, len: usize) -> Vec<Vec<u8>> {
        self.finalize_absorb();
        let rate = self.params.rate_bytes();
        let mut offset = self
            .squeeze_offset
            .expect("finalize_absorb sets the squeeze offset");
        let mut outputs = vec![Vec::with_capacity(len); self.states.len()];
        let mut written = 0;
        while written < len {
            if offset == rate {
                self.backend.permute_all(&mut self.states);
                offset = 0;
            }
            let take = (rate - offset).min(len - written);
            for (state, out) in self.states.iter().zip(&mut outputs) {
                let bytes = state.to_bytes();
                out.extend_from_slice(&bytes[offset..offset + take]);
            }
            offset += take;
            written += take;
        }
        self.squeeze_offset = Some(offset);
        outputs
    }

    /// Consumes the batch and returns its backend.
    pub fn into_backend(self) -> B {
        self.backend
    }
}

/// One job for [`hash_batch`]: a message and the number of output bytes
/// wanted for it.
#[derive(Debug, Clone, Copy)]
pub struct BatchRequest<'a> {
    /// The message to absorb.
    pub message: &'a [u8],
    /// Output bytes to squeeze.
    pub output_len: usize,
}

impl<'a> BatchRequest<'a> {
    /// Creates a request.
    pub const fn new(message: &'a [u8], output_len: usize) -> Self {
        Self {
            message,
            output_len,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Absorb,
    Squeeze,
    Done,
}

/// Per-message progress inside the scheduler. The job's sponge state
/// lives in the scheduler's dense pack, not here, so the pack can be
/// permuted in place with no per-round gather/scatter copies.
struct Job<'a> {
    message: &'a [u8],
    consumed: usize,
    out: Vec<u8>,
    want: usize,
    phase: Phase,
}

impl Job<'_> {
    /// XORs the next rate-sized block into the state, folding the
    /// pad10*1 + domain padding into the final (short) block exactly as
    /// a one-shot [`crate::Sponge`] would.
    fn absorb_next_block(&mut self, state: &mut KeccakState, rate: usize, pad: u8) {
        let remaining = self.message.len() - self.consumed;
        if remaining >= rate {
            state.xor_bytes(&self.message[self.consumed..self.consumed + rate]);
            self.consumed += rate;
        } else {
            let mut block = vec![0u8; rate];
            block[..remaining].copy_from_slice(&self.message[self.consumed..]);
            block[remaining] = pad;
            block[rate - 1] |= 0x80;
            state.xor_bytes(&block);
            self.consumed = self.message.len();
            self.phase = Phase::Squeeze;
        }
    }

    /// Takes up to one rate window of output after a permutation.
    fn collect_output(&mut self, state: &KeccakState, rate: usize) {
        let take = (self.want - self.out.len()).min(rate);
        let bytes = state.to_bytes();
        self.out.extend_from_slice(&bytes[..take]);
        if self.out.len() == self.want {
            self.phase = Phase::Done;
        }
    }
}

/// Hashes an arbitrary mixed-length message set with a drain-and-refill
/// schedule, packing the live Keccak states into as few backend
/// permutation calls as the work allows.
///
/// Each request is hashed exactly as a standalone sponge with `params`
/// would hash it (there are property tests pinning equality with
/// [`crate::Sponge`] and the `Sha3_*`/`Shake*` functions); only the
/// *scheduling* differs. Results are returned in request order.
///
/// With a wide backend (a `VectorKeccakEngine` or an `EnginePool` from
/// `krv-core`), every scheduler round permutes all live states in
/// `⌈live/SN⌉` hardware passes; finished jobs drain out and the pack
/// compacts, so unlike [`BatchSponge`] the message lengths are free to
/// differ.
///
/// # Example
///
/// ```
/// use krv_sha3::{hash_batch, BatchRequest, ReferenceBackend, Shake128, SpongeParams};
///
/// let requests = [
///     BatchRequest::new(b"short", 32),
///     BatchRequest::new(b"a somewhat longer message", 16),
/// ];
/// let outputs = hash_batch(SpongeParams::shake(128), ReferenceBackend::new(), &requests);
/// assert_eq!(outputs[0], Shake128::digest(b"short", 32));
/// assert_eq!(outputs[1], Shake128::digest(b"a somewhat longer message", 16));
/// ```
pub fn hash_batch<B: PermutationBackend>(
    params: SpongeParams,
    mut backend: B,
    requests: &[BatchRequest<'_>],
) -> Vec<Vec<u8>> {
    let rate = params.rate_bytes();
    let pad = params.domain().first_pad_byte();
    let mut jobs: Vec<Job<'_>> = requests
        .iter()
        .map(|request| Job {
            message: request.message,
            consumed: 0,
            out: Vec::with_capacity(request.output_len),
            want: request.output_len,
            phase: Phase::Absorb,
        })
        .collect();
    // Dense pack: `states[slot]` is the sponge of `jobs[owners[slot]]`.
    // Every slot is live by construction, so each round permutes the
    // whole pack in place — no gather into scratch, no scatter back.
    let mut states: Vec<KeccakState> = vec![KeccakState::new(); jobs.len()];
    let mut owners: Vec<usize> = (0..jobs.len()).collect();
    while !owners.is_empty() {
        // Drain: one block of host-side work per live job, in place.
        // Squeezing jobs still short of output just ride into the next
        // permutation for their next rate window.
        for (slot, &owner) in owners.iter().enumerate() {
            let job = &mut jobs[owner];
            if job.phase == Phase::Absorb {
                job.absorb_next_block(&mut states[slot], rate, pad);
            }
        }
        backend.permute_all(&mut states);
        // Refill: collect fresh output, then compact finished jobs out
        // of the pack (stable, so relative state order is preserved).
        let mut kept = 0;
        for slot in 0..owners.len() {
            let owner = owners[slot];
            let job = &mut jobs[owner];
            if job.phase == Phase::Squeeze {
                job.collect_output(&states[slot], rate);
            }
            if job.phase != Phase::Done {
                states[kept] = states[slot];
                owners[kept] = owner;
                kept += 1;
            }
        }
        states.truncate(kept);
        owners.truncate(kept);
    }
    jobs.into_iter().map(|job| job.out).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::ReferenceBackend;
    use crate::functions::{Shake128, Xof};
    use crate::sponge::Sponge;

    #[test]
    fn batch_matches_individual_sponges() {
        let inputs: Vec<Vec<u8>> = (0..4u8).map(|i| vec![i; 300]).collect();
        let refs: Vec<&[u8]> = inputs.iter().map(|v| v.as_slice()).collect();
        let mut batch = BatchSponge::new(SpongeParams::shake(128), ReferenceBackend::new(), 4);
        batch.absorb(&refs);
        let outputs = batch.squeeze(200);
        for (input, output) in inputs.iter().zip(&outputs) {
            let mut xof = Shake128::new();
            xof.update(input);
            assert_eq!(*output, xof.squeeze(200));
        }
    }

    #[test]
    fn batch_squeeze_is_streamable() {
        let mut batch = BatchSponge::new(SpongeParams::shake(256), ReferenceBackend::new(), 2);
        batch.absorb(&[b"a", b"b"]);
        let first = batch.squeeze(10);
        let second = batch.squeeze(300);
        let mut single = Sponge::new(SpongeParams::shake(256), ReferenceBackend::new());
        single.absorb(b"a");
        let expected = single.squeeze(310);
        let mut combined = first[0].clone();
        combined.extend(&second[0]);
        assert_eq!(combined, expected);
    }

    #[test]
    fn multi_chunk_absorb_matches_single() {
        let mut a = BatchSponge::new(SpongeParams::sha3(256), ReferenceBackend::new(), 2);
        a.absorb(&[b"hello ", b"world "]);
        a.absorb(&[b"again", b"again"]);
        let mut b = BatchSponge::new(SpongeParams::sha3(256), ReferenceBackend::new(), 2);
        b.absorb(&[b"hello again", b"world again"]);
        assert_eq!(a.squeeze(32), b.squeeze(32));
    }

    #[test]
    #[should_panic(expected = "equal-length chunks")]
    fn unequal_chunks_rejected() {
        let mut batch = BatchSponge::new(SpongeParams::sha3(256), ReferenceBackend::new(), 2);
        batch.absorb(&[b"long input", b"short"]);
    }

    #[test]
    #[should_panic(expected = "one input chunk per member")]
    fn wrong_arity_rejected() {
        let mut batch = BatchSponge::new(SpongeParams::sha3(256), ReferenceBackend::new(), 3);
        batch.absorb(&[b"a", b"b"]);
    }

    #[test]
    #[should_panic(expected = "at least one sponge")]
    fn empty_batch_rejected() {
        let _ = BatchSponge::new(SpongeParams::sha3(256), ReferenceBackend::new(), 0);
    }

    /// A reference backend that records how many states each
    /// `permute_all` call carried (to check schedule density).
    struct CountingBackend {
        calls: Vec<usize>,
    }

    impl CountingBackend {
        fn new() -> Self {
            Self { calls: Vec::new() }
        }
    }

    impl PermutationBackend for CountingBackend {
        fn permute_all(&mut self, states: &mut [KeccakState]) {
            self.calls.push(states.len());
            ReferenceBackend::new().permute_all(states);
        }
    }

    #[test]
    fn hash_batch_matches_individual_mixed_lengths() {
        let messages: Vec<Vec<u8>> = [0usize, 1, 167, 168, 169, 500, 1000]
            .iter()
            .map(|&len| (0..len).map(|i| (i * 31 + len) as u8).collect())
            .collect();
        let requests: Vec<BatchRequest<'_>> = messages
            .iter()
            .enumerate()
            .map(|(i, m)| BatchRequest::new(m, 16 + 40 * i))
            .collect();
        let outputs = hash_batch(SpongeParams::shake(128), ReferenceBackend::new(), &requests);
        for (request, output) in requests.iter().zip(&outputs) {
            assert_eq!(
                *output,
                Shake128::digest(request.message, request.output_len),
                "message len {}",
                request.message.len()
            );
        }
    }

    #[test]
    fn hash_batch_matches_sha3_domain() {
        let messages: Vec<Vec<u8>> = vec![b"".to_vec(), b"abc".to_vec(), vec![0x5A; 137]];
        let requests: Vec<BatchRequest<'_>> =
            messages.iter().map(|m| BatchRequest::new(m, 32)).collect();
        let outputs = hash_batch(SpongeParams::sha3(256), ReferenceBackend::new(), &requests);
        for (message, output) in messages.iter().zip(&outputs) {
            assert_eq!(*output, crate::Sha3_256::digest(message).to_vec());
        }
    }

    #[test]
    fn hash_batch_handles_edge_requests() {
        // Empty request list, zero-length outputs, empty messages.
        let none = hash_batch(SpongeParams::shake(128), ReferenceBackend::new(), &[]);
        assert!(none.is_empty());
        let requests = [BatchRequest::new(b"", 0), BatchRequest::new(b"x", 0)];
        let outputs = hash_batch(SpongeParams::shake(128), ReferenceBackend::new(), &requests);
        assert_eq!(outputs, vec![Vec::<u8>::new(); 2]);
    }

    #[test]
    fn finished_jobs_drain_out_of_the_schedule() {
        // One 1-block message and one 4-block message: the short job
        // must leave the pack once done instead of riding along.
        let rate = SpongeParams::shake(128).rate_bytes();
        let long = vec![7u8; 3 * rate + 10];
        let requests = [BatchRequest::new(b"tiny", 16), BatchRequest::new(&long, 16)];
        let mut backend = CountingBackend::new();
        let outputs = hash_batch(SpongeParams::shake(128), &mut backend, &requests);
        assert_eq!(outputs[0], Shake128::digest(b"tiny", 16));
        assert_eq!(outputs[1], Shake128::digest(&long, 16));
        // Round 1 permutes both states; the tiny job then finishes and
        // rounds 2..=4 carry only the long one.
        assert_eq!(backend.calls, vec![2, 1, 1, 1]);
    }

    #[test]
    fn schedule_work_is_the_per_message_minimum() {
        // Total states permuted must equal the sum over messages of
        // their standalone permutation counts — no lockstep padding.
        let params = SpongeParams::shake(256);
        let rate = params.rate_bytes();
        let messages: Vec<Vec<u8>> = (0..9u8).map(|i| vec![i; 50 * i as usize]).collect();
        let requests: Vec<BatchRequest<'_>> = messages
            .iter()
            .map(|m| BatchRequest::new(m, 2 * rate + 3))
            .collect();
        let mut backend = CountingBackend::new();
        let _ = hash_batch(params, &mut backend, &requests);
        let expected: usize = messages
            .iter()
            .map(|m| m.len() / rate + 1 + 2) // absorb blocks + 2 extra squeezes
            .sum();
        assert_eq!(backend.calls.iter().sum::<usize>(), expected);
    }
}
