//! Batch hashing: several sponge instances advancing in lockstep.
//!
//! The paper's motivating workload (§1) is CRYSTALS-Kyber matrix
//! expansion, where many SHAKE128 calls process same-length inputs
//! (`seed ‖ row ‖ column`). With a backend whose hardware holds `SN`
//! Keccak states (paper Figures 5/6), all member sponges permute in a
//! single pass of the vector kernel.

use crate::backend::PermutationBackend;
use crate::sponge::SpongeParams;
use krv_keccak::constants::STATE_BYTES;
use krv_keccak::KeccakState;

/// `n` sponge instances that absorb, pad and squeeze in lockstep so every
/// permutation is applied to all states in one backend call.
///
/// All member sponges share one [`SpongeParams`]; inputs must have equal
/// length so the streams stay aligned on block boundaries.
///
/// # Example
///
/// ```
/// use krv_sha3::{BatchSponge, SpongeParams, ReferenceBackend};
///
/// let params = SpongeParams::shake(128);
/// let mut batch = BatchSponge::new(params, ReferenceBackend::new(), 3);
/// batch.absorb(&[b"seed0", b"seed1", b"seed2"]);
/// let outputs = batch.squeeze(16);
/// assert_eq!(outputs.len(), 3);
/// assert_ne!(outputs[0], outputs[1]);
/// ```
#[derive(Debug, Clone)]
pub struct BatchSponge<B> {
    params: SpongeParams,
    backend: B,
    states: Vec<KeccakState>,
    absorbed: usize,
    squeeze_offset: Option<usize>,
}

impl<B: PermutationBackend> BatchSponge<B> {
    /// Creates `n` empty lockstep sponges.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn new(params: SpongeParams, backend: B, n: usize) -> Self {
        assert!(n > 0, "batch must contain at least one sponge");
        Self {
            params,
            backend,
            states: vec![KeccakState::new(); n],
            absorbed: 0,
            squeeze_offset: None,
        }
    }

    /// Number of member sponges.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// Whether the batch is empty (never true; a batch has ≥ 1 member).
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// Read access to the internal states (for tests and diagnostics).
    pub fn states(&self) -> &[KeccakState] {
        &self.states
    }

    /// Absorbs one equal-length chunk into every member sponge.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` differs from the batch size, if the chunk
    /// lengths differ from each other, or if squeezing has started.
    pub fn absorb(&mut self, inputs: &[&[u8]]) {
        assert!(
            self.squeeze_offset.is_none(),
            "cannot absorb after squeezing has started"
        );
        assert_eq!(
            inputs.len(),
            self.states.len(),
            "one input chunk per member sponge required"
        );
        let len = inputs[0].len();
        assert!(
            inputs.iter().all(|i| i.len() == len),
            "lockstep absorption requires equal-length chunks"
        );
        let rate = self.params.rate_bytes();
        let mut consumed = 0;
        while consumed < len {
            let take = (rate - self.absorbed).min(len - consumed);
            for (state, input) in self.states.iter_mut().zip(inputs) {
                let mut block = [0u8; STATE_BYTES];
                block[self.absorbed..self.absorbed + take]
                    .copy_from_slice(&input[consumed..consumed + take]);
                state.xor_bytes(&block[..self.absorbed + take]);
            }
            self.absorbed += take;
            consumed += take;
            if self.absorbed == rate {
                self.backend.permute_all(&mut self.states);
                self.absorbed = 0;
            }
        }
    }

    /// Applies domain separation and padding to every member sponge.
    pub fn finalize_absorb(&mut self) {
        if self.squeeze_offset.is_some() {
            return;
        }
        let rate = self.params.rate_bytes();
        let mut block = vec![0u8; rate];
        block[self.absorbed] = self.params.domain().first_pad_byte();
        block[rate - 1] |= 0x80;
        for state in &mut self.states {
            state.xor_bytes(&block);
        }
        self.backend.permute_all(&mut self.states);
        self.absorbed = 0;
        self.squeeze_offset = Some(0);
    }

    /// Squeezes `len` bytes from every member sponge.
    pub fn squeeze(&mut self, len: usize) -> Vec<Vec<u8>> {
        self.finalize_absorb();
        let rate = self.params.rate_bytes();
        let mut offset = self
            .squeeze_offset
            .expect("finalize_absorb sets the squeeze offset");
        let mut outputs = vec![Vec::with_capacity(len); self.states.len()];
        let mut written = 0;
        while written < len {
            if offset == rate {
                self.backend.permute_all(&mut self.states);
                offset = 0;
            }
            let take = (rate - offset).min(len - written);
            for (state, out) in self.states.iter().zip(&mut outputs) {
                let bytes = state.to_bytes();
                out.extend_from_slice(&bytes[offset..offset + take]);
            }
            offset += take;
            written += take;
        }
        self.squeeze_offset = Some(offset);
        outputs
    }

    /// Consumes the batch and returns its backend.
    pub fn into_backend(self) -> B {
        self.backend
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::ReferenceBackend;
    use crate::functions::{Shake128, Xof};
    use crate::sponge::Sponge;

    #[test]
    fn batch_matches_individual_sponges() {
        let inputs: Vec<Vec<u8>> = (0..4u8).map(|i| vec![i; 300]).collect();
        let refs: Vec<&[u8]> = inputs.iter().map(|v| v.as_slice()).collect();
        let mut batch = BatchSponge::new(SpongeParams::shake(128), ReferenceBackend::new(), 4);
        batch.absorb(&refs);
        let outputs = batch.squeeze(200);
        for (input, output) in inputs.iter().zip(&outputs) {
            let mut xof = Shake128::new();
            xof.update(input);
            assert_eq!(*output, xof.squeeze(200));
        }
    }

    #[test]
    fn batch_squeeze_is_streamable() {
        let mut batch = BatchSponge::new(SpongeParams::shake(256), ReferenceBackend::new(), 2);
        batch.absorb(&[b"a", b"b"]);
        let first = batch.squeeze(10);
        let second = batch.squeeze(300);
        let mut single = Sponge::new(SpongeParams::shake(256), ReferenceBackend::new());
        single.absorb(b"a");
        let expected = single.squeeze(310);
        let mut combined = first[0].clone();
        combined.extend(&second[0]);
        assert_eq!(combined, expected);
    }

    #[test]
    fn multi_chunk_absorb_matches_single() {
        let mut a = BatchSponge::new(SpongeParams::sha3(256), ReferenceBackend::new(), 2);
        a.absorb(&[b"hello ", b"world "]);
        a.absorb(&[b"again", b"again"]);
        let mut b = BatchSponge::new(SpongeParams::sha3(256), ReferenceBackend::new(), 2);
        b.absorb(&[b"hello again", b"world again"]);
        assert_eq!(a.squeeze(32), b.squeeze(32));
    }

    #[test]
    #[should_panic(expected = "equal-length chunks")]
    fn unequal_chunks_rejected() {
        let mut batch = BatchSponge::new(SpongeParams::sha3(256), ReferenceBackend::new(), 2);
        batch.absorb(&[b"long input", b"short"]);
    }

    #[test]
    #[should_panic(expected = "one input chunk per member")]
    fn wrong_arity_rejected() {
        let mut batch = BatchSponge::new(SpongeParams::sha3(256), ReferenceBackend::new(), 3);
        batch.absorb(&[b"a", b"b"]);
    }

    #[test]
    #[should_panic(expected = "at least one sponge")]
    fn empty_batch_rejected() {
        let _ = BatchSponge::new(SpongeParams::sha3(256), ReferenceBackend::new(), 0);
    }
}
