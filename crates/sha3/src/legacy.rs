//! Legacy (pre-FIPS) Keccak hashing.
//!
//! Before NIST standardized SHA-3, the original Keccak submission padded
//! with plain pad10*1 (no `01` domain-separation bits). That variant —
//! best known today as Ethereum's `keccak256` — exercises the
//! `DomainSeparator::Keccak` sponge
//! path and shares everything else with the SHA-3 functions, including
//! the vector-accelerated backends.

use crate::backend::{PermutationBackend, ReferenceBackend};
use crate::sponge::{DomainSeparator, Sponge, SpongeParams};
use krv_keccak::constants::STATE_BYTES;

/// Legacy Keccak-256: 256-bit digest, rate 1088 bits, pad10*1 only.
///
/// # Example
///
/// ```
/// use krv_sha3::legacy::Keccak256;
///
/// // The well-known Ethereum empty-input digest.
/// assert_eq!(
///     krv_sha3::hex(&Keccak256::digest(b"")),
///     "c5d2460186f7233c927e7db2dcc703c0e500b653ca82273b7bfad8045d85a470"
/// );
/// ```
#[derive(Debug, Clone)]
pub struct Keccak256<B = ReferenceBackend> {
    sponge: Sponge<B>,
}

impl Keccak256<ReferenceBackend> {
    /// Creates a hasher using the software reference backend.
    pub fn new() -> Self {
        Self::with_backend(ReferenceBackend::new())
    }

    /// One-shot digest of `msg`.
    pub fn digest(msg: &[u8]) -> [u8; 32] {
        let mut hasher = Self::new();
        hasher.update(msg);
        hasher.finalize()
    }
}

impl Default for Keccak256<ReferenceBackend> {
    fn default() -> Self {
        Self::new()
    }
}

impl<B: PermutationBackend> Keccak256<B> {
    /// Creates a hasher over a custom permutation backend.
    pub fn with_backend(backend: B) -> Self {
        Self {
            sponge: Sponge::new(
                SpongeParams::new(STATE_BYTES - 64, DomainSeparator::Keccak),
                backend,
            ),
        }
    }

    /// Absorbs more message bytes.
    pub fn update(&mut self, data: &[u8]) {
        self.sponge.absorb(data);
    }

    /// Finishes hashing and returns the digest.
    pub fn finalize(mut self) -> [u8; 32] {
        let mut out = [0u8; 32];
        self.sponge.squeeze_into(&mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hex;

    #[test]
    fn empty_input_kat() {
        assert_eq!(
            hex(&Keccak256::digest(b"")),
            "c5d2460186f7233c927e7db2dcc703c0e500b653ca82273b7bfad8045d85a470"
        );
    }

    #[test]
    fn abc_kat() {
        assert_eq!(
            hex(&Keccak256::digest(b"abc")),
            "4e03657aea45a94fc7d47ba826c8d667c0d1e6e33a64a036ec44f58fa12d6c45"
        );
    }

    #[test]
    fn differs_from_sha3_by_padding_only() {
        // Same rate and capacity; only the domain byte differs.
        let legacy = Keccak256::digest(b"padding test");
        let nist = crate::Sha3_256::digest(b"padding test");
        assert_ne!(&legacy[..], &nist[..]);
    }

    #[test]
    fn incremental_matches_oneshot() {
        let msg = vec![7u8; 500];
        let mut hasher = Keccak256::new();
        hasher.update(&msg[..123]);
        hasher.update(&msg[123..]);
        assert_eq!(hasher.finalize(), Keccak256::digest(&msg));
    }
}
