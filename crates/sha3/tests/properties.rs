//! Property-based tests of the sponge and hash layer.

use krv_sha3::{
    hash_batch, BatchRequest, BatchSponge, DomainSeparator, ReferenceBackend, Sha3_224, Sha3_256,
    Sha3_384, Sha3_512, Shake128, Shake256, Sponge, SpongeParams, Xof,
};
use krv_testkit::cases;

#[test]
fn chunked_absorption_is_equivalent() {
    cases(64, |rng| {
        let len = rng.below(2000);
        let message = rng.bytes(len);
        let oneshot = Sha3_256::digest(&message);
        let mut hasher = Sha3_256::new();
        let mut cuts: Vec<usize> = (0..rng.below(8))
            .map(|_| rng.below(message.len() + 1))
            .collect();
        cuts.sort_unstable();
        let mut start = 0;
        for cut in cuts {
            hasher.update(&message[start..cut.max(start)]);
            start = cut.max(start);
        }
        hasher.update(&message[start..]);
        assert_eq!(hasher.finalize(), oneshot);
    });
}

#[test]
fn chunked_squeezing_is_equivalent() {
    cases(64, |rng| {
        let seed_len = rng.below(100);
        let seed = rng.bytes(seed_len);
        let lens: Vec<usize> = (0..1 + rng.below(5)).map(|_| 1 + rng.below(199)).collect();
        let total: usize = lens.iter().sum();
        let mut reference = Shake128::new();
        reference.update(&seed);
        let expected = reference.squeeze(total);
        let mut xof = Shake128::new();
        xof.update(&seed);
        let mut streamed = Vec::new();
        for len in lens {
            streamed.extend(xof.squeeze(len));
        }
        assert_eq!(streamed, expected);
    });
}

#[test]
fn digests_differ_across_functions() {
    cases(32, |rng| {
        // The four hash functions and two XOFs must never collide on
        // their common 28-byte prefix (they have distinct capacities).
        let len = rng.below(300);
        let message = rng.bytes(len);
        let digests: Vec<Vec<u8>> = vec![
            Sha3_224::digest(&message).to_vec(),
            Sha3_256::digest(&message).to_vec(),
            Sha3_384::digest(&message).to_vec(),
            Sha3_512::digest(&message).to_vec(),
            Shake128::digest(&message, 28),
            Shake256::digest(&message, 28),
        ];
        for i in 0..digests.len() {
            for j in i + 1..digests.len() {
                assert_ne!(&digests[i][..28], &digests[j][..28], "{i} vs {j}");
            }
        }
    });
}

#[test]
fn batch_matches_individual_for_random_inputs() {
    cases(32, |rng| {
        let len = rng.below(500);
        let n = 1 + rng.below(6);
        let seed = rng.next_u64();
        let inputs: Vec<Vec<u8>> = (0..n)
            .map(|i| {
                (0..len)
                    .map(|j| (seed.wrapping_mul(i as u64 + 1).wrapping_add(j as u64)) as u8)
                    .collect()
            })
            .collect();
        let refs: Vec<&[u8]> = inputs.iter().map(|v| v.as_slice()).collect();
        let mut batch = BatchSponge::new(SpongeParams::shake(128), ReferenceBackend::new(), n);
        batch.absorb(&refs);
        let outputs = batch.squeeze(64);
        for (input, output) in inputs.iter().zip(&outputs) {
            let mut xof = Shake128::new();
            xof.update(input);
            assert_eq!(output.clone(), xof.squeeze(64));
        }
    });
}

#[test]
fn scheduled_batch_matches_individual_for_mixed_lengths() {
    cases(32, |rng| {
        let n = rng.below(12);
        let messages: Vec<Vec<u8>> = (0..n)
            .map(|_| {
                let len = rng.below(700);
                rng.bytes(len)
            })
            .collect();
        let requests: Vec<BatchRequest<'_>> = messages
            .iter()
            .map(|m| BatchRequest::new(m, 1 + rng.below(400)))
            .collect();
        let outputs = hash_batch(SpongeParams::shake(128), ReferenceBackend::new(), &requests);
        for (request, output) in requests.iter().zip(&outputs) {
            let mut xof = Shake128::new();
            xof.update(request.message);
            assert_eq!(*output, xof.squeeze(request.output_len));
        }
    });
}

#[test]
fn sponge_output_depends_on_domain() {
    cases(32, |rng| {
        let len = rng.below(200);
        let message = rng.bytes(len);
        let mut outputs = Vec::new();
        for domain in [
            DomainSeparator::Sha3,
            DomainSeparator::Shake,
            DomainSeparator::Keccak,
        ] {
            let mut sponge = Sponge::new(SpongeParams::new(136, domain), ReferenceBackend::new());
            sponge.absorb(&message);
            outputs.push(sponge.squeeze(32));
        }
        assert_ne!(&outputs[0], &outputs[1]);
        assert_ne!(&outputs[0], &outputs[2]);
        assert_ne!(&outputs[1], &outputs[2]);
    });
}

#[test]
fn appending_a_byte_changes_the_digest() {
    cases(64, |rng| {
        let len = rng.below(300);
        let message = rng.bytes(len);
        let mut extended = message.clone();
        extended.push(rng.next_u32() as u8);
        assert_ne!(Sha3_256::digest(&message), Sha3_256::digest(&extended));
    });
}
