//! Property-based tests of the sponge and hash layer.

use krv_sha3::{
    BatchSponge, DomainSeparator, ReferenceBackend, Sha3_224, Sha3_256, Sha3_384, Sha3_512,
    Shake128, Shake256, Sponge, SpongeParams, Xof,
};
use proptest::prelude::*;

proptest! {
    #[test]
    fn chunked_absorption_is_equivalent(
        message in proptest::collection::vec(any::<u8>(), 0..2000),
        splits in proptest::collection::vec(0usize..2000, 0..8),
    ) {
        let oneshot = Sha3_256::digest(&message);
        let mut hasher = Sha3_256::new();
        let mut cuts: Vec<usize> = splits.iter().map(|&s| s % (message.len() + 1)).collect();
        cuts.sort_unstable();
        let mut start = 0;
        for cut in cuts {
            hasher.update(&message[start..cut.max(start)]);
            start = cut.max(start);
        }
        hasher.update(&message[start..]);
        prop_assert_eq!(hasher.finalize(), oneshot);
    }

    #[test]
    fn chunked_squeezing_is_equivalent(
        seed in proptest::collection::vec(any::<u8>(), 0..100),
        lens in proptest::collection::vec(1usize..200, 1..6),
    ) {
        let total: usize = lens.iter().sum();
        let mut reference = Shake128::new();
        reference.update(&seed);
        let expected = reference.squeeze(total);
        let mut xof = Shake128::new();
        xof.update(&seed);
        let mut streamed = Vec::new();
        for len in lens {
            streamed.extend(xof.squeeze(len));
        }
        prop_assert_eq!(streamed, expected);
    }

    #[test]
    fn digests_differ_across_functions(message in proptest::collection::vec(any::<u8>(), 0..300)) {
        // The four hash functions and two XOFs must never collide on
        // their common 28-byte prefix (they have distinct capacities).
        let digests: Vec<Vec<u8>> = vec![
            Sha3_224::digest(&message).to_vec(),
            Sha3_256::digest(&message).to_vec(),
            Sha3_384::digest(&message).to_vec(),
            Sha3_512::digest(&message).to_vec(),
            Shake128::digest(&message, 28),
            Shake256::digest(&message, 28),
        ];
        for i in 0..digests.len() {
            for j in i + 1..digests.len() {
                prop_assert_ne!(&digests[i][..28], &digests[j][..28], "{} vs {}", i, j);
            }
        }
    }

    #[test]
    fn batch_matches_individual_for_random_inputs(
        len in 0usize..500,
        n in 1usize..7,
        seed in any::<u64>(),
    ) {
        let inputs: Vec<Vec<u8>> = (0..n)
            .map(|i| {
                (0..len)
                    .map(|j| (seed.wrapping_mul(i as u64 + 1).wrapping_add(j as u64)) as u8)
                    .collect()
            })
            .collect();
        let refs: Vec<&[u8]> = inputs.iter().map(|v| v.as_slice()).collect();
        let mut batch = BatchSponge::new(SpongeParams::shake(128), ReferenceBackend::new(), n);
        batch.absorb(&refs);
        let outputs = batch.squeeze(64);
        for (input, output) in inputs.iter().zip(&outputs) {
            let mut xof = Shake128::new();
            xof.update(input);
            prop_assert_eq!(output.clone(), xof.squeeze(64));
        }
    }

    #[test]
    fn sponge_output_depends_on_domain(message in proptest::collection::vec(any::<u8>(), 0..200)) {
        let mut outputs = Vec::new();
        for domain in [DomainSeparator::Sha3, DomainSeparator::Shake, DomainSeparator::Keccak] {
            let mut sponge = Sponge::new(
                SpongeParams::new(136, domain),
                ReferenceBackend::new(),
            );
            sponge.absorb(&message);
            outputs.push(sponge.squeeze(32));
        }
        prop_assert_ne!(&outputs[0], &outputs[1]);
        prop_assert_ne!(&outputs[0], &outputs[2]);
        prop_assert_ne!(&outputs[1], &outputs[2]);
    }

    #[test]
    fn appending_a_byte_changes_the_digest(message in proptest::collection::vec(any::<u8>(), 0..300), extra in any::<u8>()) {
        let mut extended = message.clone();
        extended.push(extra);
        prop_assert_ne!(Sha3_256::digest(&message), Sha3_256::digest(&extended));
    }
}
