//! Property-based tests of the sponge and hash layer.

use krv_sha3::{
    hash_batch, BatchRequest, BatchSponge, DomainSeparator, ReferenceBackend, Sha3_224, Sha3_256,
    Sha3_384, Sha3_512, Shake128, Shake256, Sponge, SpongeParams, Xof,
};
use krv_testkit::cases;

#[test]
fn chunked_absorption_is_equivalent() {
    cases(64, |rng| {
        let len = rng.below(2000);
        let message = rng.bytes(len);
        let oneshot = Sha3_256::digest(&message);
        let mut hasher = Sha3_256::new();
        let mut cuts: Vec<usize> = (0..rng.below(8))
            .map(|_| rng.below(message.len() + 1))
            .collect();
        cuts.sort_unstable();
        let mut start = 0;
        for cut in cuts {
            hasher.update(&message[start..cut.max(start)]);
            start = cut.max(start);
        }
        hasher.update(&message[start..]);
        assert_eq!(hasher.finalize(), oneshot);
    });
}

#[test]
fn chunked_squeezing_is_equivalent() {
    cases(64, |rng| {
        let seed_len = rng.below(100);
        let seed = rng.bytes(seed_len);
        let lens: Vec<usize> = (0..1 + rng.below(5)).map(|_| 1 + rng.below(199)).collect();
        let total: usize = lens.iter().sum();
        let mut reference = Shake128::new();
        reference.update(&seed);
        let expected = reference.squeeze(total);
        let mut xof = Shake128::new();
        xof.update(&seed);
        let mut streamed = Vec::new();
        for len in lens {
            streamed.extend(xof.squeeze(len));
        }
        assert_eq!(streamed, expected);
    });
}

#[test]
fn digests_differ_across_functions() {
    cases(32, |rng| {
        // The four hash functions and two XOFs must never collide on
        // their common 28-byte prefix (they have distinct capacities).
        let len = rng.below(300);
        let message = rng.bytes(len);
        let digests: Vec<Vec<u8>> = vec![
            Sha3_224::digest(&message).to_vec(),
            Sha3_256::digest(&message).to_vec(),
            Sha3_384::digest(&message).to_vec(),
            Sha3_512::digest(&message).to_vec(),
            Shake128::digest(&message, 28),
            Shake256::digest(&message, 28),
        ];
        for i in 0..digests.len() {
            for j in i + 1..digests.len() {
                assert_ne!(&digests[i][..28], &digests[j][..28], "{i} vs {j}");
            }
        }
    });
}

#[test]
fn batch_matches_individual_for_random_inputs() {
    cases(32, |rng| {
        let len = rng.below(500);
        let n = 1 + rng.below(6);
        let seed = rng.next_u64();
        let inputs: Vec<Vec<u8>> = (0..n)
            .map(|i| {
                (0..len)
                    .map(|j| (seed.wrapping_mul(i as u64 + 1).wrapping_add(j as u64)) as u8)
                    .collect()
            })
            .collect();
        let refs: Vec<&[u8]> = inputs.iter().map(|v| v.as_slice()).collect();
        let mut batch = BatchSponge::new(SpongeParams::shake(128), ReferenceBackend::new(), n);
        batch.absorb(&refs);
        let outputs = batch.squeeze(64);
        for (input, output) in inputs.iter().zip(&outputs) {
            let mut xof = Shake128::new();
            xof.update(input);
            assert_eq!(output.clone(), xof.squeeze(64));
        }
    });
}

#[test]
fn scheduled_batch_matches_individual_for_mixed_lengths() {
    cases(32, |rng| {
        let n = rng.below(12);
        let messages: Vec<Vec<u8>> = (0..n)
            .map(|_| {
                let len = rng.below(700);
                rng.bytes(len)
            })
            .collect();
        let requests: Vec<BatchRequest<'_>> = messages
            .iter()
            .map(|m| BatchRequest::new(m, 1 + rng.below(400)))
            .collect();
        let outputs = hash_batch(SpongeParams::shake(128), ReferenceBackend::new(), &requests);
        for (request, output) in requests.iter().zip(&outputs) {
            let mut xof = Shake128::new();
            xof.update(request.message);
            assert_eq!(*output, xof.squeeze(request.output_len));
        }
    });
}

#[test]
fn sponge_output_depends_on_domain() {
    cases(32, |rng| {
        let len = rng.below(200);
        let message = rng.bytes(len);
        let mut outputs = Vec::new();
        for domain in [
            DomainSeparator::Sha3,
            DomainSeparator::Shake,
            DomainSeparator::Keccak,
        ] {
            let mut sponge = Sponge::new(SpongeParams::new(136, domain), ReferenceBackend::new());
            sponge.absorb(&message);
            outputs.push(sponge.squeeze(32));
        }
        assert_ne!(&outputs[0], &outputs[1]);
        assert_ne!(&outputs[0], &outputs[2]);
        assert_ne!(&outputs[1], &outputs[2]);
    });
}

/// The padding-critical message lengths for a sponge with the given
/// rate: empty, one byte below/at/above a full block, and two blocks
/// (where `pad10*1` lands in every possible position relative to the
/// block boundary).
fn rate_boundary_lengths(rate: usize) -> [usize; 6] {
    [0, rate - 1, rate, rate + 1, 2 * rate, 2 * rate + 1]
}

#[test]
fn rate_boundary_lengths_roundtrip_through_hash_batch() {
    // Every boundary length, hashed alone and inside a batch, must agree
    // with the one-shot digest — for each of the six functions' rates.
    for params in [
        SpongeParams::sha3(224),
        SpongeParams::sha3(256),
        SpongeParams::sha3(384),
        SpongeParams::sha3(512),
        SpongeParams::shake(128),
        SpongeParams::shake(256),
    ] {
        let rate = params.rate_bytes();
        let messages: Vec<Vec<u8>> = rate_boundary_lengths(rate)
            .iter()
            .map(|&len| (0..len).map(|i| (i * 31 + len) as u8).collect())
            .collect();
        let requests: Vec<BatchRequest<'_>> =
            messages.iter().map(|m| BatchRequest::new(m, 48)).collect();
        let batched = hash_batch(params, ReferenceBackend::new(), &requests);
        for (message, output) in messages.iter().zip(&batched) {
            let mut sponge = Sponge::new(params, ReferenceBackend::new());
            sponge.absorb(message);
            assert_eq!(
                *output,
                sponge.squeeze(48),
                "rate {rate}, len {}",
                message.len()
            );
        }
    }
}

#[test]
fn digest_batch_handles_rate_boundaries_per_function() {
    // The typed front-ends (fixed-width digests and XOFs) over the
    // boundary lengths of their own rate.
    let lens = rate_boundary_lengths(136); // SHA3-256 / SHAKE256 rate
    let messages: Vec<Vec<u8>> = lens
        .iter()
        .map(|&len| (0..len).map(|i| (i ^ len) as u8).collect())
        .collect();
    let refs: Vec<&[u8]> = messages.iter().map(|m| m.as_slice()).collect();
    for (message, digest) in messages
        .iter()
        .zip(Sha3_256::digest_batch(ReferenceBackend::new(), &refs))
    {
        assert_eq!(digest, Sha3_256::digest(message), "len {}", message.len());
    }
    for (message, digest) in
        messages
            .iter()
            .zip(Shake256::digest_batch(ReferenceBackend::new(), &refs, 64))
    {
        assert_eq!(
            digest,
            Shake256::digest(message, 64),
            "len {}",
            message.len()
        );
    }
}

#[test]
fn ragged_batches_spanning_rate_boundaries_match_one_shot() {
    cases(24, |rng| {
        // Batches mixing boundary lengths with random ones, random
        // request counts, random output lengths — all must match the
        // per-message one-shot path.
        let rate = *rng.pick(&[104usize, 136, 168]);
        let params = match rate {
            104 => SpongeParams::sha3(384),
            136 => SpongeParams::shake(256),
            _ => SpongeParams::shake(128),
        };
        let n = 1 + rng.below(9);
        let messages: Vec<Vec<u8>> = (0..n)
            .map(|_| {
                let len = if rng.next_bool() {
                    rate_boundary_lengths(rate)[rng.below(6)]
                } else {
                    rng.below(3 * rate)
                };
                rng.bytes(len)
            })
            .collect();
        let requests: Vec<BatchRequest<'_>> = messages
            .iter()
            .map(|m| BatchRequest::new(m, 1 + rng.below(200)))
            .collect();
        let outputs = hash_batch(params, ReferenceBackend::new(), &requests);
        for (request, output) in requests.iter().zip(&outputs) {
            let mut sponge = Sponge::new(params, ReferenceBackend::new());
            sponge.absorb(request.message);
            assert_eq!(
                *output,
                sponge.squeeze(request.output_len),
                "rate {rate}, len {}",
                request.message.len()
            );
        }
    });
}

/// A backend that mimics an `SN`-states-wide engine over the reference
/// permutation: each `permute_all` is served in `⌈n / SN⌉` passes of at
/// most `SN` states, like a `VectorKeccakEngine` would run them. Lets
/// the batch schedulers be exercised against widths the batch size does
/// not divide, without depending on the engine crate.
struct SnWideBackend {
    sn: usize,
    passes: u64,
}

impl SnWideBackend {
    fn new(sn: usize) -> Self {
        Self { sn, passes: 0 }
    }
}

impl krv_sha3::PermutationBackend for SnWideBackend {
    fn permute_all(&mut self, states: &mut [krv_keccak::KeccakState]) {
        for chunk in states.chunks_mut(self.sn) {
            assert!(chunk.len() <= self.sn, "pass wider than the hardware");
            ReferenceBackend::new().permute_all(chunk);
            self.passes += 1;
        }
    }

    fn parallel_states(&self) -> usize {
        self.sn
    }
}

#[test]
fn empty_batch_returns_no_outputs() {
    // The degenerate scheduler input: no requests, no permutations.
    let mut backend = SnWideBackend::new(4);
    let outputs = hash_batch(SpongeParams::sha3(256), &mut backend, &[]);
    assert!(outputs.is_empty());
    assert_eq!(backend.passes, 0, "an empty batch must not touch hardware");
}

#[test]
fn zero_length_messages_hash_to_the_empty_digest_in_any_batch() {
    cases(24, |rng| {
        // Batches mixing empty messages with random ones: every empty
        // message must produce exactly the digest of b"".
        let n = 1 + rng.below(9);
        let messages: Vec<Vec<u8>> = (0..n)
            .map(|_| {
                if rng.next_bool() {
                    Vec::new()
                } else {
                    let len = 1 + rng.below(400);
                    rng.bytes(len)
                }
            })
            .collect();
        let requests: Vec<BatchRequest<'_>> =
            messages.iter().map(|m| BatchRequest::new(m, 32)).collect();
        let outputs = hash_batch(
            SpongeParams::sha3(256),
            SnWideBackend::new(1 + rng.below(5)),
            &requests,
        );
        for (message, output) in messages.iter().zip(&outputs) {
            assert_eq!(*output, Sha3_256::digest(message).to_vec());
            if message.is_empty() {
                assert_eq!(*output, Sha3_256::digest(b"").to_vec());
            }
        }
    });
}

#[test]
fn zero_output_requests_coexist_with_squeezing_neighbours() {
    cases(24, |rng| {
        // output_len = 0 is legal: the request drains immediately after
        // absorbing, while neighbours keep squeezing long outputs.
        let n = 1 + rng.below(8);
        let messages: Vec<Vec<u8>> = (0..n)
            .map(|_| {
                let len = rng.below(300);
                rng.bytes(len)
            })
            .collect();
        let wants: Vec<usize> = (0..n)
            .map(|i| if i % 2 == 0 { 0 } else { 1 + rng.below(500) })
            .collect();
        let requests: Vec<BatchRequest<'_>> = messages
            .iter()
            .zip(&wants)
            .map(|(m, &want)| BatchRequest::new(m, want))
            .collect();
        let outputs = hash_batch(SpongeParams::shake(128), SnWideBackend::new(3), &requests);
        assert_eq!(outputs.len(), n);
        for ((message, &want), output) in messages.iter().zip(&wants).zip(&outputs) {
            assert_eq!(output.len(), want);
            assert_eq!(*output, Shake128::digest(message, want));
        }
    });
}

#[test]
fn batch_sizes_off_the_backend_width_still_match_one_shot() {
    cases(24, |rng| {
        // Batch sizes deliberately not multiples of the backend's SN —
        // the ragged final pass must hash exactly like the full ones.
        let sn = 2 + rng.below(4); // 2..=5
        let n = 1 + rng.below(3 * sn); // frequently n % sn != 0
        let messages: Vec<Vec<u8>> = (0..n)
            .map(|_| {
                let len = rng.below(400);
                rng.bytes(len)
            })
            .collect();
        let requests: Vec<BatchRequest<'_>> = messages
            .iter()
            .map(|m| BatchRequest::new(m, 1 + rng.below(100)))
            .collect();
        let mut backend = SnWideBackend::new(sn);
        let outputs = hash_batch(SpongeParams::shake(256), &mut backend, &requests);
        assert!(backend.passes > 0);
        for (request, output) in requests.iter().zip(&outputs) {
            assert_eq!(
                *output,
                Shake256::digest(request.message, request.output_len),
                "sn {sn}, n {n}, len {}",
                request.message.len()
            );
        }
    });
}

#[test]
fn lockstep_batch_works_at_widths_off_the_backend_width() {
    cases(16, |rng| {
        // BatchSponge with n ∤ SN, zero-length lockstep chunks included.
        let sn = 2 + rng.below(3);
        let n = 1 + rng.below(2 * sn + 1);
        let len = rng.below(300);
        let inputs: Vec<Vec<u8>> = (0..n).map(|_| rng.bytes(len)).collect();
        let refs: Vec<&[u8]> = inputs.iter().map(|v| v.as_slice()).collect();
        let empties: Vec<&[u8]> = inputs.iter().map(|_| [].as_slice()).collect();
        let mut batch = BatchSponge::new(SpongeParams::shake(128), SnWideBackend::new(sn), n);
        batch.absorb(&empties); // zero-length absorb is a no-op
        batch.absorb(&refs);
        let want = rng.below(300);
        let outputs = batch.squeeze(want);
        for (input, output) in inputs.iter().zip(&outputs) {
            assert_eq!(*output, Shake128::digest(input, want), "sn {sn}, n {n}");
        }
    });
}

#[test]
fn appending_a_byte_changes_the_digest() {
    cases(64, |rng| {
        let len = rng.below(300);
        let message = rng.bytes(len);
        let mut extended = message.clone();
        extended.push(rng.next_u32() as u8);
        assert_ne!(Sha3_256::digest(&message), Sha3_256::digest(&extended));
    });
}
