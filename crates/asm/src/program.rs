//! The assembled-program container.

use krv_isa::Instruction;
use std::collections::BTreeMap;

/// An assembled program: instructions plus the label/symbol table.
#[derive(Debug, Clone, Default)]
pub struct Program {
    instructions: Vec<Instruction>,
    symbols: BTreeMap<String, u32>,
}

impl Program {
    /// Creates a program from raw parts.
    pub fn new(instructions: Vec<Instruction>, symbols: BTreeMap<String, u32>) -> Self {
        Self {
            instructions,
            symbols,
        }
    }

    /// The instruction sequence, in address order starting at 0.
    pub fn instructions(&self) -> &[Instruction] {
        &self.instructions
    }

    /// The label table: name → byte address.
    pub fn symbols(&self) -> &BTreeMap<String, u32> {
        &self.symbols
    }

    /// The byte address of a label, if defined.
    pub fn symbol(&self, name: &str) -> Option<u32> {
        self.symbols.get(name).copied()
    }

    /// Encodes every instruction into its machine word.
    pub fn machine_code(&self) -> Vec<u32> {
        self.instructions.iter().map(Instruction::encode).collect()
    }

    /// Program size in bytes.
    pub fn size_bytes(&self) -> usize {
        self.instructions.len() * 4
    }

    /// Consumes the program, returning the instruction sequence.
    pub fn into_instructions(self) -> Vec<Instruction> {
        self.instructions
    }
}

impl From<Vec<Instruction>> for Program {
    fn from(instructions: Vec<Instruction>) -> Self {
        Self {
            instructions,
            symbols: BTreeMap::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn machine_code_matches_encode() {
        let program = Program::from(vec![Instruction::nop(), Instruction::Ecall]);
        assert_eq!(program.machine_code(), vec![0x0000_0013, 0x0000_0073]);
        assert_eq!(program.size_bytes(), 8);
    }
}
