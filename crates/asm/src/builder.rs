//! A typed program builder: construct programs instruction by
//! instruction with labels and forward references, without going through
//! assembly text.
//!
//! The text assembler ([`crate::assemble`]) is the right tool for
//! hand-written kernels; this builder is for *generated* code (like the
//! scalar Keccak baseline) where the host program computes the
//! instruction stream.
//!
//! # Example
//!
//! ```
//! use krv_asm::ProgramBuilder;
//! use krv_isa::{OpKind, XReg};
//!
//! let mut b = ProgramBuilder::new();
//! let loop_top = b.label("loop");
//! b.li(XReg::X5, 3);
//! b.bind(loop_top)?;
//! b.op(OpKind::Add, XReg::X10, XReg::X10, XReg::X5);
//! b.addi(XReg::X5, XReg::X5, -1);
//! b.bnez(XReg::X5, loop_top);
//! b.ecall();
//! let program = b.finish()?;
//! assert!(program.instructions().len() >= 5);
//! # Ok::<(), krv_asm::BuildError>(())
//! ```

use crate::program::Program;
use core::fmt;
use krv_isa::{
    BranchKind, CustomOp, Instruction, LoadKind, OpImmKind, OpKind, StoreKind, VArithOp, VReg,
    VSource, Vtype, XReg,
};
use std::collections::BTreeMap;

/// A label handle returned by [`ProgramBuilder::label`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Label(usize);

/// Error from [`ProgramBuilder::finish`] or [`ProgramBuilder::bind`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// A label was referenced but never bound to a position.
    UnboundLabel {
        /// The label's name.
        name: String,
    },
    /// A label was bound twice.
    Rebound {
        /// The label's name.
        name: String,
    },
    /// A resolved branch offset exceeds the B-type range (±4 KiB).
    BranchOutOfRange {
        /// The label's name.
        name: String,
        /// The resolved byte offset.
        offset: i64,
    },
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::UnboundLabel { name } => write!(f, "label `{name}` was never bound"),
            BuildError::Rebound { name } => write!(f, "label `{name}` bound twice"),
            BuildError::BranchOutOfRange { name, offset } => {
                write!(f, "branch to `{name}` out of range (offset {offset})")
            }
        }
    }
}

impl std::error::Error for BuildError {}

enum Pending {
    Branch {
        kind: BranchKind,
        rs1: XReg,
        rs2: XReg,
        target: Label,
    },
    Jal {
        rd: XReg,
        target: Label,
    },
}

/// Incrementally builds a [`Program`].
#[derive(Default)]
pub struct ProgramBuilder {
    instructions: Vec<Instruction>,
    /// Instruction slots whose offset is fixed up at finish.
    fixups: Vec<(usize, Pending)>,
    labels: Vec<(String, Option<usize>)>,
}

impl ProgramBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares a label (bind it later with [`Self::bind`]).
    pub fn label(&mut self, name: impl Into<String>) -> Label {
        self.labels.push((name.into(), None));
        Label(self.labels.len() - 1)
    }

    /// Binds `label` to the current position.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::Rebound`] if already bound.
    pub fn bind(&mut self, label: Label) -> Result<(), BuildError> {
        let (name, slot) = &mut self.labels[label.0];
        if slot.is_some() {
            return Err(BuildError::Rebound { name: name.clone() });
        }
        *slot = Some(self.instructions.len());
        Ok(())
    }

    /// Current position in instructions (for size accounting).
    pub fn len(&self) -> usize {
        self.instructions.len()
    }

    /// Whether no instructions have been emitted yet.
    pub fn is_empty(&self) -> bool {
        self.instructions.is_empty()
    }

    /// Emits a raw instruction.
    pub fn push(&mut self, instr: Instruction) -> &mut Self {
        self.instructions.push(instr);
        self
    }

    /// `li rd, imm` (expands to `lui`+`addi` when needed).
    pub fn li(&mut self, rd: XReg, imm: i32) -> &mut Self {
        if (-2048..=2047).contains(&imm) {
            self.push(Instruction::addi(rd, XReg::X0, imm))
        } else {
            let hi = imm.wrapping_add(0x800) & !0xFFF;
            let lo = imm.wrapping_sub(hi);
            self.push(Instruction::Lui { rd, imm: hi });
            self.push(Instruction::addi(rd, rd, lo))
        }
    }

    /// `addi rd, rs1, imm`.
    pub fn addi(&mut self, rd: XReg, rs1: XReg, imm: i32) -> &mut Self {
        self.push(Instruction::addi(rd, rs1, imm))
    }

    /// A register-register ALU operation.
    pub fn op(&mut self, kind: OpKind, rd: XReg, rs1: XReg, rs2: XReg) -> &mut Self {
        self.push(Instruction::Op { kind, rd, rs1, rs2 })
    }

    /// A register-immediate ALU operation.
    pub fn op_imm(&mut self, kind: OpImmKind, rd: XReg, rs1: XReg, imm: i32) -> &mut Self {
        self.push(Instruction::OpImm { kind, rd, rs1, imm })
    }

    /// A scalar load.
    pub fn load(&mut self, kind: LoadKind, rd: XReg, rs1: XReg, offset: i32) -> &mut Self {
        self.push(Instruction::Load {
            kind,
            rd,
            rs1,
            offset,
        })
    }

    /// A scalar store.
    pub fn store(&mut self, kind: StoreKind, rs2: XReg, rs1: XReg, offset: i32) -> &mut Self {
        self.push(Instruction::Store {
            kind,
            rs2,
            rs1,
            offset,
        })
    }

    /// A conditional branch to a label.
    pub fn branch(&mut self, kind: BranchKind, rs1: XReg, rs2: XReg, target: Label) -> &mut Self {
        self.fixups.push((
            self.instructions.len(),
            Pending::Branch {
                kind,
                rs1,
                rs2,
                target,
            },
        ));
        // Placeholder; patched in finish().
        self.push(Instruction::Branch {
            kind,
            rs1,
            rs2,
            offset: 0,
        })
    }

    /// `bnez rs, target`.
    pub fn bnez(&mut self, rs: XReg, target: Label) -> &mut Self {
        self.branch(BranchKind::Bne, rs, XReg::X0, target)
    }

    /// `beqz rs, target`.
    pub fn beqz(&mut self, rs: XReg, target: Label) -> &mut Self {
        self.branch(BranchKind::Beq, rs, XReg::X0, target)
    }

    /// `blt rs1, rs2, target`.
    pub fn blt(&mut self, rs1: XReg, rs2: XReg, target: Label) -> &mut Self {
        self.branch(BranchKind::Blt, rs1, rs2, target)
    }

    /// `jal rd, target` (use `XReg::X0` for a plain jump).
    pub fn jal(&mut self, rd: XReg, target: Label) -> &mut Self {
        self.fixups
            .push((self.instructions.len(), Pending::Jal { rd, target }));
        self.push(Instruction::Jal { rd, offset: 0 })
    }

    /// `vsetvli rd, rs1, vtype`.
    pub fn vsetvli(&mut self, rd: XReg, rs1: XReg, vtype: Vtype) -> &mut Self {
        self.push(Instruction::Vsetvli { rd, rs1, vtype })
    }

    /// Unmasked vector arithmetic.
    pub fn varith(&mut self, op: VArithOp, vd: VReg, vs2: VReg, src: VSource) -> &mut Self {
        self.push(Instruction::varith(op, vd, vs2, src))
    }

    /// A custom Keccak instruction.
    pub fn custom(&mut self, op: CustomOp) -> &mut Self {
        self.push(Instruction::Custom(op))
    }

    /// `ecall`.
    pub fn ecall(&mut self) -> &mut Self {
        self.push(Instruction::Ecall)
    }

    /// Resolves labels and returns the program.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError`] for unbound labels or out-of-range
    /// branches.
    pub fn finish(mut self) -> Result<Program, BuildError> {
        let resolve =
            |labels: &[(String, Option<usize>)], label: Label| -> Result<usize, BuildError> {
                let (name, slot) = &labels[label.0];
                slot.ok_or_else(|| BuildError::UnboundLabel { name: name.clone() })
            };
        for (index, pending) in &self.fixups {
            match pending {
                Pending::Branch {
                    kind,
                    rs1,
                    rs2,
                    target,
                } => {
                    let dest = resolve(&self.labels, *target)?;
                    let offset = (dest as i64 - *index as i64) * 4;
                    if !(-4096..=4094).contains(&offset) {
                        return Err(BuildError::BranchOutOfRange {
                            name: self.labels[target.0].0.clone(),
                            offset,
                        });
                    }
                    self.instructions[*index] = Instruction::Branch {
                        kind: *kind,
                        rs1: *rs1,
                        rs2: *rs2,
                        offset: offset as i32,
                    };
                }
                Pending::Jal { rd, target } => {
                    let dest = resolve(&self.labels, *target)?;
                    let offset = (dest as i64 - *index as i64) * 4;
                    self.instructions[*index] = Instruction::Jal {
                        rd: *rd,
                        offset: offset as i32,
                    };
                }
            }
        }
        let mut symbols = BTreeMap::new();
        for (name, slot) in self.labels {
            if let Some(index) = slot {
                symbols.insert(name, (index * 4) as u32);
            }
        }
        Ok(Program::new(self.instructions, symbols))
    }
}

impl fmt::Debug for ProgramBuilder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ProgramBuilder")
            .field("instructions", &self.instructions.len())
            .field("labels", &self.labels.len())
            .field("pending_fixups", &self.fixups.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_a_loop_with_backward_branch() {
        let mut b = ProgramBuilder::new();
        b.li(XReg::X5, 4);
        let top = b.label("top");
        b.bind(top).unwrap();
        b.addi(XReg::X10, XReg::X10, 2);
        b.addi(XReg::X5, XReg::X5, -1);
        b.bnez(XReg::X5, top);
        b.ecall();
        let program = b.finish().unwrap();
        assert_eq!(program.symbol("top"), Some(4));
        // The branch at index 3 targets index 1: offset −8.
        assert_eq!(
            program.instructions()[3],
            Instruction::Branch {
                kind: BranchKind::Bne,
                rs1: XReg::X5,
                rs2: XReg::X0,
                offset: -8
            }
        );
    }

    #[test]
    fn forward_references_resolve() {
        let mut b = ProgramBuilder::new();
        let end = b.label("end");
        b.beqz(XReg::X10, end);
        b.li(XReg::X11, 1);
        b.bind(end).unwrap();
        b.ecall();
        let program = b.finish().unwrap();
        assert_eq!(
            program.instructions()[0],
            Instruction::Branch {
                kind: BranchKind::Beq,
                rs1: XReg::X10,
                rs2: XReg::X0,
                offset: 8
            }
        );
    }

    #[test]
    fn unbound_label_errors() {
        let mut b = ProgramBuilder::new();
        let nowhere = b.label("nowhere");
        b.jal(XReg::X0, nowhere);
        assert_eq!(
            b.finish().unwrap_err(),
            BuildError::UnboundLabel {
                name: "nowhere".into()
            }
        );
    }

    #[test]
    fn double_bind_errors() {
        let mut b = ProgramBuilder::new();
        let label = b.label("x");
        b.bind(label).unwrap();
        b.ecall();
        assert_eq!(b.bind(label), Err(BuildError::Rebound { name: "x".into() }));
    }

    #[test]
    fn branch_range_enforced() {
        let mut b = ProgramBuilder::new();
        let top = b.label("top");
        b.bind(top).unwrap();
        for _ in 0..1100 {
            b.push(Instruction::nop());
        }
        b.bnez(XReg::X5, top);
        assert!(matches!(
            b.finish(),
            Err(BuildError::BranchOutOfRange { .. })
        ));
    }

    #[test]
    fn built_program_executes_like_text_assembly() {
        use crate::assemble;
        let text = assemble("li t0, 4\ntop:\naddi a0, a0, 2\naddi t0, t0, -1\nbnez t0, top\necall")
            .unwrap();
        let mut b = ProgramBuilder::new();
        b.li(XReg::X5, 4);
        let top = b.label("top");
        b.bind(top).unwrap();
        b.addi(XReg::X10, XReg::X10, 2);
        b.addi(XReg::X5, XReg::X5, -1);
        b.bnez(XReg::X5, top);
        b.ecall();
        let built = b.finish().unwrap();
        assert_eq!(built.instructions(), text.instructions());
    }

    #[test]
    fn li_expansion_matches_parser() {
        let mut b = ProgramBuilder::new();
        b.li(XReg::X6, 0x12345);
        let built = b.finish().unwrap();
        let parsed = crate::assemble("li t1, 0x12345").unwrap();
        assert_eq!(built.instructions(), parsed.instructions());
    }
}
