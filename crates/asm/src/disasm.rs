//! Disassembly: machine words back to assembly text.

use krv_isa::{DecodeError, Instruction};

/// Renders a sequence of instructions as assembly text, one per line.
pub fn disassemble(instructions: &[Instruction]) -> String {
    let mut text = String::new();
    for instr in instructions {
        text.push_str(&instr.to_string());
        text.push('\n');
    }
    text
}

/// Decodes and renders machine words, annotating each line with its
/// address and encoding.
///
/// # Errors
///
/// Returns the index and [`DecodeError`] of the first undecodable word.
pub fn disassemble_words(words: &[u32]) -> Result<String, (usize, DecodeError)> {
    let mut text = String::new();
    for (i, &word) in words.iter().enumerate() {
        let instr = Instruction::decode(word).map_err(|e| (i, e))?;
        text.push_str(&format!("{:6x}: {word:08x}    {instr}\n", i * 4));
    }
    Ok(text)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assemble;

    #[test]
    fn disassembly_reassembles_to_same_code() {
        let source = r"
            li s1, 16
            li s2, -1
        loop:
            vsetvli x0, s1, e64, m1, tu, mu
            vle64.v v0, (a0)
            vxor.vv v5, v3, v4
            vslidedownm.vi v7, v5, 1
            vrotup.vi v7, v7, 1
            v64rho.vi v1, v1, 1
            vpi.vi v5, v2, 2
            viota.vx v0, v0, s3
            vse64.v v0, (a0)
            addi s3, s3, 1
            blt s3, s4, loop
            ecall
        ";
        let program = assemble(source).expect("assembles");
        let text = disassemble(program.instructions());
        let reassembled = assemble(&text).expect("disassembly reassembles");
        assert_eq!(program.instructions(), reassembled.instructions());
    }

    #[test]
    fn words_disassembly_includes_addresses() {
        let words = vec![0x0000_0013, 0x0000_0073];
        let text = disassemble_words(&words).unwrap();
        assert!(text.contains("00000013"));
        assert!(text.contains("ecall"));
    }

    #[test]
    fn bad_word_reports_index() {
        let err = disassemble_words(&[0x0000_0013, 0xFFFF_FFFF]).unwrap_err();
        assert_eq!(err.0, 1);
    }
}
