//! The two-pass assembler.

use crate::program::Program;
use core::fmt;
use krv_isa::{
    BranchKind, CustomOp, Eew, Instruction, Lmul, LoadKind, MemMode, OpImmKind, OpKind, RhoRow,
    Sew, StoreKind, VArithOp, VReg, VSource, Vtype, XReg,
};
use std::collections::BTreeMap;

/// An assembly error with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    line: usize,
    message: String,
}

impl AsmError {
    fn new(line: usize, message: impl Into<String>) -> Self {
        Self {
            line,
            message: message.into(),
        }
    }

    /// The 1-based source line the error occurred on.
    pub fn line(&self) -> usize {
        self.line
    }

    /// The error description.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for AsmError {}

struct Item<'a> {
    line: usize,
    mnemonic: &'a str,
    operands: Vec<&'a str>,
    /// Instruction index (not byte address) this item starts at.
    index: usize,
    /// Number of instructions this item expands to.
    size: usize,
}

fn strip_comment(line: &str) -> &str {
    let end = line
        .find('#')
        .into_iter()
        .chain(line.find("//"))
        .min()
        .unwrap_or(line.len());
    &line[..end]
}

fn split_operands(text: &str) -> Vec<&str> {
    let mut operands = Vec::new();
    let mut depth = 0usize;
    let mut start = 0usize;
    for (i, ch) in text.char_indices() {
        match ch {
            '(' => depth += 1,
            ')' => depth = depth.saturating_sub(1),
            ',' if depth == 0 => {
                operands.push(text[start..i].trim());
                start = i + 1;
            }
            _ => {}
        }
    }
    let last = text[start..].trim();
    if !last.is_empty() {
        operands.push(last);
    }
    operands.retain(|op| !op.is_empty());
    operands
}

fn parse_imm(text: &str, line: usize) -> Result<i64, AsmError> {
    let text = text.trim();
    let (neg, body) = match text.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, text),
    };
    let value = if let Some(hex) = body.strip_prefix("0x").or_else(|| body.strip_prefix("0X")) {
        i64::from_str_radix(hex, 16)
    } else if let Some(bin) = body.strip_prefix("0b").or_else(|| body.strip_prefix("0B")) {
        i64::from_str_radix(bin, 2)
    } else {
        body.parse()
    }
    .map_err(|_| AsmError::new(line, format!("invalid immediate `{text}`")))?;
    Ok(if neg { -value } else { value })
}

fn parse_xreg(text: &str, line: usize) -> Result<XReg, AsmError> {
    text.trim()
        .parse()
        .map_err(|_| AsmError::new(line, format!("invalid scalar register `{text}`")))
}

fn parse_vreg(text: &str, line: usize) -> Result<VReg, AsmError> {
    text.trim()
        .parse()
        .map_err(|_| AsmError::new(line, format!("invalid vector register `{text}`")))
}

/// Parses `offset(reg)` or `(reg)`, returning `(offset, reg)`.
fn parse_mem_operand(text: &str, line: usize) -> Result<(i64, XReg), AsmError> {
    let text = text.trim();
    let open = text
        .find('(')
        .ok_or_else(|| AsmError::new(line, format!("expected `offset(reg)`, got `{text}`")))?;
    let close = text
        .rfind(')')
        .ok_or_else(|| AsmError::new(line, format!("missing `)` in `{text}`")))?;
    let offset_text = text[..open].trim();
    let offset = if offset_text.is_empty() {
        0
    } else {
        parse_imm(offset_text, line)?
    };
    let reg = parse_xreg(&text[open + 1..close], line)?;
    Ok((offset, reg))
}

/// Strips a trailing `v0.t` mask operand; returns `(operands, vm)`.
fn take_mask(mut operands: Vec<&str>) -> (Vec<&str>, bool) {
    if operands.last().map(|s| s.trim()) == Some("v0.t") {
        operands.pop();
        (operands, false)
    } else {
        (operands, true)
    }
}

fn expect_operands(
    item_line: usize,
    operands: &[&str],
    n: usize,
    usage: &str,
) -> Result<(), AsmError> {
    if operands.len() == n {
        Ok(())
    } else {
        Err(AsmError::new(
            item_line,
            format!("expected {n} operands ({usage}), got {}", operands.len()),
        ))
    }
}

fn check_range(line: usize, value: i64, lo: i64, hi: i64, what: &str) -> Result<i32, AsmError> {
    if (lo..=hi).contains(&value) {
        Ok(value as i32)
    } else {
        Err(AsmError::new(
            line,
            format!("{what} {value} out of range [{lo}, {hi}]"),
        ))
    }
}

/// Size (in instructions) of the `li` pseudo-instruction for `imm`.
fn li_size(imm: i64) -> usize {
    if (-2048..=2047).contains(&imm) {
        1
    } else {
        2
    }
}

fn is_label_def(token: &str) -> Option<&str> {
    token.strip_suffix(':').filter(|name| {
        !name.is_empty()
            && name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.')
    })
}

pub(crate) fn assemble(source: &str) -> Result<Program, AsmError> {
    // Pass 1: labels and item sizing.
    let mut items: Vec<Item> = Vec::new();
    let mut symbols: BTreeMap<String, u32> = BTreeMap::new();
    let mut index = 0usize;
    for (line_idx, raw_line) in source.lines().enumerate() {
        let line_no = line_idx + 1;
        let mut text = strip_comment(raw_line).trim();
        // A line may carry several labels followed by one instruction.
        while let Some(colon) = text.find(':') {
            let candidate = &text[..=colon];
            match is_label_def(candidate.trim()) {
                Some(name) => {
                    if symbols
                        .insert(name.to_owned(), (index * 4) as u32)
                        .is_some()
                    {
                        return Err(AsmError::new(line_no, format!("duplicate label `{name}`")));
                    }
                    text = text[colon + 1..].trim();
                }
                None => break,
            }
        }
        if text.is_empty() {
            continue;
        }
        let (mnemonic, rest) = match text.find(char::is_whitespace) {
            Some(pos) => (&text[..pos], &text[pos..]),
            None => (text, ""),
        };
        let operands = split_operands(rest.trim());
        let size = match mnemonic {
            "li" => {
                if operands.len() != 2 {
                    return Err(AsmError::new(line_no, "li expects `li rd, imm`"));
                }
                li_size(parse_imm(operands[1], line_no)?)
            }
            _ => 1,
        };
        items.push(Item {
            line: line_no,
            mnemonic,
            operands,
            index,
            size,
        });
        index += size;
    }

    // Pass 2: emit instructions.
    let mut instructions = Vec::with_capacity(index);
    for item in &items {
        let before = instructions.len();
        emit(item, &symbols, &mut instructions)?;
        debug_assert_eq!(
            instructions.len() - before,
            item.size,
            "pass-1 sizing mismatch for `{}`",
            item.mnemonic
        );
    }
    Ok(Program::new(instructions, symbols))
}

/// Resolves a branch/jump target (label or literal offset) relative to the
/// instruction at `index`.
fn resolve_target(
    text: &str,
    line: usize,
    index: usize,
    symbols: &BTreeMap<String, u32>,
) -> Result<i32, AsmError> {
    let text = text.trim();
    if let Some(&addr) = symbols.get(text) {
        return Ok(addr as i32 - (index as i32 * 4));
    }
    if text
        .chars()
        .next()
        .is_some_and(|c| c.is_ascii_digit() || c == '-')
    {
        return Ok(parse_imm(text, line)? as i32);
    }
    Err(AsmError::new(line, format!("undefined label `{text}`")))
}

fn emit(
    item: &Item,
    symbols: &BTreeMap<String, u32>,
    out: &mut Vec<Instruction>,
) -> Result<(), AsmError> {
    let line = item.line;
    let ops = &item.operands;
    let m = item.mnemonic;

    // Scalar register-register ops.
    let op_kind = |name: &str| -> Option<OpKind> {
        Some(match name {
            "add" => OpKind::Add,
            "sub" => OpKind::Sub,
            "sll" => OpKind::Sll,
            "slt" => OpKind::Slt,
            "sltu" => OpKind::Sltu,
            "xor" => OpKind::Xor,
            "srl" => OpKind::Srl,
            "sra" => OpKind::Sra,
            "or" => OpKind::Or,
            "and" => OpKind::And,
            "mul" => OpKind::Mul,
            "mulh" => OpKind::Mulh,
            "mulhsu" => OpKind::Mulhsu,
            "mulhu" => OpKind::Mulhu,
            "div" => OpKind::Div,
            "divu" => OpKind::Divu,
            "rem" => OpKind::Rem,
            "remu" => OpKind::Remu,
            _ => return None,
        })
    };
    let op_imm_kind = |name: &str| -> Option<OpImmKind> {
        Some(match name {
            "addi" => OpImmKind::Addi,
            "slti" => OpImmKind::Slti,
            "sltiu" => OpImmKind::Sltiu,
            "xori" => OpImmKind::Xori,
            "ori" => OpImmKind::Ori,
            "andi" => OpImmKind::Andi,
            "slli" => OpImmKind::Slli,
            "srli" => OpImmKind::Srli,
            "srai" => OpImmKind::Srai,
            _ => return None,
        })
    };
    let branch_kind = |name: &str| -> Option<BranchKind> {
        Some(match name {
            "beq" => BranchKind::Beq,
            "bne" => BranchKind::Bne,
            "blt" => BranchKind::Blt,
            "bge" => BranchKind::Bge,
            "bltu" => BranchKind::Bltu,
            "bgeu" => BranchKind::Bgeu,
            _ => return None,
        })
    };
    let load_kind = |name: &str| -> Option<LoadKind> {
        Some(match name {
            "lb" => LoadKind::Lb,
            "lh" => LoadKind::Lh,
            "lw" => LoadKind::Lw,
            "lbu" => LoadKind::Lbu,
            "lhu" => LoadKind::Lhu,
            _ => return None,
        })
    };
    let store_kind = |name: &str| -> Option<StoreKind> {
        Some(match name {
            "sb" => StoreKind::Sb,
            "sh" => StoreKind::Sh,
            "sw" => StoreKind::Sw,
            _ => return None,
        })
    };

    if let Some(kind) = op_kind(m) {
        expect_operands(line, ops, 3, "rd, rs1, rs2")?;
        out.push(Instruction::Op {
            kind,
            rd: parse_xreg(ops[0], line)?,
            rs1: parse_xreg(ops[1], line)?,
            rs2: parse_xreg(ops[2], line)?,
        });
        return Ok(());
    }
    if let Some(kind) = op_imm_kind(m) {
        expect_operands(line, ops, 3, "rd, rs1, imm")?;
        let imm = parse_imm(ops[2], line)?;
        let imm = if kind.is_shift() {
            check_range(line, imm, 0, 31, "shift amount")?
        } else {
            check_range(line, imm, -2048, 2047, "immediate")?
        };
        out.push(Instruction::OpImm {
            kind,
            rd: parse_xreg(ops[0], line)?,
            rs1: parse_xreg(ops[1], line)?,
            imm,
        });
        return Ok(());
    }
    if let Some(kind) = branch_kind(m) {
        expect_operands(line, ops, 3, "rs1, rs2, target")?;
        let offset = resolve_target(ops[2], line, item.index, symbols)?;
        check_range(line, offset as i64, -4096, 4094, "branch offset")?;
        out.push(Instruction::Branch {
            kind,
            rs1: parse_xreg(ops[0], line)?,
            rs2: parse_xreg(ops[1], line)?,
            offset,
        });
        return Ok(());
    }
    if let Some(kind) = load_kind(m) {
        expect_operands(line, ops, 2, "rd, offset(rs1)")?;
        let (offset, rs1) = parse_mem_operand(ops[1], line)?;
        out.push(Instruction::Load {
            kind,
            rd: parse_xreg(ops[0], line)?,
            rs1,
            offset: check_range(line, offset, -2048, 2047, "load offset")?,
        });
        return Ok(());
    }
    if let Some(kind) = store_kind(m) {
        expect_operands(line, ops, 2, "rs2, offset(rs1)")?;
        let (offset, rs1) = parse_mem_operand(ops[1], line)?;
        out.push(Instruction::Store {
            kind,
            rs2: parse_xreg(ops[0], line)?,
            rs1,
            offset: check_range(line, offset, -2048, 2047, "store offset")?,
        });
        return Ok(());
    }

    match m {
        // --- scalar pseudo-instructions and remaining formats ---
        "nop" => out.push(Instruction::nop()),
        "li" => {
            expect_operands(line, ops, 2, "rd, imm")?;
            let rd = parse_xreg(ops[0], line)?;
            let imm = parse_imm(ops[1], line)?;
            check_range(line, imm, i32::MIN as i64, u32::MAX as i64, "li immediate")?;
            let imm = imm as i32;
            if li_size(imm as i64) == 1 {
                out.push(Instruction::addi(rd, XReg::X0, imm));
            } else {
                let hi = imm.wrapping_add(0x800) & !0xFFF;
                let lo = imm.wrapping_sub(hi);
                out.push(Instruction::Lui { rd, imm: hi });
                out.push(Instruction::addi(rd, rd, lo));
            }
        }
        "mv" => {
            expect_operands(line, ops, 2, "rd, rs")?;
            out.push(Instruction::addi(
                parse_xreg(ops[0], line)?,
                parse_xreg(ops[1], line)?,
                0,
            ));
        }
        "not" => {
            expect_operands(line, ops, 2, "rd, rs")?;
            out.push(Instruction::OpImm {
                kind: OpImmKind::Xori,
                rd: parse_xreg(ops[0], line)?,
                rs1: parse_xreg(ops[1], line)?,
                imm: -1,
            });
        }
        "beqz" | "bnez" => {
            expect_operands(line, ops, 2, "rs, target")?;
            let offset = resolve_target(ops[1], line, item.index, symbols)?;
            out.push(Instruction::Branch {
                kind: if m == "beqz" {
                    BranchKind::Beq
                } else {
                    BranchKind::Bne
                },
                rs1: parse_xreg(ops[0], line)?,
                rs2: XReg::X0,
                offset,
            });
        }
        "j" => {
            expect_operands(line, ops, 1, "target")?;
            let offset = resolve_target(ops[0], line, item.index, symbols)?;
            out.push(Instruction::Jal {
                rd: XReg::X0,
                offset,
            });
        }
        "jal" => {
            // `jal target` or `jal rd, target`.
            let (rd, target) = match ops.len() {
                1 => (XReg::X1, ops[0]),
                2 => (parse_xreg(ops[0], line)?, ops[1]),
                n => {
                    return Err(AsmError::new(
                        line,
                        format!("jal expects 1 or 2 operands, got {n}"),
                    ))
                }
            };
            let offset = resolve_target(target, line, item.index, symbols)?;
            out.push(Instruction::Jal { rd, offset });
        }
        "jalr" => {
            expect_operands(line, ops, 3, "rd, rs1, offset")?;
            out.push(Instruction::Jalr {
                rd: parse_xreg(ops[0], line)?,
                rs1: parse_xreg(ops[1], line)?,
                offset: check_range(line, parse_imm(ops[2], line)?, -2048, 2047, "offset")?,
            });
        }
        "ret" => out.push(Instruction::Jalr {
            rd: XReg::X0,
            rs1: XReg::X1,
            offset: 0,
        }),
        "lui" | "auipc" => {
            expect_operands(line, ops, 2, "rd, imm20")?;
            let rd = parse_xreg(ops[0], line)?;
            let imm20 = check_range(line, parse_imm(ops[1], line)?, -524288, 1048575, "imm20")?;
            let imm = imm20 << 12;
            out.push(if m == "lui" {
                Instruction::Lui { rd, imm }
            } else {
                Instruction::Auipc { rd, imm }
            });
        }
        "csrr" => {
            expect_operands(line, ops, 2, "rd, csr")?;
            let csr = match ops[1].trim() {
                "vl" => krv_isa::Csr::Vl,
                "vtype" => krv_isa::Csr::Vtype,
                "vlenb" => krv_isa::Csr::Vlenb,
                "cycle" => krv_isa::Csr::Cycle,
                "instret" => krv_isa::Csr::Instret,
                other => return Err(AsmError::new(line, format!("unknown CSR `{other}`"))),
            };
            out.push(Instruction::Csrr {
                rd: parse_xreg(ops[0], line)?,
                csr,
            });
        }
        "ecall" => out.push(Instruction::Ecall),
        "ebreak" => out.push(Instruction::Ebreak),

        // --- vector configuration ---
        "vsetvli" => {
            if ops.len() < 4 {
                return Err(AsmError::new(
                    line,
                    "vsetvli rd, rs1, eN, mN[, tu|ta, mu|ma]",
                ));
            }
            let rd = parse_xreg(ops[0], line)?;
            let rs1 = parse_xreg(ops[1], line)?;
            let sew = match ops[2].trim() {
                "e8" => Sew::E8,
                "e16" => Sew::E16,
                "e32" => Sew::E32,
                "e64" => Sew::E64,
                other => return Err(AsmError::new(line, format!("invalid SEW `{other}`"))),
            };
            let lmul = match ops[3].trim() {
                "m1" => Lmul::M1,
                "m2" => Lmul::M2,
                "m4" => Lmul::M4,
                "m8" => Lmul::M8,
                other => return Err(AsmError::new(line, format!("invalid LMUL `{other}`"))),
            };
            let mut vtype = Vtype::new(sew, lmul);
            for flag in &ops[4..] {
                match flag.trim() {
                    "tu" => vtype = vtype.tail_undisturbed(),
                    "ta" => {}
                    "mu" => vtype = vtype.mask_undisturbed(),
                    "ma" => {}
                    other => {
                        return Err(AsmError::new(line, format!("invalid vtype flag `{other}`")))
                    }
                }
            }
            out.push(Instruction::Vsetvli { rd, rs1, vtype });
        }

        // --- everything else: vector memory, arithmetic, custom ---
        _ => out.push(parse_vector(m, ops.clone(), line, symbols)?),
    }
    Ok(())
}

fn eew_of(digits: &str, line: usize) -> Result<Eew, AsmError> {
    match digits {
        "8" => Ok(Sew::E8),
        "16" => Ok(Sew::E16),
        "32" => Ok(Sew::E32),
        "64" => Ok(Sew::E64),
        other => Err(AsmError::new(
            line,
            format!("invalid element width `{other}`"),
        )),
    }
}

fn parse_vector(
    m: &str,
    operands: Vec<&str>,
    line: usize,
    _symbols: &BTreeMap<String, u32>,
) -> Result<Instruction, AsmError> {
    let (ops, vm) = take_mask(operands);

    // Vector memory: vle64.v / vse64.v / vlse*/vsse* / vluxei*/vsuxei*.
    for (prefix, is_load, mode_kind) in [
        ("vle", true, 'u'),
        ("vse", false, 'u'),
        ("vlse", true, 's'),
        ("vsse", false, 's'),
        ("vluxei", true, 'i'),
        ("vsuxei", false, 'i'),
    ] {
        if let Some(rest) = m.strip_prefix(prefix) {
            if let Some(width) = rest.strip_suffix(".v") {
                // Guard against vle matching vlse/vluxei's tails.
                if !width.chars().all(|c| c.is_ascii_digit()) {
                    continue;
                }
                let eew = eew_of(width, line)?;
                let expected = if mode_kind == 'u' { 2 } else { 3 };
                expect_operands(line, &ops, expected, "vreg, (rs1)[, stride/index]")?;
                let vreg = parse_vreg(ops[0], line)?;
                let (offset, rs1) = parse_mem_operand(ops[1], line)?;
                if offset != 0 {
                    return Err(AsmError::new(line, "vector memory offset must be 0"));
                }
                let mode = match mode_kind {
                    'u' => MemMode::UnitStride,
                    's' => MemMode::Strided(parse_xreg(ops[2], line)?),
                    _ => MemMode::Indexed(parse_vreg(ops[2], line)?),
                };
                return Ok(if is_load {
                    Instruction::VLoad {
                        eew,
                        vd: vreg,
                        rs1,
                        mode,
                        vm,
                    }
                } else {
                    Instruction::VStore {
                        eew,
                        vs3: vreg,
                        rs1,
                        mode,
                        vm,
                    }
                });
            }
        }
    }

    // Special moves and vid.
    match m {
        "vmv.x.s" => {
            expect_operands(line, &ops, 2, "rd, vs2")?;
            return Ok(Instruction::VmvXs {
                rd: parse_xreg(ops[0], line)?,
                vs2: parse_vreg(ops[1], line)?,
            });
        }
        "vmv.s.x" => {
            expect_operands(line, &ops, 2, "vd, rs1")?;
            return Ok(Instruction::VmvSx {
                vd: parse_vreg(ops[0], line)?,
                rs1: parse_xreg(ops[1], line)?,
            });
        }
        "vid.v" => {
            expect_operands(line, &ops, 1, "vd")?;
            return Ok(Instruction::Vid {
                vd: parse_vreg(ops[0], line)?,
                vm,
            });
        }
        "vmv.v.v" | "vmv.v.x" | "vmv.v.i" => {
            expect_operands(line, &ops, 2, "vd, src")?;
            let vd = parse_vreg(ops[0], line)?;
            let src = match m {
                "vmv.v.v" => VSource::Vector(parse_vreg(ops[1], line)?),
                "vmv.v.x" => VSource::Scalar(parse_xreg(ops[1], line)?),
                _ => VSource::Imm(check_range(
                    line,
                    parse_imm(ops[1], line)?,
                    -16,
                    15,
                    "immediate",
                )?),
            };
            return Ok(Instruction::VArith {
                op: VArithOp::Mv,
                vd,
                vs2: VReg::V0,
                src,
                vm,
            });
        }
        _ => {}
    }

    // Custom Keccak extensions.
    if let Some(instr) = parse_custom(m, &ops, line, vm)? {
        return Ok(instr);
    }

    // Generic vector arithmetic: name.{vv,vx,vi}.
    let (name, form) = m
        .rsplit_once('.')
        .ok_or_else(|| AsmError::new(line, format!("unknown mnemonic `{m}`")))?;
    let op = match name {
        "vadd" => VArithOp::Add,
        "vsub" => VArithOp::Sub,
        "vrsub" => VArithOp::Rsub,
        "vand" => VArithOp::And,
        "vor" => VArithOp::Or,
        "vxor" => VArithOp::Xor,
        "vsll" => VArithOp::Sll,
        "vsrl" => VArithOp::Srl,
        "vsra" => VArithOp::Sra,
        "vmseq" => VArithOp::Mseq,
        "vmsne" => VArithOp::Msne,
        "vmsltu" => VArithOp::Msltu,
        "vslideup" => VArithOp::Slideup,
        "vslidedown" => VArithOp::Slidedown,
        _ => return Err(AsmError::new(line, format!("unknown mnemonic `{m}`"))),
    };
    expect_operands(line, &ops, 3, "vd, vs2, src")?;
    let vd = parse_vreg(ops[0], line)?;
    let vs2 = parse_vreg(ops[1], line)?;
    let src = match form {
        "vv" => VSource::Vector(parse_vreg(ops[2], line)?),
        "vx" => VSource::Scalar(parse_xreg(ops[2], line)?),
        "vi" => VSource::Imm(check_range(
            line,
            parse_imm(ops[2], line)?,
            -16,
            15,
            "immediate",
        )?),
        other => {
            return Err(AsmError::new(
                line,
                format!("unknown operand form `.{other}` on `{name}`"),
            ))
        }
    };
    let form_ok = match src {
        VSource::Vector(_) => op.supports_vv(),
        VSource::Scalar(_) => true,
        VSource::Imm(_) => op.supports_vi(),
    };
    if !form_ok {
        return Err(AsmError::new(
            line,
            format!("`{name}` does not support the `.{form}` form"),
        ));
    }
    Ok(Instruction::VArith {
        op,
        vd,
        vs2,
        src,
        vm,
    })
}

fn parse_custom(
    m: &str,
    ops: &[&str],
    line: usize,
    vm: bool,
) -> Result<Option<Instruction>, AsmError> {
    // Accept both suffixed (paper style: `vslidedownm.vi`) and bare names.
    let base = m
        .strip_suffix(".vi")
        .or_else(|| m.strip_suffix(".vv"))
        .or_else(|| m.strip_suffix(".vx"))
        .unwrap_or(m);
    let parse_uimm = |text: &str| -> Result<u8, AsmError> {
        Ok(check_range(line, parse_imm(text, line)?, 0, 31, "unsigned immediate")? as u8)
    };
    let parse_row = |text: &str| -> Result<RhoRow, AsmError> {
        let simm = check_range(line, parse_imm(text, line)?, -1, 4, "row selector")?;
        RhoRow::from_simm(simm)
            .ok_or_else(|| AsmError::new(line, format!("invalid row selector {simm}")))
    };
    let op = match base {
        "vslidedownm" => {
            expect_operands(line, ops, 3, "vd, vs2, uimm")?;
            CustomOp::Vslidedownm {
                vd: parse_vreg(ops[0], line)?,
                vs2: parse_vreg(ops[1], line)?,
                uimm: parse_uimm(ops[2])?,
                vm,
            }
        }
        "vslideupm" => {
            expect_operands(line, ops, 3, "vd, vs2, uimm")?;
            CustomOp::Vslideupm {
                vd: parse_vreg(ops[0], line)?,
                vs2: parse_vreg(ops[1], line)?,
                uimm: parse_uimm(ops[2])?,
                vm,
            }
        }
        "vrotup" => {
            expect_operands(line, ops, 3, "vd, vs2, uimm")?;
            CustomOp::Vrotup {
                vd: parse_vreg(ops[0], line)?,
                vs2: parse_vreg(ops[1], line)?,
                uimm: parse_uimm(ops[2])?,
                vm,
            }
        }
        "v32lrotup" | "v32hrotup" | "v32lrho" | "v32hrho" => {
            expect_operands(line, ops, 3, "vd, vs2, vs1")?;
            let vd = parse_vreg(ops[0], line)?;
            let vs2 = parse_vreg(ops[1], line)?;
            let vs1 = parse_vreg(ops[2], line)?;
            match base {
                "v32lrotup" => CustomOp::V32lrotup { vd, vs2, vs1, vm },
                "v32hrotup" => CustomOp::V32hrotup { vd, vs2, vs1, vm },
                "v32lrho" => CustomOp::V32lrho { vd, vs2, vs1, vm },
                _ => CustomOp::V32hrho { vd, vs2, vs1, vm },
            }
        }
        "v64rho" => {
            expect_operands(line, ops, 3, "vd, vs2, simm")?;
            CustomOp::V64rho {
                vd: parse_vreg(ops[0], line)?,
                vs2: parse_vreg(ops[1], line)?,
                row: parse_row(ops[2])?,
                vm,
            }
        }
        "vpi" => {
            expect_operands(line, ops, 3, "vd, vs2, simm")?;
            CustomOp::Vpi {
                vd: parse_vreg(ops[0], line)?,
                vs2: parse_vreg(ops[1], line)?,
                row: parse_row(ops[2])?,
                vm,
            }
        }
        "vrhopi" => {
            expect_operands(line, ops, 3, "vd, vs2, simm")?;
            CustomOp::Vrhopi {
                vd: parse_vreg(ops[0], line)?,
                vs2: parse_vreg(ops[1], line)?,
                row: parse_row(ops[2])?,
                vm,
            }
        }
        "viota" => {
            expect_operands(line, ops, 3, "vd, vs2, rs1")?;
            CustomOp::Viota {
                vd: parse_vreg(ops[0], line)?,
                vs2: parse_vreg(ops[1], line)?,
                rs1: parse_xreg(ops[2], line)?,
                vm,
            }
        }
        _ => return Ok(None),
    };
    Ok(Some(Instruction::Custom(op)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one(source: &str) -> Instruction {
        let program = assemble(source).expect("assembles");
        assert_eq!(program.instructions().len(), 1, "{source}");
        program.instructions()[0]
    }

    #[test]
    fn scalar_instructions_parse() {
        assert_eq!(
            one("addi s3, s3, 1"),
            Instruction::addi(XReg::X19, XReg::X19, 1)
        );
        assert_eq!(
            one("add a0, a1, a2"),
            Instruction::Op {
                kind: OpKind::Add,
                rd: XReg::X10,
                rs1: XReg::X11,
                rs2: XReg::X12
            }
        );
        assert_eq!(
            one("lw a0, -4(sp)"),
            Instruction::Load {
                kind: LoadKind::Lw,
                rd: XReg::X10,
                rs1: XReg::X2,
                offset: -4
            }
        );
    }

    #[test]
    fn comments_and_blank_lines_skipped() {
        let program = assemble("# full comment\n\n  nop // trailing\n").unwrap();
        assert_eq!(program.instructions(), &[Instruction::nop()]);
    }

    #[test]
    fn labels_resolve_backwards_and_forwards() {
        let program =
            assemble("start:\n  nop\n  j end\n  nop\nend:\n  beq zero, zero, start\n").unwrap();
        let instrs = program.instructions();
        assert_eq!(
            instrs[1],
            Instruction::Jal {
                rd: XReg::X0,
                offset: 8
            }
        );
        assert_eq!(
            instrs[3],
            Instruction::Branch {
                kind: BranchKind::Beq,
                rs1: XReg::X0,
                rs2: XReg::X0,
                offset: -12
            }
        );
        assert_eq!(program.symbol("start"), Some(0));
        assert_eq!(program.symbol("end"), Some(12));
    }

    #[test]
    fn li_expands_by_size() {
        let small = assemble("li s1, 30").unwrap();
        assert_eq!(small.instructions().len(), 1);
        let big = assemble("li s1, 0x12345").unwrap();
        assert_eq!(big.instructions().len(), 2);
        // Verify the expansion computes the right value: lui+addi.
        if let [Instruction::Lui { imm: hi, .. }, Instruction::OpImm { imm: lo, .. }] =
            big.instructions()
        {
            assert_eq!(hi.wrapping_add(*lo), 0x12345);
        } else {
            panic!("expected lui+addi: {:?}", big.instructions());
        }
    }

    #[test]
    fn li_negative_values() {
        assert_eq!(one("li s2, -1"), Instruction::addi(XReg::X18, XReg::X0, -1));
        let big = assemble("li t0, -100000").unwrap();
        if let [Instruction::Lui { imm: hi, .. }, Instruction::OpImm { imm: lo, .. }] =
            big.instructions()
        {
            assert_eq!(hi.wrapping_add(*lo), -100000);
        } else {
            panic!("expected lui+addi");
        }
    }

    #[test]
    fn paper_algorithm2_snippet_parses() {
        let program = assemble(
            r"
            vsetvli x0, s1, e64, m1, tu, mu
        permutation:
            vxor.vv v5, v3, v4
            vslideupm.vi v6, v5, 1
            vslidedownm.vi v7, v5, 1
            vrotup.vi v7, v7, 1
            vxor.vv v5, v6, v7
            v64rho.vi v0, v0, 0
            vpi.vi v5, v0, 0
            vxor.vx v10, v10, s2
            vand.vv v10, v10, v15
            viota.vx v0, v0, s3
            addi s3, s3, 1
            blt s3, s4, permutation
        ",
        )
        .unwrap();
        assert_eq!(program.instructions().len(), 13);
        // The backward branch at index 12 targets index 1 (byte 4).
        assert_eq!(
            program.instructions()[12],
            Instruction::Branch {
                kind: BranchKind::Blt,
                rs1: XReg::X19,
                rs2: XReg::X20,
                offset: 4 - 12 * 4
            }
        );
    }

    #[test]
    fn masked_vector_instruction_parses() {
        assert_eq!(
            one("vadd.vv v1, v2, v3, v0.t"),
            Instruction::VArith {
                op: VArithOp::Add,
                vd: VReg::V1,
                vs2: VReg::V2,
                src: VSource::Vector(VReg::V3),
                vm: false
            }
        );
    }

    #[test]
    fn vector_memory_parses() {
        assert_eq!(
            one("vle64.v v0, (a0)"),
            Instruction::VLoad {
                eew: Sew::E64,
                vd: VReg::V0,
                rs1: XReg::X10,
                mode: MemMode::UnitStride,
                vm: true
            }
        );
        assert_eq!(
            one("vsse32.v v3, (a1), t0"),
            Instruction::VStore {
                eew: Sew::E32,
                vs3: VReg::V3,
                rs1: XReg::X11,
                mode: MemMode::Strided(XReg::X5),
                vm: true
            }
        );
        assert_eq!(
            one("vluxei64.v v2, (a0), v8"),
            Instruction::VLoad {
                eew: Sew::E64,
                vd: VReg::V2,
                rs1: XReg::X10,
                mode: MemMode::Indexed(VReg::V8),
                vm: true
            }
        );
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = assemble("nop\nbogus x1, x2\n").unwrap_err();
        assert_eq!(err.line(), 2);
        assert!(err.to_string().contains("bogus"));
    }

    #[test]
    fn undefined_label_errors() {
        let err = assemble("j nowhere").unwrap_err();
        assert!(err.message().contains("undefined label"));
    }

    #[test]
    fn duplicate_label_errors() {
        let err = assemble("a:\nnop\na:\nnop").unwrap_err();
        assert!(err.message().contains("duplicate label"));
    }

    #[test]
    fn out_of_range_immediate_errors() {
        assert!(assemble("addi x1, x1, 5000").is_err());
        assert!(assemble("vadd.vi v1, v2, 99").is_err());
        assert!(assemble("v64rho.vi v0, v0, 7").is_err());
    }

    #[test]
    fn sub_vi_rejected() {
        let err = assemble("vsub.vi v1, v2, 3").unwrap_err();
        assert!(err.message().contains("does not support"));
    }
}
