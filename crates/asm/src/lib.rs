//! Two-pass assembler and disassembler for the `krv-isa` instruction set.
//!
//! The paper implements its Keccak kernels as assembly programs compiled
//! with the RISC-V GNU toolchain (§4.1). This crate plays that role for
//! the simulated processor: it turns textual assembly — base RV32IM, the
//! RVV subset and the ten custom Keccak extensions — into machine words
//! for the instruction memory of `krv-vproc`, and back.
//!
//! Supported syntax:
//!
//! * one instruction per line; comments start with `#` or `//`
//! * labels (`loop:`), usable as branch/jump targets
//! * pseudo-instructions: `nop`, `li`, `mv`, `not`, `j`, `ret`, `beqz`,
//!   `bnez`
//! * the optional `, v0.t` mask suffix on maskable vector instructions
//!
//! # Example
//!
//! ```
//! use krv_asm::assemble;
//!
//! let program = assemble(r"
//!     li      s3, 0
//!     li      s4, 24
//! permutation:
//!     vxor.vv v5, v3, v4
//!     v64rho.vi v0, v0, -1
//!     addi    s3, s3, 1
//!     blt     s3, s4, permutation
//!     ecall
//! ")?;
//! assert_eq!(program.instructions().len(), 7);
//! # Ok::<(), krv_asm::AsmError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builder;
mod disasm;
mod parser;
mod program;

pub use builder::{BuildError, Label, ProgramBuilder};
pub use disasm::{disassemble, disassemble_words};
pub use parser::AsmError;
pub use program::Program;

/// Assembles source text into a [`Program`].
///
/// # Errors
///
/// Returns [`AsmError`] with the line number for syntax errors, unknown
/// mnemonics/registers, out-of-range immediates and undefined labels.
pub fn assemble(source: &str) -> Result<Program, AsmError> {
    parser::assemble(source)
}
