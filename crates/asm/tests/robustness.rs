//! Robustness: the assembler must never panic, whatever the input.

use krv_asm::assemble;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3000))]

    /// Arbitrary text: parse errors are fine, panics are not.
    #[test]
    fn arbitrary_text_never_panics(source in ".*") {
        let _ = assemble(&source);
    }

    /// Text biased toward assembly-looking tokens, to reach deeper into
    /// the operand parsers than pure noise would.
    #[test]
    fn assembly_shaped_text_never_panics(
        lines in proptest::collection::vec(
            prop_oneof![
                // plausible mnemonics with mangled operands
                "(addi|vxor\\.vv|vle64\\.v|v64rho\\.vi|vpi\\.vi|viota\\.vx|blt|li|csrr|vsetvli) [a-z0-9 ,().$#-]{0,30}",
                // labels and label-like junk
                "[a-z_.]{1,12}:",
                // immediates at the edges
                "addi x1, x1, (-?[0-9]{1,10}|0x[0-9a-fA-F]{1,10})",
                // mask suffix in odd places
                "vadd\\.vv v1, v2, v3(, v0\\.t)?",
            ],
            0..12,
        )
    ) {
        let source = lines.join("\n");
        let _ = assemble(&source);
    }

    /// Every error carries a plausible line number.
    #[test]
    fn errors_point_into_the_source(
        garbage in "[a-z]{3,10} [a-z0-9, ]{0,20}",
        padding in 0usize..5,
    ) {
        let mut source = "nop\n".repeat(padding);
        source.push_str(&garbage);
        if let Err(error) = assemble(&source) {
            prop_assert!(error.line() >= 1);
            prop_assert!(error.line() <= padding + 1);
        }
    }
}

#[test]
fn pathological_inputs() {
    // Long label chains, deep parens, lone separators, unicode.
    for source in [
        "a: b: c: d: nop",
        "lw a0, ((((((a1))))))",
        ",,,,",
        "vxor.vv , ,",
        "li x1, 99999999999999999999999999",
        "addi x1, x1, \u{1F600}",
        ": : :",
        "nop nop nop",
        "vle64.v v0, (a0), v0.t, v0.t",
    ] {
        let _ = assemble(source);
    }
}
