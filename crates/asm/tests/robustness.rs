//! Robustness: the assembler must never panic, whatever the input.

use krv_asm::assemble;
use krv_testkit::{cases, Rng};

/// Random text over the printable range plus newlines, tabs and unicode.
fn arbitrary_text(rng: &mut Rng) -> String {
    let len = rng.below(120);
    (0..len)
        .map(|_| {
            let c = rng.below(99) as u8;
            match c {
                0..=94 => (b' ' + c) as char,
                95 => '\n',
                96 => '\t',
                97 => '\u{1F600}',
                _ => 'é',
            }
        })
        .collect()
}

/// Text biased toward assembly-looking tokens, to reach deeper into the
/// operand parsers than pure noise would.
fn assembly_shaped_line(rng: &mut Rng) -> String {
    match rng.below(4) {
        0 => {
            // Plausible mnemonics with mangled operands.
            let mnemonic = rng.pick(&[
                "addi",
                "vxor.vv",
                "vle64.v",
                "v64rho.vi",
                "vpi.vi",
                "viota.vx",
                "blt",
                "li",
                "csrr",
                "vsetvli",
            ]);
            let tail_len = rng.below(31);
            let tail: String = (0..tail_len)
                .map(|_| {
                    *rng.pick(&[
                        ' ', ',', '(', ')', '.', '$', '#', '-', 'a', 'x', 'v', '0', '9',
                    ])
                })
                .collect();
            format!("{mnemonic} {tail}")
        }
        1 => {
            // Labels and label-like junk.
            let len = 1 + rng.below(12);
            let mut label: String = (0..len)
                .map(|_| *rng.pick(&['a', 'b', 'z', '_', '.']))
                .collect();
            label.push(':');
            label
        }
        2 => {
            // Immediates at the edges.
            let magnitude = rng.next_u64() % 10_000_000_000;
            if rng.next_bool() {
                format!("addi x1, x1, {magnitude}")
            } else {
                format!("addi x1, x1, -{magnitude}")
            }
        }
        _ => {
            // Mask suffix in odd places.
            if rng.next_bool() {
                "vadd.vv v1, v2, v3, v0.t".to_string()
            } else {
                "vadd.vv v1, v2, v3".to_string()
            }
        }
    }
}

#[test]
fn arbitrary_text_never_panics() {
    cases(3000, |rng| {
        let source = arbitrary_text(rng);
        let _ = assemble(&source);
    });
}

#[test]
fn assembly_shaped_text_never_panics() {
    cases(3000, |rng| {
        let line_count = rng.below(12);
        let lines: Vec<String> = (0..line_count).map(|_| assembly_shaped_line(rng)).collect();
        let source = lines.join("\n");
        let _ = assemble(&source);
    });
}

#[test]
fn errors_point_into_the_source() {
    cases(1000, |rng| {
        // A garbage line after `padding` nops: any error must carry a
        // line number inside the source.
        let garbage_len = 3 + rng.below(8);
        let mut garbage: String = (0..garbage_len)
            .map(|_| (b'a' + rng.below(26) as u8) as char)
            .collect();
        garbage.push(' ');
        let tail_len = rng.below(21);
        let tail: String = (0..tail_len)
            .map(|_| *rng.pick(&['a', 'z', '0', '9', ',', ' ']))
            .collect();
        garbage.push_str(&tail);
        let padding = rng.below(5);
        let mut source = "nop\n".repeat(padding);
        source.push_str(&garbage);
        if let Err(error) = assemble(&source) {
            assert!(error.line() >= 1);
            assert!(error.line() <= padding + 1);
        }
    });
}

#[test]
fn pathological_inputs() {
    // Long label chains, deep parens, lone separators, unicode.
    for source in [
        "a: b: c: d: nop",
        "lw a0, ((((((a1))))))",
        ",,,,",
        "vxor.vv , ,",
        "li x1, 99999999999999999999999999",
        "addi x1, x1, \u{1F600}",
        ": : :",
        "nop nop nop",
        "vle64.v v0, (a0), v0.t, v0.t",
    ] {
        let _ = assemble(source);
    }
}
