//! The client half of the wire protocol: a blocking, pipelining client
//! used by the tests, the example and the network bench.
//!
//! One [`Client`] owns one connection. [`Client::submit`] writes a
//! request and returns immediately with a [`PendingReply`]; a reader
//! thread matches responses to pending requests by id, so any number of
//! requests can be in flight at once and a simple sync call is just
//! submit-then-wait. Every reply carries the client-side end-to-end
//! latency (submit to response arrival), measured by the reader thread
//! even when [`PendingReply::wait`] is called much later.

use crate::protocol::{
    read_frame, write_frame, AlgorithmParams, ErrorCode, KemParameterSet, ProtocolError, Request,
    Response, WireAlgorithm, DEFAULT_MAX_FRAME, MAX_CHUNK_LEN, MAX_OUTPUT_LEN,
};
use krv_service::MetricsSnapshot;
use std::collections::{HashMap, VecDeque};
use std::io::{self, BufWriter, Write};
use std::net::{Shutdown, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Most un-acked ABSORB frames [`StreamingSession::absorb`] keeps in
/// flight. Below the server's default 128-request window, so a
/// cooperating client never draws `BUSY`, while still pipelining deeply
/// enough to keep the link and the service full.
const ABSORB_WINDOW: usize = 64;

/// An error response from the server, as the caller sees it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RemoteError {
    /// The machine-readable reason.
    pub code: ErrorCode,
    /// The server's human-readable detail.
    pub detail: String,
}

impl std::fmt::Display for RemoteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.code, self.detail)
    }
}

impl std::error::Error for RemoteError {}

/// Why a client call failed without a server error response.
#[derive(Debug)]
pub enum ClientError {
    /// A transport failure on the socket.
    Io(io::Error),
    /// The server sent bytes that do not decode as a response.
    Protocol(ProtocolError),
    /// The server answered with an error response.
    Remote(RemoteError),
    /// The connection closed before the response arrived.
    ConnectionClosed,
    /// The server answered a hash request with a non-digest,
    /// non-error response.
    UnexpectedResponse,
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Protocol(e) => write!(f, "protocol error: {e}"),
            ClientError::Remote(e) => write!(f, "server error: {e}"),
            ClientError::ConnectionClosed => write!(f, "connection closed before the response"),
            ClientError::UnexpectedResponse => {
                write!(f, "response kind does not match the request")
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// A completed request as the client records it.
#[derive(Debug, Clone, PartialEq)]
pub struct Reply {
    /// The response frame, matched by request id.
    pub response: Response,
    /// Submit-to-arrival latency, measured on the reader thread.
    pub elapsed: Duration,
}

/// One pending slot in the client's correlation map. The reply is
/// boxed so an empty `Waiting` slot costs a pointer, not a whole
/// response frame.
#[derive(Debug)]
enum Slot {
    Waiting { submitted: Instant },
    Done(Box<Reply>),
}

#[derive(Debug)]
struct ClientState {
    pending: HashMap<u64, Slot>,
    /// Set once the reader thread exits; every waiter then fails with
    /// [`ClientError::ConnectionClosed`] instead of blocking forever.
    closed: bool,
}

#[derive(Debug)]
struct SharedState {
    state: Mutex<ClientState>,
    arrived: Condvar,
}

/// A handle to one in-flight request; [`Self::wait`] blocks for its
/// reply. Dropping the handle abandons the reply (the slot is reaped
/// when the response arrives).
#[derive(Debug)]
pub struct PendingReply {
    shared: Arc<SharedState>,
    id: u64,
}

impl PendingReply {
    /// The id the request travelled under.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Blocks until the response arrives.
    ///
    /// # Errors
    ///
    /// [`ClientError::ConnectionClosed`] if the socket dies first.
    pub fn wait(self) -> Result<Reply, ClientError> {
        let mut state = self.shared.state.lock().expect("client lock");
        loop {
            if let Some(Slot::Done(_)) = state.pending.get(&self.id) {
                match state.pending.remove(&self.id) {
                    Some(Slot::Done(reply)) => return Ok(*reply),
                    _ => unreachable!("checked under the same lock"),
                }
            }
            if state.closed {
                state.pending.remove(&self.id);
                return Err(ClientError::ConnectionClosed);
            }
            state = self.shared.arrived.wait(state).expect("client lock");
        }
    }

    /// Waits and unwraps a digest response.
    ///
    /// # Errors
    ///
    /// [`ClientError::Remote`] for a server error response,
    /// [`ClientError::UnexpectedResponse`] for anything else non-digest,
    /// plus everything [`Self::wait`] can fail with.
    pub fn wait_digest(self) -> Result<Vec<u8>, ClientError> {
        match self.wait()?.response {
            Response::Digest { bytes, .. } => Ok(bytes),
            Response::Error { code, detail, .. } => {
                Err(ClientError::Remote(RemoteError { code, detail }))
            }
            _ => Err(ClientError::UnexpectedResponse),
        }
    }
}

/// A connection to the remote hashing daemon.
///
/// # Example
///
/// ```no_run
/// use krv_server::{Client, WireAlgorithm};
///
/// let client = Client::connect("127.0.0.1:4117").unwrap();
/// let digest = client.digest(WireAlgorithm::Sha3_256, b"abc").unwrap();
/// assert_eq!(digest.len(), 32);
/// ```
#[derive(Debug)]
pub struct Client {
    writer: Mutex<WriterState>,
    shared: Arc<SharedState>,
    reader: Option<JoinHandle<()>>,
    stream: TcpStream,
    next_session: AtomicU64,
}

#[derive(Debug)]
struct WriterState {
    stream: BufWriter<TcpStream>,
    next_id: u64,
}

impl Client {
    /// Connects to a daemon.
    ///
    /// # Errors
    ///
    /// Propagates connect/clone failures.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let read_half = stream.try_clone()?;
        let write_half = stream.try_clone()?;
        let shared = Arc::new(SharedState {
            state: Mutex::new(ClientState {
                pending: HashMap::new(),
                closed: false,
            }),
            arrived: Condvar::new(),
        });
        let reader = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("krv-client-reader".into())
                .spawn(move || read_responses(read_half, &shared))?
        };
        Ok(Self {
            writer: Mutex::new(WriterState {
                stream: BufWriter::new(write_half),
                next_id: 1,
            }),
            shared,
            reader: Some(reader),
            stream,
            next_session: AtomicU64::new(1),
        })
    }

    /// Submits a hash request without waiting: the pipelining primitive.
    ///
    /// # Errors
    ///
    /// Transport errors writing the frame.
    pub fn submit(
        &self,
        algorithm: WireAlgorithm,
        message: &[u8],
        output_len: usize,
        deadline: Option<Duration>,
    ) -> Result<PendingReply, ClientError> {
        self.submit_with(
            algorithm,
            AlgorithmParams::none(),
            message,
            output_len,
            deadline,
        )
    }

    /// [`Self::submit`] with an SP 800-185 parameter block (function
    /// name, key, customization, block size — whatever the algorithm
    /// takes).
    ///
    /// # Errors
    ///
    /// Transport errors writing the frame.
    pub fn submit_with(
        &self,
        algorithm: WireAlgorithm,
        params: AlgorithmParams,
        message: &[u8],
        output_len: usize,
        deadline: Option<Duration>,
    ) -> Result<PendingReply, ClientError> {
        let request = |id| Request::Hash {
            id,
            algorithm,
            output_len,
            deadline,
            params,
            payload: message.to_vec(),
        };
        self.send(request)
    }

    /// Submits a `STATS` request without waiting.
    ///
    /// # Errors
    ///
    /// Transport errors writing the frame.
    pub fn submit_stats(&self) -> Result<PendingReply, ClientError> {
        self.send(|id| Request::Stats { id })
    }

    fn send(&self, request: impl FnOnce(u64) -> Request) -> Result<PendingReply, ClientError> {
        let mut writer = self.writer.lock().expect("writer lock");
        let id = writer.next_id;
        writer.next_id += 1;
        // Register before writing: the response cannot race past its
        // slot even if it arrives before this thread releases the lock.
        self.shared
            .state
            .lock()
            .expect("client lock")
            .pending
            .insert(
                id,
                Slot::Waiting {
                    submitted: Instant::now(),
                },
            );
        let body = request(id).encode();
        let outcome = write_frame(&mut writer.stream, &body).and_then(|()| writer.stream.flush());
        if let Err(e) = outcome {
            self.shared
                .state
                .lock()
                .expect("client lock")
                .pending
                .remove(&id);
            return Err(ClientError::Io(e));
        }
        Ok(PendingReply {
            shared: Arc::clone(&self.shared),
            id,
        })
    }

    /// One blocking hash: submit, wait, unwrap the digest.
    ///
    /// # Errors
    ///
    /// Everything [`Self::submit`] and [`PendingReply::wait_digest`] can
    /// fail with.
    pub fn hash(
        &self,
        algorithm: WireAlgorithm,
        message: &[u8],
        output_len: usize,
        deadline: Option<Duration>,
    ) -> Result<Vec<u8>, ClientError> {
        self.submit(algorithm, message, output_len, deadline)?
            .wait_digest()
    }

    /// One blocking parameterized hash — the SP 800-185 one-shot.
    ///
    /// # Errors
    ///
    /// Everything [`Self::submit_with`] and
    /// [`PendingReply::wait_digest`] can fail with.
    pub fn hash_with(
        &self,
        algorithm: WireAlgorithm,
        params: AlgorithmParams,
        message: &[u8],
        output_len: usize,
    ) -> Result<Vec<u8>, ClientError> {
        self.submit_with(algorithm, params, message, output_len, None)?
            .wait_digest()
    }

    /// One blocking digest at the algorithm's natural output length (the
    /// fixed digest length, or 32 bytes for the XOFs).
    ///
    /// # Errors
    ///
    /// Same as [`Self::hash`].
    pub fn digest(&self, algorithm: WireAlgorithm, message: &[u8]) -> Result<Vec<u8>, ClientError> {
        let output_len = algorithm.fixed_output_len().unwrap_or(32);
        self.hash(algorithm, message, output_len, None)
    }

    /// Fetches the service's metrics over the wire.
    ///
    /// # Errors
    ///
    /// Transport errors, plus [`ClientError::UnexpectedResponse`] if the
    /// server answers with anything but a stats frame.
    pub fn stats(&self) -> Result<MetricsSnapshot, ClientError> {
        match self.submit_stats()?.wait()?.response {
            Response::Stats { snapshot, .. } => Ok(*snapshot),
            Response::Error { code, detail, .. } => {
                Err(ClientError::Remote(RemoteError { code, detail }))
            }
            _ => Err(ClientError::UnexpectedResponse),
        }
    }

    /// Submits a `KEM_KEYGEN` request without waiting. The seeds are
    /// caller-supplied so deterministic test vectors serve unchanged;
    /// production callers should draw them from a secure RNG.
    ///
    /// # Errors
    ///
    /// Transport errors writing the frame.
    pub fn submit_kem_keygen(
        &self,
        set: KemParameterSet,
        d: [u8; 32],
        z: [u8; 32],
        deadline: Option<Duration>,
    ) -> Result<PendingReply, ClientError> {
        self.send(|id| Request::KemKeygen {
            id,
            set,
            deadline,
            d,
            z,
        })
    }

    /// Submits a `KEM_ENCAPS` request without waiting.
    ///
    /// # Errors
    ///
    /// Transport errors writing the frame.
    pub fn submit_kem_encaps(
        &self,
        set: KemParameterSet,
        ek: &[u8],
        m: [u8; 32],
        deadline: Option<Duration>,
    ) -> Result<PendingReply, ClientError> {
        let ek = ek.to_vec();
        self.send(move |id| Request::KemEncaps {
            id,
            set,
            deadline,
            m,
            ek,
        })
    }

    /// Submits a `KEM_DECAPS` request without waiting.
    ///
    /// # Errors
    ///
    /// Transport errors writing the frame.
    pub fn submit_kem_decaps(
        &self,
        set: KemParameterSet,
        dk: &[u8],
        ct: &[u8],
        deadline: Option<Duration>,
    ) -> Result<PendingReply, ClientError> {
        let dk = dk.to_vec();
        let ct = ct.to_vec();
        self.send(move |id| Request::KemDecaps {
            id,
            set,
            deadline,
            dk,
            ct,
        })
    }

    /// One blocking ML-KEM key generation: returns `(ek, dk)`.
    ///
    /// # Errors
    ///
    /// Transport errors, server error replies (`BAD_KEY`, `BUSY`, …),
    /// and [`ClientError::UnexpectedResponse`] for a non-`KEM_KEYS`
    /// reply.
    pub fn kem_keygen(
        &self,
        set: KemParameterSet,
        d: [u8; 32],
        z: [u8; 32],
    ) -> Result<(Vec<u8>, Vec<u8>), ClientError> {
        match self.submit_kem_keygen(set, d, z, None)?.wait()?.response {
            Response::KemKeys { ek, dk, .. } => Ok((ek, dk)),
            Response::Error { code, detail, .. } => {
                Err(ClientError::Remote(RemoteError { code, detail }))
            }
            _ => Err(ClientError::UnexpectedResponse),
        }
    }

    /// One blocking ML-KEM encapsulation: returns `(ct, shared_secret)`.
    ///
    /// # Errors
    ///
    /// Same shape as [`Self::kem_keygen`]; a malformed `ek` comes back
    /// as a `BAD_KEY` remote error.
    pub fn kem_encaps(
        &self,
        set: KemParameterSet,
        ek: &[u8],
        m: [u8; 32],
    ) -> Result<(Vec<u8>, [u8; 32]), ClientError> {
        match self.submit_kem_encaps(set, ek, m, None)?.wait()?.response {
            Response::KemCiphertext {
                ct, shared_secret, ..
            } => Ok((ct, shared_secret)),
            Response::Error { code, detail, .. } => {
                Err(ClientError::Remote(RemoteError { code, detail }))
            }
            _ => Err(ClientError::UnexpectedResponse),
        }
    }

    /// One blocking ML-KEM decapsulation: returns the shared secret
    /// (the implicit-rejection secret for a tampered ciphertext).
    ///
    /// # Errors
    ///
    /// Same shape as [`Self::kem_keygen`]; a malformed `dk` or `ct`
    /// comes back as a `BAD_KEY` remote error.
    pub fn kem_decaps(
        &self,
        set: KemParameterSet,
        dk: &[u8],
        ct: &[u8],
    ) -> Result<[u8; 32], ClientError> {
        match self.submit_kem_decaps(set, dk, ct, None)?.wait()?.response {
            Response::KemSecret { shared_secret, .. } => Ok(shared_secret),
            Response::Error { code, detail, .. } => {
                Err(ClientError::Remote(RemoteError { code, detail }))
            }
            _ => Err(ClientError::UnexpectedResponse),
        }
    }

    /// Opens a streaming session: `OPEN` now, then `ABSORB`/`FINALIZE`/
    /// `SQUEEZE`/`CLOSE` through the returned handle. The session id is
    /// client-assigned and unique per connection.
    ///
    /// # Errors
    ///
    /// Transport errors, the server's `SESSION_LIMIT` refusal, and
    /// [`ClientError::UnexpectedResponse`] for a non-ack reply.
    pub fn open_session(
        &self,
        algorithm: WireAlgorithm,
        params: AlgorithmParams,
    ) -> Result<StreamingSession<'_>, ClientError> {
        let session = self.next_session.fetch_add(1, Ordering::Relaxed);
        let pending = self.send(|id| Request::Open {
            id,
            session,
            algorithm,
            params,
        })?;
        expect_ack(pending)?;
        Ok(StreamingSession {
            client: self,
            session,
        })
    }
}

/// Waits for a session ack (`OPENED`/`ABSORBED`/`FINALIZED`/`CLOSED`),
/// surfacing server errors.
fn expect_ack(pending: PendingReply) -> Result<(), ClientError> {
    match pending.wait()?.response {
        Response::Opened { .. }
        | Response::Absorbed { .. }
        | Response::Finalized { .. }
        | Response::Closed { .. } => Ok(()),
        Response::Error { code, detail, .. } => {
            Err(ClientError::Remote(RemoteError { code, detail }))
        }
        _ => Err(ClientError::UnexpectedResponse),
    }
}

/// One open streaming session: absorb any number of chunks, finalize,
/// squeeze, close — the message never exists whole on either end.
///
/// [`Self::absorb`] splits its input at the protocol's
/// [`MAX_CHUNK_LEN`] and pipelines the chunks (`ABSORB_WINDOW` acks
/// outstanding), so arbitrarily large messages stream through bounded
/// client memory; [`Self::squeeze`] likewise splits at
/// [`MAX_OUTPUT_LEN`]. Dropping the handle without [`Self::close`]
/// leaves the session to the server's idle reaper.
///
/// # Example
///
/// ```no_run
/// use krv_server::{AlgorithmParams, Client, WireAlgorithm};
///
/// let client = Client::connect("127.0.0.1:4117").unwrap();
/// let session = client
///     .open_session(WireAlgorithm::Shake256, AlgorithmParams::none())
///     .unwrap();
/// session.absorb(b"streamed in ").unwrap();
/// session.absorb(b"two chunks").unwrap();
/// session.finalize(0).unwrap();
/// let digest = session.squeeze(64).unwrap();
/// session.close().unwrap();
/// assert_eq!(digest.len(), 64);
/// ```
#[derive(Debug)]
pub struct StreamingSession<'a> {
    client: &'a Client,
    session: u64,
}

impl StreamingSession<'_> {
    /// The wire session id.
    pub fn id(&self) -> u64 {
        self.session
    }

    /// Submits one `ABSORB` frame without waiting for its ack — the
    /// streaming pipelining primitive.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::OversizedChunk`] (client-side, nothing is sent)
    /// if the chunk exceeds [`MAX_CHUNK_LEN`], plus transport errors.
    pub fn submit_absorb(&self, chunk: &[u8]) -> Result<PendingReply, ClientError> {
        if chunk.len() > MAX_CHUNK_LEN {
            return Err(ClientError::Protocol(ProtocolError::OversizedChunk {
                len: chunk.len(),
            }));
        }
        let session = self.session;
        let chunk = chunk.to_vec();
        self.client
            .send(move |id| Request::Absorb { id, session, chunk })
    }

    /// Absorbs `data`, splitting it at [`MAX_CHUNK_LEN`] and keeping up
    /// to `ABSORB_WINDOW` (64) chunk acks in flight. For TupleHash
    /// sessions each call is one tuple entry, so `data` must fit a
    /// single chunk.
    ///
    /// # Errors
    ///
    /// Transport errors, and the server's error reply if the session
    /// has failed.
    pub fn absorb(&self, data: &[u8]) -> Result<(), ClientError> {
        let mut pending: VecDeque<PendingReply> = VecDeque::new();
        for chunk in data.chunks(MAX_CHUNK_LEN) {
            pending.push_back(self.submit_absorb(chunk)?);
            if pending.len() >= ABSORB_WINDOW {
                expect_ack(pending.pop_front().expect("window is non-empty"))?;
            }
        }
        for ack in pending {
            expect_ack(ack)?;
        }
        Ok(())
    }

    /// Finalizes the message, declaring the total output length
    /// (`0` = unbounded XOF squeezing, where the algorithm allows it).
    ///
    /// # Errors
    ///
    /// Transport errors and server error replies.
    pub fn finalize(&self, output_len: usize) -> Result<(), ClientError> {
        let session = self.session;
        expect_ack(self.client.send(|id| Request::Finalize {
            id,
            session,
            output_len,
        })?)
    }

    /// Squeezes `len` output bytes, splitting the request at
    /// [`MAX_OUTPUT_LEN`]. Sequential calls continue the output stream.
    ///
    /// # Errors
    ///
    /// Transport errors, server error replies, and
    /// [`ClientError::UnexpectedResponse`] for a non-`SQUEEZED` reply.
    pub fn squeeze(&self, len: usize) -> Result<Vec<u8>, ClientError> {
        let mut out = Vec::with_capacity(len);
        let mut remaining = len;
        while remaining > 0 {
            let take = remaining.min(MAX_OUTPUT_LEN);
            let session = self.session;
            let pending = self.client.send(|id| Request::Squeeze {
                id,
                session,
                len: take,
            })?;
            match pending.wait()?.response {
                Response::Squeezed { bytes, .. } => out.extend_from_slice(&bytes),
                Response::Error { code, detail, .. } => {
                    return Err(ClientError::Remote(RemoteError { code, detail }))
                }
                _ => return Err(ClientError::UnexpectedResponse),
            }
            remaining -= take;
        }
        Ok(out)
    }

    /// Closes the session, freeing its id on the server.
    ///
    /// # Errors
    ///
    /// Transport errors and server error replies.
    pub fn close(self) -> Result<(), ClientError> {
        let session = self.session;
        expect_ack(self.client.send(|id| Request::Close { id, session })?)
    }
}

impl Drop for Client {
    /// Closes the connection and joins the reader; outstanding
    /// [`PendingReply`]s fail with [`ClientError::ConnectionClosed`].
    fn drop(&mut self) {
        let _ = self.stream.shutdown(Shutdown::Both);
        if let Some(reader) = self.reader.take() {
            let _ = reader.join();
        }
    }
}

/// The reader thread: decodes response frames and fills pending slots
/// until the connection closes or the server breaks the protocol.
/// Buffered reads let one socket read deliver several pipelined
/// response frames.
fn read_responses(stream: TcpStream, shared: &SharedState) {
    let mut stream = io::BufReader::new(stream);
    // Anything but a well-formed frame — EOF, transport error, an
    // oversized or undecodable body — ends the connection.
    while let Ok(Some(Ok(body))) = read_frame(&mut stream, DEFAULT_MAX_FRAME) {
        let Ok(response) = Response::decode(&body) else {
            break;
        };
        let arrived = Instant::now();
        let mut state = shared.state.lock().expect("client lock");
        if let Some(slot) = state.pending.get_mut(&response.id()) {
            let elapsed = match slot {
                Slot::Waiting { submitted } => arrived.duration_since(*submitted),
                // A duplicate id from the server; keep the first reply.
                Slot::Done(_) => continue,
            };
            *slot = Slot::Done(Box::new(Reply { response, elapsed }));
            drop(state);
            shared.arrived.notify_all();
        }
        // An id nobody registered (or an abandoned PendingReply whose
        // slot was already removed): drop the frame.
    }
    let mut state = shared.state.lock().expect("client lock");
    state.closed = true;
    drop(state);
    shared.arrived.notify_all();
}
