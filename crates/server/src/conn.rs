//! One accepted connection: a reader thread that decodes and submits,
//! a writer thread that serializes responses, and a drain that lets
//! every in-flight request answer before the socket closes.
//!
//! The reader polls the socket with a short read timeout so it can
//! notice daemon shutdown and connection idleness without a dedicated
//! signalling channel. Responses flow reader → service → ticket
//! callback → writer channel → socket; because completions arrive on
//! the scheduler thread while the reader keeps decoding, many requests
//! are in flight per socket at once and responses may overtake each
//! other — the request id is the client's correlation key.
//!
//! A protocol violation (bad magic, unknown kind, oversized frame, …)
//! is fatal **to the connection only**: the reader stops, already
//! admitted requests still get their responses, and the socket closes.
//! The daemon and every other connection keep serving.

use crate::protocol::{self, ErrorCode, Request, Response};
use crate::ServerConfig;
use krv_service::{HashRequest, RequestError, Service, SubmitError};
use std::io::{self, BufWriter, Read, Write};
use std::net::{Shutdown, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// How often the reader wakes from a blocked read to check the daemon
/// shutdown flag and the idle deadline.
const POLL_TICK: Duration = Duration::from_millis(25);

/// Requests submitted but not yet pushed to the writer channel.
#[derive(Debug, Default)]
struct InFlight {
    count: Mutex<usize>,
    drained: Condvar,
}

impl InFlight {
    fn increment(&self) {
        *self.count.lock().expect("in-flight lock") += 1;
    }

    fn decrement(&self) {
        let mut count = self.count.lock().expect("in-flight lock");
        *count -= 1;
        if *count == 0 {
            self.drained.notify_all();
        }
    }

    /// Blocks until every in-flight request has resolved. The service
    /// resolves every admitted ticket (including during its own drain),
    /// so this always returns; the timeout re-check is defensive only.
    fn wait_drained(&self) {
        let mut count = self.count.lock().expect("in-flight lock");
        while *count > 0 {
            count = self
                .drained
                .wait_timeout(count, Duration::from_secs(1))
                .expect("in-flight lock")
                .0;
        }
    }
}

/// Why the reader loop stopped. Every variant ends in the same graceful
/// close — drain in-flight responses, then shut the socket — so the
/// reason is informational; what matters is that a [`Stop::Violation`]
/// costs the client its connection and nothing else.
enum Stop {
    /// Clean EOF from the client, or an unusable socket.
    Disconnected,
    /// No complete frame arrived within the idle timeout.
    Idle,
    /// The daemon is shutting down.
    Shutdown,
    /// The client broke the protocol; the connection dies, the daemon
    /// does not.
    Violation,
}

/// Serves one accepted connection to completion. Runs on its own
/// thread; never panics on anything the peer sends.
pub(crate) fn serve(
    stream: TcpStream,
    service: Arc<Service>,
    config: ServerConfig,
    shutdown: Arc<AtomicBool>,
) {
    let _ = stream.set_nodelay(true);
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let (responses, inbox) = std::sync::mpsc::channel::<Vec<u8>>();
    let writer = std::thread::Builder::new()
        .name("krv-server-writer".into())
        .spawn(move || write_loop(write_half, inbox))
        .expect("spawn connection writer");

    let in_flight = Arc::new(InFlight::default());
    let _stop = read_loop(
        &stream, &service, &config, &shutdown, &responses, &in_flight,
    );

    // Graceful close, whatever stopped the reader: every admitted
    // request resolves (the callbacks enqueue their responses), then the
    // writer drains its channel and the socket closes.
    in_flight.wait_drained();
    drop(responses);
    let _ = writer.join();
    let _ = stream.shutdown(Shutdown::Both);
}

/// Decodes frames and submits requests until the connection stops.
fn read_loop(
    stream: &TcpStream,
    service: &Arc<Service>,
    config: &ServerConfig,
    shutdown: &Arc<AtomicBool>,
    responses: &Sender<Vec<u8>>,
    in_flight: &Arc<InFlight>,
) -> Stop {
    if stream.set_read_timeout(Some(POLL_TICK)).is_err() {
        return Stop::Disconnected;
    }
    let mut reader = io::BufReader::new(stream);
    let mut idle_deadline = Instant::now() + config.idle_timeout;
    loop {
        let mut prefix = [0u8; 4];
        match read_exact_poll(&mut reader, &mut prefix, shutdown, Some(idle_deadline)) {
            ReadOutcome::Full => {}
            ReadOutcome::Eof => return Stop::Disconnected,
            ReadOutcome::Idle => return Stop::Idle,
            ReadOutcome::Shutdown => return Stop::Shutdown,
            ReadOutcome::Failed => return Stop::Disconnected,
        }
        let len = u32::from_le_bytes(prefix) as usize;
        if len > config.max_frame {
            // OversizedFrame: the body cannot even be read safely.
            return Stop::Violation;
        }
        let mut body = vec![0u8; len];
        // Mid-frame, only daemon shutdown may interrupt; a slow frame is
        // not idleness.
        match read_exact_poll(&mut reader, &mut body, shutdown, None) {
            ReadOutcome::Full => {}
            ReadOutcome::Eof | ReadOutcome::Failed => return Stop::Disconnected,
            ReadOutcome::Idle => unreachable!("no idle deadline mid-frame"),
            ReadOutcome::Shutdown => return Stop::Shutdown,
        }
        match Request::decode(&body) {
            Ok(request) => handle(request, service, config, responses, in_flight),
            Err(_violation) => return Stop::Violation,
        }
        idle_deadline = Instant::now() + config.idle_timeout;
    }
}

/// One fully decoded request: admit it or answer why not.
fn handle(
    request: Request,
    service: &Arc<Service>,
    config: &ServerConfig,
    responses: &Sender<Vec<u8>>,
    in_flight: &Arc<InFlight>,
) {
    match request {
        Request::Stats { id } => {
            let snapshot = Box::new(service.metrics());
            let _ = responses.send(Response::Stats { id, snapshot }.encode());
        }
        Request::Hash {
            id,
            algorithm,
            output_len,
            deadline,
            payload,
        } => {
            if *in_flight.count.lock().expect("in-flight lock") >= config.max_in_flight {
                let response = Response::Error {
                    id,
                    code: ErrorCode::Busy,
                    detail: format!(
                        "connection window full at {} in-flight requests",
                        config.max_in_flight
                    ),
                };
                let _ = responses.send(response.encode());
                return;
            }
            let mut hash_request = HashRequest::new(payload, algorithm.params(), output_len);
            hash_request.deadline = deadline;
            in_flight.increment();
            match service.submit(hash_request) {
                Ok(ticket) => {
                    let responses = responses.clone();
                    let in_flight = Arc::clone(in_flight);
                    // Runs on the scheduler thread: encode, enqueue for
                    // the writer, release the in-flight slot. Never
                    // blocks on the service.
                    ticket.on_complete(move |completion| {
                        let response = match completion.result {
                            Ok(bytes) => Response::Digest { id, bytes },
                            Err(RequestError::TimedOut) => Response::Error {
                                id,
                                code: ErrorCode::Deadline,
                                detail: "deadline elapsed before dispatch".into(),
                            },
                            Err(RequestError::WorkerFailure { error }) => Response::Error {
                                id,
                                code: ErrorCode::Internal,
                                detail: error.to_string(),
                            },
                        };
                        let _ = responses.send(response.encode());
                        in_flight.decrement();
                    });
                }
                Err(refusal) => {
                    in_flight.decrement();
                    let (code, detail) = match refusal {
                        SubmitError::QueueFull { depth } => (
                            ErrorCode::Busy,
                            format!("admission queue full at depth {depth}"),
                        ),
                        SubmitError::ShuttingDown => {
                            (ErrorCode::ShuttingDown, "daemon is draining".into())
                        }
                    };
                    let _ = responses.send(Response::Error { id, code, detail }.encode());
                }
            }
        }
    }
}

enum ReadOutcome {
    Full,
    Eof,
    Idle,
    Shutdown,
    Failed,
}

/// `read_exact` over a socket with a poll-tick read timeout: fills
/// `buffer` completely, or reports why it could not. With an
/// `idle_deadline`, gives up once the deadline passes **before any byte
/// arrived** — a partially read buffer is never abandoned to idleness,
/// so frame framing cannot desynchronize.
fn read_exact_poll(
    reader: &mut impl Read,
    buffer: &mut [u8],
    shutdown: &AtomicBool,
    idle_deadline: Option<Instant>,
) -> ReadOutcome {
    let mut filled = 0;
    while filled < buffer.len() {
        match reader.read(&mut buffer[filled..]) {
            Ok(0) => return ReadOutcome::Eof,
            Ok(n) => filled += n,
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                if shutdown.load(Ordering::Acquire) {
                    return ReadOutcome::Shutdown;
                }
                if filled == 0 {
                    if let Some(deadline) = idle_deadline {
                        if Instant::now() >= deadline {
                            return ReadOutcome::Idle;
                        }
                    }
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return ReadOutcome::Failed,
        }
    }
    ReadOutcome::Full
}

/// The writer thread: drains encoded response frames to the socket,
/// batching flushes across momentarily queued responses. Exits when the
/// channel closes (reader done, in-flight drained) or the socket dies.
fn write_loop(stream: TcpStream, inbox: Receiver<Vec<u8>>) {
    let mut writer = BufWriter::new(stream);
    while let Ok(frame) = inbox.recv() {
        if protocol::write_frame(&mut writer, &frame).is_err() {
            // A dead socket: keep draining the channel so callbacks
            // never block, but stop writing.
            for _ in inbox.iter() {}
            return;
        }
        while let Ok(frame) = inbox.try_recv() {
            if protocol::write_frame(&mut writer, &frame).is_err() {
                for _ in inbox.iter() {}
                return;
            }
        }
        if writer.flush().is_err() {
            for _ in inbox.iter() {}
            return;
        }
    }
    let _ = writer.flush();
}
