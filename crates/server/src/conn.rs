//! One multiplexed connection: a non-blocking state machine pumped by
//! an I/O thread, not a pair of dedicated threads.
//!
//! A [`Connection`] owns a non-blocking socket, a byte buffer of
//! unparsed inbound data, and a queue of encoded outbound frames. The
//! owning I/O thread pumps it: writes whatever the socket accepts,
//! reads whatever has arrived, parses every *complete* frame out of the
//! buffer and handles it. Partial frames simply stay buffered until
//! more bytes arrive — framing cannot desynchronize, because nothing is
//! consumed until the full frame is present and decoded.
//!
//! Responses flow back asynchronously: a hash submission registers a
//! ticket callback that encodes the response on the scheduler thread
//! and posts it to the I/O thread's inbox ([`crate::poll::IoShared`]),
//! which routes it to this connection's outbound queue. The request id
//! is the client's correlation key; responses overtake each other
//! freely.
//!
//! A protocol violation (bad magic, unknown kind, oversized frame, …)
//! is fatal **to the connection only**: reading stops, already admitted
//! requests still get their responses written, and the socket closes.
//! The daemon and every other connection keep serving. EOF and idleness
//! (no bytes received for the idle timeout) end a connection the same
//! graceful way.

use crate::plan::{self, ServePlan};
use crate::poll::IoCtx;
use crate::protocol::{ErrorCode, Request, Response};
use crate::session::{ConnIo, SessionEvent, SessionTable, Violation};
use krv_kyber::{KemOp, KemResult};
use krv_service::{HashRequest, KemRequest, KemRequestError, RequestError, SubmitError};
use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Most scratch-buffer reads one pump performs before yielding to the
/// next connection, so one firehose peer cannot starve the rest of the
/// I/O thread's sweep.
const READS_PER_PUMP: usize = 4;

/// Prepends the length prefix, turning a frame body into wire bytes.
pub(crate) fn wire(body: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + body.len());
    out.extend_from_slice(&(body.len() as u32).to_le_bytes());
    out.extend_from_slice(body);
    out
}

/// The per-connection state machine. All methods are non-blocking; the
/// owning I/O thread calls them from its sweep.
#[derive(Debug)]
pub(crate) struct Connection {
    stream: TcpStream,
    /// The connection's stable id: the routing key for inbox frames and
    /// the client id fair-share admission accounts against.
    token: u64,
    /// Received, not-yet-parsed bytes (at most one partial frame plus
    /// whatever arrived behind it).
    read_buf: Vec<u8>,
    /// Encoded outbound frames (wire bytes, length prefix included).
    outbound: VecDeque<Vec<u8>>,
    /// Bytes of `outbound.front()` already written.
    front_written: usize,
    /// Requests submitted whose responses have not yet been posted back
    /// to the I/O thread. Shared with the ticket callbacks, which
    /// decrement it *after* posting the response frame.
    in_flight: Arc<AtomicUsize>,
    /// When the connection is closed for idleness: reset whenever bytes
    /// arrive.
    idle_deadline: Instant,
    /// `false` once EOF, a violation, idleness or daemon shutdown ends
    /// the inbound side; the connection then drains and closes.
    reading: bool,
    /// This connection's streaming sessions (wire-opened and implicit
    /// one-shot trees); dies with the connection.
    sessions: SessionTable,
    /// A hard transport failure: the connection is removed immediately,
    /// without draining.
    pub dead: bool,
}

impl Connection {
    /// Adopts an accepted stream: switches it non-blocking and arms the
    /// idle deadline.
    ///
    /// # Errors
    ///
    /// Propagates the `set_nonblocking` failure (the stream is unusable
    /// for this server if it cannot be made non-blocking).
    pub fn adopt(stream: TcpStream, token: u64, ctx: &IoCtx) -> io::Result<Self> {
        stream.set_nonblocking(true)?;
        let _ = stream.set_nodelay(true);
        Ok(Self {
            stream,
            token,
            read_buf: Vec::new(),
            outbound: VecDeque::new(),
            front_written: 0,
            in_flight: Arc::new(AtomicUsize::new(0)),
            idle_deadline: Instant::now() + ctx.config.idle_timeout,
            reading: true,
            sessions: SessionTable::new(),
            dead: false,
        })
    }

    /// The connection's routing token / client id.
    pub fn token(&self) -> u64 {
        self.token
    }

    /// Stops the inbound side: no more reads, no more submissions. The
    /// connection closes once its in-flight responses have been posted
    /// and written.
    pub fn start_drain(&mut self) {
        self.reading = false;
        self.read_buf.clear();
    }

    /// Whether every admitted request's response has been posted to the
    /// I/O inbox and the inbound side is closed. Because callbacks post
    /// their frame *before* decrementing the counter, observing zero
    /// here guarantees a subsequent inbox take sees every response —
    /// the close sequence relies on exactly that ordering.
    pub fn drained(&self) -> bool {
        !self.reading && self.in_flight.load(Ordering::Acquire) == 0
    }

    /// Whether nothing remains to write.
    pub fn flushed(&self) -> bool {
        self.outbound.is_empty()
    }

    /// Queues an encoded frame (wire bytes) for writing.
    pub fn push_frame(&mut self, frame: Vec<u8>) {
        self.outbound.push_back(frame);
    }

    /// One pump: flush what the socket accepts, check idleness, read
    /// and handle what has arrived. Returns whether any bytes moved.
    pub fn pump(&mut self, ctx: &IoCtx, scratch: &mut [u8], now: Instant) -> bool {
        if self.dead {
            return false;
        }
        let progress = self.pump_write();
        if self.reading && now >= self.idle_deadline {
            // Idleness covers half-open peers too: a vanished client
            // sends no bytes (and no FIN), so its connection ends here.
            self.start_drain();
        }
        let progress = progress | self.pump_read(ctx, scratch);
        // Retry session operations parked on backpressure and reap idle
        // wire sessions.
        let mut io = ConnIo {
            token: self.token,
            outbound: &mut self.outbound,
            in_flight: &self.in_flight,
        };
        self.sessions.tick(now, ctx, &mut io);
        progress
    }

    /// Routes a session completion into this connection's table.
    pub fn on_event(&mut self, event: SessionEvent, ctx: &IoCtx) {
        let mut io = ConnIo {
            token: self.token,
            outbound: &mut self.outbound,
            in_flight: &self.in_flight,
        };
        self.sessions
            .on_event(event.key, event.payload, ctx, &mut io);
    }

    /// Writes queued frames until the socket would block.
    fn pump_write(&mut self) -> bool {
        let mut progress = false;
        while let Some(front) = self.outbound.front() {
            match self.stream.write(&front[self.front_written..]) {
                Ok(0) => {
                    self.dead = true;
                    break;
                }
                Ok(n) => {
                    progress = true;
                    self.front_written += n;
                    if self.front_written == front.len() {
                        self.outbound.pop_front();
                        self.front_written = 0;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => {
                    self.dead = true;
                    break;
                }
            }
        }
        progress
    }

    /// Reads what has arrived (bounded per pump), then parses and
    /// handles every complete frame in the buffer.
    fn pump_read(&mut self, ctx: &IoCtx, scratch: &mut [u8]) -> bool {
        if !self.reading {
            return false;
        }
        let mut progress = false;
        for _ in 0..READS_PER_PUMP {
            match self.stream.read(scratch) {
                Ok(0) => {
                    // Clean EOF: whatever complete frames are already
                    // buffered are still parsed below — a client that
                    // writes requests and half-closes gets its answers.
                    self.reading = false;
                    break;
                }
                Ok(n) => {
                    progress = true;
                    self.read_buf.extend_from_slice(&scratch[..n]);
                    self.idle_deadline = Instant::now() + ctx.config.idle_timeout;
                    if n < scratch.len() {
                        break;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => {
                    self.dead = true;
                    return progress;
                }
            }
        }
        self.parse_frames(ctx);
        progress
    }

    /// Consumes every complete frame in `read_buf`. A frame is only
    /// consumed whole — a partial frame stays put for the next pump —
    /// and a violation stops the inbound side at the exact frame
    /// boundary where it happened.
    fn parse_frames(&mut self, ctx: &IoCtx) {
        let mut at = 0;
        loop {
            let remaining = self.read_buf.len() - at;
            if remaining < 4 {
                break;
            }
            let prefix: [u8; 4] = self.read_buf[at..at + 4].try_into().expect("len 4");
            let len = u32::from_le_bytes(prefix) as usize;
            if len > ctx.config.max_frame {
                // OversizedFrame: violation before any allocation.
                self.start_drain();
                return;
            }
            if remaining < 4 + len {
                break;
            }
            let body: Vec<u8> = self.read_buf[at + 4..at + 4 + len].to_vec();
            at += 4 + len;
            match Request::decode(&body) {
                Ok(request) => self.handle(request, ctx),
                Err(_violation) => {
                    self.start_drain();
                    return;
                }
            }
            if self.read_buf.len() < at {
                // A session-state violation inside handle() started the
                // drain and cleared the buffer; `at` is stale.
                return;
            }
        }
        self.read_buf.drain(..at);
    }

    /// One fully decoded request: admit it or answer why not.
    fn handle(&mut self, request: Request, ctx: &IoCtx) {
        match request {
            Request::Stats { id } => {
                // The merged cluster-wide snapshot, served inline on the
                // I/O thread (cheap: counters plus histogram walks).
                let snapshot = Box::new(ctx.service.metrics());
                self.push_frame(wire(&Response::Stats { id, snapshot }.encode()));
            }
            Request::Hash {
                id,
                algorithm,
                output_len,
                deadline,
                params,
                payload,
            } => {
                if self.window_full(id, ctx) {
                    return;
                }
                if algorithm.is_tree() {
                    // Tree algorithms serve through an implicit session:
                    // the payload is chunked into leaf blocks that ride
                    // the batch lane, and the session answers with one
                    // DIGEST frame.
                    self.in_flight.fetch_add(1, Ordering::AcqRel);
                    let mut io = ConnIo {
                        token: self.token,
                        outbound: &mut self.outbound,
                        in_flight: &self.in_flight,
                    };
                    self.sessions.one_shot_tree(
                        id, algorithm, &params, output_len, deadline, &payload, ctx, &mut io,
                    );
                    return;
                }
                let (message, sponge_params) = if algorithm.is_fips() {
                    // FIPS 202 algorithms absorb the payload as-is.
                    (payload, algorithm.params())
                } else {
                    // SP 800-185 algorithms absorb their framing around
                    // it; one flat message serves through the same batch
                    // lane as everything else.
                    let ServePlan::Flat(flat) = plan::plan(algorithm, &params) else {
                        unreachable!("non-tree algorithms plan flat")
                    };
                    let message = plan::flat_message(&flat, algorithm, &payload, output_len);
                    (message, flat.params)
                };
                let mut hash_request = HashRequest::new(message, sponge_params, output_len);
                hash_request.deadline = deadline;
                self.in_flight.fetch_add(1, Ordering::AcqRel);
                match ctx.service.submit_as(self.token, hash_request) {
                    Ok(ticket) => {
                        let shared = Arc::clone(&ctx.shared);
                        let in_flight = Arc::clone(&self.in_flight);
                        let token = self.token;
                        // Runs on the shard's scheduler thread: encode,
                        // post to the I/O inbox, release the in-flight
                        // slot — in that order; `drained` depends on it.
                        ticket.on_complete(move |completion| {
                            let response = match completion.result {
                                Ok(bytes) => Response::Digest { id, bytes },
                                Err(RequestError::TimedOut) => Response::Error {
                                    id,
                                    code: ErrorCode::Deadline,
                                    detail: "deadline elapsed before dispatch".into(),
                                },
                                Err(RequestError::WorkerFailure { error }) => Response::Error {
                                    id,
                                    code: ErrorCode::Internal,
                                    detail: error.to_string(),
                                },
                            };
                            shared.post_frame(token, wire(&response.encode()));
                            in_flight.fetch_sub(1, Ordering::AcqRel);
                        });
                    }
                    Err(refusal) => {
                        self.in_flight.fetch_sub(1, Ordering::AcqRel);
                        let (code, detail) = refusal_error(refusal);
                        self.push_frame(wire(&Response::Error { id, code, detail }.encode()));
                    }
                }
            }
            Request::KemKeygen {
                id,
                set,
                deadline,
                d,
                z,
            } => {
                let request = KemRequest {
                    params: set.params(),
                    op: KemOp::Keygen { d, z },
                    deadline,
                };
                self.serve_kem(id, request, ctx);
            }
            Request::KemEncaps {
                id,
                set,
                deadline,
                m,
                ek,
            } => {
                let request = KemRequest {
                    params: set.params(),
                    op: KemOp::Encaps { ek, m },
                    deadline,
                };
                self.serve_kem(id, request, ctx);
            }
            Request::KemDecaps {
                id,
                set,
                deadline,
                dk,
                ct,
            } => {
                let request = KemRequest {
                    params: set.params(),
                    op: KemOp::Decaps { dk, ct },
                    deadline,
                };
                self.serve_kem(id, request, ctx);
            }
            Request::Open {
                id,
                session,
                algorithm,
                params,
            } => {
                let mut io = ConnIo {
                    token: self.token,
                    outbound: &mut self.outbound,
                    in_flight: &self.in_flight,
                };
                let outcome = self
                    .sessions
                    .open(id, session, algorithm, &params, ctx, &mut io);
                self.check_violation(id, outcome);
            }
            Request::Absorb { id, session, chunk } => {
                if self.window_full(id, ctx) {
                    return;
                }
                let mut io = ConnIo {
                    token: self.token,
                    outbound: &mut self.outbound,
                    in_flight: &self.in_flight,
                };
                let outcome = self.sessions.absorb(id, session, chunk, ctx, &mut io);
                self.check_violation(id, outcome);
            }
            Request::Finalize {
                id,
                session,
                output_len,
            } => {
                if self.window_full(id, ctx) {
                    return;
                }
                let mut io = ConnIo {
                    token: self.token,
                    outbound: &mut self.outbound,
                    in_flight: &self.in_flight,
                };
                let outcome = self
                    .sessions
                    .finalize(id, session, output_len, ctx, &mut io);
                self.check_violation(id, outcome);
            }
            Request::Squeeze { id, session, len } => {
                if self.window_full(id, ctx) {
                    return;
                }
                let mut io = ConnIo {
                    token: self.token,
                    outbound: &mut self.outbound,
                    in_flight: &self.in_flight,
                };
                let outcome = self.sessions.squeeze(id, session, len, ctx, &mut io);
                self.check_violation(id, outcome);
            }
            Request::Close { id, session } => {
                if self.window_full(id, ctx) {
                    return;
                }
                let mut io = ConnIo {
                    token: self.token,
                    outbound: &mut self.outbound,
                    in_flight: &self.in_flight,
                };
                let outcome = self.sessions.close(id, session, ctx, &mut io);
                self.check_violation(id, outcome);
            }
        }
    }

    /// Admits one ML-KEM operation through the same window, fair-share
    /// and callback machinery as a hash request. A malformed key or
    /// ciphertext comes back as a request-level `BAD_KEY` error — the
    /// connection survives, unlike a framing violation.
    fn serve_kem(&mut self, id: u64, request: KemRequest, ctx: &IoCtx) {
        if self.window_full(id, ctx) {
            return;
        }
        self.in_flight.fetch_add(1, Ordering::AcqRel);
        match ctx.service.submit_kem_as(self.token, request) {
            Ok(ticket) => {
                let shared = Arc::clone(&ctx.shared);
                let in_flight = Arc::clone(&self.in_flight);
                let token = self.token;
                // Same ordering contract as the hash callback: encode,
                // post, then release the in-flight slot.
                ticket.on_complete(move |completion| {
                    let response = match completion.result {
                        Ok(KemResult::Keygen { ek, dk }) => Response::KemKeys { id, ek, dk },
                        Ok(KemResult::Encaps { ct, shared_secret }) => Response::KemCiphertext {
                            id,
                            ct,
                            shared_secret,
                        },
                        Ok(KemResult::Decaps { shared_secret }) => {
                            Response::KemSecret { id, shared_secret }
                        }
                        Err(KemRequestError::InvalidInput(error)) => Response::Error {
                            id,
                            code: ErrorCode::BadKey,
                            detail: error.to_string(),
                        },
                        Err(KemRequestError::TimedOut) => Response::Error {
                            id,
                            code: ErrorCode::Deadline,
                            detail: "deadline elapsed before dispatch".into(),
                        },
                        Err(KemRequestError::WorkerFailure { error }) => Response::Error {
                            id,
                            code: ErrorCode::Internal,
                            detail: error.to_string(),
                        },
                    };
                    shared.post_frame(token, wire(&response.encode()));
                    in_flight.fetch_sub(1, Ordering::AcqRel);
                });
            }
            Err(refusal) => {
                self.in_flight.fetch_sub(1, Ordering::AcqRel);
                let (code, detail) = refusal_error(refusal);
                self.push_frame(wire(&Response::Error { id, code, detail }.encode()));
            }
        }
    }

    /// Answers `BUSY` if the pipeline window is full. Session frames
    /// each hold one window slot exactly like hash requests, so a
    /// connection's total queued work stays bounded by
    /// [`crate::ServerConfig::max_in_flight`].
    fn window_full(&mut self, id: u64, ctx: &IoCtx) -> bool {
        if self.in_flight.load(Ordering::Acquire) < ctx.config.max_in_flight {
            return false;
        }
        let response = Response::Error {
            id,
            code: ErrorCode::Busy,
            detail: format!(
                "connection window full at {} in-flight requests",
                ctx.config.max_in_flight
            ),
        };
        self.push_frame(wire(&response.encode()));
        true
    }

    /// A session-state violation is connection-fatal: answer the typed
    /// error, then drain exactly like a framing violation.
    fn check_violation(&mut self, id: u64, outcome: Result<(), Violation>) {
        if let Err(violation) = outcome {
            let response = Response::Error {
                id,
                code: violation.code,
                detail: violation.detail,
            };
            self.push_frame(wire(&response.encode()));
            self.start_drain();
        }
    }
}

/// Maps an admission refusal to the wire error answering it.
fn refusal_error(refusal: SubmitError) -> (ErrorCode, String) {
    match refusal {
        SubmitError::QueueFull { depth } => (
            ErrorCode::Busy,
            format!("admission queue full at depth {depth}"),
        ),
        SubmitError::ClientThrottled { held, .. } => (
            ErrorCode::Busy,
            format!("client throttled at its fair share ({held} queued)"),
        ),
        SubmitError::ShuttingDown => (ErrorCode::ShuttingDown, "daemon is draining".into()),
    }
}
