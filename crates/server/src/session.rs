//! Per-connection streaming session tables.
//!
//! A session is `OPEN → ABSORB* → FINALIZE → SQUEEZE* → CLOSE`, scoped
//! to its connection. The table enforces the state machine at frame
//! arrival (out-of-order frames are connection-fatal [`Violation`]s),
//! queues each accepted frame as one [`SessionOp`], and drives the
//! queue against the service: flat algorithms carry a live
//! [`SpongeState`] through the service's streaming lane one operation
//! at a time; tree algorithms buffer chunks into fixed blocks, dispatch
//! each block as a one-shot leaf through the batch lane (a bounded
//! window of leaves rides the same micro-batches as everyone else's
//! traffic), and finish with one flat root request over the leaf
//! digests.
//!
//! Memory stays bounded by construction: a session holds at most the
//! framing prefix, one partial tree block, the queued chunks the
//! connection's in-flight window admits, and (trees) the leaf digests —
//! never the whole message.
//!
//! Backpressure never loses session bytes: a refused service submission
//! hands the request back (`try_submit_*`), the operation stays parked
//! at the queue front, and the next I/O sweep retries it. Service
//! failures (a lost worker, an expired deadline) poison the session —
//! every queued and later operation is answered with the failure's
//! typed error, and only `CLOSE` (which always succeeds) frees the id.
//! Implicit sessions (one-shot tree requests) answer with a single
//! `DIGEST`/`ERROR` frame instead of per-operation acks.

use crate::conn::wire;
use crate::plan::{self, ServePlan};
use crate::poll::IoCtx;
use crate::protocol::{AlgorithmParams, ErrorCode, Response, WireAlgorithm};
use krv_service::{
    Completion, HashRequest, RequestError, StreamCompletion, StreamRequest, SubmitError,
};
use krv_sha3::sp800_185::tuple_entry_prefix;
use krv_sha3::tree::TreeMode;
use krv_sha3::SpongeState;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Most tree-leaf hash requests one session keeps in the service at
/// once. Bounds a tree session's share of the admission queue while
/// still giving `hash_batch` whole batches to fill.
const LEAF_WINDOW: usize = 64;

/// A connection-fatal session protocol violation: the connection
/// replies with the typed error and drains, exactly like a framing
/// violation.
#[derive(Debug)]
pub(crate) struct Violation {
    /// The error code for the reply.
    pub code: ErrorCode,
    /// Human-readable detail.
    pub detail: String,
}

impl Violation {
    fn bad_session(detail: String) -> Self {
        Self {
            code: ErrorCode::BadSession,
            detail,
        }
    }

    fn state(detail: impl Into<String>) -> Self {
        Self {
            code: ErrorCode::SessionState,
            detail: detail.into(),
        }
    }
}

/// Which table entry an event belongs to: a client-numbered wire
/// session or a server-numbered implicit (one-shot tree) session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) enum SessionKey {
    /// A client-opened session (the wire session id).
    Wire(u64),
    /// An implicit session backing one one-shot tree request.
    Implicit(u64),
}

/// A completion routed back to a session through the I/O inbox.
#[derive(Debug)]
pub(crate) struct SessionEvent {
    /// The owning connection's token.
    pub token: u64,
    /// The session within that connection.
    pub key: SessionKey,
    /// What completed.
    pub payload: EventPayload,
}

/// The service completion a [`SessionEvent`] carries.
#[derive(Debug)]
pub(crate) enum EventPayload {
    /// A streaming-lane operation of a flat session.
    Stream(StreamCompletion),
    /// One tree leaf (`index` into the leaf digest table).
    Leaf {
        /// Which leaf completed.
        index: usize,
        /// Its one-shot completion.
        completion: Completion,
    },
    /// The tree root digest.
    Root(Completion),
}

/// The slice of a connection a session needs for replying: the outbound
/// frame queue and the in-flight accounting, borrowed for one call.
pub(crate) struct ConnIo<'a> {
    /// The connection token (the service client id).
    pub token: u64,
    /// The connection's outbound frame queue.
    pub outbound: &'a mut VecDeque<Vec<u8>>,
    /// The connection's in-flight counter; decremented as each session
    /// operation's reply is queued.
    pub in_flight: &'a AtomicUsize,
}

impl ConnIo<'_> {
    /// Queues a reply that does not settle an in-flight operation.
    fn reply(&mut self, response: &Response) {
        self.outbound.push_back(wire(&response.encode()));
    }

    /// Queues a reply settling one in-flight session operation. Both
    /// happen on the I/O thread, so the frame is visibly queued before
    /// the connection can ever observe itself drained.
    fn reply_op(&mut self, response: &Response) {
        self.reply(response);
        self.in_flight.fetch_sub(1, Ordering::AcqRel);
    }
}

/// One queued session operation. The request id rides along so the
/// reply (or the failure flush) answers the right frame.
#[derive(Debug)]
enum SessionOp {
    /// An ABSORB: for flat sessions `bytes` is the fully framed absorb
    /// input (prefix + tuple entry header + chunk); for tree sessions
    /// the chunk went into the block buffer and `target` is the
    /// cumulative block count this operation is accountable for.
    Absorb {
        /// The request id.
        id: u64,
        /// Framed absorb input (flat sessions; drained into the service
        /// request while the operation is in flight).
        bytes: Vec<u8>,
        /// Cumulative produced-block watermark (tree sessions).
        target: usize,
    },
    /// A FINALIZE: `bytes` is the remaining framing (unconsumed prefix
    /// plus the `right_encode(L·8)` suffix) for flat sessions.
    Finalize {
        /// The request id.
        id: u64,
        /// Framing absorbed before the pad (flat sessions).
        bytes: Vec<u8>,
        /// The declared total output length (0 = unbounded XOF).
        output_len: usize,
    },
    /// A SQUEEZE of `len` bytes.
    Squeeze {
        /// The request id.
        id: u64,
        /// Output bytes to squeeze.
        len: usize,
    },
    /// A CLOSE; always succeeds and removes the session.
    Close {
        /// The request id.
        id: u64,
    },
}

impl SessionOp {
    fn id(&self) -> u64 {
        match self {
            SessionOp::Absorb { id, .. }
            | SessionOp::Finalize { id, .. }
            | SessionOp::Squeeze { id, .. }
            | SessionOp::Close { id } => *id,
        }
    }
}

/// Where the session is in its logical lifecycle — validated at frame
/// arrival, ahead of the (asynchronous) service work.
#[derive(Debug)]
enum Phase {
    Absorbing,
    Squeezing {
        /// Output bytes still squeezable under the FINALIZE-declared
        /// budget; `None` is an unbounded XOF.
        remaining: Option<usize>,
    },
}

/// How the session answers: per-operation wire acks, or one terminal
/// digest for an implicit one-shot tree.
#[derive(Debug, Clone, Copy)]
enum ReplyMode {
    /// A wire session; replies echo this session id.
    Wire {
        /// The client-chosen session id.
        session: u64,
    },
    /// An implicit session: exactly one in-flight slot, answered by a
    /// single `DIGEST` (or `ERROR`) frame.
    OneShot,
}

/// A flat (single-sponge) session's state between operations.
#[derive(Debug)]
struct StreamBody {
    /// The sponge; `None` while an operation carries it through the
    /// service.
    state: Option<Box<SpongeState>>,
    /// Framing absorbed ahead of the first message byte; taken by the
    /// first ABSORB/FINALIZE to enqueue.
    prefix: Option<Vec<u8>>,
    /// TupleHash: every ABSORB chunk is one tuple entry, absorbed
    /// behind its `left_encode(len·8)` header.
    tuple: bool,
}

/// A chunked-tree session's state.
#[derive(Debug)]
struct TreeBody {
    mode: TreeMode,
    customization: Vec<u8>,
    /// Tail bytes short of one block.
    buffer: Vec<u8>,
    /// Full blocks awaiting leaf submission.
    blocks: VecDeque<Vec<u8>>,
    /// Leaf digests in message order; `None` until the completion
    /// lands.
    leaves: Vec<Option<Vec<u8>>>,
    /// Leaves submitted whose completions have not yet arrived.
    outstanding: usize,
    /// Blocks produced so far (the ABSORB watermark counter).
    produced: usize,
    /// The FINALIZE-declared output length.
    output_len: usize,
    /// The root digest, served to SQUEEZE frames.
    output: Option<Vec<u8>>,
    /// Root bytes already squeezed.
    squeezed: usize,
    /// Deadline applied to every leaf and the root (implicit one-shot
    /// sessions).
    deadline: Option<Duration>,
}

impl TreeBody {
    fn new(mode: TreeMode, customization: Vec<u8>, deadline: Option<Duration>) -> Self {
        Self {
            mode,
            customization,
            buffer: Vec::new(),
            blocks: VecDeque::new(),
            leaves: Vec::new(),
            outstanding: 0,
            produced: 0,
            output_len: 0,
            output: None,
            squeezed: 0,
            deadline,
        }
    }

    /// Buffers a chunk, extracting every completed block.
    fn ingest(&mut self, chunk: &[u8]) {
        let block = self.mode.block_size();
        self.buffer.extend_from_slice(chunk);
        while self.buffer.len() >= block {
            let rest = self.buffer.split_off(block);
            self.blocks
                .push_back(std::mem::replace(&mut self.buffer, rest));
            self.produced += 1;
        }
    }

    /// Flushes the partial tail as the final (short) block.
    fn flush_tail(&mut self) {
        if !self.buffer.is_empty() {
            self.blocks.push_back(std::mem::take(&mut self.buffer));
            self.produced += 1;
        }
    }
}

#[derive(Debug)]
enum Body {
    Stream(StreamBody),
    Tree(TreeBody),
}

/// What one drive step of the front operation concluded.
enum Step {
    /// The front operation finished synchronously; drive the next.
    Done,
    /// Waiting on the service (an in-flight operation, backpressure, or
    /// the leaf window); retried on the next event or sweep.
    Parked,
    /// The session is finished; remove it from the table.
    Remove,
}

#[derive(Debug)]
struct Session {
    algorithm: WireAlgorithm,
    reply: ReplyMode,
    /// Refreshed by every frame and completion; wire sessions idle past
    /// [`crate::ServerConfig::session_idle_timeout`] are reaped.
    last_touch: Instant,
    queue: VecDeque<SessionOp>,
    /// An operation (stream op or tree root) is in the service; the
    /// front of the queue is its marker until the completion event.
    busy: bool,
    /// A service failure poisoned the session; every operation until
    /// CLOSE answers with this error.
    failed: Option<(ErrorCode, String)>,
    phase: Phase,
    body: Body,
}

fn request_error_reply(error: &RequestError) -> (ErrorCode, String) {
    match error {
        RequestError::TimedOut => (
            ErrorCode::Deadline,
            "deadline elapsed before dispatch".into(),
        ),
        RequestError::WorkerFailure { error } => (ErrorCode::Internal, error.to_string()),
    }
}

impl Session {
    /// Poisons the session with a failure. A wire session stays in the
    /// table (flushing its queue with error replies, waiting for CLOSE);
    /// an implicit session answers its one error frame and is removed.
    fn fail(&mut self, code: ErrorCode, detail: String, io: &mut ConnIo<'_>) -> Step {
        if self.failed.is_some() {
            return Step::Done;
        }
        match self.reply {
            ReplyMode::Wire { .. } => {
                self.failed = Some((code, detail));
                Step::Done
            }
            ReplyMode::OneShot => {
                let id = self.queue.front().map_or(0, SessionOp::id);
                io.reply_op(&Response::Error { id, code, detail });
                self.queue.clear();
                Step::Remove
            }
        }
    }

    /// Drives the queue until it parks or the session ends. Returns
    /// whether to remove the session from the table.
    fn drive(&mut self, key: SessionKey, ctx: &IoCtx, io: &mut ConnIo<'_>) -> bool {
        loop {
            if self.busy {
                return false;
            }
            if let Some((code, detail)) = self.failed.clone() {
                // Failure flush: every queued operation answers with
                // the poisoning error; CLOSE still succeeds.
                let Some(op) = self.queue.pop_front() else {
                    return false;
                };
                if let (ReplyMode::Wire { session }, SessionOp::Close { id }) = (self.reply, &op) {
                    io.reply_op(&Response::Closed { id: *id, session });
                    return true;
                }
                io.reply_op(&Response::Error {
                    id: op.id(),
                    code,
                    detail,
                });
                continue;
            }
            if self.queue.is_empty() {
                return false;
            }
            let step = match self.body {
                Body::Stream(_) => self.step_stream(key, ctx, io),
                Body::Tree(_) => self.step_tree(key, ctx, io),
            };
            match step {
                Step::Done => {}
                Step::Parked => return false,
                Step::Remove => return true,
            }
        }
    }

    /// One drive step of a flat session's front operation.
    fn step_stream(&mut self, key: SessionKey, ctx: &IoCtx, io: &mut ConnIo<'_>) -> Step {
        let ReplyMode::Wire { session } = self.reply else {
            unreachable!("flat one-shots never build sessions")
        };
        let op = self.queue.pop_front().expect("drive checked non-empty");
        let request = match op {
            SessionOp::Close { id } => {
                io.reply_op(&Response::Closed { id, session });
                return Step::Remove;
            }
            SessionOp::Absorb { id, bytes, target } if bytes.is_empty() => {
                // Nothing to absorb (an empty chunk with the framing
                // prefix already consumed): acknowledge inline without
                // a service round-trip.
                let _ = (id, target);
                io.reply_op(&Response::Absorbed { id, session });
                return Step::Done;
            }
            SessionOp::Absorb { id, bytes, target } => {
                let Body::Stream(stream) = &mut self.body else {
                    unreachable!("step_stream drives stream bodies")
                };
                let state = stream.state.take().expect("state parked while idle");
                self.queue.push_front(SessionOp::Absorb {
                    id,
                    bytes: Vec::new(),
                    target,
                });
                StreamRequest::absorb(state, bytes)
            }
            SessionOp::Finalize {
                id,
                bytes,
                output_len,
            } => {
                let Body::Stream(stream) = &mut self.body else {
                    unreachable!("step_stream drives stream bodies")
                };
                let state = stream.state.take().expect("state parked while idle");
                self.queue.push_front(SessionOp::Finalize {
                    id,
                    bytes: Vec::new(),
                    output_len,
                });
                StreamRequest::finalize(state, bytes, 0)
            }
            SessionOp::Squeeze { id, len } => {
                let Body::Stream(stream) = &mut self.body else {
                    unreachable!("step_stream drives stream bodies")
                };
                let state = stream.state.take().expect("state parked while idle");
                self.queue.push_front(SessionOp::Squeeze { id, len });
                StreamRequest::squeeze(state, len)
            }
        };
        let token = io.token;
        match ctx.service.try_submit_stream_as(token, request) {
            Ok(ticket) => {
                self.busy = true;
                let shared = Arc::clone(&ctx.shared);
                ticket.on_complete(move |completion| {
                    shared.post_event(SessionEvent {
                        token,
                        key,
                        payload: EventPayload::Stream(completion),
                    });
                });
                Step::Parked
            }
            Err((request, error)) => {
                // Reclaim the state (and the framed bytes) so the
                // parked operation can resubmit identically.
                let StreamRequest { state, absorb, .. } = request;
                let Body::Stream(stream) = &mut self.body else {
                    unreachable!("step_stream drives stream bodies")
                };
                stream.state = Some(state);
                match self.queue.front_mut().expect("op pushed back") {
                    SessionOp::Absorb { bytes, .. } | SessionOp::Finalize { bytes, .. } => {
                        *bytes = absorb;
                    }
                    _ => {}
                }
                if matches!(error, SubmitError::ShuttingDown) {
                    self.fail(ErrorCode::ShuttingDown, "daemon is draining".into(), io)
                } else {
                    Step::Parked
                }
            }
        }
    }

    /// One drive step of a tree session's front operation.
    fn step_tree(&mut self, key: SessionKey, ctx: &IoCtx, io: &mut ConnIo<'_>) -> Step {
        let token = io.token;
        let Body::Tree(tree) = &mut self.body else {
            unreachable!("step_tree drives tree bodies")
        };
        // Keep the leaf window full whatever the front operation is.
        if let Err((code, detail)) = pump_leaves(tree, key, ctx, token) {
            return self.fail(code, detail, io);
        }
        match self.queue.front().expect("drive checked non-empty") {
            SessionOp::Absorb { target, .. } => {
                if tree.leaves.len() < *target {
                    return Step::Parked;
                }
                let Some(SessionOp::Absorb { id, .. }) = self.queue.pop_front() else {
                    unreachable!("front just matched")
                };
                if let ReplyMode::Wire { session } = self.reply {
                    io.reply_op(&Response::Absorbed { id, session });
                }
                Step::Done
            }
            SessionOp::Finalize { output_len, .. } => {
                if !tree.blocks.is_empty() || tree.outstanding > 0 {
                    return Step::Parked;
                }
                // Every leaf digest is in: one flat root request binds
                // them under the mode's cSHAKE framing.
                let output_len = *output_len;
                let mut message = tree.mode.root_prefix(&tree.customization);
                for leaf in &tree.leaves {
                    message.extend_from_slice(leaf.as_ref().expect("no outstanding leaves"));
                }
                message.extend_from_slice(
                    &tree.mode.root_suffix(tree.leaves.len() as u64, output_len),
                );
                let mut request = HashRequest::new(message, tree.mode.root_params(), output_len);
                request.deadline = tree.deadline;
                match ctx.service.try_submit_as(token, request) {
                    Ok(ticket) => {
                        self.busy = true;
                        let shared = Arc::clone(&ctx.shared);
                        ticket.on_complete(move |completion| {
                            shared.post_event(SessionEvent {
                                token,
                                key,
                                payload: EventPayload::Root(completion),
                            });
                        });
                        Step::Parked
                    }
                    Err((_, SubmitError::ShuttingDown)) => {
                        self.fail(ErrorCode::ShuttingDown, "daemon is draining".into(), io)
                    }
                    // Backpressure: the root message is rebuilt on the
                    // next sweep's retry (the leaf digests stay put).
                    Err(_) => Step::Parked,
                }
            }
            SessionOp::Squeeze { .. } => {
                let Some(SessionOp::Squeeze { id, len }) = self.queue.pop_front() else {
                    unreachable!("front just matched")
                };
                let output = tree.output.as_ref().expect("finalized before squeeze");
                let bytes = output[tree.squeezed..tree.squeezed + len].to_vec();
                tree.squeezed += len;
                let ReplyMode::Wire { session } = self.reply else {
                    unreachable!("implicit sessions never squeeze")
                };
                io.reply_op(&Response::Squeezed { id, session, bytes });
                Step::Done
            }
            SessionOp::Close { .. } => {
                let Some(SessionOp::Close { id }) = self.queue.pop_front() else {
                    unreachable!("front just matched")
                };
                let ReplyMode::Wire { session } = self.reply else {
                    unreachable!("implicit sessions never close")
                };
                io.reply_op(&Response::Closed { id, session });
                Step::Remove
            }
        }
    }

    /// A streaming-lane completion for this session's front operation.
    fn on_stream_done(&mut self, completion: StreamCompletion, io: &mut ConnIo<'_>) -> bool {
        self.busy = false;
        match completion.result {
            Ok(output) => {
                let Body::Stream(stream) = &mut self.body else {
                    unreachable!("stream events only reach stream bodies")
                };
                stream.state = Some(output.state);
                let op = self.queue.pop_front().expect("front op awaited this");
                let ReplyMode::Wire { session } = self.reply else {
                    unreachable!("flat one-shots never build sessions")
                };
                let response = match op {
                    SessionOp::Absorb { id, .. } => Response::Absorbed { id, session },
                    SessionOp::Finalize { id, .. } => Response::Finalized { id, session },
                    SessionOp::Squeeze { id, .. } => Response::Squeezed {
                        id,
                        session,
                        bytes: output.output,
                    },
                    SessionOp::Close { .. } => unreachable!("CLOSE never submits"),
                };
                io.reply_op(&response);
                self.last_touch = Instant::now();
                false
            }
            Err(error) => {
                let (code, detail) = request_error_reply(&error);
                matches!(
                    self.fail(code, format!("{detail}; session state lost"), io),
                    Step::Remove
                )
            }
        }
    }

    /// One leaf completion.
    fn on_leaf(&mut self, index: usize, completion: Completion, io: &mut ConnIo<'_>) -> bool {
        let Body::Tree(tree) = &mut self.body else {
            return false;
        };
        tree.outstanding -= 1;
        self.last_touch = Instant::now();
        match completion.result {
            Ok(digest) => {
                tree.leaves[index] = Some(digest);
                false
            }
            Err(error) => {
                let (code, detail) = request_error_reply(&error);
                matches!(
                    self.fail(code, format!("tree leaf {index} failed: {detail}"), io),
                    Step::Remove
                )
            }
        }
    }

    /// The root completion: the tree is done.
    fn on_root(&mut self, completion: Completion, io: &mut ConnIo<'_>) -> bool {
        self.busy = false;
        match completion.result {
            Ok(bytes) => {
                let op = self
                    .queue
                    .pop_front()
                    .expect("finalize op awaited the root");
                self.last_touch = Instant::now();
                match self.reply {
                    ReplyMode::Wire { session } => {
                        let Body::Tree(tree) = &mut self.body else {
                            unreachable!("root events only reach tree bodies")
                        };
                        tree.output = Some(bytes);
                        io.reply_op(&Response::Finalized {
                            id: op.id(),
                            session,
                        });
                        false
                    }
                    ReplyMode::OneShot => {
                        io.reply_op(&Response::Digest { id: op.id(), bytes });
                        true
                    }
                }
            }
            Err(error) => {
                let (code, detail) = request_error_reply(&error);
                matches!(
                    self.fail(code, format!("tree root failed: {detail}"), io),
                    Step::Remove
                )
            }
        }
    }

    /// Whether the session holds work the reaper must not interrupt.
    fn active(&self) -> bool {
        if self.busy || !self.queue.is_empty() {
            return true;
        }
        match &self.body {
            Body::Tree(tree) => tree.outstanding > 0 || !tree.blocks.is_empty(),
            Body::Stream(_) => false,
        }
    }
}

/// Submits leaves off the block queue until the window fills or the
/// service pushes back.
fn pump_leaves(
    tree: &mut TreeBody,
    key: SessionKey,
    ctx: &IoCtx,
    token: u64,
) -> Result<(), (ErrorCode, String)> {
    while tree.outstanding < LEAF_WINDOW {
        let Some(block) = tree.blocks.pop_front() else {
            break;
        };
        let mut request = HashRequest::new(block, tree.mode.leaf_params(), tree.mode.leaf_len());
        request.deadline = tree.deadline;
        match ctx.service.try_submit_as(token, request) {
            Ok(ticket) => {
                let index = tree.leaves.len();
                tree.leaves.push(None);
                tree.outstanding += 1;
                let shared = Arc::clone(&ctx.shared);
                ticket.on_complete(move |completion| {
                    shared.post_event(SessionEvent {
                        token,
                        key,
                        payload: EventPayload::Leaf { index, completion },
                    });
                });
            }
            Err((request, SubmitError::ShuttingDown)) => {
                tree.blocks.push_front(request.message);
                return Err((ErrorCode::ShuttingDown, "daemon is draining".into()));
            }
            Err((request, _backpressure)) => {
                // Park the block; the next sweep retries.
                tree.blocks.push_front(request.message);
                break;
            }
        }
    }
    Ok(())
}

/// One connection's sessions: the client-numbered wire table plus the
/// implicit table backing one-shot tree requests.
#[derive(Debug, Default)]
pub(crate) struct SessionTable {
    wire: HashMap<u64, Session>,
    implicit: HashMap<u64, Session>,
    next_implicit: u64,
}

impl SessionTable {
    pub fn new() -> Self {
        Self::default()
    }

    fn get_mut(&mut self, key: SessionKey) -> Option<&mut Session> {
        match key {
            SessionKey::Wire(session) => self.wire.get_mut(&session),
            SessionKey::Implicit(index) => self.implicit.get_mut(&index),
        }
    }

    fn remove(&mut self, key: SessionKey) {
        match key {
            SessionKey::Wire(session) => self.wire.remove(&session),
            SessionKey::Implicit(index) => self.implicit.remove(&index),
        };
    }

    /// Drives one session, removing it if it finished.
    fn drive_key(&mut self, key: SessionKey, ctx: &IoCtx, io: &mut ConnIo<'_>) {
        let Some(session) = self.get_mut(key) else {
            return;
        };
        if session.drive(key, ctx, io) {
            self.remove(key);
        }
    }

    /// An OPEN frame: creates the session (or answers why not).
    ///
    /// # Errors
    ///
    /// [`ErrorCode::BadSession`] (fatal) if the id is already open.
    pub fn open(
        &mut self,
        id: u64,
        session: u64,
        algorithm: WireAlgorithm,
        params: &AlgorithmParams,
        ctx: &IoCtx,
        io: &mut ConnIo<'_>,
    ) -> Result<(), Violation> {
        if self.wire.contains_key(&session) {
            return Err(Violation::bad_session(format!(
                "session {session} is already open"
            )));
        }
        if self.wire.len() >= ctx.config.max_sessions {
            io.reply(&Response::Error {
                id,
                code: ErrorCode::SessionLimit,
                detail: format!(
                    "connection session cap of {} reached",
                    ctx.config.max_sessions
                ),
            });
            return Ok(());
        }
        let body = match plan::plan(algorithm, params) {
            ServePlan::Flat(flat) => Body::Stream(StreamBody {
                state: Some(Box::new(SpongeState::new(flat.params))),
                prefix: Some(flat.prefix),
                tuple: flat.tuple,
            }),
            ServePlan::Tree(tree) => Body::Tree(TreeBody::new(tree.mode, tree.customization, None)),
        };
        self.wire.insert(
            session,
            Session {
                algorithm,
                reply: ReplyMode::Wire { session },
                last_touch: Instant::now(),
                queue: VecDeque::new(),
                busy: false,
                failed: None,
                phase: Phase::Absorbing,
                body,
            },
        );
        io.reply(&Response::Opened { id, session });
        Ok(())
    }

    /// An ABSORB frame: queues the chunk (framed for its algorithm) and
    /// drives the session.
    ///
    /// # Errors
    ///
    /// Fatal violations: an unknown session, or absorbing after
    /// FINALIZE.
    pub fn absorb(
        &mut self,
        id: u64,
        session: u64,
        chunk: Vec<u8>,
        ctx: &IoCtx,
        io: &mut ConnIo<'_>,
    ) -> Result<(), Violation> {
        let Some(entry) = self.wire.get_mut(&session) else {
            return Err(unknown_session("ABSORB", session));
        };
        entry.last_touch = Instant::now();
        if let Some((code, detail)) = entry.failed.clone() {
            io.reply(&Response::Error { id, code, detail });
            return Ok(());
        }
        if !matches!(entry.phase, Phase::Absorbing) {
            return Err(Violation::state(format!(
                "ABSORB on session {session} after FINALIZE"
            )));
        }
        match &mut entry.body {
            Body::Stream(stream) => {
                let mut bytes = stream.prefix.take().unwrap_or_default();
                if stream.tuple {
                    bytes.extend_from_slice(&tuple_entry_prefix(chunk.len()));
                }
                bytes.extend_from_slice(&chunk);
                entry.queue.push_back(SessionOp::Absorb {
                    id,
                    bytes,
                    target: 0,
                });
            }
            Body::Tree(tree) => {
                let projected =
                    tree.produced + (tree.buffer.len() + chunk.len()) / tree.mode.block_size();
                if projected > ctx.config.max_tree_leaves {
                    let detail = format!(
                        "tree session exceeds the {}-leaf cap",
                        ctx.config.max_tree_leaves
                    );
                    entry.failed = Some((ErrorCode::SessionLimit, detail.clone()));
                    io.reply(&Response::Error {
                        id,
                        code: ErrorCode::SessionLimit,
                        detail,
                    });
                    return Ok(());
                }
                tree.ingest(&chunk);
                entry.queue.push_back(SessionOp::Absorb {
                    id,
                    bytes: Vec::new(),
                    target: tree.produced,
                });
            }
        }
        io.in_flight.fetch_add(1, Ordering::AcqRel);
        self.drive_key(SessionKey::Wire(session), ctx, io);
        Ok(())
    }

    /// A FINALIZE frame: validates the declared output length, arms the
    /// squeeze budget, queues the finalizing operation.
    ///
    /// # Errors
    ///
    /// Fatal violations: an unknown session, a second FINALIZE, or an
    /// output length the algorithm does not allow.
    pub fn finalize(
        &mut self,
        id: u64,
        session: u64,
        output_len: usize,
        ctx: &IoCtx,
        io: &mut ConnIo<'_>,
    ) -> Result<(), Violation> {
        let Some(entry) = self.wire.get_mut(&session) else {
            return Err(unknown_session("FINALIZE", session));
        };
        entry.last_touch = Instant::now();
        if let Some((code, detail)) = entry.failed.clone() {
            io.reply(&Response::Error { id, code, detail });
            return Ok(());
        }
        if !matches!(entry.phase, Phase::Absorbing) {
            return Err(Violation::state(format!(
                "second FINALIZE on session {session}"
            )));
        }
        let budget = match plan::finalize_budget(entry.algorithm, output_len) {
            Ok(budget) => budget,
            Err(reason) => {
                return Err(Violation::state(format!(
                    "FINALIZE output length {output_len} on session {session}: {reason}"
                )))
            }
        };
        entry.phase = Phase::Squeezing { remaining: budget };
        match &mut entry.body {
            Body::Stream(stream) => {
                let mut bytes = stream.prefix.take().unwrap_or_default();
                bytes.extend_from_slice(&plan::finalize_suffix(entry.algorithm, output_len));
                entry.queue.push_back(SessionOp::Finalize {
                    id,
                    bytes,
                    output_len,
                });
            }
            Body::Tree(tree) => {
                let projected = tree.produced + usize::from(!tree.buffer.is_empty());
                if projected > ctx.config.max_tree_leaves {
                    let detail = format!(
                        "tree session exceeds the {}-leaf cap",
                        ctx.config.max_tree_leaves
                    );
                    entry.failed = Some((ErrorCode::SessionLimit, detail.clone()));
                    io.reply(&Response::Error {
                        id,
                        code: ErrorCode::SessionLimit,
                        detail,
                    });
                    return Ok(());
                }
                tree.flush_tail();
                tree.output_len = output_len;
                entry.queue.push_back(SessionOp::Finalize {
                    id,
                    bytes: Vec::new(),
                    output_len,
                });
            }
        }
        io.in_flight.fetch_add(1, Ordering::AcqRel);
        self.drive_key(SessionKey::Wire(session), ctx, io);
        Ok(())
    }

    /// A SQUEEZE frame: spends the budget and queues the operation.
    ///
    /// # Errors
    ///
    /// Fatal violations: an unknown session, squeezing before FINALIZE,
    /// or past the declared output length.
    pub fn squeeze(
        &mut self,
        id: u64,
        session: u64,
        len: usize,
        ctx: &IoCtx,
        io: &mut ConnIo<'_>,
    ) -> Result<(), Violation> {
        let Some(entry) = self.wire.get_mut(&session) else {
            return Err(unknown_session("SQUEEZE", session));
        };
        entry.last_touch = Instant::now();
        if let Some((code, detail)) = entry.failed.clone() {
            io.reply(&Response::Error { id, code, detail });
            return Ok(());
        }
        let Phase::Squeezing { remaining } = &mut entry.phase else {
            return Err(Violation::state(format!(
                "SQUEEZE on session {session} before FINALIZE"
            )));
        };
        if let Some(budget) = remaining {
            if len > *budget {
                return Err(Violation::state(format!(
                    "SQUEEZE of {len} bytes exceeds the {budget} remaining of session \
                     {session}'s declared output"
                )));
            }
            *budget -= len;
        }
        entry.queue.push_back(SessionOp::Squeeze { id, len });
        io.in_flight.fetch_add(1, Ordering::AcqRel);
        self.drive_key(SessionKey::Wire(session), ctx, io);
        Ok(())
    }

    /// A CLOSE frame: queues the terminal operation (it waits its turn
    /// behind queued work, always succeeds, and frees the id).
    ///
    /// # Errors
    ///
    /// [`ErrorCode::BadSession`] (fatal) for an unknown session.
    pub fn close(
        &mut self,
        id: u64,
        session: u64,
        ctx: &IoCtx,
        io: &mut ConnIo<'_>,
    ) -> Result<(), Violation> {
        let Some(entry) = self.wire.get_mut(&session) else {
            return Err(unknown_session("CLOSE", session));
        };
        entry.last_touch = Instant::now();
        entry.queue.push_back(SessionOp::Close { id });
        io.in_flight.fetch_add(1, Ordering::AcqRel);
        self.drive_key(SessionKey::Wire(session), ctx, io);
        Ok(())
    }

    /// A one-shot HASH of a tree algorithm: an implicit session that
    /// chunks the payload, dispatches the leaves through the batch
    /// lane, and answers with a single DIGEST frame. The caller has
    /// already taken the request's in-flight slot.
    #[allow(clippy::too_many_arguments)] // mirrors the decoded HASH frame fields
    pub fn one_shot_tree(
        &mut self,
        id: u64,
        algorithm: WireAlgorithm,
        params: &AlgorithmParams,
        output_len: usize,
        deadline: Option<Duration>,
        payload: &[u8],
        ctx: &IoCtx,
        io: &mut ConnIo<'_>,
    ) {
        let ServePlan::Tree(tree_plan) = plan::plan(algorithm, params) else {
            unreachable!("one_shot_tree is only called for tree algorithms")
        };
        if tree_plan.mode.leaf_count(payload.len()) > ctx.config.max_tree_leaves {
            io.reply_op(&Response::Error {
                id,
                code: ErrorCode::SessionLimit,
                detail: format!(
                    "message needs {} leaves, over the {}-leaf cap",
                    tree_plan.mode.leaf_count(payload.len()),
                    ctx.config.max_tree_leaves
                ),
            });
            return;
        }
        let mut tree = TreeBody::new(tree_plan.mode, tree_plan.customization, deadline);
        tree.ingest(payload);
        tree.flush_tail();
        tree.output_len = output_len;
        let produced = tree.produced;
        let key = SessionKey::Implicit(self.next_implicit);
        self.next_implicit += 1;
        let session = Session {
            algorithm,
            reply: ReplyMode::OneShot,
            last_touch: Instant::now(),
            queue: VecDeque::from([
                SessionOp::Absorb {
                    id,
                    bytes: Vec::new(),
                    target: produced,
                },
                SessionOp::Finalize {
                    id,
                    bytes: Vec::new(),
                    output_len,
                },
            ]),
            busy: false,
            failed: None,
            phase: Phase::Squeezing { remaining: Some(0) },
            body: Body::Tree(tree),
        };
        let SessionKey::Implicit(index) = key else {
            unreachable!("just built")
        };
        self.implicit.insert(index, session);
        self.drive_key(key, ctx, io);
    }

    /// Routes a service completion to its session and drives it.
    pub fn on_event(
        &mut self,
        key: SessionKey,
        payload: EventPayload,
        ctx: &IoCtx,
        io: &mut ConnIo<'_>,
    ) {
        let Some(session) = self.get_mut(key) else {
            // The session was closed or reaped with work in flight;
            // the completion has nowhere to go.
            return;
        };
        let remove = match payload {
            EventPayload::Stream(completion) => session.on_stream_done(completion, io),
            EventPayload::Leaf { index, completion } => session.on_leaf(index, completion, io),
            EventPayload::Root(completion) => session.on_root(completion, io),
        };
        if remove {
            self.remove(key);
            return;
        }
        self.drive_key(key, ctx, io);
    }

    /// One sweep tick: retries parked operations and reaps idle wire
    /// sessions (silently — later frames for a reaped id answer
    /// `BAD_SESSION`).
    pub fn tick(&mut self, now: Instant, ctx: &IoCtx, io: &mut ConnIo<'_>) {
        if self.wire.is_empty() && self.implicit.is_empty() {
            return;
        }
        let keys: Vec<SessionKey> = self
            .wire
            .keys()
            .map(|&session| SessionKey::Wire(session))
            .chain(
                self.implicit
                    .keys()
                    .map(|&index| SessionKey::Implicit(index)),
            )
            .collect();
        for key in keys {
            self.drive_key(key, ctx, io);
        }
        let timeout = ctx.config.session_idle_timeout;
        self.wire
            .retain(|_, session| session.active() || now < session.last_touch + timeout);
    }
}

fn unknown_session(frame: &str, session: u64) -> Violation {
    Violation::bad_session(format!(
        "{frame} on session {session}, which this connection does not hold"
    ))
}
