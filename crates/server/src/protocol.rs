//! The versioned binary wire protocol of the remote hashing daemon.
//!
//! Every message travels as one **frame**: a little-endian `u32` length
//! prefix followed by that many body bytes. A body always starts with
//! the same header — [`MAGIC`], [`VERSION`], a kind byte, and a caller
//! chosen `u64` request id echoed verbatim in the response — followed by
//! a kind-specific payload:
//!
//! | kind | direction | payload |
//! |---|---|---|
//! | `0x01` HASH | request | algorithm `u8`, output len `u32`, deadline µs `u64` (0 = none), params block, payload len `u32`, payload bytes |
//! | `0x02` STATS | request | empty |
//! | `0x03` OPEN | request | session `u64`, algorithm `u8`, params block |
//! | `0x04` ABSORB | request | session `u64`, chunk len `u32`, chunk bytes |
//! | `0x05` FINALIZE | request | session `u64`, output len `u32` (0 = unbounded XOF) |
//! | `0x06` SQUEEZE | request | session `u64`, len `u32` |
//! | `0x07` CLOSE | request | session `u64` |
//! | `0x08` KEM_KEYGEN | request | set `u8`, deadline µs `u64`, seed d (32 B), seed z (32 B) |
//! | `0x09` KEM_ENCAPS | request | set `u8`, deadline µs `u64`, randomness m (32 B), ek len `u32`, ek bytes |
//! | `0x0A` KEM_DECAPS | request | set `u8`, deadline µs `u64`, dk len `u32`, dk bytes, ct len `u32`, ct bytes |
//! | `0x81` DIGEST | response | digest len `u32`, digest bytes |
//! | `0x82` ERROR | response | code `u8`, detail len `u16`, UTF-8 detail |
//! | `0x83` STATS | response | fixed-width [`MetricsSnapshot`] encoding |
//! | `0x84` OPENED | response | session `u64` |
//! | `0x85` ABSORBED | response | session `u64` |
//! | `0x86` FINALIZED | response | session `u64` |
//! | `0x87` SQUEEZED | response | session `u64`, len `u32`, output bytes |
//! | `0x88` CLOSED | response | session `u64` |
//! | `0x89` KEM_KEYS | response | ek len `u32`, ek bytes, dk len `u32`, dk bytes |
//! | `0x8A` KEM_CIPHERTEXT | response | ct len `u32`, ct bytes, shared secret (32 B) |
//! | `0x8B` KEM_SECRET | response | shared secret (32 B) |
//!
//! The KEM kinds serve FIPS 203 ML-KEM under a one-byte **parameter-set
//! id** ([`KemParameterSet`]: 1 = ML-KEM-512, 2 = ML-KEM-768,
//! 3 = ML-KEM-1024). The wire API is deterministic — key generation
//! carries its `(d, z)` seeds and encapsulation its randomness `m` — so
//! results are reproducible and the caller owns randomness. A key or
//! ciphertext of the wrong shape for its set is a *request*-level
//! [`ErrorCode::BadKey`] (the connection survives); an unknown set id is
//! a fatal [`ProtocolError::UnknownParameterSet`].
//!
//! The **params block** (HASH and OPEN) carries the SP 800-185
//! parameters: function name len `u32` + bytes, key len `u32` + bytes,
//! customization len `u32` + bytes, block size `u32`. Every field an
//! algorithm does not use must be empty/zero — see
//! [`AlgorithmParams::validate`].
//!
//! Streaming sessions follow a strict per-session state machine,
//! `OPEN → ABSORB* → FINALIZE → SQUEEZE* → CLOSE`, with session ids
//! chosen by the client and scoped to the connection. Out-of-order
//! session frames are answered with a typed error
//! ([`ErrorCode::SessionState`] / [`ErrorCode::BadSession`]) and close
//! the offending connection; quota errors
//! ([`ErrorCode::SessionLimit`]) are survivable.
//!
//! All integers are little-endian. Decoding is **strict**: unknown
//! magic, version, kind, algorithm or error code, truncated or trailing
//! bytes, and over-limit lengths are all typed [`ProtocolError`]s — a
//! server treats any of them as a fatal protocol violation for that
//! connection (never for the daemon), and a client surfaces them to the
//! caller.

use krv_service::{MetricsSnapshot, QuantileSummary};
use krv_sha3::SpongeParams;
use std::io::{self, Read, Write};
use std::time::Duration;

/// The four magic bytes opening every frame body (`b"KRVH"`).
pub const MAGIC: [u8; 4] = *b"KRVH";

/// Protocol version this implementation speaks. Version 2 grew the
/// STATS reply by the tier counters (`native_served`,
/// `simulator_served`, `mirrored`, `mirror_mismatches`); version 3
/// added the fair-share `throttled` counter; version 4 added streaming
/// sessions (OPEN/ABSORB/FINALIZE/SQUEEZE/CLOSE), the SP 800-185
/// algorithm ids with their params block, and the stream counters in
/// the STATS reply; version 5 added the ML-KEM kinds
/// (KEM_KEYGEN/KEM_ENCAPS/KEM_DECAPS), the `BadKey` error code and the
/// KEM counters in the STATS reply. Older peers are rejected rather
/// than mis-decoded.
pub const VERSION: u8 = 5;

/// Fixed header length of every frame body: magic, version, kind, id.
pub const HEADER_LEN: usize = 4 + 1 + 1 + 8;

/// The protocol's frame-size limit: the largest frame body either side
/// accepts, **shared by client and server** (both sides read with this
/// bound and size their requests against it). A larger declared length
/// is rejected before any allocation. [`MAX_CHUNK_LEN`] and
/// [`MAX_OUTPUT_LEN`] are derived to always fit inside it.
pub const DEFAULT_MAX_FRAME: usize = 1 << 20;

/// The largest ABSORB chunk the protocol carries: [`DEFAULT_MAX_FRAME`]
/// minus the frame header, session id and length field (rounded down to
/// a comfortable 64-byte margin), so a maximal chunk's frame never
/// trips the frame limit. A larger declared chunk is rejected with the
/// typed [`ProtocolError::OversizedChunk`] — by the client before it
/// writes, and by the server's strict decoder if a client writes one
/// anyway. Streaming a longer message is what multiple ABSORB frames
/// are for.
pub const MAX_CHUNK_LEN: usize = DEFAULT_MAX_FRAME - 64;

/// Upper bound on the requested output length (64 KiB): a HASH
/// request's digest, a FINALIZE's declared total, and each SQUEEZE's
/// slice. Far above any digest, far below anything that could amplify
/// a small request into an unbounded response.
pub const MAX_OUTPUT_LEN: usize = 1 << 16;

/// Upper bound on each SP 800-185 parameter string (function name, key,
/// customization) in a params block.
pub const MAX_PARAM_LEN: usize = 1 << 16;

const KIND_HASH: u8 = 0x01;
const KIND_STATS: u8 = 0x02;
const KIND_OPEN: u8 = 0x03;
const KIND_ABSORB: u8 = 0x04;
const KIND_FINALIZE: u8 = 0x05;
const KIND_SQUEEZE: u8 = 0x06;
const KIND_CLOSE: u8 = 0x07;
const KIND_KEM_KEYGEN: u8 = 0x08;
const KIND_KEM_ENCAPS: u8 = 0x09;
const KIND_KEM_DECAPS: u8 = 0x0A;
const KIND_DIGEST: u8 = 0x81;
const KIND_ERROR: u8 = 0x82;
const KIND_STATS_REPLY: u8 = 0x83;
const KIND_OPENED: u8 = 0x84;
const KIND_ABSORBED: u8 = 0x85;
const KIND_FINALIZED: u8 = 0x86;
const KIND_SQUEEZED: u8 = 0x87;
const KIND_CLOSED: u8 = 0x88;
const KIND_KEM_KEYS: u8 = 0x89;
const KIND_KEM_CIPHERTEXT: u8 = 0x8A;
const KIND_KEM_SECRET: u8 = 0x8B;

/// Why a frame failed strict decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtocolError {
    /// The body ended before a declared field ended.
    Truncated {
        /// Bytes the decoder needed next.
        needed: usize,
        /// Bytes that remained.
        got: usize,
    },
    /// The frame does not start with [`MAGIC`].
    BadMagic {
        /// The four bytes observed instead.
        got: [u8; 4],
    },
    /// A version this implementation does not speak.
    BadVersion {
        /// The version byte observed.
        got: u8,
    },
    /// A kind byte outside the protocol.
    UnknownKind {
        /// The kind byte observed.
        got: u8,
    },
    /// A valid kind travelling in the wrong direction (a response kind
    /// decoded as a request, or vice versa).
    UnexpectedKind {
        /// The kind byte observed.
        got: u8,
    },
    /// An algorithm id outside [`WireAlgorithm::ALL`].
    UnknownAlgorithm {
        /// The algorithm byte observed.
        got: u8,
    },
    /// An error code outside [`ErrorCode`].
    UnknownErrorCode {
        /// The code byte observed.
        got: u8,
    },
    /// A KEM parameter-set id outside [`KemParameterSet::ALL`].
    UnknownParameterSet {
        /// The set byte observed.
        got: u8,
    },
    /// A frame whose declared length exceeds the negotiated limit.
    OversizedFrame {
        /// Declared body length.
        len: usize,
        /// The limit in force.
        max: usize,
    },
    /// An ABSORB chunk above [`MAX_CHUNK_LEN`].
    OversizedChunk {
        /// Declared chunk length.
        len: usize,
    },
    /// A requested output length above [`MAX_OUTPUT_LEN`].
    OversizedOutput {
        /// Requested output length.
        len: usize,
    },
    /// A fixed-output hash function requested with the wrong length.
    WrongOutputLen {
        /// The algorithm requested.
        algorithm: WireAlgorithm,
        /// Its fixed digest length.
        expected: usize,
        /// The length requested instead.
        got: usize,
    },
    /// A params block that is invalid for its algorithm (a key on a
    /// keyless function, a missing block size, an over-long string, …).
    BadParams {
        /// The algorithm the params were for.
        algorithm: WireAlgorithm,
        /// What was wrong.
        reason: &'static str,
    },
    /// A TupleHash one-shot payload whose entry framing (`u32` length
    /// before each entry) does not cover the payload exactly.
    BadTuplePayload,
    /// Bytes left over after the last declared field.
    TrailingBytes {
        /// How many bytes remained.
        extra: usize,
    },
    /// An error detail that is not valid UTF-8.
    BadUtf8,
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtocolError::Truncated { needed, got } => {
                write!(f, "truncated frame: needed {needed} more bytes, got {got}")
            }
            ProtocolError::BadMagic { got } => write!(f, "bad magic {got:02x?}"),
            ProtocolError::BadVersion { got } => write!(f, "unsupported protocol version {got}"),
            ProtocolError::UnknownKind { got } => write!(f, "unknown frame kind {got:#04x}"),
            ProtocolError::UnexpectedKind { got } => {
                write!(f, "frame kind {got:#04x} travelling in the wrong direction")
            }
            ProtocolError::UnknownAlgorithm { got } => write!(f, "unknown algorithm id {got}"),
            ProtocolError::UnknownErrorCode { got } => write!(f, "unknown error code {got}"),
            ProtocolError::UnknownParameterSet { got } => {
                write!(f, "unknown ML-KEM parameter-set id {got}")
            }
            ProtocolError::OversizedFrame { len, max } => {
                write!(f, "frame of {len} bytes exceeds the {max}-byte limit")
            }
            ProtocolError::OversizedChunk { len } => {
                write!(
                    f,
                    "ABSORB chunk of {len} bytes exceeds the {MAX_CHUNK_LEN}-byte limit"
                )
            }
            ProtocolError::OversizedOutput { len } => {
                write!(
                    f,
                    "output length {len} exceeds the {MAX_OUTPUT_LEN}-byte limit"
                )
            }
            ProtocolError::WrongOutputLen {
                algorithm,
                expected,
                got,
            } => write!(
                f,
                "{} produces {expected} bytes, request asked for {got}",
                algorithm.name()
            ),
            ProtocolError::BadParams { algorithm, reason } => {
                write!(f, "bad params for {}: {reason}", algorithm.name())
            }
            ProtocolError::BadTuplePayload => {
                write!(f, "TupleHash payload entry framing does not add up")
            }
            ProtocolError::TrailingBytes { extra } => {
                write!(f, "{extra} trailing bytes after the last field")
            }
            ProtocolError::BadUtf8 => write!(f, "error detail is not valid UTF-8"),
        }
    }
}

impl std::error::Error for ProtocolError {}

/// The wire algorithms: the six FIPS 202 functions plus the SP 800-185
/// derived functions and the KRV tree-hash, as one-byte wire ids.
///
/// Ids are part of the protocol: they never change meaning across
/// versions, and every id round-trips through [`Self::from_id`]. Ids
/// `7..=15` (the SP 800-185 family) carry their parameters — function
/// name, key, customization, block size — in the request's params
/// block; see [`AlgorithmParams`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum WireAlgorithm {
    /// SHA3-224, id 1.
    Sha3_224 = 1,
    /// SHA3-256, id 2.
    Sha3_256 = 2,
    /// SHA3-384, id 3.
    Sha3_384 = 3,
    /// SHA3-512, id 4.
    Sha3_512 = 4,
    /// SHAKE128, id 5.
    Shake128 = 5,
    /// SHAKE256, id 6.
    Shake256 = 6,
    /// cSHAKE128 (SP 800-185 §3), id 7. Params: function name `N`,
    /// customization `S`. Both empty degenerates to SHAKE128 (§3.3).
    CShake128 = 7,
    /// cSHAKE256 (SP 800-185 §3), id 8.
    CShake256 = 8,
    /// KMAC128 (SP 800-185 §4), id 9. Params: key `K`, customization
    /// `S`. Output length 0 selects the KMACXOF variant.
    Kmac128 = 9,
    /// KMAC256 (SP 800-185 §4), id 10.
    Kmac256 = 10,
    /// TupleHash128 (SP 800-185 §5), id 11. Params: customization `S`.
    /// A one-shot payload carries `u32`-length-framed entries; each
    /// streamed ABSORB chunk is one whole tuple entry.
    TupleHash128 = 11,
    /// TupleHash256 (SP 800-185 §5), id 12.
    TupleHash256 = 12,
    /// ParallelHash128 (SP 800-185 §6), id 13. Params: customization
    /// `S`, block size `B` (required nonzero). Served as a chunked
    /// tree: the leaves ride the service's batch lane.
    ParallelHash128 = 13,
    /// ParallelHash256 (SP 800-185 §6), id 14.
    ParallelHash256 = 14,
    /// The KRV tree-hash, id 15: 32-byte SHAKE256 leaves over fixed
    /// 4 KiB chunks, `cSHAKE256("KRV-TreeHash", S)` root. Params:
    /// customization `S`; block size 0 or 4096.
    TreeHash256 = 15,
}

impl WireAlgorithm {
    /// Every algorithm, in wire-id order.
    pub const ALL: [WireAlgorithm; 15] = [
        WireAlgorithm::Sha3_224,
        WireAlgorithm::Sha3_256,
        WireAlgorithm::Sha3_384,
        WireAlgorithm::Sha3_512,
        WireAlgorithm::Shake128,
        WireAlgorithm::Shake256,
        WireAlgorithm::CShake128,
        WireAlgorithm::CShake256,
        WireAlgorithm::Kmac128,
        WireAlgorithm::Kmac256,
        WireAlgorithm::TupleHash128,
        WireAlgorithm::TupleHash256,
        WireAlgorithm::ParallelHash128,
        WireAlgorithm::ParallelHash256,
        WireAlgorithm::TreeHash256,
    ];

    /// The six FIPS 202 ids (no params block fields in use).
    pub const FIPS: [WireAlgorithm; 6] = [
        WireAlgorithm::Sha3_224,
        WireAlgorithm::Sha3_256,
        WireAlgorithm::Sha3_384,
        WireAlgorithm::Sha3_512,
        WireAlgorithm::Shake128,
        WireAlgorithm::Shake256,
    ];

    /// The wire id.
    pub const fn id(self) -> u8 {
        self as u8
    }

    /// The algorithm of a wire id.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::UnknownAlgorithm`] for an id outside `1..=15`.
    pub fn from_id(id: u8) -> Result<Self, ProtocolError> {
        match id {
            1 => Ok(WireAlgorithm::Sha3_224),
            2 => Ok(WireAlgorithm::Sha3_256),
            3 => Ok(WireAlgorithm::Sha3_384),
            4 => Ok(WireAlgorithm::Sha3_512),
            5 => Ok(WireAlgorithm::Shake128),
            6 => Ok(WireAlgorithm::Shake256),
            7 => Ok(WireAlgorithm::CShake128),
            8 => Ok(WireAlgorithm::CShake256),
            9 => Ok(WireAlgorithm::Kmac128),
            10 => Ok(WireAlgorithm::Kmac256),
            11 => Ok(WireAlgorithm::TupleHash128),
            12 => Ok(WireAlgorithm::TupleHash256),
            13 => Ok(WireAlgorithm::ParallelHash128),
            14 => Ok(WireAlgorithm::ParallelHash256),
            15 => Ok(WireAlgorithm::TreeHash256),
            got => Err(ProtocolError::UnknownAlgorithm { got }),
        }
    }

    /// The function's display name.
    pub const fn name(self) -> &'static str {
        match self {
            WireAlgorithm::Sha3_224 => "SHA3-224",
            WireAlgorithm::Sha3_256 => "SHA3-256",
            WireAlgorithm::Sha3_384 => "SHA3-384",
            WireAlgorithm::Sha3_512 => "SHA3-512",
            WireAlgorithm::Shake128 => "SHAKE128",
            WireAlgorithm::Shake256 => "SHAKE256",
            WireAlgorithm::CShake128 => "cSHAKE128",
            WireAlgorithm::CShake256 => "cSHAKE256",
            WireAlgorithm::Kmac128 => "KMAC128",
            WireAlgorithm::Kmac256 => "KMAC256",
            WireAlgorithm::TupleHash128 => "TupleHash128",
            WireAlgorithm::TupleHash256 => "TupleHash256",
            WireAlgorithm::ParallelHash128 => "ParallelHash128",
            WireAlgorithm::ParallelHash256 => "ParallelHash256",
            WireAlgorithm::TreeHash256 => "KRV-TreeHash256",
        }
    }

    /// Whether this is one of the six FIPS 202 ids (params-free).
    pub const fn is_fips(self) -> bool {
        (self as u8) <= 6
    }

    /// Whether this algorithm is served as a chunked tree (leaves
    /// dispatched through the batch lane): ParallelHash and the KRV
    /// tree-hash.
    pub const fn is_tree(self) -> bool {
        matches!(
            self,
            WireAlgorithm::ParallelHash128
                | WireAlgorithm::ParallelHash256
                | WireAlgorithm::TreeHash256
        )
    }

    /// The security level in bits (the Keccak capacity is twice this).
    pub const fn security_bits(self) -> usize {
        match self {
            WireAlgorithm::Sha3_224 => 224,
            WireAlgorithm::Sha3_256 | WireAlgorithm::Sha3_384 | WireAlgorithm::Sha3_512 => {
                match self {
                    WireAlgorithm::Sha3_384 => 384,
                    WireAlgorithm::Sha3_512 => 512,
                    _ => 256,
                }
            }
            WireAlgorithm::Shake128
            | WireAlgorithm::CShake128
            | WireAlgorithm::Kmac128
            | WireAlgorithm::TupleHash128
            | WireAlgorithm::ParallelHash128 => 128,
            _ => 256,
        }
    }

    /// The sponge parameters the service hashes a FIPS 202 algorithm
    /// with.
    ///
    /// # Panics
    ///
    /// Panics for the SP 800-185 ids (`7..=15`): their sponge
    /// parameters depend on the request's [`AlgorithmParams`] (empty
    /// `N`/`S` degenerates cSHAKE to SHAKE), so the serving layer
    /// derives them from the params block instead.
    pub fn params(self) -> SpongeParams {
        match self {
            WireAlgorithm::Sha3_224 => SpongeParams::sha3(224),
            WireAlgorithm::Sha3_256 => SpongeParams::sha3(256),
            WireAlgorithm::Sha3_384 => SpongeParams::sha3(384),
            WireAlgorithm::Sha3_512 => SpongeParams::sha3(512),
            WireAlgorithm::Shake128 => SpongeParams::shake(128),
            WireAlgorithm::Shake256 => SpongeParams::shake(256),
            other => panic!(
                "{} derives its sponge from AlgorithmParams, not WireAlgorithm::params",
                other.name()
            ),
        }
    }

    /// The fixed digest length of the hash functions, `None` for the
    /// XOFs and the SP 800-185 family (whose output length travels in
    /// the request).
    pub const fn fixed_output_len(self) -> Option<usize> {
        match self {
            WireAlgorithm::Sha3_224 => Some(28),
            WireAlgorithm::Sha3_256 => Some(32),
            WireAlgorithm::Sha3_384 => Some(48),
            WireAlgorithm::Sha3_512 => Some(64),
            _ => None,
        }
    }
}

/// The ML-KEM parameter sets, as one-byte wire ids.
///
/// Ids are part of the protocol and never change meaning across
/// versions. Each id maps to the [`krv_kyber::KyberParams`] the service
/// lane runs the operation under.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum KemParameterSet {
    /// ML-KEM-512 (k = 2), id 1.
    MlKem512 = 1,
    /// ML-KEM-768 (k = 3), id 2.
    MlKem768 = 2,
    /// ML-KEM-1024 (k = 4), id 3.
    MlKem1024 = 3,
}

impl KemParameterSet {
    /// Every parameter set, in wire-id order.
    pub const ALL: [KemParameterSet; 3] = [
        KemParameterSet::MlKem512,
        KemParameterSet::MlKem768,
        KemParameterSet::MlKem1024,
    ];

    /// The wire id.
    pub const fn id(self) -> u8 {
        self as u8
    }

    /// The parameter set of a wire id.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::UnknownParameterSet`] for an id outside `1..=3`.
    pub fn from_id(id: u8) -> Result<Self, ProtocolError> {
        match id {
            1 => Ok(KemParameterSet::MlKem512),
            2 => Ok(KemParameterSet::MlKem768),
            3 => Ok(KemParameterSet::MlKem1024),
            got => Err(ProtocolError::UnknownParameterSet { got }),
        }
    }

    /// The FIPS 203 parameters the service lane runs this set under.
    pub const fn params(self) -> krv_kyber::KyberParams {
        match self {
            KemParameterSet::MlKem512 => krv_kyber::KyberParams::KYBER512,
            KemParameterSet::MlKem768 => krv_kyber::KyberParams::KYBER768,
            KemParameterSet::MlKem1024 => krv_kyber::KyberParams::KYBER1024,
        }
    }

    /// The set's display name.
    pub const fn name(self) -> &'static str {
        match self {
            KemParameterSet::MlKem512 => "ML-KEM-512",
            KemParameterSet::MlKem768 => "ML-KEM-768",
            KemParameterSet::MlKem1024 => "ML-KEM-1024",
        }
    }
}

/// The SP 800-185 parameters of a HASH or OPEN request: one uniform
/// block on the wire, with every unused field required empty/zero.
///
/// | field | used by |
/// |---|---|
/// | `name` (`N`) | cSHAKE only (KMAC/TupleHash/ParallelHash fix it) |
/// | `key` (`K`) | KMAC only |
/// | `customization` (`S`) | every SP 800-185 id |
/// | `block_size` (`B`) | ParallelHash (required), TreeHash256 (0 or 4096) |
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct AlgorithmParams {
    /// The cSHAKE function name `N`.
    pub name: Vec<u8>,
    /// The KMAC key `K`.
    pub key: Vec<u8>,
    /// The customization string `S`.
    pub customization: Vec<u8>,
    /// The ParallelHash/tree block size `B` in bytes.
    pub block_size: u32,
}

impl AlgorithmParams {
    /// The empty params block every FIPS 202 request carries.
    pub fn none() -> Self {
        Self::default()
    }

    /// Params for cSHAKE: function name `N` and customization `S`.
    pub fn cshake(name: impl Into<Vec<u8>>, customization: impl Into<Vec<u8>>) -> Self {
        Self {
            name: name.into(),
            customization: customization.into(),
            ..Self::default()
        }
    }

    /// Params for KMAC: key `K` and customization `S`.
    pub fn kmac(key: impl Into<Vec<u8>>, customization: impl Into<Vec<u8>>) -> Self {
        Self {
            key: key.into(),
            customization: customization.into(),
            ..Self::default()
        }
    }

    /// Params for TupleHash and the KRV tree-hash: customization `S`.
    pub fn customization(customization: impl Into<Vec<u8>>) -> Self {
        Self {
            customization: customization.into(),
            ..Self::default()
        }
    }

    /// Params for ParallelHash: block size `B` and customization `S`.
    pub fn parallel_hash(block_size: u32, customization: impl Into<Vec<u8>>) -> Self {
        Self {
            customization: customization.into(),
            block_size,
            ..Self::default()
        }
    }

    /// Checks the block against its algorithm: unused fields must be
    /// empty/zero, used strings at most [`MAX_PARAM_LEN`] bytes,
    /// ParallelHash's block size nonzero, TreeHash256's 0 or 4096.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::BadParams`] naming the first violated rule.
    pub fn validate(&self, algorithm: WireAlgorithm) -> Result<(), ProtocolError> {
        let fail = |reason| Err(ProtocolError::BadParams { algorithm, reason });
        let uses_name = matches!(
            algorithm,
            WireAlgorithm::CShake128 | WireAlgorithm::CShake256
        );
        let uses_key = matches!(algorithm, WireAlgorithm::Kmac128 | WireAlgorithm::Kmac256);
        if !uses_name && !self.name.is_empty() {
            return fail("function name is only a cSHAKE parameter");
        }
        if !uses_key && !self.key.is_empty() {
            return fail("key is only a KMAC parameter");
        }
        if algorithm.is_fips() && !self.customization.is_empty() {
            return fail("FIPS 202 functions take no customization");
        }
        for (field, reason) in [
            (&self.name, "function name exceeds MAX_PARAM_LEN"),
            (&self.key, "key exceeds MAX_PARAM_LEN"),
            (&self.customization, "customization exceeds MAX_PARAM_LEN"),
        ] {
            if field.len() > MAX_PARAM_LEN {
                return fail(reason);
            }
        }
        match algorithm {
            WireAlgorithm::ParallelHash128 | WireAlgorithm::ParallelHash256 => {
                if self.block_size == 0 {
                    return fail("ParallelHash requires a nonzero block size");
                }
            }
            WireAlgorithm::TreeHash256 => {
                if self.block_size != 0 && self.block_size != 4096 {
                    return fail("the KRV tree-hash block size is fixed at 4096");
                }
            }
            _ => {
                if self.block_size != 0 {
                    return fail("block size is only a tree parameter");
                }
            }
        }
        Ok(())
    }

    fn encode_into(&self, body: &mut Vec<u8>) {
        for field in [&self.name, &self.key, &self.customization] {
            body.extend_from_slice(&(field.len() as u32).to_le_bytes());
            body.extend_from_slice(field);
        }
        body.extend_from_slice(&self.block_size.to_le_bytes());
    }

    fn encoded_len(&self) -> usize {
        3 * 4 + self.name.len() + self.key.len() + self.customization.len() + 4
    }

    fn decode(cursor: &mut Cursor<'_>) -> Result<Self, ProtocolError> {
        Ok(Self {
            name: cursor.bytes_u32_len()?,
            key: cursor.bytes_u32_len()?,
            customization: cursor.bytes_u32_len()?,
            block_size: cursor.u32()?,
        })
    }
}

/// Why the server answered a request with an [`Response::Error`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ErrorCode {
    /// Backpressure: the admission queue or the connection's in-flight
    /// window is full. Retry later.
    Busy = 1,
    /// The request's deadline elapsed before it was dispatched.
    Deadline = 2,
    /// The engine pool failed the request after its retry.
    Internal = 3,
    /// The daemon is draining; no new requests are admitted.
    ShuttingDown = 4,
    /// A session frame named a session this connection does not hold
    /// (never opened, already closed, or reaped for idleness) — or an
    /// OPEN reused a live session id. Fatal to the connection.
    BadSession = 5,
    /// A session frame out of order: ABSORB after FINALIZE, SQUEEZE
    /// before it, a second FINALIZE, squeezing past the declared output
    /// length, … Fatal to the connection.
    SessionState = 6,
    /// A session quota: too many open sessions on the connection, or a
    /// tree session past the server's leaf cap.
    SessionLimit = 7,
    /// A KEM key or ciphertext failed FIPS 203 input validation (wrong
    /// length for its parameter set, or a non-canonical encapsulation
    /// key). A caller error; the connection survives.
    BadKey = 8,
}

impl ErrorCode {
    /// The error code of a wire byte.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::UnknownErrorCode`] outside `1..=8`.
    pub fn from_byte(byte: u8) -> Result<Self, ProtocolError> {
        match byte {
            1 => Ok(ErrorCode::Busy),
            2 => Ok(ErrorCode::Deadline),
            3 => Ok(ErrorCode::Internal),
            4 => Ok(ErrorCode::ShuttingDown),
            5 => Ok(ErrorCode::BadSession),
            6 => Ok(ErrorCode::SessionState),
            7 => Ok(ErrorCode::SessionLimit),
            8 => Ok(ErrorCode::BadKey),
            got => Err(ProtocolError::UnknownErrorCode { got }),
        }
    }

    /// The code's display name.
    pub const fn name(self) -> &'static str {
        match self {
            ErrorCode::Busy => "BUSY",
            ErrorCode::Deadline => "DEADLINE",
            ErrorCode::Internal => "INTERNAL",
            ErrorCode::ShuttingDown => "SHUTTING_DOWN",
            ErrorCode::BadSession => "BAD_SESSION",
            ErrorCode::SessionState => "SESSION_STATE",
            ErrorCode::SessionLimit => "SESSION_LIMIT",
            ErrorCode::BadKey => "BAD_KEY",
        }
    }
}

impl std::fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A client → server frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Hash `payload` one-shot and respond with the squeezed output.
    Hash {
        /// Caller-chosen id echoed in the response.
        id: u64,
        /// Which wire algorithm to run.
        algorithm: WireAlgorithm,
        /// Output bytes to squeeze (the digest length for the hash
        /// functions, caller-chosen for the XOFs and SP 800-185
        /// functions).
        output_len: usize,
        /// Deadline relative to admission; `None` waits indefinitely.
        deadline: Option<Duration>,
        /// The SP 800-185 parameters (empty for FIPS 202).
        params: AlgorithmParams,
        /// The message to hash. For TupleHash this is the
        /// `u32`-length-framed entry sequence.
        payload: Vec<u8>,
    },
    /// Return the service's [`MetricsSnapshot`].
    Stats {
        /// Caller-chosen id echoed in the response.
        id: u64,
    },
    /// Open a streaming session under a client-chosen session id.
    Open {
        /// Caller-chosen id echoed in the response.
        id: u64,
        /// The session id, scoped to this connection.
        session: u64,
        /// Which wire algorithm the session runs.
        algorithm: WireAlgorithm,
        /// The SP 800-185 parameters (empty for FIPS 202).
        params: AlgorithmParams,
    },
    /// Absorb one chunk into a session (one tuple entry for TupleHash).
    Absorb {
        /// Caller-chosen id echoed in the response.
        id: u64,
        /// The session to absorb into.
        session: u64,
        /// The chunk, at most [`MAX_CHUNK_LEN`] bytes.
        chunk: Vec<u8>,
    },
    /// End a session's absorb phase and bind its output length.
    Finalize {
        /// Caller-chosen id echoed in the response.
        id: u64,
        /// The session to finalize.
        session: u64,
        /// The declared total output length: required for the tree
        /// algorithms, bound into KMAC/TupleHash (0 selects their XOF
        /// variants), 0 for the plain XOFs, and 0 or the fixed digest
        /// length for SHA-3.
        output_len: usize,
    },
    /// Squeeze the next `len` output bytes from a finalized session.
    Squeeze {
        /// Caller-chosen id echoed in the response.
        id: u64,
        /// The session to squeeze.
        session: u64,
        /// Output bytes wanted, at most [`MAX_OUTPUT_LEN`] per frame.
        len: usize,
    },
    /// Close a session, releasing its state at any phase.
    Close {
        /// Caller-chosen id echoed in the response.
        id: u64,
        /// The session to close.
        session: u64,
    },
    /// Generate an ML-KEM key pair from explicit seeds, answered with
    /// [`Response::KemKeys`].
    KemKeygen {
        /// Caller-chosen id echoed in the response.
        id: u64,
        /// The parameter set to generate under.
        set: KemParameterSet,
        /// Deadline relative to admission; `None` waits indefinitely.
        deadline: Option<Duration>,
        /// The 32-byte key-generation seed d.
        d: [u8; 32],
        /// The 32-byte implicit-rejection seed z.
        z: [u8; 32],
    },
    /// Encapsulate a shared secret to `ek`, answered with
    /// [`Response::KemCiphertext`] (or [`ErrorCode::BadKey`] for a
    /// malformed key).
    KemEncaps {
        /// Caller-chosen id echoed in the response.
        id: u64,
        /// The parameter set `ek` belongs to.
        set: KemParameterSet,
        /// Deadline relative to admission; `None` waits indefinitely.
        deadline: Option<Duration>,
        /// The 32-byte encapsulation randomness m.
        m: [u8; 32],
        /// The byte-encoded encapsulation key.
        ek: Vec<u8>,
    },
    /// Decapsulate `ct` under `dk`, answered with
    /// [`Response::KemSecret`] (implicit rejection included — a
    /// tampered ciphertext still yields a secret, just not the
    /// encapsulated one).
    KemDecaps {
        /// Caller-chosen id echoed in the response.
        id: u64,
        /// The parameter set the key and ciphertext belong to.
        set: KemParameterSet,
        /// Deadline relative to admission; `None` waits indefinitely.
        deadline: Option<Duration>,
        /// The byte-encoded decapsulation key.
        dk: Vec<u8>,
        /// The byte-encoded ciphertext.
        ct: Vec<u8>,
    },
}

impl Request {
    /// The request id.
    pub fn id(&self) -> u64 {
        match self {
            Request::Hash { id, .. }
            | Request::Stats { id }
            | Request::Open { id, .. }
            | Request::Absorb { id, .. }
            | Request::Finalize { id, .. }
            | Request::Squeeze { id, .. }
            | Request::Close { id, .. }
            | Request::KemKeygen { id, .. }
            | Request::KemEncaps { id, .. }
            | Request::KemDecaps { id, .. } => *id,
        }
    }

    /// Encodes the frame body (without the length prefix).
    pub fn encode(&self) -> Vec<u8> {
        match self {
            Request::Hash {
                id,
                algorithm,
                output_len,
                deadline,
                params,
                payload,
            } => {
                let mut body = header(
                    KIND_HASH,
                    *id,
                    1 + 4 + 8 + params.encoded_len() + 4 + payload.len(),
                );
                body.push(algorithm.id());
                body.extend_from_slice(&(*output_len as u32).to_le_bytes());
                let deadline_us =
                    deadline.map_or(0, |d| d.as_micros().min(u128::from(u64::MAX)) as u64);
                body.extend_from_slice(&deadline_us.to_le_bytes());
                params.encode_into(&mut body);
                body.extend_from_slice(&(payload.len() as u32).to_le_bytes());
                body.extend_from_slice(payload);
                body
            }
            Request::Stats { id } => header(KIND_STATS, *id, 0),
            Request::Open {
                id,
                session,
                algorithm,
                params,
            } => {
                let mut body = header(KIND_OPEN, *id, 8 + 1 + params.encoded_len());
                body.extend_from_slice(&session.to_le_bytes());
                body.push(algorithm.id());
                params.encode_into(&mut body);
                body
            }
            Request::Absorb { id, session, chunk } => {
                let mut body = header(KIND_ABSORB, *id, 8 + 4 + chunk.len());
                body.extend_from_slice(&session.to_le_bytes());
                body.extend_from_slice(&(chunk.len() as u32).to_le_bytes());
                body.extend_from_slice(chunk);
                body
            }
            Request::Finalize {
                id,
                session,
                output_len,
            } => {
                let mut body = header(KIND_FINALIZE, *id, 8 + 4);
                body.extend_from_slice(&session.to_le_bytes());
                body.extend_from_slice(&(*output_len as u32).to_le_bytes());
                body
            }
            Request::Squeeze { id, session, len } => {
                let mut body = header(KIND_SQUEEZE, *id, 8 + 4);
                body.extend_from_slice(&session.to_le_bytes());
                body.extend_from_slice(&(*len as u32).to_le_bytes());
                body
            }
            Request::Close { id, session } => {
                let mut body = header(KIND_CLOSE, *id, 8);
                body.extend_from_slice(&session.to_le_bytes());
                body
            }
            Request::KemKeygen {
                id,
                set,
                deadline,
                d,
                z,
            } => {
                let mut body = header(KIND_KEM_KEYGEN, *id, 1 + 8 + 32 + 32);
                body.push(set.id());
                body.extend_from_slice(&encode_deadline(*deadline).to_le_bytes());
                body.extend_from_slice(d);
                body.extend_from_slice(z);
                body
            }
            Request::KemEncaps {
                id,
                set,
                deadline,
                m,
                ek,
            } => {
                let mut body = header(KIND_KEM_ENCAPS, *id, 1 + 8 + 32 + 4 + ek.len());
                body.push(set.id());
                body.extend_from_slice(&encode_deadline(*deadline).to_le_bytes());
                body.extend_from_slice(m);
                body.extend_from_slice(&(ek.len() as u32).to_le_bytes());
                body.extend_from_slice(ek);
                body
            }
            Request::KemDecaps {
                id,
                set,
                deadline,
                dk,
                ct,
            } => {
                let mut body = header(KIND_KEM_DECAPS, *id, 1 + 8 + 4 + dk.len() + 4 + ct.len());
                body.push(set.id());
                body.extend_from_slice(&encode_deadline(*deadline).to_le_bytes());
                body.extend_from_slice(&(dk.len() as u32).to_le_bytes());
                body.extend_from_slice(dk);
                body.extend_from_slice(&(ct.len() as u32).to_le_bytes());
                body.extend_from_slice(ct);
                body
            }
        }
    }

    /// Strictly decodes a frame body.
    ///
    /// # Errors
    ///
    /// Any [`ProtocolError`]; see the module table for the layout every
    /// field is checked against. Params blocks are validated against
    /// their algorithm, ABSORB chunks against [`MAX_CHUNK_LEN`], and a
    /// TupleHash one-shot payload against its entry framing.
    pub fn decode(body: &[u8]) -> Result<Self, ProtocolError> {
        let mut cursor = Cursor::new(body);
        let (kind, id) = cursor.header()?;
        let request = match kind {
            KIND_HASH => {
                let algorithm = WireAlgorithm::from_id(cursor.u8()?)?;
                let output_len = cursor.u32()? as usize;
                if output_len > MAX_OUTPUT_LEN {
                    return Err(ProtocolError::OversizedOutput { len: output_len });
                }
                if let Some(expected) = algorithm.fixed_output_len() {
                    if output_len != expected {
                        return Err(ProtocolError::WrongOutputLen {
                            algorithm,
                            expected,
                            got: output_len,
                        });
                    }
                }
                let deadline_us = cursor.u64()?;
                let params = AlgorithmParams::decode(&mut cursor)?;
                params.validate(algorithm)?;
                let payload = cursor.bytes_u32_len()?;
                if matches!(
                    algorithm,
                    WireAlgorithm::TupleHash128 | WireAlgorithm::TupleHash256
                ) {
                    validate_tuple_framing(&payload)?;
                }
                Request::Hash {
                    id,
                    algorithm,
                    output_len,
                    deadline: (deadline_us > 0).then(|| Duration::from_micros(deadline_us)),
                    params,
                    payload,
                }
            }
            KIND_STATS => Request::Stats { id },
            KIND_OPEN => {
                let session = cursor.u64()?;
                let algorithm = WireAlgorithm::from_id(cursor.u8()?)?;
                let params = AlgorithmParams::decode(&mut cursor)?;
                params.validate(algorithm)?;
                Request::Open {
                    id,
                    session,
                    algorithm,
                    params,
                }
            }
            KIND_ABSORB => {
                let session = cursor.u64()?;
                let declared = cursor.u32()? as usize;
                if declared > MAX_CHUNK_LEN {
                    return Err(ProtocolError::OversizedChunk { len: declared });
                }
                let chunk = cursor.take(declared)?.to_vec();
                Request::Absorb { id, session, chunk }
            }
            KIND_FINALIZE => {
                let session = cursor.u64()?;
                let output_len = cursor.u32()? as usize;
                if output_len > MAX_OUTPUT_LEN {
                    return Err(ProtocolError::OversizedOutput { len: output_len });
                }
                Request::Finalize {
                    id,
                    session,
                    output_len,
                }
            }
            KIND_SQUEEZE => {
                let session = cursor.u64()?;
                let len = cursor.u32()? as usize;
                if len > MAX_OUTPUT_LEN {
                    return Err(ProtocolError::OversizedOutput { len });
                }
                Request::Squeeze { id, session, len }
            }
            KIND_CLOSE => Request::Close {
                id,
                session: cursor.u64()?,
            },
            KIND_KEM_KEYGEN => {
                let set = KemParameterSet::from_id(cursor.u8()?)?;
                let deadline_us = cursor.u64()?;
                Request::KemKeygen {
                    id,
                    set,
                    deadline: decode_deadline(deadline_us),
                    d: cursor.array_32()?,
                    z: cursor.array_32()?,
                }
            }
            KIND_KEM_ENCAPS => {
                let set = KemParameterSet::from_id(cursor.u8()?)?;
                let deadline_us = cursor.u64()?;
                Request::KemEncaps {
                    id,
                    set,
                    deadline: decode_deadline(deadline_us),
                    m: cursor.array_32()?,
                    ek: cursor.bytes_u32_len()?,
                }
            }
            KIND_KEM_DECAPS => {
                let set = KemParameterSet::from_id(cursor.u8()?)?;
                let deadline_us = cursor.u64()?;
                Request::KemDecaps {
                    id,
                    set,
                    deadline: decode_deadline(deadline_us),
                    dk: cursor.bytes_u32_len()?,
                    ct: cursor.bytes_u32_len()?,
                }
            }
            KIND_DIGEST | KIND_ERROR | KIND_STATS_REPLY | KIND_OPENED | KIND_ABSORBED
            | KIND_FINALIZED | KIND_SQUEEZED | KIND_CLOSED | KIND_KEM_KEYS
            | KIND_KEM_CIPHERTEXT | KIND_KEM_SECRET => {
                return Err(ProtocolError::UnexpectedKind { got: kind })
            }
            got => return Err(ProtocolError::UnknownKind { got }),
        };
        cursor.finish()?;
        Ok(request)
    }
}

/// Checks that a TupleHash one-shot payload is exactly a sequence of
/// `u32`-length-prefixed entries.
fn validate_tuple_framing(payload: &[u8]) -> Result<(), ProtocolError> {
    let mut at = 0;
    while at < payload.len() {
        if payload.len() - at < 4 {
            return Err(ProtocolError::BadTuplePayload);
        }
        let len = u32::from_le_bytes(payload[at..at + 4].try_into().expect("len 4")) as usize;
        at += 4;
        if payload.len() - at < len {
            return Err(ProtocolError::BadTuplePayload);
        }
        at += len;
    }
    Ok(())
}

/// Iterates the entries of a valid TupleHash one-shot payload (framing
/// previously checked by [`Request::decode`]).
pub fn tuple_entries(payload: &[u8]) -> impl Iterator<Item = &[u8]> {
    let mut at = 0;
    std::iter::from_fn(move || {
        if at >= payload.len() {
            return None;
        }
        let len = u32::from_le_bytes(payload[at..at + 4].try_into().expect("len 4")) as usize;
        at += 4;
        let entry = &payload[at..at + len];
        at += len;
        Some(entry)
    })
}

/// Frames `entries` into a TupleHash one-shot payload.
pub fn encode_tuple_payload(entries: &[&[u8]]) -> Vec<u8> {
    let mut out = Vec::new();
    for entry in entries {
        out.extend_from_slice(&(entry.len() as u32).to_le_bytes());
        out.extend_from_slice(entry);
    }
    out
}

/// A server → client frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// The squeezed output of a [`Request::Hash`].
    Digest {
        /// The request id this answers.
        id: u64,
        /// The output bytes.
        bytes: Vec<u8>,
    },
    /// A request that completed without output.
    Error {
        /// The request id this answers.
        id: u64,
        /// Why there is no output.
        code: ErrorCode,
        /// Human-readable detail.
        detail: String,
    },
    /// The service metrics answering a [`Request::Stats`].
    Stats {
        /// The request id this answers.
        id: u64,
        /// The snapshot at the time the request was served. Boxed so
        /// the common digest/error variants stay small.
        snapshot: Box<MetricsSnapshot>,
    },
    /// A session is open and ready to absorb.
    Opened {
        /// The request id this answers.
        id: u64,
        /// The session id echoed back.
        session: u64,
    },
    /// An ABSORB chunk has been absorbed into the session state.
    Absorbed {
        /// The request id this answers.
        id: u64,
        /// The session id echoed back.
        session: u64,
    },
    /// The session is finalized and ready to squeeze.
    Finalized {
        /// The request id this answers.
        id: u64,
        /// The session id echoed back.
        session: u64,
    },
    /// The next output bytes of a finalized session.
    Squeezed {
        /// The request id this answers.
        id: u64,
        /// The session id echoed back.
        session: u64,
        /// The squeezed bytes, exactly the requested length.
        bytes: Vec<u8>,
    },
    /// The session is closed and its id free for reuse.
    Closed {
        /// The request id this answers.
        id: u64,
        /// The session id echoed back.
        session: u64,
    },
    /// The freshly derived key pair answering a [`Request::KemKeygen`].
    KemKeys {
        /// The request id this answers.
        id: u64,
        /// The encapsulation (public) key.
        ek: Vec<u8>,
        /// The decapsulation (secret) key.
        dk: Vec<u8>,
    },
    /// The ciphertext and shared secret answering a [`Request::KemEncaps`].
    KemCiphertext {
        /// The request id this answers.
        id: u64,
        /// The ciphertext to transmit to the key holder.
        ct: Vec<u8>,
        /// The 32-byte shared secret established by encapsulation.
        shared_secret: [u8; 32],
    },
    /// The shared secret answering a [`Request::KemDecaps`].
    ///
    /// Implicit rejection means a tampered ciphertext still yields a
    /// secret — just not the one the sender derived — so this response
    /// carries no validity flag.
    KemSecret {
        /// The request id this answers.
        id: u64,
        /// The 32-byte decapsulated shared secret.
        shared_secret: [u8; 32],
    },
}

impl Response {
    /// The request id the response answers.
    pub fn id(&self) -> u64 {
        match self {
            Response::Digest { id, .. }
            | Response::Error { id, .. }
            | Response::Stats { id, .. }
            | Response::Opened { id, .. }
            | Response::Absorbed { id, .. }
            | Response::Finalized { id, .. }
            | Response::Squeezed { id, .. }
            | Response::Closed { id, .. }
            | Response::KemKeys { id, .. }
            | Response::KemCiphertext { id, .. }
            | Response::KemSecret { id, .. } => *id,
        }
    }

    /// Encodes the frame body (without the length prefix).
    pub fn encode(&self) -> Vec<u8> {
        match self {
            Response::Digest { id, bytes } => {
                let mut body = header(KIND_DIGEST, *id, 4 + bytes.len());
                body.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
                body.extend_from_slice(bytes);
                body
            }
            Response::Error { id, code, detail } => {
                let detail = &detail.as_bytes()[..detail.len().min(usize::from(u16::MAX))];
                let mut body = header(KIND_ERROR, *id, 1 + 2 + detail.len());
                body.push(*code as u8);
                body.extend_from_slice(&(detail.len() as u16).to_le_bytes());
                body.extend_from_slice(detail);
                body
            }
            Response::Stats { id, snapshot } => {
                let mut body = header(KIND_STATS_REPLY, *id, SNAPSHOT_LEN);
                encode_snapshot(snapshot, &mut body);
                body
            }
            Response::Opened { id, session } => session_ack(KIND_OPENED, *id, *session),
            Response::Absorbed { id, session } => session_ack(KIND_ABSORBED, *id, *session),
            Response::Finalized { id, session } => session_ack(KIND_FINALIZED, *id, *session),
            Response::Squeezed { id, session, bytes } => {
                let mut body = header(KIND_SQUEEZED, *id, 8 + 4 + bytes.len());
                body.extend_from_slice(&session.to_le_bytes());
                body.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
                body.extend_from_slice(bytes);
                body
            }
            Response::Closed { id, session } => session_ack(KIND_CLOSED, *id, *session),
            Response::KemKeys { id, ek, dk } => {
                let mut body = header(KIND_KEM_KEYS, *id, 4 + ek.len() + 4 + dk.len());
                body.extend_from_slice(&(ek.len() as u32).to_le_bytes());
                body.extend_from_slice(ek);
                body.extend_from_slice(&(dk.len() as u32).to_le_bytes());
                body.extend_from_slice(dk);
                body
            }
            Response::KemCiphertext {
                id,
                ct,
                shared_secret,
            } => {
                let mut body = header(KIND_KEM_CIPHERTEXT, *id, 4 + ct.len() + 32);
                body.extend_from_slice(&(ct.len() as u32).to_le_bytes());
                body.extend_from_slice(ct);
                body.extend_from_slice(shared_secret);
                body
            }
            Response::KemSecret { id, shared_secret } => {
                let mut body = header(KIND_KEM_SECRET, *id, 32);
                body.extend_from_slice(shared_secret);
                body
            }
        }
    }

    /// Strictly decodes a frame body.
    ///
    /// # Errors
    ///
    /// Any [`ProtocolError`]; request kinds decode as
    /// [`ProtocolError::UnexpectedKind`].
    pub fn decode(body: &[u8]) -> Result<Self, ProtocolError> {
        let mut cursor = Cursor::new(body);
        let (kind, id) = cursor.header()?;
        let response = match kind {
            KIND_DIGEST => Response::Digest {
                id,
                bytes: cursor.bytes_u32_len()?,
            },
            KIND_ERROR => {
                let code = ErrorCode::from_byte(cursor.u8()?)?;
                let len = usize::from(cursor.u16()?);
                let detail = String::from_utf8(cursor.take(len)?.to_vec())
                    .map_err(|_| ProtocolError::BadUtf8)?;
                Response::Error { id, code, detail }
            }
            KIND_STATS_REPLY => Response::Stats {
                id,
                snapshot: Box::new(decode_snapshot(&mut cursor)?),
            },
            KIND_OPENED => Response::Opened {
                id,
                session: cursor.u64()?,
            },
            KIND_ABSORBED => Response::Absorbed {
                id,
                session: cursor.u64()?,
            },
            KIND_FINALIZED => Response::Finalized {
                id,
                session: cursor.u64()?,
            },
            KIND_SQUEEZED => {
                let session = cursor.u64()?;
                let bytes = cursor.bytes_u32_len()?;
                Response::Squeezed { id, session, bytes }
            }
            KIND_CLOSED => Response::Closed {
                id,
                session: cursor.u64()?,
            },
            KIND_KEM_KEYS => Response::KemKeys {
                id,
                ek: cursor.bytes_u32_len()?,
                dk: cursor.bytes_u32_len()?,
            },
            KIND_KEM_CIPHERTEXT => Response::KemCiphertext {
                id,
                ct: cursor.bytes_u32_len()?,
                shared_secret: cursor.array_32()?,
            },
            KIND_KEM_SECRET => Response::KemSecret {
                id,
                shared_secret: cursor.array_32()?,
            },
            KIND_HASH | KIND_STATS | KIND_OPEN | KIND_ABSORB | KIND_FINALIZE | KIND_SQUEEZE
            | KIND_CLOSE | KIND_KEM_KEYGEN | KIND_KEM_ENCAPS | KIND_KEM_DECAPS => {
                return Err(ProtocolError::UnexpectedKind { got: kind })
            }
            got => return Err(ProtocolError::UnknownKind { got }),
        };
        cursor.finish()?;
        Ok(response)
    }
}

fn header(kind: u8, id: u64, payload_len: usize) -> Vec<u8> {
    let mut body = Vec::with_capacity(HEADER_LEN + payload_len);
    body.extend_from_slice(&MAGIC);
    body.push(VERSION);
    body.push(kind);
    body.extend_from_slice(&id.to_le_bytes());
    body
}

/// A session acknowledgement body: just the session id.
fn session_ack(kind: u8, id: u64, session: u64) -> Vec<u8> {
    let mut body = header(kind, id, 8);
    body.extend_from_slice(&session.to_le_bytes());
    body
}

/// Encodes an optional deadline as whole microseconds; zero means "none".
fn encode_deadline(deadline: Option<Duration>) -> u64 {
    deadline.map_or(0, |d| d.as_micros().min(u128::from(u64::MAX)) as u64)
}

/// Inverse of [`encode_deadline`]: zero decodes back to `None`.
fn decode_deadline(deadline_us: u64) -> Option<Duration> {
    (deadline_us > 0).then(|| Duration::from_micros(deadline_us))
}

/// Fixed encoded length of a [`MetricsSnapshot`]: 25 `u64`-width fields
/// plus three six-field [`QuantileSummary`] blocks.
const SNAPSHOT_LEN: usize = 25 * 8 + 3 * 6 * 8;

fn encode_snapshot(snapshot: &MetricsSnapshot, out: &mut Vec<u8>) {
    for value in [
        snapshot.submitted,
        snapshot.completed,
        snapshot.timeouts,
        snapshot.rejected,
        snapshot.throttled,
        snapshot.worker_failures,
        snapshot.retries,
        snapshot.batches,
        snapshot.native_served,
        snapshot.simulator_served,
        snapshot.mirrored,
        snapshot.mirror_mismatches,
        snapshot.stream_ops,
        snapshot.stream_absorbed,
        snapshot.stream_squeezed,
        snapshot.kem_keygen,
        snapshot.kem_encaps,
        snapshot.kem_decaps,
        snapshot.kem_hash_jobs,
        snapshot.kem_dispatches,
        snapshot.kem_invalid,
        snapshot.queue_depth as u64,
        snapshot.mean_batch_fill.to_bits(),
        snapshot.alive_workers as u64,
        snapshot.batch_slots as u64,
    ] {
        out.extend_from_slice(&value.to_le_bytes());
    }
    for quantiles in [&snapshot.queue_ns, &snapshot.service_ns, &snapshot.e2e_ns] {
        for value in [
            quantiles.count,
            quantiles.mean.to_bits(),
            quantiles.p50,
            quantiles.p90,
            quantiles.p99,
            quantiles.max,
        ] {
            out.extend_from_slice(&value.to_le_bytes());
        }
    }
}

fn decode_snapshot(cursor: &mut Cursor<'_>) -> Result<MetricsSnapshot, ProtocolError> {
    let u64s = |cursor: &mut Cursor<'_>| -> Result<[u64; 25], ProtocolError> {
        let mut values = [0u64; 25];
        for value in &mut values {
            *value = cursor.u64()?;
        }
        Ok(values)
    };
    let counters = u64s(cursor)?;
    let quantiles = |cursor: &mut Cursor<'_>| -> Result<QuantileSummary, ProtocolError> {
        Ok(QuantileSummary {
            count: cursor.u64()?,
            mean: f64::from_bits(cursor.u64()?),
            p50: cursor.u64()?,
            p90: cursor.u64()?,
            p99: cursor.u64()?,
            max: cursor.u64()?,
        })
    };
    Ok(MetricsSnapshot {
        submitted: counters[0],
        completed: counters[1],
        timeouts: counters[2],
        rejected: counters[3],
        throttled: counters[4],
        worker_failures: counters[5],
        retries: counters[6],
        batches: counters[7],
        native_served: counters[8],
        simulator_served: counters[9],
        mirrored: counters[10],
        mirror_mismatches: counters[11],
        stream_ops: counters[12],
        stream_absorbed: counters[13],
        stream_squeezed: counters[14],
        kem_keygen: counters[15],
        kem_encaps: counters[16],
        kem_decaps: counters[17],
        kem_hash_jobs: counters[18],
        kem_dispatches: counters[19],
        kem_invalid: counters[20],
        queue_depth: counters[21] as usize,
        mean_batch_fill: f64::from_bits(counters[22]),
        alive_workers: counters[23] as usize,
        batch_slots: counters[24] as usize,
        queue_ns: quantiles(cursor)?,
        service_ns: quantiles(cursor)?,
        e2e_ns: quantiles(cursor)?,
    })
}

/// A strict little-endian reader over one frame body.
struct Cursor<'a> {
    body: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn new(body: &'a [u8]) -> Self {
        Self { body, at: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ProtocolError> {
        let remaining = self.body.len() - self.at;
        if remaining < n {
            return Err(ProtocolError::Truncated {
                needed: n,
                got: remaining,
            });
        }
        let slice = &self.body[self.at..self.at + n];
        self.at += n;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, ProtocolError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, ProtocolError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("len 2")))
    }

    fn u32(&mut self) -> Result<u32, ProtocolError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("len 4")))
    }

    fn u64(&mut self) -> Result<u64, ProtocolError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("len 8")))
    }

    fn bytes_u32_len(&mut self) -> Result<Vec<u8>, ProtocolError> {
        let len = self.u32()? as usize;
        Ok(self.take(len)?.to_vec())
    }

    fn array_32(&mut self) -> Result<[u8; 32], ProtocolError> {
        Ok(self.take(32)?.try_into().expect("len 32"))
    }

    /// Checks magic, version, and reads the kind and request id.
    fn header(&mut self) -> Result<(u8, u64), ProtocolError> {
        let magic = self.take(4)?;
        if magic != MAGIC {
            return Err(ProtocolError::BadMagic {
                got: magic.try_into().expect("len 4"),
            });
        }
        let version = self.u8()?;
        if version != VERSION {
            return Err(ProtocolError::BadVersion { got: version });
        }
        let kind = self.u8()?;
        let id = self.u64()?;
        Ok((kind, id))
    }

    /// Rejects trailing bytes after the last field.
    fn finish(self) -> Result<(), ProtocolError> {
        if self.at != self.body.len() {
            return Err(ProtocolError::TrailingBytes {
                extra: self.body.len() - self.at,
            });
        }
        Ok(())
    }
}

/// Writes one length-prefixed frame.
///
/// # Errors
///
/// Propagates the underlying I/O error.
pub fn write_frame(writer: &mut impl Write, body: &[u8]) -> io::Result<()> {
    writer.write_all(&(body.len() as u32).to_le_bytes())?;
    writer.write_all(body)
}

/// Reads one length-prefixed frame body.
///
/// Returns `Ok(None)` on a clean close (EOF before the first length
/// byte); EOF anywhere later is an [`io::ErrorKind::UnexpectedEof`]. A
/// declared length beyond `max_frame` is surfaced as
/// [`ProtocolError::OversizedFrame`] without reading or allocating the
/// body.
///
/// # Errors
///
/// I/O errors from the reader; the oversized-frame protocol error rides
/// in the `Ok` layer so the caller can distinguish it from transport
/// failure.
pub fn read_frame(
    reader: &mut impl Read,
    max_frame: usize,
) -> io::Result<Option<Result<Vec<u8>, ProtocolError>>> {
    let mut prefix = [0u8; 4];
    let mut filled = 0;
    while filled < prefix.len() {
        match reader.read(&mut prefix[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => return Err(io::ErrorKind::UnexpectedEof.into()),
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    let len = u32::from_le_bytes(prefix) as usize;
    if len > max_frame {
        return Ok(Some(Err(ProtocolError::OversizedFrame {
            len,
            max: max_frame,
        })));
    }
    let mut body = vec![0u8; len];
    reader.read_exact(&mut body)?;
    Ok(Some(Ok(body)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_snapshot() -> MetricsSnapshot {
        let quantiles = |scale: u64| QuantileSummary {
            count: 10 * scale,
            mean: 1234.5 * scale as f64,
            p50: 1000 * scale,
            p90: 2000 * scale,
            p99: 3000 * scale,
            max: 4000 * scale,
        };
        MetricsSnapshot {
            submitted: 100,
            completed: 90,
            timeouts: 4,
            rejected: 3,
            throttled: 5,
            worker_failures: 2,
            retries: 1,
            batches: 25,
            native_served: 60,
            simulator_served: 30,
            mirrored: 12,
            mirror_mismatches: 1,
            stream_ops: 17,
            stream_absorbed: 4096,
            stream_squeezed: 96,
            kem_keygen: 6,
            kem_encaps: 5,
            kem_decaps: 9,
            kem_hash_jobs: 40,
            kem_dispatches: 11,
            kem_invalid: 2,
            queue_depth: 7,
            mean_batch_fill: 0.875,
            alive_workers: 2,
            batch_slots: 8,
            queue_ns: quantiles(1),
            service_ns: quantiles(2),
            e2e_ns: quantiles(3),
        }
    }

    #[test]
    fn requests_round_trip() {
        let requests = [
            Request::Hash {
                id: 42,
                algorithm: WireAlgorithm::Sha3_256,
                output_len: 32,
                deadline: Some(Duration::from_micros(1500)),
                params: AlgorithmParams::none(),
                payload: b"the message".to_vec(),
            },
            Request::Hash {
                id: u64::MAX,
                algorithm: WireAlgorithm::Shake128,
                output_len: 133,
                deadline: None,
                params: AlgorithmParams::none(),
                payload: Vec::new(),
            },
            Request::Hash {
                id: 3,
                algorithm: WireAlgorithm::Kmac256,
                output_len: 64,
                deadline: None,
                params: AlgorithmParams::kmac(&b"a key"[..], &b"a context"[..]),
                payload: b"authenticated".to_vec(),
            },
            Request::Hash {
                id: 4,
                algorithm: WireAlgorithm::TupleHash128,
                output_len: 32,
                deadline: None,
                params: AlgorithmParams::customization(&b"tuple ctx"[..]),
                payload: encode_tuple_payload(&[b"one", b"", b"three"]),
            },
            Request::Hash {
                id: 5,
                algorithm: WireAlgorithm::ParallelHash256,
                output_len: 64,
                deadline: None,
                params: AlgorithmParams::parallel_hash(8, &b""[..]),
                payload: vec![0x5A; 100],
            },
            Request::Stats { id: 7 },
            Request::Open {
                id: 8,
                session: 0xBEEF,
                algorithm: WireAlgorithm::CShake256,
                params: AlgorithmParams::cshake(&b"Email Signature"[..], &b""[..]),
            },
            Request::Absorb {
                id: 9,
                session: 0xBEEF,
                chunk: vec![1, 2, 3],
            },
            Request::Finalize {
                id: 10,
                session: 0xBEEF,
                output_len: 0,
            },
            Request::Squeeze {
                id: 11,
                session: 0xBEEF,
                len: 64,
            },
            Request::Close {
                id: 12,
                session: 0xBEEF,
            },
            Request::KemKeygen {
                id: 13,
                set: KemParameterSet::MlKem768,
                deadline: Some(Duration::from_micros(2500)),
                d: [0x11; 32],
                z: [0x22; 32],
            },
            Request::KemEncaps {
                id: 14,
                set: KemParameterSet::MlKem512,
                deadline: None,
                m: [0x33; 32],
                ek: vec![0x44; 800],
            },
            Request::KemDecaps {
                id: 15,
                set: KemParameterSet::MlKem1024,
                deadline: Some(Duration::from_micros(9)),
                dk: vec![0x55; 3168],
                ct: vec![0x66; 1568],
            },
        ];
        for request in requests {
            let decoded = Request::decode(&request.encode()).expect("round trip");
            assert_eq!(decoded, request);
        }
    }

    #[test]
    fn responses_round_trip() {
        let responses = [
            Response::Digest {
                id: 9,
                bytes: vec![0xAB; 48],
            },
            Response::Error {
                id: 10,
                code: ErrorCode::Busy,
                detail: "queue full at depth 1024".into(),
            },
            Response::Error {
                id: 13,
                code: ErrorCode::SessionState,
                detail: "SQUEEZE before FINALIZE".into(),
            },
            Response::Stats {
                id: 11,
                snapshot: Box::new(sample_snapshot()),
            },
            Response::Opened { id: 1, session: 2 },
            Response::Absorbed { id: 3, session: 2 },
            Response::Finalized { id: 4, session: 2 },
            Response::Squeezed {
                id: 5,
                session: 2,
                bytes: vec![0xCD; 32],
            },
            Response::Closed { id: 6, session: 2 },
            Response::KemKeys {
                id: 13,
                ek: vec![0xEE; 1184],
                dk: vec![0xDD; 2400],
            },
            Response::KemCiphertext {
                id: 14,
                ct: vec![0xCC; 768],
                shared_secret: [0x77; 32],
            },
            Response::KemSecret {
                id: 15,
                shared_secret: [0x88; 32],
            },
            Response::Error {
                id: 16,
                code: ErrorCode::BadKey,
                detail: "encapsulation key must be 1184 bytes".into(),
            },
        ];
        for response in responses {
            let decoded = Response::decode(&response.encode()).expect("round trip");
            assert_eq!(decoded, response);
        }
    }

    #[test]
    fn kem_parameter_set_ids_are_stable_and_exhaustive() {
        for (index, set) in KemParameterSet::ALL.into_iter().enumerate() {
            assert_eq!(set.id() as usize, index + 1, "ids are 1-based and dense");
            assert_eq!(KemParameterSet::from_id(set.id()), Ok(set));
        }
        assert_eq!(KemParameterSet::MlKem512.params().ek_len(), 800);
        assert_eq!(KemParameterSet::MlKem768.params().ek_len(), 1184);
        assert_eq!(KemParameterSet::MlKem1024.params().ek_len(), 1568);
        assert_eq!(KemParameterSet::MlKem512.params().k, 2);
        assert_eq!(KemParameterSet::MlKem768.params().k, 3);
        assert_eq!(KemParameterSet::MlKem1024.params().k, 4);
        assert_eq!(KemParameterSet::MlKem768.name(), "ML-KEM-768");
        assert_eq!(
            KemParameterSet::from_id(0),
            Err(ProtocolError::UnknownParameterSet { got: 0 })
        );
        assert_eq!(
            KemParameterSet::from_id(4),
            Err(ProtocolError::UnknownParameterSet { got: 4 })
        );
        // An unknown set id is connection-fatal at decode time, before
        // any key material is even read.
        let mut frame = Request::KemKeygen {
            id: 1,
            set: KemParameterSet::MlKem512,
            deadline: None,
            d: [0; 32],
            z: [0; 32],
        }
        .encode();
        frame[HEADER_LEN] = 9;
        assert_eq!(
            Request::decode(&frame),
            Err(ProtocolError::UnknownParameterSet { got: 9 })
        );
    }

    #[test]
    fn algorithm_ids_are_stable_and_exhaustive() {
        for (index, algorithm) in WireAlgorithm::ALL.into_iter().enumerate() {
            assert_eq!(
                algorithm.id() as usize,
                index + 1,
                "ids are 1-based and dense"
            );
            assert_eq!(WireAlgorithm::from_id(algorithm.id()), Ok(algorithm));
        }
        assert_eq!(
            WireAlgorithm::from_id(0),
            Err(ProtocolError::UnknownAlgorithm { got: 0 })
        );
        assert_eq!(
            WireAlgorithm::from_id(16),
            Err(ProtocolError::UnknownAlgorithm { got: 16 })
        );
        for algorithm in WireAlgorithm::FIPS {
            assert!(algorithm.is_fips());
            assert!(!algorithm.is_tree());
        }
        assert!(WireAlgorithm::TreeHash256.is_tree());
        assert!(WireAlgorithm::ParallelHash128.is_tree());
        assert!(!WireAlgorithm::Kmac256.is_tree());
        assert_eq!(WireAlgorithm::CShake128.security_bits(), 128);
        assert_eq!(WireAlgorithm::Sha3_384.security_bits(), 384);
        assert_eq!(WireAlgorithm::TreeHash256.security_bits(), 256);
    }

    #[test]
    fn params_validation_enforces_per_algorithm_rules() {
        // FIPS 202: everything empty.
        assert!(AlgorithmParams::none()
            .validate(WireAlgorithm::Sha3_256)
            .is_ok());
        assert!(matches!(
            AlgorithmParams::customization(&b"ctx"[..]).validate(WireAlgorithm::Sha3_256),
            Err(ProtocolError::BadParams { .. })
        ));
        // Keys only for KMAC.
        assert!(AlgorithmParams::kmac(&b"k"[..], &b""[..])
            .validate(WireAlgorithm::Kmac128)
            .is_ok());
        assert!(matches!(
            AlgorithmParams::kmac(&b"k"[..], &b""[..]).validate(WireAlgorithm::CShake128),
            Err(ProtocolError::BadParams { .. })
        ));
        // Function names only for cSHAKE.
        assert!(matches!(
            AlgorithmParams::cshake(&b"N"[..], &b""[..]).validate(WireAlgorithm::TupleHash128),
            Err(ProtocolError::BadParams { .. })
        ));
        // ParallelHash needs a block size; others must not carry one.
        assert!(matches!(
            AlgorithmParams::customization(&b""[..]).validate(WireAlgorithm::ParallelHash128),
            Err(ProtocolError::BadParams { .. })
        ));
        assert!(AlgorithmParams::parallel_hash(8, &b""[..])
            .validate(WireAlgorithm::ParallelHash128)
            .is_ok());
        assert!(matches!(
            AlgorithmParams::parallel_hash(8, &b""[..]).validate(WireAlgorithm::Kmac128),
            Err(ProtocolError::BadParams { .. })
        ));
        // The KRV tree block size is fixed.
        assert!(AlgorithmParams::customization(&b""[..])
            .validate(WireAlgorithm::TreeHash256)
            .is_ok());
        assert!(AlgorithmParams::parallel_hash(4096, &b""[..])
            .validate(WireAlgorithm::TreeHash256)
            .is_ok());
        assert!(matches!(
            AlgorithmParams::parallel_hash(512, &b""[..]).validate(WireAlgorithm::TreeHash256),
            Err(ProtocolError::BadParams { .. })
        ));
        // Oversized strings are rejected.
        let oversized = AlgorithmParams::customization(vec![0u8; MAX_PARAM_LEN + 1]);
        assert!(matches!(
            oversized.validate(WireAlgorithm::CShake256),
            Err(ProtocolError::BadParams { .. })
        ));
    }

    #[test]
    fn tuple_payload_framing_round_trips_and_rejects_mismatches() {
        let entries: [&[u8]; 3] = [b"abc", b"", b"01234567"];
        let payload = encode_tuple_payload(&entries);
        assert!(validate_tuple_framing(&payload).is_ok());
        let decoded: Vec<&[u8]> = tuple_entries(&payload).collect();
        assert_eq!(decoded, entries);
        // A truncated or over-declared framing fails.
        assert_eq!(
            validate_tuple_framing(&payload[..payload.len() - 1]),
            Err(ProtocolError::BadTuplePayload)
        );
        assert_eq!(
            validate_tuple_framing(&[0xFF, 0xFF, 0xFF]),
            Err(ProtocolError::BadTuplePayload)
        );
        let over_declared = encode_tuple_payload(&[b"abc"])[..5].to_vec();
        assert_eq!(
            validate_tuple_framing(&over_declared),
            Err(ProtocolError::BadTuplePayload)
        );
    }

    #[test]
    fn strict_decode_rejects_each_malformation_with_its_typed_error() {
        let good = Request::Hash {
            id: 1,
            algorithm: WireAlgorithm::Sha3_256,
            output_len: 32,
            deadline: None,
            params: AlgorithmParams::none(),
            payload: b"abc".to_vec(),
        }
        .encode();
        assert!(Request::decode(&good).is_ok());

        let mut bad_magic = good.clone();
        bad_magic[0] = b'X';
        assert_eq!(
            Request::decode(&bad_magic),
            Err(ProtocolError::BadMagic { got: *b"XRVH" })
        );

        let mut bad_version = good.clone();
        bad_version[4] = 9;
        assert_eq!(
            Request::decode(&bad_version),
            Err(ProtocolError::BadVersion { got: 9 })
        );

        let mut bad_kind = good.clone();
        bad_kind[5] = 0x7F;
        assert_eq!(
            Request::decode(&bad_kind),
            Err(ProtocolError::UnknownKind { got: 0x7F })
        );

        let response_kind = Response::Digest {
            id: 1,
            bytes: vec![0; 4],
        }
        .encode();
        assert_eq!(
            Request::decode(&response_kind),
            Err(ProtocolError::UnexpectedKind { got: 0x81 })
        );

        let truncated = &good[..good.len() - 1];
        assert!(matches!(
            Request::decode(truncated),
            Err(ProtocolError::Truncated { .. })
        ));

        let mut trailing = good.clone();
        trailing.push(0);
        assert_eq!(
            Request::decode(&trailing),
            Err(ProtocolError::TrailingBytes { extra: 1 })
        );

        let wrong_output = Request::Hash {
            id: 1,
            algorithm: WireAlgorithm::Sha3_512,
            output_len: 32,
            deadline: None,
            params: AlgorithmParams::none(),
            payload: Vec::new(),
        }
        .encode();
        assert_eq!(
            Request::decode(&wrong_output),
            Err(ProtocolError::WrongOutputLen {
                algorithm: WireAlgorithm::Sha3_512,
                expected: 64,
                got: 32,
            })
        );

        let oversized_output = Request::Hash {
            id: 1,
            algorithm: WireAlgorithm::Shake256,
            output_len: MAX_OUTPUT_LEN + 1,
            deadline: None,
            params: AlgorithmParams::none(),
            payload: Vec::new(),
        }
        .encode();
        assert_eq!(
            Request::decode(&oversized_output),
            Err(ProtocolError::OversizedOutput {
                len: MAX_OUTPUT_LEN + 1
            })
        );

        // A params block the algorithm does not allow.
        let bad_params = Request::Hash {
            id: 1,
            algorithm: WireAlgorithm::Sha3_256,
            output_len: 32,
            deadline: None,
            params: AlgorithmParams::customization(&b"nope"[..]),
            payload: Vec::new(),
        }
        .encode();
        assert!(matches!(
            Request::decode(&bad_params),
            Err(ProtocolError::BadParams { .. })
        ));

        // An ABSORB chunk over the named protocol limit. The declared
        // length is checked before the bytes, exactly like the frame
        // limit, so build the frame by hand.
        let mut oversized_chunk = header(KIND_ABSORB, 1, 12);
        oversized_chunk.extend_from_slice(&7u64.to_le_bytes());
        oversized_chunk.extend_from_slice(&((MAX_CHUNK_LEN + 1) as u32).to_le_bytes());
        assert_eq!(
            Request::decode(&oversized_chunk),
            Err(ProtocolError::OversizedChunk {
                len: MAX_CHUNK_LEN + 1
            })
        );

        // A SQUEEZE over the output cap.
        let oversized_squeeze = Request::Squeeze {
            id: 1,
            session: 7,
            len: MAX_OUTPUT_LEN + 1,
        }
        .encode();
        assert_eq!(
            Request::decode(&oversized_squeeze),
            Err(ProtocolError::OversizedOutput {
                len: MAX_OUTPUT_LEN + 1
            })
        );

        // A malformed TupleHash one-shot payload.
        let bad_tuple = Request::Hash {
            id: 1,
            algorithm: WireAlgorithm::TupleHash256,
            output_len: 64,
            deadline: None,
            params: AlgorithmParams::none(),
            payload: vec![0xFF; 3],
        }
        .encode();
        assert_eq!(
            Request::decode(&bad_tuple),
            Err(ProtocolError::BadTuplePayload)
        );
    }

    #[test]
    fn max_chunk_frames_fit_the_shared_frame_limit() {
        // The named limits are consistent by construction: a maximal
        // ABSORB chunk's whole frame body stays within the frame limit
        // both sides read with.
        let frame = Request::Absorb {
            id: u64::MAX,
            session: u64::MAX,
            chunk: vec![0u8; MAX_CHUNK_LEN],
        }
        .encode();
        assert!(frame.len() <= DEFAULT_MAX_FRAME, "{}", frame.len());
        assert!(Request::decode(&frame).is_ok());
        // And the largest SQUEEZED response fits too.
        let response = Response::Squeezed {
            id: u64::MAX,
            session: u64::MAX,
            bytes: vec![0u8; MAX_OUTPUT_LEN],
        }
        .encode();
        assert!(response.len() <= DEFAULT_MAX_FRAME);
    }

    #[test]
    fn frame_io_round_trips_and_enforces_the_length_limit() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"hello").expect("write");
        write_frame(&mut wire, b"").expect("write");
        let mut reader = wire.as_slice();
        assert_eq!(
            read_frame(&mut reader, 64).expect("read").expect("frame"),
            Ok(b"hello".to_vec())
        );
        assert_eq!(
            read_frame(&mut reader, 64).expect("read").expect("frame"),
            Ok(Vec::new())
        );
        assert!(read_frame(&mut reader, 64).expect("read").is_none(), "EOF");

        let mut oversized = Vec::new();
        write_frame(&mut oversized, &[0u8; 100]).expect("write");
        assert_eq!(
            read_frame(&mut oversized.as_slice(), 64)
                .expect("read")
                .expect("frame"),
            Err(ProtocolError::OversizedFrame { len: 100, max: 64 })
        );

        // EOF mid-prefix and mid-body are transport errors, not clean closes.
        let mut partial = wire[..2].to_vec();
        assert!(read_frame(&mut partial.as_slice(), 64).is_err());
        partial = wire[..7].to_vec();
        assert!(read_frame(&mut partial.as_slice(), 64).is_err());
    }

    #[test]
    fn snapshot_encoding_is_fixed_width_and_lossless() {
        let snapshot = sample_snapshot();
        let mut encoded = Vec::new();
        encode_snapshot(&snapshot, &mut encoded);
        assert_eq!(encoded.len(), SNAPSHOT_LEN);
        let mut cursor = Cursor::new(&encoded);
        let decoded = decode_snapshot(&mut cursor).expect("decode");
        cursor.finish().expect("nothing trailing");
        assert_eq!(decoded, snapshot);
    }

    #[test]
    fn errors_and_codes_format_human_readably() {
        assert_eq!(ErrorCode::Busy.to_string(), "BUSY");
        assert_eq!(ErrorCode::from_byte(2), Ok(ErrorCode::Deadline));
        assert_eq!(ErrorCode::from_byte(5), Ok(ErrorCode::BadSession));
        assert_eq!(ErrorCode::from_byte(6), Ok(ErrorCode::SessionState));
        assert_eq!(ErrorCode::from_byte(7), Ok(ErrorCode::SessionLimit));
        assert_eq!(ErrorCode::from_byte(8), Ok(ErrorCode::BadKey));
        assert_eq!(ErrorCode::BadKey.to_string(), "BAD_KEY");
        assert_eq!(
            ErrorCode::from_byte(0),
            Err(ProtocolError::UnknownErrorCode { got: 0 })
        );
        assert_eq!(
            ErrorCode::from_byte(9),
            Err(ProtocolError::UnknownErrorCode { got: 9 })
        );
        let text = ProtocolError::OversizedFrame { len: 10, max: 5 }.to_string();
        assert!(text.contains("10") && text.contains("5"), "{text}");
        assert!(ProtocolError::BadUtf8.to_string().contains("UTF-8"));
        assert!(ProtocolError::OversizedChunk { len: 1 }
            .to_string()
            .contains("ABSORB"));
    }
}
