//! The versioned binary wire protocol of the remote hashing daemon.
//!
//! Every message travels as one **frame**: a little-endian `u32` length
//! prefix followed by that many body bytes. A body always starts with
//! the same header — [`MAGIC`], [`VERSION`], a kind byte, and a caller
//! chosen `u64` request id echoed verbatim in the response — followed by
//! a kind-specific payload:
//!
//! | kind | direction | payload |
//! |---|---|---|
//! | `0x01` HASH | request | algorithm `u8`, output len `u32`, deadline µs `u64` (0 = none), payload len `u32`, payload bytes |
//! | `0x02` STATS | request | empty |
//! | `0x81` DIGEST | response | digest len `u32`, digest bytes |
//! | `0x82` ERROR | response | code `u8`, detail len `u16`, UTF-8 detail |
//! | `0x83` STATS | response | fixed-width [`MetricsSnapshot`] encoding |
//!
//! All integers are little-endian. Decoding is **strict**: unknown
//! magic, version, kind, algorithm or error code, truncated or trailing
//! bytes, and over-limit lengths are all typed [`ProtocolError`]s — a
//! server treats any of them as a fatal protocol violation for that
//! connection (never for the daemon), and a client surfaces them to the
//! caller.

use krv_service::{MetricsSnapshot, QuantileSummary};
use krv_sha3::SpongeParams;
use std::io::{self, Read, Write};
use std::time::Duration;

/// The four magic bytes opening every frame body (`b"KRVH"`).
pub const MAGIC: [u8; 4] = *b"KRVH";

/// Protocol version this implementation speaks. Version 2 grew the
/// STATS reply by the tier counters (`native_served`,
/// `simulator_served`, `mirrored`, `mirror_mismatches`); version 3
/// added the fair-share `throttled` counter. Older peers are rejected
/// rather than mis-decoded.
pub const VERSION: u8 = 3;

/// Fixed header length of every frame body: magic, version, kind, id.
pub const HEADER_LEN: usize = 4 + 1 + 1 + 8;

/// Default upper bound on one frame body; larger declared lengths are
/// rejected before any allocation.
pub const DEFAULT_MAX_FRAME: usize = 1 << 20;

/// Upper bound on the requested XOF output length (64 KiB). Far above
/// any digest, far below anything that could amplify a small request
/// into an unbounded response.
pub const MAX_OUTPUT_LEN: usize = 1 << 16;

const KIND_HASH: u8 = 0x01;
const KIND_STATS: u8 = 0x02;
const KIND_DIGEST: u8 = 0x81;
const KIND_ERROR: u8 = 0x82;
const KIND_STATS_REPLY: u8 = 0x83;

/// Why a frame failed strict decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtocolError {
    /// The body ended before a declared field ended.
    Truncated {
        /// Bytes the decoder needed next.
        needed: usize,
        /// Bytes that remained.
        got: usize,
    },
    /// The frame does not start with [`MAGIC`].
    BadMagic {
        /// The four bytes observed instead.
        got: [u8; 4],
    },
    /// A version this implementation does not speak.
    BadVersion {
        /// The version byte observed.
        got: u8,
    },
    /// A kind byte outside the protocol.
    UnknownKind {
        /// The kind byte observed.
        got: u8,
    },
    /// A valid kind travelling in the wrong direction (a response kind
    /// decoded as a request, or vice versa).
    UnexpectedKind {
        /// The kind byte observed.
        got: u8,
    },
    /// An algorithm id outside [`WireAlgorithm::ALL`].
    UnknownAlgorithm {
        /// The algorithm byte observed.
        got: u8,
    },
    /// An error code outside [`ErrorCode`].
    UnknownErrorCode {
        /// The code byte observed.
        got: u8,
    },
    /// A frame whose declared length exceeds the negotiated limit.
    OversizedFrame {
        /// Declared body length.
        len: usize,
        /// The limit in force.
        max: usize,
    },
    /// A requested output length above [`MAX_OUTPUT_LEN`].
    OversizedOutput {
        /// Requested output length.
        len: usize,
    },
    /// A fixed-output hash function requested with the wrong length.
    WrongOutputLen {
        /// The algorithm requested.
        algorithm: WireAlgorithm,
        /// Its fixed digest length.
        expected: usize,
        /// The length requested instead.
        got: usize,
    },
    /// Bytes left over after the last declared field.
    TrailingBytes {
        /// How many bytes remained.
        extra: usize,
    },
    /// An error detail that is not valid UTF-8.
    BadUtf8,
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtocolError::Truncated { needed, got } => {
                write!(f, "truncated frame: needed {needed} more bytes, got {got}")
            }
            ProtocolError::BadMagic { got } => write!(f, "bad magic {got:02x?}"),
            ProtocolError::BadVersion { got } => write!(f, "unsupported protocol version {got}"),
            ProtocolError::UnknownKind { got } => write!(f, "unknown frame kind {got:#04x}"),
            ProtocolError::UnexpectedKind { got } => {
                write!(f, "frame kind {got:#04x} travelling in the wrong direction")
            }
            ProtocolError::UnknownAlgorithm { got } => write!(f, "unknown algorithm id {got}"),
            ProtocolError::UnknownErrorCode { got } => write!(f, "unknown error code {got}"),
            ProtocolError::OversizedFrame { len, max } => {
                write!(f, "frame of {len} bytes exceeds the {max}-byte limit")
            }
            ProtocolError::OversizedOutput { len } => {
                write!(
                    f,
                    "output length {len} exceeds the {MAX_OUTPUT_LEN}-byte limit"
                )
            }
            ProtocolError::WrongOutputLen {
                algorithm,
                expected,
                got,
            } => write!(
                f,
                "{} produces {expected} bytes, request asked for {got}",
                algorithm.name()
            ),
            ProtocolError::TrailingBytes { extra } => {
                write!(f, "{extra} trailing bytes after the last field")
            }
            ProtocolError::BadUtf8 => write!(f, "error detail is not valid UTF-8"),
        }
    }
}

impl std::error::Error for ProtocolError {}

/// The six FIPS 202 functions as one-byte wire ids.
///
/// Ids are part of the protocol: they never change meaning across
/// versions, and every id round-trips through [`Self::from_id`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum WireAlgorithm {
    /// SHA3-224, id 1.
    Sha3_224 = 1,
    /// SHA3-256, id 2.
    Sha3_256 = 2,
    /// SHA3-384, id 3.
    Sha3_384 = 3,
    /// SHA3-512, id 4.
    Sha3_512 = 4,
    /// SHAKE128, id 5.
    Shake128 = 5,
    /// SHAKE256, id 6.
    Shake256 = 6,
}

impl WireAlgorithm {
    /// Every algorithm, in wire-id order.
    pub const ALL: [WireAlgorithm; 6] = [
        WireAlgorithm::Sha3_224,
        WireAlgorithm::Sha3_256,
        WireAlgorithm::Sha3_384,
        WireAlgorithm::Sha3_512,
        WireAlgorithm::Shake128,
        WireAlgorithm::Shake256,
    ];

    /// The wire id.
    pub const fn id(self) -> u8 {
        self as u8
    }

    /// The algorithm of a wire id.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::UnknownAlgorithm`] for an id outside `1..=6`.
    pub fn from_id(id: u8) -> Result<Self, ProtocolError> {
        match id {
            1 => Ok(WireAlgorithm::Sha3_224),
            2 => Ok(WireAlgorithm::Sha3_256),
            3 => Ok(WireAlgorithm::Sha3_384),
            4 => Ok(WireAlgorithm::Sha3_512),
            5 => Ok(WireAlgorithm::Shake128),
            6 => Ok(WireAlgorithm::Shake256),
            got => Err(ProtocolError::UnknownAlgorithm { got }),
        }
    }

    /// The function's display name.
    pub const fn name(self) -> &'static str {
        match self {
            WireAlgorithm::Sha3_224 => "SHA3-224",
            WireAlgorithm::Sha3_256 => "SHA3-256",
            WireAlgorithm::Sha3_384 => "SHA3-384",
            WireAlgorithm::Sha3_512 => "SHA3-512",
            WireAlgorithm::Shake128 => "SHAKE128",
            WireAlgorithm::Shake256 => "SHAKE256",
        }
    }

    /// The sponge parameters the service hashes this algorithm with.
    pub fn params(self) -> SpongeParams {
        match self {
            WireAlgorithm::Sha3_224 => SpongeParams::sha3(224),
            WireAlgorithm::Sha3_256 => SpongeParams::sha3(256),
            WireAlgorithm::Sha3_384 => SpongeParams::sha3(384),
            WireAlgorithm::Sha3_512 => SpongeParams::sha3(512),
            WireAlgorithm::Shake128 => SpongeParams::shake(128),
            WireAlgorithm::Shake256 => SpongeParams::shake(256),
        }
    }

    /// The fixed digest length of the hash functions, `None` for the
    /// XOFs (whose output length travels in the request).
    pub const fn fixed_output_len(self) -> Option<usize> {
        match self {
            WireAlgorithm::Sha3_224 => Some(28),
            WireAlgorithm::Sha3_256 => Some(32),
            WireAlgorithm::Sha3_384 => Some(48),
            WireAlgorithm::Sha3_512 => Some(64),
            WireAlgorithm::Shake128 | WireAlgorithm::Shake256 => None,
        }
    }
}

/// Why the server answered a request with an [`Response::Error`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ErrorCode {
    /// Backpressure: the admission queue or the connection's in-flight
    /// window is full. Retry later.
    Busy = 1,
    /// The request's deadline elapsed before it was dispatched.
    Deadline = 2,
    /// The engine pool failed the request after its retry.
    Internal = 3,
    /// The daemon is draining; no new requests are admitted.
    ShuttingDown = 4,
}

impl ErrorCode {
    /// The error code of a wire byte.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::UnknownErrorCode`] outside `1..=4`.
    pub fn from_byte(byte: u8) -> Result<Self, ProtocolError> {
        match byte {
            1 => Ok(ErrorCode::Busy),
            2 => Ok(ErrorCode::Deadline),
            3 => Ok(ErrorCode::Internal),
            4 => Ok(ErrorCode::ShuttingDown),
            got => Err(ProtocolError::UnknownErrorCode { got }),
        }
    }

    /// The code's display name.
    pub const fn name(self) -> &'static str {
        match self {
            ErrorCode::Busy => "BUSY",
            ErrorCode::Deadline => "DEADLINE",
            ErrorCode::Internal => "INTERNAL",
            ErrorCode::ShuttingDown => "SHUTTING_DOWN",
        }
    }
}

impl std::fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A client → server frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Hash `payload` and respond with the squeezed output.
    Hash {
        /// Caller-chosen id echoed in the response.
        id: u64,
        /// Which FIPS 202 function to run.
        algorithm: WireAlgorithm,
        /// Output bytes to squeeze (the digest length for the hash
        /// functions, caller-chosen for the XOFs).
        output_len: usize,
        /// Deadline relative to admission; `None` waits indefinitely.
        deadline: Option<Duration>,
        /// The message to hash.
        payload: Vec<u8>,
    },
    /// Return the service's [`MetricsSnapshot`].
    Stats {
        /// Caller-chosen id echoed in the response.
        id: u64,
    },
}

impl Request {
    /// The request id.
    pub fn id(&self) -> u64 {
        match self {
            Request::Hash { id, .. } | Request::Stats { id } => *id,
        }
    }

    /// Encodes the frame body (without the length prefix).
    pub fn encode(&self) -> Vec<u8> {
        match self {
            Request::Hash {
                id,
                algorithm,
                output_len,
                deadline,
                payload,
            } => {
                let mut body = header(KIND_HASH, *id, 1 + 4 + 8 + 4 + payload.len());
                body.push(algorithm.id());
                body.extend_from_slice(&(*output_len as u32).to_le_bytes());
                let deadline_us =
                    deadline.map_or(0, |d| d.as_micros().min(u128::from(u64::MAX)) as u64);
                body.extend_from_slice(&deadline_us.to_le_bytes());
                body.extend_from_slice(&(payload.len() as u32).to_le_bytes());
                body.extend_from_slice(payload);
                body
            }
            Request::Stats { id } => header(KIND_STATS, *id, 0),
        }
    }

    /// Strictly decodes a frame body.
    ///
    /// # Errors
    ///
    /// Any [`ProtocolError`]; see the module table for the layout every
    /// field is checked against.
    pub fn decode(body: &[u8]) -> Result<Self, ProtocolError> {
        let mut cursor = Cursor::new(body);
        let (kind, id) = cursor.header()?;
        let request = match kind {
            KIND_HASH => {
                let algorithm = WireAlgorithm::from_id(cursor.u8()?)?;
                let output_len = cursor.u32()? as usize;
                if output_len > MAX_OUTPUT_LEN {
                    return Err(ProtocolError::OversizedOutput { len: output_len });
                }
                if let Some(expected) = algorithm.fixed_output_len() {
                    if output_len != expected {
                        return Err(ProtocolError::WrongOutputLen {
                            algorithm,
                            expected,
                            got: output_len,
                        });
                    }
                }
                let deadline_us = cursor.u64()?;
                let payload = cursor.bytes_u32_len()?;
                Request::Hash {
                    id,
                    algorithm,
                    output_len,
                    deadline: (deadline_us > 0).then(|| Duration::from_micros(deadline_us)),
                    payload,
                }
            }
            KIND_STATS => Request::Stats { id },
            KIND_DIGEST | KIND_ERROR | KIND_STATS_REPLY => {
                return Err(ProtocolError::UnexpectedKind { got: kind })
            }
            got => return Err(ProtocolError::UnknownKind { got }),
        };
        cursor.finish()?;
        Ok(request)
    }
}

/// A server → client frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// The squeezed output of a [`Request::Hash`].
    Digest {
        /// The request id this answers.
        id: u64,
        /// The output bytes.
        bytes: Vec<u8>,
    },
    /// A request that completed without output.
    Error {
        /// The request id this answers.
        id: u64,
        /// Why there is no output.
        code: ErrorCode,
        /// Human-readable detail.
        detail: String,
    },
    /// The service metrics answering a [`Request::Stats`].
    Stats {
        /// The request id this answers.
        id: u64,
        /// The snapshot at the time the request was served. Boxed so
        /// the common digest/error variants stay small.
        snapshot: Box<MetricsSnapshot>,
    },
}

impl Response {
    /// The request id the response answers.
    pub fn id(&self) -> u64 {
        match self {
            Response::Digest { id, .. }
            | Response::Error { id, .. }
            | Response::Stats { id, .. } => *id,
        }
    }

    /// Encodes the frame body (without the length prefix).
    pub fn encode(&self) -> Vec<u8> {
        match self {
            Response::Digest { id, bytes } => {
                let mut body = header(KIND_DIGEST, *id, 4 + bytes.len());
                body.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
                body.extend_from_slice(bytes);
                body
            }
            Response::Error { id, code, detail } => {
                let detail = &detail.as_bytes()[..detail.len().min(usize::from(u16::MAX))];
                let mut body = header(KIND_ERROR, *id, 1 + 2 + detail.len());
                body.push(*code as u8);
                body.extend_from_slice(&(detail.len() as u16).to_le_bytes());
                body.extend_from_slice(detail);
                body
            }
            Response::Stats { id, snapshot } => {
                let mut body = header(KIND_STATS_REPLY, *id, SNAPSHOT_LEN);
                encode_snapshot(snapshot, &mut body);
                body
            }
        }
    }

    /// Strictly decodes a frame body.
    ///
    /// # Errors
    ///
    /// Any [`ProtocolError`]; request kinds decode as
    /// [`ProtocolError::UnexpectedKind`].
    pub fn decode(body: &[u8]) -> Result<Self, ProtocolError> {
        let mut cursor = Cursor::new(body);
        let (kind, id) = cursor.header()?;
        let response = match kind {
            KIND_DIGEST => Response::Digest {
                id,
                bytes: cursor.bytes_u32_len()?,
            },
            KIND_ERROR => {
                let code = ErrorCode::from_byte(cursor.u8()?)?;
                let len = usize::from(cursor.u16()?);
                let detail = String::from_utf8(cursor.take(len)?.to_vec())
                    .map_err(|_| ProtocolError::BadUtf8)?;
                Response::Error { id, code, detail }
            }
            KIND_STATS_REPLY => Response::Stats {
                id,
                snapshot: Box::new(decode_snapshot(&mut cursor)?),
            },
            KIND_HASH | KIND_STATS => return Err(ProtocolError::UnexpectedKind { got: kind }),
            got => return Err(ProtocolError::UnknownKind { got }),
        };
        cursor.finish()?;
        Ok(response)
    }
}

fn header(kind: u8, id: u64, payload_len: usize) -> Vec<u8> {
    let mut body = Vec::with_capacity(HEADER_LEN + payload_len);
    body.extend_from_slice(&MAGIC);
    body.push(VERSION);
    body.push(kind);
    body.extend_from_slice(&id.to_le_bytes());
    body
}

/// Fixed encoded length of a [`MetricsSnapshot`]: 16 `u64`-width fields
/// plus three six-field [`QuantileSummary`] blocks.
const SNAPSHOT_LEN: usize = 16 * 8 + 3 * 6 * 8;

fn encode_snapshot(snapshot: &MetricsSnapshot, out: &mut Vec<u8>) {
    for value in [
        snapshot.submitted,
        snapshot.completed,
        snapshot.timeouts,
        snapshot.rejected,
        snapshot.throttled,
        snapshot.worker_failures,
        snapshot.retries,
        snapshot.batches,
        snapshot.native_served,
        snapshot.simulator_served,
        snapshot.mirrored,
        snapshot.mirror_mismatches,
        snapshot.queue_depth as u64,
        snapshot.mean_batch_fill.to_bits(),
        snapshot.alive_workers as u64,
        snapshot.batch_slots as u64,
    ] {
        out.extend_from_slice(&value.to_le_bytes());
    }
    for quantiles in [&snapshot.queue_ns, &snapshot.service_ns, &snapshot.e2e_ns] {
        for value in [
            quantiles.count,
            quantiles.mean.to_bits(),
            quantiles.p50,
            quantiles.p90,
            quantiles.p99,
            quantiles.max,
        ] {
            out.extend_from_slice(&value.to_le_bytes());
        }
    }
}

fn decode_snapshot(cursor: &mut Cursor<'_>) -> Result<MetricsSnapshot, ProtocolError> {
    let u64s = |cursor: &mut Cursor<'_>| -> Result<[u64; 16], ProtocolError> {
        let mut values = [0u64; 16];
        for value in &mut values {
            *value = cursor.u64()?;
        }
        Ok(values)
    };
    let counters = u64s(cursor)?;
    let quantiles = |cursor: &mut Cursor<'_>| -> Result<QuantileSummary, ProtocolError> {
        Ok(QuantileSummary {
            count: cursor.u64()?,
            mean: f64::from_bits(cursor.u64()?),
            p50: cursor.u64()?,
            p90: cursor.u64()?,
            p99: cursor.u64()?,
            max: cursor.u64()?,
        })
    };
    Ok(MetricsSnapshot {
        submitted: counters[0],
        completed: counters[1],
        timeouts: counters[2],
        rejected: counters[3],
        throttled: counters[4],
        worker_failures: counters[5],
        retries: counters[6],
        batches: counters[7],
        native_served: counters[8],
        simulator_served: counters[9],
        mirrored: counters[10],
        mirror_mismatches: counters[11],
        queue_depth: counters[12] as usize,
        mean_batch_fill: f64::from_bits(counters[13]),
        alive_workers: counters[14] as usize,
        batch_slots: counters[15] as usize,
        queue_ns: quantiles(cursor)?,
        service_ns: quantiles(cursor)?,
        e2e_ns: quantiles(cursor)?,
    })
}

/// A strict little-endian reader over one frame body.
struct Cursor<'a> {
    body: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn new(body: &'a [u8]) -> Self {
        Self { body, at: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ProtocolError> {
        let remaining = self.body.len() - self.at;
        if remaining < n {
            return Err(ProtocolError::Truncated {
                needed: n,
                got: remaining,
            });
        }
        let slice = &self.body[self.at..self.at + n];
        self.at += n;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, ProtocolError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, ProtocolError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("len 2")))
    }

    fn u32(&mut self) -> Result<u32, ProtocolError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("len 4")))
    }

    fn u64(&mut self) -> Result<u64, ProtocolError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("len 8")))
    }

    fn bytes_u32_len(&mut self) -> Result<Vec<u8>, ProtocolError> {
        let len = self.u32()? as usize;
        Ok(self.take(len)?.to_vec())
    }

    /// Checks magic, version, and reads the kind and request id.
    fn header(&mut self) -> Result<(u8, u64), ProtocolError> {
        let magic = self.take(4)?;
        if magic != MAGIC {
            return Err(ProtocolError::BadMagic {
                got: magic.try_into().expect("len 4"),
            });
        }
        let version = self.u8()?;
        if version != VERSION {
            return Err(ProtocolError::BadVersion { got: version });
        }
        let kind = self.u8()?;
        let id = self.u64()?;
        Ok((kind, id))
    }

    /// Rejects trailing bytes after the last field.
    fn finish(self) -> Result<(), ProtocolError> {
        if self.at != self.body.len() {
            return Err(ProtocolError::TrailingBytes {
                extra: self.body.len() - self.at,
            });
        }
        Ok(())
    }
}

/// Writes one length-prefixed frame.
///
/// # Errors
///
/// Propagates the underlying I/O error.
pub fn write_frame(writer: &mut impl Write, body: &[u8]) -> io::Result<()> {
    writer.write_all(&(body.len() as u32).to_le_bytes())?;
    writer.write_all(body)
}

/// Reads one length-prefixed frame body.
///
/// Returns `Ok(None)` on a clean close (EOF before the first length
/// byte); EOF anywhere later is an [`io::ErrorKind::UnexpectedEof`]. A
/// declared length beyond `max_frame` is surfaced as
/// [`ProtocolError::OversizedFrame`] without reading or allocating the
/// body.
///
/// # Errors
///
/// I/O errors from the reader; the oversized-frame protocol error rides
/// in the `Ok` layer so the caller can distinguish it from transport
/// failure.
pub fn read_frame(
    reader: &mut impl Read,
    max_frame: usize,
) -> io::Result<Option<Result<Vec<u8>, ProtocolError>>> {
    let mut prefix = [0u8; 4];
    let mut filled = 0;
    while filled < prefix.len() {
        match reader.read(&mut prefix[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => return Err(io::ErrorKind::UnexpectedEof.into()),
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    let len = u32::from_le_bytes(prefix) as usize;
    if len > max_frame {
        return Ok(Some(Err(ProtocolError::OversizedFrame {
            len,
            max: max_frame,
        })));
    }
    let mut body = vec![0u8; len];
    reader.read_exact(&mut body)?;
    Ok(Some(Ok(body)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_snapshot() -> MetricsSnapshot {
        let quantiles = |scale: u64| QuantileSummary {
            count: 10 * scale,
            mean: 1234.5 * scale as f64,
            p50: 1000 * scale,
            p90: 2000 * scale,
            p99: 3000 * scale,
            max: 4000 * scale,
        };
        MetricsSnapshot {
            submitted: 100,
            completed: 90,
            timeouts: 4,
            rejected: 3,
            throttled: 5,
            worker_failures: 2,
            retries: 1,
            batches: 25,
            native_served: 60,
            simulator_served: 30,
            mirrored: 12,
            mirror_mismatches: 1,
            queue_depth: 7,
            mean_batch_fill: 0.875,
            alive_workers: 2,
            batch_slots: 8,
            queue_ns: quantiles(1),
            service_ns: quantiles(2),
            e2e_ns: quantiles(3),
        }
    }

    #[test]
    fn requests_round_trip() {
        let requests = [
            Request::Hash {
                id: 42,
                algorithm: WireAlgorithm::Sha3_256,
                output_len: 32,
                deadline: Some(Duration::from_micros(1500)),
                payload: b"the message".to_vec(),
            },
            Request::Hash {
                id: u64::MAX,
                algorithm: WireAlgorithm::Shake128,
                output_len: 133,
                deadline: None,
                payload: Vec::new(),
            },
            Request::Stats { id: 7 },
        ];
        for request in requests {
            let decoded = Request::decode(&request.encode()).expect("round trip");
            assert_eq!(decoded, request);
        }
    }

    #[test]
    fn responses_round_trip() {
        let responses = [
            Response::Digest {
                id: 9,
                bytes: vec![0xAB; 48],
            },
            Response::Error {
                id: 10,
                code: ErrorCode::Busy,
                detail: "queue full at depth 1024".into(),
            },
            Response::Stats {
                id: 11,
                snapshot: Box::new(sample_snapshot()),
            },
        ];
        for response in responses {
            let decoded = Response::decode(&response.encode()).expect("round trip");
            assert_eq!(decoded, response);
        }
    }

    #[test]
    fn algorithm_ids_are_stable_and_exhaustive() {
        for (index, algorithm) in WireAlgorithm::ALL.into_iter().enumerate() {
            assert_eq!(
                algorithm.id() as usize,
                index + 1,
                "ids are 1-based and dense"
            );
            assert_eq!(WireAlgorithm::from_id(algorithm.id()), Ok(algorithm));
        }
        assert_eq!(
            WireAlgorithm::from_id(0),
            Err(ProtocolError::UnknownAlgorithm { got: 0 })
        );
        assert_eq!(
            WireAlgorithm::from_id(7),
            Err(ProtocolError::UnknownAlgorithm { got: 7 })
        );
    }

    #[test]
    fn strict_decode_rejects_each_malformation_with_its_typed_error() {
        let good = Request::Hash {
            id: 1,
            algorithm: WireAlgorithm::Sha3_256,
            output_len: 32,
            deadline: None,
            payload: b"abc".to_vec(),
        }
        .encode();
        assert!(Request::decode(&good).is_ok());

        let mut bad_magic = good.clone();
        bad_magic[0] = b'X';
        assert_eq!(
            Request::decode(&bad_magic),
            Err(ProtocolError::BadMagic { got: *b"XRVH" })
        );

        let mut bad_version = good.clone();
        bad_version[4] = 9;
        assert_eq!(
            Request::decode(&bad_version),
            Err(ProtocolError::BadVersion { got: 9 })
        );

        let mut bad_kind = good.clone();
        bad_kind[5] = 0x7F;
        assert_eq!(
            Request::decode(&bad_kind),
            Err(ProtocolError::UnknownKind { got: 0x7F })
        );

        let response_kind = Response::Digest {
            id: 1,
            bytes: vec![0; 4],
        }
        .encode();
        assert_eq!(
            Request::decode(&response_kind),
            Err(ProtocolError::UnexpectedKind { got: 0x81 })
        );

        let truncated = &good[..good.len() - 1];
        assert!(matches!(
            Request::decode(truncated),
            Err(ProtocolError::Truncated { .. })
        ));

        let mut trailing = good.clone();
        trailing.push(0);
        assert_eq!(
            Request::decode(&trailing),
            Err(ProtocolError::TrailingBytes { extra: 1 })
        );

        let wrong_output = Request::Hash {
            id: 1,
            algorithm: WireAlgorithm::Sha3_512,
            output_len: 32,
            deadline: None,
            payload: Vec::new(),
        }
        .encode();
        assert_eq!(
            Request::decode(&wrong_output),
            Err(ProtocolError::WrongOutputLen {
                algorithm: WireAlgorithm::Sha3_512,
                expected: 64,
                got: 32,
            })
        );

        let oversized_output = Request::Hash {
            id: 1,
            algorithm: WireAlgorithm::Shake256,
            output_len: MAX_OUTPUT_LEN + 1,
            deadline: None,
            payload: Vec::new(),
        }
        .encode();
        assert_eq!(
            Request::decode(&oversized_output),
            Err(ProtocolError::OversizedOutput {
                len: MAX_OUTPUT_LEN + 1
            })
        );
    }

    #[test]
    fn frame_io_round_trips_and_enforces_the_length_limit() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"hello").expect("write");
        write_frame(&mut wire, b"").expect("write");
        let mut reader = wire.as_slice();
        assert_eq!(
            read_frame(&mut reader, 64).expect("read").expect("frame"),
            Ok(b"hello".to_vec())
        );
        assert_eq!(
            read_frame(&mut reader, 64).expect("read").expect("frame"),
            Ok(Vec::new())
        );
        assert!(read_frame(&mut reader, 64).expect("read").is_none(), "EOF");

        let mut oversized = Vec::new();
        write_frame(&mut oversized, &[0u8; 100]).expect("write");
        assert_eq!(
            read_frame(&mut oversized.as_slice(), 64)
                .expect("read")
                .expect("frame"),
            Err(ProtocolError::OversizedFrame { len: 100, max: 64 })
        );

        // EOF mid-prefix and mid-body are transport errors, not clean closes.
        let mut partial = wire[..2].to_vec();
        assert!(read_frame(&mut partial.as_slice(), 64).is_err());
        partial = wire[..7].to_vec();
        assert!(read_frame(&mut partial.as_slice(), 64).is_err());
    }

    #[test]
    fn snapshot_encoding_is_fixed_width_and_lossless() {
        let snapshot = sample_snapshot();
        let mut encoded = Vec::new();
        encode_snapshot(&snapshot, &mut encoded);
        assert_eq!(encoded.len(), SNAPSHOT_LEN);
        let mut cursor = Cursor::new(&encoded);
        let decoded = decode_snapshot(&mut cursor).expect("decode");
        cursor.finish().expect("nothing trailing");
        assert_eq!(decoded, snapshot);
    }

    #[test]
    fn errors_and_codes_format_human_readably() {
        assert_eq!(ErrorCode::Busy.to_string(), "BUSY");
        assert_eq!(ErrorCode::from_byte(2), Ok(ErrorCode::Deadline));
        assert_eq!(
            ErrorCode::from_byte(0),
            Err(ProtocolError::UnknownErrorCode { got: 0 })
        );
        let text = ProtocolError::OversizedFrame { len: 10, max: 5 }.to_string();
        assert!(text.contains("10") && text.contains("5"), "{text}");
        assert!(ProtocolError::BadUtf8.to_string().contains("UTF-8"));
    }
}
