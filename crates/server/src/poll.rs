//! The readiness loop: a fixed pool of I/O threads multiplexing every
//! connection over non-blocking sockets, std-only.
//!
//! There is no OS readiness API in std, so readiness is discovered by
//! *attempting*: each I/O thread sweeps its connections, writing until
//! `WouldBlock` and reading until `WouldBlock`, with all sweep state
//! kept in ordinary owned structs. What makes this a poll loop rather
//! than a busy spin is the **adaptive park**: a sweep that moved no
//! bytes and routed no frames parks the thread on a condvar with a
//! short timeout, and every external event that could create work — an
//! accepted connection, a completed request's response frame, shutdown
//! — notifies that condvar. Under load the loop runs back to back;
//! idle, it costs one timed wait per park interval.
//!
//! The [`IoShared`] inbox is the only channel into an I/O thread:
//! the accept thread posts `(token, stream)` pairs, scheduler threads
//! post `(token, frame)` response pairs from ticket callbacks, and
//! shutdown is a flag. Everything is taken atomically at the top of
//! each sweep, which is what makes the connection-close race solvable:
//! a connection whose in-flight count was zero *before* the take cannot
//! have responses still in flight *after* it (callbacks post before
//! they decrement), so `drained-before-take && flushed-after-pump`
//! proves every response reached the socket.

use crate::conn::Connection;
use crate::session::SessionEvent;
use crate::ServerConfig;
use krv_service::ShardedService;
use std::collections::{HashMap, HashSet};
use std::net::TcpStream;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// How long an idle I/O thread parks before re-sweeping. Bounds the
/// latency of discovering newly arrived bytes (no readiness API) and of
/// idle-deadline enforcement.
const PARK: Duration = Duration::from_millis(1);

/// Scratch read-buffer size per I/O thread.
const SCRATCH_LEN: usize = 16 * 1024;

/// Everything an I/O thread needs to serve its connections.
#[derive(Debug)]
pub(crate) struct IoCtx {
    /// The sharded backend; submissions route by connection token.
    pub service: Arc<ShardedService>,
    /// Wire-facing limits.
    pub config: ServerConfig,
    /// This thread's own inbox.
    pub shared: Arc<IoShared>,
}

/// The mailbox feeding one I/O thread.
#[derive(Debug, Default)]
struct Inbox {
    /// Newly accepted connections, tagged with their tokens.
    conns: Vec<(u64, TcpStream)>,
    /// Encoded response frames (wire bytes) routed by token.
    frames: Vec<(u64, Vec<u8>)>,
    /// Session completions (stream ops, tree leaves, tree roots) routed
    /// by token to the owning connection's session table.
    events: Vec<SessionEvent>,
    /// Set once; the thread drains every connection and exits.
    shutdown: bool,
}

/// The shared half of an I/O thread: its inbox plus the wake condvar
/// the adaptive park sleeps on.
#[derive(Debug, Default)]
pub(crate) struct IoShared {
    inbox: Mutex<Inbox>,
    wake: Condvar,
}

impl IoShared {
    pub fn new() -> Self {
        Self::default()
    }

    /// Hands an accepted connection to the thread.
    pub fn post_conn(&self, token: u64, stream: TcpStream) {
        self.inbox
            .lock()
            .expect("io inbox")
            .conns
            .push((token, stream));
        self.wake.notify_one();
    }

    /// Posts an encoded response frame for `token`'s connection. Called
    /// from scheduler threads (ticket callbacks); never blocks on I/O.
    pub fn post_frame(&self, token: u64, frame: Vec<u8>) {
        self.inbox
            .lock()
            .expect("io inbox")
            .frames
            .push((token, frame));
        self.wake.notify_one();
    }

    /// Posts a session completion for `event.token`'s connection.
    /// Called from scheduler threads (ticket callbacks); never blocks
    /// on I/O.
    pub fn post_event(&self, event: SessionEvent) {
        self.inbox.lock().expect("io inbox").events.push(event);
        self.wake.notify_one();
    }

    /// Tells the thread to drain its connections and exit.
    pub fn begin_shutdown(&self) {
        self.inbox.lock().expect("io inbox").shutdown = true;
        self.wake.notify_one();
    }

    /// Takes the whole inbox (the shutdown flag is sticky — it is
    /// copied, not cleared). With `park`, first waits up to [`PARK`]
    /// for anything to arrive (the adaptive part: only a sweep that
    /// made no progress parks).
    fn take(&self, park: bool) -> Inbox {
        let mut inbox = self.inbox.lock().expect("io inbox");
        if park
            && inbox.conns.is_empty()
            && inbox.frames.is_empty()
            && inbox.events.is_empty()
            && !inbox.shutdown
        {
            inbox = self.wake.wait_timeout(inbox, PARK).expect("io inbox").0;
        }
        Inbox {
            conns: std::mem::take(&mut inbox.conns),
            frames: std::mem::take(&mut inbox.frames),
            events: std::mem::take(&mut inbox.events),
            shutdown: inbox.shutdown,
        }
    }
}

/// The I/O thread body: sweeps its connections until shutdown has
/// drained them all.
pub(crate) fn run(ctx: IoCtx) {
    let mut conns: HashMap<u64, Connection> = HashMap::new();
    let mut scratch = vec![0u8; SCRATCH_LEN];
    let mut draining = false;
    let mut park = false;
    loop {
        // Connections already drained *before* this sweep's inbox take:
        // their callbacks all posted before decrementing, so the take
        // below observes every response frame they will ever produce.
        let closable: HashSet<u64> = conns
            .values()
            .filter(|conn| conn.drained())
            .map(Connection::token)
            .collect();

        let Inbox {
            conns: new_conns,
            frames,
            events,
            shutdown,
        } = ctx.shared.take(park);
        let mut progress = false;

        if shutdown && !draining {
            draining = true;
            for conn in conns.values_mut() {
                conn.start_drain();
            }
        }
        for (token, stream) in new_conns {
            if let Ok(mut conn) = Connection::adopt(stream, token, &ctx) {
                if draining {
                    conn.start_drain();
                }
                conns.insert(token, conn);
                progress = true;
            }
        }
        for (token, frame) in frames {
            // Frames for already-closed tokens (a peer that died with
            // requests in flight) are dropped here.
            if let Some(conn) = conns.get_mut(&token) {
                conn.push_frame(frame);
                progress = true;
            }
        }
        for event in events {
            // Same routing for session completions: a vanished
            // connection's events fall on the floor with it.
            if let Some(conn) = conns.get_mut(&event.token) {
                conn.on_event(event, &ctx);
                progress = true;
            }
        }

        let now = Instant::now();
        for conn in conns.values_mut() {
            progress |= conn.pump(&ctx, &mut scratch, now);
        }

        conns.retain(|token, conn| {
            if conn.dead {
                return false;
            }
            // Close = proven-drained before the take, still drained,
            // and every outbound byte written.
            !(closable.contains(token) && conn.drained() && conn.flushed())
        });

        if draining && conns.is_empty() {
            return;
        }
        park = !progress;
        if progress {
            // On a loaded single-core host the sweep could otherwise
            // monopolize the core; give the shard schedulers a turn.
            std::thread::yield_now();
        }
    }
}
