//! The remote hashing daemon: the network serving layer of the
//! reproduction.
//!
//! Everything below this crate is in-process: the simulated vector
//! engines ([`krv_core`]), the batch scheduler ([`krv_sha3`]) and the
//! continuous-batching service ([`krv_service`]) all require linking the
//! workspace. This crate turns that stack into a **daemon** — the shape
//! the paper's accelerator would take as a shared co-processor serving
//! host systems — with three pieces:
//!
//! * [`protocol`] — a versioned binary wire protocol: length-prefixed
//!   frames, magic/version header, per-request ids, one-byte algorithm
//!   ids covering all six FIPS 202 functions, the SP 800-185 derived
//!   functions (cSHAKE/KMAC/TupleHash/ParallelHash at both security
//!   levels) and the KRV tree hash — each with its per-algorithm
//!   parameter block (key, function name, customization, block size) —
//!   plus XOF output lengths, optional deadlines, **stateful streaming
//!   sessions** (`OPEN → ABSORB* → FINALIZE → SQUEEZE* → CLOSE` for
//!   chunked input and chunked XOF output), **ML-KEM key exchange**
//!   (protocol v5: `KEM_KEYGEN`/`KEM_ENCAPS`/`KEM_DECAPS` with typed
//!   [`KemParameterSet`] ids for all three FIPS 203 parameter sets,
//!   answered with framed keys, ciphertexts and shared secrets; a
//!   malformed key is a request-level `BAD_KEY` error, an unknown
//!   parameter-set id a connection-fatal violation), and strict
//!   decoding whose every failure is a typed [`ProtocolError`].
//! * [`Server`] — the daemon: an accept loop feeding a **fixed pool of
//!   I/O threads** that multiplex every connection over non-blocking
//!   sockets (std-only readiness loop — see the `poll` module), in
//!   front of N independent [`krv_service::ShardedService`] shards.
//!   Requests route to shards by a stable hash of the connection token,
//!   per-client fair-share admission throttles floods, and `STATS`
//!   replies merge every shard's raw metrics. Service outcomes map onto
//!   the wire (`QueueFull`/`ClientThrottled` → `BUSY`, `TimedOut` →
//!   `DEADLINE`, `WorkerFailure` → `INTERNAL`); protocol violations
//!   close the offending connection and nothing else; shutdown stops
//!   accepting, drains every in-flight request, then closes.
//!   Per-connection **session tables** enforce the streaming state
//!   machine (out-of-order frames are connection-fatal typed errors,
//!   like framing violations), cap live sessions per connection, reap
//!   idle sessions, carry flat sessions through the service's streaming
//!   lane as a live sponge state, and stream tree leaves through the
//!   batch lane under a bounded dispatch window — a session never holds
//!   the whole message.
//! * [`Client`] — the matching blocking/pipelining client used by the
//!   tests, the `remote_digest` example and the `netbench` load
//!   harness, plus [`StreamingSession`] for incremental absorb/squeeze
//!   over a session.
//!
//! # Example
//!
//! ```
//! use krv_server::{Client, Server, ServerConfig, WireAlgorithm};
//! use krv_sha3::Sha3_256;
//!
//! let server = Server::bind("127.0.0.1:0", ServerConfig::default()).unwrap();
//! let client = Client::connect(server.local_addr()).unwrap();
//! let digest = client.digest(WireAlgorithm::Sha3_256, b"abc").unwrap();
//! assert_eq!(digest, Sha3_256::digest(b"abc"));
//! drop(client);
//! let report = server.shutdown();
//! assert_eq!(report.completed, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod client;
mod conn;
mod plan;
mod poll;
pub mod protocol;
mod server;
mod session;

pub use client::{Client, ClientError, PendingReply, RemoteError, Reply, StreamingSession};
pub use protocol::{
    AlgorithmParams, ErrorCode, KemParameterSet, ProtocolError, Request, Response, WireAlgorithm,
};
pub use server::{Server, ServerConfig};
