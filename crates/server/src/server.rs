//! The daemon: a TCP listener feeding per-connection threads, over one
//! shared [`Service`], with a graceful shutdown that drains before it
//! closes.

use crate::conn;
use krv_service::{MetricsSnapshot, Service, ServiceConfig};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// How the daemon is shaped: the service underneath plus the wire-facing
/// limits every connection is held to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerConfig {
    /// The continuous-batching service the daemon serves from.
    pub service: ServiceConfig,
    /// Largest accepted frame body in bytes; a longer declared length is
    /// a protocol violation that closes the connection unread.
    pub max_frame: usize,
    /// Most hash requests one connection may have in flight; the excess
    /// is answered `BUSY` without touching the admission queue.
    pub max_in_flight: usize,
    /// A connection with no complete frame for this long is closed.
    pub idle_timeout: Duration,
}

impl Default for ServerConfig {
    /// The default service behind a 1 MiB frame limit, a 128-request
    /// pipeline window and a 30 s idle timeout.
    fn default() -> Self {
        Self {
            service: ServiceConfig::default(),
            max_frame: crate::protocol::DEFAULT_MAX_FRAME,
            max_in_flight: 128,
            idle_timeout: Duration::from_secs(30),
        }
    }
}

/// A running remote-hashing daemon.
///
/// Accepts connections until [`Self::shutdown`] (or drop), serving every
/// connection through [`crate::protocol`] framing onto the shared
/// [`Service`]. Shutdown is graceful by construction: accepting stops
/// first, each connection drains its in-flight requests and writes their
/// responses, and only then does the service itself drain and stop.
#[derive(Debug)]
pub struct Server {
    local_addr: SocketAddr,
    service: Option<Arc<Service>>,
    shutdown: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl Server {
    /// Binds `addr` (`"127.0.0.1:0"` for an ephemeral test port), starts
    /// the service and the accept thread, and returns the running daemon.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn bind(addr: impl ToSocketAddrs, config: ServerConfig) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let service = Arc::new(Service::start(config.service));
        let shutdown = Arc::new(AtomicBool::new(false));
        let conns: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));

        let accept = {
            let service = Arc::clone(&service);
            let shutdown = Arc::clone(&shutdown);
            let conns = Arc::clone(&conns);
            std::thread::Builder::new()
                .name("krv-server-accept".into())
                .spawn(move || loop {
                    match listener.accept() {
                        Ok((stream, _peer)) => {
                            if shutdown.load(Ordering::Acquire) {
                                // The shutdown wake-up connection (or a
                                // late client); either way, refuse.
                                return;
                            }
                            let service = Arc::clone(&service);
                            let shutdown = Arc::clone(&shutdown);
                            let handle = std::thread::Builder::new()
                                .name("krv-server-conn".into())
                                .spawn(move || conn::serve(stream, service, config, shutdown))
                                .expect("spawn connection thread");
                            conns.lock().expect("connection registry").push(handle);
                        }
                        Err(_) if shutdown.load(Ordering::Acquire) => return,
                        // A transient accept error (e.g. the peer reset
                        // before we got to it) must not kill the daemon.
                        Err(_) => {}
                    }
                })
                .expect("spawn accept thread")
        };

        Ok(Self {
            local_addr,
            service: Some(service),
            shutdown,
            accept: Some(accept),
            conns,
        })
    }

    /// The address the daemon is listening on.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// A point-in-time snapshot of the underlying service's metrics —
    /// the same data a remote caller gets from a `STATS` request.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.service
            .as_ref()
            .expect("service runs until shutdown")
            .metrics()
    }

    /// Graceful shutdown: stops accepting, lets every connection drain
    /// its in-flight requests and write their responses, then drains the
    /// service and returns its final metrics.
    pub fn shutdown(mut self) -> MetricsSnapshot {
        self.stop();
        let service = self.service.take().expect("first shutdown");
        match Arc::try_unwrap(service) {
            Ok(service) => service.shutdown(),
            // Unreachable once every holder thread has been joined, but
            // a metrics snapshot beats a panic if that ever changes.
            Err(service) => service.metrics(),
        }
    }

    fn stop(&mut self) {
        self.shutdown.store(true, Ordering::Release);
        // Unblock the accept thread: it wakes on this connection, sees
        // the flag and returns.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        // Connections notice the flag within a poll tick, stop reading,
        // drain their in-flight responses and exit.
        let handles = std::mem::take(&mut *self.conns.lock().expect("connection registry"));
        for handle in handles {
            let _ = handle.join();
        }
    }
}

impl Drop for Server {
    /// Same as [`Self::shutdown`], discarding the final metrics.
    fn drop(&mut self) {
        if self.accept.is_some() {
            self.stop();
        }
        // Dropping the service Arc closes and joins the scheduler.
        self.service.take();
    }
}
