//! The daemon: a TCP listener feeding a fixed pool of I/O threads that
//! multiplex every connection over a sharded service, with a graceful
//! shutdown that drains before it closes.
//!
//! Thread budget is **fixed at bind time**: one accept thread plus
//! [`ServerConfig::io_threads`] I/O threads plus one scheduler thread
//! per shard (and each shard's engine-pool workers) — independent of
//! how many connections are open. Ten connections or ten thousand, the
//! daemon runs the same handful of threads; connections are state, not
//! threads.

use crate::poll::{self, IoCtx, IoShared};
use krv_service::{MetricsSnapshot, ServiceConfig, ShardConfig, ShardedService};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// How the daemon is shaped: the sharded service underneath, the I/O
/// pool in front of it, and the wire-facing limits every connection is
/// held to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerConfig {
    /// The per-shard continuous-batching service configuration (note
    /// `queue_capacity` and `fair_share` apply per shard).
    pub service: ServiceConfig,
    /// Independent service shards behind the daemon, each with its own
    /// admission queue, scheduler and engine pool. Requests route by a
    /// stable hash of the connection token; `STATS` replies merge every
    /// shard's snapshot.
    pub shards: usize,
    /// Fixed pool of I/O threads multiplexing all connections; each
    /// accepted connection is pinned to one thread round-robin.
    pub io_threads: usize,
    /// Largest accepted frame body in bytes; a longer declared length is
    /// a protocol violation that closes the connection unread.
    pub max_frame: usize,
    /// Most hash requests one connection may have in flight; the excess
    /// is answered `BUSY` without touching the admission queue.
    pub max_in_flight: usize,
    /// A connection that receives no bytes for this long is closed
    /// (after draining whatever it already has in flight) — this is
    /// also what reaps half-open peers that vanished without a FIN.
    pub idle_timeout: Duration,
    /// Most streaming sessions one connection may hold open at once;
    /// an `OPEN` past the cap is answered `SESSION_LIMIT` (survivable —
    /// the connection keeps serving).
    pub max_sessions: usize,
    /// A wire session touched by no frame or completion for this long
    /// is reaped; later frames for its id answer `BAD_SESSION`.
    pub session_idle_timeout: Duration,
    /// Most leaf blocks one tree session (or one-shot tree request) may
    /// produce — the bound on buffered leaf digests, hence on session
    /// memory. The default covers a 1 GiB message at the 4 KiB KRV
    /// block size.
    pub max_tree_leaves: usize,
}

impl Default for ServerConfig {
    /// A single default service shard behind 2 I/O threads, a 1 MiB
    /// frame limit, a 128-request pipeline window and a 30 s idle
    /// timeout.
    fn default() -> Self {
        Self {
            service: ServiceConfig::default(),
            shards: 1,
            io_threads: 2,
            max_frame: crate::protocol::DEFAULT_MAX_FRAME,
            max_in_flight: 128,
            idle_timeout: Duration::from_secs(30),
            max_sessions: 16,
            session_idle_timeout: Duration::from_secs(30),
            max_tree_leaves: 1 << 18,
        }
    }
}

/// A running remote-hashing daemon.
///
/// Accepts connections until [`Self::shutdown`] (or drop), serving
/// every connection through [`crate::protocol`] framing onto the shared
/// [`ShardedService`]. Shutdown is graceful by construction: accepting
/// stops first, every connection drains its in-flight requests and
/// writes their responses, the I/O threads exit once all sockets are
/// closed, and only then do the service shards drain and stop.
#[derive(Debug)]
pub struct Server {
    local_addr: SocketAddr,
    service: Option<Arc<ShardedService>>,
    shutdown: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    io_shared: Vec<Arc<IoShared>>,
    io_threads: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (`"127.0.0.1:0"` for an ephemeral test port), starts
    /// the service shards, the I/O pool and the accept thread, and
    /// returns the running daemon.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    ///
    /// # Panics
    ///
    /// Panics if `shards` or `io_threads` is zero, or on anything
    /// [`ShardedService::start`] panics on.
    pub fn bind(addr: impl ToSocketAddrs, config: ServerConfig) -> io::Result<Self> {
        assert!(config.io_threads > 0, "the I/O pool needs a thread");
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let service = Arc::new(ShardedService::start(ShardConfig {
            shards: config.shards,
            service: config.service,
        }));
        let shutdown = Arc::new(AtomicBool::new(false));

        let io_shared: Vec<Arc<IoShared>> = (0..config.io_threads)
            .map(|_| Arc::new(IoShared::new()))
            .collect();
        let io_threads = io_shared
            .iter()
            .enumerate()
            .map(|(i, shared)| {
                let ctx = IoCtx {
                    service: Arc::clone(&service),
                    config,
                    shared: Arc::clone(shared),
                };
                std::thread::Builder::new()
                    .name(format!("krv-server-io-{i}"))
                    .spawn(move || poll::run(ctx))
                    .expect("spawn I/O thread")
            })
            .collect();

        let accept = {
            let shutdown = Arc::clone(&shutdown);
            let io_shared = io_shared.clone();
            std::thread::Builder::new()
                .name("krv-server-accept".into())
                .spawn(move || {
                    // Token 0 is the anonymous in-process client id;
                    // connections start at 1.
                    let mut next_token = 1u64;
                    loop {
                        match listener.accept() {
                            Ok((stream, _peer)) => {
                                if shutdown.load(Ordering::Acquire) {
                                    // The shutdown wake-up connection (or
                                    // a late client); either way, refuse.
                                    return;
                                }
                                let token = next_token;
                                next_token += 1;
                                let lane = (token % io_shared.len() as u64) as usize;
                                io_shared[lane].post_conn(token, stream);
                            }
                            Err(_) if shutdown.load(Ordering::Acquire) => return,
                            // A transient accept error (e.g. the peer
                            // reset before we got to it) must not kill
                            // the daemon.
                            Err(_) => {}
                        }
                    }
                })
                .expect("spawn accept thread")
        };

        Ok(Self {
            local_addr,
            service: Some(service),
            shutdown,
            accept: Some(accept),
            io_shared,
            io_threads,
        })
    }

    /// The address the daemon is listening on.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The cluster-wide metrics snapshot — every shard's raw metrics
    /// merged (histograms bucket-wise), exactly what a remote caller
    /// gets from a `STATS` request.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.service
            .as_ref()
            .expect("service runs until shutdown")
            .metrics()
    }

    /// Per-shard snapshots, in shard order. Their counters sum to the
    /// merged [`Self::metrics`] counters exactly.
    pub fn shard_metrics(&self) -> Vec<MetricsSnapshot> {
        self.service
            .as_ref()
            .expect("service runs until shutdown")
            .shard_metrics()
            .iter()
            .map(|shard| shard.summarize())
            .collect()
    }

    /// Graceful shutdown: stops accepting, lets every connection drain
    /// its in-flight requests and write their responses, joins the I/O
    /// pool, then drains the shards and returns their merged final
    /// metrics.
    pub fn shutdown(mut self) -> MetricsSnapshot {
        self.stop();
        let service = self.service.take().expect("first shutdown");
        match Arc::try_unwrap(service) {
            Ok(service) => service.shutdown(),
            // Unreachable once every I/O thread has been joined, but a
            // metrics snapshot beats a panic if that ever changes.
            Err(service) => service.metrics(),
        }
    }

    fn stop(&mut self) {
        self.shutdown.store(true, Ordering::Release);
        // Unblock the accept thread: it wakes on this connection, sees
        // the flag and returns.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        // Every connection is already posted to its I/O thread (the
        // accept thread is joined), so the shutdown flag reaches each
        // inbox after its last connection: nothing is missed.
        for shared in &self.io_shared {
            shared.begin_shutdown();
        }
        for handle in self.io_threads.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for Server {
    /// Same as [`Self::shutdown`], discarding the final metrics.
    fn drop(&mut self) {
        if self.accept.is_some() {
            self.stop();
        }
        // Dropping the service Arc closes and joins the shard
        // schedulers.
        self.service.take();
    }
}
