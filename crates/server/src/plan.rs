//! From wire algorithm + params block to a serving plan.
//!
//! [`WireAlgorithm::params`] only covers the six FIPS 202 ids; the SP
//! 800-185 family derives its sponge parameters, stream framing prefix
//! and finalize suffix from the request's [`AlgorithmParams`]. This
//! module centralizes that derivation so the one-shot path and the
//! session table frame messages identically — a streamed session and a
//! one-shot request for the same algorithm absorb byte-identical
//! sponge input.

use crate::protocol::{tuple_entries, AlgorithmParams, WireAlgorithm, MAX_OUTPUT_LEN};
use krv_sha3::sp800_185::{
    cshake_params, cshake_stream_prefix, kmac_stream_prefix, output_length_suffix,
    tuple_entry_prefix,
};
use krv_sha3::tree::TreeMode;
use krv_sha3::SpongeParams;

/// How the serving layer runs one wire algorithm instance.
#[derive(Debug, Clone)]
pub(crate) enum ServePlan {
    /// One sponge run flat: the FIPS 202 six, cSHAKE, KMAC, TupleHash.
    Flat(FlatPlan),
    /// A chunked tree — leaves ride the batch lane, then a flat root:
    /// ParallelHash and the KRV tree-hash.
    Tree(TreePlan),
}

/// A single-sponge serving plan.
#[derive(Debug, Clone)]
pub(crate) struct FlatPlan {
    /// The sponge (rate + domain) the whole message runs through.
    pub params: SpongeParams,
    /// Framing bytes absorbed before the message (the `bytepad`ed
    /// cSHAKE header, KMAC's encoded key block). Empty for FIPS 202 and
    /// degenerate cSHAKE.
    pub prefix: Vec<u8>,
    /// TupleHash: every chunk is one tuple entry and absorbs behind its
    /// `left_encode(len·8)` entry header.
    pub tuple: bool,
}

/// A chunked-tree serving plan.
#[derive(Debug, Clone)]
pub(crate) struct TreePlan {
    /// The leaf/root geometry.
    pub mode: TreeMode,
    /// The root cSHAKE customization string.
    pub customization: Vec<u8>,
}

/// Builds the serving plan for a validated algorithm + params pair.
pub(crate) fn plan(algorithm: WireAlgorithm, params: &AlgorithmParams) -> ServePlan {
    let bits = algorithm.security_bits();
    let flat = |sponge: SpongeParams, prefix: Vec<u8>, tuple: bool| {
        ServePlan::Flat(FlatPlan {
            params: sponge,
            prefix,
            tuple,
        })
    };
    match algorithm {
        WireAlgorithm::CShake128 | WireAlgorithm::CShake256 => flat(
            cshake_params(bits, &params.name, &params.customization),
            cshake_stream_prefix(bits, &params.name, &params.customization),
            false,
        ),
        WireAlgorithm::Kmac128 | WireAlgorithm::Kmac256 => flat(
            cshake_params(bits, b"KMAC", &params.customization),
            kmac_stream_prefix(bits, &params.key, &params.customization),
            false,
        ),
        WireAlgorithm::TupleHash128 | WireAlgorithm::TupleHash256 => flat(
            cshake_params(bits, b"TupleHash", &params.customization),
            cshake_stream_prefix(bits, b"TupleHash", &params.customization),
            true,
        ),
        WireAlgorithm::ParallelHash128 | WireAlgorithm::ParallelHash256 => {
            ServePlan::Tree(TreePlan {
                mode: TreeMode::parallel_hash(bits, params.block_size as usize),
                customization: params.customization.clone(),
            })
        }
        WireAlgorithm::TreeHash256 => ServePlan::Tree(TreePlan {
            mode: TreeMode::krv_tree256(),
            customization: params.customization.clone(),
        }),
        fips => flat(fips.params(), Vec::new(), false),
    }
}

/// The framing bytes a flat session absorbs at FINALIZE, before the
/// pad: KMAC and TupleHash bind `right_encode(L·8)` (with `L = 0`
/// selecting their XOF variants); everything else absorbs nothing.
pub(crate) fn finalize_suffix(algorithm: WireAlgorithm, output_len: usize) -> Vec<u8> {
    match algorithm {
        WireAlgorithm::Kmac128
        | WireAlgorithm::Kmac256
        | WireAlgorithm::TupleHash128
        | WireAlgorithm::TupleHash256 => output_length_suffix(output_len),
        _ => Vec::new(),
    }
}

/// Validates a FINALIZE's declared output length against its algorithm
/// and returns the session's squeeze budget: `Some(total)` bounds the
/// SQUEEZE frames that may follow, `None` is an unbounded XOF.
///
/// # Errors
///
/// A static reason string for the `SESSION_STATE` error reply.
pub(crate) fn finalize_budget(
    algorithm: WireAlgorithm,
    output_len: usize,
) -> Result<Option<usize>, &'static str> {
    debug_assert!(output_len <= MAX_OUTPUT_LEN, "decoder bounds output_len");
    if let Some(fixed) = algorithm.fixed_output_len() {
        return if output_len == 0 || output_len == fixed {
            Ok(Some(fixed))
        } else {
            Err("SHA-3 sessions squeeze exactly the fixed digest length")
        };
    }
    match algorithm {
        WireAlgorithm::Shake128
        | WireAlgorithm::Shake256
        | WireAlgorithm::CShake128
        | WireAlgorithm::CShake256 => {
            if output_len == 0 {
                Ok(None)
            } else {
                Err("plain XOF sessions declare no output length; squeeze freely")
            }
        }
        WireAlgorithm::Kmac128
        | WireAlgorithm::Kmac256
        | WireAlgorithm::TupleHash128
        | WireAlgorithm::TupleHash256 => {
            // L = 0 is the arbitrary-length XOF variant; a nonzero L is
            // bound into the suffix and caps the squeezes.
            Ok((output_len > 0).then_some(output_len))
        }
        WireAlgorithm::ParallelHash128
        | WireAlgorithm::ParallelHash256
        | WireAlgorithm::TreeHash256 => {
            // The root digest is one flat squeeze of exactly L bytes,
            // bound into the root's right_encode(L·8) — it must be
            // declared up front.
            if output_len == 0 {
                Err("tree sessions must declare their output length at FINALIZE")
            } else {
                Ok(Some(output_len))
            }
        }
        WireAlgorithm::Sha3_224
        | WireAlgorithm::Sha3_256
        | WireAlgorithm::Sha3_384
        | WireAlgorithm::Sha3_512 => {
            unreachable!("fixed-output algorithms returned above")
        }
    }
}

/// Assembles the flat one-shot message for a non-tree algorithm:
/// framing prefix, the payload (entry-framed for TupleHash), and the
/// finalize suffix — exactly the bytes a streamed session absorbs.
pub(crate) fn flat_message(
    plan: &FlatPlan,
    algorithm: WireAlgorithm,
    payload: &[u8],
    output_len: usize,
) -> Vec<u8> {
    let mut message = plan.prefix.clone();
    if plan.tuple {
        for entry in tuple_entries(payload) {
            message.extend_from_slice(&tuple_entry_prefix(entry.len()));
            message.extend_from_slice(entry);
        }
    } else {
        message.extend_from_slice(payload);
    }
    message.extend_from_slice(&finalize_suffix(algorithm, output_len));
    message
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::encode_tuple_payload;
    use krv_sha3::sp800_185::{kmac256, tuple_hash128, CShake256};
    use krv_sha3::{hash_batch, BatchRequest, ReferenceBackend, Sha3_256, Shake256};

    fn digest_flat(message: &[u8], params: SpongeParams, len: usize) -> Vec<u8> {
        let mut outputs = hash_batch(
            params,
            ReferenceBackend::new(),
            &[BatchRequest::new(message, len)],
        );
        outputs.pop().expect("one request")
    }

    #[test]
    fn fips_plans_are_prefix_free_passthrough() {
        let ServePlan::Flat(plan) = plan(WireAlgorithm::Sha3_256, &AlgorithmParams::none()) else {
            panic!("FIPS is flat")
        };
        assert!(plan.prefix.is_empty());
        assert!(!plan.tuple);
        let message = flat_message(&plan, WireAlgorithm::Sha3_256, b"abc", 32);
        assert_eq!(message, b"abc");
        assert_eq!(
            digest_flat(&message, plan.params, 32),
            Sha3_256::digest(b"abc")
        );
    }

    #[test]
    fn degenerate_cshake_plans_reduce_to_shake() {
        let params = AlgorithmParams::cshake(&b""[..], &b""[..]);
        let ServePlan::Flat(plan) = plan(WireAlgorithm::CShake256, &params) else {
            panic!("cSHAKE is flat")
        };
        assert!(plan.prefix.is_empty(), "empty N and S degenerate to SHAKE");
        let message = flat_message(&plan, WireAlgorithm::CShake256, b"data", 0);
        assert_eq!(
            digest_flat(&message, plan.params, 64),
            Shake256::digest(b"data", 64)
        );
    }

    #[test]
    fn flat_messages_reproduce_the_oneshot_wrappers() {
        let cshake = AlgorithmParams::cshake(&b"Email Signature"[..], &b"ctx"[..]);
        let ServePlan::Flat(cplan) = plan(WireAlgorithm::CShake256, &cshake) else {
            panic!()
        };
        let message = flat_message(&cplan, WireAlgorithm::CShake256, b"payload", 0);
        assert_eq!(
            digest_flat(&message, cplan.params, 48),
            CShake256::digest(b"Email Signature", b"ctx", b"payload", 48)
        );

        let kmac = AlgorithmParams::kmac(&b"top secret key"[..], &b"tag"[..]);
        let ServePlan::Flat(kplan) = plan(WireAlgorithm::Kmac256, &kmac) else {
            panic!()
        };
        let message = flat_message(&kplan, WireAlgorithm::Kmac256, b"message", 64);
        assert_eq!(
            digest_flat(&message, kplan.params, 64),
            kmac256(b"top secret key", b"message", 64, b"tag")
        );

        let tuple = AlgorithmParams::customization(&b"tuple ctx"[..]);
        let ServePlan::Flat(tplan) = plan(WireAlgorithm::TupleHash128, &tuple) else {
            panic!()
        };
        let payload = encode_tuple_payload(&[b"abc", b"", b"tail"]);
        assert!(tplan.tuple);
        let message = flat_message(&tplan, WireAlgorithm::TupleHash128, &payload, 32);
        assert_eq!(
            digest_flat(&message, tplan.params, 32),
            tuple_hash128(&[b"abc", b"", b"tail"], 32, b"tuple ctx")
        );
    }

    #[test]
    fn tree_plans_carry_the_right_geometry() {
        let params = AlgorithmParams::parallel_hash(8192, &b"par"[..]);
        let ServePlan::Tree(tree) = plan(WireAlgorithm::ParallelHash256, &params) else {
            panic!("ParallelHash is a tree")
        };
        assert_eq!(tree.mode.block_size(), 8192);
        assert_eq!(tree.mode.leaf_len(), 64);
        assert_eq!(tree.customization, b"par");

        let ServePlan::Tree(krv) = plan(
            WireAlgorithm::TreeHash256,
            &AlgorithmParams::customization(&b""[..]),
        ) else {
            panic!("the KRV tree-hash is a tree")
        };
        assert_eq!(krv.mode.block_size(), 4096);
        assert_eq!(krv.mode.leaf_len(), 32);
    }

    #[test]
    fn finalize_budgets_enforce_the_per_algorithm_rules() {
        use WireAlgorithm::*;
        assert_eq!(finalize_budget(Sha3_256, 0), Ok(Some(32)));
        assert_eq!(finalize_budget(Sha3_256, 32), Ok(Some(32)));
        assert!(finalize_budget(Sha3_256, 33).is_err());
        assert_eq!(finalize_budget(Shake256, 0), Ok(None));
        assert!(finalize_budget(Shake128, 32).is_err());
        assert_eq!(finalize_budget(CShake256, 0), Ok(None));
        assert_eq!(finalize_budget(Kmac256, 0), Ok(None), "KMACXOF");
        assert_eq!(finalize_budget(Kmac256, 64), Ok(Some(64)));
        assert_eq!(finalize_budget(TupleHash128, 32), Ok(Some(32)));
        assert!(finalize_budget(TreeHash256, 0).is_err());
        assert_eq!(finalize_budget(ParallelHash256, 64), Ok(Some(64)));
    }

    #[test]
    fn finalize_suffixes_only_bind_kmac_and_tuplehash() {
        assert!(finalize_suffix(WireAlgorithm::Shake256, 0).is_empty());
        assert!(finalize_suffix(WireAlgorithm::CShake128, 0).is_empty());
        assert_eq!(
            finalize_suffix(WireAlgorithm::Kmac256, 64),
            output_length_suffix(64)
        );
        assert_eq!(
            finalize_suffix(WireAlgorithm::TupleHash256, 0),
            output_length_suffix(0),
            "the XOF variant still binds right_encode(0)"
        );
    }
}
