//! Protocol robustness fuzz: malformed frames against the decoder and
//! against a live daemon socket.
//!
//! Two layers, both SplitMix64-seeded and reproducible:
//!
//! * the **decoder** must answer every mutation of a valid frame —
//!   truncation, bit flips, wrong magic, wrong version, length-field
//!   corruption, pure garbage — with a typed [`ProtocolError`] or a
//!   valid decode, never a panic;
//! * a **live server** fed the same malformations must close the
//!   offending connection (promptly — a hang fails the test) and keep
//!   serving fresh connections; the daemon never dies.
//!
//! A failing case shrinks via `krv_testkit::shrink` to a minimal byte
//! string before it is reported.

use krv_server::protocol::{
    encode_tuple_payload, read_frame, write_frame, DEFAULT_MAX_FRAME, MAX_CHUNK_LEN,
};
use krv_server::{
    AlgorithmParams, Client, ErrorCode, Request, Response, Server, ServerConfig, WireAlgorithm,
};
use krv_service::ServiceConfig;
use krv_sha3::{Sha3_256, Shake256};
use krv_testkit::{shrink, CaseReport, Rng};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Duration;

/// A well-formed params block for an algorithm (FIPS ids take none).
fn valid_params(algorithm: WireAlgorithm) -> AlgorithmParams {
    match algorithm {
        WireAlgorithm::CShake128 | WireAlgorithm::CShake256 => {
            AlgorithmParams::cshake(&b"Fuzz"[..], &b"ctx"[..])
        }
        WireAlgorithm::Kmac128 | WireAlgorithm::Kmac256 => {
            AlgorithmParams::kmac(&b"fuzz key material"[..], &b""[..])
        }
        WireAlgorithm::TupleHash128 | WireAlgorithm::TupleHash256 => {
            AlgorithmParams::customization(&b""[..])
        }
        WireAlgorithm::ParallelHash128 | WireAlgorithm::ParallelHash256 => {
            AlgorithmParams::parallel_hash(1024, &b""[..])
        }
        _ => AlgorithmParams::none(),
    }
}

/// A random but well-formed request frame body.
fn valid_body(rng: &mut Rng) -> Vec<u8> {
    if rng.below(8) == 0 {
        return Request::Stats { id: rng.next_u64() }.encode();
    }
    let algorithm = *rng.pick(&WireAlgorithm::ALL);
    let output_len = algorithm
        .fixed_output_len()
        .unwrap_or_else(|| 1 + rng.below(200));
    let payload_len = rng.below(300);
    let payload = match algorithm {
        // TupleHash payloads carry entry framing of their own.
        WireAlgorithm::TupleHash128 | WireAlgorithm::TupleHash256 => {
            let entry = rng.bytes(payload_len);
            encode_tuple_payload(&[&entry])
        }
        _ => rng.bytes(payload_len),
    };
    Request::Hash {
        id: rng.next_u64(),
        algorithm,
        output_len,
        deadline: rng.next_bool().then(|| Duration::from_millis(500)),
        params: valid_params(algorithm),
        payload,
    }
    .encode()
}

/// One seeded malformation of a valid frame body.
fn mutate(rng: &mut Rng, mut body: Vec<u8>) -> Vec<u8> {
    match rng.below(6) {
        // Truncate anywhere, including to empty.
        0 => {
            body.truncate(rng.below(body.len() + 1));
            body
        }
        // Flip one random bit.
        1 => {
            if !body.is_empty() {
                let at = rng.below(body.len());
                body[at] ^= 1 << rng.below(8);
            }
            body
        }
        // Corrupt the magic.
        2 => {
            body[rng.below(4)] ^= 0xFF;
            body
        }
        // Claim a version we do not speak.
        3 => {
            body[4] = rng.next_u32() as u8 | 0x80;
            body
        }
        // Corrupt an interior length field (offsets inside the hash
        // request layout), desynchronizing the declared sizes.
        4 => {
            let at = 14 + rng.below(body.len().saturating_sub(14).max(1));
            if at < body.len() {
                body[at] = body[at].wrapping_add(1 + rng.next_u32() as u8 % 255);
            }
            body
        }
        // Replace with pure garbage.
        _ => {
            let len = rng.below(64);
            rng.bytes(len)
        }
    }
}

#[test]
fn decoder_survives_every_seeded_malformation() {
    let mut rng = Rng::new(0xF022_0001);
    for case in 0..4000u64 {
        let body = valid_body(&mut rng);
        let body = mutate(&mut rng, body);
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let _ = Request::decode(&body);
        }));
        if outcome.is_err() {
            let minimal = shrink(body, byte_shrink_candidates, |candidate| {
                catch_unwind(AssertUnwindSafe(|| {
                    let _ = Request::decode(candidate);
                }))
                .is_err()
            });
            panic!(
                "{}",
                CaseReport::new(
                    "server/protocol-fuzz",
                    0xF022_0001,
                    format!("decode panicked on case {case}, minimized to {minimal:02x?}")
                )
            );
        }
    }
}

#[test]
fn guaranteed_invalid_frames_decode_to_typed_errors() {
    let mut rng = Rng::new(0xF022_0002);
    for _ in 0..1500 {
        let body = valid_body(&mut rng);
        // Wrong magic.
        let mut bad = body.clone();
        bad[rng.below(4)] ^= 0xFF;
        assert!(Request::decode(&bad).is_err(), "magic must be checked");
        // Wrong version.
        let mut bad = body.clone();
        bad[4] ^= 0x55;
        assert!(Request::decode(&bad).is_err(), "version must be checked");
        // Strict truncation (any proper prefix fails: the layout has no
        // optional tail).
        let cut = rng.below(body.len());
        assert!(
            Request::decode(&body[..cut]).is_err(),
            "truncation to {cut} of {} must fail",
            body.len()
        );
        // Trailing bytes.
        let mut bad = body.clone();
        let extra = 1 + rng.below(8);
        bad.extend_from_slice(&rng.bytes(extra));
        assert!(Request::decode(&bad).is_err(), "trailing bytes must fail");
    }
}

/// Shrink candidates for a byte string: drop one byte, or halve it.
#[allow(clippy::ptr_arg)] // `shrink` wants FnMut(&Vec<u8>) -> Vec<Vec<u8>>
fn byte_shrink_candidates(bytes: &Vec<u8>) -> Vec<Vec<u8>> {
    let mut out = Vec::new();
    if bytes.len() > 1 {
        out.push(bytes[..bytes.len() / 2].to_vec());
    }
    for i in 0..bytes.len().min(64) {
        let mut smaller = bytes.clone();
        smaller.remove(i);
        out.push(smaller);
    }
    out
}

/// What a raw malformed-bytes probe observed from the daemon.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Probe {
    /// The server closed the connection (EOF) without a response.
    Closed,
    /// The server answered with at least one frame, then closed.
    RespondedThenClosed,
    /// Nothing happened within the patience window: a hang.
    Hung,
}

/// Writes `bytes` raw to a fresh connection, closes the write half, and
/// reports how the daemon reacted.
fn probe(addr: std::net::SocketAddr, bytes: &[u8]) -> Probe {
    let mut stream = TcpStream::connect(addr).expect("connect probe");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("read timeout");
    // The peer may close mid-write (oversized prefix): ignore write
    // errors, the read below observes the outcome either way.
    let _ = stream.write_all(bytes);
    let _ = stream.flush();
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let mut seen_response = false;
    let mut buffer = [0u8; 4096];
    loop {
        match stream.read(&mut buffer) {
            Ok(0) => {
                return if seen_response {
                    Probe::RespondedThenClosed
                } else {
                    Probe::Closed
                }
            }
            Ok(_) => seen_response = true,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                return Probe::Hung
            }
            // Reset counts as closed: the daemon dropped us.
            Err(_) => {
                return if seen_response {
                    Probe::RespondedThenClosed
                } else {
                    Probe::Closed
                }
            }
        }
    }
}

#[test]
fn live_daemon_survives_malformed_frames_without_hanging_or_dying() {
    let server = Server::bind(
        "127.0.0.1:0",
        ServerConfig {
            service: ServiceConfig {
                max_wait: Duration::from_micros(200),
                ..ServiceConfig::default()
            },
            ..ServerConfig::default()
        },
    )
    .expect("bind");
    let addr = server.local_addr();
    let seed = 0xF022_0003u64;
    let mut rng = Rng::new(seed);

    for case in 0..40u64 {
        let wire = match case % 5 {
            // A malformed body behind a correct length prefix.
            0..=2 => {
                let body = valid_body(&mut rng);
                let body = mutate(&mut rng, body);
                let mut wire = Vec::new();
                write_frame(&mut wire, &body).expect("frame");
                wire
            }
            // An oversized declared length: rejected before the body.
            3 => {
                let mut wire = ((DEFAULT_MAX_FRAME + 1 + rng.below(1 << 20)) as u32)
                    .to_le_bytes()
                    .to_vec();
                let extra = rng.below(32);
                wire.extend_from_slice(&rng.bytes(extra));
                wire
            }
            // A truncated frame: the prefix promises more than we send.
            _ => {
                let body = valid_body(&mut rng);
                let mut wire = Vec::new();
                write_frame(&mut wire, &body).expect("frame");
                let keep = 4 + rng.below(body.len());
                wire.truncate(keep);
                wire
            }
        };
        let outcome = probe(addr, &wire);
        if outcome == Probe::Hung {
            let minimal = shrink(wire, byte_shrink_candidates, |candidate| {
                probe(addr, candidate) == Probe::Hung
            });
            panic!(
                "{}",
                CaseReport::new(
                    "server/socket-fuzz",
                    seed,
                    format!("daemon hung on case {case}, minimized to {minimal:02x?}")
                )
            );
        }
        // Closed (malformed) or responded-then-closed (a bit flip can
        // leave the frame valid) are both acceptable; a hang never is.
    }

    // A valid frame followed by garbage: the valid request is answered
    // before the violation closes the connection.
    let good = Request::Hash {
        id: 77,
        algorithm: WireAlgorithm::Sha3_256,
        output_len: 32,
        deadline: None,
        params: AlgorithmParams::none(),
        payload: b"still served".to_vec(),
    };
    let mut wire = Vec::new();
    write_frame(&mut wire, &good.encode()).expect("frame");
    wire.extend_from_slice(b"\xDE\xAD\xBE\xEF garbage after a valid frame");
    assert_eq!(
        probe(addr, &wire),
        Probe::RespondedThenClosed,
        "the in-flight request drains before the violation closes the socket"
    );

    // After all of that abuse the daemon still serves a clean client.
    let client = Client::connect(addr).expect("fresh connection");
    assert_eq!(
        client
            .digest(WireAlgorithm::Sha3_256, b"alive")
            .expect("daemon survived the fuzz"),
        Sha3_256::digest(b"alive")
    );
    drop(client);
    server.shutdown();
}

/// Writes a batch of request frames to a fresh connection and collects
/// every response the server sends before *it* closes the connection.
/// Panics if the server hangs instead of closing.
fn session_probe(addr: std::net::SocketAddr, frames: &[Request]) -> Vec<Response> {
    let mut stream = TcpStream::connect(addr).expect("connect session probe");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("read timeout");
    let mut wire = Vec::new();
    for frame in frames {
        write_frame(&mut wire, &frame.encode()).expect("frame");
    }
    stream.write_all(&wire).expect("write");
    stream.flush().expect("flush");
    // Deliberately keep the write half open: a session-state violation
    // must make the *server* close the connection.
    let mut out = Vec::new();
    loop {
        match read_frame(&mut stream, DEFAULT_MAX_FRAME) {
            Ok(Some(Ok(body))) => out.push(Response::decode(&body).expect("valid response")),
            Ok(Some(Err(oversized))) => panic!("oversized response: {oversized:?}"),
            Ok(None) => break,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                panic!("daemon hung instead of closing a violating connection")
            }
            Err(_) => break,
        }
    }
    out
}

/// The typed error codes in a response batch.
fn error_codes(responses: &[Response]) -> Vec<ErrorCode> {
    responses
        .iter()
        .filter_map(|response| match response {
            Response::Error { code, .. } => Some(*code),
            _ => None,
        })
        .collect()
}

/// Session-state mutation families: every out-of-order, unknown-id,
/// duplicate-id, over-budget, truncated or oversized session frame must
/// draw a typed error (or a protocol-level close), kill **only** the
/// offending connection, and leave sessions on other connections — and
/// the daemon itself — fully alive.
#[test]
fn session_state_violations_kill_only_the_offending_connection() {
    let server = Server::bind(
        "127.0.0.1:0",
        ServerConfig {
            service: ServiceConfig {
                max_wait: Duration::from_micros(200),
                ..ServiceConfig::default()
            },
            ..ServerConfig::default()
        },
    )
    .expect("bind");
    let addr = server.local_addr();

    // A healthy streaming session on its own connection: it must ride
    // out every violation below untouched.
    let survivor_client = Client::connect(addr).expect("survivor connect");
    let survivor = survivor_client
        .open_session(WireAlgorithm::Shake256, AlgorithmParams::none())
        .expect("survivor open");
    let survivor_message = b"the survivor session outlives every violating neighbour";
    let (head, tail) = survivor_message.split_at(20);
    survivor.absorb(head).expect("survivor absorb");

    let shake = WireAlgorithm::Shake256;
    let none = AlgorithmParams::none;
    let open = |id, session| Request::Open {
        id,
        session,
        algorithm: shake,
        params: none(),
    };
    // (family name, frames, expected typed error code; None means the
    // violation is caught at decode time and closed without a reply)
    let families: Vec<(&str, Vec<Request>, Option<ErrorCode>)> = vec![
        (
            "absorb to a never-opened session",
            vec![Request::Absorb {
                id: 1,
                session: 99,
                chunk: b"orphan".to_vec(),
            }],
            Some(ErrorCode::BadSession),
        ),
        (
            "squeeze before finalize",
            vec![
                open(1, 7),
                Request::Absorb {
                    id: 2,
                    session: 7,
                    chunk: b"data".to_vec(),
                },
                Request::Squeeze {
                    id: 3,
                    session: 7,
                    len: 32,
                },
            ],
            Some(ErrorCode::SessionState),
        ),
        (
            "absorb after finalize",
            vec![
                open(1, 7),
                Request::Finalize {
                    id: 2,
                    session: 7,
                    output_len: 0,
                },
                Request::Absorb {
                    id: 3,
                    session: 7,
                    chunk: b"late".to_vec(),
                },
            ],
            Some(ErrorCode::SessionState),
        ),
        (
            "duplicate open of a live session id",
            vec![open(1, 5), open(2, 5)],
            Some(ErrorCode::BadSession),
        ),
        (
            "close of an unknown session",
            vec![Request::Close { id: 1, session: 42 }],
            Some(ErrorCode::BadSession),
        ),
        (
            "squeeze past the finalize budget",
            vec![
                Request::Open {
                    id: 1,
                    session: 7,
                    algorithm: WireAlgorithm::Sha3_256,
                    params: none(),
                },
                Request::Finalize {
                    id: 2,
                    session: 7,
                    output_len: 32,
                },
                Request::Squeeze {
                    id: 3,
                    session: 7,
                    len: 33,
                },
            ],
            Some(ErrorCode::SessionState),
        ),
        (
            "interleaved sessions with one violating",
            vec![
                open(1, 10),
                open(2, 11),
                Request::Absorb {
                    id: 3,
                    session: 10,
                    chunk: b"fine".to_vec(),
                },
                Request::Squeeze {
                    id: 4,
                    session: 11,
                    len: 8,
                },
            ],
            Some(ErrorCode::SessionState),
        ),
    ];

    for (family, frames, expected) in families {
        let responses = session_probe(addr, &frames);
        let codes = error_codes(&responses);
        let code = expected.expect("typed families carry a code");
        assert_eq!(
            codes,
            vec![code],
            "{family}: expected exactly one {code:?} error, got {responses:?}"
        );
    }

    // Truncated chunk: the ABSORB body ends before its declared chunk
    // does. Caught at decode time; the connection closes, typed reply
    // optional (the OPEN before it is still answered).
    let mut wire = Vec::new();
    write_frame(&mut wire, &open(1, 3).encode()).expect("frame");
    let absorb = Request::Absorb {
        id: 2,
        session: 3,
        chunk: vec![0xAA; 64],
    }
    .encode();
    write_frame(&mut wire, &absorb[..absorb.len() - 10]).expect("frame");
    assert_ne!(
        probe(addr, &wire),
        Probe::Hung,
        "truncated chunk must close, not hang"
    );

    // Oversized chunk: one byte past MAX_CHUNK_LEN still fits the frame
    // cap, so it reaches the session decoder and dies there.
    let mut wire = Vec::new();
    write_frame(&mut wire, &open(1, 3).encode()).expect("frame");
    write_frame(
        &mut wire,
        &Request::Absorb {
            id: 2,
            session: 3,
            chunk: vec![0xBB; MAX_CHUNK_LEN + 1],
        }
        .encode(),
    )
    .expect("frame");
    assert_ne!(
        probe(addr, &wire),
        Probe::Hung,
        "oversized chunk must close, not hang"
    );

    // The survivor session never noticed any of it.
    survivor.absorb(tail).expect("survivor absorb tail");
    survivor.finalize(0).expect("survivor finalize");
    let digest = survivor.squeeze(32).expect("survivor squeeze");
    survivor.close().expect("survivor close");
    assert_eq!(digest, Shake256::digest(survivor_message, 32));

    // And the daemon still serves fresh connections.
    let client = Client::connect(addr).expect("fresh connection");
    assert_eq!(
        client
            .digest(WireAlgorithm::Sha3_256, b"alive")
            .expect("daemon survived the session fuzz"),
        Sha3_256::digest(b"alive")
    );
    drop(client);
    drop(survivor_client);
    server.shutdown();
}

/// Reads `count` response frames off a raw socket, panicking on any
/// protocol error.
fn read_responses(stream: &mut TcpStream, count: usize) -> Vec<Response> {
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let body = read_frame(stream, DEFAULT_MAX_FRAME)
            .expect("frame")
            .expect("open")
            .expect("well-sized");
        out.push(Response::decode(&body).expect("valid response"));
    }
    out
}

/// The event loop only consumes whole frames: a request dribbled one
/// byte at a time — the worst possible partial-frame delivery — must
/// parse identically to one delivered in a single write.
#[test]
fn byte_dribble_delivery_parses_identically() {
    let server = Server::bind("127.0.0.1:0", ServerConfig::default()).expect("bind");
    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("read timeout");

    let request = Request::Hash {
        id: 9,
        algorithm: WireAlgorithm::Sha3_256,
        output_len: 32,
        deadline: None,
        params: AlgorithmParams::none(),
        payload: b"dribbled one byte at a time".to_vec(),
    };
    let mut wire = Vec::new();
    write_frame(&mut wire, &request.encode()).expect("frame");
    for byte in &wire {
        stream.write_all(std::slice::from_ref(byte)).expect("write");
        stream.flush().expect("flush");
    }

    match &read_responses(&mut stream, 1)[0] {
        Response::Digest { id, bytes } => {
            assert_eq!(*id, 9);
            assert_eq!(bytes, &Sha3_256::digest(b"dribbled one byte at a time"));
        }
        other => panic!("expected a digest, got {other:?}"),
    }
    drop(stream);
    server.shutdown();
}

/// A pipelined burst of valid frames delivered in seeded random chunk
/// splits — boundaries landing inside length prefixes, headers and
/// payloads — must never desynchronize framing: every request is
/// answered, ids intact, digests correct.
#[test]
fn random_chunk_splits_never_desync_framing() {
    let server = Server::bind("127.0.0.1:0", ServerConfig::default()).expect("bind");
    let addr = server.local_addr();
    let mut rng = Rng::new(0xF022_0004);

    for _round in 0..10 {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .expect("read timeout");

        let count = 2 + rng.below(6);
        let mut wire = Vec::new();
        let mut payloads = Vec::new();
        for id in 0..count as u64 {
            let payload_len = rng.below(400);
            let payload = rng.bytes(payload_len);
            let request = Request::Hash {
                id,
                algorithm: WireAlgorithm::Sha3_256,
                output_len: 32,
                deadline: None,
                params: AlgorithmParams::none(),
                payload: payload.clone(),
            };
            write_frame(&mut wire, &request.encode()).expect("frame");
            payloads.push(payload);
        }

        let mut at = 0;
        while at < wire.len() {
            let chunk = (1 + rng.below(37)).min(wire.len() - at);
            stream.write_all(&wire[at..at + chunk]).expect("write");
            stream.flush().expect("flush");
            at += chunk;
        }

        let mut responses = read_responses(&mut stream, count);
        responses.sort_by_key(|response| match response {
            Response::Digest { id, .. } => *id,
            other => panic!("expected digests only, got {other:?}"),
        });
        for (id, payload) in payloads.iter().enumerate() {
            match &responses[id] {
                Response::Digest { id: got, bytes } => {
                    assert_eq!(*got, id as u64);
                    assert_eq!(bytes, &Sha3_256::digest(payload), "request {id} digest");
                }
                other => panic!("expected a digest, got {other:?}"),
            }
        }
    }
    server.shutdown();
}
