//! Streaming-session properties over real sockets: a streamed hash
//! equals its one-shot at **every** chunk split, for absorb and for
//! squeeze, across the FIPS and SP 800-185 wire algorithms; tree
//! sessions agree with the scalar reference under any chunking and
//! demonstrably dispatch their leaves through the batch scheduler.

use krv_server::{AlgorithmParams, Client, Server, ServerConfig, WireAlgorithm};
use krv_service::ServiceConfig;
use krv_sha3::sp800_185::{kmac256, tuple_hash128, CShake128};
use krv_sha3::tree::{krv_tree_hash256, parallel_hash256};
use krv_sha3::{Sha3_256, Shake256};
use std::time::Duration;

fn quick_server() -> Server {
    let config = ServerConfig {
        service: ServiceConfig {
            max_wait: Duration::from_micros(200),
            ..ServiceConfig::default()
        },
        ..ServerConfig::default()
    };
    Server::bind("127.0.0.1:0", config).expect("bind ephemeral port")
}

/// A deterministic test message: the conformance pattern bytes.
fn pattern(len: usize) -> Vec<u8> {
    (0..len)
        .map(|i| ((167 * i + 31 * len + 13) & 0xFF) as u8)
        .collect()
}

/// Streams `message` through one session split into `head`/`tail` at
/// `at`, returning the squeezed digest.
fn stream_split(
    client: &Client,
    algorithm: WireAlgorithm,
    params: AlgorithmParams,
    message: &[u8],
    at: usize,
    output_len: usize,
) -> Vec<u8> {
    let session = client.open_session(algorithm, params).expect("open");
    session.absorb(&message[..at]).expect("absorb head");
    session.absorb(&message[at..]).expect("absorb tail");
    // XOFs take an open-ended finalize (budget 0); everything else pins
    // its output length at finalize time.
    let budget = match algorithm {
        WireAlgorithm::Shake128
        | WireAlgorithm::Shake256
        | WireAlgorithm::CShake128
        | WireAlgorithm::CShake256 => 0,
        _ => output_len,
    };
    session.finalize(budget).expect("finalize");
    let digest = session.squeeze(output_len).expect("squeeze");
    session.close().expect("close");
    digest
}

#[test]
fn streamed_absorb_matches_the_oneshot_at_every_split() {
    let server = quick_server();
    let client = Client::connect(server.local_addr()).expect("connect");
    // 200 bytes spans the SHAKE256/cSHAKE128 rate boundaries, so the
    // splits cover intra-block, exactly-at-rate and cross-block chunks.
    let message = pattern(200);
    let key = b"stream split key";
    let sha3 = Sha3_256::digest(&message).to_vec();
    let shake = Shake256::digest(&message, 32);
    let cshake = CShake128::digest(b"KRV", b"split", &message, 32);
    let kmac = kmac256(key, &message, 32, b"split");
    for at in 0..=message.len() {
        let got = stream_split(
            &client,
            WireAlgorithm::Sha3_256,
            AlgorithmParams::none(),
            &message,
            at,
            32,
        );
        assert_eq!(got, sha3, "SHA3-256 split at {at}");
        let got = stream_split(
            &client,
            WireAlgorithm::Shake256,
            AlgorithmParams::none(),
            &message,
            at,
            32,
        );
        assert_eq!(got, shake, "SHAKE256 split at {at}");
        let got = stream_split(
            &client,
            WireAlgorithm::CShake128,
            AlgorithmParams::cshake(b"KRV", b"split"),
            &message,
            at,
            32,
        );
        assert_eq!(got, cshake, "cSHAKE128 split at {at}");
        let got = stream_split(
            &client,
            WireAlgorithm::Kmac256,
            AlgorithmParams::kmac(&key[..], &b"split"[..]),
            &message,
            at,
            32,
        );
        assert_eq!(got, kmac, "KMAC256 split at {at}");
    }
    server.shutdown();
}

#[test]
fn streamed_squeeze_matches_the_oneshot_at_every_split() {
    let server = quick_server();
    let client = Client::connect(server.local_addr()).expect("connect");
    let message = pattern(77);
    let expected = Shake256::digest(&message, 96);
    for at in 0..=expected.len() {
        let session = client
            .open_session(WireAlgorithm::Shake256, AlgorithmParams::none())
            .expect("open");
        session.absorb(&message).expect("absorb");
        session.finalize(0).expect("finalize");
        let mut streamed = session.squeeze(at).expect("first squeeze");
        streamed.extend(
            session
                .squeeze(expected.len() - at)
                .expect("second squeeze"),
        );
        session.close().expect("close");
        assert_eq!(streamed, expected, "SHAKE256 squeeze split at {at}");
    }
    server.shutdown();
}

#[test]
fn tuple_sessions_absorb_one_entry_per_chunk() {
    let server = quick_server();
    let client = Client::connect(server.local_addr()).expect("connect");
    // Each ABSORB frame is one tuple entry, including the empty one —
    // the defining property that distinguishes TupleHash streaming from
    // plain concatenation.
    let entries: [&[u8]; 4] = [b"first", b"", b"third entry", &[0xAB; 300]];
    let expected = tuple_hash128(&entries, 32, b"tuple");
    let session = client
        .open_session(
            WireAlgorithm::TupleHash128,
            AlgorithmParams::customization(&b"tuple"[..]),
        )
        .expect("open");
    let mut pending = Vec::new();
    for entry in entries {
        pending.push(session.submit_absorb(entry).expect("absorb entry"));
    }
    for reply in pending {
        reply.wait().expect("absorb ack");
    }
    session.finalize(32).expect("finalize");
    let digest = session.squeeze(32).expect("squeeze");
    session.close().expect("close");
    assert_eq!(digest, expected);
    server.shutdown();
}

#[test]
fn tree_sessions_match_the_reference_under_any_chunking() {
    let server = quick_server();
    let client = Client::connect(server.local_addr()).expect("connect");
    let message = pattern(10_000);
    let expected = krv_tree_hash256(&message, 32, b"");
    // Chunk sizes straddling the 4096-byte block: sub-block, prime,
    // exactly-block and whole-message chunks all land identically.
    for chunk in [997usize, 4096, 5000, 10_000] {
        let session = client
            .open_session(WireAlgorithm::TreeHash256, AlgorithmParams::none())
            .expect("open");
        for piece in message.chunks(chunk) {
            session.absorb(piece).expect("absorb");
        }
        session.finalize(32).expect("finalize");
        let digest = session.squeeze(32).expect("squeeze");
        session.close().expect("close");
        assert_eq!(digest, expected, "tree chunked at {chunk}");
    }
    // The empty message is a single empty leaf.
    let session = client
        .open_session(WireAlgorithm::TreeHash256, AlgorithmParams::none())
        .expect("open");
    session.finalize(32).expect("finalize");
    let digest = session.squeeze(32).expect("squeeze");
    session.close().expect("close");
    assert_eq!(digest, krv_tree_hash256(b"", 32, b""));
    // ParallelHash256 streams through the same tree machinery with a
    // caller-chosen block size.
    let expected = parallel_hash256(&message, 512, 64, b"par");
    let session = client
        .open_session(
            WireAlgorithm::ParallelHash256,
            AlgorithmParams::parallel_hash(512, &b"par"[..]),
        )
        .expect("open");
    for piece in message.chunks(300) {
        session.absorb(piece).expect("absorb");
    }
    session.finalize(64).expect("finalize");
    let digest = session.squeeze(64).expect("squeeze");
    session.close().expect("close");
    assert_eq!(digest, expected);
    server.shutdown();
}

#[test]
fn tree_leaves_ride_the_batch_scheduler() {
    let server = quick_server();
    let client = Client::connect(server.local_addr()).expect("connect");
    let before = client.stats().expect("stats before");
    // 16 full blocks: one wire request must fan out into 16 leaf
    // requests plus one root through the service's batch scheduler.
    let message = pattern(16 * 4096);
    let digest = client
        .hash_with(
            WireAlgorithm::TreeHash256,
            AlgorithmParams::none(),
            &message,
            32,
        )
        .expect("tree digest");
    assert_eq!(digest, krv_tree_hash256(&message, 32, b""));
    let after = client.stats().expect("stats after");
    let fanout = after.submitted - before.submitted;
    assert!(
        fanout >= 17,
        "one tree request should fan out into >= 17 service submissions, saw {fanout}"
    );
    server.shutdown();
}

#[test]
fn interleaved_sessions_on_one_socket_stay_independent() {
    let server = quick_server();
    let client = Client::connect(server.local_addr()).expect("connect");
    // Both messages cover exactly five chunks at their chunk sizes, so
    // the zip below absorbs each fully, strictly interleaved.
    let (a_msg, b_msg) = (pattern(450), pattern(333));
    let a = client
        .open_session(WireAlgorithm::Shake256, AlgorithmParams::none())
        .expect("open a");
    let b = client
        .open_session(WireAlgorithm::Sha3_256, AlgorithmParams::none())
        .expect("open b");
    for (ca, cb) in a_msg.chunks(100).zip(b_msg.chunks(67)) {
        a.absorb(ca).expect("absorb a");
        b.absorb(cb).expect("absorb b");
    }
    a.finalize(0).expect("finalize a");
    b.finalize(32).expect("finalize b");
    let da = a.squeeze(32).expect("squeeze a");
    let db = b.squeeze(32).expect("squeeze b");
    a.close().expect("close a");
    b.close().expect("close b");
    assert_eq!(da, Shake256::digest(&a_msg, 32));
    assert_eq!(db, Sha3_256::digest(&b_msg).to_vec());
    server.shutdown();
}

/// The headline acceptance run: a 256 MiB message streamed over TCP in
/// 1 MiB wire chunks matches the in-process one-shot for SHA3-256,
/// SHAKE256 (with the squeeze itself streamed), KMAC256 and the KRV
/// tree-hash. Server memory stays bounded: flat sessions carry a sponge
/// state (200 bytes) between chunks and tree sessions hold at most one
/// partial block plus a 64-leaf dispatch window — never the message.
///
/// Ignored by default (it hashes 2 GiB of traffic end to end); run with
/// `cargo test --release -p krv-server --test stream -- --ignored`.
#[test]
#[ignore = "256 MiB end-to-end run; use --release"]
fn a_256_mib_message_streams_correctly_over_tcp() {
    const MIB: usize = 1 << 20;
    let server = quick_server();
    let client = Client::connect(server.local_addr()).expect("connect");
    let message = pattern(256 * MIB);
    let key = b"acceptance key..";

    let cases: [(WireAlgorithm, AlgorithmParams, usize, Vec<u8>); 4] = [
        (
            WireAlgorithm::Sha3_256,
            AlgorithmParams::none(),
            32,
            Sha3_256::digest(&message).to_vec(),
        ),
        (
            WireAlgorithm::Shake256,
            AlgorithmParams::none(),
            64,
            Shake256::digest(&message, 64),
        ),
        (
            WireAlgorithm::Kmac256,
            AlgorithmParams::kmac(&key[..], &b"acceptance"[..]),
            32,
            kmac256(key, &message, 32, b"acceptance"),
        ),
        (
            WireAlgorithm::TreeHash256,
            AlgorithmParams::none(),
            32,
            krv_tree_hash256(&message, 32, b""),
        ),
    ];
    for (algorithm, params, output_len, expected) in cases {
        let session = client.open_session(algorithm, params).expect("open");
        for chunk in message.chunks(MIB) {
            session.absorb(chunk).expect("absorb 1 MiB chunk");
        }
        let fixed = algorithm.fixed_output_len().is_some()
            || matches!(
                algorithm,
                WireAlgorithm::Kmac256 | WireAlgorithm::TreeHash256
            );
        session
            .finalize(if fixed { output_len } else { 0 })
            .expect("finalize");
        // Stream the squeeze too: two uneven pulls.
        let mut digest = session.squeeze(output_len / 3).expect("squeeze head");
        digest.extend(
            session
                .squeeze(output_len - output_len / 3)
                .expect("squeeze tail"),
        );
        session.close().expect("close");
        assert_eq!(digest, expected, "{} over 256 MiB", algorithm.name());
    }
    server.shutdown();
}
