//! Connection-churn soak: the event loop under clients that come and
//! go rudely.
//!
//! A seeded battery of connect/pipeline/disconnect rounds where peers
//! misbehave on purpose — disconnecting with requests still in flight,
//! half-closing after a burst, and going silent while holding the
//! socket open (half-open, reaped by the idle deadline). Afterwards the
//! daemon must show **no leaks**: the process file-descriptor count is
//! back to its baseline, the service accounts for every admitted
//! request (no stuck tickets), the admission queues are empty, and
//! shutdown drains cleanly.

use krv_server::protocol::{read_frame, write_frame, DEFAULT_MAX_FRAME};
use krv_server::{AlgorithmParams, Client, Request, Server, ServerConfig, WireAlgorithm};
use krv_service::ServiceConfig;
use krv_sha3::Sha3_256;
use krv_testkit::Rng;
use std::io::Write;
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Open file descriptors of this process (Linux); `None` where
/// `/proc` is unavailable, which skips the leak assertion.
fn fd_count() -> Option<usize> {
    Some(std::fs::read_dir("/proc/self/fd").ok()?.count())
}

/// One rude connection: pipelines `burst` requests raw, then abandons
/// the socket according to `style` without reading a single response.
fn rude_round(addr: std::net::SocketAddr, rng: &mut Rng, burst: usize, style: u64) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let mut wire = Vec::new();
    for id in 0..burst as u64 {
        let payload_len = rng.below(200);
        let request = Request::Hash {
            id,
            algorithm: WireAlgorithm::Sha3_256,
            output_len: 32,
            deadline: None,
            params: AlgorithmParams::none(),
            payload: rng.bytes(payload_len),
        };
        write_frame(&mut wire, &request.encode()).expect("frame");
    }
    match style {
        // Mid-request disconnect: send a torn frame (a length prefix
        // promising more than ever arrives) and slam the socket shut.
        0 => {
            let keep = wire.len() - 1 - rng.below(wire.len() / 2);
            let _ = stream.write_all(&wire[..keep]);
            drop(stream);
        }
        // Full burst, then immediate close: every response frame is
        // posted for a connection that may already be gone.
        1 => {
            let _ = stream.write_all(&wire);
            drop(stream);
        }
        // Half-close: the write side FINs, the read side lingers a
        // moment, then leaves without reading.
        _ => {
            let _ = stream.write_all(&wire);
            let _ = stream.shutdown(std::net::Shutdown::Write);
            std::thread::sleep(Duration::from_millis(1 + rng.below(5) as u64));
            drop(stream);
        }
    }
}

#[test]
fn churn_soak_leaks_nothing_and_drains_clean() {
    let server = Server::bind(
        "127.0.0.1:0",
        ServerConfig {
            service: ServiceConfig {
                max_wait: Duration::from_micros(200),
                ..ServiceConfig::default()
            },
            shards: 2,
            // Short idle deadline so the half-open round below is
            // reaped within the test's patience, not after 30 s.
            idle_timeout: Duration::from_millis(250),
            ..ServerConfig::default()
        },
    )
    .expect("bind");
    let addr = server.local_addr();
    let mut rng = Rng::new(0xC1_5011);

    // Baseline after the daemon is up (its listener and sockets count).
    let baseline = fd_count();

    // The churn: rude rounds interleaved with polite clients proving
    // the daemon keeps serving throughout.
    for round in 0..60u64 {
        let burst = 1 + rng.below(12);
        rude_round(addr, &mut rng, burst, round % 3);
        if round % 10 == 9 {
            let client = Client::connect(addr).expect("polite connect");
            let payload = rng.bytes(64);
            assert_eq!(
                client
                    .digest(WireAlgorithm::Sha3_256, &payload)
                    .expect("polite request served mid-churn"),
                Sha3_256::digest(&payload),
                "round {round}"
            );
        }
    }

    // Half-open soak: peers that send a burst then go silent holding
    // the socket open. Only the idle deadline can reap these.
    let mut half_open = Vec::new();
    for _ in 0..8 {
        let mut stream = TcpStream::connect(addr).expect("connect half-open");
        let mut wire = Vec::new();
        write_frame(
            &mut wire,
            &Request::Hash {
                id: 0,
                algorithm: WireAlgorithm::Sha3_256,
                output_len: 32,
                deadline: None,
                params: AlgorithmParams::none(),
                payload: b"then silence".to_vec(),
            }
            .encode(),
        )
        .expect("frame");
        stream.write_all(&wire).expect("write");
        half_open.push(stream);
    }
    // Hold them past the idle deadline; the daemon must reap them all
    // while we still own the sockets.
    std::thread::sleep(Duration::from_millis(600));
    for mut stream in half_open {
        // Our end observes the reap as EOF (or reset).
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .expect("read timeout");
        loop {
            match read_frame(&mut stream, DEFAULT_MAX_FRAME) {
                Ok(None) | Err(_) => break,
                Ok(Some(_)) => {}
            }
        }
    }

    // Every fd the churn opened must be back. Poll briefly: the kernel
    // finishes closing our dropped sockets asynchronously.
    if let Some(baseline) = baseline {
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            let now = fd_count().expect("fd count");
            if now <= baseline {
                break;
            }
            assert!(
                Instant::now() < deadline,
                "fd leak: {now} open vs baseline {baseline}"
            );
            std::thread::sleep(Duration::from_millis(50));
        }
    }

    // No stuck tickets: every admitted request reached a terminal state
    // and the admission queues are empty. Poll briefly — the last rude
    // burst may still be draining through the shards.
    let deadline = Instant::now() + Duration::from_secs(10);
    let settled = loop {
        let metrics = server.metrics();
        let terminal = metrics.completed + metrics.timeouts + metrics.worker_failures;
        if terminal == metrics.submitted && metrics.queue_depth == 0 {
            break metrics;
        }
        assert!(
            Instant::now() < deadline,
            "stuck tickets: submitted {} vs terminal {terminal}, queue depth {}",
            metrics.submitted,
            metrics.queue_depth
        );
        std::thread::sleep(Duration::from_millis(20));
    };
    assert!(settled.submitted > 0, "the churn admitted requests");

    // Clean shutdown drain: the final merged report balances too.
    let report = server.shutdown();
    assert_eq!(
        report.completed + report.timeouts + report.worker_failures,
        report.submitted,
        "shutdown left tickets unaccounted"
    );
    assert_eq!(report.queue_depth, 0, "shutdown left a queue populated");
}
