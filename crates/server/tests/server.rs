//! Integration tests for the daemon: pipelining, error mapping, the
//! connection limits, the STATS request and the graceful shutdown
//! drain — everything through real sockets on loopback.

use krv_server::{Client, ClientError, ErrorCode, Server, ServerConfig, WireAlgorithm};
use krv_service::ServiceConfig;
use krv_sha3::{Sha3_256, Sha3_512, Shake128, Shake256};
use krv_testkit::Rng;
use std::time::Duration;

fn quick_server(config: ServerConfig) -> Server {
    Server::bind("127.0.0.1:0", config).expect("bind ephemeral port")
}

/// A service that closes batches quickly so single requests don't wait
/// out the default window.
fn quick_config() -> ServerConfig {
    ServerConfig {
        service: ServiceConfig {
            max_wait: Duration::from_micros(200),
            ..ServiceConfig::default()
        },
        ..ServerConfig::default()
    }
}

#[test]
fn pipelined_requests_on_one_socket_all_answer_correctly() {
    let server = quick_server(quick_config());
    let client = Client::connect(server.local_addr()).expect("connect");
    let mut rng = Rng::new(0x7C9_0001);
    let messages: Vec<Vec<u8>> = (0..48).map(|i| rng.bytes(i * 11 % 400)).collect();

    // Submit everything before waiting for anything: the whole burst is
    // in flight on one socket at once.
    let pending: Vec<_> = messages
        .iter()
        .enumerate()
        .map(|(i, message)| {
            let (algorithm, output_len) = match i % 4 {
                0 => (WireAlgorithm::Sha3_256, 32),
                1 => (WireAlgorithm::Sha3_512, 64),
                2 => (WireAlgorithm::Shake128, 16 + i),
                _ => (WireAlgorithm::Shake256, 64),
            };
            client
                .submit(algorithm, message, output_len, None)
                .expect("submit")
        })
        .collect();
    for (i, pending) in pending.into_iter().enumerate() {
        let reply = pending.wait_digest().expect("digest");
        let message = &messages[i];
        let expected = match i % 4 {
            0 => Sha3_256::digest(message).to_vec(),
            1 => Sha3_512::digest(message).to_vec(),
            2 => Shake128::digest(message, 16 + i),
            _ => Shake256::digest(message, 64),
        };
        assert_eq!(reply, expected, "request #{i}");
    }
    let report = server.shutdown();
    assert_eq!(report.completed, 48);
    assert_eq!(report.worker_failures, 0);
}

#[test]
fn every_algorithm_round_trips_against_the_reference() {
    let server = quick_server(quick_config());
    let client = Client::connect(server.local_addr()).expect("connect");
    let message = b"the six FIPS 202 functions over the wire";
    for algorithm in WireAlgorithm::FIPS {
        let digest = client.digest(algorithm, message).expect("digest");
        let expected = match algorithm {
            WireAlgorithm::Sha3_224 => krv_sha3::Sha3_224::digest(message).to_vec(),
            WireAlgorithm::Sha3_256 => Sha3_256::digest(message).to_vec(),
            WireAlgorithm::Sha3_384 => krv_sha3::Sha3_384::digest(message).to_vec(),
            WireAlgorithm::Sha3_512 => Sha3_512::digest(message).to_vec(),
            WireAlgorithm::Shake128 => Shake128::digest(message, 32),
            WireAlgorithm::Shake256 => Shake256::digest(message, 32),
            other => unreachable!("{} is not FIPS", other.name()),
        };
        assert_eq!(digest, expected, "{}", algorithm.name());
    }
}

#[test]
fn expired_deadline_maps_to_a_deadline_error_response() {
    let server = quick_server(quick_config());
    let client = Client::connect(server.local_addr()).expect("connect");
    let error = client
        .hash(
            WireAlgorithm::Sha3_256,
            b"doomed",
            32,
            Some(Duration::from_micros(1)),
        )
        .expect_err("deadline must expire");
    match error {
        ClientError::Remote(remote) => assert_eq!(remote.code, ErrorCode::Deadline),
        other => panic!("expected a remote DEADLINE error, got {other:?}"),
    }
}

#[test]
fn a_full_admission_queue_maps_to_busy_not_a_dropped_connection() {
    // Queue bound 2 and a 5 s window: the batch (8 slots) cannot close,
    // so the third in-flight submission is deterministically refused.
    let server = quick_server(ServerConfig {
        service: ServiceConfig {
            queue_capacity: 2,
            max_wait: Duration::from_secs(5),
            ..ServiceConfig::default()
        },
        ..ServerConfig::default()
    });
    let client = Client::connect(server.local_addr()).expect("connect");
    let first = client
        .submit(WireAlgorithm::Sha3_256, b"one", 32, None)
        .expect("submit");
    let second = client
        .submit(WireAlgorithm::Sha3_256, b"two", 32, None)
        .expect("submit");
    let refused = client
        .submit(WireAlgorithm::Sha3_256, b"three", 32, None)
        .expect("submit")
        .wait_digest()
        .expect_err("queue is full");
    match refused {
        ClientError::Remote(remote) => {
            assert_eq!(remote.code, ErrorCode::Busy);
            assert!(remote.detail.contains("queue"), "{}", remote.detail);
        }
        other => panic!("expected BUSY, got {other:?}"),
    }
    // The connection survived the rejection; shutdown drains the two
    // queued requests and their responses still arrive.
    let server_report = std::thread::spawn(move || server.shutdown());
    assert_eq!(
        first.wait_digest().expect("drained"),
        Sha3_256::digest(b"one")
    );
    assert_eq!(
        second.wait_digest().expect("drained"),
        Sha3_256::digest(b"two")
    );
    let report = server_report.join().expect("shutdown thread");
    assert_eq!(report.completed, 2);
    assert_eq!(report.rejected, 1);
}

#[test]
fn the_per_connection_window_refuses_the_excess_with_busy() {
    // Window of 4 against a queue that cannot drain (5 s batching window
    // on an 8-slot pool): the fifth in-flight request must bounce off
    // the connection window before touching the queue.
    let server = quick_server(ServerConfig {
        max_in_flight: 4,
        service: ServiceConfig {
            max_wait: Duration::from_secs(5),
            ..ServiceConfig::default()
        },
        ..ServerConfig::default()
    });
    let client = Client::connect(server.local_addr()).expect("connect");
    let held: Vec<_> = (0..4)
        .map(|i| {
            client
                .submit(WireAlgorithm::Sha3_256, &[i as u8; 16], 32, None)
                .expect("submit")
        })
        .collect();
    let refused = client
        .submit(WireAlgorithm::Sha3_256, b"excess", 32, None)
        .expect("submit")
        .wait_digest()
        .expect_err("window is full");
    match refused {
        ClientError::Remote(remote) => {
            assert_eq!(remote.code, ErrorCode::Busy);
            assert!(remote.detail.contains("window"), "{}", remote.detail);
        }
        other => panic!("expected BUSY, got {other:?}"),
    }
    let server_report = std::thread::spawn(move || server.shutdown());
    for pending in held {
        pending.wait_digest().expect("held requests drain");
    }
    let report = server_report.join().expect("shutdown thread");
    assert_eq!(report.completed, 4);
}

#[test]
fn stats_round_trip_reflects_served_requests() {
    let server = quick_server(quick_config());
    let client = Client::connect(server.local_addr()).expect("connect");
    for i in 0..5u8 {
        client
            .digest(WireAlgorithm::Sha3_256, &[i; 24])
            .expect("digest");
    }
    let remote = client.stats().expect("stats over the wire");
    assert_eq!(remote.submitted, 5);
    assert_eq!(remote.completed, 5);
    assert_eq!(remote.rejected, 0);
    assert_eq!(remote.e2e_ns.count, 5);
    assert!(remote.e2e_ns.p50 <= remote.e2e_ns.p99);
    // The wire snapshot is the server's own snapshot, field for field
    // (counters cannot move between the two calls: this client is the
    // only traffic source and it is idle).
    let local = server.metrics();
    assert_eq!(remote, local);
}

#[test]
fn sharded_stats_round_trip_is_the_exact_merged_snapshot() {
    // 3 shards behind 2 I/O threads: many clients spread their traffic
    // over every shard, then one STATS request must return the merged
    // cluster snapshot — identical, field for field, to the server's
    // own merge, and its counters must be the per-shard sums.
    let server = quick_server(ServerConfig {
        shards: 3,
        ..quick_config()
    });
    let addr = server.local_addr();
    let handles: Vec<_> = (0..12u8)
        .map(|t| {
            std::thread::spawn(move || {
                let client = Client::connect(addr).expect("connect");
                let mut rng = Rng::new(0x54A7_0000 + u64::from(t));
                for i in 0..6usize {
                    let message = rng.bytes(i * 53 % 300);
                    assert_eq!(
                        client
                            .digest(WireAlgorithm::Sha3_256, &message)
                            .expect("digest"),
                        Sha3_256::digest(&message),
                        "client {t} request {i}"
                    );
                }
            })
        })
        .collect();
    for handle in handles {
        handle.join().expect("client thread");
    }

    let client = Client::connect(addr).expect("stats connection");
    let remote = client.stats().expect("stats over the wire");
    let local = server.metrics();
    assert_eq!(remote, local, "wire snapshot differs from the local merge");

    let shards = server.shard_metrics();
    assert_eq!(shards.len(), 3);
    assert_eq!(remote.submitted, shards.iter().map(|s| s.submitted).sum());
    assert_eq!(remote.completed, shards.iter().map(|s| s.completed).sum());
    assert_eq!(
        remote.e2e_ns.count,
        shards.iter().map(|s| s.e2e_ns.count).sum::<u64>()
    );
    assert_eq!(remote.completed, 72);
    assert!(
        shards.iter().all(|s| s.completed > 0),
        "12 clients must cover all 3 shards: {:?}",
        shards.iter().map(|s| s.completed).collect::<Vec<_>>()
    );
    drop(client);
    let report = server.shutdown();
    assert_eq!(report.completed, 72);
}

#[test]
fn graceful_shutdown_answers_every_in_flight_request_before_closing() {
    let server = quick_server(quick_config());
    let client = Client::connect(server.local_addr()).expect("connect");
    let mut rng = Rng::new(0xD2A1_4EED);
    let messages: Vec<Vec<u8>> = (0..24).map(|_| rng.bytes(800)).collect();
    let pending: Vec<_> = messages
        .iter()
        .map(|m| {
            client
                .submit(WireAlgorithm::Shake128, m, 32, None)
                .expect("submit")
        })
        .collect();
    // A stats request after the burst: its reply proves the server has
    // read (and admitted) everything submitted before it on this socket.
    client.stats().expect("stats");

    let report = server.shutdown();
    for (message, pending) in messages.iter().zip(pending) {
        let digest = pending
            .wait_digest()
            .expect("in-flight requests drain with responses, not a dropped socket");
        assert_eq!(digest, Shake128::digest(message, 32));
    }
    assert_eq!(report.completed, 24, "all in-flight requests completed");
}

#[test]
fn requests_after_shutdown_are_refused_and_new_connections_fail() {
    let server = quick_server(quick_config());
    let addr = server.local_addr();
    let client = Client::connect(addr).expect("connect");
    client
        .digest(WireAlgorithm::Sha3_256, b"before")
        .expect("served");
    server.shutdown();
    // The old connection is closed and a fresh request on it fails.
    let outcome = client.digest(WireAlgorithm::Sha3_256, b"after");
    assert!(outcome.is_err(), "socket is closed: {outcome:?}");
    // A fresh connection is refused or immediately closed — the daemon
    // is gone, not wedged.
    if let Ok(late) = Client::connect(addr) {
        assert!(late.digest(WireAlgorithm::Sha3_256, b"late").is_err());
    }
}

#[test]
fn an_idle_connection_is_closed_and_the_daemon_keeps_serving() {
    let server = quick_server(ServerConfig {
        idle_timeout: Duration::from_millis(150),
        ..quick_config()
    });
    let idle = Client::connect(server.local_addr()).expect("connect");
    idle.digest(WireAlgorithm::Sha3_256, b"warm")
        .expect("served");
    std::thread::sleep(Duration::from_millis(400));
    // The server closed the idle socket; the next call fails locally.
    let outcome = idle.digest(WireAlgorithm::Sha3_256, b"stale");
    assert!(outcome.is_err(), "idle connection closed: {outcome:?}");
    // A fresh connection still serves.
    let fresh = Client::connect(server.local_addr()).expect("connect");
    assert_eq!(
        fresh
            .digest(WireAlgorithm::Sha3_256, b"abc")
            .expect("served"),
        Sha3_256::digest(b"abc")
    );
}

#[test]
fn many_connections_share_the_daemon() {
    let server = quick_server(quick_config());
    let addr = server.local_addr();
    let handles: Vec<_> = (0..6u8)
        .map(|t| {
            std::thread::spawn(move || {
                let client = Client::connect(addr).expect("connect");
                let mut rng = Rng::new(0xC0_0000 + u64::from(t));
                for i in 0..8usize {
                    let message = rng.bytes(i * 37 % 256);
                    assert_eq!(
                        client
                            .digest(WireAlgorithm::Sha3_256, &message)
                            .expect("digest"),
                        Sha3_256::digest(&message),
                        "thread {t} request {i}"
                    );
                }
            })
        })
        .collect();
    for handle in handles {
        handle.join().expect("client thread");
    }
    let report = server.shutdown();
    assert_eq!(report.completed, 48);
}
