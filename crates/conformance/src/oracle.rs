//! Instruction-level oracle: each custom Keccak vector instruction is
//! executed through the *whole* pipeline — assembly text, the
//! [`krv_asm`] assembler, instruction fetch/decode, and the vector unit
//! of a [`Processor`] — on random register states, and the architectural
//! result is compared against the corresponding [`krv_keccak::steps`]
//! mapping (or the raw lane arithmetic the paper defines for the op).
//!
//! This sits between the unit tests (which call the executor functions
//! directly) and the KAT layer (which only sees whole permutations): a
//! bug in encoding, parsing, operand routing or element indexing that
//! happens to cancel out in the full kernels is still caught here,
//! because every instruction is checked in isolation against an
//! independent mathematical model.
//!
//! Data moves through simulated memory exactly like the real kernels:
//! inputs are staged with `vle64.v`/`vle32.v`, results come back with
//! `vse64.v`/`vse32.v`, and the program halts on `ecall`.
//!
//! Every scenario runs twice — once on the per-instruction interpreter
//! and once with the compiled execution tier enabled — so the lowered
//! native transfer function of each custom op is held to the same
//! mathematical model as the interpreter it replaces.

use krv_keccak::constants::{RC, RHO_OFFSETS};
use krv_keccak::{steps, KeccakState};
use krv_testkit::{CaseReport, Rng};
use krv_vproc::{Processor, ProcessorConfig};

/// Address where input operands are staged in simulated data memory.
const IN_ADDR: u32 = 0;
/// Address where results are stored back.
const OUT_ADDR: u32 = 2048;
/// Cycle budget per oracle program (each is a handful of instructions).
const MAX_CYCLES: u64 = 100_000;

/// The outcome of fuzzing one instruction against its model.
#[derive(Debug, Clone)]
pub struct OracleOutcome {
    /// Instruction (or instruction pair) under test.
    pub op: &'static str,
    /// Execution tier the cases ran on (`interpreted` or `compiled`).
    pub tier: &'static str,
    /// Random cases executed.
    pub cases: usize,
    /// Divergences between simulator and model (empty on a clean run).
    pub failures: Vec<CaseReport>,
}

impl OracleOutcome {
    /// Whether the simulator matched the model on every case.
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }
}

/// One scenario check: random inputs in (plus the execution tier to
/// run on), a mismatch description out.
type ScenarioCheck = fn(&mut Rng, bool) -> Result<(), String>;

/// The instruction scenarios the oracle covers, as data.
const SCENARIOS: [(&str, ScenarioCheck); 12] = [
    ("vslidedownm.vi", check_slidedownm),
    ("vslideupm.vi", check_slideupm),
    ("vrotup.vi", check_vrotup),
    ("v64rho.vi (row)", check_rho64_row),
    ("v64rho.vi (all)", check_rho64_all),
    ("vpi.vi (rows)", check_pi_rows),
    ("vpi.vi (all)", check_pi_all),
    ("vrhopi.vi (all)", check_rhopi_all),
    ("v32l/hrotup.vv", check_rot32_pair),
    ("v32l/hrho.vv", check_rho32_all),
    ("viota.vx (e64)", check_iota64),
    ("viota.vx (e32)", check_iota32),
];

/// Runs every instruction scenario for `cases_per_op` random register
/// states each, once per execution tier. Seeds are split per
/// (scenario, case) and shared between the tiers, so the compiled row
/// replays exactly the interpreted row's inputs and any failure is
/// reproducible in isolation.
pub fn run_oracle(cases_per_op: usize, seed: u64) -> Vec<OracleOutcome> {
    SCENARIOS
        .iter()
        .enumerate()
        .flat_map(|(index, (op, check))| {
            [(false, "interpreted"), (true, "compiled")].map(|(compiled, tier)| {
                let mut failures = Vec::new();
                for case in 0..cases_per_op {
                    let case_seed = seed
                        ^ ((index as u64) << 48)
                        ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                    if let Err(detail) = check(&mut Rng::new(case_seed), compiled) {
                        failures.push(CaseReport::new(
                            format!("oracle/{op}[{tier}]"),
                            case_seed,
                            detail,
                        ));
                    }
                }
                OracleOutcome {
                    op,
                    tier,
                    cases: cases_per_op,
                    failures,
                }
            })
        })
        .collect()
}

// ---------------------------------------------------------------------
// Harness: assemble, stage memory, run to ecall, read back.
// ---------------------------------------------------------------------

/// Assembles `source` and runs it to the halting `ecall` on a fresh
/// processor whose data memory was pre-staged by `stage`. `compiled`
/// selects the execution tier.
fn run_program(
    config: ProcessorConfig,
    compiled: bool,
    source: &str,
    stage: impl FnOnce(&mut Processor),
) -> Result<Processor, String> {
    let program = krv_asm::assemble(source).map_err(|e| format!("assembler rejected: {e}"))?;
    let mut processor = Processor::new(config);
    processor.set_compiled(compiled);
    stage(&mut processor);
    processor.load_program(program.instructions());
    processor
        .run(MAX_CYCLES)
        .map_err(|trap| format!("trap: {trap}"))?;
    Ok(processor)
}

/// Writes 64-bit elements to simulated memory.
fn write_u64s(processor: &mut Processor, addr: u32, values: &[u64]) {
    let mut bytes = Vec::with_capacity(values.len() * 8);
    for value in values {
        bytes.extend_from_slice(&value.to_le_bytes());
    }
    processor
        .dmem_mut()
        .write_bytes(addr, &bytes)
        .expect("staging inside dmem");
}

/// Reads 64-bit elements from simulated memory.
fn read_u64s(processor: &Processor, addr: u32, count: usize) -> Vec<u64> {
    let bytes = processor
        .dmem()
        .read_bytes(addr, count * 8)
        .expect("read-back inside dmem");
    bytes
        .chunks_exact(8)
        .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
        .collect()
}

/// Writes 32-bit elements to simulated memory.
fn write_u32s(processor: &mut Processor, addr: u32, values: &[u32]) {
    let mut bytes = Vec::with_capacity(values.len() * 4);
    for value in values {
        bytes.extend_from_slice(&value.to_le_bytes());
    }
    processor
        .dmem_mut()
        .write_bytes(addr, &bytes)
        .expect("staging inside dmem");
}

/// Reads 32-bit elements from simulated memory.
fn read_u32s(processor: &Processor, addr: u32, count: usize) -> Vec<u32> {
    let bytes = processor
        .dmem()
        .read_bytes(addr, count * 4)
        .expect("read-back inside dmem");
    bytes
        .chunks_exact(4)
        .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
        .collect()
}

/// Formats a mismatch between two element vectors.
fn diff_u64(op: &str, got: &[u64], expected: &[u64]) -> Result<(), String> {
    match got.iter().zip(expected).position(|(g, e)| g != e) {
        None => Ok(()),
        Some(i) => Err(format!(
            "{op}: element {i} = {:#018x}, model says {:#018x}",
            got[i], expected[i]
        )),
    }
}

/// Formats a mismatch between two 32-bit element vectors.
fn diff_u32(op: &str, got: &[u32], expected: &[u32]) -> Result<(), String> {
    match got.iter().zip(expected).position(|(g, e)| g != e) {
        None => Ok(()),
        Some(i) => Err(format!(
            "{op}: element {i} = {:#010x}, model says {:#010x}",
            got[i], expected[i]
        )),
    }
}

/// A random state whose lanes occasionally carry boundary patterns.
fn random_lanes<const N: usize>(rng: &mut Rng) -> [u64; N] {
    let mut lanes = [0u64; N];
    for lane in lanes.iter_mut() {
        *lane = match rng.below(8) {
            0 => 0,
            1 => u64::MAX,
            2 => 1u64 << rng.below(64),
            _ => rng.next_u64(),
        };
    }
    lanes
}

// ---------------------------------------------------------------------
// e64, LMUL = 1 scenarios: ten live elements = two resident states.
// ---------------------------------------------------------------------

/// Runs `{op} v2, v1, {imm}` over ten random 64-bit elements and
/// returns what came back.
fn single_op_e64(op_line: &str, compiled: bool, input: &[u64; 10]) -> Result<Vec<u64>, String> {
    let source = format!(
        "li a0, {IN_ADDR}\n\
         li a1, {OUT_ADDR}\n\
         li t0, 10\n\
         vsetvli x0, t0, e64, m1, tu, mu\n\
         vle64.v v1, (a0)\n\
         {op_line}\n\
         vse64.v v2, (a1)\n\
         ecall\n"
    );
    let processor = run_program(ProcessorConfig::elen64(10), compiled, &source, |p| {
        write_u64s(p, IN_ADDR, input);
    })?;
    Ok(read_u64s(&processor, OUT_ADDR, 10))
}

fn check_slidedownm(rng: &mut Rng, compiled: bool) -> Result<(), String> {
    let input: [u64; 10] = random_lanes(rng);
    let offset = rng.below(5);
    let got = single_op_e64(
        &format!("vslidedownm.vi v2, v1, {offset}"),
        compiled,
        &input,
    )?;
    // Model (paper Figure 7): vd[5i+j] = vs2[5i + (j + k) mod 5].
    let expected: Vec<u64> = (0..10)
        .map(|g| input[5 * (g / 5) + (g % 5 + offset) % 5])
        .collect();
    diff_u64(&format!("vslidedownm k={offset}"), &got, &expected)
}

fn check_slideupm(rng: &mut Rng, compiled: bool) -> Result<(), String> {
    let input: [u64; 10] = random_lanes(rng);
    let offset = rng.below(5);
    let got = single_op_e64(&format!("vslideupm.vi v2, v1, {offset}"), compiled, &input)?;
    // Model: vd[5i+j] = vs2[5i + (j − k) mod 5].
    let expected: Vec<u64> = (0..10)
        .map(|g| input[5 * (g / 5) + (g % 5 + 5 - offset) % 5])
        .collect();
    diff_u64(&format!("vslideupm k={offset}"), &got, &expected)
}

fn check_vrotup(rng: &mut Rng, compiled: bool) -> Result<(), String> {
    let input: [u64; 10] = random_lanes(rng);
    let amount = rng.below(32) as u32; // uimm field is 5 bits
    let got = single_op_e64(&format!("vrotup.vi v2, v1, {amount}"), compiled, &input)?;
    let expected: Vec<u64> = input.iter().map(|v| v.rotate_left(amount)).collect();
    diff_u64(&format!("vrotup k={amount}"), &got, &expected)
}

fn check_rho64_row(rng: &mut Rng, compiled: bool) -> Result<(), String> {
    let input: [u64; 10] = random_lanes(rng);
    let row = rng.below(5);
    let got = single_op_e64(&format!("v64rho.vi v2, v1, {row}"), compiled, &input)?;
    // Model (paper Table 2): lane x of row r rotates by ρ-offset [r][x].
    let expected: Vec<u64> = (0..10)
        .map(|g| input[g].rotate_left(RHO_OFFSETS[row][g % 5]))
        .collect();
    diff_u64(&format!("v64rho row={row}"), &got, &expected)
}

fn check_iota64(rng: &mut Rng, compiled: bool) -> Result<(), String> {
    let input: [u64; 10] = random_lanes(rng);
    let round = rng.below(24);
    let source = format!(
        "li a0, {IN_ADDR}\n\
         li a1, {OUT_ADDR}\n\
         li t0, 10\n\
         li s3, {round}\n\
         vsetvli x0, t0, e64, m1, tu, mu\n\
         vle64.v v1, (a0)\n\
         viota.vx v2, v1, s3\n\
         vse64.v v2, (a1)\n\
         ecall\n"
    );
    let processor = run_program(ProcessorConfig::elen64(10), compiled, &source, |p| {
        write_u64s(p, IN_ADDR, &input);
    })?;
    let got = read_u64s(&processor, OUT_ADDR, 10);
    // Model (steps::iota): only lane (0,0) of each state changes, by RC.
    let expected: Vec<u64> = (0..10)
        .map(|g| {
            if g % 5 == 0 {
                input[g] ^ RC[round]
            } else {
                input[g]
            }
        })
        .collect();
    diff_u64(&format!("viota round={round}"), &got, &expected)
}

// ---------------------------------------------------------------------
// e64, LMUL = 8 scenarios: one register per plane, full-state step
// mappings checked against krv_keccak::steps.
// ---------------------------------------------------------------------

/// Runs a whole-state LMUL=8 op (source group `v0`, `{op_line}` between
/// the vsetvli pair) and reads the result back from the `dest` register
/// group, as planes.
fn whole_state_e64(
    op_line: &str,
    compiled: bool,
    dest: usize,
    state: &KeccakState,
) -> Result<KeccakState, String> {
    let mut source = String::new();
    source.push_str("li t0, 5\nli t1, 25\n");
    for y in 0..5 {
        source.push_str(&format!("li a{y}, {}\n", IN_ADDR + 40 * y));
    }
    source.push_str("vsetvli x0, t0, e64, m1, tu, mu\n");
    for y in 0..5 {
        source.push_str(&format!("vle64.v v{y}, (a{y})\n"));
    }
    source.push_str("vsetvli x0, t1, e64, m8, tu, mu\n");
    source.push_str(op_line);
    source.push_str("\nvsetvli x0, t0, e64, m1, tu, mu\n");
    for y in 0..5 {
        source.push_str(&format!("li a{y}, {}\n", OUT_ADDR + 40 * y as u32));
    }
    for y in 0..5 {
        source.push_str(&format!("vse64.v v{}, (a{y})\n", dest + y));
    }
    source.push_str("ecall\n");

    let planes: Vec<[u64; 5]> = (0..5)
        .map(|y| [0, 1, 2, 3, 4].map(|x| state.lane(x, y)))
        .collect();
    let processor = run_program(ProcessorConfig::elen64(5), compiled, &source, |p| {
        for (y, plane) in planes.iter().enumerate() {
            write_u64s(p, IN_ADDR + 40 * y as u32, plane);
        }
    })?;
    let mut out = KeccakState::new();
    for y in 0..5 {
        let plane = read_u64s(&processor, OUT_ADDR + 40 * y as u32, 5);
        for x in 0..5 {
            out.set_lane(x, y, plane[x]);
        }
    }
    Ok(out)
}

/// Compares two states lane-by-lane.
fn diff_state(op: &str, got: &KeccakState, expected: &KeccakState) -> Result<(), String> {
    if got == expected {
        return Ok(());
    }
    let (i, _) = got
        .lanes()
        .iter()
        .zip(expected.lanes())
        .enumerate()
        .find(|(_, (g, e))| g != e)
        .expect("states differ");
    Err(format!(
        "{op}: lane ({},{}) = {:#018x}, model says {:#018x}",
        i % 5,
        i / 5,
        got.lanes()[i],
        expected.lanes()[i]
    ))
}

fn check_rho64_all(rng: &mut Rng, compiled: bool) -> Result<(), String> {
    let state = KeccakState::from_lanes(random_lanes(rng));
    let got = whole_state_e64("v64rho.vi v0, v0, -1", compiled, 0, &state)?;
    diff_state("v64rho all-rows vs steps::rho", &got, &steps::rho(&state))
}

fn check_pi_all(rng: &mut Rng, compiled: bool) -> Result<(), String> {
    let state = KeccakState::from_lanes(random_lanes(rng));
    let got = whole_state_e64("vpi.vi v8, v0, -1", compiled, 8, &state)?;
    diff_state("vpi all-rows vs steps::pi", &got, &steps::pi(&state))
}

fn check_rhopi_all(rng: &mut Rng, compiled: bool) -> Result<(), String> {
    let state = KeccakState::from_lanes(random_lanes(rng));
    let got = whole_state_e64("vrhopi.vi v8, v0, -1", compiled, 8, &state)?;
    let expected = steps::pi(&steps::rho(&state));
    diff_state("vrhopi all-rows vs steps::pi∘rho", &got, &expected)
}

/// The five single-row `vpi` form, as the LMUL=1 kernel issues it
/// (paper Algorithm 2, lines 24–28), on two resident states at once.
fn check_pi_rows(rng: &mut Rng, compiled: bool) -> Result<(), String> {
    let states = [
        KeccakState::from_lanes(random_lanes(rng)),
        KeccakState::from_lanes(random_lanes(rng)),
    ];
    let mut source = String::new();
    source.push_str("li t0, 10\n");
    for y in 0..5 {
        source.push_str(&format!("li a{y}, {}\n", IN_ADDR + 80 * y));
    }
    source.push_str("vsetvli x0, t0, e64, m1, tu, mu\n");
    // Planes live in v1–v5; destination column group is v6–v10.
    for y in 0..5 {
        source.push_str(&format!("vle64.v v{}, (a{y})\n", y + 1));
    }
    for r in 0..5 {
        source.push_str(&format!("vpi.vi v6, v{}, {r}\n", r + 1));
    }
    for y in 0..5 {
        source.push_str(&format!("li a{y}, {}\n", OUT_ADDR + 80 * y as u32));
    }
    for y in 0..5 {
        source.push_str(&format!("vse64.v v{}, (a{y})\n", y + 6));
    }
    source.push_str("ecall\n");

    let processor = run_program(ProcessorConfig::elen64(10), compiled, &source, |p| {
        for y in 0..5 {
            let row: Vec<u64> = (0..10).map(|g| states[g / 5].lane(g % 5, y)).collect();
            write_u64s(p, IN_ADDR + 80 * y as u32, &row);
        }
    })?;
    let expected = [steps::pi(&states[0]), steps::pi(&states[1])];
    for y in 0..5 {
        let got = read_u64s(&processor, OUT_ADDR + 80 * y as u32, 10);
        for (g, value) in got.iter().enumerate() {
            let model = expected[g / 5].lane(g % 5, y);
            if *value != model {
                return Err(format!(
                    "vpi single-row vs steps::pi: state {} lane ({},{y}) = {value:#018x}, model says {model:#018x}",
                    g / 5,
                    g % 5
                ));
            }
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------
// 32-bit architecture scenarios: lanes split into low/high words.
// ---------------------------------------------------------------------

fn check_rot32_pair(rng: &mut Rng, compiled: bool) -> Result<(), String> {
    let lanes: [u64; 10] = random_lanes(rng);
    let low: Vec<u32> = lanes.iter().map(|l| *l as u32).collect();
    let high: Vec<u32> = lanes.iter().map(|l| (*l >> 32) as u32).collect();
    let source = format!(
        "li a0, {IN_ADDR}\n\
         li a1, {}\n\
         li a2, {OUT_ADDR}\n\
         li a3, {}\n\
         li t0, 10\n\
         vsetvli x0, t0, e32, m1, tu, mu\n\
         vle32.v v1, (a0)\n\
         vle32.v v2, (a1)\n\
         v32lrotup.vv v3, v2, v1\n\
         v32hrotup.vv v4, v2, v1\n\
         vse32.v v3, (a2)\n\
         vse32.v v4, (a3)\n\
         ecall\n",
        IN_ADDR + 64,
        OUT_ADDR + 64,
    );
    let processor = run_program(ProcessorConfig::elen32(10), compiled, &source, |p| {
        write_u32s(p, IN_ADDR, &low);
        write_u32s(p, IN_ADDR + 64, &high);
    })?;
    let got_low = read_u32s(&processor, OUT_ADDR, 10);
    let got_high = read_u32s(&processor, OUT_ADDR + 64, 10);
    // Model (paper Table 3): rotate the reassembled 64-bit lane by one.
    let rotated: Vec<u64> = lanes.iter().map(|l| l.rotate_left(1)).collect();
    let exp_low: Vec<u32> = rotated.iter().map(|l| *l as u32).collect();
    let exp_high: Vec<u32> = rotated.iter().map(|l| (*l >> 32) as u32).collect();
    diff_u32("v32lrotup", &got_low, &exp_low)?;
    diff_u32("v32hrotup", &got_high, &exp_high)
}

fn check_rho32_all(rng: &mut Rng, compiled: bool) -> Result<(), String> {
    let state = KeccakState::from_lanes(random_lanes(rng));
    let mut source = String::new();
    source.push_str("li t0, 5\nli t1, 25\n");
    // Low halves to v0–v4, high halves to v16–v20 (paper Figure 6).
    for y in 0..5 {
        source.push_str(&format!("li a{y}, {}\n", IN_ADDR + 20 * y));
    }
    source.push_str("vsetvli x0, t0, e32, m1, tu, mu\n");
    for y in 0..5 {
        source.push_str(&format!("vle32.v v{y}, (a{y})\n"));
    }
    for y in 0..5 {
        source.push_str(&format!("li a{y}, {}\n", IN_ADDR + 256 + 20 * y));
    }
    for y in 0..5 {
        source.push_str(&format!("vle32.v v{}, (a{y})\n", y + 16));
    }
    source.push_str(
        "vsetvli x0, t1, e32, m8, tu, mu\n\
         v32lrho.vv v8, v16, v0\n\
         v32hrho.vv v24, v16, v0\n\
         vsetvli x0, t0, e32, m1, tu, mu\n",
    );
    for y in 0..5 {
        source.push_str(&format!("li a{y}, {}\n", OUT_ADDR + 20 * y as u32));
    }
    for y in 0..5 {
        source.push_str(&format!("vse32.v v{}, (a{y})\n", y + 8));
    }
    for y in 0..5 {
        source.push_str(&format!("li a{y}, {}\n", OUT_ADDR + 512 + 20 * y as u32));
    }
    for y in 0..5 {
        source.push_str(&format!("vse32.v v{}, (a{y})\n", y + 24));
    }
    source.push_str("ecall\n");

    let processor = run_program(ProcessorConfig::elen32(5), compiled, &source, |p| {
        for y in 0..5 {
            let low: Vec<u32> = (0..5).map(|x| state.lane(x, y) as u32).collect();
            let high: Vec<u32> = (0..5).map(|x| (state.lane(x, y) >> 32) as u32).collect();
            write_u32s(p, IN_ADDR + 20 * y as u32, &low);
            write_u32s(p, IN_ADDR + 256 + 20 * y as u32, &high);
        }
    })?;
    let expected = steps::rho(&state);
    for y in 0..5 {
        let got_low = read_u32s(&processor, OUT_ADDR + 20 * y as u32, 5);
        let got_high = read_u32s(&processor, OUT_ADDR + 512 + 20 * y as u32, 5);
        for x in 0..5 {
            let model = expected.lane(x, y);
            let got = (u64::from(got_high[x]) << 32) | u64::from(got_low[x]);
            if got != model {
                return Err(format!(
                    "v32l/hrho vs steps::rho: lane ({x},{y}) = {got:#018x}, model says {model:#018x}"
                ));
            }
        }
    }
    Ok(())
}

fn check_iota32(rng: &mut Rng, compiled: bool) -> Result<(), String> {
    let input: [u64; 5] = random_lanes(rng);
    let low: Vec<u32> = input.iter().map(|l| *l as u32).collect();
    let round = rng.below(24);
    // Two issues per round on the 32-bit architecture: index r for the
    // low word, 24 + r for the high word (paper Table 6).
    let source = format!(
        "li a0, {IN_ADDR}\n\
         li a1, {OUT_ADDR}\n\
         li a2, {}\n\
         li t0, 5\n\
         vsetvli x0, t0, e32, m1, tu, mu\n\
         vle32.v v1, (a0)\n\
         li s3, {round}\n\
         viota.vx v2, v1, s3\n\
         li s3, {}\n\
         viota.vx v3, v1, s3\n\
         vse32.v v2, (a1)\n\
         vse32.v v3, (a2)\n\
         ecall\n",
        OUT_ADDR + 64,
        24 + round,
    );
    let processor = run_program(ProcessorConfig::elen32(5), compiled, &source, |p| {
        write_u32s(p, IN_ADDR, &low);
    })?;
    let got_low = read_u32s(&processor, OUT_ADDR, 5);
    let got_high = read_u32s(&processor, OUT_ADDR + 64, 5);
    let exp_low: Vec<u32> = (0..5)
        .map(|g| {
            if g == 0 {
                low[g] ^ (RC[round] as u32)
            } else {
                low[g]
            }
        })
        .collect();
    let exp_high: Vec<u32> = (0..5)
        .map(|g| {
            if g == 0 {
                low[g] ^ ((RC[round] >> 32) as u32)
            } else {
                low[g]
            }
        })
        .collect();
    diff_u32(&format!("viota low round={round}"), &got_low, &exp_low)?;
    diff_u32(&format!("viota high round={round}"), &got_high, &exp_high)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_scenario_passes_a_few_cases_on_both_tiers() {
        let outcomes = run_oracle(2, 0xDECAF);
        assert_eq!(outcomes.len(), 2 * SCENARIOS.len());
        for outcome in outcomes {
            assert!(
                outcome.passed(),
                "{} [{}]: {:?}",
                outcome.op,
                outcome.tier,
                outcome.failures
            );
            assert_eq!(outcome.cases, 2);
        }
    }

    #[test]
    fn scenario_names_are_unique() {
        let mut names: Vec<&str> = SCENARIOS.iter().map(|(n, _)| *n).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), SCENARIOS.len());
    }
}
