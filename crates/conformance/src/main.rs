//! The `conformance` binary: run the full differential conformance
//! suite and print the backend × function pass matrix.
//!
//! ```text
//! conformance [--smoke | --full] [--seed N] [--cases N] [--oracle-cases N]
//! ```
//!
//! `--smoke` (the default) runs the short + long KAT vectors with the
//! 100-iteration Monte Carlo chain, 500 differential-fuzz cases and 12
//! cases per instruction-oracle and fast-path scenario — seconds in a
//! release build, suitable for CI. `--full` is the nightly tier: 1000
//! Monte Carlo iterations, 5000 fuzz cases, 100 cases per scenario.
//!
//! Exits nonzero if any layer reports a divergence.

use krv_conformance::{run, Tier};

fn main() {
    let mut tier = Tier::Smoke;
    let mut seed: u64 = 0x5EED_CAFE;
    let mut fuzz_cases: Option<usize> = None;
    let mut oracle_cases: Option<usize> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => tier = Tier::Smoke,
            "--full" => tier = Tier::Full,
            "--seed" => seed = parse_next(&mut args, "--seed"),
            "--cases" => fuzz_cases = Some(parse_next(&mut args, "--cases")),
            "--oracle-cases" => oracle_cases = Some(parse_next(&mut args, "--oracle-cases")),
            "--help" | "-h" => {
                println!(
                    "usage: conformance [--smoke | --full] [--seed N] \
                     [--cases N] [--oracle-cases N]"
                );
                return;
            }
            other => {
                eprintln!("unknown argument `{other}` (try --help)");
                std::process::exit(2);
            }
        }
    }

    let (fuzz, oracle) = match tier {
        Tier::Full => (5000, 100),
        _ => (500, 12),
    };
    let fuzz = fuzz_cases.unwrap_or(fuzz);
    let oracle = oracle_cases.unwrap_or(oracle);

    let tier_name = match tier {
        Tier::Short => "short",
        Tier::Smoke => "smoke",
        Tier::Full => "full",
    };
    println!(
        "conformance: tier={tier_name} seed={seed:#x} fuzz-cases={fuzz} \
         oracle-cases={oracle}/instruction\n"
    );

    let report = run(tier, fuzz, oracle, seed);
    println!("{}", report.render());

    if report.passed() {
        println!("conformance: all layers clean");
    } else {
        eprintln!(
            "conformance: {} failure(s) — see report above",
            report.failures().len()
        );
        std::process::exit(1);
    }
}

/// Parses the value following a flag, exiting with a usage error if it
/// is missing or malformed.
fn parse_next<T: std::str::FromStr>(args: &mut impl Iterator<Item = String>, flag: &str) -> T {
    let Some(text) = args.next() else {
        eprintln!("{flag} needs a value");
        std::process::exit(2);
    };
    let Ok(value) = text.parse() else {
        eprintln!("{flag}: invalid value `{text}`");
        std::process::exit(2);
    };
    value
}
