//! ML-KEM conformance: embedded FIPS 203 known-answer vectors run
//! against every backend in the roster, plus a seeded differential fuzz
//! family cross-checking the full KeyGen/Encaps/Decaps pipeline between
//! each backend and the scalar reference.
//!
//! The expected values in [`crate::kem_vectors`] come from an
//! independent Python implementation of FIPS 203 (`gen_kem_vectors.py`,
//! written to the standard's pseudocode over OpenSSL's SHA-3), so
//! agreement here anchors the whole Kyber pipeline — NTT algebra,
//! rejection/CBD sampling, ByteEncode/Compress serialization, the
//! staged hash-job scheduler and the implicit-rejection FO transform —
//! to external ground truth. Each vector is checked through KeyGen,
//! Encaps, Decaps **and** a tampered-ciphertext Decaps whose output
//! must equal the vector's `J(z ‖ ct′)` implicit-rejection secret.

use crate::kat::{backend_states, KatOutcome};
use crate::kem_vectors::{MlKemVector, ML_KEM_VECTORS};
use krv_core::{BackendKind, KernelKind};
use krv_kyber::{ml_kem_decaps, ml_kem_encaps, ml_kem_keygen, KemResult, KyberParams};
use krv_service::{KemRequest, KemTicket, Service, ServiceConfig, TierPolicy};
use krv_sha3::{hex, PermutationBackend, Shake256, Xof};
use krv_testkit::{shrink, CaseReport, Rng};
use std::time::Duration;

/// The pass-matrix column key of the ML-KEM rows.
pub const KEM_ALGORITHM: &str = "ML-KEM";

/// The pass-matrix row key of the KEM serving path (native tier with
/// the simulator mirroring every staged dispatch group).
pub const KEM_SERVICE_LABEL: &str = "service/kem+mirror";

/// Decodes lowercase hex (the embedded vector format).
fn unhex(text: &str) -> Vec<u8> {
    assert_eq!(text.len() % 2, 0, "ragged hex string");
    (0..text.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(&text[i..i + 2], 16).expect("embedded vectors are valid hex"))
        .collect()
}

fn seed32(text: &str) -> [u8; 32] {
    let bytes = unhex(text);
    let mut out = [0u8; 32];
    out.copy_from_slice(&bytes);
    out
}

/// Maps a vector's module rank to the workspace parameter set.
fn params_for(vector: &MlKemVector) -> KyberParams {
    match vector.k {
        2 => KyberParams::KYBER512,
        3 => KyberParams::KYBER768,
        4 => KyberParams::KYBER1024,
        other => panic!("no FIPS 203 parameter set has k={other}"),
    }
}

/// The vectors selected at a tier: the short (test) tier takes one
/// vector per parameter set, deeper tiers take all of them.
fn select(tier: crate::kat::Tier) -> Vec<&'static MlKemVector> {
    match tier {
        crate::kat::Tier::Short => ML_KEM_VECTORS.iter().step_by(2).collect(),
        _ => ML_KEM_VECTORS.iter().collect(),
    }
}

/// Runs the embedded ML-KEM vectors on one backend: KeyGen, Encaps and
/// Decaps against the external expectations, plus the tampered-
/// ciphertext Decaps that must yield the implicit-rejection secret.
pub fn run_kem_suite(kind: &BackendKind, tier: crate::kat::Tier) -> KatOutcome {
    let mut backend = kind.instantiate(backend_states(kind));
    let mut failures = Vec::new();
    let mut cases = 0;
    for vector in select(tier) {
        cases += check_vector(backend.as_mut(), vector, &mut failures);
    }
    KatOutcome {
        backend: kind.label(),
        algorithm: KEM_ALGORITHM,
        cases,
        failures,
    }
}

/// Checks one vector on one backend; returns the case count.
fn check_vector(
    backend: &mut dyn PermutationBackend,
    vector: &MlKemVector,
    failures: &mut Vec<CaseReport>,
) -> usize {
    let params = params_for(vector);
    let set = vector.set;
    let mut fail = |stage: &str, detail: String| {
        failures.push(CaseReport::new(format!("kem/{set}/{stage}"), 0, detail));
    };

    // KeyGen from (d, z).
    let (ek, dk) = ml_kem_keygen(
        params,
        &seed32(vector.d_hex),
        &seed32(vector.z_hex),
        &mut *backend,
    );
    if hex(&ek) != vector.ek_hex {
        fail("keygen", format!("ek {} != expected", preview(&ek)));
    }
    if hex(&dk) != vector.dk_hex {
        fail("keygen", format!("dk {} != expected", preview(&dk)));
    }

    // Encaps under the *expected* ek (so a keygen failure does not
    // cascade), against the expected ciphertext and shared secret.
    let expected_ek = unhex(vector.ek_hex);
    let m = seed32(vector.m_hex);
    match ml_kem_encaps(params, &expected_ek, &m, &mut *backend) {
        Ok((ct, shared)) => {
            if hex(&ct) != vector.ct_hex {
                fail("encaps", format!("ct {} != expected", preview(&ct)));
            }
            if hex(&shared) != vector.shared_hex {
                fail("encaps", format!("secret {} != expected", hex(&shared)));
            }
        }
        Err(error) => fail("encaps", format!("rejected a valid key: {error}")),
    }

    // Decaps of the expected ciphertext must recover the secret.
    let expected_dk = unhex(vector.dk_hex);
    let expected_ct = unhex(vector.ct_hex);
    match ml_kem_decaps(params, &expected_dk, &expected_ct, &mut *backend) {
        Ok(shared) if hex(&shared) == vector.shared_hex => {}
        Ok(shared) => fail("decaps", format!("secret {} != expected", hex(&shared))),
        Err(error) => fail("decaps", format!("rejected a valid input: {error}")),
    }

    // Implicit rejection: the tampered ciphertext must yield exactly
    // J(z ‖ ct′) — never an error, never the real secret.
    let mut tampered = expected_ct;
    tampered[vector.tamper_index] ^= 0x01;
    match ml_kem_decaps(params, &expected_dk, &tampered, &mut *backend) {
        Ok(shared) if hex(&shared) == vector.rejection_hex => {}
        Ok(shared) => fail(
            "reject",
            format!("rejection secret {} != expected", hex(&shared)),
        ),
        Err(error) => fail("reject", format!("tampered ct errored: {error}")),
    }
    4
}

/// Runs the embedded ML-KEM vectors through the **serving path**: every
/// vector's KeyGen, Encaps, Decaps and tampered-ciphertext Decaps is
/// submitted as its own request to a continuous-batching [`Service`],
/// all in one burst, so the staged hash jobs additionally cross the
/// admission queue, the micro-batch scheduler and the cross-request
/// SHAKE packing — on the native tier, with the simulator mirroring
/// every dispatch group as an online differential oracle. A latched
/// mirror mismatch or a lost request fails the row via the health
/// check, exactly like the hash serving rows.
pub fn run_service_kem_suite(tier: crate::kat::Tier) -> KatOutcome {
    let service = Service::start(ServiceConfig {
        kernel: KernelKind::E64Lmul8,
        sn: 2,
        workers: 2,
        queue_capacity: 1024,
        max_wait: Duration::from_micros(50),
        tier: TierPolicy::native().with_mirror_every(1),
        fair_share: None,
    });
    let mut failures = Vec::new();
    let mut cases = 0;
    let vectors = select(tier);

    // One burst: all operations of all vectors submitted before the
    // first ticket is awaited, so concurrent KEM jobs actually share
    // dispatch groups.
    let mut tickets: Vec<(String, &'static str, KemTicket)> = Vec::new();
    for vector in &vectors {
        let params = params_for(vector);
        let mut submit = |stage: &'static str, request: KemRequest| {
            let ticket = service
                .submit_kem(request)
                .expect("KEM burst fits the queue");
            tickets.push((format!("kem/{}/{stage}", vector.set), stage, ticket));
        };
        submit(
            "keygen",
            KemRequest::keygen(params, seed32(vector.d_hex), seed32(vector.z_hex)),
        );
        submit(
            "encaps",
            KemRequest::encaps(params, unhex(vector.ek_hex), seed32(vector.m_hex)),
        );
        submit(
            "decaps",
            KemRequest::decaps(params, unhex(vector.dk_hex), unhex(vector.ct_hex)),
        );
        let mut tampered = unhex(vector.ct_hex);
        tampered[vector.tamper_index] ^= 0x01;
        submit(
            "reject",
            KemRequest::decaps(params, unhex(vector.dk_hex), tampered),
        );
    }
    let mut outcomes = tickets.into_iter();
    for vector in &vectors {
        for _ in 0..4 {
            let (case, stage, ticket) = outcomes.next().expect("4 tickets per vector");
            cases += 1;
            let mut fail = |detail: String| {
                failures.push(CaseReport::new(case.clone(), 0, detail));
            };
            match ticket.wait().result {
                Ok(KemResult::Keygen { ek, dk }) => {
                    if hex(&ek) != vector.ek_hex {
                        fail(format!("served ek {} != expected", preview(&ek)));
                    }
                    if hex(&dk) != vector.dk_hex {
                        fail(format!("served dk {} != expected", preview(&dk)));
                    }
                }
                Ok(KemResult::Encaps { ct, shared_secret }) => {
                    if hex(&ct) != vector.ct_hex {
                        fail(format!("served ct {} != expected", preview(&ct)));
                    }
                    if hex(&shared_secret) != vector.shared_hex {
                        fail(format!("served secret {} != expected", hex(&shared_secret)));
                    }
                }
                Ok(KemResult::Decaps { shared_secret }) => {
                    let expected = match stage {
                        "decaps" => vector.shared_hex,
                        _ => vector.rejection_hex,
                    };
                    if hex(&shared_secret) != expected {
                        fail(format!("served secret {} != expected", hex(&shared_secret)));
                    }
                }
                Err(error) => fail(format!("request failed: {error}")),
            }
        }
    }

    // Health check: every operation completed on the native tier, the
    // mirror actually ran, and it latched no divergence.
    let report = service.shutdown();
    if report.completed != cases as u64
        || report.worker_failures != 0
        || report.kem_invalid != 0
        || report.mirrored == 0
        || report.mirror_mismatches != 0
    {
        failures.push(CaseReport::new(
            "kem/service-health",
            0,
            format!(
                "unhealthy KEM serving run: {} completed of {cases}, {} worker failures, \
                 {} invalid, {} mirrored, {} mirror mismatches",
                report.completed,
                report.worker_failures,
                report.kem_invalid,
                report.mirrored,
                report.mirror_mismatches
            ),
        ));
    }

    KatOutcome {
        backend: KEM_SERVICE_LABEL.to_string(),
        algorithm: KEM_ALGORITHM,
        cases,
        failures,
    }
}

/// A short displayable prefix of a long byte string.
fn preview(bytes: &[u8]) -> String {
    if bytes.len() <= 16 {
        hex(bytes)
    } else {
        format!("{}…({} B)", hex(&bytes[..16]), bytes.len())
    }
}

/// One differential-fuzz input: the three 32-byte seeds driving a full
/// deterministic KeyGen → Encaps → tamper → Decaps pipeline.
type KemSeeds = ([u8; 32], [u8; 32], [u8; 32]);

/// The full deterministic pipeline on one backend, as comparable bytes:
/// `(ek, dk, ct, shared, decapsed, rejection)`.
#[allow(clippy::type_complexity)]
fn pipeline(
    backend: &mut dyn PermutationBackend,
    params: KyberParams,
    seeds: &KemSeeds,
    tamper_index: usize,
) -> (Vec<u8>, Vec<u8>, Vec<u8>, [u8; 32], [u8; 32], [u8; 32]) {
    let (d, z, m) = seeds;
    let (ek, dk) = ml_kem_keygen(params, d, z, &mut *backend);
    let (ct, shared) = ml_kem_encaps(params, &ek, m, &mut *backend).expect("own key is valid");
    let decapsed = ml_kem_decaps(params, &dk, &ct, &mut *backend).expect("own ct is valid");
    let mut tampered = ct.clone();
    let flip = tamper_index % tampered.len();
    tampered[flip] ^= 0x01;
    let rejection =
        ml_kem_decaps(params, &dk, &tampered, &mut *backend).expect("tampered ct never errors");
    (ek, dk, ct, shared, decapsed, rejection)
}

/// Diffs the pipeline between `backend` and the scalar reference.
/// Returns the first diverging stage name, if any.
fn kem_mismatch(
    backend: &mut dyn PermutationBackend,
    params: KyberParams,
    seeds: &KemSeeds,
    tamper_index: usize,
) -> Option<&'static str> {
    let got = pipeline(backend, params, seeds, tamper_index);
    let expected = pipeline(
        &mut krv_sha3::ReferenceBackend::new(),
        params,
        seeds,
        tamper_index,
    );
    if got.0 != expected.0 {
        return Some("ek");
    }
    if got.1 != expected.1 {
        return Some("dk");
    }
    if got.2 != expected.2 {
        return Some("ct");
    }
    if got.3 != expected.3 {
        return Some("shared");
    }
    if got.4 != expected.4 {
        return Some("decapsed");
    }
    if got.5 != expected.5 {
        return Some("rejection");
    }
    None
}

/// Fuzzes one backend's ML-KEM pipeline against the reference for
/// `cases` cases. Every case also self-checks the FO invariants on the
/// backend under test (decaps recovers the secret; the tampered
/// ciphertext's secret differs and matches `J(z ‖ ct′)` recomputed on
/// the reference). Failing seed triples shrink by zeroing bytes.
pub fn fuzz_kem_backend(
    backend: &mut dyn PermutationBackend,
    label: &str,
    cases: usize,
    seed: u64,
) -> crate::diff::FuzzReport {
    let mut mismatches = Vec::new();
    for case in 0..cases {
        let case_seed = seed ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut rng = Rng::new(case_seed);
        let params = *rng.pick(&KyberParams::ALL);
        let seeds: KemSeeds = (random32(&mut rng), random32(&mut rng), random32(&mut rng));
        let tamper_index = rng.below(params.ct_len());

        // Cross-backend differential.
        if kem_mismatch(backend, params, &seeds, tamper_index).is_some() {
            let minimal = shrink(seeds, shrink_seeds, |candidate| {
                kem_mismatch(backend, params, candidate, tamper_index).is_some()
            });
            let stage = kem_mismatch(backend, params, &minimal, tamper_index).unwrap_or("ek");
            mismatches.push(CaseReport::new(
                format!("kem-diff/{label}"),
                case_seed,
                format!(
                    "{}: {stage} diverged from reference; minimized seeds d={} z={} m={}",
                    params.label(),
                    hex(&minimal.0),
                    hex(&minimal.1),
                    hex(&minimal.2)
                ),
            ));
            continue;
        }

        // FO-transform invariants on the backend under test.
        let (_, _, ct, shared, decapsed, rejection) =
            pipeline(backend, params, &seeds, tamper_index);
        if decapsed != shared {
            mismatches.push(CaseReport::new(
                format!("kem-diff/{label}"),
                case_seed,
                format!("{}: decaps lost the shared secret", params.label()),
            ));
        }
        if rejection == shared {
            mismatches.push(CaseReport::new(
                format!("kem-diff/{label}"),
                case_seed,
                format!("{}: tampered ct yielded the real secret", params.label()),
            ));
        }
        let mut j = Shake256::new();
        j.update(&seeds.1);
        let mut tampered = ct;
        tampered[tamper_index % params.ct_len()] ^= 0x01;
        j.update(&tampered);
        if j.squeeze(32) != rejection {
            mismatches.push(CaseReport::new(
                format!("kem-diff/{label}"),
                case_seed,
                format!("{}: rejection secret is not J(z ‖ ct′)", params.label()),
            ));
        }
    }
    crate::diff::FuzzReport {
        backend: format!("kem/{label}"),
        cases,
        mismatches,
    }
}

/// Candidate shrinks for a failing seed triple: zero the first nonzero
/// byte of each seed (strictly-simpler inputs, so the descent ends).
fn shrink_seeds(current: &KemSeeds) -> Vec<KemSeeds> {
    let mut candidates = Vec::new();
    for part in 0..3 {
        let bytes = match part {
            0 => &current.0,
            1 => &current.1,
            _ => &current.2,
        };
        if let Some(pos) = bytes.iter().position(|&b| b != 0) {
            let mut next = *current;
            match part {
                0 => next.0[pos] = 0,
                1 => next.1[pos] = 0,
                _ => next.2[pos] = 0,
            }
            candidates.push(next);
        }
    }
    candidates
}

fn random32(rng: &mut Rng) -> [u8; 32] {
    let bytes = rng.bytes(32);
    let mut out = [0u8; 32];
    out.copy_from_slice(&bytes);
    out
}

/// Runs the ML-KEM differential campaign over the conformance roster,
/// splitting `total_cases` evenly (the reference is the oracle and is
/// skipped).
pub fn run_kem_fuzz(total_cases: usize, seed: u64) -> Vec<crate::diff::FuzzReport> {
    let roster: Vec<BackendKind> = BackendKind::conformance_roster()
        .into_iter()
        .filter(|kind| *kind != BackendKind::Reference)
        .collect();
    let per_backend = total_cases.div_ceil(roster.len()).max(1);
    roster
        .iter()
        .enumerate()
        .map(|(index, kind)| {
            let mut backend = kind.instantiate(backend_states(kind));
            fuzz_kem_backend(
                backend.as_mut(),
                &kind.label(),
                per_backend,
                seed ^ ((index as u64) << 48),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kat::Tier;

    #[test]
    fn vectors_cover_all_three_sets_twice() {
        assert_eq!(ML_KEM_VECTORS.len(), 6);
        for params in KyberParams::ALL {
            let count = ML_KEM_VECTORS
                .iter()
                .filter(|v| v.set == params.label())
                .count();
            assert_eq!(count, 2, "{}", params.label());
        }
        for vector in ML_KEM_VECTORS {
            let params = params_for(vector);
            assert_eq!(vector.ek_hex.len(), 2 * params.ek_len(), "{}", vector.set);
            assert_eq!(vector.dk_hex.len(), 2 * params.dk_len(), "{}", vector.set);
            assert_eq!(vector.ct_hex.len(), 2 * params.ct_len(), "{}", vector.set);
        }
    }

    #[test]
    fn reference_backend_passes_kem_vectors() {
        // The workspace implementation against the independent Python
        // oracle: full vectors, all three parameter sets.
        let outcome = run_kem_suite(&BackendKind::Reference, Tier::Smoke);
        assert_eq!(outcome.cases, 4 * ML_KEM_VECTORS.len());
        assert!(outcome.passed(), "{:#?}", outcome.failures);
    }

    #[test]
    fn service_lane_passes_kem_vectors_under_the_mirror() {
        let outcome = run_service_kem_suite(Tier::Short);
        assert_eq!(outcome.backend, KEM_SERVICE_LABEL);
        assert_eq!(outcome.algorithm, KEM_ALGORITHM);
        assert_eq!(outcome.cases, 4 * select(Tier::Short).len());
        assert!(outcome.passed(), "{:#?}", outcome.failures);
    }

    #[test]
    fn reference_vs_reference_fuzz_is_clean() {
        let mut backend = krv_sha3::ReferenceBackend::new();
        let report = fuzz_kem_backend(&mut backend, "reference", 3, 0x5EED_C0DE);
        assert!(report.passed(), "{:?}", report.mismatches);
    }
}
