//! Compiled-tier differential oracle: every random program family runs
//! through *three* execution paths of the same simulator — the compiled
//! tier ([`Processor::set_compiled`]), the fused macro-op interpreter,
//! and the per-instruction stepper — and all three must agree on the
//! full machine state: halt/trap outcome, cycle count, retired
//! counters, PC, every scalar and vector register, and all of data
//! memory.
//!
//! The compiled tier lowers straight-line regions to specialized native
//! transfer functions and overlays fused idioms on the Keccak θ and χ
//! sequences (DESIGN.md §16); its timing-exactness argument leans on
//! trap-time prefix retirement and budget-limited early exits. This
//! layer re-runs the fast-path program families (shared with
//! [`crate::fastpath`], including the mid-block-trap and
//! tight-cycle-budget families) through the third path, and adds two
//! families of its own that the random generators cannot produce: the
//! verbatim θ/χ idiom sequences of the real kernels — sometimes
//! perturbed so near-miss sequences keep taking the unfused path — and
//! the same sequences under budgets that expire inside an idiom span.
//!
//! [`Processor::set_compiled`]: krv_vproc::Processor::set_compiled

use crate::fastpath::{
    compare_machines, run_case, ProgramCase, ProgramGen, MAX_CYCLES, PROGRAM_FAMILIES, STAGE_BYTES,
};
use krv_testkit::{CaseReport, Rng};

/// The outcome of one compiled-tier scenario.
#[derive(Debug, Clone)]
pub struct CompiledTierOutcome {
    /// Program-shape scenario under test.
    pub scenario: &'static str,
    /// Random cases executed.
    pub cases: usize,
    /// Divergences between the compiled, fused and stepped paths.
    pub failures: Vec<CaseReport>,
}

impl CompiledTierOutcome {
    /// Whether all three paths agreed on every case.
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }
}

/// The idiom-heavy families only this layer runs (the shared families
/// come from [`crate::fastpath::PROGRAM_FAMILIES`]).
const IDIOM_FAMILIES: [(&str, ProgramGen); 2] = [
    ("keccak theta/chi idiom blocks (m1+m8)", gen_keccak_idioms),
    ("budget expiring inside idiom blocks", gen_idiom_budget),
];

/// Runs every scenario — the six shared program families plus the two
/// idiom families — for `cases_per_scenario` random programs each.
/// Seeds are split per (scenario, case), offset away from the other
/// layers' splits, so any failure reproduces in isolation.
pub fn run_compiledtier(cases_per_scenario: usize, seed: u64) -> Vec<CompiledTierOutcome> {
    PROGRAM_FAMILIES
        .iter()
        .chain(IDIOM_FAMILIES.iter())
        .enumerate()
        .map(|(index, (scenario, generate))| {
            let mut failures = Vec::new();
            for case in 0..cases_per_scenario {
                let case_seed = seed
                    ^ ((0x40 + index as u64) << 48)
                    ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                if let Err(detail) = diff3(&generate(&mut Rng::new(case_seed))) {
                    failures.push(CaseReport::new(
                        format!("compiledtier/{scenario}"),
                        case_seed,
                        detail,
                    ));
                }
            }
            CompiledTierOutcome {
                scenario,
                cases: cases_per_scenario,
                failures,
            }
        })
        .collect()
}

/// Runs `case` through the compiled, fused and stepped paths and
/// reports the first observable divergence (the stepped path is the
/// reference for both comparisons).
fn diff3(case: &ProgramCase) -> Result<(), String> {
    let (compiled, compiled_result) = run_case(case, |p| p.set_compiled(true))?;
    let (fused, fused_result) = run_case(case, |_| {})?;
    let (stepped, stepped_result) = run_case(case, |p| p.set_fusion(false))?;
    if compiled_result != stepped_result {
        return Err(format!(
            "outcome diverged: compiled {compiled_result:?}, reference {stepped_result:?}"
        ));
    }
    if fused_result != stepped_result {
        return Err(format!(
            "outcome diverged: fused {fused_result:?}, reference {stepped_result:?}"
        ));
    }
    compare_machines("compiled", &compiled, &stepped)?;
    compare_machines("fused", &fused, &stepped)
}

// ---------------------------------------------------------------------
// Idiom-sequence generators.
// ---------------------------------------------------------------------

/// Emits the θ and χ sequences of the real E64/LMUL kernels over random
/// data: five m1 plane loads, the 13-instruction θ idiom at `vl = n1`,
/// then an m8 reconfiguration and the 5-instruction χ idiom at
/// `vl = n8`. With probability ~1/4 the sequence is perturbed — slide
/// offsets, the rotate amount, or an op inserted mid-idiom — so the
/// fuse-time matcher's rejects are exercised alongside its accepts.
fn idiom_source(rng: &mut Rng) -> String {
    let n1 = if rng.below(4) == 0 { 5 } else { 10 };
    let n8 = [25, 50, 75][rng.below(3)];
    let perturb = rng.below(4) == 0;
    let (up_off, down_off, rot_amt) = if perturb {
        (rng.below(5), rng.below(5), rng.below(32))
    } else {
        (1, 1, 1)
    };
    let (chi_off1, chi_off2) = if perturb {
        (rng.below(5), rng.below(5))
    } else {
        (1, 2)
    };
    let insert_break = perturb && rng.below(2) == 0;

    let mut source = String::new();
    source.push_str(&format!("li s2, -1\nli t0, {n1}\nli t1, {n8}\n"));
    for y in 0..5 {
        source.push_str(&format!("li a{y}, {}\n", 96 * y));
    }
    source.push_str("li a5, 512\nli a6, 1200\n");
    source.push_str("vsetvli x0, t0, e64, m1, tu, mu\n");
    for y in 0..5 {
        source.push_str(&format!("vle64.v v{y}, (a{y})\n"));
    }
    // θ: column parities, D = C<<<pos ^ rot(C>>>pos), five plane XORs.
    source.push_str(
        "vxor.vv v5, v3, v4\n\
         vxor.vv v6, v1, v2\n\
         vxor.vv v7, v0, v6\n\
         vxor.vv v5, v5, v7\n",
    );
    source.push_str(&format!(
        "vslideupm.vi v6, v5, {up_off}\n\
         vslidedownm.vi v7, v5, {down_off}\n\
         vrotup.vi v7, v7, {rot_amt}\n"
    ));
    if insert_break {
        // A stray op mid-idiom: still a valid program, never a match.
        source.push_str("vor.vv v6, v6, v6\n");
    }
    source.push_str(
        "vxor.vv v5, v6, v7\n\
         vxor.vv v0, v0, v5\n\
         vxor.vv v1, v1, v5\n\
         vxor.vv v2, v2, v5\n\
         vxor.vv v3, v3, v5\n\
         vxor.vv v4, v4, v5\n",
    );
    // χ on a freshly loaded m8 group: ¬A[x+1] & A[x+2] ^ A[x].
    source.push_str("vsetvli x0, t1, e64, m8, tu, mu\nvle64.v v8, (a5)\n");
    source.push_str(&format!(
        "vslidedownm.vi v16, v8, {chi_off1}\n\
         vxor.vx v16, v16, s2\n\
         vslidedownm.vi v24, v8, {chi_off2}\n\
         vand.vv v16, v16, v24\n\
         vxor.vv v0, v8, v16\n"
    ));
    source.push_str("vse64.v v0, (a6)\necall\n");
    source
}

fn gen_keccak_idioms(rng: &mut Rng) -> ProgramCase {
    let image = rng.bytes(STAGE_BYTES);
    ProgramCase {
        elenum: 10,
        source: idiom_source(rng),
        image,
        max_cycles: MAX_CYCLES,
    }
}

fn gen_idiom_budget(rng: &mut Rng) -> ProgramCase {
    let image = rng.bytes(STAGE_BYTES);
    let source = idiom_source(rng);
    // Budgets sized to the program's few-hundred-cycle cost, so the run
    // regularly stops inside a compiled block — often inside a fused
    // span, forcing the member-op prefix fallback.
    let budget = 1 + rng.below(400) as u64;
    ProgramCase {
        elenum: 10,
        source,
        image,
        max_cycles: budget,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_scenario_passes_a_few_cases() {
        for outcome in run_compiledtier(3, 0xC0DE_0000) {
            assert!(
                outcome.passed(),
                "{}: {:?}",
                outcome.scenario,
                outcome.failures
            );
            assert_eq!(outcome.cases, 3);
        }
    }

    #[test]
    fn idiom_programs_assemble_for_many_seeds() {
        for seed in 0..24 {
            let case = gen_keccak_idioms(&mut Rng::new(seed * 0x9A3F + 5));
            krv_asm::assemble(&case.source).unwrap_or_else(|e| {
                panic!(
                    "seed {seed}: assembler rejected:\n{e}\n---\n{}",
                    case.source
                )
            });
        }
    }

    #[test]
    fn scenario_count_covers_shared_and_idiom_families() {
        let outcomes = run_compiledtier(1, 1);
        assert_eq!(
            outcomes.len(),
            PROGRAM_FAMILIES.len() + IDIOM_FAMILIES.len()
        );
    }
}
