//! The pass matrix: backends as rows, FIPS 202 functions as columns,
//! rendered as fixed-width text for the `conformance` binary and the
//! experiment log.

use crate::compiledtier::CompiledTierOutcome;
use crate::diff::FuzzReport;
use crate::fastpath::FastpathOutcome;
use crate::kat::KatOutcome;
use crate::oracle::OracleOutcome;
use krv_testkit::CaseReport;

/// A backend × algorithm grid of KAT outcomes.
#[derive(Debug, Clone, Default)]
pub struct PassMatrix {
    /// Row order (backend labels, first-seen order).
    rows: Vec<String>,
    /// Column order (algorithm names, first-seen order).
    columns: Vec<&'static str>,
    /// Cells in insertion order.
    cells: Vec<KatOutcome>,
}

impl PassMatrix {
    /// An empty matrix.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one suite outcome.
    pub fn record(&mut self, outcome: KatOutcome) {
        if !self.rows.contains(&outcome.backend) {
            self.rows.push(outcome.backend.clone());
        }
        if !self.columns.contains(&outcome.algorithm) {
            self.columns.push(outcome.algorithm);
        }
        self.cells.push(outcome);
    }

    /// Whether every recorded cell passed.
    pub fn passed(&self) -> bool {
        self.cells.iter().all(KatOutcome::passed)
    }

    /// Total vectors checked across all cells.
    pub fn total_cases(&self) -> usize {
        self.cells.iter().map(|c| c.cases).sum()
    }

    /// Every failure across all cells, flattened.
    pub fn failures(&self) -> Vec<&CaseReport> {
        self.cells.iter().flat_map(|c| c.failures.iter()).collect()
    }

    /// The cell for (backend, algorithm), if recorded.
    fn cell(&self, backend: &str, algorithm: &str) -> Option<&KatOutcome> {
        self.cells
            .iter()
            .find(|c| c.backend == backend && c.algorithm == algorithm)
    }

    /// Renders the grid: one row per backend, `pass`/`FAIL` (with the
    /// case count) per algorithm.
    pub fn render(&self) -> String {
        let label_width = self
            .rows
            .iter()
            .map(String::len)
            .max()
            .unwrap_or(0)
            .max("backend".len());
        let col_width = self
            .columns
            .iter()
            .map(|c| c.len())
            .max()
            .unwrap_or(0)
            .max("FAIL(999)".len());
        let mut out = String::new();
        out.push_str(&format!("{:<label_width$}", "backend"));
        for column in &self.columns {
            out.push_str(&format!("  {column:>col_width$}"));
        }
        out.push('\n');
        for row in &self.rows {
            out.push_str(&format!("{row:<label_width$}"));
            for column in &self.columns {
                let text = match self.cell(row, column) {
                    None => "-".to_string(),
                    Some(cell) if cell.passed() => format!("pass({})", cell.cases),
                    Some(cell) => format!("FAIL({})", cell.failures.len()),
                };
                out.push_str(&format!("  {text:>col_width$}"));
            }
            out.push('\n');
        }
        out
    }
}

/// Renders the differential-fuzz summary table.
pub fn render_fuzz(reports: &[FuzzReport]) -> String {
    let width = reports
        .iter()
        .map(|r| r.backend.len())
        .max()
        .unwrap_or(0)
        .max("backend".len());
    let mut out = format!("{:<width$}  {:>7}  result\n", "backend", "cases");
    for report in reports {
        let result = if report.passed() {
            "pass".to_string()
        } else {
            format!("FAIL ({} mismatches)", report.mismatches.len())
        };
        out.push_str(&format!(
            "{:<width$}  {:>7}  {result}\n",
            report.backend, report.cases
        ));
    }
    out
}

/// Renders the instruction-oracle summary table (one row per
/// instruction × execution tier).
pub fn render_oracle(outcomes: &[OracleOutcome]) -> String {
    let width = outcomes
        .iter()
        .map(|o| o.op.len())
        .max()
        .unwrap_or(0)
        .max("instruction".len());
    let tier_width = outcomes
        .iter()
        .map(|o| o.tier.len())
        .max()
        .unwrap_or(0)
        .max("tier".len());
    let mut out = format!(
        "{:<width$}  {:<tier_width$}  {:>7}  result\n",
        "instruction", "tier", "cases"
    );
    for outcome in outcomes {
        let result = if outcome.passed() {
            "pass".to_string()
        } else {
            format!("FAIL ({} divergences)", outcome.failures.len())
        };
        out.push_str(&format!(
            "{:<width$}  {:<tier_width$}  {:>7}  {result}\n",
            outcome.op, outcome.tier, outcome.cases
        ));
    }
    out
}

/// Renders the fast-path differential summary table.
pub fn render_fastpath(outcomes: &[FastpathOutcome]) -> String {
    let width = outcomes
        .iter()
        .map(|o| o.scenario.len())
        .max()
        .unwrap_or(0)
        .max("scenario".len());
    let mut out = format!("{:<width$}  {:>7}  result\n", "scenario", "cases");
    for outcome in outcomes {
        let result = if outcome.passed() {
            "pass".to_string()
        } else {
            format!("FAIL ({} divergences)", outcome.failures.len())
        };
        out.push_str(&format!(
            "{:<width$}  {:>7}  {result}\n",
            outcome.scenario, outcome.cases
        ));
    }
    out
}

/// Renders the compiled-tier differential summary table.
pub fn render_compiledtier(outcomes: &[CompiledTierOutcome]) -> String {
    let width = outcomes
        .iter()
        .map(|o| o.scenario.len())
        .max()
        .unwrap_or(0)
        .max("scenario".len());
    let mut out = format!("{:<width$}  {:>7}  result\n", "scenario", "cases");
    for outcome in outcomes {
        let result = if outcome.passed() {
            "pass".to_string()
        } else {
            format!("FAIL ({} divergences)", outcome.failures.len())
        };
        out.push_str(&format!(
            "{:<width$}  {:>7}  {result}\n",
            outcome.scenario, outcome.cases
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(backend: &str, algorithm: &'static str, failures: usize) -> KatOutcome {
        KatOutcome {
            backend: backend.to_string(),
            algorithm,
            cases: 10,
            failures: (0..failures)
                .map(|i| CaseReport::new("t", i as u64, "boom"))
                .collect(),
        }
    }

    #[test]
    fn matrix_renders_rows_and_columns_in_order() {
        let mut matrix = PassMatrix::new();
        matrix.record(outcome("reference", "SHA3-256", 0));
        matrix.record(outcome("engine/e64m8", "SHA3-256", 0));
        matrix.record(outcome("reference", "SHAKE128", 0));
        let text = matrix.render();
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[0].contains("SHA3-256") && lines[0].contains("SHAKE128"));
        assert!(lines[1].starts_with("reference"));
        assert!(lines[2].starts_with("engine/e64m8"));
        assert!(lines[1].contains("pass(10)"));
        assert!(lines[2].contains('-'), "missing cell renders as dash");
        assert!(matrix.passed());
        assert_eq!(matrix.total_cases(), 30);
    }

    #[test]
    fn failures_flip_the_matrix_and_render_as_fail() {
        let mut matrix = PassMatrix::new();
        matrix.record(outcome("pool/e64m8x2", "SHA3-512", 3));
        assert!(!matrix.passed());
        assert_eq!(matrix.failures().len(), 3);
        assert!(matrix.render().contains("FAIL(3)"));
    }

    #[test]
    fn fuzz_and_oracle_tables_render() {
        let fuzz = vec![FuzzReport {
            backend: "engine/e64m1".to_string(),
            cases: 100,
            mismatches: Vec::new(),
        }];
        assert!(render_fuzz(&fuzz).contains("pass"));
        let oracle = vec![OracleOutcome {
            op: "vpi.vi (all)",
            tier: "compiled",
            cases: 5,
            failures: vec![CaseReport::new("oracle", 1, "bad lane")],
        }];
        assert!(render_oracle(&oracle).contains("FAIL (1 divergences)"));
        let fastpath = vec![FastpathOutcome {
            scenario: "scalar loop + memory",
            cases: 8,
            failures: Vec::new(),
        }];
        let text = render_fastpath(&fastpath);
        assert!(text.contains("scalar loop + memory") && text.contains("pass"));
        let compiled = vec![CompiledTierOutcome {
            scenario: "keccak theta/chi idiom blocks (m1+m8)",
            cases: 8,
            failures: Vec::new(),
        }];
        let text = render_compiledtier(&compiled);
        assert!(text.contains("idiom blocks") && text.contains("pass"));
    }
}
