//! SP 800-185 known-answer tests: cSHAKE, KMAC, TupleHash,
//! ParallelHash and the KRV tree-hash over every backend tier.
//!
//! Anchoring is two-layered: one official NIST SP 800-185 sample per
//! family pins the construction to external ground truth, and a set of
//! deterministic pattern-message vectors — generated once from the
//! scalar reference implementation and embedded as hex — pins every
//! other backend (and every future change) to that anchored reference.
//!
//! Each flat vector is checked through two paths per backend: the
//! incremental sponge path absorbing the SP 800-185 framing exactly as
//! a streamed wire session would (prefix, entry framing, output-length
//! suffix), and the scheduled [`hash_batch`] path over the same framed
//! message. Tree vectors run [`TreeMode::digest`], whose leaves ride
//! `hash_batch` on the backend under test.

use crate::kat::{KatMessage, KatOutcome};
use krv_core::BackendKind;
use krv_sha3::sp800_185::{
    cshake_params, cshake_stream_prefix, kmac_stream_prefix, output_length_suffix,
    tuple_entry_prefix,
};
use krv_sha3::tree::TreeMode;
use krv_sha3::{hash_batch, hex, BatchRequest, PermutationBackend, Sponge, SpongeParams};
use krv_testkit::CaseReport;

/// The SP 800-185 derived functions plus the KRV tree-hash, as data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DerivedAlgorithm {
    /// cSHAKE128 (§3).
    CShake128,
    /// cSHAKE256 (§3).
    CShake256,
    /// KMAC128 (§4).
    Kmac128,
    /// KMAC256 (§4).
    Kmac256,
    /// TupleHash128 (§5).
    TupleHash128,
    /// TupleHash256 (§5).
    TupleHash256,
    /// ParallelHash128 (§6).
    ParallelHash128,
    /// ParallelHash256 (§6).
    ParallelHash256,
    /// The KRV tree-hash (ParallelHash-shaped, B = 4096, 32-byte
    /// SHAKE256 leaves).
    KrvTree256,
}

impl DerivedAlgorithm {
    /// Every derived function, in SP 800-185 presentation order.
    pub const ALL: [DerivedAlgorithm; 9] = [
        DerivedAlgorithm::CShake128,
        DerivedAlgorithm::CShake256,
        DerivedAlgorithm::Kmac128,
        DerivedAlgorithm::Kmac256,
        DerivedAlgorithm::TupleHash128,
        DerivedAlgorithm::TupleHash256,
        DerivedAlgorithm::ParallelHash128,
        DerivedAlgorithm::ParallelHash256,
        DerivedAlgorithm::KrvTree256,
    ];

    /// The function's display name (matching the wire protocol's).
    pub const fn name(self) -> &'static str {
        match self {
            DerivedAlgorithm::CShake128 => "cSHAKE128",
            DerivedAlgorithm::CShake256 => "cSHAKE256",
            DerivedAlgorithm::Kmac128 => "KMAC128",
            DerivedAlgorithm::Kmac256 => "KMAC256",
            DerivedAlgorithm::TupleHash128 => "TupleHash128",
            DerivedAlgorithm::TupleHash256 => "TupleHash256",
            DerivedAlgorithm::ParallelHash128 => "ParallelHash128",
            DerivedAlgorithm::ParallelHash256 => "ParallelHash256",
            DerivedAlgorithm::KrvTree256 => "KRV-TreeHash256",
        }
    }

    /// The security level in bits.
    pub const fn security_bits(self) -> usize {
        match self {
            DerivedAlgorithm::CShake128
            | DerivedAlgorithm::Kmac128
            | DerivedAlgorithm::TupleHash128
            | DerivedAlgorithm::ParallelHash128 => 128,
            _ => 256,
        }
    }

    /// Whether the function is served as a chunked tree.
    pub const fn is_tree(self) -> bool {
        matches!(
            self,
            DerivedAlgorithm::ParallelHash128
                | DerivedAlgorithm::ParallelHash256
                | DerivedAlgorithm::KrvTree256
        )
    }
}

/// One SP 800-185 known-answer vector. Unused fields are empty/zero.
#[derive(Debug, Clone, Copy)]
pub struct DerivedVector {
    /// Which function the vector targets.
    pub algorithm: DerivedAlgorithm,
    /// The KMAC key `K`.
    pub key: &'static [u8],
    /// The cSHAKE function name `N`.
    pub name: &'static [u8],
    /// The customization string `S`.
    pub customization: &'static [u8],
    /// The ParallelHash block size `B` (trees only; the KRV tree-hash
    /// fixes it at 4096).
    pub block_size: usize,
    /// The input message.
    pub message: KatMessage,
    /// TupleHash entry lengths (must sum to the message length); the
    /// message is split into entries at these boundaries.
    pub tuple_splits: &'static [usize],
    /// Output bytes to squeeze.
    pub output_len: usize,
    /// Expected output, lowercase hex.
    pub digest_hex: &'static str,
}

/// NIST KMAC sample key: the bytes `0x40..=0x5F`.
const NIST_KMAC_KEY: [u8; 32] = [
    0x40, 0x41, 0x42, 0x43, 0x44, 0x45, 0x46, 0x47, 0x48, 0x49, 0x4A, 0x4B, 0x4C, 0x4D, 0x4E, 0x4F,
    0x50, 0x51, 0x52, 0x53, 0x54, 0x55, 0x56, 0x57, 0x58, 0x59, 0x5A, 0x5B, 0x5C, 0x5D, 0x5E, 0x5F,
];

/// NIST sample data `00 01 02 03`.
const NIST_SHORT_DATA: [u8; 4] = [0x00, 0x01, 0x02, 0x03];

/// NIST TupleHash sample tuple, concatenated (`000102`, `101112131415`).
const NIST_TUPLE_DATA: [u8; 9] = [0x00, 0x01, 0x02, 0x10, 0x11, 0x12, 0x13, 0x14, 0x15];

/// NIST ParallelHash sample message: `00–07, 10–17, 20–27`.
const NIST_PARALLEL_DATA: [u8; 24] = [
    0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x10, 0x11, 0x12, 0x13, 0x14, 0x15, 0x16, 0x17,
    0x20, 0x21, 0x22, 0x23, 0x24, 0x25, 0x26, 0x27,
];

const EMPTY: &[u8] = b"";

macro_rules! vector {
    ($alg:ident, $msg:expr, $len:expr, $hex:expr
     $(, key: $key:expr)? $(, name: $name:expr)? $(, custom: $custom:expr)?
     $(, block: $block:expr)? $(, splits: $splits:expr)?) => {{
        #[allow(unused_mut, unused_assignments)]
        {
            let mut key: &'static [u8] = EMPTY;
            let mut name: &'static [u8] = EMPTY;
            let mut customization: &'static [u8] = EMPTY;
            let mut block_size = 0usize;
            let mut tuple_splits: &'static [usize] = &[];
            $(key = $key;)?
            $(name = $name;)?
            $(customization = $custom;)?
            $(block_size = $block;)?
            $(tuple_splits = $splits;)?
            DerivedVector {
                algorithm: DerivedAlgorithm::$alg,
                key,
                name,
                customization,
                block_size,
                message: $msg,
                tuple_splits,
                output_len: $len,
                digest_hex: $hex,
            }
        }
    }};
}

/// The embedded SP 800-185 vector set: one official NIST sample per
/// family (`nist-sample` in the comment) plus reference-pinned pattern
/// vectors covering empty messages, rate boundaries, multi-block
/// messages and both security levels.
pub const VECTORS: &[DerivedVector] = &[
    // cSHAKE128 — NIST SP 800-185 sample #1.
    vector!(
        CShake128,
        KatMessage::Literal(&NIST_SHORT_DATA),
        32,
        "c1c36925b6409a04f1b504fcbca9d82b4017277cb5ed2b2065fc1d3814d5aaf5",
        custom: b"Email Signature"
    ),
    vector!(
        CShake128,
        KatMessage::Pattern(0),
        32,
        "7d9a384cde5d95cbf3cf093f322de5aa946337784fab91c290547aad9557cf93",
        name: b"KRV",
        custom: b"conformance"
    ),
    vector!(
        CShake128,
        KatMessage::Pattern(337),
        64,
        "6ea350760cef2f09eb79d0c5a4dd6c449cc175e6a8f3bd4377ff29193469df942246928b85294b07d0effa0e63e54e941d7b2859422d58627cf6793960b0122a",
        name: b"KRV",
        custom: b"conformance"
    ),
    // cSHAKE256.
    vector!(
        CShake256,
        KatMessage::Pattern(3),
        32,
        "a4c3c48bce3fa482c127b51e62ddf35a155253b8513acee0d9ae67651d18b988",
        name: b"KRV",
        custom: b"conformance"
    ),
    vector!(
        CShake256,
        KatMessage::Pattern(136),
        64,
        "8e442fdf58157778805b6ebd95890c070d9804ee18d4c3e2c6c72eff0402db16a696e0dd846c7e212d12164d4b27eccd2db845378c33b50c1728a2bb03f8edb8",
        name: b"KRV"
    ),
    vector!(
        CShake256,
        KatMessage::Pattern(500),
        32,
        "f6f569ba6ea46104956818e5536d27df268af67ec6d728cda49ec7e96738f4a9",
        custom: b"stream"
    ),
    // KMAC128 — NIST SP 800-185 sample #1.
    vector!(
        Kmac128,
        KatMessage::Literal(&NIST_SHORT_DATA),
        32,
        "e5780b0d3ea6f7d3a429c5706aa43a00fadbd7d49628839e3187243f456ee14e",
        key: &NIST_KMAC_KEY
    ),
    vector!(
        Kmac128,
        KatMessage::Pattern(200),
        32,
        "729c19b4922349534b2e0f76f0ab814eae7176fe6de3709e835d48713cb8d485",
        key: b"krv kmac key",
        custom: b"ctx"
    ),
    // KMAC256.
    vector!(
        Kmac256,
        KatMessage::Pattern(0),
        64,
        "cc508ff266ba554866adc16c7058d23a65cfeab0925665cac224a49d21e25a9d7e0fa66b180b94096aed093fa47c824c26faf13a302d74c586e9d22072453a72",
        key: b"krv kmac key"
    ),
    vector!(
        Kmac256,
        KatMessage::Pattern(337),
        32,
        "c25b5cda0f67c929b0c9c9b47f5b4ca349eb412ce48b8263f9bace9c0e01d611",
        key: b"another key 1234",
        custom: b"ctx"
    ),
    // TupleHash128 — NIST SP 800-185 sample #1.
    vector!(
        TupleHash128,
        KatMessage::Literal(&NIST_TUPLE_DATA),
        32,
        "c5d8786c1afb9b82111ab34b65b2c0048fa64e6d48e263264ce1707d3ffc8ed1",
        splits: &[3, 6]
    ),
    vector!(
        TupleHash128,
        KatMessage::Pattern(100),
        32,
        "af17fe96447b818b05013cc51865b341f000e3e568ecc35cf716e556f3a31431",
        custom: b"tuple",
        splits: &[0, 50, 50]
    ),
    // TupleHash256.
    vector!(
        TupleHash256,
        KatMessage::Pattern(64),
        64,
        "f7bbc9fd927444a2195862475da578d8516a3f51a038cc1860c2cd81792ef5e524786743a7d1b47ad09e0867c2eee10adc7ebc0a64199d007266527900e2824f",
        splits: &[64]
    ),
    vector!(
        TupleHash256,
        KatMessage::Pattern(200),
        32,
        "c3f78626938039ef23ba6be797932d534b44cfd03830393b349738e16e7d3a55",
        custom: b"ctx",
        splits: &[1, 2, 197]
    ),
    // ParallelHash128 — NIST SP 800-185 sample #1.
    vector!(
        ParallelHash128,
        KatMessage::Literal(&NIST_PARALLEL_DATA),
        32,
        "ba8dc1d1d979331d3f813603c67f72609ab5e44b94a0b8f9af46514454a2b4f5",
        block: 8
    ),
    vector!(
        ParallelHash128,
        KatMessage::Pattern(1000),
        32,
        "b2dbedc3ccc6bd709b4075d605bb7701abe5b0eea357bdf98a393b12750e6232",
        custom: b"par",
        block: 64
    ),
    // ParallelHash256.
    vector!(
        ParallelHash256,
        KatMessage::Pattern(0),
        64,
        "de133e3e881658ea15037a8ffb005193fc07611a1699a4a7c6e9c53d3972df0f638bc1a6bf539885198f272a08d22301daa19b4bbcb349dee45e934358c995ea",
        block: 128
    ),
    vector!(
        ParallelHash256,
        KatMessage::Pattern(5000),
        32,
        "bebb578a2c592e298e0db735faf3b5937dbf1dcd0ff3a846ec62283dcfdaeb12",
        custom: b"ctx",
        block: 512
    ),
    // KRV tree-hash (B fixed at 4096, 32-byte SHAKE256 leaves).
    vector!(
        KrvTree256,
        KatMessage::Pattern(0),
        32,
        "7c2755977ef7ed8aeb47655786cc5c30206360340454128cbabfd522d944efaf"
    ),
    vector!(
        KrvTree256,
        KatMessage::Pattern(4096),
        64,
        "951bb16e69ac2f20f3ee610fd8f0b088d68aa4e3fdcebd5fac090ccd8f96982dfd1a55e1345453094d6880778a27b8e2daed5a9fa7113c837bf804a6a2e13315",
        custom: b"tree"
    ),
    vector!(
        KrvTree256,
        KatMessage::Pattern(10000),
        32,
        "c1f5377d21d65858f2d76ef7251c4577ac910fd68791434bc40e7943518760cd"
    ),
];

/// The sponge parameters a flat vector's framed message hashes under.
fn flat_params(vector: &DerivedVector) -> SpongeParams {
    let bits = vector.algorithm.security_bits();
    match vector.algorithm {
        DerivedAlgorithm::CShake128 | DerivedAlgorithm::CShake256 => {
            cshake_params(bits, vector.name, vector.customization)
        }
        DerivedAlgorithm::Kmac128 | DerivedAlgorithm::Kmac256 => {
            cshake_params(bits, b"KMAC", vector.customization)
        }
        DerivedAlgorithm::TupleHash128 | DerivedAlgorithm::TupleHash256 => {
            cshake_params(bits, b"TupleHash", vector.customization)
        }
        _ => unreachable!("tree vectors do not hash flat"),
    }
}

/// The fully framed flat message: SP 800-185 prefix, the (entry-framed)
/// payload, and the output-length suffix — byte-identical to what a
/// streamed wire session absorbs.
fn flat_message(vector: &DerivedVector) -> Vec<u8> {
    let bits = vector.algorithm.security_bits();
    let payload = vector.message.bytes();
    let mut message = match vector.algorithm {
        DerivedAlgorithm::CShake128 | DerivedAlgorithm::CShake256 => {
            cshake_stream_prefix(bits, vector.name, vector.customization)
        }
        DerivedAlgorithm::Kmac128 | DerivedAlgorithm::Kmac256 => {
            kmac_stream_prefix(bits, vector.key, vector.customization)
        }
        DerivedAlgorithm::TupleHash128 | DerivedAlgorithm::TupleHash256 => {
            cshake_stream_prefix(bits, b"TupleHash", vector.customization)
        }
        _ => unreachable!("tree vectors do not hash flat"),
    };
    match vector.algorithm {
        DerivedAlgorithm::TupleHash128 | DerivedAlgorithm::TupleHash256 => {
            let mut at = 0;
            for &len in vector.tuple_splits {
                message.extend_from_slice(&tuple_entry_prefix(len));
                message.extend_from_slice(&payload[at..at + len]);
                at += len;
            }
            assert_eq!(at, payload.len(), "tuple splits must cover the message");
            message.extend_from_slice(&output_length_suffix(vector.output_len));
        }
        DerivedAlgorithm::Kmac128 | DerivedAlgorithm::Kmac256 => {
            message.extend_from_slice(&payload);
            message.extend_from_slice(&output_length_suffix(vector.output_len));
        }
        _ => message.extend_from_slice(&payload),
    }
    message
}

/// The tree mode a tree vector hashes under.
fn tree_mode(vector: &DerivedVector) -> TreeMode {
    match vector.algorithm {
        DerivedAlgorithm::ParallelHash128 | DerivedAlgorithm::ParallelHash256 => {
            TreeMode::parallel_hash(vector.algorithm.security_bits(), vector.block_size)
        }
        DerivedAlgorithm::KrvTree256 => TreeMode::krv_tree256(),
        _ => unreachable!("flat vectors have no tree mode"),
    }
}

/// Computes a vector on `backend`, through `path`:
/// `"digest"` is the incremental sponge (or [`TreeMode::digest`]),
/// `"batch"` the scheduled [`hash_batch`] over the framed message (for
/// trees the two coincide — the leaves already ride `hash_batch`).
fn compute(vector: &DerivedVector, backend: &mut dyn PermutationBackend, batch: bool) -> Vec<u8> {
    if vector.algorithm.is_tree() {
        return tree_mode(vector).digest(
            backend,
            &vector.message.bytes(),
            vector.customization,
            vector.output_len,
        );
    }
    let message = flat_message(vector);
    let params = flat_params(vector);
    if batch {
        hash_batch(
            params,
            backend,
            &[BatchRequest::new(&message, vector.output_len)],
        )
        .pop()
        .expect("one request, one output")
    } else {
        let mut sponge = Sponge::new(params, backend);
        sponge.absorb(&message);
        sponge.squeeze(vector.output_len)
    }
}

/// Runs every vector of one derived function on one backend.
pub fn run_derived_suite(kind: &BackendKind, algorithm: DerivedAlgorithm) -> KatOutcome {
    let mut backend = kind.instantiate(crate::kat::backend_states(kind));
    let mut failures = Vec::new();
    let mut cases = 0;
    for vector in VECTORS.iter().filter(|v| v.algorithm == algorithm) {
        let paths: &[bool] = if algorithm.is_tree() {
            &[false]
        } else {
            &[false, true]
        };
        for &batch in paths {
            let got = compute(vector, backend.as_mut(), batch);
            cases += 1;
            if hex(&got) != vector.digest_hex {
                failures.push(CaseReport::new(
                    format!(
                        "sp800/{}/{}",
                        algorithm.name(),
                        if batch { "batch" } else { "digest" }
                    ),
                    vector.message.len() as u64,
                    format!(
                        "message len {} → {} != expected {}",
                        vector.message.len(),
                        hex(&got),
                        vector.digest_hex
                    ),
                ));
            }
        }
    }
    KatOutcome {
        backend: kind.label(),
        algorithm: algorithm.name(),
        cases,
        failures,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use krv_sha3::sp800_185::{
        kmac128, kmac256, tuple_hash128, tuple_hash256, CShake128, CShake256,
    };
    use krv_sha3::tree::{krv_tree_hash256, parallel_hash128, parallel_hash256};
    use krv_sha3::ReferenceBackend;

    /// The scalar one-shot the vector set was generated from.
    fn oneshot(vector: &DerivedVector) -> Vec<u8> {
        let payload = vector.message.bytes();
        let entries: Vec<&[u8]> = {
            let mut at = 0;
            vector
                .tuple_splits
                .iter()
                .map(|&len| {
                    let entry = &payload[at..at + len];
                    at += len;
                    entry
                })
                .collect()
        };
        match vector.algorithm {
            DerivedAlgorithm::CShake128 => CShake128::digest(
                vector.name,
                vector.customization,
                &payload,
                vector.output_len,
            ),
            DerivedAlgorithm::CShake256 => CShake256::digest(
                vector.name,
                vector.customization,
                &payload,
                vector.output_len,
            ),
            DerivedAlgorithm::Kmac128 => kmac128(
                vector.key,
                &payload,
                vector.output_len,
                vector.customization,
            ),
            DerivedAlgorithm::Kmac256 => kmac256(
                vector.key,
                &payload,
                vector.output_len,
                vector.customization,
            ),
            DerivedAlgorithm::TupleHash128 => {
                tuple_hash128(&entries, vector.output_len, vector.customization)
            }
            DerivedAlgorithm::TupleHash256 => {
                tuple_hash256(&entries, vector.output_len, vector.customization)
            }
            DerivedAlgorithm::ParallelHash128 => parallel_hash128(
                &payload,
                vector.block_size,
                vector.output_len,
                vector.customization,
            ),
            DerivedAlgorithm::ParallelHash256 => parallel_hash256(
                &payload,
                vector.block_size,
                vector.output_len,
                vector.customization,
            ),
            DerivedAlgorithm::KrvTree256 => {
                krv_tree_hash256(&payload, vector.output_len, vector.customization)
            }
        }
    }

    #[test]
    fn embedded_hex_matches_the_reference_oneshots() {
        // Regenerate every expected digest from the scalar reference:
        // a mismatch means either the vector table or the reference
        // drifted. (The NIST samples anchor the reference itself.)
        for vector in VECTORS {
            assert_eq!(
                hex(&oneshot(vector)),
                vector.digest_hex,
                "{} vector, message len {}",
                vector.algorithm.name(),
                vector.message.len()
            );
        }
    }

    #[test]
    fn framed_flat_path_matches_the_oneshots() {
        // The streamed-framing identity: prefix ‖ framed payload ‖
        // suffix through a plain sponge equals the one-shot for every
        // flat vector.
        for vector in VECTORS.iter().filter(|v| !v.algorithm.is_tree()) {
            let mut backend = ReferenceBackend::new();
            let got = compute(vector, &mut backend, false);
            assert_eq!(
                got,
                oneshot(vector),
                "{} framed flat path",
                vector.algorithm.name()
            );
        }
    }

    #[test]
    fn every_algorithm_has_vectors_and_passes_on_the_reference() {
        for algorithm in DerivedAlgorithm::ALL {
            let outcome = run_derived_suite(&BackendKind::Reference, algorithm);
            assert!(outcome.cases >= 2, "{} has vectors", algorithm.name());
            assert!(
                outcome.passed(),
                "{}: {:?}",
                algorithm.name(),
                outcome.failures
            );
        }
    }

    #[test]
    #[ignore = "generator: prints reference digests for new vectors"]
    fn print_generated_hex() {
        for vector in VECTORS {
            println!(
                "{} len={} L={} → {}",
                vector.algorithm.name(),
                vector.message.len(),
                vector.output_len,
                hex(&oneshot(vector))
            );
        }
    }
}
