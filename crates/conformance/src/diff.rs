//! Differential fuzzing: random states, messages and batch shapes
//! cross-checked between every backend and the scalar reference, with
//! automatic input shrinking so a failure minimizes to a readable repro.
//!
//! Three case shapes are generated (weights chosen so most cases are
//! cheap single-permutation checks):
//!
//! * **permute** — a random state set through `permute_all`, compared
//!   lane-for-lane against [`keccak_f1600`]. Shrinks by dropping states
//!   and zeroing lanes.
//! * **digest** — a random message through the sponge digest path,
//!   compared against the reference backend. Shrinks by halving and
//!   truncating the message.
//! * **batch** — a random ragged request set through
//!   [`krv_sha3::hash_batch`], compared per-request against reference
//!   digests. Shrinks by dropping requests and halving messages.
//!
//! Because every backend is compared against the same reference, two
//! passing backends are transitively equal to each other — the roster is
//! pairwise-consistent whenever all reports come back clean.

use crate::kat::{digest_with, Algorithm};
use krv_core::BackendKind;
use krv_keccak::{keccak_f1600, KeccakState};
use krv_sha3::{hash_batch, hex, BatchRequest, PermutationBackend};
use krv_testkit::{shrink, CaseReport, Rng};

/// The result of fuzzing one backend against the reference.
#[derive(Debug, Clone)]
pub struct FuzzReport {
    /// Backend label.
    pub backend: String,
    /// Cases executed.
    pub cases: usize,
    /// Minimized mismatches (empty on a clean run).
    pub mismatches: Vec<CaseReport>,
}

impl FuzzReport {
    /// Whether the backend agreed with the reference on every case.
    pub fn passed(&self) -> bool {
        self.mismatches.is_empty()
    }
}

/// Derives the per-case seed from the campaign seed (SplitMix64-style
/// stream split, so cases are independent and reproducible).
fn case_seed(campaign: u64, case: usize) -> u64 {
    (campaign ^ (case as u64).wrapping_mul(0xA076_1D64_78BD_642F))
        .wrapping_add(0x2545_F491_4F6C_DD1D)
}

/// A random Keccak state with biased structure: mostly dense random
/// lanes, sometimes sparse (single-bit lanes shake out masking bugs).
fn random_state(rng: &mut Rng) -> KeccakState {
    let sparse = rng.below(4) == 0;
    let mut lanes = [0u64; 25];
    for lane in lanes.iter_mut() {
        *lane = if sparse {
            1u64 << rng.below(64)
        } else {
            rng.next_u64()
        };
    }
    KeccakState::from_lanes(lanes)
}

/// Fuzzes `backend` against the scalar reference for `cases` cases.
///
/// On a mismatch the failing input is shrunk to a local minimum before
/// being recorded, and fuzzing continues with the remaining cases.
pub fn fuzz_backend(
    backend: &mut dyn PermutationBackend,
    label: &str,
    cases: usize,
    seed: u64,
) -> FuzzReport {
    let mut mismatches = Vec::new();
    for case in 0..cases {
        let case_seed = case_seed(seed, case);
        let mut rng = Rng::new(case_seed);
        let mismatch = match rng.below(4) {
            0 | 1 => permute_case(backend, &mut rng),
            2 => digest_case(backend, &mut rng),
            _ => batch_case(backend, &mut rng),
        };
        if let Some(detail) = mismatch {
            mismatches.push(CaseReport::new(format!("diff/{label}"), case_seed, detail));
        }
    }
    FuzzReport {
        backend: label.to_string(),
        cases,
        mismatches,
    }
}

/// Runs the differential campaign over the whole conformance roster,
/// splitting `total_cases` evenly (the reference itself is skipped — it
/// is the oracle).
pub fn run_fuzz(total_cases: usize, seed: u64) -> Vec<FuzzReport> {
    let roster: Vec<BackendKind> = BackendKind::conformance_roster()
        .into_iter()
        .filter(|kind| *kind != BackendKind::Reference)
        .collect();
    let per_backend = total_cases.div_ceil(roster.len());
    roster
        .iter()
        .enumerate()
        .map(|(index, kind)| {
            let mut backend = kind.instantiate(crate::kat::backend_states(kind));
            fuzz_backend(
                backend.as_mut(),
                &kind.label(),
                per_backend,
                // Stagger the stream per backend so the roster does not
                // re-run identical inputs everywhere.
                seed ^ (index as u64) << 56,
            )
        })
        .collect()
}

/// Permutes the states on the backend and diffs against the reference.
/// Returns the mismatching (minimized) description, if any.
fn permute_mismatch(backend: &mut dyn PermutationBackend, states: &[KeccakState]) -> Option<usize> {
    let mut got = states.to_vec();
    backend.permute_all(&mut got);
    let mut expected = states.to_vec();
    for state in &mut expected {
        keccak_f1600(state);
    }
    got.iter().zip(&expected).position(|(g, e)| g != e)
}

fn permute_case(backend: &mut dyn PermutationBackend, rng: &mut Rng) -> Option<String> {
    let n = 1 + rng.below(6);
    let states: Vec<KeccakState> = (0..n).map(|_| random_state(rng)).collect();
    permute_mismatch(backend, &states)?;
    // Shrink: drop whole states, then zero individual lanes.
    let minimal = shrink(
        states,
        |current| {
            let mut candidates = Vec::new();
            for i in 0..current.len() {
                let mut dropped = current.clone();
                dropped.remove(i);
                if !dropped.is_empty() {
                    candidates.push(dropped);
                }
            }
            for (i, state) in current.iter().enumerate() {
                for lane in 0..25 {
                    if state.lanes()[lane] != 0 {
                        let mut zeroed = current.clone();
                        let mut lanes = zeroed[i].into_lanes();
                        lanes[lane] = 0;
                        zeroed[i] = KeccakState::from_lanes(lanes);
                        candidates.push(zeroed);
                    }
                }
            }
            candidates
        },
        |candidate| permute_mismatch(backend, candidate).is_some(),
    );
    let index = permute_mismatch(backend, &minimal).unwrap_or(0);
    let nonzero: Vec<String> = minimal[index]
        .lanes()
        .iter()
        .enumerate()
        .filter(|(_, lane)| **lane != 0)
        .map(|(i, lane)| format!("lane[{i}]={lane:#x}"))
        .collect();
    Some(format!(
        "permute: {n} states diverged; minimized {} states, first bad state #{index} {{{}}}",
        minimal.len(),
        nonzero.join(", ")
    ))
}

/// Diffs one digest computation between `backend` and the reference.
fn digest_mismatch(
    backend: &mut dyn PermutationBackend,
    algorithm: Algorithm,
    message: &[u8],
    output_len: usize,
) -> Option<(Vec<u8>, Vec<u8>)> {
    let got = digest_with(backend, algorithm.params(), message, output_len);
    let expected = digest_with(
        &mut krv_sha3::ReferenceBackend::new(),
        algorithm.params(),
        message,
        output_len,
    );
    (got != expected).then_some((got, expected))
}

fn digest_case(backend: &mut dyn PermutationBackend, rng: &mut Rng) -> Option<String> {
    let algorithm = *rng.pick(&Algorithm::ALL);
    let len = rng.below(600);
    let message = rng.bytes(len);
    let output_len = algorithm.digest_len().unwrap_or_else(|| 1 + rng.below(200));
    digest_mismatch(backend, algorithm, &message, output_len)?;
    // Shrink: halve, truncate by one, zero bytes front-to-back.
    let minimal = shrink(
        message,
        |current| {
            let mut candidates = Vec::new();
            if !current.is_empty() {
                candidates.push(current[..current.len() / 2].to_vec());
                candidates.push(current[..current.len() - 1].to_vec());
                if let Some(pos) = current.iter().position(|&b| b != 0) {
                    let mut zeroed = current.clone();
                    zeroed[pos] = 0;
                    candidates.push(zeroed);
                }
            }
            candidates
        },
        |candidate| digest_mismatch(backend, algorithm, candidate, output_len).is_some(),
    );
    let (got, expected) =
        digest_mismatch(backend, algorithm, &minimal, output_len).unwrap_or_default();
    Some(format!(
        "digest {}: message len {len} diverged; minimized to len {} ({}) → {} != {}",
        algorithm.name(),
        minimal.len(),
        preview(&minimal),
        preview_hex(&got),
        preview_hex(&expected),
    ))
}

/// Diffs one ragged batch between `backend` and per-message reference
/// digests. Returns the first mismatching request index.
fn batch_mismatch(
    backend: &mut dyn PermutationBackend,
    algorithm: Algorithm,
    jobs: &[(Vec<u8>, usize)],
) -> Option<usize> {
    let requests: Vec<BatchRequest<'_>> = jobs
        .iter()
        .map(|(message, output_len)| BatchRequest::new(message, *output_len))
        .collect();
    let outputs = hash_batch(algorithm.params(), &mut *backend, &requests);
    jobs.iter().zip(&outputs).position(|((message, len), out)| {
        *out != digest_with(
            &mut krv_sha3::ReferenceBackend::new(),
            algorithm.params(),
            message,
            *len,
        )
    })
}

fn batch_case(backend: &mut dyn PermutationBackend, rng: &mut Rng) -> Option<String> {
    let algorithm = *rng.pick(&Algorithm::ALL);
    let n = 1 + rng.below(5);
    let jobs: Vec<(Vec<u8>, usize)> = (0..n)
        .map(|_| {
            let len = rng.below(400);
            let output_len = algorithm.digest_len().unwrap_or_else(|| 1 + rng.below(150));
            (rng.bytes(len), output_len)
        })
        .collect();
    batch_mismatch(backend, algorithm, &jobs)?;
    // Shrink: drop requests, then halve the surviving messages.
    let minimal = shrink(
        jobs,
        |current| {
            let mut candidates = Vec::new();
            for i in 0..current.len() {
                if current.len() > 1 {
                    let mut dropped = current.clone();
                    dropped.remove(i);
                    candidates.push(dropped);
                }
                if !current[i].0.is_empty() {
                    let mut halved = current.clone();
                    let keep = halved[i].0.len() / 2;
                    halved[i].0.truncate(keep);
                    candidates.push(halved);
                }
            }
            candidates
        },
        |candidate| batch_mismatch(backend, algorithm, candidate).is_some(),
    );
    let index = batch_mismatch(backend, algorithm, &minimal).unwrap_or(0);
    let shape: Vec<String> = minimal
        .iter()
        .map(|(message, len)| format!("{}→{len}", message.len()))
        .collect();
    Some(format!(
        "batch {}: {n} requests diverged; minimized {} requests [{}], first bad #{index}",
        algorithm.name(),
        minimal.len(),
        shape.join(", ")
    ))
}

/// A short displayable prefix of a byte string.
fn preview(bytes: &[u8]) -> String {
    if bytes.len() <= 16 {
        hex(bytes)
    } else {
        format!("{}…", hex(&bytes[..16]))
    }
}

/// A short displayable prefix of a digest.
fn preview_hex(bytes: &[u8]) -> String {
    if bytes.is_empty() {
        "<empty>".to_string()
    } else {
        preview(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use krv_sha3::ReferenceBackend;

    #[test]
    fn reference_vs_reference_is_clean() {
        let mut backend = ReferenceBackend::new();
        let report = fuzz_backend(&mut backend, "reference", 40, 0xC0FFEE);
        assert_eq!(report.cases, 40);
        assert!(report.passed(), "{:?}", report.mismatches);
    }

    #[test]
    fn case_seeds_are_distinct_and_stable() {
        let a: Vec<u64> = (0..32).map(|i| case_seed(7, i)).collect();
        let b: Vec<u64> = (0..32).map(|i| case_seed(7, i)).collect();
        assert_eq!(a, b, "reproducible");
        let mut dedup = a.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), a.len(), "independent streams");
    }
}
