//! Known-answer tests: embedded NIST FIPS 202 vectors run against every
//! backend through both the one-shot digest path and the work-scheduled
//! batch path.
//!
//! The expected digests in [`crate::vectors`] come from an independent
//! SHA-3 implementation (OpenSSL, via the generator script
//! `gen_vectors.py`), so agreement here anchors the whole workspace —
//! reference permutation, sponge layer, vector kernels, session path,
//! engine pool — to an external oracle rather than to itself.

use krv_core::{BackendKind, KernelKind};
use krv_service::{
    HashRequest, Service, ServiceConfig, ShardConfig, ShardedService, Ticket, TierPolicy,
};
use krv_sha3::{hash_batch, hex, BatchRequest, PermutationBackend, Sponge, SpongeParams};
use krv_testkit::CaseReport;
use std::time::Duration;

/// The six FIPS 202 functions, as data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// SHA3-224 (rate 144 bytes).
    Sha3_224,
    /// SHA3-256 (rate 136 bytes).
    Sha3_256,
    /// SHA3-384 (rate 104 bytes).
    Sha3_384,
    /// SHA3-512 (rate 72 bytes).
    Sha3_512,
    /// SHAKE128 (rate 168 bytes).
    Shake128,
    /// SHAKE256 (rate 136 bytes).
    Shake256,
}

impl Algorithm {
    /// All six functions, in FIPS 202 presentation order.
    pub const ALL: [Algorithm; 6] = [
        Algorithm::Sha3_224,
        Algorithm::Sha3_256,
        Algorithm::Sha3_384,
        Algorithm::Sha3_512,
        Algorithm::Shake128,
        Algorithm::Shake256,
    ];

    /// The function's display name.
    pub const fn name(self) -> &'static str {
        match self {
            Algorithm::Sha3_224 => "SHA3-224",
            Algorithm::Sha3_256 => "SHA3-256",
            Algorithm::Sha3_384 => "SHA3-384",
            Algorithm::Sha3_512 => "SHA3-512",
            Algorithm::Shake128 => "SHAKE128",
            Algorithm::Shake256 => "SHAKE256",
        }
    }

    /// Sponge parameters (rate + domain separation) of the function.
    pub fn params(self) -> SpongeParams {
        match self {
            Algorithm::Sha3_224 => SpongeParams::sha3(224),
            Algorithm::Sha3_256 => SpongeParams::sha3(256),
            Algorithm::Sha3_384 => SpongeParams::sha3(384),
            Algorithm::Sha3_512 => SpongeParams::sha3(512),
            Algorithm::Shake128 => SpongeParams::shake(128),
            Algorithm::Shake256 => SpongeParams::shake(256),
        }
    }

    /// The fixed digest length for the hash functions, `None` for XOFs.
    pub const fn digest_len(self) -> Option<usize> {
        match self {
            Algorithm::Sha3_224 => Some(28),
            Algorithm::Sha3_256 => Some(32),
            Algorithm::Sha3_384 => Some(48),
            Algorithm::Sha3_512 => Some(64),
            Algorithm::Shake128 | Algorithm::Shake256 => None,
        }
    }
}

/// A KAT message: an explicit literal or a length of the deterministic
/// byte pattern shared with the vector generator.
#[derive(Debug, Clone, Copy)]
pub enum KatMessage {
    /// Literal message bytes.
    Literal(&'static [u8]),
    /// `pattern_message(len)`.
    Pattern(usize),
}

impl KatMessage {
    /// Materializes the message bytes.
    pub fn bytes(&self) -> Vec<u8> {
        match *self {
            KatMessage::Literal(bytes) => bytes.to_vec(),
            KatMessage::Pattern(len) => pattern_message(len),
        }
    }

    /// The message length in bytes.
    pub fn len(&self) -> usize {
        match *self {
            KatMessage::Literal(bytes) => bytes.len(),
            KatMessage::Pattern(len) => len,
        }
    }

    /// Whether the message is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// One known-answer vector.
#[derive(Debug, Clone, Copy)]
pub struct KatEntry {
    /// The input message.
    pub message: KatMessage,
    /// Output bytes to squeeze (the digest length for hash functions).
    pub output_len: usize,
    /// Expected output, lowercase hex.
    pub digest_hex: &'static str,
}

/// The full vector set of one FIPS 202 function.
#[derive(Debug, Clone, Copy)]
pub struct KatSuite {
    /// Which function the vectors target.
    pub algorithm: Algorithm,
    /// Short messages: the boundary lengths around one and two rate
    /// blocks, plus the classic `"abc"` example.
    pub short: &'static [KatEntry],
    /// Long messages spanning many rate blocks.
    pub long: &'static [KatEntry],
    /// Monte Carlo chain checkpoint after 100 iterations
    /// (`md ← H(md)`, seeded with `pattern_message(32)`).
    pub monte_smoke: (usize, &'static str),
    /// Monte Carlo checkpoint after 1000 iterations.
    pub monte_full: (usize, &'static str),
}

/// The deterministic KAT message pattern.
///
/// Kept in byte-for-byte lockstep with `pattern` in `gen_vectors.py`
/// (there is a pinned test): `byte[i] = (167·i + 31·len + 13) mod 256`.
pub fn pattern_message(len: usize) -> Vec<u8> {
    (0..len)
        .map(|i| ((i * 167 + len * 31 + 13) & 0xFF) as u8)
        .collect()
}

/// How deep to run a suite.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Tier {
    /// Short vectors only — the `cargo test` tier.
    Short,
    /// Short + long vectors + the 100-iteration Monte Carlo chain.
    Smoke,
    /// Everything, with the 1000-iteration Monte Carlo chain.
    Full,
}

/// The outcome of one (backend, algorithm) suite run.
#[derive(Debug, Clone)]
pub struct KatOutcome {
    /// Backend label (pass-matrix row key).
    pub backend: String,
    /// Algorithm name (pass-matrix column key).
    pub algorithm: &'static str,
    /// Vectors checked (counting digest path, batch path and the Monte
    /// Carlo chain as separate cases).
    pub cases: usize,
    /// Every divergence from the embedded expectation.
    pub failures: Vec<CaseReport>,
}

impl KatOutcome {
    /// Whether every vector matched.
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }
}

/// One-shot digest through the sponge layer over any backend.
pub fn digest_with(
    backend: &mut dyn PermutationBackend,
    params: SpongeParams,
    message: &[u8],
    output_len: usize,
) -> Vec<u8> {
    let mut sponge = Sponge::new(params, backend);
    sponge.absorb(message);
    sponge.squeeze(output_len)
}

/// Runs one KAT suite on one backend at the given tier.
///
/// Every selected vector is checked twice — through the one-shot digest
/// path and through a single ragged [`hash_batch`] call carrying the
/// whole vector set — and the Monte Carlo chain (smoke tier and up) is
/// checked through the digest path.
pub fn run_suite(kind: &BackendKind, suite: &KatSuite, tier: Tier) -> KatOutcome {
    let mut backend = kind.instantiate(backend_states(kind));
    let params = suite.algorithm.params();
    let mut failures = Vec::new();
    let mut cases = 0;
    let entries: Vec<&KatEntry> = match tier {
        Tier::Short => suite.short.iter().collect(),
        Tier::Smoke | Tier::Full => suite.short.iter().chain(suite.long.iter()).collect(),
    };

    // Digest path: one sponge per vector.
    let mut messages: Vec<Vec<u8>> = Vec::with_capacity(entries.len());
    for entry in &entries {
        let message = entry.message.bytes();
        let got = digest_with(backend.as_mut(), params, &message, entry.output_len);
        cases += 1;
        if hex(&got) != entry.digest_hex {
            failures.push(CaseReport::new(
                format!("kat/{}/digest", suite.algorithm.name()),
                message.len() as u64,
                format!(
                    "message len {} → {} != expected {}",
                    message.len(),
                    hex(&got),
                    entry.digest_hex
                ),
            ));
        }
        messages.push(message);
    }

    // Batch path: the whole (ragged) vector set in one scheduled call.
    let requests: Vec<BatchRequest<'_>> = entries
        .iter()
        .zip(&messages)
        .map(|(entry, message)| BatchRequest::new(message, entry.output_len))
        .collect();
    let outputs = hash_batch(params, &mut backend, &requests);
    for (entry, output) in entries.iter().zip(&outputs) {
        cases += 1;
        if hex(output) != entry.digest_hex {
            failures.push(CaseReport::new(
                format!("kat/{}/batch", suite.algorithm.name()),
                entry.message.len() as u64,
                format!(
                    "message len {} → {} != expected {}",
                    entry.message.len(),
                    hex(output),
                    entry.digest_hex
                ),
            ));
        }
    }

    // Monte Carlo chain: digest feeding the next iteration's message.
    if tier >= Tier::Smoke {
        let (iterations, expected) = match tier {
            Tier::Full => suite.monte_full,
            _ => suite.monte_smoke,
        };
        let output_len = suite.algorithm.digest_len().unwrap_or(32);
        let mut md = pattern_message(32);
        for _ in 0..iterations {
            md = digest_with(backend.as_mut(), params, &md, output_len);
        }
        cases += 1;
        if hex(&md) != expected {
            failures.push(CaseReport::new(
                format!("kat/{}/monte", suite.algorithm.name()),
                iterations as u64,
                format!(
                    "{iterations}-iteration chain → {} != expected {expected}",
                    hex(&md)
                ),
            ));
        }
    }

    KatOutcome {
        backend: kind.label(),
        algorithm: suite.algorithm.name(),
        cases,
        failures,
    }
}

/// The pass-matrix row key of the simulator-tier serving path.
pub const SERVICE_LABEL: &str = "service/e64m8x2";

/// The pass-matrix row key of the native-tier serving path (with the
/// simulator mirroring every dispatch group as a differential oracle).
pub const NATIVE_SERVICE_LABEL: &str = "service/native+mirror";

/// Runs one KAT suite through the serving path: every selected vector is
/// submitted as an independent request to a continuous-batching
/// [`Service`] over an engine pool, so the digests additionally cross the
/// admission queue, the micro-batch scheduler and the supervised
/// dispatch. The Monte Carlo chain (smoke tier and up) round-trips
/// sequentially, each link riding its own micro-batch.
pub fn run_service_suite(suite: &KatSuite, tier: Tier) -> KatOutcome {
    tiered_service_suite(suite, tier, TierPolicy::simulator(), SERVICE_LABEL)
}

/// Runs one KAT suite through the serving path with the **native tier**
/// primary and the simulator mirroring every dispatch group: the vectors
/// check the served digests against the external oracle while the online
/// mirror simultaneously diffs native against simulated output — a
/// latched mismatch fails the row via the health check.
pub fn run_native_service_suite(suite: &KatSuite, tier: Tier) -> KatOutcome {
    tiered_service_suite(
        suite,
        tier,
        TierPolicy::native().with_mirror_every(1),
        NATIVE_SERVICE_LABEL,
    )
}

/// The pass-matrix row key of the sharded serving path.
pub const SHARDED_SERVICE_LABEL: &str = "service/sharded-x2";

/// Runs one KAT suite through the **sharded** serving path: every
/// selected vector is submitted as its own client to a two-shard
/// [`ShardedService`], so the digests additionally cross the
/// consistent-hash routing and the per-shard queues and schedulers, and
/// the health check runs against the bucket-wise **merged** metrics.
pub fn run_sharded_service_suite(suite: &KatSuite, tier: Tier) -> KatOutcome {
    let service = ShardedService::start(ShardConfig {
        shards: 2,
        service: ServiceConfig {
            kernel: KernelKind::E64Lmul8,
            sn: 2,
            workers: 2,
            queue_capacity: 1024,
            max_wait: Duration::from_micros(50),
            tier: TierPolicy::simulator(),
            fair_share: None,
        },
    });
    let params = suite.algorithm.params();
    let mut failures = Vec::new();
    let mut cases = 0;
    let entries: Vec<&KatEntry> = match tier {
        Tier::Short => suite.short.iter().collect(),
        Tier::Smoke | Tier::Full => suite.short.iter().chain(suite.long.iter()).collect(),
    };

    // One burst, one client id per vector: the routing hash spreads the
    // burst across both shards before the first ticket is awaited.
    let tickets: Vec<Ticket> = entries
        .iter()
        .enumerate()
        .map(|(client, entry)| {
            service
                .submit_as(
                    client as u64,
                    HashRequest::new(entry.message.bytes(), params, entry.output_len),
                )
                .expect("KAT burst fits the shard queues")
        })
        .collect();
    for (entry, ticket) in entries.iter().zip(tickets) {
        cases += 1;
        match ticket.wait().result {
            Ok(output) if hex(&output) == entry.digest_hex => {}
            Ok(output) => failures.push(CaseReport::new(
                format!("kat/{}/sharded", suite.algorithm.name()),
                entry.message.len() as u64,
                format!(
                    "message len {} → {} != expected {}",
                    entry.message.len(),
                    hex(&output),
                    entry.digest_hex
                ),
            )),
            Err(error) => failures.push(CaseReport::new(
                format!("kat/{}/sharded", suite.algorithm.name()),
                entry.message.len() as u64,
                format!(
                    "message len {} → request failed: {error}",
                    entry.message.len()
                ),
            )),
        }
    }

    let report = service.shutdown();
    if report.timeouts != 0
        || report.worker_failures != 0
        || report.rejected != 0
        || report.throttled != 0
        || report.completed != cases as u64
    {
        failures.push(CaseReport::new(
            format!("kat/{}/sharded-health", suite.algorithm.name()),
            0,
            format!(
                "unhealthy sharded run: {} completed of {cases}, {} timeouts, \
                 {} worker failures, {} rejections, {} throttled",
                report.completed,
                report.timeouts,
                report.worker_failures,
                report.rejected,
                report.throttled
            ),
        ));
    }

    KatOutcome {
        backend: SHARDED_SERVICE_LABEL.to_string(),
        algorithm: suite.algorithm.name(),
        cases,
        failures,
    }
}

fn tiered_service_suite(
    suite: &KatSuite,
    tier: Tier,
    policy: TierPolicy,
    label: &str,
) -> KatOutcome {
    let service = Service::start(ServiceConfig {
        kernel: KernelKind::E64Lmul8,
        sn: 2,
        workers: 2,
        queue_capacity: 1024,
        // A tight window: the KAT burst rarely fills every slot, and the
        // sequential Monte Carlo chain pays the window on every link.
        max_wait: Duration::from_micros(50),
        tier: policy,
        fair_share: None,
    });
    let params = suite.algorithm.params();
    let mut failures = Vec::new();
    let mut cases = 0;
    let entries: Vec<&KatEntry> = match tier {
        Tier::Short => suite.short.iter().collect(),
        Tier::Smoke | Tier::Full => suite.short.iter().chain(suite.long.iter()).collect(),
    };

    // One burst: every vector submitted before the first ticket is
    // awaited, so the scheduler actually forms multi-request batches.
    let tickets: Vec<Ticket> = entries
        .iter()
        .map(|entry| {
            service
                .submit(HashRequest::new(
                    entry.message.bytes(),
                    params,
                    entry.output_len,
                ))
                .expect("KAT burst fits the queue")
        })
        .collect();
    for (entry, ticket) in entries.iter().zip(tickets) {
        cases += 1;
        let completion = ticket.wait();
        match completion.result {
            Ok(output) if hex(&output) == entry.digest_hex => {}
            Ok(output) => failures.push(CaseReport::new(
                format!("kat/{}/service", suite.algorithm.name()),
                entry.message.len() as u64,
                format!(
                    "message len {} → {} != expected {}",
                    entry.message.len(),
                    hex(&output),
                    entry.digest_hex
                ),
            )),
            Err(error) => failures.push(CaseReport::new(
                format!("kat/{}/service", suite.algorithm.name()),
                entry.message.len() as u64,
                format!(
                    "message len {} → request failed: {error}",
                    entry.message.len()
                ),
            )),
        }
    }

    // Monte Carlo chain: each digest is resubmitted as the next message,
    // so the chain crosses the queue and scheduler on every iteration.
    if tier >= Tier::Smoke {
        let (iterations, expected) = match tier {
            Tier::Full => suite.monte_full,
            _ => suite.monte_smoke,
        };
        let output_len = suite.algorithm.digest_len().unwrap_or(32);
        let mut md = pattern_message(32);
        let mut failed = None;
        for _ in 0..iterations {
            let ticket = service
                .submit(HashRequest::new(md.clone(), params, output_len))
                .expect("chain link admitted");
            match ticket.wait().result {
                Ok(next) => md = next,
                Err(error) => {
                    failed = Some(error);
                    break;
                }
            }
        }
        cases += 1;
        if let Some(error) = failed {
            failures.push(CaseReport::new(
                format!("kat/{}/service-monte", suite.algorithm.name()),
                iterations as u64,
                format!("chain link failed: {error}"),
            ));
        } else if hex(&md) != expected {
            failures.push(CaseReport::new(
                format!("kat/{}/service-monte", suite.algorithm.name()),
                iterations as u64,
                format!(
                    "{iterations}-iteration chain → {} != expected {expected}",
                    hex(&md)
                ),
            ));
        }
    }

    let report = service.shutdown();
    if report.timeouts != 0
        || report.worker_failures != 0
        || report.rejected != 0
        || report.mirror_mismatches != 0
    {
        failures.push(CaseReport::new(
            format!("kat/{}/service-health", suite.algorithm.name()),
            0,
            format!(
                "unhealthy serving run: {} timeouts, {} worker failures, {} rejections, \
                 {} mirror mismatches",
                report.timeouts, report.worker_failures, report.rejected, report.mirror_mismatches
            ),
        ));
    }
    if policy.mirror_every != 0 && report.mirrored == 0 && report.completed != 0 {
        failures.push(CaseReport::new(
            format!("kat/{}/service-health", suite.algorithm.name()),
            0,
            "mirroring was configured but no request was mirrored".to_string(),
        ));
    }

    KatOutcome {
        backend: label.to_string(),
        algorithm: suite.algorithm.name(),
        cases,
        failures,
    }
}

/// States per engine pass for each backend variant: varied on purpose so
/// the suites cover different packing shapes.
pub fn backend_states(kind: &BackendKind) -> usize {
    match kind {
        BackendKind::Reference => 1,
        BackendKind::Engine(_) => 3,
        // A different packing than the compiled rows, so the tier pair
        // also crosses two staging shapes.
        BackendKind::Interpreted(_) => 2,
        BackendKind::Session(_) | BackendKind::Pool { .. } => 2,
        // The native backend's group width is fixed by its LaneWidth;
        // the `sn` argument is ignored by `instantiate`.
        BackendKind::Native(_) => 2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vectors::SUITES;

    #[test]
    fn pattern_matches_generator_script() {
        // First bytes of pattern(8) as produced by gen_vectors.py.
        assert_eq!(pattern_message(8), vec![5, 172, 83, 250, 161, 72, 239, 150]);
        assert_eq!(pattern_message(0), Vec::<u8>::new());
    }

    #[test]
    fn suites_cover_all_six_functions() {
        let names: Vec<&str> = SUITES.iter().map(|s| s.algorithm.name()).collect();
        for algorithm in Algorithm::ALL {
            assert!(names.contains(&algorithm.name()), "{}", algorithm.name());
        }
    }

    #[test]
    fn suites_include_rate_boundary_lengths() {
        for suite in &SUITES {
            let rate = suite.algorithm.params().rate_bytes();
            let lens: Vec<usize> = suite.short.iter().map(|e| e.message.len()).collect();
            for boundary in [0, rate - 1, rate, rate + 1, 2 * rate] {
                assert!(
                    lens.contains(&boundary),
                    "{} misses boundary length {boundary}",
                    suite.algorithm.name()
                );
            }
        }
    }

    #[test]
    fn reference_backend_passes_short_tier() {
        for suite in &SUITES {
            let outcome = run_suite(&BackendKind::Reference, suite, Tier::Short);
            assert!(
                outcome.passed(),
                "{}: {:?}",
                suite.algorithm.name(),
                outcome.failures
            );
            assert!(outcome.cases >= 2 * suite.short.len());
        }
    }

    #[test]
    fn reference_backend_passes_monte_carlo_smoke() {
        for suite in &SUITES {
            let outcome = run_suite(&BackendKind::Reference, suite, Tier::Smoke);
            assert!(
                outcome.passed(),
                "{}: {:?}",
                suite.algorithm.name(),
                outcome.failures
            );
        }
    }
}
