//! Fast-path differential oracle: randomized kernels run through the
//! fused macro-op execution path and the per-instruction reference path
//! of the *same* simulator, asserting the two are observationally
//! identical — halt/trap outcome, cycle count, retired counters, PC,
//! every scalar and vector register, and all of data memory.
//!
//! The fused path ([`Processor::run`] with fusion enabled, the default)
//! dispatches straight-line blocks as single macro-ops with a
//! precomputed linear cost; the reference path (`set_fusion(false)`)
//! steps one instruction at a time. The refactor argues the two are
//! provably equivalent (DESIGN.md §11); this layer checks the proof
//! against the implementation on random programs, including the edge
//! cases the argument leans on: mid-block traps, `vsetvli`
//! reconfiguration, back-edges into block interiors, and cycle budgets
//! that expire mid-block.
//!
//! The random program families live here as reusable generators
//! (`ProgramCase`) because the compiled-tier differential
//! ([`crate::compiledtier`]) runs the same families through a third
//! execution path.
//!
//! [`Processor::run`]: krv_vproc::Processor::run

use krv_isa::{VReg, XReg};
use krv_testkit::{CaseReport, Rng};
use krv_vproc::{Processor, ProcessorConfig};

/// Cycle budget for programs that are expected to halt on their own.
pub(crate) const MAX_CYCLES: u64 = 100_000;

/// Bytes of data memory pre-staged with random contents so loads see
/// interesting values. Programs keep their addresses inside this window
/// (except the deliberate-fault scenario).
pub(crate) const STAGE_BYTES: usize = 2048;

/// One randomly generated differential case: a program, the memory
/// image it starts from, and the cycle budget it runs under.
pub(crate) struct ProgramCase {
    /// Per-register element count of the vector configuration.
    pub elenum: usize,
    /// Assembly source (must assemble; a rejection is itself a failure).
    pub source: String,
    /// Initial data-memory image, staged identically into every path.
    pub image: Vec<u8>,
    /// Cycle budget; small values deliberately expire mid-run.
    pub max_cycles: u64,
}

/// The outcome of one fast-path scenario.
#[derive(Debug, Clone)]
pub struct FastpathOutcome {
    /// Program-shape scenario under test.
    pub scenario: &'static str,
    /// Random cases executed.
    pub cases: usize,
    /// Divergences between the fused and reference paths.
    pub failures: Vec<CaseReport>,
}

impl FastpathOutcome {
    /// Whether the fused path matched the reference path on every case.
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }
}

/// One program-family generator: a seeded RNG in, a runnable case out.
pub(crate) type ProgramGen = fn(&mut Rng) -> ProgramCase;

/// The program shapes the differential covers, as data. Shared with the
/// compiled-tier layer, which appends its own idiom-heavy families.
pub(crate) const PROGRAM_FAMILIES: [(&str, ProgramGen); 6] = [
    ("scalar straight-line", gen_scalar_straight_line),
    ("scalar loop + memory", gen_scalar_loop),
    ("vector kernel (e64/m1)", gen_vector_m1),
    ("vsetvli reconfiguration (m1/m8)", gen_reconfiguration),
    ("mid-block trap", gen_mid_block_trap),
    ("tight cycle budget", gen_cycle_budget),
];

/// Runs every scenario for `cases_per_scenario` random programs each.
/// Seeds are split per (scenario, case) — offset away from the
/// instruction oracle's split — so any failure reproduces in isolation.
pub fn run_fastpath(cases_per_scenario: usize, seed: u64) -> Vec<FastpathOutcome> {
    PROGRAM_FAMILIES
        .iter()
        .enumerate()
        .map(|(index, (scenario, generate))| {
            let mut failures = Vec::new();
            for case in 0..cases_per_scenario {
                let case_seed = seed
                    ^ ((0x20 + index as u64) << 48)
                    ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                if let Err(detail) = diff_run(&generate(&mut Rng::new(case_seed))) {
                    failures.push(CaseReport::new(
                        format!("fastpath/{scenario}"),
                        case_seed,
                        detail,
                    ));
                }
            }
            FastpathOutcome {
                scenario,
                cases: cases_per_scenario,
                failures,
            }
        })
        .collect()
}

// ---------------------------------------------------------------------
// Harness: run the same program fused and stepped, compare everything.
// ---------------------------------------------------------------------

/// Compares every architectural observable of two processors that ran
/// the same program: cycle and retired counters, PC, scalar registers,
/// `vl`, vector registers, and all of data memory. `label` names the
/// left-hand path in failure messages (the right-hand side is always
/// the stepped reference).
pub(crate) fn compare_machines(
    label: &str,
    got: &Processor,
    reference: &Processor,
) -> Result<(), String> {
    if got.cycles() != reference.cycles() {
        return Err(format!(
            "cycle count diverged: {label} {}, reference {}",
            got.cycles(),
            reference.cycles()
        ));
    }
    if got.retired() != reference.retired() {
        return Err(format!(
            "retired count diverged: {label} {}, reference {}",
            got.retired(),
            reference.retired()
        ));
    }
    if got.retired_vector() != reference.retired_vector() {
        return Err(format!(
            "vector retired count diverged: {label} {}, reference {}",
            got.retired_vector(),
            reference.retired_vector()
        ));
    }
    if got.pc() != reference.pc() {
        return Err(format!(
            "final PC diverged: {label} {:#x}, reference {:#x}",
            got.pc(),
            reference.pc()
        ));
    }
    for index in 0..32 {
        let reg = XReg::from_index(index);
        if got.xreg(reg) != reference.xreg(reg) {
            return Err(format!(
                "x{index} diverged: {label} {:#010x}, reference {:#010x}",
                got.xreg(reg),
                reference.xreg(reg)
            ));
        }
    }
    if got.vector_unit().vl() != reference.vector_unit().vl() {
        return Err(format!(
            "vl diverged: {label} {}, reference {}",
            got.vector_unit().vl(),
            reference.vector_unit().vl()
        ));
    }
    for index in 0..32 {
        let reg = VReg::from_index(index);
        if got.vector_unit().register_bytes(reg) != reference.vector_unit().register_bytes(reg) {
            return Err(format!("v{index} contents diverged ({label} vs reference)"));
        }
    }
    let len = got.dmem().len();
    let got_mem = got.dmem().read_bytes(0, len).expect("dmem read-back");
    let ref_mem = reference.dmem().read_bytes(0, len).expect("dmem read-back");
    if let Some(addr) = got_mem.iter().zip(&ref_mem).position(|(a, b)| a != b) {
        return Err(format!(
            "dmem diverged at {addr:#x}: {label} {:#04x}, reference {:#04x}",
            got_mem[addr], ref_mem[addr]
        ));
    }
    Ok(())
}

/// Assembles a case, stages the same memory image into a fresh
/// processor, and runs it. `configure` tweaks execution tiers before
/// the program loads.
pub(crate) fn run_case(
    case: &ProgramCase,
    configure: impl FnOnce(&mut Processor),
) -> Result<(Processor, Result<krv_vproc::RunSummary, krv_vproc::Trap>), String> {
    let program = krv_asm::assemble(&case.source).map_err(|e| {
        format!(
            "assembler rejected generated program: {e}\n---\n{}",
            case.source
        )
    })?;
    let mut processor = Processor::new(ProcessorConfig::elen64(case.elenum));
    configure(&mut processor);
    processor
        .dmem_mut()
        .write_bytes(0, &case.image)
        .expect("staging inside dmem");
    processor.load_program(program.instructions());
    let outcome = processor.run(case.max_cycles);
    Ok((processor, outcome))
}

/// Runs `case` fused and stepped, and reports the first observable
/// divergence.
fn diff_run(case: &ProgramCase) -> Result<(), String> {
    let (fused, fused_result) = run_case(case, |_| {})?;
    let (stepped, stepped_result) = run_case(case, |p| p.set_fusion(false))?;
    if fused_result != stepped_result {
        return Err(format!(
            "outcome diverged: fused {fused_result:?}, reference {stepped_result:?}"
        ));
    }
    compare_machines("fused", &fused, &stepped)
}

// ---------------------------------------------------------------------
// Random program generators.
// ---------------------------------------------------------------------

/// Scratch registers the generators hand out (never `t0`/`t1`, which
/// loop scenarios reserve for counters).
const SCALAR_REGS: [&str; 8] = ["a0", "a1", "a2", "a3", "a4", "a5", "t2", "s2"];

/// Three-operand scalar ALU mnemonics the assembler accepts.
const SCALAR_OPS: [&str; 10] = [
    "add", "sub", "xor", "and", "or", "sll", "srl", "slt", "sltu", "mul",
];

fn reg(rng: &mut Rng) -> &'static str {
    SCALAR_REGS[rng.below(SCALAR_REGS.len())]
}

/// One random scalar instruction line (ALU, immediate, or CSR read —
/// CSR reads are the interesting one: they observe the cycle/instret
/// counters mid-block, where a buggy fast path would show a lump sum).
fn scalar_line(rng: &mut Rng, out: &mut String) {
    match rng.below(8) {
        0 => {
            let imm = rng.below(4096) as i64 - 2048;
            out.push_str(&format!("addi {}, {}, {imm}\n", reg(rng), reg(rng)));
        }
        1 => out.push_str(&format!("csrr {}, cycle\n", reg(rng))),
        2 => out.push_str(&format!("csrr {}, instret\n", reg(rng))),
        3 => {
            let shift = rng.below(32);
            out.push_str(&format!("slli {}, {}, {shift}\n", reg(rng), reg(rng)));
        }
        _ => {
            let op = SCALAR_OPS[rng.below(SCALAR_OPS.len())];
            out.push_str(&format!("{op} {}, {}, {}\n", reg(rng), reg(rng), reg(rng)));
        }
    }
}

/// Seeds every scratch register with a random 32-bit value.
fn seed_regs(rng: &mut Rng, out: &mut String) {
    for name in SCALAR_REGS {
        out.push_str(&format!("li {name}, {}\n", rng.next_u32() as i32));
    }
}

/// A word-aligned address inside the staged window, as a store offset.
fn aligned_offset(rng: &mut Rng) -> usize {
    rng.below(STAGE_BYTES / 4) * 4
}

fn gen_scalar_straight_line(rng: &mut Rng) -> ProgramCase {
    let image = rng.bytes(STAGE_BYTES);
    let mut source = String::new();
    seed_regs(rng, &mut source);
    for _ in 0..8 + rng.below(17) {
        if rng.below(5) == 0 {
            let offset = aligned_offset(rng);
            if rng.below(2) == 0 {
                source.push_str(&format!("sw {}, {offset}(x0)\n", reg(rng)));
            } else {
                source.push_str(&format!("lw {}, {offset}(x0)\n", reg(rng)));
            }
        } else {
            scalar_line(rng, &mut source);
        }
    }
    source.push_str("ecall\n");
    ProgramCase {
        elenum: 10,
        source,
        image,
        max_cycles: MAX_CYCLES,
    }
}

fn gen_scalar_loop(rng: &mut Rng) -> ProgramCase {
    let image = rng.bytes(STAGE_BYTES);
    let iterations = 1 + rng.below(8);
    let mut source = String::new();
    seed_regs(rng, &mut source);
    source.push_str(&format!("li t0, 0\nli t1, {iterations}\nloop:\n"));
    for _ in 0..2 + rng.below(6) {
        scalar_line(rng, &mut source);
    }
    // A store/load pair keeps memory traffic inside the loop body, so
    // the back-edge repeatedly re-enters a block with side effects.
    let offset = aligned_offset(rng);
    source.push_str(&format!("sw {}, {offset}(x0)\n", reg(rng)));
    source.push_str(&format!("lw {}, {offset}(x0)\n", reg(rng)));
    source.push_str("addi t0, t0, 1\nblt t0, t1, loop\necall\n");
    ProgramCase {
        elenum: 10,
        source,
        image,
        max_cycles: MAX_CYCLES,
    }
}

/// One random vector instruction over registers `v1..=v6` (e64, m1).
/// Mixes standard RVV arithmetic with the custom Keccak ops so fused
/// blocks contain the exact instruction mix of the real kernels.
fn vector_line_m1(rng: &mut Rng, out: &mut String) {
    let vd = 1 + rng.below(6);
    let vs2 = 1 + rng.below(6);
    let vs1 = 1 + rng.below(6);
    match rng.below(10) {
        0 => out.push_str(&format!("vadd.vi v{vd}, v{vs2}, {}\n", rng.below(16))),
        1 => out.push_str(&format!("vsll.vi v{vd}, v{vs2}, {}\n", rng.below(16))),
        2 => out.push_str(&format!("vsrl.vi v{vd}, v{vs2}, {}\n", rng.below(16))),
        3 => out.push_str(&format!("vrotup.vi v{vd}, v{vs2}, {}\n", rng.below(32))),
        4 => out.push_str(&format!("v64rho.vi v{vd}, v{vs2}, {}\n", rng.below(5))),
        5 => out.push_str(&format!("vslidedownm.vi v{vd}, v{vs2}, {}\n", rng.below(5))),
        6 => out.push_str(&format!("vslideupm.vi v{vd}, v{vs2}, {}\n", rng.below(5))),
        7 => out.push_str(&format!("vxor.vv v{vd}, v{vs2}, v{vs1}\n")),
        8 => out.push_str(&format!("vand.vv v{vd}, v{vs2}, v{vs1}\n")),
        _ => out.push_str(&format!("vor.vv v{vd}, v{vs2}, v{vs1}\n")),
    }
}

fn gen_vector_m1(rng: &mut Rng) -> ProgramCase {
    let image = rng.bytes(STAGE_BYTES);
    // vl = 5 or 10 keeps the custom ops' five-lane row structure valid;
    // the occasional ragged vl exercises the partial-group cost rule.
    let vl = match rng.below(4) {
        0 => 5,
        1 => 1 + rng.below(10),
        _ => 10,
    };
    let mut source = String::new();
    source.push_str(&format!(
        "li t0, {vl}\nli a0, 0\nli a1, 256\nli a2, 1024\n\
         vsetvli x0, t0, e64, m1, tu, mu\n\
         vle64.v v1, (a0)\nvle64.v v2, (a1)\n"
    ));
    for _ in 0..3 + rng.below(8) {
        vector_line_m1(rng, &mut source);
    }
    let stored = 1 + rng.below(6);
    source.push_str(&format!("vse64.v v{stored}, (a2)\necall\n"));
    ProgramCase {
        elenum: 10,
        source,
        image,
        max_cycles: MAX_CYCLES,
    }
}

fn gen_reconfiguration(rng: &mut Rng) -> ProgramCase {
    let image = rng.bytes(STAGE_BYTES);
    // EleNum = 5: m1 holds one row, m8 holds a whole 25-lane state.
    // vsetvli is a fusion barrier, so each reconfiguration splits the
    // program into blocks whose VL differs — the exact case the
    // hoisted-group-count argument has to get right.
    let vl_m8 = 1 + rng.below(25);
    let mut source = String::new();
    source.push_str(
        "li t0, 5\nli t2, 0\nli a1, 320\nli a2, 1024\n\
         vsetvli x0, t0, e64, m1, tu, mu\n\
         vle64.v v0, (t2)\nvle64.v v1, (a1)\n",
    );
    source.push_str(&format!(
        "li t1, {vl_m8}\nvsetvli x0, t1, e64, m8, tu, mu\n"
    ));
    for _ in 0..1 + rng.below(4) {
        match rng.below(4) {
            0 => source.push_str("vxor.vv v8, v0, v0\n"),
            1 => source.push_str("vadd.vv v8, v0, v8\n"),
            2 => source.push_str("v64rho.vi v16, v8, -1\n"),
            _ => source.push_str(&format!("vrotup.vi v16, v8, {}\n", rng.below(32))),
        }
    }
    source.push_str(
        "vsetvli x0, t0, e64, m1, tu, mu\n\
         vse64.v v8, (a2)\necall\n",
    );
    ProgramCase {
        elenum: 5,
        source,
        image,
        max_cycles: MAX_CYCLES,
    }
}

fn gen_mid_block_trap(rng: &mut Rng) -> ProgramCase {
    let image = rng.bytes(STAGE_BYTES);
    let mut source = String::new();
    seed_regs(rng, &mut source);
    for _ in 0..2 + rng.below(6) {
        scalar_line(rng, &mut source);
    }
    // The faulting access lands mid-straight-line, so the fused path
    // must retire the prefix, park the PC on the fault, and charge
    // exactly the prefix cycles.
    match rng.below(3) {
        0 => {
            // Misaligned word store.
            let offset = aligned_offset(rng) + 1 + rng.below(3);
            source.push_str(&format!("li s3, 0\nsw a0, {offset}(s3)\n"));
        }
        1 => {
            // Load past the end of data memory.
            source.push_str(&format!(
                "li s3, {}\nlw a0, 0(s3)\n",
                65536 + rng.below(64) * 4
            ));
        }
        _ => {
            // Vector load running off the end of data memory.
            source.push_str(&format!(
                "li t0, 10\nli s3, {}\nvsetvli x0, t0, e64, m1, tu, mu\nvle64.v v1, (s3)\n",
                65500 + rng.below(64)
            ));
        }
    }
    for _ in 0..rng.below(4) {
        scalar_line(rng, &mut source);
    }
    source.push_str("ecall\n");
    ProgramCase {
        elenum: 10,
        source,
        image,
        max_cycles: MAX_CYCLES,
    }
}

fn gen_cycle_budget(rng: &mut Rng) -> ProgramCase {
    let image = rng.bytes(STAGE_BYTES);
    let iterations = 2 + rng.below(6);
    let mut source = String::new();
    seed_regs(rng, &mut source);
    source.push_str(&format!("li t0, 0\nli t1, {iterations}\nloop:\n"));
    for _ in 0..2 + rng.below(4) {
        scalar_line(rng, &mut source);
    }
    source.push_str("addi t0, t0, 1\nblt t0, t1, loop\necall\n");
    // A budget that usually expires mid-run — often mid-block — so both
    // paths must stop at the same instruction with the same counters.
    let budget = 1 + rng.below(80) as u64;
    ProgramCase {
        elenum: 10,
        source,
        image,
        max_cycles: budget,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_scenario_passes_a_few_cases() {
        for outcome in run_fastpath(3, 0xFA57_0000) {
            assert!(
                outcome.passed(),
                "{}: {:?}",
                outcome.scenario,
                outcome.failures
            );
            assert_eq!(outcome.cases, 3);
        }
    }

    #[test]
    fn scenario_names_are_unique() {
        let mut names: Vec<&str> = PROGRAM_FAMILIES.iter().map(|(n, _)| *n).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), PROGRAM_FAMILIES.len());
    }

    #[test]
    fn generated_programs_assemble() {
        // The generators must produce valid assembly for any seed; a
        // rejected program is reported as a failure, so ten arbitrary
        // seeds double-check the grammar.
        for seed in 0..10 {
            for outcome in run_fastpath(1, seed * 0x1234_5678 + 7) {
                for failure in &outcome.failures {
                    assert!(
                        !failure.detail.contains("assembler rejected"),
                        "{}: {}",
                        outcome.scenario,
                        failure.detail
                    );
                }
            }
        }
    }
}
