//! End-to-end check that the differential fuzzer actually catches bugs
//! and that shrinking minimizes them: a deliberately broken backend is
//! fuzzed and the resulting report must contain mismatches whose repro
//! text reflects a minimized input.

use krv_conformance::fuzz_backend;
use krv_keccak::{keccak_f1600, KeccakState};
use krv_sha3::PermutationBackend;

/// A backend that is correct for single states but corrupts lane (0,0)
/// of the first state whenever two or more states are passed at once —
/// the kind of batching bug the fuzzer exists to find, and one that
/// shrinks to exactly two states.
struct BatchCorruptingBackend;

impl PermutationBackend for BatchCorruptingBackend {
    fn permute_all(&mut self, states: &mut [KeccakState]) {
        let broken = states.len() >= 2;
        for state in states.iter_mut() {
            keccak_f1600(state);
        }
        if broken {
            let flipped = states[0].lane(0, 0) ^ 1;
            states[0].set_lane(0, 0, flipped);
        }
    }

    fn parallel_states(&self) -> usize {
        4
    }
}

#[test]
fn fuzzer_finds_and_minimizes_a_planted_batch_bug() {
    let mut backend = BatchCorruptingBackend;
    let report = fuzz_backend(&mut backend, "planted", 60, 0xBAD_5EED);
    assert!(!report.passed(), "the planted bug must be detected");

    // Multi-state permute cases hit the bug; at the default case mix
    // (half permute cases, 1–6 states) 60 cases find it many times.
    let permute_failures: Vec<_> = report
        .mismatches
        .iter()
        .filter(|m| m.detail.starts_with("permute:"))
        .collect();
    assert!(
        !permute_failures.is_empty(),
        "at least one permute-shaped case must trip the bug: {:?}",
        report.mismatches
    );

    for failure in &permute_failures {
        // The bug needs >= 2 states to fire and dropping any state below
        // that makes it pass, so greedy shrinking must land on exactly 2.
        assert!(
            failure.detail.contains("minimized 2 states"),
            "shrink should minimize to the 2-state trigger: {}",
            failure.detail
        );
        assert!(
            failure.suite == "diff/planted",
            "suite label carries the backend: {}",
            failure.suite
        );
    }

    // The batch path rides on permute_all too, so batch/digest cases
    // with enough scheduled states may also fail — but every recorded
    // mismatch must carry a seed that reproduces it.
    for mismatch in &report.mismatches {
        assert_ne!(mismatch.seed, 0, "case seeds are derived, never zero");
    }
}

#[test]
fn fuzzer_passes_a_correct_backend_with_the_same_seed() {
    struct Correct;
    impl PermutationBackend for Correct {
        fn permute_all(&mut self, states: &mut [KeccakState]) {
            for state in states.iter_mut() {
                keccak_f1600(state);
            }
        }
        fn parallel_states(&self) -> usize {
            4
        }
    }
    let report = fuzz_backend(&mut Correct, "correct", 60, 0xBAD_5EED);
    assert!(report.passed(), "{:?}", report.mismatches);
}
