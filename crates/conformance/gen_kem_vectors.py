#!/usr/bin/env python3
"""Regenerates src/kem_vectors.rs from an independent ML-KEM implementation.

This file implements FIPS 203 (ML-KEM) from the standard's pseudocode,
on top of Python hashlib's SHA-3/SHAKE (OpenSSL) — it shares no code
with the Rust workspace, so the embedded vectors are an external oracle
for the full KeyGen/Encaps/Decaps pipeline: NTT algebra, rejection and
CBD sampling, ByteEncode/Compress serialization, and the implicit-
rejection FO transform.

Every vector is internally checked before emission: Decaps(dk, ct) must
recover the encapsulated secret, and Decaps over the tampered ciphertext
must equal J(z ‖ ct') exactly.

Run from crates/conformance:  python3 gen_kem_vectors.py > src/kem_vectors.rs
"""

import hashlib

Q = 3329
N = 256

# (name, k, eta1, eta2, du, dv)
PARAM_SETS = [
    ("ML-KEM-512", 2, 3, 2, 10, 4),
    ("ML-KEM-768", 3, 2, 2, 10, 4),
    ("ML-KEM-1024", 4, 2, 2, 11, 5),
]


def bitrev7(x):
    return int(f"{x:07b}"[::-1], 2)


ZETAS = [pow(17, bitrev7(k), Q) for k in range(128)]
BASEMUL_ZETAS = [pow(17, 2 * bitrev7(i) + 1, Q) for i in range(128)]


def ntt(f):
    f = list(f)
    k, length = 1, 128
    while length >= 2:
        for start in range(0, N, 2 * length):
            zeta = ZETAS[k]
            k += 1
            for j in range(start, start + length):
                t = zeta * f[j + length] % Q
                f[j + length] = (f[j] - t) % Q
                f[j] = (f[j] + t) % Q
        length //= 2
    return f


def inv_ntt(f):
    f = list(f)
    k, length = 127, 2
    while length <= 128:
        for start in range(0, N, 2 * length):
            zeta = ZETAS[k]
            k -= 1
            for j in range(start, start + length):
                t = f[j]
                f[j] = (t + f[j + length]) % Q
                f[j + length] = zeta * (f[j + length] - t) % Q
        length *= 2
    return [x * 3303 % Q for x in f]  # 3303 = 128⁻¹ mod q


def basemul(a, b):
    c = [0] * N
    for i in range(128):
        a0, a1, b0, b1 = a[2 * i], a[2 * i + 1], b[2 * i], b[2 * i + 1]
        c[2 * i] = (a0 * b0 + a1 * b1 % Q * BASEMUL_ZETAS[i]) % Q
        c[2 * i + 1] = (a0 * b1 + a1 * b0) % Q
    return c


def poly_add(a, b):
    return [(x + y) % Q for x, y in zip(a, b)]


def poly_sub(a, b):
    return [(x - y) % Q for x, y in zip(a, b)]


def sample_ntt(rho, j, i):
    """SampleNTT from SHAKE128(rho ‖ j ‖ i) — Algorithm 7."""
    blocks = 3
    while True:
        stream = hashlib.shake_128(rho + bytes([j, i])).digest(blocks * 168)
        coeffs = []
        for off in range(0, len(stream) - 2, 3):
            d1 = stream[off] | ((stream[off + 1] & 0x0F) << 8)
            d2 = (stream[off + 1] >> 4) | (stream[off + 2] << 4)
            for d in (d1, d2):
                if d < Q and len(coeffs) < N:
                    coeffs.append(d)
            if len(coeffs) == N:
                return coeffs
        blocks += 1  # prefix-stable: a longer squeeze extends the stream


def sample_cbd(stream, eta):
    bit = lambda idx: (stream[idx // 8] >> (idx % 8)) & 1
    coeffs = []
    for i in range(N):
        x = sum(bit(2 * i * eta + j) for j in range(eta))
        y = sum(bit(2 * i * eta + eta + j) for j in range(eta))
        coeffs.append((x - y) % Q)
    return coeffs


def prf(eta, seed, nonce):
    return hashlib.shake_256(seed + bytes([nonce])).digest(64 * eta)


def byte_encode(coeffs, d):
    out = bytearray(32 * d)
    for i, value in enumerate(coeffs):
        for bit in range(d):
            if (value >> bit) & 1:
                pos = d * i + bit
                out[pos // 8] |= 1 << (pos % 8)
    return bytes(out)


def byte_decode(data, d):
    coeffs = []
    for i in range(N):
        value = 0
        for bit in range(d):
            pos = d * i + bit
            value |= ((data[pos // 8] >> (pos % 8)) & 1) << bit
        coeffs.append(value % Q if d == 12 else value)
    return coeffs


def compress(coeffs, d):
    return [((x << d) + Q // 2) // Q % (1 << d) for x in coeffs]


def decompress(coeffs, d):
    return [(x * Q + (1 << (d - 1))) >> d for x in coeffs]


def expand_matrix(rho, k):
    return [[sample_ntt(rho, j, i) for j in range(k)] for i in range(k)]


def pke_keygen(k, eta1, d_seed):
    g = hashlib.sha3_512(d_seed + bytes([k])).digest()
    rho, sigma = g[:32], g[32:]
    a_hat = expand_matrix(rho, k)
    s_hat = [ntt(sample_cbd(prf(eta1, sigma, n), eta1)) for n in range(k)]
    e_hat = [ntt(sample_cbd(prf(eta1, sigma, k + n), eta1)) for n in range(k)]
    t_hat = []
    for i in range(k):
        acc = [0] * N
        for j in range(k):
            acc = poly_add(acc, basemul(a_hat[i][j], s_hat[j]))
        t_hat.append(poly_add(acc, e_hat[i]))
    ek = b"".join(byte_encode(t, 12) for t in t_hat) + rho
    dk_pke = b"".join(byte_encode(s, 12) for s in s_hat)
    return ek, dk_pke


def pke_encrypt(k, eta1, eta2, du, dv, ek, m, coins):
    t_hat = [byte_decode(ek[384 * i : 384 * (i + 1)], 12) for i in range(k)]
    rho = ek[384 * k :]
    a_hat = expand_matrix(rho, k)
    r_hat = [ntt(sample_cbd(prf(eta1, coins, n), eta1)) for n in range(k)]
    e1 = [sample_cbd(prf(eta2, coins, k + n), eta2) for n in range(k)]
    e2 = sample_cbd(prf(eta2, coins, 2 * k), eta2)
    u = []
    for i in range(k):
        acc = [0] * N
        for j in range(k):
            acc = poly_add(acc, basemul(a_hat[j][i], r_hat[j]))  # transpose
        u.append(poly_add(inv_ntt(acc), e1[i]))
    acc = [0] * N
    for j in range(k):
        acc = poly_add(acc, basemul(t_hat[j], r_hat[j]))
    mu = decompress([(m[i // 8] >> (i % 8)) & 1 for i in range(N)], 1)
    v = poly_add(poly_add(inv_ntt(acc), e2), mu)
    ct = b"".join(byte_encode(compress(p, du), du) for p in u)
    return ct + byte_encode(compress(v, dv), dv)


def pke_decrypt(k, du, dv, dk_pke, ct):
    u = [
        decompress(byte_decode(ct[32 * du * i : 32 * du * (i + 1)], du), du)
        for i in range(k)
    ]
    v = decompress(byte_decode(ct[32 * du * k :], dv), dv)
    s_hat = [byte_decode(dk_pke[384 * i : 384 * (i + 1)], 12) for i in range(k)]
    acc = [0] * N
    for j in range(k):
        acc = poly_add(acc, basemul(s_hat[j], ntt(u[j])))
    w = poly_sub(v, inv_ntt(acc))
    bits = compress(w, 1)
    m = bytearray(32)
    for i, b in enumerate(bits):
        m[i // 8] |= b << (i % 8)
    return bytes(m)


def ml_kem_keygen(k, eta1, d_seed, z):
    ek, dk_pke = pke_keygen(k, eta1, d_seed)
    dk = dk_pke + ek + hashlib.sha3_256(ek).digest() + z
    return ek, dk


def ml_kem_encaps(params, ek, m):
    _, k, eta1, eta2, du, dv = params
    g = hashlib.sha3_512(m + hashlib.sha3_256(ek).digest()).digest()
    shared, coins = g[:32], g[32:]
    ct = pke_encrypt(k, eta1, eta2, du, dv, ek, m, coins)
    return ct, shared


def ml_kem_decaps(params, dk, ct):
    _, k, eta1, eta2, du, dv = params
    dk_pke, ek = dk[: 384 * k], dk[384 * k : 768 * k + 32]
    h, z = dk[768 * k + 32 : 768 * k + 64], dk[768 * k + 64 :]
    m_prime = pke_decrypt(k, du, dv, dk_pke, ct)
    g = hashlib.sha3_512(m_prime + h).digest()
    k_prime, coins = g[:32], g[32:]
    k_bar = hashlib.shake_256(z + ct).digest(32)
    ct_prime = pke_encrypt(k, eta1, eta2, du, dv, ek, m_prime, coins)
    return k_prime if ct_prime == ct else k_bar


def seed32(label):
    """Deterministic, reproducible 32-byte seed from a label."""
    return hashlib.sha3_256(label.encode()).digest()


TAMPER_INDEX = 5  # ct byte flipped (XOR 0x01) for the rejection vector


def emit():
    print("//! Embedded ML-KEM (FIPS 203) known-answer vectors. GENERATED by")
    print("//! gen_kem_vectors.py — regenerate instead of editing. The vectors")
    print("//! come from an independent Python implementation of the standard")
    print("//! (NTT, samplers and serialization written to the FIPS 203")
    print("//! pseudocode over OpenSSL's SHA-3), so they share no code with")
    print("//! this workspace.")
    print()
    print("/// One deterministic ML-KEM known-answer vector: seeds in, full")
    print("/// key/ciphertext/secret material out, plus the implicit-rejection")
    print("/// secret for the same ciphertext with byte `tamper_index` flipped")
    print("/// (XOR 0x01).")
    print("#[derive(Debug, Clone, Copy)]")
    print("pub struct MlKemVector {")
    print("    /// Parameter-set label (\"ML-KEM-512\" / -768 / -1024).")
    print("    pub set: &'static str,")
    print("    /// Module rank k (2, 3 or 4).")
    print("    pub k: usize,")
    print("    /// KeyGen randomness d (32 bytes, hex).")
    print("    pub d_hex: &'static str,")
    print("    /// Implicit-rejection randomness z (32 bytes, hex).")
    print("    pub z_hex: &'static str,")
    print("    /// Encapsulation randomness m (32 bytes, hex).")
    print("    pub m_hex: &'static str,")
    print("    /// Expected encapsulation key (384k + 32 bytes, hex).")
    print("    pub ek_hex: &'static str,")
    print("    /// Expected decapsulation key (768k + 96 bytes, hex).")
    print("    pub dk_hex: &'static str,")
    print("    /// Expected ciphertext (32(du·k + dv) bytes, hex).")
    print("    pub ct_hex: &'static str,")
    print("    /// Expected shared secret (32 bytes, hex).")
    print("    pub shared_hex: &'static str,")
    print("    /// Ciphertext byte index XORed with 0x01 for the rejection case.")
    print("    pub tamper_index: usize,")
    print("    /// Expected implicit-rejection secret J(z ‖ ct′) (32 bytes, hex).")
    print("    pub rejection_hex: &'static str,")
    print("}")
    print()
    print("/// Two vectors per FIPS 203 parameter set, seeds derived from")
    print("/// SHA3-256 of a fixed label.")
    print("pub const ML_KEM_VECTORS: &[MlKemVector] = &[")
    for params in PARAM_SETS:
        name, k, eta1, eta2, du, dv = params
        for index in range(2):
            d_seed = seed32(f"{name} d {index}")
            z = seed32(f"{name} z {index}")
            m = seed32(f"{name} m {index}")
            ek, dk = ml_kem_keygen(k, eta1, d_seed, z)
            assert len(ek) == 384 * k + 32 and len(dk) == 768 * k + 96
            ct, shared = ml_kem_encaps(params, ek, m)
            assert len(ct) == 32 * (du * k + dv)
            # Internal consistency before emission.
            assert ml_kem_decaps(params, dk, ct) == shared, name
            tampered = bytearray(ct)
            tampered[TAMPER_INDEX] ^= 0x01
            tampered = bytes(tampered)
            rejection = hashlib.shake_256(z + tampered).digest(32)
            assert ml_kem_decaps(params, dk, tampered) == rejection, name
            assert rejection != shared, name
            print("    MlKemVector {")
            print(f'        set: "{name}",')
            print(f"        k: {k},")
            print(f'        d_hex: "{d_seed.hex()}",')
            print(f'        z_hex: "{z.hex()}",')
            print(f'        m_hex: "{m.hex()}",')
            print(f'        ek_hex: "{ek.hex()}",')
            print(f'        dk_hex: "{dk.hex()}",')
            print(f'        ct_hex: "{ct.hex()}",')
            print(f'        shared_hex: "{shared.hex()}",')
            print(f"        tamper_index: {TAMPER_INDEX},")
            print(f'        rejection_hex: "{rejection.hex()}",')
            print("    },")
    print("];")


if __name__ == "__main__":
    emit()
