//! Tables used by the Keccak-f\[1600\] permutation.
//!
//! The values reproduce paper Table 2 (ρ rotation offsets) and paper
//! Table 6 (ι round constants), which in turn match FIPS 202.

/// Number of rounds of Keccak-f\[1600\].
pub const ROUNDS: usize = 24;

/// Lane width in bits.
pub const LANE_BITS: u32 = 64;

/// Number of lanes per plane (and planes per state).
pub const PLANE_LANES: usize = 5;

/// Total number of 64-bit lanes in the state.
pub const STATE_LANES: usize = 25;

/// State width in bits.
pub const STATE_BITS: usize = 1600;

/// State width in bytes.
pub const STATE_BYTES: usize = STATE_BITS / 8;

/// Round constants for the ι step mapping (paper Table 6).
///
/// `RC[i]` is XORed into lane (0, 0) in round `i`.
pub const RC: [u64; ROUNDS] = [
    0x0000000000000001,
    0x0000000000008082,
    0x800000000000808A,
    0x8000000080008000,
    0x000000000000808B,
    0x0000000080000001,
    0x8000000080008081,
    0x8000000000008009,
    0x000000000000008A,
    0x0000000000000088,
    0x0000000080008009,
    0x000000008000000A,
    0x000000008000808B,
    0x800000000000008B,
    0x8000000000008089,
    0x8000000000008003,
    0x8000000000008002,
    0x8000000000000080,
    0x000000000000800A,
    0x800000008000000A,
    0x8000000080008081,
    0x8000000000008080,
    0x0000000080000001,
    0x8000000080008008,
];

/// ρ rotation offsets indexed as `RHO_OFFSETS[y][x]` (paper Table 2).
///
/// Lane (x, y) is rotated left by `RHO_OFFSETS[y][x]` bit positions in the
/// ρ step mapping. Row `y` corresponds to one *plane* — the unit the SIMD
/// processor's `v64rho` / `v32lrho` / `v32hrho` custom instructions operate
/// on, with the row selected either by the instruction immediate or by the
/// hardware `lmul_cnt` counter.
pub const RHO_OFFSETS: [[u32; PLANE_LANES]; PLANE_LANES] = [
    [0, 1, 62, 28, 27],
    [36, 44, 6, 55, 20],
    [3, 10, 43, 25, 39],
    [41, 45, 15, 21, 8],
    [18, 2, 61, 56, 14],
];

/// Round constants split for the 32-bit architecture: the low 32-bit words
/// of `RC[0..24]` followed by the high 32-bit words (`RC_SPLIT[24 + i]`).
///
/// The 32-bit `viota` program issues the instruction twice per round: once
/// with index `i` (low half of every state's lane (0,0)) and once with
/// index `24 + i` (high half). See paper §3.3 "Vector ι instruction".
pub const RC_SPLIT: [u32; 2 * ROUNDS] = {
    let mut table = [0u32; 2 * ROUNDS];
    let mut i = 0;
    while i < ROUNDS {
        table[i] = RC[i] as u32;
        table[ROUNDS + i] = (RC[i] >> 32) as u32;
        i += 1;
    }
    table
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rc_first_and_last_match_fips202() {
        assert_eq!(RC[0], 1);
        assert_eq!(RC[23], 0x8000000080008008);
    }

    #[test]
    fn rc_can_be_regenerated_from_lfsr() {
        // FIPS 202 §3.2.5: RC[i] = sum over j of rc(j + 7i) << (2^j - 1),
        // where rc(t) is an LFSR over GF(2) with polynomial x^8+x^6+x^5+x^4+1.
        fn rc_bit(t: usize) -> u64 {
            let mut r: u16 = 1;
            for _ in 0..t % 255 {
                r <<= 1;
                if r & 0x100 != 0 {
                    r ^= 0x171;
                }
            }
            (r & 1) as u64
        }
        for (i, &expected) in RC.iter().enumerate() {
            let mut rc = 0u64;
            for j in 0..7 {
                rc |= rc_bit(j + 7 * i) << ((1usize << j) - 1);
            }
            assert_eq!(rc, expected, "round constant {i}");
        }
    }

    #[test]
    fn rho_offsets_can_be_regenerated() {
        // FIPS 202 §3.2.2: starting from (x, y) = (1, 0), offset for step t
        // is (t+1)(t+2)/2 mod 64, then (x, y) <- (y, (2x + 3y) mod 5).
        let mut expected = [[0u32; 5]; 5];
        let (mut x, mut y) = (1usize, 0usize);
        for t in 0..24u32 {
            expected[y][x] = ((t + 1) * (t + 2) / 2) % 64;
            let (nx, ny) = (y, (2 * x + 3 * y) % 5);
            x = nx;
            y = ny;
        }
        assert_eq!(RHO_OFFSETS, expected);
    }

    #[test]
    fn rc_split_round_trips() {
        for i in 0..ROUNDS {
            let rebuilt = (RC_SPLIT[i] as u64) | ((RC_SPLIT[ROUNDS + i] as u64) << 32);
            assert_eq!(rebuilt, RC[i]);
        }
    }
}
