//! Reference implementation of the Keccak-f\[1600\] permutation.
//!
//! This crate is the correctness oracle for the `keccak-rvv` workspace: a
//! straightforward, well-tested software implementation of the permutation
//! that underlies every SHA-3 hash function, written to mirror the
//! *plane-per-plane* formulation of Li, Mentens and Picek (DATE 2023,
//! Algorithm 1). The vectorized kernels executed on the simulated SIMD
//! processor (`krv-core` / `krv-vproc`) are validated lane-for-lane against
//! this crate, including after every individual step mapping.
//!
//! # Layout
//!
//! * [`KeccakState`] — the 5 × 5 × 64-bit state array with the paper's
//!   `(x, y)` lane indexing and FIPS-202 byte serialization.
//! * [`permutation`] — the full 24-round permutation and per-round entry
//!   points.
//! * [`steps`] — the five step mappings θ, ρ, π, χ, ι as separate functions
//!   with the paper's intermediate values exposed for cross-validation.
//! * [`constants`] — round constants (paper Table 6) and ρ rotation offsets
//!   (paper Table 2).
//! * [`interleave`] — 64-bit ↔ 2 × 32-bit lane splitting utilities used by
//!   the 32-bit architecture (high/low split) plus classic bit interleaving.
//!
//! # Example
//!
//! ```
//! use krv_keccak::{KeccakState, permutation::keccak_f1600};
//!
//! let mut state = KeccakState::new();
//! keccak_f1600(&mut state);
//! assert_eq!(state.lane(0, 0), 0xF1258F7940E1DDE7);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod constants;
pub mod interleave;
pub mod permutation;
pub mod state;
pub mod steps;

pub use constants::{RC, RHO_OFFSETS};
pub use permutation::{keccak_f1600, keccak_f1600_rounds};
pub use state::{KeccakState, Plane};
