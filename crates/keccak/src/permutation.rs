//! The full Keccak-f\[1600\] permutation.

use crate::constants::ROUNDS;
use crate::state::KeccakState;
use crate::steps;

/// Applies the full 24-round Keccak-f\[1600\] permutation in place.
///
/// # Example
///
/// ```
/// use krv_keccak::{KeccakState, keccak_f1600};
///
/// let mut state = KeccakState::new();
/// keccak_f1600(&mut state);
/// assert_ne!(state, KeccakState::new());
/// ```
pub fn keccak_f1600(state: &mut KeccakState) {
    keccak_f1600_rounds(state, 0, ROUNDS);
}

/// Applies rounds `first..first + count` of the permutation in place.
///
/// Useful for validating partially-executed vector kernels against the
/// reference at round granularity.
///
/// # Panics
///
/// Panics if `first + count > 24`.
pub fn keccak_f1600_rounds(state: &mut KeccakState, first: usize, count: usize) {
    assert!(
        first + count <= ROUNDS,
        "rounds {first}..{} exceed the 24-round permutation",
        first + count
    );
    for round in first..first + count {
        *state = steps::round(state, round);
    }
}

/// Returns the permutation of `state` without mutating the input.
pub fn keccak_f1600_owned(state: &KeccakState) -> KeccakState {
    let mut out = *state;
    keccak_f1600(&mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Known-answer vector: Keccak-f[1600] applied once to the all-zero
    /// state (Keccak team reference intermediate values).
    const AFTER_ONE_PERMUTATION: [u64; 25] = [
        0xF1258F7940E1DDE7,
        0x84D5CCF933C0478A,
        0xD598261EA65AA9EE,
        0xBD1547306F80494D,
        0x8B284E056253D057,
        0xFF97A42D7F8E6FD4,
        0x90FEE5A0A44647C4,
        0x8C5BDA0CD6192E76,
        0xAD30A6F71B19059C,
        0x30935AB7D08FFC64,
        0xEB5AA93F2317D635,
        0xA9A6E6260D712103,
        0x81A57C16DBCF555F,
        0x43B831CD0347C826,
        0x01F22F1A11A5569F,
        0x05E5635A21D9AE61,
        0x64BEFEF28CC970F2,
        0x613670957BC46611,
        0xB87C5A554FD00ECB,
        0x8C3EE88A1CCF32C8,
        0x940C7922AE3A2614,
        0x1841F924A2C509E4,
        0x16F53526E70465C2,
        0x75F644E97F30A13B,
        0xEAF1FF7B5CECA249,
    ];

    /// Known-answer vector: second application (Keccak team reference).
    const AFTER_TWO_PERMUTATIONS: [u64; 25] = [
        0x2D5C954DF96ECB3C,
        0x6A332CD07057B56D,
        0x093D8D1270D76B6C,
        0x8A20D9B25569D094,
        0x4F9C4F99E5E7F156,
        0xF957B9A2DA65FB38,
        0x85773DAE1275AF0D,
        0xFAF4F247C3D810F7,
        0x1F1B9EE6F79A8759,
        0xE4FECC0FEE98B425,
        0x68CE61B6B9CE68A1,
        0xDEEA66C4BA8F974F,
        0x33C43D836EAFB1F5,
        0xE00654042719DBD9,
        0x7CF8A9F009831265,
        0xFD5449A6BF174743,
        0x97DDAD33D8994B40,
        0x48EAD5FC5D0BE774,
        0xE3B8C8EE55B7B03C,
        0x91A0226E649E42E9,
        0x900E3129E7BADD7B,
        0x202A9EC5FAA3CCE8,
        0x5B3402464E1C3DB6,
        0x609F4E62A44C1059,
        0x20D06CD26A8FBF5C,
    ];

    #[test]
    fn zero_state_known_answer_one_permutation() {
        let mut state = KeccakState::new();
        keccak_f1600(&mut state);
        assert_eq!(state.into_lanes(), AFTER_ONE_PERMUTATION);
    }

    #[test]
    fn zero_state_known_answer_two_permutations() {
        let mut state = KeccakState::new();
        keccak_f1600(&mut state);
        keccak_f1600(&mut state);
        assert_eq!(state.into_lanes(), AFTER_TWO_PERMUTATIONS);
    }

    #[test]
    fn rounds_compose() {
        let mut lanes = [0u64; 25];
        for (i, lane) in lanes.iter_mut().enumerate() {
            *lane = (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        }
        let mut split = KeccakState::from_lanes(lanes);
        keccak_f1600_rounds(&mut split, 0, 10);
        keccak_f1600_rounds(&mut split, 10, 14);
        let mut whole = KeccakState::from_lanes(lanes);
        keccak_f1600(&mut whole);
        assert_eq!(split, whole);
    }

    #[test]
    fn owned_matches_in_place() {
        let mut lanes = [0u64; 25];
        lanes[7] = 0x1234;
        let state = KeccakState::from_lanes(lanes);
        let owned = keccak_f1600_owned(&state);
        let mut in_place = state;
        keccak_f1600(&mut in_place);
        assert_eq!(owned, in_place);
    }

    #[test]
    #[should_panic(expected = "exceed the 24-round permutation")]
    fn rounds_bounds_checked() {
        let mut state = KeccakState::new();
        keccak_f1600_rounds(&mut state, 20, 5);
    }
}
