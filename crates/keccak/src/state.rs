//! The Keccak state array and its plane-wise partitioning.

use crate::constants::{PLANE_LANES, STATE_BYTES, STATE_LANES};
use core::fmt;

/// One plane of the Keccak state: the five lanes sharing a `y` coordinate.
///
/// `Plane` is the unit of work of the paper's vectorization — one plane
/// occupies (a 5-element region of) one vector register, so the custom
/// instructions operate on whole planes at a time. `plane[x]` is lane
/// (x, y) for the plane's row `y`.
pub type Plane = [u64; PLANE_LANES];

/// The 1600-bit Keccak state, viewed as 25 lanes of 64 bits.
///
/// Lanes are addressed as `(x, y)` with `0 ≤ x, y < 5`, exactly as in the
/// paper's Algorithm 1: `x` is the position within a plane (the element
/// index in a vector register) and `y` selects the plane (the vector
/// register). Internally lanes are stored in FIPS-202 order, index
/// `x + 5 * y`, which is also the serialization order of the sponge.
///
/// # Example
///
/// ```
/// use krv_keccak::KeccakState;
///
/// let mut state = KeccakState::new();
/// state.set_lane(3, 1, 0xDEAD_BEEF);
/// assert_eq!(state.lane(3, 1), 0xDEAD_BEEF);
/// assert_eq!(state.plane(1)[3], 0xDEAD_BEEF);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct KeccakState {
    lanes: [u64; STATE_LANES],
}

impl KeccakState {
    /// Creates an all-zero state.
    pub const fn new() -> Self {
        Self {
            lanes: [0; STATE_LANES],
        }
    }

    /// Creates a state from lanes in FIPS-202 order (`x + 5 * y`).
    pub const fn from_lanes(lanes: [u64; STATE_LANES]) -> Self {
        Self { lanes }
    }

    /// Returns the lanes in FIPS-202 order (`x + 5 * y`).
    pub const fn into_lanes(self) -> [u64; STATE_LANES] {
        self.lanes
    }

    /// Returns the lanes as a slice in FIPS-202 order.
    pub fn lanes(&self) -> &[u64; STATE_LANES] {
        &self.lanes
    }

    /// Returns lane (x, y).
    ///
    /// # Panics
    ///
    /// Panics if `x ≥ 5` or `y ≥ 5`.
    #[inline]
    pub fn lane(&self, x: usize, y: usize) -> u64 {
        assert!(
            x < PLANE_LANES && y < PLANE_LANES,
            "lane index out of range"
        );
        self.lanes[x + PLANE_LANES * y]
    }

    /// Sets lane (x, y) to `value`.
    ///
    /// # Panics
    ///
    /// Panics if `x ≥ 5` or `y ≥ 5`.
    #[inline]
    pub fn set_lane(&mut self, x: usize, y: usize, value: u64) {
        assert!(
            x < PLANE_LANES && y < PLANE_LANES,
            "lane index out of range"
        );
        self.lanes[x + PLANE_LANES * y] = value;
    }

    /// XORs `value` into lane (x, y).
    ///
    /// # Panics
    ///
    /// Panics if `x ≥ 5` or `y ≥ 5`.
    #[inline]
    pub fn xor_lane(&mut self, x: usize, y: usize, value: u64) {
        assert!(
            x < PLANE_LANES && y < PLANE_LANES,
            "lane index out of range"
        );
        self.lanes[x + PLANE_LANES * y] ^= value;
    }

    /// Returns plane `y` (the five lanes with that row coordinate).
    ///
    /// # Panics
    ///
    /// Panics if `y ≥ 5`.
    pub fn plane(&self, y: usize) -> Plane {
        assert!(y < PLANE_LANES, "plane index out of range");
        let mut plane = [0u64; PLANE_LANES];
        plane.copy_from_slice(&self.lanes[PLANE_LANES * y..PLANE_LANES * (y + 1)]);
        plane
    }

    /// Overwrites plane `y`.
    ///
    /// # Panics
    ///
    /// Panics if `y ≥ 5`.
    pub fn set_plane(&mut self, y: usize, plane: Plane) {
        assert!(y < PLANE_LANES, "plane index out of range");
        self.lanes[PLANE_LANES * y..PLANE_LANES * (y + 1)].copy_from_slice(&plane);
    }

    /// Returns the five planes, `planes()[y][x]` = lane (x, y).
    pub fn planes(&self) -> [Plane; PLANE_LANES] {
        [
            self.plane(0),
            self.plane(1),
            self.plane(2),
            self.plane(3),
            self.plane(4),
        ]
    }

    /// Builds a state from five planes (`planes[y][x]` = lane (x, y)).
    pub fn from_planes(planes: [Plane; PLANE_LANES]) -> Self {
        let mut state = Self::new();
        for (y, plane) in planes.iter().enumerate() {
            state.set_plane(y, *plane);
        }
        state
    }

    /// Serializes the state to 200 bytes in FIPS-202 order: lanes in
    /// `x + 5 * y` order, each lane little-endian.
    pub fn to_bytes(&self) -> [u8; STATE_BYTES] {
        let mut bytes = [0u8; STATE_BYTES];
        for (i, lane) in self.lanes.iter().enumerate() {
            bytes[8 * i..8 * (i + 1)].copy_from_slice(&lane.to_le_bytes());
        }
        bytes
    }

    /// Deserializes a state from 200 bytes in FIPS-202 order.
    pub fn from_bytes(bytes: &[u8; STATE_BYTES]) -> Self {
        let mut lanes = [0u64; STATE_LANES];
        for (i, lane) in lanes.iter_mut().enumerate() {
            let mut chunk = [0u8; 8];
            chunk.copy_from_slice(&bytes[8 * i..8 * (i + 1)]);
            *lane = u64::from_le_bytes(chunk);
        }
        Self { lanes }
    }

    /// XORs up to 200 `bytes` into the front of the state, as the sponge
    /// absorbing phase does with one rate-sized block.
    ///
    /// # Panics
    ///
    /// Panics if `bytes.len() > 200`.
    pub fn xor_bytes(&mut self, bytes: &[u8]) {
        assert!(bytes.len() <= STATE_BYTES, "block larger than the state");
        for (i, &byte) in bytes.iter().enumerate() {
            self.lanes[i / 8] ^= (byte as u64) << (8 * (i % 8));
        }
    }

    /// Copies the first `len` bytes of the state into a vector, as the
    /// sponge squeezing phase does.
    ///
    /// # Panics
    ///
    /// Panics if `len > 200`.
    pub fn extract_bytes(&self, len: usize) -> Vec<u8> {
        assert!(len <= STATE_BYTES, "cannot extract more than the state");
        self.to_bytes()[..len].to_vec()
    }
}

impl From<[u64; STATE_LANES]> for KeccakState {
    fn from(lanes: [u64; STATE_LANES]) -> Self {
        Self::from_lanes(lanes)
    }
}

impl From<KeccakState> for [u64; STATE_LANES] {
    fn from(state: KeccakState) -> Self {
        state.into_lanes()
    }
}

impl AsRef<[u64; STATE_LANES]> for KeccakState {
    fn as_ref(&self) -> &[u64; STATE_LANES] {
        &self.lanes
    }
}

impl fmt::Debug for KeccakState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "KeccakState {{")?;
        for y in 0..PLANE_LANES {
            write!(f, "  y={y}:")?;
            for x in 0..PLANE_LANES {
                write!(f, " {:016X}", self.lane(x, y))?;
            }
            writeln!(f)?;
        }
        write!(f, "}}")
    }
}

impl fmt::Display for KeccakState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counting_state() -> KeccakState {
        let mut lanes = [0u64; STATE_LANES];
        for (i, lane) in lanes.iter_mut().enumerate() {
            *lane = i as u64 * 0x0101_0101_0101_0101;
        }
        KeccakState::from_lanes(lanes)
    }

    #[test]
    fn lane_indexing_matches_flat_order() {
        let state = counting_state();
        for y in 0..5 {
            for x in 0..5 {
                assert_eq!(state.lane(x, y), (x + 5 * y) as u64 * 0x0101_0101_0101_0101);
            }
        }
    }

    #[test]
    fn planes_round_trip() {
        let state = counting_state();
        let rebuilt = KeccakState::from_planes(state.planes());
        assert_eq!(state, rebuilt);
    }

    #[test]
    fn bytes_round_trip() {
        let state = counting_state();
        let rebuilt = KeccakState::from_bytes(&state.to_bytes());
        assert_eq!(state, rebuilt);
    }

    #[test]
    fn byte_serialization_is_little_endian_lane_order() {
        let mut state = KeccakState::new();
        state.set_lane(1, 0, 0x1122_3344_5566_7788);
        let bytes = state.to_bytes();
        // Lane (1, 0) is the second lane: bytes 8..16, little-endian.
        assert_eq!(
            &bytes[8..16],
            &[0x88, 0x77, 0x66, 0x55, 0x44, 0x33, 0x22, 0x11]
        );
    }

    #[test]
    fn xor_bytes_affects_prefix_only() {
        let mut state = KeccakState::new();
        state.xor_bytes(&[0xFF; 9]);
        assert_eq!(state.lane(0, 0), u64::MAX);
        assert_eq!(state.lane(1, 0), 0xFF);
        assert_eq!(state.lane(2, 0), 0);
    }

    #[test]
    fn extract_bytes_prefix() {
        let state = counting_state();
        let bytes = state.extract_bytes(17);
        assert_eq!(bytes.len(), 17);
        assert_eq!(&bytes[..], &state.to_bytes()[..17]);
    }

    #[test]
    #[should_panic(expected = "lane index out of range")]
    fn lane_bounds_checked() {
        let state = KeccakState::new();
        let _ = state.lane(5, 0);
    }

    #[test]
    fn debug_is_never_empty() {
        assert!(!format!("{:?}", KeccakState::new()).is_empty());
    }
}
