//! Lane-splitting utilities for 32-bit representations of the state.
//!
//! The paper's 32-bit architecture (§3.2) stores each 64-bit lane as two
//! 32-bit words: the least-significant half in vector registers 0–4 and
//! the most-significant half in registers 16–20 (paper Figure 6). This
//! module provides that **high/low split** plus the classic **bit
//! interleaving** technique the paper discusses (odd bits in one word,
//! even bits in the other), which it deliberately avoids to skip the
//! pre-/post-processing cost.

/// Splits a 64-bit lane into `(low, high)` 32-bit words.
///
/// This is the representation of the paper's 32-bit architecture.
#[inline]
pub const fn split_lane(lane: u64) -> (u32, u32) {
    (lane as u32, (lane >> 32) as u32)
}

/// Rebuilds a 64-bit lane from `(low, high)` 32-bit words.
#[inline]
pub const fn join_lane(low: u32, high: u32) -> u64 {
    (low as u64) | ((high as u64) << 32)
}

/// Rotates the 64-bit concatenation `high ‖ low` left by `n` and returns
/// the split result `(low, high)`.
///
/// This is the operation implemented in hardware by the paper's
/// `v32lrotup` / `v32hrotup` (fixed n = 1) and `v32lrho` / `v32hrho`
/// (table-driven n) custom instructions.
#[inline]
pub const fn rotate_split(low: u32, high: u32, n: u32) -> (u32, u32) {
    split_lane(join_lane(low, high).rotate_left(n))
}

/// Bit-interleaves a 64-bit lane: even-indexed bits into the first word,
/// odd-indexed bits into the second.
///
/// Classic technique for 32-bit Keccak implementations (e.g. the PQ-M4
/// C code): a 64-bit rotation by `2k` becomes two 32-bit rotations by `k`.
/// The paper chooses the high/low split instead because interleaving
/// requires this transform before and after every permutation when SHA-3
/// interoperates with other code.
pub fn interleave(lane: u64) -> (u32, u32) {
    let mut even = 0u32;
    let mut odd = 0u32;
    for i in 0..32 {
        even |= (((lane >> (2 * i)) & 1) as u32) << i;
        odd |= (((lane >> (2 * i + 1)) & 1) as u32) << i;
    }
    (even, odd)
}

/// Inverse of [`interleave`].
pub fn deinterleave(even: u32, odd: u32) -> u64 {
    let mut lane = 0u64;
    for i in 0..32 {
        lane |= (((even >> i) & 1) as u64) << (2 * i);
        lane |= (((odd >> i) & 1) as u64) << (2 * i + 1);
    }
    lane
}

/// Rotates an interleaved pair left by `n` (as if the 64-bit lane had been
/// rotated), demonstrating the interleaving advantage: only 32-bit
/// rotations are required.
pub fn rotate_interleaved(even: u32, odd: u32, n: u32) -> (u32, u32) {
    let n = n % 64;
    if n.is_multiple_of(2) {
        (even.rotate_left(n / 2), odd.rotate_left(n / 2))
    } else {
        // Odd rotation swaps the roles of the even/odd words.
        (odd.rotate_left(n / 2 + 1), even.rotate_left(n / 2))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLES: [u64; 6] = [
        0,
        u64::MAX,
        0x0123_4567_89AB_CDEF,
        0x8000_0000_0000_0001,
        0xAAAA_AAAA_5555_5555,
        0xDEAD_BEEF_CAFE_F00D,
    ];

    #[test]
    fn split_join_round_trip() {
        for &lane in &SAMPLES {
            let (lo, hi) = split_lane(lane);
            assert_eq!(join_lane(lo, hi), lane);
        }
    }

    #[test]
    fn rotate_split_matches_u64_rotate() {
        for &lane in &SAMPLES {
            for n in [0, 1, 31, 32, 33, 63] {
                let (lo, hi) = split_lane(lane);
                let (rlo, rhi) = rotate_split(lo, hi, n);
                assert_eq!(join_lane(rlo, rhi), lane.rotate_left(n));
            }
        }
    }

    #[test]
    fn interleave_round_trip() {
        for &lane in &SAMPLES {
            let (even, odd) = interleave(lane);
            assert_eq!(deinterleave(even, odd), lane);
        }
    }

    #[test]
    fn interleave_of_alternating_pattern() {
        // 0b...0101 has all even bits set: even word = all ones, odd = 0.
        let (even, odd) = interleave(0x5555_5555_5555_5555);
        assert_eq!(even, u32::MAX);
        assert_eq!(odd, 0);
    }

    #[test]
    fn rotate_interleaved_matches_u64_rotate() {
        for &lane in &SAMPLES {
            for n in 0..64 {
                let (even, odd) = interleave(lane);
                let (re, ro) = rotate_interleaved(even, odd, n);
                assert_eq!(
                    deinterleave(re, ro),
                    lane.rotate_left(n),
                    "lane {lane:#X} rotate {n}"
                );
            }
        }
    }
}
