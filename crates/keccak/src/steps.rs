//! The five Keccak step mappings in the paper's plane-per-plane form.
//!
//! Each function implements one step mapping of paper Algorithm 1 as a pure
//! state-to-state transformation. [`RoundTrace`] additionally records the
//! state after every step, which the integration tests use to validate the
//! simulated vector kernels step-by-step (not just end-to-end).

use crate::constants::{PLANE_LANES, RC, RHO_OFFSETS};
use crate::state::KeccakState;

/// θ step mapping: linear diffusion.
///
/// Computes column parities `B[x] = ⊕_y A[x, y]`, combines adjacent
/// parities `C[x] = B[(x−1) mod 5] ⊕ ROTL(B[(x+1) mod 5], 1)` and XORs
/// `C[x]` into every lane of column `x` (paper Algorithm 1, step 1).
pub fn theta(state: &KeccakState) -> KeccakState {
    let mut b = [0u64; PLANE_LANES];
    for (x, parity) in b.iter_mut().enumerate() {
        for y in 0..PLANE_LANES {
            *parity ^= state.lane(x, y);
        }
    }
    let mut c = [0u64; PLANE_LANES];
    for (x, combined) in c.iter_mut().enumerate() {
        *combined = b[(x + 4) % PLANE_LANES] ^ b[(x + 1) % PLANE_LANES].rotate_left(1);
    }
    let mut out = *state;
    for y in 0..PLANE_LANES {
        for (x, &cx) in c.iter().enumerate() {
            out.xor_lane(x, y, cx);
        }
    }
    out
}

/// ρ step mapping: inter-slice dispersion.
///
/// Rotates lane (x, y) left by `RHO_OFFSETS[y][x]` (paper Table 2).
pub fn rho(state: &KeccakState) -> KeccakState {
    let mut out = KeccakState::new();
    for y in 0..PLANE_LANES {
        for x in 0..PLANE_LANES {
            out.set_lane(x, y, state.lane(x, y).rotate_left(RHO_OFFSETS[y][x]));
        }
    }
    out
}

/// π step mapping: lane scramble.
///
/// `F[x, y] = E[(x + 3y) mod 5, x]` (paper Algorithm 1, step 3).
pub fn pi(state: &KeccakState) -> KeccakState {
    let mut out = KeccakState::new();
    for y in 0..PLANE_LANES {
        for x in 0..PLANE_LANES {
            out.set_lane(x, y, state.lane((x + 3 * y) % PLANE_LANES, x));
        }
    }
    out
}

/// χ step mapping: the only non-linear step.
///
/// `H[x, y] = F[x, y] ⊕ (¬F[(x+1) mod 5, y] ∧ F[(x+2) mod 5, y])`
/// (paper Algorithm 1, step 4).
pub fn chi(state: &KeccakState) -> KeccakState {
    let mut out = KeccakState::new();
    for y in 0..PLANE_LANES {
        for x in 0..PLANE_LANES {
            let f0 = state.lane(x, y);
            let f1 = state.lane((x + 1) % PLANE_LANES, y);
            let f2 = state.lane((x + 2) % PLANE_LANES, y);
            out.set_lane(x, y, f0 ^ (!f1 & f2));
        }
    }
    out
}

/// ι step mapping: symmetry breaking.
///
/// XORs the round constant `RC[round]` into lane (0, 0) (paper Table 6).
///
/// # Panics
///
/// Panics if `round ≥ 24`.
pub fn iota(state: &KeccakState, round: usize) -> KeccakState {
    assert!(round < RC.len(), "round index out of range");
    let mut out = *state;
    out.xor_lane(0, 0, RC[round]);
    out
}

/// Applies one full round: θ, ρ, π, χ, ι.
///
/// # Panics
///
/// Panics if `round ≥ 24`.
pub fn round(state: &KeccakState, round: usize) -> KeccakState {
    iota(&chi(&pi(&rho(&theta(state)))), round)
}

/// The state after each step mapping of one round, in application order.
///
/// Field names follow the intermediate values of paper Algorithm 1:
/// θ produces `D`, ρ produces `E`, π produces `F`, χ produces `H` (before
/// ι), and ι produces the final round output.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RoundTrace {
    /// State after θ (paper's `D`).
    pub after_theta: KeccakState,
    /// State after ρ (paper's `E`).
    pub after_rho: KeccakState,
    /// State after π (paper's `F`).
    pub after_pi: KeccakState,
    /// State after χ (paper's `H` before the round constant).
    pub after_chi: KeccakState,
    /// State after ι — the round output.
    pub after_iota: KeccakState,
}

impl RoundTrace {
    /// Runs one round of the permutation, capturing every intermediate
    /// state.
    ///
    /// # Panics
    ///
    /// Panics if `round ≥ 24`.
    pub fn capture(state: &KeccakState, round: usize) -> Self {
        let after_theta = theta(state);
        let after_rho = rho(&after_theta);
        let after_pi = pi(&after_rho);
        let after_chi = chi(&after_pi);
        let after_iota = iota(&after_chi, round);
        Self {
            after_theta,
            after_rho,
            after_pi,
            after_chi,
            after_iota,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_state() -> KeccakState {
        let mut lanes = [0u64; 25];
        let mut seed = 0x0123_4567_89AB_CDEFu64;
        for lane in lanes.iter_mut() {
            // Simple xorshift; deterministic sample data.
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            *lane = seed;
        }
        KeccakState::from_lanes(lanes)
    }

    #[test]
    fn theta_preserves_column_parity_structure() {
        // After θ, every column parity equals the original parity of the
        // two neighbour columns' combination; a simpler invariant: applying
        // θ twice is not identity, but θ is linear: θ(a ⊕ b) = θ(a) ⊕ θ(b).
        let a = sample_state();
        let mut b_lanes = a.into_lanes();
        b_lanes.reverse();
        let b = KeccakState::from_lanes(b_lanes);
        let mut xor_lanes = [0u64; 25];
        for (i, lane) in xor_lanes.iter_mut().enumerate() {
            *lane = a.lanes()[i] ^ b.lanes()[i];
        }
        let ab = KeccakState::from_lanes(xor_lanes);
        let lhs = theta(&ab);
        let (ta, tb) = (theta(&a), theta(&b));
        for i in 0..25 {
            assert_eq!(lhs.lanes()[i], ta.lanes()[i] ^ tb.lanes()[i]);
        }
    }

    #[test]
    fn theta_on_zero_state_is_identity() {
        assert_eq!(theta(&KeccakState::new()), KeccakState::new());
    }

    #[test]
    fn rho_leaves_lane_00_unrotated() {
        let state = sample_state();
        assert_eq!(rho(&state).lane(0, 0), state.lane(0, 0));
    }

    #[test]
    fn rho_rotates_lane_10_by_one() {
        let state = sample_state();
        assert_eq!(rho(&state).lane(1, 0), state.lane(1, 0).rotate_left(1));
    }

    #[test]
    fn rho_preserves_popcount() {
        let state = sample_state();
        let before: u32 = state.lanes().iter().map(|l| l.count_ones()).sum();
        let after: u32 = rho(&state).lanes().iter().map(|l| l.count_ones()).sum();
        assert_eq!(before, after);
    }

    #[test]
    fn pi_is_a_permutation_of_lanes() {
        let state = sample_state();
        let out = pi(&state);
        let mut before: Vec<u64> = state.lanes().to_vec();
        let mut after: Vec<u64> = out.lanes().to_vec();
        before.sort_unstable();
        after.sort_unstable();
        assert_eq!(before, after);
    }

    #[test]
    fn pi_has_order_24() {
        // The π lane permutation fixes (0,0) and cycles the other 24 lanes;
        // applying it 24 times must return to the start.
        let state = sample_state();
        let mut cur = state;
        for _ in 0..24 {
            cur = pi(&cur);
        }
        assert_eq!(cur, state);
        // And no smaller power of π that divides 24 except 24 itself works.
        let mut cur = state;
        for i in 1..24 {
            cur = pi(&cur);
            assert_ne!(cur, state, "π had order {i}");
        }
    }

    #[test]
    fn chi_is_an_involution_on_rows_of_equal_lanes() {
        // If all lanes in a row are equal, ¬F ∧ F = 0 so χ is identity.
        let mut state = KeccakState::new();
        for y in 0..5 {
            for x in 0..5 {
                state.set_lane(x, y, 0xAAAA_5555_0F0F_F0F0 ^ (y as u64));
            }
        }
        assert_eq!(chi(&state), state);
    }

    #[test]
    fn iota_touches_only_lane_00() {
        let state = sample_state();
        let out = iota(&state, 7);
        assert_eq!(out.lane(0, 0), state.lane(0, 0) ^ RC[7]);
        for y in 0..5 {
            for x in 0..5 {
                if (x, y) != (0, 0) {
                    assert_eq!(out.lane(x, y), state.lane(x, y));
                }
            }
        }
    }

    #[test]
    fn round_trace_composes_to_round() {
        let state = sample_state();
        let trace = RoundTrace::capture(&state, 3);
        assert_eq!(trace.after_iota, round(&state, 3));
    }

    #[test]
    #[should_panic(expected = "round index out of range")]
    fn iota_round_bounds_checked() {
        let _ = iota(&KeccakState::new(), 24);
    }
}
