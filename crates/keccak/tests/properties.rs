//! Property-based tests of the Keccak step mappings and permutation.

use krv_keccak::constants::{RC, RHO_OFFSETS};
use krv_keccak::{keccak_f1600, steps, KeccakState};
use krv_testkit::{cases, Rng};

fn state(rng: &mut Rng) -> KeccakState {
    let mut lanes = [0u64; 25];
    for lane in lanes.iter_mut() {
        *lane = rng.next_u64();
    }
    KeccakState::from_lanes(lanes)
}

/// Inverse of χ on one 5-lane row, bit column by bit column: χ on a
/// 5-bit row `a` is `b[i] = a[i] ^ (!a[i+1] & a[i+2])`, which is
/// invertible for odd row length (Keccak reference, §"inverse of chi").
fn inv_chi_row(row: [u64; 5]) -> [u64; 5] {
    // Solve bit-sliced: for each of the 64 bit positions independently,
    // invert the 5-bit map by brute force (32 candidates).
    let mut out = [0u64; 5];
    for bit in 0..64 {
        let target: u32 = (0..5).map(|i| (((row[i] >> bit) & 1) as u32) << i).sum();
        let mut found = None;
        for candidate in 0u32..32 {
            let mut image = 0u32;
            for i in 0..5 {
                let a0 = (candidate >> i) & 1;
                let a1 = (candidate >> ((i + 1) % 5)) & 1;
                let a2 = (candidate >> ((i + 2) % 5)) & 1;
                image |= (a0 ^ ((a1 ^ 1) & a2)) << i;
            }
            if image == target {
                assert!(found.is_none(), "χ not injective on bit column");
                found = Some(candidate);
            }
        }
        let preimage = found.expect("χ is a bijection on 5-bit rows");
        for i in 0..5 {
            out[i] |= (((preimage >> i) & 1) as u64) << bit;
        }
    }
    out
}

#[test]
fn theta_is_linear() {
    cases(64, |rng| {
        let a = state(rng);
        let b = state(rng);
        let mut xored = [0u64; 25];
        for (i, lane) in xored.iter_mut().enumerate() {
            *lane = a.lanes()[i] ^ b.lanes()[i];
        }
        let sum = KeccakState::from_lanes(xored);
        let lhs = steps::theta(&sum);
        let (ta, tb) = (steps::theta(&a), steps::theta(&b));
        for i in 0..25 {
            assert_eq!(lhs.lanes()[i], ta.lanes()[i] ^ tb.lanes()[i]);
        }
    });
}

#[test]
fn rho_preserves_bit_count() {
    cases(64, |rng| {
        let s = state(rng);
        let before: u32 = s.lanes().iter().map(|l| l.count_ones()).sum();
        let after: u32 = steps::rho(&s).lanes().iter().map(|l| l.count_ones()).sum();
        assert_eq!(before, after);
    });
}

#[test]
fn rho_is_lanewise_rotation() {
    cases(64, |rng| {
        let s = state(rng);
        let out = steps::rho(&s);
        for y in 0..5 {
            for x in 0..5 {
                assert_eq!(out.lane(x, y), s.lane(x, y).rotate_left(RHO_OFFSETS[y][x]));
            }
        }
    });
}

#[test]
fn pi_preserves_multiset_of_lanes() {
    cases(64, |rng| {
        let s = state(rng);
        let mut before: Vec<u64> = s.lanes().to_vec();
        let mut after: Vec<u64> = steps::pi(&s).lanes().to_vec();
        before.sort_unstable();
        after.sort_unstable();
        assert_eq!(before, after);
    });
}

#[test]
fn chi_is_invertible_row_by_row() {
    cases(16, |rng| {
        let s = state(rng);
        let out = steps::chi(&s);
        for y in 0..5 {
            let row = [
                out.lane(0, y),
                out.lane(1, y),
                out.lane(2, y),
                out.lane(3, y),
                out.lane(4, y),
            ];
            let back = inv_chi_row(row);
            for x in 0..5 {
                assert_eq!(back[x], s.lane(x, y), "lane ({x}, {y})");
            }
        }
    });
}

#[test]
fn iota_is_an_involution() {
    cases(64, |rng| {
        let s = state(rng);
        let round = rng.below(24);
        let twice = steps::iota(&steps::iota(&s, round), round);
        assert_eq!(twice, s);
    });
}

#[test]
fn iota_only_touches_lane_zero() {
    cases(64, |rng| {
        let s = state(rng);
        let round = rng.below(24);
        let out = steps::iota(&s, round);
        assert_eq!(out.lane(0, 0), s.lane(0, 0) ^ RC[round]);
        for y in 0..5 {
            for x in 0..5 {
                if (x, y) != (0, 0) {
                    assert_eq!(out.lane(x, y), s.lane(x, y));
                }
            }
        }
    });
}

#[test]
fn permutation_differs_from_input() {
    cases(64, |rng| {
        // Keccak-f has no fixed points that random sampling would find;
        // equality would indicate the permutation degenerated.
        let s = state(rng);
        let mut out = s;
        keccak_f1600(&mut out);
        assert_ne!(out, s);
    });
}

#[test]
fn permutation_is_injective_on_pairs() {
    cases(64, |rng| {
        let a = state(rng);
        let b = state(rng);
        if a == b {
            return;
        }
        let (mut pa, mut pb) = (a, b);
        keccak_f1600(&mut pa);
        keccak_f1600(&mut pb);
        assert_ne!(pa, pb);
    });
}

#[test]
fn bytes_round_trip() {
    cases(64, |rng| {
        let s = state(rng);
        assert_eq!(KeccakState::from_bytes(&s.to_bytes()), s);
    });
}

#[test]
fn single_bit_flip_diffuses_widely() {
    cases(64, |rng| {
        // Avalanche: after the full permutation, flipping one input bit
        // changes a large fraction of the output (expected ~800 of 1600).
        let lane = rng.below(25);
        let bit = rng.below(64) as u32;
        let zero = KeccakState::new();
        let mut flipped_lanes = [0u64; 25];
        flipped_lanes[lane] = 1u64 << bit;
        let flipped = KeccakState::from_lanes(flipped_lanes);
        let mut p0 = zero;
        let mut p1 = flipped;
        keccak_f1600(&mut p0);
        keccak_f1600(&mut p1);
        let distance: u32 = p0
            .lanes()
            .iter()
            .zip(p1.lanes())
            .map(|(a, b)| (a ^ b).count_ones())
            .sum();
        assert!(
            (600..1000).contains(&distance),
            "hamming distance {distance}"
        );
    });
}

#[test]
fn round_equals_composition_of_steps() {
    let mut lanes = [0u64; 25];
    for (i, lane) in lanes.iter_mut().enumerate() {
        *lane = (i as u64 + 1).wrapping_mul(0x0101_0101_0101_0101);
    }
    let s = KeccakState::from_lanes(lanes);
    let composed = steps::iota(&steps::chi(&steps::pi(&steps::rho(&steps::theta(&s)))), 5);
    assert_eq!(steps::round(&s, 5), composed);
}
