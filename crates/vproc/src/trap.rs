//! Execution traps: conditions that stop the simulated processor.

use core::fmt;

/// A condition that aborts simulation with an error.
///
/// Real hardware would raise an exception; the simulator surfaces the
/// condition to the caller so tests can assert on it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Trap {
    /// Instruction fetch outside the loaded program.
    InstructionFetch {
        /// The out-of-range program counter.
        pc: u32,
    },
    /// Data access outside the data memory.
    MemoryAccess {
        /// Byte address of the access.
        addr: u32,
        /// Access size in bytes.
        size: u32,
    },
    /// Misaligned data access (the modelled Ibex core requires natural
    /// alignment).
    MisalignedAccess {
        /// Byte address of the access.
        addr: u32,
        /// Access size in bytes.
        size: u32,
    },
    /// A vector instruction was executed with an unsupported or
    /// inconsistent configuration (e.g. SEW wider than ELEN, or a custom
    /// instruction whose preconditions on VL do not hold).
    VectorConfig {
        /// Human-readable description of the violated precondition.
        reason: &'static str,
    },
    /// `viota` was given a round-constant index outside its ROM.
    RoundConstantIndex {
        /// The offending index.
        index: u32,
    },
    /// The cycle budget given to [`crate::Processor::run`] was exhausted
    /// before the program halted.
    CycleLimit {
        /// The budget that was exhausted.
        limit: u64,
    },
}

impl fmt::Display for Trap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Trap::InstructionFetch { pc } => write!(f, "instruction fetch at {pc:#010X}"),
            Trap::MemoryAccess { addr, size } => {
                write!(f, "out-of-bounds {size}-byte access at {addr:#010X}")
            }
            Trap::MisalignedAccess { addr, size } => {
                write!(f, "misaligned {size}-byte access at {addr:#010X}")
            }
            Trap::VectorConfig { reason } => write!(f, "vector configuration: {reason}"),
            Trap::RoundConstantIndex { index } => {
                write!(f, "round-constant index {index} outside ROM")
            }
            Trap::CycleLimit { limit } => write!(f, "cycle limit {limit} exhausted"),
        }
    }
}

impl std::error::Error for Trap {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let traps = [
            Trap::InstructionFetch { pc: 0x100 },
            Trap::MemoryAccess { addr: 4, size: 8 },
            Trap::MisalignedAccess { addr: 3, size: 4 },
            Trap::VectorConfig {
                reason: "SEW exceeds ELEN",
            },
            Trap::RoundConstantIndex { index: 99 },
            Trap::CycleLimit { limit: 1000 },
        ];
        for trap in traps {
            assert!(!trap.to_string().is_empty());
        }
    }
}
