//! The compiled-kernel execution tier: straight-line regions lowered to
//! specialized native micro-ops over the flat register file.
//!
//! The interpreted fused path ([`Processor::run`](crate::Processor::run)
//! with fusion on) still dispatches every instruction of a
//! [`FusedBlock`](crate::decoded::FusedBlock) through the full
//! [`Instruction`] match, re-resolves register groups to word ranges,
//! and re-proves operand aliasing on every execution — and it breaks at
//! every `vsetvli` and branch, so a Keccak round costs several block
//! dispatches plus a handful of individually stepped instructions.
//!
//! [`CompiledProgram`] instead lowers the **maximal straight-line
//! region** anchored at a PC, per *entry configuration* (`BlockCtx`),
//! into a flat sequence of `Op` micro-ops whose word indices, rotation
//! tables, π scatter segments and folded immediates are resolved at
//! compile time. Regions extend across everything the interpreter's
//! fusion refuses:
//!
//! * **`vsetvli`** stays inside the region. The lowering predicts the
//!   granted VL/`vtype` from the AVL register value observed at compile
//!   time and lowers downstream ops under the new configuration; at run
//!   time the op re-executes the real `vsetvli` and *guards* the
//!   prediction — on mismatch the region retires its exact prefix
//!   (including the `vsetvli`) and hands back to the interpreter, so a
//!   stale prediction costs speed, never correctness.
//! * **Conditional branches** terminate a region as a compiled op that
//!   resolves the direction, commits the matching (taken/not-taken)
//!   cycle cost and sets the PC — so a whole loop body, `vsetvli`s,
//!   custom Keccak steps and the back-edge included, is one dispatch.
//! * **Unlowerable instructions** (masked ops, partial group overlap,
//!   configurations the executors trap on, jumps, halts) *truncate* the
//!   region rather than refusing it: the prefix still runs compiled and
//!   the interpreter handles the rest. Only a region whose very first
//!   instruction is unlowerable is refused outright.
//!
//! Three invariants make the tier an execution fast path only, never a
//! semantic change:
//!
//! * **Refusal, not approximation** — any instruction whose compiled
//!   form cannot be proven bit-identical to the interpreter ends the
//!   region, and the interpreter reproduces the exact trap, panic or
//!   masked behaviour from the truncation point.
//! * **Cycle ledger** — each region carries per-op prefix sums of the
//!   member costs under its configuration; a mid-region trap or guard
//!   exit retires the exact prefix (cycles, retired, vector-retired,
//!   faulting PC) the stepping path would, and
//!   [`Processor::run_until_pc`](crate::Processor::run_until_pc) can
//!   stop cycle-exactly at any interior instruction boundary.
//! * **Counter folding** — `csrr` of `vl`/`vtype`/`vlenb` folds to a
//!   constant of the op's configuration, and `cycle`/`instret` reads
//!   add the ledger prefix to the counters at region entry, so
//!   mid-region CSR reads observe the same partial sums as stepping.

use crate::decoded::{DecodedInstr, DecodedProgram};
use crate::timing::TimingContext;
use crate::vector::VectorUnit;
use krv_isa::{
    BranchKind, Csr, CustomOp, Instruction, MemMode, OpImmKind, RhoRow, VArithOp, VReg, VSource,
    Vtype, XReg,
};
use krv_keccak::constants::RHO_OFFSETS;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// The vector configuration a region was entered (and compiled) under.
/// Together with the predicted effect of any interior `vsetvli` it
/// fully determines every lowering decision (word ranges, live element
/// counts, folded CSR constants).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) struct BlockCtx {
    /// Vector length in elements.
    pub vl: u32,
    /// The `vtype` CSR encoding (`zimm`) — distinguishes configurations
    /// that share VL/EPR/SEW but would fold `csrr vtype` differently.
    pub vtype: u32,
    /// Elements per register at the current SEW.
    pub epr: u32,
    /// SEW in bits.
    pub sew_bits: u32,
}

impl BlockCtx {
    /// Captures the current configuration of `vu`.
    pub fn of(vu: &VectorUnit) -> Self {
        Self {
            vl: vu.vl(),
            vtype: vu.vtype().zimm(),
            epr: vu.elements_per_register(),
            sew_bits: vu.vtype().sew().bits(),
        }
    }

    /// The active register-group count under this configuration
    /// (mirrors `Processor::active_groups`).
    pub fn groups(&self) -> u32 {
        self.vl.div_ceil(self.epr.max(1)).max(1)
    }

    fn timing(&self) -> TimingContext {
        TimingContext {
            branch_taken: false,
            active_groups: self.groups(),
            vl: self.vl,
        }
    }

    /// The configuration after a `vsetvli` with the given `vtype` and
    /// AVL — the exact `VectorUnit::set_config` arithmetic. `None` when
    /// `set_config` would trap (SEW wider than ELEN); the region then
    /// ends before the `vsetvli` and the interpreter raises the trap.
    fn after_vsetvli(self, vtype: Vtype, avl: u32, geometry: Geometry) -> Option<Self> {
        let elen_bits: u32 = if geometry.elen64 { 64 } else { 32 };
        if vtype.sew().bits() > elen_bits {
            return None;
        }
        let vlmax = vtype.vlmax(geometry.elenum as u32, elen_bits);
        let reg_bytes = geometry.elenum as u32 * (elen_bits / 8);
        Some(Self {
            vl: avl.min(vlmax),
            vtype: vtype.zimm(),
            epr: reg_bytes / vtype.sew().bytes(),
            sew_bits: vtype.sew().bits(),
        })
    }
}

/// Elementwise 64-bit binary operation kinds the compiler lowers
/// directly (the unmasked SEW=64 word path of `varith`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum BinKind {
    /// `vadd`.
    Add,
    /// `vsub` (`vs2 - vs1`).
    Sub,
    /// `vrsub` (`vs1 - vs2`).
    Rsub,
    /// `vand`.
    And,
    /// `vor`.
    Or,
    /// `vxor`.
    Xor,
    /// `vsll` (shift amount masked to 63).
    Sll,
    /// `vsrl`.
    Srl,
    /// `vsra` (arithmetic).
    Sra,
    /// `vmv` (splat second operand).
    Mv,
}

impl BinKind {
    /// The compilable subset of [`VArithOp`]: mask-producing comparisons
    /// and the standard slides stay on the interpreter.
    fn of(op: VArithOp) -> Option<Self> {
        Some(match op {
            VArithOp::Add => BinKind::Add,
            VArithOp::Sub => BinKind::Sub,
            VArithOp::Rsub => BinKind::Rsub,
            VArithOp::And => BinKind::And,
            VArithOp::Or => BinKind::Or,
            VArithOp::Xor => BinKind::Xor,
            VArithOp::Sll => BinKind::Sll,
            VArithOp::Srl => BinKind::Srl,
            VArithOp::Sra => BinKind::Sra,
            VArithOp::Mv => BinKind::Mv,
            VArithOp::Mseq
            | VArithOp::Msne
            | VArithOp::Msltu
            | VArithOp::Slideup
            | VArithOp::Slidedown => return None,
        })
    }
}

/// One π scatter segment: a fixed stride-5 copy (optionally rotated)
/// from a source column to a destination column of the register file.
#[derive(Debug, Clone, Copy)]
pub(crate) struct PiSeg {
    /// First destination word index.
    pub dst: usize,
    /// First source word index.
    pub src: usize,
    /// ρ rotation applied on the way (0 for plain `vpi`).
    pub rot: u32,
}

/// One transposed π gather entry: where destination word `r` of a
/// plane's 5-block reads from (relative to the source span) and how far
/// it rotates.
#[derive(Debug, Clone, Copy)]
pub(crate) struct PiSpec {
    /// Source word offset of the block's first state.
    pub off: usize,
    /// ρ rotation applied on the way (0 for plain `vpi`).
    pub rot: u32,
}

/// One lowered micro-op. All word indices are absolute indices into the
/// register file's flat `u64` storage, resolved at compile time.
#[derive(Debug, Clone)]
pub(crate) enum Op {
    /// Scalar instruction executed through the shared interpreter slot
    /// path (ALU/memory semantics are not duplicated); the precomputed
    /// ledger supplies its cost.
    Interp {
        /// Absolute slot index in the program.
        index: usize,
    },
    /// `csrr` of a configuration CSR, folded to a constant.
    XConst {
        /// Destination scalar register.
        rd: XReg,
        /// The folded CSR value.
        value: u32,
    },
    /// `csrr cycle`: the counter at block entry plus the ledger prefix.
    CsrCycle {
        /// Destination scalar register.
        rd: XReg,
        /// Cycles retired by earlier ops of this block.
        prefix: u64,
    },
    /// `csrr instret`: the counter at block entry plus this op's index.
    CsrInstret {
        /// Destination scalar register.
        rd: XReg,
        /// Instructions retired by earlier ops of this block.
        offset: u64,
    },
    /// Elementwise `.vv` arithmetic over pre-resolved word ranges.
    BinVV {
        /// Operation.
        kind: BinKind,
        /// Destination base word.
        d: usize,
        /// First source (`vs2`) base word.
        a: usize,
        /// Second source (`vs1`) base word.
        b: usize,
        /// Live word count (VL).
        len: usize,
    },
    /// Elementwise `.vx` arithmetic; the scalar is read at run time
    /// (scalar instructions may rewrite it mid-block).
    BinVX {
        /// Operation.
        kind: BinKind,
        /// Destination base word.
        d: usize,
        /// Source (`vs2`) base word.
        a: usize,
        /// Scalar register index.
        rs1: usize,
        /// Live word count (VL).
        len: usize,
    },
    /// Elementwise `.vi` arithmetic with the sign-extended immediate
    /// folded at compile time.
    BinVI {
        /// Operation.
        kind: BinKind,
        /// Destination base word.
        d: usize,
        /// Source (`vs2`) base word.
        a: usize,
        /// Folded immediate.
        imm: u64,
        /// Live word count (VL).
        len: usize,
    },
    /// `vslidedownm`/`vslideupm`: per-5-block lane permutation with the
    /// source lane table folded at compile time.
    SlideMod5 {
        /// Destination base word.
        d: usize,
        /// Source base word.
        s: usize,
        /// Number of live 5-element Keccak blocks.
        blocks: usize,
        /// Source lane for each of the five in-block positions.
        src_j: [usize; 5],
    },
    /// `vrotup`: constant rotate-left of every live word.
    RotConst {
        /// Destination base word.
        d: usize,
        /// Source base word.
        s: usize,
        /// Live word count.
        len: usize,
        /// Rotate amount.
        amount: u32,
    },
    /// `v64rho`: per-word rotate-left with the full ρ offset table
    /// resolved at compile time.
    RhoTable {
        /// Destination base word.
        d: usize,
        /// Source base word.
        s: usize,
        /// Per-word rotation amounts (one per live word).
        rots: Box<[u32]>,
    },
    /// `vpi`/`vrhopi`: column-mode scatter as stride-5 segments.
    Pi {
        /// First word of the destination column span.
        d: usize,
        /// Destination span length (five registers).
        d_len: usize,
        /// First word of the source register span.
        s: usize,
        /// Source span length.
        s_len: usize,
        /// The 5 × rows scatter segments, offsets relative to the spans.
        segs: Box<[PiSeg]>,
        /// States per row (`min(VL, EPR) / 5`).
        states: usize,
    },
    /// All-rows π in transposed form: every live word of each
    /// destination plane is written **in order**, gathering from the
    /// five source planes. Sequential stores beat the per-segment
    /// scatter of [`Op::Pi`], so the five-row case lowers to this.
    PiPlanes {
        /// First word of the destination column span.
        d: usize,
        /// Words per register (plane stride inside the spans).
        elenum: usize,
        /// First word of the source register span.
        s: usize,
        /// Source span length (five registers).
        s_len: usize,
        /// Per destination plane: the five gather entries of a 5-block.
        spec: Box<[[PiSpec; 5]; 5]>,
        /// States per row (`min(VL, EPR) / 5`).
        states: usize,
    },
    /// `viota`: XOR the round constant (looked up from the scalar
    /// register at run time — the index may be out of range and trap)
    /// into lane 0 of every state, copying the rest.
    Iota {
        /// Destination base word.
        d: usize,
        /// Source base word.
        s: usize,
        /// Live word count.
        len: usize,
        /// Scalar register holding the round index.
        rs1: usize,
    },
    /// Unit-stride `vle64.v` with an all-or-nothing bulk fast path; the
    /// element-serial interpreter handles the partial/trapping case.
    VLoad64 {
        /// Destination base word.
        d: usize,
        /// Element count (VL).
        len: usize,
        /// Destination register (interpreter fallback).
        vd: VReg,
        /// Base-address scalar register (interpreter fallback).
        rs1: XReg,
    },
    /// Unit-stride `vse64.v` (counterpart of [`Op::VLoad64`]).
    VStore64 {
        /// Source base word.
        s: usize,
        /// Element count (VL).
        len: usize,
        /// Source register (interpreter fallback).
        vs3: VReg,
        /// Base-address scalar register (interpreter fallback).
        rs1: XReg,
    },
    /// `vsetvli` executed natively (exact `set_config` and `rd`
    /// semantics), then *guarded*: downstream ops were lowered for the
    /// predicted configuration, so a different granted VL/`vtype`
    /// retires the region's prefix through this op and hands the rest
    /// back to the interpreter.
    Vsetvli {
        /// Destination scalar register for the granted VL.
        rd: XReg,
        /// AVL source register (`x0` selects VLMAX/keep-VL semantics).
        rs1: XReg,
        /// The requested `vtype` configuration.
        vtype: Vtype,
        /// The VL the lowering predicted `set_config` grants.
        expected_vl: u32,
        /// The predicted `vtype` CSR encoding.
        expected_vtype: u32,
    },
    /// Scalar immediate ALU op (`addi`/`xori`/...) executed natively —
    /// these drive loop counters inside permutation rounds, so keeping
    /// them out of the interpreter slot path matters.
    ScalarImm {
        /// Operation.
        kind: OpImmKind,
        /// Destination scalar register.
        rd: XReg,
        /// Source scalar register.
        rs1: XReg,
        /// Sign-extended immediate.
        imm: i32,
    },
    /// A conditional branch terminating the region: resolves the
    /// direction, commits the matching cycle cost and sets the PC.
    /// Always the last op of its region.
    Branch {
        /// Comparison kind.
        kind: BranchKind,
        /// First comparison register index.
        rs1: usize,
        /// Second comparison register index.
        rs2: usize,
        /// Taken-path target PC.
        target: u32,
        /// Cycle cost when taken.
        taken_cost: u64,
        /// Cycle cost when not taken.
        not_cost: u64,
    },
}

/// A multi-instruction Keccak idiom recognized in a lowered region and
/// executed as one native transfer function.
///
/// The member [`Op`]s stay in the block unchanged — a dispatch that must
/// stop or retire inside the span executes them individually — so an
/// idiom is pure acceleration with identical architectural effect,
/// including the final values of every temporary register the original
/// instruction sequence leaves behind. Idioms are infallible: operand
/// windows and pairwise disjointness are proven when the span is built.
#[derive(Debug, Clone)]
pub(crate) enum FusedOp {
    /// The θ step: four parity XORs, two modular slides, a rotate, the
    /// `D` combination and five plane updates (13 instructions).
    Theta {
        /// Base words of the five plane registers, row order.
        planes: [usize; 5],
        /// Parity/`D` temporary (holds `D` afterwards).
        c: usize,
        /// Slide-up temporary (holds `C[x-1]` afterwards).
        up: usize,
        /// Slide-down + rotate temporary (holds `rotl(C[x+1])`).
        rot: usize,
        /// In-block source lane of the slide-up, per position.
        j_up: [usize; 5],
        /// In-block source lane of the slide-down, per position.
        j_rot: [usize; 5],
        /// Rotate amount applied to the slide-down temporary.
        amount: u32,
        /// Live word count (equal for all member ops).
        n: usize,
    },
    /// The χ step: two modular slides, a scalar-XOR complement, an AND
    /// and the final XOR into the destination block (5 instructions).
    Chi {
        /// Source plane block (`vs2` of both slides).
        s: usize,
        /// First temporary (holds `(slide1 ^ x[rs1]) & slide2`).
        t1: usize,
        /// Second temporary (holds the second slide).
        t2: usize,
        /// Destination block.
        d: usize,
        /// Scalar register XORed into the first slide (read at run
        /// time, sign-extended like any `.vx` operand).
        rs1: usize,
        /// In-block source lane of the first slide, per position.
        j1: [usize; 5],
        /// In-block source lane of the second slide, per position.
        j2: [usize; 5],
        /// Live word count (equal for all member ops).
        n: usize,
    },
}

/// A fused idiom overlaying `ops[start .. start + len]`.
#[derive(Debug, Clone)]
pub(crate) struct FusedSpan {
    /// First member-op index.
    pub start: usize,
    /// Member instruction count.
    pub len: usize,
    /// The single-pass replacement.
    pub op: FusedOp,
}

/// How a compiled op left its region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum OpExit {
    /// Continue with the next op.
    Next,
    /// Retire this op, then leave the region: a [`Op::Vsetvli`] guard
    /// saw a configuration other than the one downstream ops were
    /// compiled for. The interpreter continues from the next
    /// instruction with identical architectural state.
    ExitAfter,
}

/// Counter prefix sums *before* one op of a block executes; used for
/// cycle-exact trap retirement and mid-block `csrr` folding.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Ledger {
    /// Cycles consumed by earlier ops.
    pub prefix_cycles: u64,
    /// Vector instructions retired by earlier ops.
    pub prefix_vector: u64,
}

/// A straight-line region lowered under one entry [`BlockCtx`].
#[derive(Debug, Clone)]
pub(crate) struct CompiledBlock {
    /// The entry configuration this lowering is valid for.
    pub ctx: BlockCtx,
    /// The micro-ops, one per member instruction.
    pub ops: Box<[Op]>,
    /// Per-op counter prefixes (same length as `ops`).
    pub ledger: Box<[Ledger]>,
    /// Total cycle cost of every op except a terminal branch (whose
    /// cost depends on the direction taken).
    pub total_cycles: u64,
    /// Total vector instructions retired.
    pub total_vector: u64,
    /// (taken, not-taken) costs of the terminal branch, if any.
    pub branch_costs: Option<(u64, u64)>,
    /// Member instruction count.
    pub len: usize,
    /// Fused idiom overlay, ordered by `start`, spans disjoint.
    pub fused: Box<[FusedSpan]>,
    /// Per-op index into `fused` (`u32::MAX` where no span starts).
    pub fused_idx: Box<[u32]>,
}

impl CompiledBlock {
    /// The worst-case whole-region cost for the all-or-nothing budget
    /// check (a terminal branch contributes its costlier direction).
    pub fn worst_cost(&self) -> u64 {
        self.total_cycles + self.branch_costs.map_or(0, |(t, n)| t.max(n))
    }

    /// Counter prefixes (cycles, vector-retired) after op `k` has
    /// retired. Never called for a terminal branch (which commits its
    /// own direction-dependent cost).
    pub fn prefix_after(&self, k: usize) -> (u64, u64) {
        match self.ledger.get(k + 1) {
            Some(next) => (next.prefix_cycles, next.prefix_vector),
            None => (self.total_cycles, self.total_vector),
        }
    }

    /// The fused span starting at op `k`, if one does.
    #[inline]
    pub fn fused_span(&self, k: usize) -> Option<&FusedSpan> {
        let fi = self.fused_idx[k];
        (fi != u32::MAX).then(|| &self.fused[fi as usize])
    }
}

/// A processor-local cache slot for the region anchored at one PC: once
/// resolved for the running entry configuration, dispatch is a pointer
/// load and a `BlockCtx` equality check — no locks, no hashing.
#[derive(Debug, Clone, Default)]
pub(crate) enum CompiledSlot {
    /// Not yet looked at.
    #[default]
    Empty,
    /// Compiled for the contained region's entry configuration.
    Ready(Arc<CompiledBlock>),
    /// Refused under this configuration (fall back to the interpreter).
    Refused(BlockCtx),
}

/// The machine geometry a lowering must hold for: fixed per processor,
/// constant for all configurations.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Geometry {
    /// Elements of ELEN width per register (`EleNum`).
    pub elenum: usize,
    /// Total 64-bit storage words in the register file.
    pub words_len: usize,
    /// Whether the architecture is 64-bit (ELEN = 64).
    pub elen64: bool,
}

/// A shareable compiled view of a [`DecodedProgram`]: the maximal
/// straight-line region anchored at any PC can be lowered lazily, per
/// entry configuration, into native word ops — see the
/// [module docs](self) for the exact-equivalence invariants.
///
/// Like the decoded program it wraps, a `CompiledProgram` is immutable
/// from the outside and shareable between processors via [`Arc`]; the
/// internal per-(PC, configuration) region pool is populated on first
/// dispatch and protected by a mutex, while each
/// [`Processor`](crate::Processor) keeps a lock-free local cache for
/// steady-state dispatch. A pooled region's `vsetvli` predictions come
/// from whichever processor compiled it first; processors whose AVL
/// registers differ exit at the guard and re-enter compiled execution
/// one instruction later under their own configuration.
#[derive(Debug)]
pub struct CompiledProgram {
    decoded: Arc<DecodedProgram>,
    pool: Mutex<BlockPool>,
}

/// Memoized per-(entry slot, entry configuration) compilation results;
/// `None` records a refusal so the interpreter path is chosen without
/// re-attempting the lowering.
type BlockPool = HashMap<(u32, BlockCtx), Option<Arc<CompiledBlock>>>;

impl CompiledProgram {
    /// Wraps a decoded program; blocks compile lazily on first dispatch.
    pub fn new(decoded: Arc<DecodedProgram>) -> Self {
        Self {
            decoded,
            pool: Mutex::new(HashMap::new()),
        }
    }

    /// The underlying decoded program.
    pub fn decoded(&self) -> Arc<DecodedProgram> {
        Arc::clone(&self.decoded)
    }

    /// Number of (block, configuration) pairs compiled so far.
    pub fn compiled_blocks(&self) -> usize {
        self.lock().values().filter(|v| v.is_some()).count()
    }

    /// Number of (block, configuration) pairs refused so far (these run
    /// on the interpreted fused path).
    pub fn refused_blocks(&self) -> usize {
        self.lock().values().filter(|v| v.is_none()).count()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, BlockPool> {
        // A panic while holding the lock cannot leave a torn entry (the
        // map only ever gains complete entries), so poisoning is benign.
        self.pool.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// The compiled region anchored at slot `start` under entry
    /// configuration `ctx`, compiling and memoizing on first request;
    /// `None` means the region is refused under this configuration.
    ///
    /// `xregs` seeds the `vsetvli` AVL predictions of a first-time
    /// compile; a cached region compiled from different register values
    /// stays correct through its runtime guards.
    pub(crate) fn block_for(
        &self,
        start: usize,
        ctx: BlockCtx,
        geometry: Geometry,
        xregs: &[u32; 32],
    ) -> Option<Arc<CompiledBlock>> {
        self.lock()
            .entry((start as u32, ctx))
            .or_insert_with(|| {
                compile_region(&self.decoded, start, ctx, geometry, xregs).map(Arc::new)
            })
            .clone()
    }
}

/// Lowers the maximal compilable straight-line region of `program`
/// anchored at `start` under entry configuration `ctx`.
///
/// The region walks forward until a halt, a jump, an instruction that
/// cannot be proven bit-identical to the interpreter (all of which
/// truncate the region before them), or a conditional branch (compiled
/// as the terminal op). Interior `vsetvli`s update the tracked
/// configuration using the AVL predicted from `xregs` and are guarded
/// at run time. Returns `None` only when not even the first instruction
/// is compilable — the caller then uses the interpreted path.
pub(crate) fn compile_region(
    program: &DecodedProgram,
    start: usize,
    ctx: BlockCtx,
    geometry: Geometry,
    xregs: &[u32; 32],
) -> Option<CompiledBlock> {
    let mut cur = ctx;
    let mut ops = Vec::new();
    let mut ledger = Vec::new();
    let mut prefix_cycles = 0u64;
    let mut prefix_vector = 0u64;
    let mut branch_costs = None;
    let mut index = start;
    while let Some(slot) = program.get(index) {
        let entry = Ledger {
            prefix_cycles,
            prefix_vector,
        };
        match slot.instr {
            // Halts and (computed) jumps end the region before them.
            Instruction::Jal { .. }
            | Instruction::Jalr { .. }
            | Instruction::Ecall
            | Instruction::Ebreak => break,
            // A conditional branch is the region's terminal op.
            Instruction::Branch { kind, rs1, rs2, .. } => {
                let not_cost = slot.timing.cost(cur.timing());
                let mut taken = cur.timing();
                taken.branch_taken = true;
                let taken_cost = slot.timing.cost(taken);
                ledger.push(entry);
                ops.push(Op::Branch {
                    kind,
                    rs1: rs1.index(),
                    rs2: rs2.index(),
                    target: slot.target,
                    taken_cost,
                    not_cost,
                });
                branch_costs = Some((taken_cost, not_cost));
                break;
            }
            // `vsetvli` stays in the region under a runtime guard.
            Instruction::Vsetvli { rd, rs1, vtype } => {
                let avl = if rs1 != XReg::X0 {
                    xregs[rs1.index()]
                } else if rd != XReg::X0 {
                    u32::MAX
                } else {
                    cur.vl
                };
                let Some(next) = cur.after_vsetvli(vtype, avl, geometry) else {
                    break; // predicted trap: leave it to the interpreter
                };
                ledger.push(entry);
                ops.push(Op::Vsetvli {
                    rd,
                    rs1,
                    vtype,
                    expected_vl: next.vl,
                    expected_vtype: next.vtype,
                });
                prefix_cycles += slot.timing.cost(cur.timing());
                prefix_vector += u64::from(slot.is_vector);
                cur = next;
                index += 1;
                continue;
            }
            _ => {}
        }
        let Some(op) = lower(slot, index, index - start, cur, geometry, prefix_cycles) else {
            break;
        };
        ledger.push(entry);
        ops.push(op);
        prefix_cycles += slot.timing.cost(cur.timing());
        prefix_vector += u64::from(slot.is_vector);
        index += 1;
    }
    if ops.is_empty() {
        return None;
    }
    let len = ops.len();
    let (fused, fused_idx) = fuse_idioms(&ops);
    Some(CompiledBlock {
        ctx,
        ops: ops.into(),
        ledger: ledger.into(),
        total_cycles: prefix_cycles,
        total_vector: prefix_vector,
        branch_costs,
        len,
        fused,
        fused_idx,
    })
}

/// Instructions covered by the fused θ idiom.
const THETA_LEN: usize = 13;
/// Instructions covered by the fused χ idiom.
const CHI_LEN: usize = 5;

/// Scans a lowered region for the Keccak θ and χ instruction idioms the
/// kernel generators emit and records them as [`FusedSpan`]s. Purely an
/// overlay: the member ops stay in place for stop/split dispatches.
fn fuse_idioms(ops: &[Op]) -> (Box<[FusedSpan]>, Box<[u32]>) {
    let mut spans = Vec::new();
    let mut i = 0;
    while i < ops.len() {
        let matched = match_theta(&ops[i..])
            .map(|op| (THETA_LEN, op))
            .or_else(|| match_chi(&ops[i..]).map(|op| (CHI_LEN, op)));
        if let Some((len, op)) = matched {
            spans.push(FusedSpan { start: i, len, op });
            i += len;
        } else {
            i += 1;
        }
    }
    let mut idx = vec![u32::MAX; ops.len()];
    for (si, span) in spans.iter().enumerate() {
        idx[span.start] = si as u32;
    }
    (spans.into_boxed_slice(), idx.into_boxed_slice())
}

/// Whether `N` equal-length word ranges are pairwise disjoint — the
/// condition under which a fused idiom may run as one pass over
/// simultaneously borrowed slices.
fn pairwise_disjoint<const N: usize>(mut offsets: [usize; N], len: usize) -> bool {
    offsets.sort_unstable();
    offsets.windows(2).all(|w| w[0] + len <= w[1])
}

/// Matches the 13-instruction θ sequence:
///
/// ```text
/// vxor.vv   c,  p3, p4        vslideupm.vi    up,  c, k
/// vxor.vv   up, p1, p2        vslidedownm.vi  rot, c, k
/// vxor.vv   rot, p0, up       vrotup.vi       rot, rot, r
/// vxor.vv   c,  c,  rot       vxor.vv         c,   up, rot
/// vxor.vv   py, py, c   (for y = 0..5)
/// ```
///
/// The first four XORs accumulate the five-plane parity into `c` (the
/// fused form computes it directly — XOR is associative and
/// commutative, so the result is bit-identical), the middle four form
/// `D`, and the last five fold `D` into each plane. The slide offsets
/// and rotate amount are captured, not assumed.
fn match_theta(ops: &[Op]) -> Option<FusedOp> {
    let seq: &[Op; THETA_LEN] = ops.get(..THETA_LEN)?.try_into().ok()?;
    let [Op::BinVV {
        kind: BinKind::Xor,
        d: c0,
        a: x34a,
        b: x34b,
        len: n0,
    }, Op::BinVV {
        kind: BinKind::Xor,
        d: u0,
        a: x12a,
        b: x12b,
        len: n1,
    }, Op::BinVV {
        kind: BinKind::Xor,
        d: r0,
        a: x0a,
        b: x0b,
        len: n2,
    }, Op::BinVV {
        kind: BinKind::Xor,
        d: c1,
        a: ca,
        b: cb,
        len: n3,
    }, Op::SlideMod5 {
        d: u1,
        s: su,
        blocks: bu,
        src_j: j_up,
    }, Op::SlideMod5 {
        d: r1,
        s: sr,
        blocks: br,
        src_j: j_rot,
    }, Op::RotConst {
        d: r2,
        s: r3,
        len: n6,
        amount,
    }, Op::BinVV {
        kind: BinKind::Xor,
        d: c2,
        a: da,
        b: db,
        len: n7,
    }, Op::BinVV {
        kind: BinKind::Xor,
        d: p0,
        a: pa0,
        b: pb0,
        len: n8,
    }, Op::BinVV {
        kind: BinKind::Xor,
        d: p1,
        a: pa1,
        b: pb1,
        len: n9,
    }, Op::BinVV {
        kind: BinKind::Xor,
        d: p2,
        a: pa2,
        b: pb2,
        len: n10,
    }, Op::BinVV {
        kind: BinKind::Xor,
        d: p3,
        a: pa3,
        b: pb3,
        len: n11,
    }, Op::BinVV {
        kind: BinKind::Xor,
        d: p4,
        a: pa4,
        b: pb4,
        len: n12,
    }] = seq
    else {
        return None;
    };
    let n = *n0;
    let planes = [*p0, *p1, *p2, *p3, *p4];
    let (c, up, rot) = (*c0, *u0, *r0);
    let same_len = [*n1, *n2, *n3, *n6, *n7, *n8, *n9, *n10, *n11, *n12]
        .iter()
        .all(|&l| l == n);
    if !same_len || n == 0 || *bu * 5 != n || *br * 5 != n {
        return None;
    }
    let wired = *x34a == planes[3]
        && *x34b == planes[4]
        && *x12a == planes[1]
        && *x12b == planes[2]
        && *x0a == planes[0]
        && *x0b == up
        && *c1 == c
        && *ca == c
        && *cb == rot
        && *u1 == up
        && *su == c
        && *r1 == rot
        && *sr == c
        && *r2 == rot
        && *r3 == rot
        && *c2 == c
        && *da == up
        && *db == rot
        && [*pa0, *pa1, *pa2, *pa3, *pa4] == planes
        && [*pb0, *pb1, *pb2, *pb3, *pb4] == [c; 5];
    if !wired
        || !pairwise_disjoint(
            [
                planes[0], planes[1], planes[2], planes[3], planes[4], c, up, rot,
            ],
            n,
        )
    {
        return None;
    }
    Some(FusedOp::Theta {
        planes,
        c,
        up,
        rot,
        j_up: *j_up,
        j_rot: *j_rot,
        amount: *amount,
        n,
    })
}

/// Matches the 5-instruction χ sequence:
///
/// ```text
/// vslidedownm.vi t1, s, 1     vand.vv t1, t1, t2
/// vxor.vx        t1, t1, rs1  vxor.vv d,  s,  t1
/// vslidedownm.vi t2, s, 2
/// ```
///
/// The slide offsets are captured, not assumed; the scalar (normally
/// `-1`, the complement) is read at run time like any `.vx` operand.
fn match_chi(ops: &[Op]) -> Option<FusedOp> {
    let seq: &[Op; CHI_LEN] = ops.get(..CHI_LEN)?.try_into().ok()?;
    let [Op::SlideMod5 {
        d: t1a,
        s: s0,
        blocks: k1,
        src_j: j1,
    }, Op::BinVX {
        kind: BinKind::Xor,
        d: t1b,
        a: t1c,
        rs1,
        len: n1,
    }, Op::SlideMod5 {
        d: t2a,
        s: s2,
        blocks: k2,
        src_j: j2,
    }, Op::BinVV {
        kind: BinKind::And,
        d: t1d,
        a: t1e,
        b: t2b,
        len: n3,
    }, Op::BinVV {
        kind: BinKind::Xor,
        d: dd,
        a: sa,
        b: t1f,
        len: n4,
    }] = seq
    else {
        return None;
    };
    let n = *n1;
    let (s, t1, t2, d) = (*s0, *t1a, *t2a, *dd);
    if n == 0 || *k1 * 5 != n || *k2 * 5 != n || *n3 != n || *n4 != n {
        return None;
    }
    let wired = *t1b == t1
        && *t1c == t1
        && *s2 == s
        && *t1d == t1
        && *t1e == t1
        && *t2b == t2
        && *sa == s
        && *t1f == t1;
    if !wired || !pairwise_disjoint([s, t1, t2, d], n) {
        return None;
    }
    Some(FusedOp::Chi {
        s,
        t1,
        t2,
        d,
        rs1: *rs1,
        j1: *j1,
        j2: *j2,
        n,
    })
}

/// Whether two equal-length word ranges are safe for the compiled
/// two/three-slice execution paths: identical or fully disjoint.
/// Partial overlap (an LMUL group starting inside another) is refused —
/// the interpreter's snapshot fallback handles it.
fn same_or_disjoint(a: usize, b: usize, len: usize) -> bool {
    a == b || a + len <= b || b + len <= a
}

/// Lowers one instruction, or `None` to end the region before it.
fn lower(
    slot: &DecodedInstr,
    index: usize,
    k: usize,
    ctx: BlockCtx,
    geometry: Geometry,
    prefix_cycles: u64,
) -> Option<Op> {
    let Geometry {
        elenum,
        words_len,
        elen64,
    } = geometry;
    // Vector word ops require the 64-bit architecture at SEW = 64 — the
    // same predicate the interpreter's word paths use.
    let vec64 = elen64 && ctx.sew_bits == 64;
    match slot.instr {
        Instruction::OpImm { kind, rd, rs1, imm } => Some(Op::ScalarImm { kind, rd, rs1, imm }),
        Instruction::Lui { .. }
        | Instruction::Auipc { .. }
        | Instruction::Op { .. }
        | Instruction::Load { .. }
        | Instruction::Store { .. } => Some(Op::Interp { index }),
        Instruction::Csrr { rd, csr } => Some(match csr {
            Csr::Vl => Op::XConst { rd, value: ctx.vl },
            Csr::Vtype => Op::XConst {
                rd,
                value: ctx.vtype,
            },
            Csr::Vlenb => Op::XConst {
                rd,
                value: (elenum * if elen64 { 8 } else { 4 }) as u32,
            },
            Csr::Cycle => Op::CsrCycle {
                rd,
                prefix: prefix_cycles,
            },
            Csr::Instret => Op::CsrInstret {
                rd,
                offset: k as u64,
            },
        }),
        Instruction::VLoad {
            eew,
            vd,
            rs1,
            mode,
            vm,
        } => {
            if !vm || !elen64 || eew.bits() != 64 || !matches!(mode, MemMode::UnitStride) {
                return None;
            }
            let d = vd.index() * elenum;
            let len = ctx.vl as usize;
            if d + len > words_len {
                return None;
            }
            Some(Op::VLoad64 { d, len, vd, rs1 })
        }
        Instruction::VStore {
            eew,
            vs3,
            rs1,
            mode,
            vm,
        } => {
            if !vm || !elen64 || eew.bits() != 64 || !matches!(mode, MemMode::UnitStride) {
                return None;
            }
            let s = vs3.index() * elenum;
            let len = ctx.vl as usize;
            if s + len > words_len {
                return None;
            }
            Some(Op::VStore64 { s, len, vs3, rs1 })
        }
        Instruction::VArith {
            op,
            vd,
            vs2,
            src,
            vm,
        } => {
            if !vm || !vec64 {
                return None;
            }
            let kind = BinKind::of(op)?;
            let len = ctx.vl as usize;
            let d = vd.index() * elenum;
            let a = vs2.index() * elenum;
            if d + len > words_len || a + len > words_len {
                return None;
            }
            match src {
                VSource::Vector(vs1) => {
                    let b = vs1.index() * elenum;
                    if b + len > words_len
                        || !same_or_disjoint(d, a, len)
                        || !same_or_disjoint(d, b, len)
                        || !same_or_disjoint(a, b, len)
                    {
                        return None;
                    }
                    Some(Op::BinVV { kind, d, a, b, len })
                }
                VSource::Scalar(rs1) => {
                    if !same_or_disjoint(d, a, len) {
                        return None;
                    }
                    Some(Op::BinVX {
                        kind,
                        d,
                        a,
                        rs1: rs1.index(),
                        len,
                    })
                }
                VSource::Imm(imm) => {
                    if !same_or_disjoint(d, a, len) {
                        return None;
                    }
                    Some(Op::BinVI {
                        kind,
                        d,
                        a,
                        imm: imm as i64 as u64,
                        len,
                    })
                }
            }
        }
        Instruction::Custom(op) => {
            if !vec64 {
                return None;
            }
            lower_custom(&op, ctx, elenum, words_len)
        }
        // Control flow, halts and `vsetvli` are intercepted by the
        // region walker before lowering; `vmv.x.s`/`vmv.s.x`/`vid` and
        // everything else stay on the interpreter.
        _ => None,
    }
}

/// Lowers one custom Keccak instruction (64-bit architecture, SEW = 64
/// already established by the caller).
fn lower_custom(op: &CustomOp, ctx: BlockCtx, elenum: usize, words_len: usize) -> Option<Op> {
    let vl = ctx.vl as usize;
    let epr = ctx.epr as usize;
    if epr == 0 {
        return None;
    }
    let blocks = vl / 5;
    let live = 5 * blocks;
    // `check_block_alignment` would trap before any write; refuse so
    // the interpreter raises the identical trap.
    let aligned = vl <= epr || epr.is_multiple_of(5);
    let window = |reg: VReg, len: usize| -> Option<usize> {
        let base = reg.index() * elenum;
        (base + len <= words_len).then_some(base)
    };
    match *op {
        CustomOp::Vslidedownm { vd, vs2, uimm, vm } => {
            lower_slide(vd, vs2, uimm as i32, vm, aligned, blocks, live, &window)
        }
        CustomOp::Vslideupm { vd, vs2, uimm, vm } => {
            lower_slide(vd, vs2, -(uimm as i32), vm, aligned, blocks, live, &window)
        }
        CustomOp::Vrotup { vd, vs2, uimm, vm } => {
            if !vm || !aligned {
                return None;
            }
            let d = window(vd, live)?;
            let s = window(vs2, live)?;
            if !same_or_disjoint(d, s, live) {
                return None;
            }
            Some(Op::RotConst {
                d,
                s,
                len: live,
                amount: uimm as u32,
            })
        }
        CustomOp::V64rho { vd, vs2, row, vm } => {
            if !vm || !aligned {
                return None;
            }
            // The all-rows form past five registers writes a prefix and
            // *then* traps; refuse so the interpreter reproduces that
            // partial-write-then-trap sequence.
            let rots: Box<[u32]> = match row {
                RhoRow::Row(r) if r <= 4 => {
                    (0..live).map(|g| RHO_OFFSETS[r as usize][g % 5]).collect()
                }
                RhoRow::Row(_) => return None,
                RhoRow::All => {
                    if live > 5 * epr {
                        return None;
                    }
                    (0..live).map(|g| RHO_OFFSETS[g / epr][g % 5]).collect()
                }
            };
            let d = window(vd, live)?;
            let s = window(vs2, live)?;
            if !same_or_disjoint(d, s, live) {
                return None;
            }
            Some(Op::RhoTable { d, s, rots })
        }
        CustomOp::Vpi { vd, vs2, row, vm } => {
            lower_pi(vd, vs2, row, vm, false, vl, epr, elenum, words_len)
        }
        CustomOp::Vrhopi { vd, vs2, row, vm } => {
            lower_pi(vd, vs2, row, vm, true, vl, epr, elenum, words_len)
        }
        CustomOp::Viota { vd, vs2, rs1, vm } => {
            if !vm || !aligned {
                return None;
            }
            let d = window(vd, live)?;
            let s = window(vs2, live)?;
            if !same_or_disjoint(d, s, live) {
                return None;
            }
            Some(Op::Iota {
                d,
                s,
                len: live,
                rs1: rs1.index(),
            })
        }
        // 32-bit-architecture ops trap on ELEN = 64; refuse so the
        // interpreter raises the trap.
        CustomOp::V32lrotup { .. }
        | CustomOp::V32hrotup { .. }
        | CustomOp::V32lrho { .. }
        | CustomOp::V32hrho { .. } => None,
    }
}

#[allow(clippy::too_many_arguments)] // mirrors the instruction operands
fn lower_slide(
    vd: VReg,
    vs2: VReg,
    offset: i32,
    vm: bool,
    aligned: bool,
    blocks: usize,
    live: usize,
    window: &impl Fn(VReg, usize) -> Option<usize>,
) -> Option<Op> {
    if !vm || !aligned {
        return None;
    }
    let mut src_j = [0usize; 5];
    for (j, slot) in src_j.iter_mut().enumerate() {
        *slot = (j as i32 + offset).rem_euclid(5) as usize;
    }
    let d = window(vd, live)?;
    let s = window(vs2, live)?;
    if !same_or_disjoint(d, s, live) {
        return None;
    }
    Some(Op::SlideMod5 {
        d,
        s,
        blocks,
        src_j,
    })
}

#[allow(clippy::too_many_arguments)] // mirrors the instruction operands
fn lower_pi(
    vd: VReg,
    vs2: VReg,
    row: RhoRow,
    vm: bool,
    fused_rho: bool,
    vl: usize,
    epr: usize,
    elenum: usize,
    words_len: usize,
) -> Option<Op> {
    if !vm {
        return None;
    }
    let states = vl.min(epr) / 5;
    let (first_row, row_count) = match row {
        RhoRow::Row(r) if r <= 4 => (r as usize, 1),
        RhoRow::Row(_) => return None,
        RhoRow::All => {
            // Both conditions trap in the interpreter before any write.
            if vl > 5 * epr || !epr.is_multiple_of(5) {
                return None;
            }
            (0, vl.div_ceil(epr))
        }
    };
    if vd.index() + 4 > 31 {
        return None; // interpreter traps before any write
    }
    // The destination span is the five-register column block; sources
    // span the contiguous register range the rows read. Every source
    // register sits outside `vd..=vd+4` (checked below), and both spans
    // are register-aligned, so they are word-disjoint and the executor
    // can split them once up front.
    let d = vd.index() * elenum;
    let d_len = 5 * elenum;
    let (s_first, s_count) = match row {
        RhoRow::Row(_) => (vs2.index(), 1),
        RhoRow::All => (vs2.index() + first_row, row_count),
    };
    let s = s_first * elenum;
    let s_len = s_count * elenum;
    let mut segs = Vec::with_capacity(5 * row_count);
    for r in first_row..first_row + row_count {
        let src = match row {
            RhoRow::Row(_) => vs2.index(),
            RhoRow::All => vs2.index() + r,
        };
        if src > 31 {
            return None;
        }
        // A source register inside the destination column span would
        // take the interpreter's snapshot path; refuse.
        if src >= vd.index() && src <= vd.index() + 4 {
            return None;
        }
        let sbase = src * elenum;
        for xp in 0..5usize {
            let y = (2 * (5 + xp - r)) % 5;
            segs.push(PiSeg {
                dst: y * elenum + r,
                src: sbase - s + xp,
                rot: if fused_rho { RHO_OFFSETS[r][xp] } else { 0 },
            });
        }
    }
    if d + d_len > words_len || s + s_len > words_len {
        return None;
    }
    if states > 0 {
        for seg in &segs {
            if seg.dst + 5 * (states - 1) >= d_len || seg.src + 5 * (states - 1) >= s_len {
                return None;
            }
        }
    }
    // Five-row π writes every live destination word, so it transposes
    // into plane-sequential stores: destination word `r + 5·st` of
    // plane `y` reads source column `xp = (r + 3y) mod 5` of row `r`
    // (3 is the mod-5 inverse of the 2 in `y = 2(xp − r)`).
    if matches!(row, RhoRow::All) && first_row == 0 && row_count == 5 && 5 * states <= elenum {
        let spec: Box<[[PiSpec; 5]; 5]> = Box::new(std::array::from_fn(|y| {
            std::array::from_fn(|r| {
                let xp = (r + 3 * y) % 5;
                PiSpec {
                    off: r * elenum + xp,
                    rot: if fused_rho { RHO_OFFSETS[r][xp] } else { 0 },
                }
            })
        }));
        return Some(Op::PiPlanes {
            d,
            elenum,
            s,
            s_len,
            spec,
            states,
        });
    }
    Some(Op::Pi {
        d,
        d_len,
        s,
        s_len,
        segs: segs.into(),
        states,
    })
}

// ---------------------------------------------------------------------
// Execution helpers over the flat word storage. All aliasing below is
// compile-proven identical-or-disjoint, so `get_disjoint_mut` cannot
// fail and no snapshots are ever taken.
// ---------------------------------------------------------------------

const ALIAS_PROOF: &str = "compiled operands are identical or disjoint by construction";

#[inline]
fn bin_vv_with(
    w: &mut [u64],
    d: usize,
    a: usize,
    b: usize,
    len: usize,
    f: impl Fn(u64, u64) -> u64,
) {
    if d == a && d == b {
        for x in &mut w[d..d + len] {
            *x = f(*x, *x);
        }
    } else if d == a {
        let [dst, s1] = w
            .get_disjoint_mut([d..d + len, b..b + len])
            .expect(ALIAS_PROOF);
        for (x, &y) in dst.iter_mut().zip(s1.iter()) {
            *x = f(*x, y);
        }
    } else if d == b {
        let [dst, s2] = w
            .get_disjoint_mut([d..d + len, a..a + len])
            .expect(ALIAS_PROOF);
        for (x, &y) in dst.iter_mut().zip(s2.iter()) {
            *x = f(y, *x);
        }
    } else if a == b {
        let [dst, s] = w
            .get_disjoint_mut([d..d + len, a..a + len])
            .expect(ALIAS_PROOF);
        for (x, &y) in dst.iter_mut().zip(s.iter()) {
            *x = f(y, y);
        }
    } else {
        let [dst, s2, s1] = w
            .get_disjoint_mut([d..d + len, a..a + len, b..b + len])
            .expect(ALIAS_PROOF);
        for ((x, &y2), &y1) in dst.iter_mut().zip(s2.iter()).zip(s1.iter()) {
            *x = f(y2, y1);
        }
    }
}

#[inline]
fn bin_vs_with(w: &mut [u64], d: usize, a: usize, len: usize, y: u64, f: impl Fn(u64, u64) -> u64) {
    if d == a {
        for x in &mut w[d..d + len] {
            *x = f(*x, y);
        }
    } else {
        let [dst, src] = w
            .get_disjoint_mut([d..d + len, a..a + len])
            .expect(ALIAS_PROOF);
        for (x, &v) in dst.iter_mut().zip(src.iter()) {
            *x = f(v, y);
        }
    }
}

/// Executes a compiled `.vv` arithmetic op.
pub(crate) fn exec_bin_vv(w: &mut [u64], kind: BinKind, d: usize, a: usize, b: usize, len: usize) {
    match kind {
        BinKind::Add => bin_vv_with(w, d, a, b, len, |x, y| x.wrapping_add(y)),
        BinKind::Sub => bin_vv_with(w, d, a, b, len, |x, y| x.wrapping_sub(y)),
        BinKind::Rsub => bin_vv_with(w, d, a, b, len, |x, y| y.wrapping_sub(x)),
        BinKind::And => bin_vv_with(w, d, a, b, len, |x, y| x & y),
        BinKind::Or => bin_vv_with(w, d, a, b, len, |x, y| x | y),
        BinKind::Xor => bin_vv_with(w, d, a, b, len, |x, y| x ^ y),
        BinKind::Sll => bin_vv_with(w, d, a, b, len, |x, y| x.wrapping_shl((y & 63) as u32)),
        BinKind::Srl => bin_vv_with(w, d, a, b, len, |x, y| x.wrapping_shr((y & 63) as u32)),
        BinKind::Sra => bin_vv_with(w, d, a, b, len, |x, y| ((x as i64) >> (y & 63)) as u64),
        BinKind::Mv => bin_vv_with(w, d, a, b, len, |_, y| y),
    }
}

/// Executes a compiled `.vx`/`.vi` arithmetic op with a loop-invariant
/// second operand.
pub(crate) fn exec_bin_vs(w: &mut [u64], kind: BinKind, d: usize, a: usize, y: u64, len: usize) {
    match kind {
        BinKind::Add => bin_vs_with(w, d, a, len, y, |x, y| x.wrapping_add(y)),
        BinKind::Sub => bin_vs_with(w, d, a, len, y, |x, y| x.wrapping_sub(y)),
        BinKind::Rsub => bin_vs_with(w, d, a, len, y, |x, y| y.wrapping_sub(x)),
        BinKind::And => bin_vs_with(w, d, a, len, y, |x, y| x & y),
        BinKind::Or => bin_vs_with(w, d, a, len, y, |x, y| x | y),
        BinKind::Xor => bin_vs_with(w, d, a, len, y, |x, y| x ^ y),
        BinKind::Sll => bin_vs_with(w, d, a, len, y, |x, y| x.wrapping_shl((y & 63) as u32)),
        BinKind::Srl => bin_vs_with(w, d, a, len, y, |x, y| x.wrapping_shr((y & 63) as u32)),
        BinKind::Sra => bin_vs_with(w, d, a, len, y, |x, y| ((x as i64) >> (y & 63)) as u64),
        BinKind::Mv => bin_vs_with(w, d, a, len, y, |_, y| y),
    }
}

/// Executes a compiled modulo-5 slide. In-place execution is safe: each
/// 5-block's sources are read into a local array before its writes, and
/// the permutation never crosses blocks. The disjoint case pre-splits
/// the ranges once and walks fixed-size 5-chunks, which keeps the inner
/// permutation free of per-element bounds checks.
/// Executes the fused θ idiom in one pass: per 5-block, the five-plane
/// parity, the two slide temporaries, the rotate and the plane updates.
/// Writes every register the 13-instruction sequence writes — `up`,
/// `rot` and `c` end up holding the slide-up lanes, the rotated
/// slide-down lanes and `D` respectively, exactly as the sequence
/// leaves them.
#[allow(clippy::too_many_arguments)] // mirrors the captured idiom operands
pub(crate) fn exec_theta(
    w: &mut [u64],
    planes: &[usize; 5],
    c: usize,
    up: usize,
    rot: usize,
    j_up: &[usize; 5],
    j_rot: &[usize; 5],
    amount: u32,
    n: usize,
) {
    let [p0, p1, p2, p3, p4, tc, tu, tr] = w
        .get_disjoint_mut([
            planes[0]..planes[0] + n,
            planes[1]..planes[1] + n,
            planes[2]..planes[2] + n,
            planes[3]..planes[3] + n,
            planes[4]..planes[4] + n,
            c..c + n,
            up..up + n,
            rot..rot + n,
        ])
        .expect(ALIAS_PROOF);
    // The kernel generators always slide up/down by one lane; the
    // canonical form is straight-line per block so the host vectorizer
    // sees fixed shuffles instead of indirect lane loads.
    let canonical = *j_up == [4, 0, 1, 2, 3] && *j_rot == [1, 2, 3, 4, 0];
    fn five(s: &mut [u64], b: usize) -> &mut [u64; 5] {
        (&mut s[b..b + 5]).try_into().expect("5-block within live")
    }
    for g in 0..n / 5 {
        let b = 5 * g;
        let (a0, a1, a2, a3, a4) = (
            five(p0, b),
            five(p1, b),
            five(p2, b),
            five(p3, b),
            five(p4, b),
        );
        let (bc, bu, br) = (five(tc, b), five(tu, b), five(tr, b));
        let par: [u64; 5] = std::array::from_fn(|x| a0[x] ^ a1[x] ^ a2[x] ^ a3[x] ^ a4[x]);
        let (u5, r5): ([u64; 5], [u64; 5]) = if canonical {
            (
                [par[4], par[0], par[1], par[2], par[3]],
                [
                    par[1].rotate_left(amount),
                    par[2].rotate_left(amount),
                    par[3].rotate_left(amount),
                    par[4].rotate_left(amount),
                    par[0].rotate_left(amount),
                ],
            )
        } else {
            (
                std::array::from_fn(|x| par[j_up[x]]),
                std::array::from_fn(|x| par[j_rot[x]].rotate_left(amount)),
            )
        };
        let d5: [u64; 5] = std::array::from_fn(|x| u5[x] ^ r5[x]);
        *bu = u5;
        *br = r5;
        *bc = d5;
        for x in 0..5 {
            a0[x] ^= d5[x];
            a1[x] ^= d5[x];
            a2[x] ^= d5[x];
            a3[x] ^= d5[x];
            a4[x] ^= d5[x];
        }
    }
}

/// Executes the fused χ idiom in one pass: per 5-block position,
/// `t2 = s[j2]`, `t1 = (s[j1] ^ y) & t2`, `d = s ^ t1` — the exact
/// final state of the five-instruction sequence.
#[allow(clippy::too_many_arguments)] // mirrors the captured idiom operands
pub(crate) fn exec_chi(
    w: &mut [u64],
    s: usize,
    t1: usize,
    t2: usize,
    d: usize,
    y: u64,
    j1: &[usize; 5],
    j2: &[usize; 5],
    n: usize,
) {
    let [sv, m1, m2, dd] = w
        .get_disjoint_mut([s..s + n, t1..t1 + n, t2..t2 + n, d..d + n])
        .expect(ALIAS_PROOF);
    // The kernel generators always slide down by one and two lanes;
    // straight-line per block for the canonical form.
    let canonical = *j1 == [1, 2, 3, 4, 0] && *j2 == [2, 3, 4, 0, 1];
    for (((sb, b1), b2), db) in sv
        .chunks_exact(5)
        .zip(m1.chunks_exact_mut(5))
        .zip(m2.chunks_exact_mut(5))
        .zip(dd.chunks_exact_mut(5))
    {
        let sb: &[u64; 5] = sb.try_into().expect("chunks_exact yields 5");
        let b1: &mut [u64; 5] = b1.try_into().expect("chunks_exact yields 5");
        let b2: &mut [u64; 5] = b2.try_into().expect("chunks_exact yields 5");
        let db: &mut [u64; 5] = db.try_into().expect("chunks_exact yields 5");
        if canonical {
            let t1v = [
                (sb[1] ^ y) & sb[2],
                (sb[2] ^ y) & sb[3],
                (sb[3] ^ y) & sb[4],
                (sb[4] ^ y) & sb[0],
                (sb[0] ^ y) & sb[1],
            ];
            *b2 = [sb[2], sb[3], sb[4], sb[0], sb[1]];
            *b1 = t1v;
            *db = [
                sb[0] ^ t1v[0],
                sb[1] ^ t1v[1],
                sb[2] ^ t1v[2],
                sb[3] ^ t1v[3],
                sb[4] ^ t1v[4],
            ];
        } else {
            for x in 0..5 {
                let s2 = sb[j2[x]];
                let m = (sb[j1[x]] ^ y) & s2;
                b2[x] = s2;
                b1[x] = m;
                db[x] = sb[x] ^ m;
            }
        }
    }
}

pub(crate) fn exec_slide(w: &mut [u64], d: usize, s: usize, blocks: usize, src_j: &[usize; 5]) {
    let n = 5 * blocks;
    if d == s {
        for i in 0..blocks {
            let sb = s + 5 * i;
            let tmp = [
                w[sb + src_j[0]],
                w[sb + src_j[1]],
                w[sb + src_j[2]],
                w[sb + src_j[3]],
                w[sb + src_j[4]],
            ];
            w[d + 5 * i..d + 5 * i + 5].copy_from_slice(&tmp);
        }
    } else {
        let [dst, src] = w.get_disjoint_mut([d..d + n, s..s + n]).expect(ALIAS_PROOF);
        for (dc, sc) in dst.chunks_exact_mut(5).zip(src.chunks_exact(5)) {
            let dc: &mut [u64; 5] = dc.try_into().expect("chunks_exact yields 5");
            let sc: &[u64; 5] = sc.try_into().expect("chunks_exact yields 5");
            *dc = [
                sc[src_j[0]],
                sc[src_j[1]],
                sc[src_j[2]],
                sc[src_j[3]],
                sc[src_j[4]],
            ];
        }
    }
}

/// Executes a compiled constant rotate (`vrotup`).
pub(crate) fn exec_rot(w: &mut [u64], d: usize, s: usize, len: usize, amount: u32) {
    if d == s {
        for x in &mut w[d..d + len] {
            *x = x.rotate_left(amount);
        }
    } else {
        let [dst, src] = w
            .get_disjoint_mut([d..d + len, s..s + len])
            .expect(ALIAS_PROOF);
        for (x, &y) in dst.iter_mut().zip(src.iter()) {
            *x = y.rotate_left(amount);
        }
    }
}

/// Executes a compiled ρ rotation with a precomputed offset table.
pub(crate) fn exec_rho(w: &mut [u64], d: usize, s: usize, rots: &[u32]) {
    if d == s {
        for (x, &rot) in w[d..d + rots.len()].iter_mut().zip(rots.iter()) {
            *x = x.rotate_left(rot);
        }
    } else {
        let [dst, src] = w
            .get_disjoint_mut([d..d + rots.len(), s..s + rots.len()])
            .expect(ALIAS_PROOF);
        for ((x, &y), &rot) in dst.iter_mut().zip(src.iter()).zip(rots.iter()) {
            *x = y.rotate_left(rot);
        }
    }
}

/// Executes a compiled π scatter. Sources are compile-proven disjoint
/// from the destination column span, so the two spans split once and
/// write order is free. The per-state inner loop is monomorphized for
/// the common state counts so it fully unrolls.
#[allow(clippy::too_many_arguments)] // mirrors the op's span fields
pub(crate) fn exec_pi(
    w: &mut [u64],
    d: usize,
    d_len: usize,
    s: usize,
    s_len: usize,
    segs: &[PiSeg],
    states: usize,
) {
    let [dst, src] = w
        .get_disjoint_mut([d..d + d_len, s..s + s_len])
        .expect(ALIAS_PROOF);
    match states {
        1 => pi_states::<1>(dst, src, segs),
        2 => pi_states::<2>(dst, src, segs),
        3 => pi_states::<3>(dst, src, segs),
        4 => pi_states::<4>(dst, src, segs),
        _ => {
            for seg in segs {
                for st in 0..states {
                    dst[seg.dst + 5 * st] = src[seg.src + 5 * st].rotate_left(seg.rot);
                }
            }
        }
    }
}

/// Executes an all-rows π in transposed form: destination planes are
/// written sequentially (5-block by 5-block), gathering from the five
/// source planes. See [`Op::PiPlanes`].
pub(crate) fn exec_pi_planes(
    w: &mut [u64],
    d: usize,
    elenum: usize,
    s: usize,
    s_len: usize,
    spec: &[[PiSpec; 5]; 5],
    states: usize,
) {
    let [dst, src] = w
        .get_disjoint_mut([d..d + 5 * elenum, s..s + s_len])
        .expect(ALIAS_PROOF);
    // The unfused `vpi` (the only form the kernels emit) has every
    // rotation zero; the pure-gather loop lets the host vectorize the
    // stores without a rotate in the dependency chain.
    let rotated = spec.iter().flatten().any(|e| e.rot != 0);
    for (y, sp) in spec.iter().enumerate() {
        let plane = &mut dst[y * elenum..y * elenum + 5 * states];
        if rotated {
            for st in 0..states {
                let b = 5 * st;
                for (r, e) in sp.iter().enumerate() {
                    plane[b + r] = src[e.off + b].rotate_left(e.rot);
                }
            }
        } else {
            for (b, blk) in plane.chunks_exact_mut(5).enumerate() {
                let blk: &mut [u64; 5] = blk.try_into().expect("chunks_exact yields 5");
                let b = 5 * b;
                *blk = [
                    src[sp[0].off + b],
                    src[sp[1].off + b],
                    src[sp[2].off + b],
                    src[sp[3].off + b],
                    src[sp[4].off + b],
                ];
            }
        }
    }
}

#[inline]
fn pi_states<const STATES: usize>(dst: &mut [u64], src: &[u64], segs: &[PiSeg]) {
    for seg in segs {
        for st in 0..STATES {
            dst[seg.dst + 5 * st] = src[seg.src + 5 * st].rotate_left(seg.rot);
        }
    }
}

/// Executes the write phase of a compiled `viota` (the round constant
/// was already resolved — and its index validated — by the caller).
pub(crate) fn exec_iota(w: &mut [u64], d: usize, s: usize, len: usize, rc: u64) {
    if d == s {
        for x in w[d..d + len].iter_mut().step_by(5) {
            *x ^= rc;
        }
    } else {
        let [dst, src] = w
            .get_disjoint_mut([d..d + len, s..s + len])
            .expect(ALIAS_PROOF);
        dst.copy_from_slice(src);
        for x in dst.iter_mut().step_by(5) {
            *x ^= rc;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timing::TimingModel;
    use krv_isa::{Lmul, Sew, Vtype};

    fn ctx(vl: u32, elenum: u32, sew: Sew, lmul: Lmul) -> BlockCtx {
        let vtype = Vtype::new(sew, lmul);
        let epr = elenum * 8 / sew.bytes();
        BlockCtx {
            vl,
            vtype: vtype.zimm(),
            epr,
            sew_bits: sew.bits(),
        }
    }

    fn geometry(elenum: usize) -> Geometry {
        Geometry {
            elenum,
            words_len: 32 * elenum,
            elen64: true,
        }
    }

    fn program(instrs: &[Instruction]) -> DecodedProgram {
        DecodedProgram::compile(instrs, &TimingModel::paper())
    }

    const XREGS: [u32; 32] = [0; 32];

    #[test]
    fn compiled_cost_matches_the_fused_block() {
        let v = VReg::from_index;
        let prog = program(&[
            Instruction::addi(XReg::X5, XReg::X5, 1),
            Instruction::varith(VArithOp::Xor, v(8), v(8), VSource::Vector(v(16))),
            Instruction::VLoad {
                eew: Sew::E64,
                vd: v(1),
                rs1: XReg::X10,
                mode: MemMode::UnitStride,
                vm: true,
            },
        ]);
        let block = prog.fused_block_at(0).expect("fuses");
        let ctx = ctx(20, 20, Sew::E64, Lmul::M1);
        let compiled = compile_region(&prog, 0, ctx, geometry(20), &XREGS).expect("compiles");
        assert_eq!(
            compiled.total_cycles,
            block.cost(ctx.groups(), ctx.vl),
            "ledger must reproduce the interpreted block cost"
        );
        assert_eq!(compiled.total_vector, 2);
        assert_eq!(compiled.len, 3);
        assert_eq!(compiled.ledger[0].prefix_cycles, 0);
        assert_eq!(compiled.ledger[1].prefix_cycles, 1, "after the addi");
        assert_eq!(compiled.worst_cost(), compiled.total_cycles);
    }

    #[test]
    fn masked_and_mask_producing_ops_truncate_the_region() {
        let v = VReg::from_index;
        let masked = program(&[
            Instruction::addi(XReg::X5, XReg::X5, 1),
            Instruction::VArith {
                op: VArithOp::Xor,
                vd: v(1),
                vs2: v(2),
                src: VSource::Vector(v(3)),
                vm: false,
            },
        ]);
        let ctx = ctx(10, 10, Sew::E64, Lmul::M1);
        let block = compile_region(&masked, 0, ctx, geometry(10), &XREGS).expect("prefix compiles");
        assert_eq!(block.len, 1, "region ends before the masked op");
        let mask_op = program(&[
            Instruction::varith(VArithOp::Mseq, v(0), v(2), VSource::Imm(5)),
            Instruction::addi(XReg::X5, XReg::X5, 1),
        ]);
        assert!(
            compile_region(&mask_op, 0, ctx, geometry(10), &XREGS).is_none(),
            "a region whose first op is unlowerable is refused"
        );
    }

    #[test]
    fn partial_group_overlap_is_refused() {
        let v = VReg::from_index;
        // Spanning 12 lanes from V0 and V1 on an elenum=10 file overlaps
        // partially — the interpreter snapshots; the compiler refuses.
        let prog = program(&[Instruction::varith(
            VArithOp::Add,
            v(0),
            v(0),
            VSource::Vector(v(1)),
        )]);
        let ctx = ctx(12, 10, Sew::E64, Lmul::M8);
        assert!(compile_region(&prog, 0, ctx, geometry(10), &XREGS).is_none());
    }

    #[test]
    fn sub_word_sew_refuses_vector_but_not_scalar_regions() {
        let v = VReg::from_index;
        let vec = program(&[Instruction::varith(
            VArithOp::Add,
            v(1),
            v(2),
            VSource::Vector(v(3)),
        )]);
        let c32 = ctx(10, 10, Sew::E32, Lmul::M1);
        assert!(compile_region(&vec, 0, c32, geometry(10), &XREGS).is_none());
        let scalar = program(&[
            Instruction::addi(XReg::X5, XReg::X5, 1),
            Instruction::addi(XReg::X6, XReg::X5, 2),
        ]);
        let block = compile_region(&scalar, 0, c32, geometry(10), &XREGS).expect("compiles");
        assert_eq!(block.len, 2);
    }

    #[test]
    fn regions_span_vsetvli_and_terminate_at_branches() {
        let v = VReg::from_index;
        let mut xregs = XREGS;
        xregs[9] = 7; // s1 = x9: AVL for the vsetvli
        let prog = program(&[
            Instruction::varith(VArithOp::Xor, v(1), v(2), VSource::Vector(v(3))),
            Instruction::Vsetvli {
                rd: XReg::X0,
                rs1: XReg::X9,
                vtype: Vtype::new(Sew::E64, Lmul::M1),
            },
            Instruction::varith(VArithOp::Add, v(4), v(5), VSource::Vector(v(6))),
            Instruction::Branch {
                kind: krv_isa::BranchKind::Bne,
                rs1: XReg::X9,
                rs2: XReg::X0,
                offset: -12,
            },
            Instruction::addi(XReg::X5, XReg::X5, 1),
        ]);
        let entry = ctx(10, 10, Sew::E64, Lmul::M1);
        let block = compile_region(&prog, 0, entry, geometry(10), &xregs).expect("compiles");
        assert_eq!(block.len, 4, "vsetvli and branch stay inside the region");
        let Op::Vsetvli {
            expected_vl,
            expected_vtype,
            ..
        } = block.ops[1]
        else {
            panic!("op 1 should be the guarded vsetvli");
        };
        assert_eq!(expected_vl, 7, "granted VL predicted from x9");
        assert_eq!(expected_vtype, Vtype::new(Sew::E64, Lmul::M1).zimm());
        let Op::Branch {
            target,
            taken_cost,
            not_cost,
            ..
        } = block.ops[3]
        else {
            panic!("op 3 should be the terminal branch");
        };
        assert_eq!(target, 0, "pc 12 - 12 lands on the region start");
        assert!(taken_cost >= not_cost);
        assert_eq!(block.branch_costs, Some((taken_cost, not_cost)));
        assert_eq!(block.worst_cost(), block.total_cycles + taken_cost);
        // Ops after the vsetvli are lowered under the new VL.
        let Op::BinVV { len, .. } = block.ops[2] else {
            panic!("op 2 should be the vadd");
        };
        assert_eq!(len, 7, "lowered under the predicted configuration");
    }

    #[test]
    fn vsetvli_that_would_trap_truncates_the_region() {
        let v = VReg::from_index;
        let prog = program(&[
            Instruction::varith(VArithOp::Xor, v(1), v(2), VSource::Vector(v(3))),
            Instruction::Vsetvli {
                rd: XReg::X0,
                rs1: XReg::X9,
                vtype: Vtype::new(Sew::E64, Lmul::M1),
            },
        ]);
        let entry = ctx(10, 10, Sew::E64, Lmul::M1);
        // ELEN = 32 hardware: SEW = 64 makes `set_config` trap.
        let g32 = Geometry {
            elenum: 10,
            words_len: 160,
            elen64: false,
        };
        let block = compile_region(&prog, 0, ctx(10, 10, Sew::E32, Lmul::M1), g32, &XREGS);
        // First op refuses on ELEN=32 (no 64-bit word path), so the
        // region is refused outright there; use a scalar prefix instead.
        assert!(block.is_none());
        let scalar = program(&[
            Instruction::addi(XReg::X5, XReg::X5, 1),
            Instruction::Vsetvli {
                rd: XReg::X0,
                rs1: XReg::X9,
                vtype: Vtype::new(Sew::E64, Lmul::M1),
            },
        ]);
        let block = compile_region(&scalar, 0, ctx(10, 10, Sew::E32, Lmul::M1), g32, &XREGS)
            .expect("prefix");
        assert_eq!(block.len, 1, "region ends before the trapping vsetvli");
        let _ = entry;
    }

    #[test]
    fn pool_memoizes_per_configuration() {
        let v = VReg::from_index;
        let prog = Arc::new(program(&[
            Instruction::addi(XReg::X5, XReg::X5, 1),
            Instruction::varith(VArithOp::Xor, v(1), v(2), VSource::Vector(v(3))),
        ]));
        let compiled = CompiledProgram::new(Arc::clone(&prog));
        let g = geometry(10);
        let a = ctx(10, 10, Sew::E64, Lmul::M1);
        let b = ctx(5, 10, Sew::E64, Lmul::M1);
        let first = compiled.block_for(0, a, g, &XREGS).expect("compiles");
        let again = compiled.block_for(0, a, g, &XREGS).expect("cached");
        assert!(Arc::ptr_eq(&first, &again), "same configuration is shared");
        let other = compiled.block_for(0, b, g, &XREGS).expect("compiles");
        assert!(!Arc::ptr_eq(&first, &other), "configurations are distinct");
        assert_eq!(compiled.compiled_blocks(), 2);
        assert_eq!(compiled.refused_blocks(), 0);
    }

    // -----------------------------------------------------------------
    // Fused-idiom matching: the verbatim kernel sequences must fuse
    // with the expected captures, and near misses must not.
    // -----------------------------------------------------------------

    /// The θ sequence exactly as the E64 kernels emit it.
    const THETA_SOURCE: &str = "vxor.vv v5, v3, v4\n\
                                vxor.vv v6, v1, v2\n\
                                vxor.vv v7, v0, v6\n\
                                vxor.vv v5, v5, v7\n\
                                vslideupm.vi v6, v5, 1\n\
                                vslidedownm.vi v7, v5, 1\n\
                                vrotup.vi v7, v7, 1\n\
                                vxor.vv v5, v6, v7\n\
                                vxor.vv v0, v0, v5\n\
                                vxor.vv v1, v1, v5\n\
                                vxor.vv v2, v2, v5\n\
                                vxor.vv v3, v3, v5\n\
                                vxor.vv v4, v4, v5";

    /// The χ sequence exactly as the LMUL=8 kernels emit it.
    const CHI_SOURCE: &str = "vslidedownm.vi v16, v8, 1\n\
                              vxor.vx v16, v16, s2\n\
                              vslidedownm.vi v24, v8, 2\n\
                              vand.vv v16, v16, v24\n\
                              vxor.vv v0, v8, v16";

    fn compile_source(source: &str, c: BlockCtx, elenum: usize) -> CompiledBlock {
        let prog = program(krv_asm::assemble(source).expect("assembles").instructions());
        compile_region(&prog, 0, c, geometry(elenum), &XREGS).expect("compiles")
    }

    #[test]
    fn theta_idiom_fuses_with_canonical_captures() {
        let block = compile_source(THETA_SOURCE, ctx(10, 10, Sew::E64, Lmul::M1), 10);
        assert_eq!(block.fused.len(), 1, "exactly one span");
        let span = &block.fused[0];
        assert_eq!((span.start, span.len), (0, THETA_LEN));
        let FusedOp::Theta {
            planes,
            c,
            up,
            rot,
            j_up,
            j_rot,
            amount,
            n,
        } = &span.op
        else {
            panic!("expected θ, got {:?}", span.op);
        };
        // epr = 10 at m1: v0..v4 → words 0/10/20/30/40, temps v5/v6/v7.
        assert_eq!(*planes, [0, 10, 20, 30, 40]);
        assert_eq!((*c, *up, *rot), (50, 60, 70));
        assert_eq!(*j_up, [4, 0, 1, 2, 3], "slide-up lane table");
        assert_eq!(*j_rot, [1, 2, 3, 4, 0], "slide-down lane table");
        assert_eq!((*amount, *n), (1, 10));
        assert!(block.fused_span(0).is_some());
        assert!((1..THETA_LEN).all(|k| block.fused_span(k).is_none()));
    }

    #[test]
    fn chi_idiom_fuses_at_lmul8() {
        let block = compile_source(CHI_SOURCE, ctx(25, 10, Sew::E64, Lmul::M8), 10);
        assert_eq!(block.fused.len(), 1, "exactly one span");
        let span = &block.fused[0];
        assert_eq!((span.start, span.len), (0, CHI_LEN));
        let FusedOp::Chi {
            s,
            t1,
            t2,
            d,
            rs1,
            j1,
            j2,
            n,
        } = &span.op
        else {
            panic!("expected χ, got {:?}", span.op);
        };
        // epr = 10: groups v8/v16/v24/v0 → words 80/160/240/0.
        assert_eq!((*s, *t1, *t2, *d), (80, 160, 240, 0));
        assert_eq!(*rs1, 18, "s2 = x18 read at run time");
        assert_eq!(*j1, [1, 2, 3, 4, 0]);
        assert_eq!(*j2, [2, 3, 4, 0, 1]);
        assert_eq!(*n, 25);
    }

    #[test]
    fn near_miss_idioms_take_the_unfused_path() {
        let c1 = ctx(10, 10, Sew::E64, Lmul::M1);
        // Broken wiring: the D combine reads the parity instead of the
        // slide-up temporary.
        let miswired = THETA_SOURCE.replace("vxor.vv v5, v6, v7", "vxor.vv v5, v5, v7");
        assert!(compile_source(&miswired, c1, 10).fused.is_empty());
        // A stray op inserted mid-sequence.
        let broken = THETA_SOURCE.replace(
            "vrotup.vi v7, v7, 1",
            "vrotup.vi v7, v7, 1\nvor.vv v6, v6, v6",
        );
        assert!(compile_source(&broken, c1, 10).fused.is_empty());
        // Overlapping registers: χ writing its own source group.
        let c8 = ctx(25, 10, Sew::E64, Lmul::M8);
        let aliased = CHI_SOURCE.replace("vxor.vv v0, v8, v16", "vxor.vv v8, v8, v16");
        assert!(compile_source(&aliased, c8, 10).fused.is_empty());
        // Non-canonical slide offsets still fuse — the lane tables are
        // captured, not assumed.
        let offbeat = THETA_SOURCE
            .replace("vslideupm.vi v6, v5, 1", "vslideupm.vi v6, v5, 3")
            .replace("vrotup.vi v7, v7, 1", "vrotup.vi v7, v7, 17");
        let block = compile_source(&offbeat, c1, 10);
        assert_eq!(block.fused.len(), 1);
        let FusedOp::Theta { j_up, amount, .. } = &block.fused[0].op else {
            panic!("expected θ");
        };
        assert_eq!(*j_up, [2, 3, 4, 0, 1], "offset 3 lane table");
        assert_eq!(*amount, 17);
    }

    #[test]
    fn fused_execution_matches_member_ops() {
        // The fused single-pass executors must leave the register file
        // bit-identical to running the captured member ops in order.
        fn fill(len: usize) -> Vec<u64> {
            let mut x = 0x243F_6A88_85A3_08D3u64;
            (0..len)
                .map(|_| {
                    x = x.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
                    x
                })
                .collect()
        }
        let mut xregs = XREGS;
        xregs[18] = u32::MAX; // s2 = -1 for the χ complement
        for (source, c) in [
            (THETA_SOURCE, ctx(10, 10, Sew::E64, Lmul::M1)),
            (CHI_SOURCE, ctx(25, 10, Sew::E64, Lmul::M8)),
        ] {
            let prog = program(krv_asm::assemble(source).expect("assembles").instructions());
            let block = compile_region(&prog, 0, c, geometry(10), &xregs).expect("compiles");
            let span = block.fused.first().expect("fuses");

            let mut by_members = fill(32 * 10);
            for op in &block.ops[span.start..span.start + span.len] {
                match *op {
                    Op::BinVV { kind, d, a, b, len } => {
                        exec_bin_vv(&mut by_members, kind, d, a, b, len);
                    }
                    Op::BinVX {
                        kind,
                        d,
                        a,
                        rs1,
                        len,
                    } => {
                        let y = xregs[rs1] as i32 as i64 as u64;
                        exec_bin_vs(&mut by_members, kind, d, a, y, len);
                    }
                    Op::SlideMod5 {
                        d,
                        s,
                        blocks,
                        ref src_j,
                    } => {
                        exec_slide(&mut by_members, d, s, blocks, src_j);
                    }
                    Op::RotConst { d, s, len, amount } => {
                        exec_rot(&mut by_members, d, s, len, amount);
                    }
                    ref other => panic!("unexpected member op {other:?}"),
                }
            }

            let mut by_fusion = fill(32 * 10);
            match span.op {
                FusedOp::Theta {
                    ref planes,
                    c,
                    up,
                    rot,
                    ref j_up,
                    ref j_rot,
                    amount,
                    n,
                } => exec_theta(&mut by_fusion, planes, c, up, rot, j_up, j_rot, amount, n),
                FusedOp::Chi {
                    s,
                    t1,
                    t2,
                    d,
                    rs1,
                    ref j1,
                    ref j2,
                    n,
                } => {
                    let y = xregs[rs1] as i32 as i64 as u64;
                    exec_chi(&mut by_fusion, s, t1, t2, d, y, j1, j2, n);
                }
            }
            assert_eq!(by_members, by_fusion, "{source}");
        }
    }
}

#[cfg(test)]
mod fused_micro {
    use super::*;
    use std::time::Instant;

    #[test]
    #[ignore = "timing probe, run by hand with --release"]
    fn time_round_ops() {
        let mut w = vec![0x0123_4567_89AB_CDEFu64; 640];
        for (i, x) in w.iter_mut().enumerate() {
            *x = (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        }
        let planes = [0usize, 20, 40, 60, 80];
        let j_up = [4usize, 0, 1, 2, 3];
        let j_rot = [1usize, 2, 3, 4, 0];
        let rots: Box<[u32]> = (0..100).map(|g| RHO_OFFSETS[g / 20][g % 5]).collect();
        let spec: Box<[[PiSpec; 5]; 5]> = Box::new(std::array::from_fn(|y| {
            std::array::from_fn(|r| PiSpec {
                off: r * 20 + (r + 3 * y) % 5,
                rot: 0,
            })
        }));
        const REPS: u32 = 200_000;
        let mut best = [f64::INFINITY; 4];
        for _ in 0..5 {
            let t = Instant::now();
            for _ in 0..REPS {
                exec_theta(&mut w, &planes, 100, 120, 140, &j_up, &j_rot, 1, 20);
            }
            best[0] = best[0].min(t.elapsed().as_secs_f64());
            let t = Instant::now();
            for _ in 0..REPS {
                exec_rho(&mut w, 160, 160, &rots);
            }
            best[1] = best[1].min(t.elapsed().as_secs_f64());
            let t = Instant::now();
            for _ in 0..REPS {
                exec_pi_planes(&mut w, 160, 20, 0, 100, &spec, 4);
            }
            best[2] = best[2].min(t.elapsed().as_secs_f64());
            let t = Instant::now();
            for _ in 0..REPS {
                exec_chi(
                    &mut w,
                    160,
                    320,
                    480,
                    0,
                    u64::MAX,
                    &j_rot,
                    &[2, 3, 4, 0, 1],
                    100,
                );
            }
            best[3] = best[3].min(t.elapsed().as_secs_f64());
        }
        for (name, b) in ["theta", "rho", "pi", "chi"].iter().zip(best) {
            println!("{name}: {:.1}ns", b / REPS as f64 * 1e9);
        }
    }
}
