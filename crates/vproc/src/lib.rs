//! Cycle-accurate simulator of the scalable SIMD RISC-V processor.
//!
//! This crate models the hardware platform of the paper (§2.2, Figure 3):
//! a scalar **Ibex-like RV32IM core** coupled to a **vector processing
//! unit** with 32 vector registers of `EleNum × ELEN` bits, a vector
//! load/store unit, and an execution lane array — extended with the ten
//! custom Keccak vector instructions realized in SystemVerilog in the
//! original work and in [`exec::custom`] here.
//!
//! The simulator is *functionally* bit-exact (validated against the
//! reference permutation in `krv-keccak`) and *temporally* calibrated: the
//! [`timing::TimingModel`] reproduces the per-instruction cycle counts
//! annotated in the paper's Algorithms 2 and 3 (e.g. 2 cc for an LMUL=1
//! vector ALU operation, 6 cc at LMUL=8, 3/7 cc for `vpi`), which in turn
//! reproduce the paper's 103 / 75 / 147 cycles-per-round results.
//!
//! # Example
//!
//! ```
//! use krv_vproc::{Processor, ProcessorConfig};
//! use krv_asm::assemble;
//!
//! let program = assemble("li a0, 7\nli a1, 35\nadd a0, a0, a1\necall")?;
//! let mut cpu = Processor::new(ProcessorConfig::elen64(10));
//! cpu.load_program(program.instructions());
//! cpu.run(10_000)?;
//! assert_eq!(cpu.xreg(krv_isa::XReg::X10), 42);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compiled;
pub mod config;
pub mod decoded;
pub mod exec;
pub mod memory;
pub mod processor;
pub mod timing;
pub mod trace;
pub mod trap;
pub mod vector;

pub use compiled::CompiledProgram;
pub use config::{Elen, ProcessorConfig};
pub use decoded::{DecodedInstr, DecodedProgram, FusedBlock, TimingClass};
pub use memory::DataMemory;
pub use processor::{HaltCause, Processor, RunSummary};
pub use timing::TimingModel;
pub use trace::{TraceEntry, Tracer};
pub use trap::Trap;
pub use vector::VectorUnit;
