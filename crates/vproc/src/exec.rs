//! Execution semantics of vector instructions.
//!
//! [`standard`] implements the RVV 1.0 subset; [`custom`] implements the
//! ten Keccak extensions bit-exactly as specified in paper Tables 1, 3,
//! 4 and 5 (including the `lmul_cnt` row counter and the column-mode
//! register-file writes of `vpi`).

pub mod custom;
pub mod standard;

use crate::trap::Trap;
use crate::vector::VectorUnit;

/// Sign-extends `value` from the current SEW to 64 bits.
pub(crate) fn sign_extend_sew(vu: &VectorUnit, value: u64) -> i64 {
    let bits = vu.vtype().sew().bits();
    if bits == 64 {
        value as i64
    } else {
        let shift = 64 - bits;
        ((value << shift) as i64) >> shift
    }
}

/// The number of complete 5-element Keccak blocks covered by VL.
///
/// The paper's custom instructions operate only on elements
/// `0 .. 5 × SN − 1` (§3.3); elements beyond are untouched.
pub(crate) fn keccak_blocks(vu: &VectorUnit) -> usize {
    vu.vl() as usize / 5
}

/// Checks that multi-register custom block operations do not straddle
/// register boundaries: when VL exceeds one register, the per-register
/// element count must be a multiple of 5 (which the paper guarantees by
/// choosing `EleNum` as 5 × SN).
pub(crate) fn check_block_alignment(vu: &VectorUnit) -> Result<(), Trap> {
    let epr = vu.elements_per_register() as usize;
    if vu.vl() as usize > epr && !epr.is_multiple_of(5) {
        return Err(Trap::VectorConfig {
            reason: "multi-register Keccak ops require EleNum to be a multiple of 5",
        });
    }
    Ok(())
}
