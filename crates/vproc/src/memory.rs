//! Byte-addressable data memory with little-endian accessors.

use crate::trap::Trap;

/// The simulated data memory of the SoC (paper Figure 3, "Data Mem").
///
/// All multi-byte accesses are little-endian and must be naturally
/// aligned, as on the modelled Ibex core.
#[derive(Debug, Clone)]
pub struct DataMemory {
    bytes: Vec<u8>,
}

impl DataMemory {
    /// Creates a zero-initialized memory of `size` bytes.
    pub fn new(size: usize) -> Self {
        Self {
            bytes: vec![0; size],
        }
    }

    /// Memory size in bytes.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// Whether the memory has zero size.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    fn check(&self, addr: u32, size: u32) -> Result<usize, Trap> {
        let addr_usize = addr as usize;
        if !addr.is_multiple_of(size) {
            return Err(Trap::MisalignedAccess { addr, size });
        }
        if addr_usize + size as usize > self.bytes.len() {
            return Err(Trap::MemoryAccess { addr, size });
        }
        Ok(addr_usize)
    }

    /// Reads `size` bytes (1, 2, 4 or 8) little-endian.
    ///
    /// # Errors
    ///
    /// Returns a [`Trap`] for out-of-bounds or misaligned accesses.
    pub fn read(&self, addr: u32, size: u32) -> Result<u64, Trap> {
        debug_assert!(matches!(size, 1 | 2 | 4 | 8));
        let base = self.check(addr, size)?;
        Ok(match size {
            1 => self.bytes[base] as u64,
            2 => u16::from_le_bytes(self.bytes[base..base + 2].try_into().unwrap()) as u64,
            4 => u32::from_le_bytes(self.bytes[base..base + 4].try_into().unwrap()) as u64,
            _ => u64::from_le_bytes(self.bytes[base..base + 8].try_into().unwrap()),
        })
    }

    /// Writes the low `size` bytes (1, 2, 4 or 8) of `value` little-endian.
    ///
    /// # Errors
    ///
    /// Returns a [`Trap`] for out-of-bounds or misaligned accesses.
    pub fn write(&mut self, addr: u32, size: u32, value: u64) -> Result<(), Trap> {
        debug_assert!(matches!(size, 1 | 2 | 4 | 8));
        let base = self.check(addr, size)?;
        match size {
            1 => self.bytes[base] = value as u8,
            2 => self.bytes[base..base + 2].copy_from_slice(&(value as u16).to_le_bytes()),
            4 => self.bytes[base..base + 4].copy_from_slice(&(value as u32).to_le_bytes()),
            _ => self.bytes[base..base + 8].copy_from_slice(&value.to_le_bytes()),
        }
        Ok(())
    }

    /// Bulk little-endian read of `out.len()` aligned 64-bit words
    /// starting at `addr`, for the compiled-tier fast path. Returns
    /// `false` without touching `out` if the region is misaligned or out
    /// of bounds — for unit-stride 8-byte accesses that predicate is
    /// exactly "every element-wise access would succeed", so callers can
    /// fall back to the element-serial path for identical trap behaviour.
    pub(crate) fn read_words64(&self, addr: u32, out: &mut [u64]) -> bool {
        if out.is_empty() {
            return true;
        }
        let base = addr as usize;
        if !addr.is_multiple_of(8) || base + 8 * out.len() > self.bytes.len() {
            return false;
        }
        for (chunk, word) in self.bytes[base..base + 8 * out.len()]
            .chunks_exact(8)
            .zip(out.iter_mut())
        {
            *word = u64::from_le_bytes(chunk.try_into().unwrap());
        }
        true
    }

    /// Bulk little-endian write of aligned 64-bit words at `addr`
    /// (counterpart of [`DataMemory::read_words64`]). Returns `false`
    /// without writing anything if the region is misaligned or out of
    /// bounds.
    pub(crate) fn write_words64(&mut self, addr: u32, src: &[u64]) -> bool {
        if src.is_empty() {
            return true;
        }
        let base = addr as usize;
        if !addr.is_multiple_of(8) || base + 8 * src.len() > self.bytes.len() {
            return false;
        }
        for (chunk, word) in self.bytes[base..base + 8 * src.len()]
            .chunks_exact_mut(8)
            .zip(src.iter())
        {
            chunk.copy_from_slice(&word.to_le_bytes());
        }
        true
    }

    /// Bulk little-endian read of `out.len()` aligned 64-bit words at
    /// `addr` — the public staging counterpart of the compiled tier's
    /// fast path, so hosts can move whole state blocks without one
    /// bounds-checked call per lane.
    ///
    /// # Errors
    ///
    /// Returns a [`Trap`] if the region is misaligned or out of bounds.
    pub fn read_block64(&self, addr: u32, out: &mut [u64]) -> Result<(), Trap> {
        if self.read_words64(addr, out) {
            Ok(())
        } else {
            Err(Trap::MemoryAccess {
                addr,
                size: (8 * out.len()) as u32,
            })
        }
    }

    /// Bulk little-endian write of aligned 64-bit words at `addr`
    /// (counterpart of [`DataMemory::read_block64`]).
    ///
    /// # Errors
    ///
    /// Returns a [`Trap`] if the region is misaligned or out of bounds.
    pub fn write_block64(&mut self, addr: u32, src: &[u64]) -> Result<(), Trap> {
        if self.write_words64(addr, src) {
            Ok(())
        } else {
            Err(Trap::MemoryAccess {
                addr,
                size: (8 * src.len()) as u32,
            })
        }
    }

    /// Copies a byte slice into memory at `addr` (no alignment required).
    ///
    /// # Errors
    ///
    /// Returns a [`Trap`] if the region exceeds the memory.
    pub fn write_bytes(&mut self, addr: u32, data: &[u8]) -> Result<(), Trap> {
        let base = addr as usize;
        if base + data.len() > self.bytes.len() {
            return Err(Trap::MemoryAccess {
                addr,
                size: data.len() as u32,
            });
        }
        self.bytes[base..base + data.len()].copy_from_slice(data);
        Ok(())
    }

    /// Reads `len` bytes starting at `addr` (no alignment required).
    ///
    /// # Errors
    ///
    /// Returns a [`Trap`] if the region exceeds the memory.
    pub fn read_bytes(&self, addr: u32, len: usize) -> Result<Vec<u8>, Trap> {
        let base = addr as usize;
        if base + len > self.bytes.len() {
            return Err(Trap::MemoryAccess {
                addr,
                size: len as u32,
            });
        }
        Ok(self.bytes[base..base + len].to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn little_endian_round_trip() {
        let mut mem = DataMemory::new(64);
        mem.write(8, 8, 0x0102_0304_0506_0708).unwrap();
        assert_eq!(mem.read(8, 8).unwrap(), 0x0102_0304_0506_0708);
        assert_eq!(mem.read(8, 1).unwrap(), 0x08);
        assert_eq!(mem.read(12, 4).unwrap(), 0x0102_0304);
    }

    #[test]
    fn misaligned_access_traps() {
        let mem = DataMemory::new(64);
        assert_eq!(
            mem.read(2, 4),
            Err(Trap::MisalignedAccess { addr: 2, size: 4 })
        );
    }

    #[test]
    fn out_of_bounds_traps() {
        let mut mem = DataMemory::new(16);
        assert_eq!(
            mem.write(16, 4, 0),
            Err(Trap::MemoryAccess { addr: 16, size: 4 })
        );
        assert_eq!(
            mem.read(16, 8),
            Err(Trap::MemoryAccess { addr: 16, size: 8 })
        );
    }

    #[test]
    fn byte_slice_helpers() {
        let mut mem = DataMemory::new(16);
        mem.write_bytes(3, &[1, 2, 3]).unwrap();
        assert_eq!(mem.read_bytes(3, 3).unwrap(), vec![1, 2, 3]);
        assert!(mem.write_bytes(15, &[0, 0]).is_err());
    }
}
