//! The processor: scalar core + vector unit + memories + cycle counter.

use crate::compiled::{
    self, BlockCtx, CompiledBlock, CompiledProgram, CompiledSlot, FusedOp, Geometry, Op, OpExit,
};
use crate::config::ProcessorConfig;
use crate::decoded::{DecodedInstr, DecodedProgram};
use crate::exec::{custom, standard};
use crate::memory::DataMemory;
use crate::timing::TimingContext;
use crate::trace::Tracer;
use crate::trap::Trap;
use crate::vector::VectorUnit;
use krv_isa::{
    BranchKind, Instruction, LoadKind, MemMode, OpImmKind, OpKind, Sew, StoreKind, VReg, XReg,
};
use krv_keccak::constants::RC;
use std::sync::Arc;

/// Why the processor stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HaltCause {
    /// `ecall` retired (normal program exit).
    Ecall,
    /// `ebreak` retired (breakpoint exit).
    Ebreak,
}

/// Summary of a completed run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunSummary {
    /// Total cycles consumed (per the configured timing model).
    pub cycles: u64,
    /// Instructions retired.
    pub retired: u64,
    /// What stopped execution.
    pub halt: HaltCause,
}

/// The simulated SIMD RISC-V processor (paper Figure 3).
///
/// # Example
///
/// ```
/// use krv_vproc::{Processor, ProcessorConfig};
/// use krv_isa::{Instruction, XReg};
///
/// let mut cpu = Processor::new(ProcessorConfig::elen64(5));
/// cpu.load_program(&[
///     Instruction::addi(XReg::X10, XReg::X0, 11),
///     Instruction::Ecall,
/// ]);
/// let summary = cpu.run(100)?;
/// assert_eq!(cpu.xreg(XReg::X10), 11);
/// assert_eq!(summary.retired, 2);
/// # Ok::<(), krv_vproc::Trap>(())
/// ```
#[derive(Debug, Clone)]
pub struct Processor {
    config: ProcessorConfig,
    program: Arc<DecodedProgram>,
    pc: u32,
    xregs: [u32; 32],
    vu: VectorUnit,
    dmem: DataMemory,
    cycles: u64,
    retired: u64,
    retired_vector: u64,
    halted: Option<HaltCause>,
    tracer: Tracer,
    fusion: bool,
    compiled_on: bool,
    shared_compiled: Option<Arc<CompiledProgram>>,
    compiled_cache: Vec<CompiledSlot>,
    compiled_dispatches: u64,
}

impl Processor {
    /// Creates a processor with zeroed state and empty program memory.
    pub fn new(config: ProcessorConfig) -> Self {
        let vu = VectorUnit::new(config.elen, config.elenum);
        let dmem = DataMemory::new(config.dmem_bytes);
        let tracer = Tracer::new(config.trace);
        let program = Arc::new(DecodedProgram::compile(&[], &config.timing));
        Self {
            config,
            program,
            pc: 0,
            xregs: [0; 32],
            vu,
            dmem,
            cycles: 0,
            retired: 0,
            retired_vector: 0,
            halted: None,
            tracer,
            fusion: true,
            compiled_on: false,
            shared_compiled: None,
            compiled_cache: Vec::new(),
            compiled_dispatches: 0,
        }
    }

    /// The static configuration.
    pub fn config(&self) -> &ProcessorConfig {
        &self.config
    }

    /// Loads a program into instruction memory and resets the PC.
    ///
    /// The program is pre-decoded against the configured timing model
    /// (see [`DecodedProgram`]); to amortize that across processors, use
    /// [`Processor::load_decoded`].
    pub fn load_program(&mut self, instructions: &[Instruction]) {
        self.load_decoded(Arc::new(DecodedProgram::compile(
            instructions,
            &self.config.timing,
        )));
    }

    /// Loads a shared pre-decoded program and resets the PC.
    ///
    /// # Panics
    ///
    /// Panics if `program` was compiled against a different timing model
    /// than this processor's — the baked-in costs would silently
    /// mis-account cycles otherwise.
    pub fn load_decoded(&mut self, program: Arc<DecodedProgram>) {
        assert_eq!(
            program.timing(),
            &self.config.timing,
            "decoded program was compiled against a different timing model"
        );
        self.program = program;
        self.pc = 0;
        self.halted = None;
        self.shared_compiled = None;
        self.compiled_cache.clear();
    }

    /// Loads a shared compiled program (and the decoded program it
    /// wraps) and enables the compiled execution tier.
    ///
    /// Sharing one [`CompiledProgram`] between processors shares the
    /// per-configuration compiled blocks too — each processor keeps only
    /// a small lock-free dispatch cache of its own.
    ///
    /// # Panics
    ///
    /// Panics under the same timing-model mismatch condition as
    /// [`Processor::load_decoded`].
    pub fn load_compiled(&mut self, program: Arc<CompiledProgram>) {
        self.load_decoded(program.decoded());
        self.shared_compiled = Some(program);
        self.compiled_on = true;
    }

    /// The currently loaded pre-decoded program (shareable with other
    /// processors via [`Processor::load_decoded`]).
    pub fn decoded_program(&self) -> Arc<DecodedProgram> {
        Arc::clone(&self.program)
    }

    /// Decodes and loads raw machine words (e.g. from a hex file).
    ///
    /// # Errors
    ///
    /// Returns the word index and [`krv_isa::DecodeError`] of the first
    /// undecodable word; the program memory is left unchanged.
    pub fn load_program_words(
        &mut self,
        words: &[u32],
    ) -> Result<(), (usize, krv_isa::DecodeError)> {
        let decoded = krv_isa::decode::decode_all(words)?;
        self.load_program(&decoded);
        Ok(())
    }

    /// Current program counter.
    pub fn pc(&self) -> u32 {
        self.pc
    }

    /// Sets the program counter (e.g. to re-enter a kernel).
    pub fn set_pc(&mut self, pc: u32) {
        self.pc = pc;
        self.halted = None;
    }

    /// Cycles consumed so far.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Instructions retired so far.
    pub fn retired(&self) -> u64 {
        self.retired
    }

    /// Vector instructions retired so far (configuration, memory,
    /// arithmetic and custom ops — paper Figure 3's vector unit).
    pub fn retired_vector(&self) -> u64 {
        self.retired_vector
    }

    /// Scalar instructions retired so far.
    pub fn retired_scalar(&self) -> u64 {
        self.retired - self.retired_vector
    }

    /// Resets the cycle and retired-instruction counters (the program,
    /// registers and memories are untouched).
    pub fn reset_counters(&mut self) {
        self.cycles = 0;
        self.retired = 0;
        self.retired_vector = 0;
    }

    /// Reads a scalar register (`x0` reads as zero).
    pub fn xreg(&self, reg: XReg) -> u32 {
        if reg == XReg::X0 {
            0
        } else {
            self.xregs[reg.index()]
        }
    }

    /// Writes a scalar register (writes to `x0` are ignored).
    pub fn set_xreg(&mut self, reg: XReg, value: u32) {
        if reg != XReg::X0 {
            self.xregs[reg.index()] = value;
        }
    }

    /// Shared access to the vector unit.
    pub fn vector_unit(&self) -> &VectorUnit {
        &self.vu
    }

    /// Mutable access to the vector unit (state setup in tests/drivers).
    pub fn vector_unit_mut(&mut self) -> &mut VectorUnit {
        &mut self.vu
    }

    /// Shared access to the data memory.
    pub fn dmem(&self) -> &DataMemory {
        &self.dmem
    }

    /// Mutable access to the data memory.
    pub fn dmem_mut(&mut self) -> &mut DataMemory {
        &mut self.dmem
    }

    /// The execution trace (empty unless tracing was enabled).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Whether the processor has halted.
    pub fn halted(&self) -> Option<HaltCause> {
        self.halted
    }

    /// Whether fused macro-op dispatch is enabled (see
    /// [`Processor::set_fusion`]).
    pub fn fusion(&self) -> bool {
        self.fusion
    }

    /// Enables or disables fused macro-op dispatch in [`Processor::run`]
    /// and [`Processor::run_until_pc`].
    ///
    /// Fusion is on by default. It is an execution fast path only: the
    /// architectural state, trap behavior and cycle counts are identical
    /// either way (the fused-block cost is the exact sum of the member
    /// instructions' costs — there are differential tests pinning this).
    /// Disabling it forces the per-instruction reference path, which the
    /// conformance fast-path oracle uses as its baseline.
    pub fn set_fusion(&mut self, fusion: bool) {
        self.fusion = fusion;
    }

    /// Whether the compiled execution tier is enabled (see
    /// [`Processor::set_compiled`]).
    pub fn compiled(&self) -> bool {
        self.compiled_on
    }

    /// Enables or disables the compiled execution tier in
    /// [`Processor::run`] and [`Processor::run_until_pc`].
    ///
    /// Off by default; [`Processor::load_compiled`] turns it on. Like
    /// fusion it is an execution fast path only: blocks are lowered to
    /// native word ops per vector configuration, any block that cannot
    /// be proven bit-identical falls back to the interpreted fused path,
    /// and the per-block cycle ledger keeps all counter, trap and budget
    /// behaviour exact (see [`crate::compiled`]). The tier additionally
    /// dispatches *single* vector instructions outside fused blocks
    /// (fusion never forms one-instruction blocks, but a lone `vle64.v`
    /// still profits from the bulk word path).
    pub fn set_compiled(&mut self, compiled: bool) {
        self.compiled_on = compiled;
    }

    /// How many compiled blocks have been dispatched so far (diagnostic;
    /// not reset by [`Processor::reset_counters`]).
    pub fn compiled_dispatches(&self) -> u64 {
        self.compiled_dispatches
    }

    /// Executes one instruction.
    ///
    /// # Errors
    ///
    /// Returns a [`Trap`] on fetch/memory/configuration faults. A halted
    /// processor returns `Ok(None)` without advancing.
    pub fn step(&mut self) -> Result<Option<HaltCause>, Trap> {
        if let Some(cause) = self.halted {
            return Ok(Some(cause));
        }
        let index = (self.pc / 4) as usize;
        if !self.pc.is_multiple_of(4) {
            return Err(Trap::InstructionFetch { pc: self.pc });
        }
        let slot = match self.program.get(index) {
            Some(slot) => *slot,
            None => return Err(Trap::InstructionFetch { pc: self.pc }),
        };
        let pc = self.pc;
        let groups = self.active_groups();
        let (next_pc, cost) = self.execute_slot(&slot, pc, groups)?;
        self.cycles += cost;
        self.retired += 1;
        if slot.is_vector {
            self.retired_vector += 1;
        }
        self.tracer.record(pc, slot.instr, cost, self.cycles);
        self.pc = next_pc;
        Ok(self.halted)
    }

    /// Executes `slot` (fetched from `pc`) against the architectural
    /// state, returning the next PC and the instruction's cycle cost.
    ///
    /// This is the single execution path shared by [`Processor::step`]
    /// and the fused-block loop; neither the PC nor any counter is
    /// updated here, so a trap leaves them exactly as they were before
    /// the instruction.
    ///
    /// `groups` is the active register-group count at entry; it can only
    /// change across `vsetvli`, whose cost is flat, so hoisting it is
    /// exact.
    fn execute_slot(
        &mut self,
        slot: &DecodedInstr,
        pc: u32,
        groups: u32,
    ) -> Result<(u32, u64), Trap> {
        let instr = slot.instr;
        let mut next_pc = pc.wrapping_add(4);
        let mut ctx = TimingContext {
            branch_taken: false,
            active_groups: groups,
            vl: self.vu.vl(),
        };

        match instr {
            Instruction::Lui { rd, imm } => self.set_xreg(rd, imm as u32),
            Instruction::Auipc { rd, imm } => self.set_xreg(rd, pc.wrapping_add(imm as u32)),
            Instruction::Jal { rd, .. } => {
                self.set_xreg(rd, pc.wrapping_add(4));
                next_pc = slot.target;
            }
            Instruction::Jalr { rd, rs1, offset } => {
                let target = self.xreg(rs1).wrapping_add(offset as u32) & !1;
                self.set_xreg(rd, pc.wrapping_add(4));
                next_pc = target;
            }
            Instruction::Branch { kind, rs1, rs2, .. } => {
                let (a, b) = (self.xreg(rs1), self.xreg(rs2));
                let taken = match kind {
                    BranchKind::Beq => a == b,
                    BranchKind::Bne => a != b,
                    BranchKind::Blt => (a as i32) < (b as i32),
                    BranchKind::Bge => (a as i32) >= (b as i32),
                    BranchKind::Bltu => a < b,
                    BranchKind::Bgeu => a >= b,
                };
                if taken {
                    next_pc = slot.target;
                }
                ctx.branch_taken = taken;
            }
            Instruction::Load {
                kind,
                rd,
                rs1,
                offset,
            } => {
                let addr = self.xreg(rs1).wrapping_add(offset as u32);
                let size = match kind {
                    LoadKind::Lb | LoadKind::Lbu => 1,
                    LoadKind::Lh | LoadKind::Lhu => 2,
                    LoadKind::Lw => 4,
                };
                let raw = self.dmem.read(addr, size)?;
                let value = match kind {
                    LoadKind::Lb => raw as i8 as i32 as u32,
                    LoadKind::Lh => raw as i16 as i32 as u32,
                    LoadKind::Lbu | LoadKind::Lhu | LoadKind::Lw => raw as u32,
                };
                self.set_xreg(rd, value);
            }
            Instruction::Store {
                kind,
                rs2,
                rs1,
                offset,
            } => {
                let addr = self.xreg(rs1).wrapping_add(offset as u32);
                let value = self.xreg(rs2) as u64;
                let size = match kind {
                    StoreKind::Sb => 1,
                    StoreKind::Sh => 2,
                    StoreKind::Sw => 4,
                };
                self.dmem.write(addr, size, value)?;
            }
            Instruction::OpImm { kind, rd, rs1, imm } => {
                let a = self.xreg(rs1);
                let b = imm as u32;
                let value = match kind {
                    OpImmKind::Addi => a.wrapping_add(b),
                    OpImmKind::Slti => ((a as i32) < (b as i32)) as u32,
                    OpImmKind::Sltiu => (a < b) as u32,
                    OpImmKind::Xori => a ^ b,
                    OpImmKind::Ori => a | b,
                    OpImmKind::Andi => a & b,
                    OpImmKind::Slli => a.wrapping_shl(b & 31),
                    OpImmKind::Srli => a.wrapping_shr(b & 31),
                    OpImmKind::Srai => ((a as i32) >> (b & 31)) as u32,
                };
                self.set_xreg(rd, value);
            }
            Instruction::Op { kind, rd, rs1, rs2 } => {
                let a = self.xreg(rs1);
                let b = self.xreg(rs2);
                let value = match kind {
                    OpKind::Add => a.wrapping_add(b),
                    OpKind::Sub => a.wrapping_sub(b),
                    OpKind::Sll => a.wrapping_shl(b & 31),
                    OpKind::Slt => ((a as i32) < (b as i32)) as u32,
                    OpKind::Sltu => (a < b) as u32,
                    OpKind::Xor => a ^ b,
                    OpKind::Srl => a.wrapping_shr(b & 31),
                    OpKind::Sra => ((a as i32) >> (b & 31)) as u32,
                    OpKind::Or => a | b,
                    OpKind::And => a & b,
                    OpKind::Mul => a.wrapping_mul(b),
                    OpKind::Mulh => ((a as i32 as i64).wrapping_mul(b as i32 as i64) >> 32) as u32,
                    OpKind::Mulhsu => ((a as i32 as i64).wrapping_mul(b as i64) >> 32) as u32,
                    OpKind::Mulhu => ((a as u64).wrapping_mul(b as u64) >> 32) as u32,
                    OpKind::Div => {
                        if b == 0 {
                            u32::MAX
                        } else if a == 0x8000_0000 && b == u32::MAX {
                            a
                        } else {
                            ((a as i32) / (b as i32)) as u32
                        }
                    }
                    OpKind::Divu => a.checked_div(b).unwrap_or(u32::MAX),
                    OpKind::Rem => {
                        if b == 0 {
                            a
                        } else if a == 0x8000_0000 && b == u32::MAX {
                            0
                        } else {
                            ((a as i32) % (b as i32)) as u32
                        }
                    }
                    OpKind::Remu => {
                        if b == 0 {
                            a
                        } else {
                            a % b
                        }
                    }
                };
                self.set_xreg(rd, value);
            }
            Instruction::Csrr { rd, csr } => {
                let value = match csr {
                    krv_isa::Csr::Vl => self.vu.vl(),
                    krv_isa::Csr::Vtype => self.vu.vtype().zimm(),
                    krv_isa::Csr::Vlenb => self.vu.reg_bytes() as u32,
                    krv_isa::Csr::Cycle => self.cycles as u32,
                    krv_isa::Csr::Instret => self.retired as u32,
                };
                self.set_xreg(rd, value);
            }
            Instruction::Ecall => self.halted = Some(HaltCause::Ecall),
            Instruction::Ebreak => self.halted = Some(HaltCause::Ebreak),
            Instruction::Vsetvli { rd, rs1, vtype } => {
                // AVL selection per RVV 1.0: rs1 != x0 → x[rs1]; rs1 == x0
                // and rd != x0 → VLMAX; both x0 → keep current VL.
                let avl = if rs1 != XReg::X0 {
                    self.xreg(rs1)
                } else if rd != XReg::X0 {
                    u32::MAX
                } else {
                    self.vu.vl()
                };
                let granted = self.vu.set_config(avl, vtype)?;
                self.set_xreg(rd, granted);
                // The new configuration determines this instruction's own
                // group occupancy downstream; vsetvli itself is flat-cost.
            }
            Instruction::VLoad {
                eew,
                vd,
                rs1,
                mode,
                vm,
            } => {
                standard::vload(
                    &mut self.vu,
                    &self.dmem,
                    eew,
                    vd,
                    rs1,
                    mode,
                    vm,
                    &self.xregs,
                )?;
            }
            Instruction::VStore {
                eew,
                vs3,
                rs1,
                mode,
                vm,
            } => {
                standard::vstore(
                    &self.vu,
                    &mut self.dmem,
                    eew,
                    vs3,
                    rs1,
                    mode,
                    vm,
                    &self.xregs,
                )?;
            }
            Instruction::VArith {
                op,
                vd,
                vs2,
                src,
                vm,
            } => {
                standard::varith(&mut self.vu, op, vd, vs2, src, vm, &self.xregs)?;
            }
            Instruction::VmvXs { rd, vs2 } => {
                let value = standard::vmv_xs(&self.vu, vs2);
                self.set_xreg(rd, value);
            }
            Instruction::VmvSx { vd, rs1 } => {
                let value = self.xreg(rs1);
                standard::vmv_sx(&mut self.vu, vd, value);
            }
            Instruction::Vid { vd, vm } => standard::vid(&mut self.vu, vd, vm),
            Instruction::Custom(op) => custom::execute(&mut self.vu, &op, &self.xregs)?,
        }

        Ok((next_pc, slot.timing.cost(ctx)))
    }

    /// Attempts to execute the fused block anchored at the current PC.
    ///
    /// Returns `Ok(true)` when a whole block retired, `Ok(false)` when no
    /// block applies and the caller must fall back to [`Processor::step`].
    /// The guards make the fast path observationally identical to
    /// stepping:
    ///
    /// * tracing forces the per-instruction path (each entry needs its
    ///   own record);
    /// * a `stop_pc` strictly inside the block forces stepping so
    ///   [`Processor::run_until_pc`] still stops exactly there;
    /// * the block only runs when its full cost fits the cycle budget.
    ///   Since every instruction costs ≥ 1 cycle, all intra-block
    ///   prefixes then stay strictly below the budget — exactly the
    ///   condition under which the stepping loop would have retired the
    ///   same instructions without a [`Trap::CycleLimit`].
    fn try_fused(&mut self, max_cycles: u64, stop_pc: Option<u32>) -> Result<bool, Trap> {
        if !self.fusion || self.tracer.is_enabled() || !self.pc.is_multiple_of(4) {
            return Ok(false);
        }
        let start = (self.pc / 4) as usize;
        let Some(block) = self.program.fused_block_at(start) else {
            return Ok(false);
        };
        let end_pc = block.end * 4;
        if let Some(stop) = stop_pc {
            if stop > self.pc && stop < end_pc {
                return Ok(false);
            }
        }
        let groups = self.active_groups();
        if self.cycles + block.cost(groups, self.vu.vl()) > max_cycles {
            return Ok(false);
        }
        self.run_block(start, block.end as usize, groups)?;
        Ok(true)
    }

    /// Executes the instructions of a fused block back to back.
    ///
    /// Blocks contain no control flow, halts or `vsetvli`, so the PC is
    /// only committed once at the end — or parked on the faulting
    /// instruction if one traps, with the preceding prefix fully retired,
    /// exactly as repeated [`Processor::step`] calls would leave things.
    fn run_block(&mut self, start: usize, end: usize, groups: u32) -> Result<(), Trap> {
        for index in start..end {
            let slot = *self
                .program
                .get(index)
                .expect("fused blocks lie inside the program");
            let pc = (index as u32) * 4;
            match self.execute_slot(&slot, pc, groups) {
                Ok((_, cost)) => {
                    self.cycles += cost;
                    self.retired += 1;
                    if slot.is_vector {
                        self.retired_vector += 1;
                    }
                }
                Err(trap) => {
                    self.pc = pc;
                    return Err(trap);
                }
            }
        }
        self.pc = (end as u32) * 4;
        Ok(())
    }

    /// The machine geometry compiled blocks must be proven against.
    fn geometry(&self) -> Geometry {
        Geometry {
            elenum: self.vu.elenum(),
            words_len: self.vu.words_len(),
            elen64: self.vu.elen().bits() == 64,
        }
    }

    /// Attempts to execute the compiled region anchored at the current
    /// PC.
    ///
    /// Returns `Ok(true)` when it retired (fully, up to an interior
    /// `stop_pc`, or up to a `vsetvli` guard exit), `Ok(false)` to fall
    /// back to [`Processor::try_fused`] / [`Processor::step`]. The
    /// guards keep the fast path observationally identical to stepping:
    /// tracing forces the per-instruction path; a `stop_pc` at an
    /// interior instruction boundary runs the exact ledger prefix and
    /// parks the PC there; and the region only runs when its worst-case
    /// cost (or the prefix cost up to `stop_pc`) fits the cycle budget —
    /// since every instruction costs ≥ 1 cycle, all interior prefixes
    /// then stay strictly below the budget, exactly the condition under
    /// which the stepping loop would have retired the same instructions.
    fn try_compiled(&mut self, max_cycles: u64, stop_pc: Option<u32>) -> Result<bool, Trap> {
        if !self.compiled_on
            || !self.fusion
            || self.tracer.is_enabled()
            || !self.pc.is_multiple_of(4)
        {
            return Ok(false);
        }
        let start = (self.pc / 4) as usize;
        if start >= self.program.len() {
            return Ok(false);
        }
        if self.compiled_cache.len() != self.program.len() {
            self.compiled_cache = vec![CompiledSlot::Empty; self.program.len()];
        }
        let ctx = BlockCtx::of(&self.vu);
        let block = match &self.compiled_cache[start] {
            CompiledSlot::Ready(block) if block.ctx == ctx => Arc::clone(block),
            CompiledSlot::Refused(refused) if *refused == ctx => return Ok(false),
            _ => {
                let geometry = self.geometry();
                let block = match &self.shared_compiled {
                    Some(shared) => shared.block_for(start, ctx, geometry, &self.xregs),
                    None => {
                        compiled::compile_region(&self.program, start, ctx, geometry, &self.xregs)
                            .map(Arc::new)
                    }
                };
                match block {
                    Some(block) => {
                        self.compiled_cache[start] = CompiledSlot::Ready(Arc::clone(&block));
                        block
                    }
                    None => {
                        self.compiled_cache[start] = CompiledSlot::Refused(ctx);
                        return Ok(false);
                    }
                }
            }
        };
        let mut stop_at = None;
        if let Some(stop) = stop_pc {
            if stop > self.pc && stop < ((start + block.len) as u32) * 4 {
                if !stop.is_multiple_of(4) {
                    return Ok(false);
                }
                stop_at = Some((stop / 4) as usize - start);
            }
        }
        let cost = match stop_at {
            Some(t) => block.ledger[t].prefix_cycles,
            None => block.worst_cost(),
        };
        if self.cycles + cost > max_cycles {
            return Ok(false);
        }
        self.run_compiled(start, &block, stop_at)?;
        Ok(true)
    }

    /// Executes a compiled region's micro-ops back to back, stopping
    /// after `stop_at` ops if given (an interior `run_until_pc` target).
    ///
    /// Counters are committed from the precomputed ledger: the full
    /// totals on success, the exact prefix at an interior stop or
    /// `vsetvli` guard exit, or the prefix up to a trapping op with the
    /// PC parked on the faulting instruction — bit-identical to what
    /// repeated stepping would leave. A terminal branch commits its
    /// direction-dependent cost and target itself.
    fn run_compiled(
        &mut self,
        start: usize,
        block: &CompiledBlock,
        stop_at: Option<usize>,
    ) -> Result<(), Trap> {
        let limit = stop_at.unwrap_or(block.len);
        // A branch is always the region's LAST op, so the body loop
        // below never sees one — it runs branch-free and the terminal
        // direction is resolved once afterwards.
        let body = if block.branch_costs.is_some() && limit == block.len {
            limit - 1
        } else {
            limit
        };
        let mut k = 0;
        while k < body {
            // A fused idiom fully inside the body runs as one pass;
            // a stop landing inside the span falls through to the
            // member ops, which are still in place.
            if let Some(span) = block.fused_span(k) {
                if k + span.len <= body {
                    self.exec_fused_op(&span.op);
                    k += span.len;
                    continue;
                }
            }
            let op = &block.ops[k];
            match self.exec_compiled_op(op) {
                Ok(OpExit::Next) => {}
                Ok(OpExit::ExitAfter) => {
                    let (cycles, vector) = block.prefix_after(k);
                    self.cycles += cycles;
                    self.retired += (k + 1) as u64;
                    self.retired_vector += vector;
                    self.pc = ((start + k + 1) as u32) * 4;
                    self.compiled_dispatches += 1;
                    return Ok(());
                }
                Err(trap) => {
                    let ledger = block.ledger[k];
                    self.cycles += ledger.prefix_cycles;
                    self.retired += k as u64;
                    self.retired_vector += ledger.prefix_vector;
                    self.pc = ((start + k) as u32) * 4;
                    return Err(trap);
                }
            }
            k += 1;
        }
        if body < limit {
            let k = limit - 1;
            let &Op::Branch {
                kind,
                rs1,
                rs2,
                target,
                taken_cost,
                not_cost,
            } = &block.ops[k]
            else {
                unreachable!("branch_costs is only set for a terminal branch")
            };
            let (a, b) = (self.xregs[rs1], self.xregs[rs2]);
            let taken = match kind {
                BranchKind::Beq => a == b,
                BranchKind::Bne => a != b,
                BranchKind::Blt => (a as i32) < (b as i32),
                BranchKind::Bge => (a as i32) >= (b as i32),
                BranchKind::Bltu => a < b,
                BranchKind::Bgeu => a >= b,
            };
            self.cycles +=
                block.ledger[k].prefix_cycles + if taken { taken_cost } else { not_cost };
            self.retired += (k + 1) as u64;
            self.retired_vector += block.ledger[k].prefix_vector;
            self.pc = if taken {
                target
            } else {
                ((start + k + 1) as u32) * 4
            };
            self.compiled_dispatches += 1;
            return Ok(());
        }
        match stop_at {
            Some(t) => {
                let ledger = block.ledger[t];
                self.cycles += ledger.prefix_cycles;
                self.retired += t as u64;
                self.retired_vector += ledger.prefix_vector;
                self.pc = ((start + t) as u32) * 4;
            }
            None => {
                self.cycles += block.total_cycles;
                self.retired += block.len as u64;
                self.retired_vector += block.total_vector;
                self.pc = ((start + block.len) as u32) * 4;
            }
        }
        self.compiled_dispatches += 1;
        Ok(())
    }

    /// Executes one fused idiom — architecturally identical to running
    /// its member ops back to back (see [`FusedOp`]). Infallible:
    /// operand windows and disjointness were proven when the span was
    /// built, and no member op can trap or exit.
    fn exec_fused_op(&mut self, op: &FusedOp) {
        match op {
            FusedOp::Theta {
                planes,
                c,
                up,
                rot,
                j_up,
                j_rot,
                amount,
                n,
            } => {
                compiled::exec_theta(
                    self.vu.words64_mut(),
                    planes,
                    *c,
                    *up,
                    *rot,
                    j_up,
                    j_rot,
                    *amount,
                    *n,
                );
            }
            FusedOp::Chi {
                s,
                t1,
                t2,
                d,
                rs1,
                j1,
                j2,
                n,
            } => {
                let y = self.xregs[*rs1] as i32 as i64 as u64;
                compiled::exec_chi(self.vu.words64_mut(), *s, *t1, *t2, *d, y, j1, j2, *n);
            }
        }
    }

    /// Executes one compiled micro-op. Counters are untouched here (the
    /// caller commits them from the ledger), which is exactly why the
    /// `CsrCycle`/`CsrInstret` ops add their prefixes to the block-entry
    /// counter values.
    fn exec_compiled_op(&mut self, op: &Op) -> Result<OpExit, Trap> {
        match op {
            &Op::Interp { index } => {
                let slot = *self
                    .program
                    .get(index)
                    .expect("compiled ops lie inside the program");
                // Scalar instructions only: `groups` is irrelevant to
                // their semantics and the returned cost is discarded (the
                // ledger already accounts it).
                self.execute_slot(&slot, (index as u32) * 4, 1)?;
                Ok(OpExit::Next)
            }
            &Op::XConst { rd, value } => {
                self.set_xreg(rd, value);
                Ok(OpExit::Next)
            }
            &Op::CsrCycle { rd, prefix } => {
                self.set_xreg(rd, (self.cycles + prefix) as u32);
                Ok(OpExit::Next)
            }
            &Op::CsrInstret { rd, offset } => {
                self.set_xreg(rd, (self.retired + offset) as u32);
                Ok(OpExit::Next)
            }
            &Op::Vsetvli {
                rd,
                rs1,
                vtype,
                expected_vl,
                expected_vtype,
            } => {
                // Same AVL selection as the interpreter's `Vsetvli` arm;
                // the trap condition depends only on `vtype`, which the
                // lowering already proved non-trapping, so the `?` is
                // defensive.
                let avl = if rs1 != XReg::X0 {
                    self.xreg(rs1)
                } else if rd != XReg::X0 {
                    u32::MAX
                } else {
                    self.vu.vl()
                };
                let granted = self.vu.set_config(avl, vtype)?;
                self.set_xreg(rd, granted);
                // Downstream ops were lowered for the predicted
                // configuration; a different grant exits the region with
                // this op retired and the interpreter takes over.
                if granted == expected_vl && self.vu.vtype().zimm() == expected_vtype {
                    Ok(OpExit::Next)
                } else {
                    Ok(OpExit::ExitAfter)
                }
            }
            &Op::ScalarImm { kind, rd, rs1, imm } => {
                let a = self.xreg(rs1);
                let b = imm as u32;
                let value = match kind {
                    OpImmKind::Addi => a.wrapping_add(b),
                    OpImmKind::Slti => ((a as i32) < (b as i32)) as u32,
                    OpImmKind::Sltiu => (a < b) as u32,
                    OpImmKind::Xori => a ^ b,
                    OpImmKind::Ori => a | b,
                    OpImmKind::Andi => a & b,
                    OpImmKind::Slli => a.wrapping_shl(b & 31),
                    OpImmKind::Srli => a.wrapping_shr(b & 31),
                    OpImmKind::Srai => ((a as i32) >> (b & 31)) as u32,
                };
                self.set_xreg(rd, value);
                Ok(OpExit::Next)
            }
            Op::Branch { .. } => unreachable!("terminal branches are handled by run_compiled"),
            &Op::BinVV { kind, d, a, b, len } => {
                compiled::exec_bin_vv(self.vu.words64_mut(), kind, d, a, b, len);
                Ok(OpExit::Next)
            }
            &Op::BinVX {
                kind,
                d,
                a,
                rs1,
                len,
            } => {
                let y = self.xregs[rs1] as i32 as i64 as u64;
                compiled::exec_bin_vs(self.vu.words64_mut(), kind, d, a, y, len);
                Ok(OpExit::Next)
            }
            &Op::BinVI {
                kind,
                d,
                a,
                imm,
                len,
            } => {
                compiled::exec_bin_vs(self.vu.words64_mut(), kind, d, a, imm, len);
                Ok(OpExit::Next)
            }
            &Op::SlideMod5 {
                d,
                s,
                blocks,
                ref src_j,
            } => {
                compiled::exec_slide(self.vu.words64_mut(), d, s, blocks, src_j);
                Ok(OpExit::Next)
            }
            &Op::RotConst { d, s, len, amount } => {
                compiled::exec_rot(self.vu.words64_mut(), d, s, len, amount);
                Ok(OpExit::Next)
            }
            Op::RhoTable { d, s, rots } => {
                compiled::exec_rho(self.vu.words64_mut(), *d, *s, rots);
                Ok(OpExit::Next)
            }
            Op::Pi {
                d,
                d_len,
                s,
                s_len,
                segs,
                states,
            } => {
                compiled::exec_pi(self.vu.words64_mut(), *d, *d_len, *s, *s_len, segs, *states);
                Ok(OpExit::Next)
            }
            Op::PiPlanes {
                d,
                elenum,
                s,
                s_len,
                spec,
                states,
            } => {
                compiled::exec_pi_planes(
                    self.vu.words64_mut(),
                    *d,
                    *elenum,
                    *s,
                    *s_len,
                    spec,
                    *states,
                );
                Ok(OpExit::Next)
            }
            &Op::Iota { d, s, len, rs1 } => {
                let index = self.xregs[rs1];
                let rc = *RC
                    .get(index as usize)
                    .ok_or(Trap::RoundConstantIndex { index })?;
                compiled::exec_iota(self.vu.words64_mut(), d, s, len, rc);
                Ok(OpExit::Next)
            }
            &Op::VLoad64 { d, len, vd, rs1 } => {
                let base = self.xregs[rs1.index()];
                if self
                    .dmem
                    .read_words64(base, &mut self.vu.words64_mut()[d..d + len])
                {
                    Ok(OpExit::Next)
                } else {
                    // Misaligned or out of bounds: the element-serial
                    // interpreter reproduces the exact partial writes and
                    // trap of the uncompiled instruction.
                    standard::vload(
                        &mut self.vu,
                        &self.dmem,
                        Sew::E64,
                        vd,
                        rs1,
                        MemMode::UnitStride,
                        true,
                        &self.xregs,
                    )
                    .map(|()| OpExit::Next)
                }
            }
            &Op::VStore64 { s, len, vs3, rs1 } => {
                let base = self.xregs[rs1.index()];
                if self
                    .dmem
                    .write_words64(base, &self.vu.words64()[s..s + len])
                {
                    Ok(OpExit::Next)
                } else {
                    standard::vstore(
                        &self.vu,
                        &mut self.dmem,
                        Sew::E64,
                        vs3,
                        rs1,
                        MemMode::UnitStride,
                        true,
                        &self.xregs,
                    )
                    .map(|()| OpExit::Next)
                }
            }
        }
    }

    /// Runs until the program halts via `ecall`/`ebreak`.
    ///
    /// # Errors
    ///
    /// Returns a [`Trap`] on execution faults, or [`Trap::CycleLimit`] if
    /// `max_cycles` elapse first.
    pub fn run(&mut self, max_cycles: u64) -> Result<RunSummary, Trap> {
        while self.halted.is_none() {
            if self.cycles >= max_cycles {
                return Err(Trap::CycleLimit { limit: max_cycles });
            }
            if self.try_compiled(max_cycles, None)? {
                continue;
            }
            if self.try_fused(max_cycles, None)? {
                continue;
            }
            self.step()?;
        }
        Ok(RunSummary {
            cycles: self.cycles,
            retired: self.retired,
            halt: self.halted.expect("loop exits only when halted"),
        })
    }

    /// Runs until the PC reaches `target` (checked before each fetch).
    ///
    /// # Errors
    ///
    /// Returns a [`Trap`] on execution faults, [`Trap::CycleLimit`] if the
    /// budget elapses, or [`Trap::InstructionFetch`] if the program halts
    /// before reaching `target`.
    pub fn run_until_pc(&mut self, target: u32, max_cycles: u64) -> Result<(), Trap> {
        while self.pc != target {
            if self.cycles >= max_cycles {
                return Err(Trap::CycleLimit { limit: max_cycles });
            }
            if self.halted.is_some() {
                return Err(Trap::InstructionFetch { pc: self.pc });
            }
            if self.try_compiled(max_cycles, Some(target))? {
                continue;
            }
            if self.try_fused(max_cycles, Some(target))? {
                continue;
            }
            self.step()?;
        }
        Ok(())
    }

    /// `ceil(VL / elements_per_register)`, at least 1 — the number of
    /// register groups a vector instruction occupies (the paper's
    /// `lmul_cnt` iteration count).
    fn active_groups(&self) -> u32 {
        let epr = self.vu.elements_per_register().max(1);
        self.vu.vl().div_ceil(epr).max(1)
    }

    /// Convenience: reads `count` vector elements of the group at `base`.
    pub fn read_vector(&self, base: VReg, count: usize) -> Vec<u64> {
        (0..count).map(|i| self.vu.read_elem(base, i)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ProcessorConfig;
    use krv_asm::assemble;

    fn run_asm(source: &str) -> Processor {
        let program = assemble(source).expect("assembles");
        let mut cpu = Processor::new(ProcessorConfig::elen64(10));
        cpu.load_program(program.instructions());
        cpu.run(1_000_000).expect("runs");
        cpu
    }

    #[test]
    fn arithmetic_program() {
        let cpu = run_asm("li a0, 6\nli a1, 7\nmul a2, a0, a1\necall");
        assert_eq!(cpu.xreg(XReg::X12), 42);
    }

    #[test]
    fn loop_with_counter() {
        let cpu = run_asm(
            "li t0, 0\nli t1, 10\nli a0, 0\nloop:\naddi a0, a0, 3\naddi t0, t0, 1\nblt t0, t1, loop\necall",
        );
        assert_eq!(cpu.xreg(XReg::X10), 30);
    }

    #[test]
    fn memory_round_trip() {
        let cpu = run_asm("li t0, 0x1234\nli t1, 64\nsw t0, 8(t1)\nlw a0, 8(t1)\necall");
        assert_eq!(cpu.xreg(XReg::X10), 0x1234);
    }

    #[test]
    fn signed_byte_load_sign_extends() {
        let cpu = run_asm("li t0, -1\nsb t0, 0(zero)\nlb a0, 0(zero)\nlbu a1, 0(zero)\necall");
        assert_eq!(cpu.xreg(XReg::X10), u32::MAX);
        assert_eq!(cpu.xreg(XReg::X11), 0xFF);
    }

    #[test]
    fn division_edge_cases_match_rv32m() {
        let cpu = run_asm(
            "li a0, 7\nli a1, 0\ndiv a2, a0, a1\nrem a3, a0, a1\nli a4, -2147483648\nli a5, -1\ndiv a6, a4, a5\necall",
        );
        assert_eq!(cpu.xreg(XReg::X12), u32::MAX, "div by zero is -1");
        assert_eq!(cpu.xreg(XReg::X13), 7, "rem by zero is dividend");
        assert_eq!(
            cpu.xreg(XReg::X16),
            0x8000_0000,
            "overflow returns dividend"
        );
    }

    #[test]
    fn jal_and_ret() {
        let cpu = run_asm("li a0, 1\njal ra, func\nli a1, 3\necall\nfunc:\nli a0, 2\nret");
        assert_eq!(cpu.xreg(XReg::X10), 2);
        assert_eq!(cpu.xreg(XReg::X11), 3);
    }

    #[test]
    fn vsetvli_grants_and_clamps() {
        let cpu = run_asm("li s1, 100\nvsetvli a0, s1, e64, m1, tu, mu\necall");
        assert_eq!(cpu.xreg(XReg::X10), 10, "clamped to EleNum");
        assert_eq!(cpu.vector_unit().vl(), 10);
    }

    #[test]
    fn vsetvli_x0_x0_keeps_vl() {
        let cpu = run_asm(
            "li s1, 7\nvsetvli x0, s1, e64, m1, tu, mu\nvsetvli x0, x0, e64, m8, tu, mu\necall",
        );
        assert_eq!(cpu.vector_unit().vl(), 7, "vl preserved across re-config");
    }

    #[test]
    fn vector_load_compute_store() {
        let source = r"
            li a0, 0          # input base
            li a1, 512        # output base
            li s1, 10
            vsetvli x0, s1, e64, m1, tu, mu
            vle64.v v1, (a0)
            vadd.vi v1, v1, 5
            vse64.v v1, (a1)
            ecall
        ";
        let program = assemble(source).unwrap();
        let mut cpu = Processor::new(ProcessorConfig::elen64(10));
        for i in 0..10u32 {
            cpu.dmem_mut().write(i * 8, 8, i as u64 * 100).unwrap();
        }
        cpu.load_program(program.instructions());
        cpu.run(10_000).unwrap();
        for i in 0..10u32 {
            assert_eq!(cpu.dmem().read(512 + i * 8, 8).unwrap(), i as u64 * 100 + 5);
        }
    }

    #[test]
    fn cycle_accounting_follows_model() {
        // addi (1) + addi (1) + vsetvli (2) + vxor LMUL1 (2) + ecall (1) = 7.
        let cpu = run_asm(
            "li s1, 10\nli s2, -1\nvsetvli x0, s1, e64, m1, tu, mu\nvxor.vv v1, v2, v3\necall",
        );
        assert_eq!(cpu.cycles(), 7);
    }

    #[test]
    fn lmul8_vector_op_costs_six_cycles() {
        // VL = 5 × EleNum = 50 → 5 groups → 1 + 5 = 6 cc for the vxor.
        let cpu = run_asm("li s5, 50\nvsetvli x0, s5, e64, m8, tu, mu\nvxor.vv v8, v8, v8\necall");
        // li (1) + vsetvli (2) + vxor (6) + ecall (1) = 10.
        assert_eq!(cpu.cycles(), 10);
    }

    #[test]
    fn cycle_limit_trap() {
        let program = assemble("loop:\nj loop").unwrap();
        let mut cpu = Processor::new(ProcessorConfig::elen64(5));
        cpu.load_program(program.instructions());
        assert!(matches!(cpu.run(100), Err(Trap::CycleLimit { .. })));
    }

    #[test]
    fn fetch_past_end_traps() {
        let program = assemble("nop").unwrap();
        let mut cpu = Processor::new(ProcessorConfig::elen64(5));
        cpu.load_program(program.instructions());
        cpu.step().unwrap();
        assert!(matches!(cpu.step(), Err(Trap::InstructionFetch { pc: 4 })));
    }

    #[test]
    fn x0_is_hardwired_zero() {
        let cpu = run_asm("addi x0, x0, 5\nadd a0, x0, x0\necall");
        assert_eq!(cpu.xreg(XReg::X10), 0);
        assert_eq!(cpu.xreg(XReg::X0), 0);
    }

    #[test]
    fn run_until_pc_stops_before_target() {
        let program = assemble("li a0, 1\nli a0, 2\nli a0, 3\necall").unwrap();
        let mut cpu = Processor::new(ProcessorConfig::elen64(5));
        cpu.load_program(program.instructions());
        cpu.run_until_pc(8, 100).unwrap();
        assert_eq!(cpu.xreg(XReg::X10), 2);
    }

    #[test]
    fn machine_words_load_and_run() {
        let program = assemble("li a0, 3\nslli a0, a0, 4\necall").unwrap();
        let words = program.machine_code();
        let mut cpu = Processor::new(ProcessorConfig::elen64(5));
        cpu.load_program_words(&words).expect("decodes");
        cpu.run(100).unwrap();
        assert_eq!(cpu.xreg(XReg::X10), 48);
        // A bad word is rejected with its index, program untouched.
        assert!(cpu.load_program_words(&[0x0000_0013, 0xFFFF_FFFF]).is_err());
        assert_eq!(cpu.xreg(XReg::X10), 48);
    }

    #[test]
    fn csr_reads() {
        let cpu = run_asm(
            "li s1, 7\nvsetvli x0, s1, e64, m1, tu, mu\ncsrr a0, vl\ncsrr a1, vlenb\ncsrr a2, cycle\ncsrr a3, instret\necall",
        );
        assert_eq!(cpu.xreg(XReg::X10), 7, "vl");
        assert_eq!(cpu.xreg(XReg::X11), 80, "vlenb = 10 × 8 bytes");
        assert!(cpu.xreg(XReg::X12) >= 3, "cycle counter advanced");
        assert_eq!(
            cpu.xreg(XReg::X13),
            5,
            "instret counts previously retired instructions"
        );
    }

    #[test]
    fn instruction_mix_counters() {
        let cpu = run_asm(
            "li s1, 10\nvsetvli x0, s1, e64, m1, tu, mu\nvxor.vv v1, v2, v3\nvxor.vv v1, v1, v3\necall",
        );
        assert_eq!(cpu.retired(), 5);
        assert_eq!(cpu.retired_vector(), 3, "vsetvli + two vxor");
        assert_eq!(cpu.retired_scalar(), 2, "li + ecall");
    }

    /// Runs `source` twice — fused and per-instruction — and asserts the
    /// observable outcomes are identical.
    fn assert_fusion_transparent(source: &str) {
        let program = assemble(source).expect("assembles");
        let mut fused = Processor::new(ProcessorConfig::elen64(10));
        let mut stepped = Processor::new(ProcessorConfig::elen64(10));
        stepped.set_fusion(false);
        fused.load_program(program.instructions());
        stepped.load_program(program.instructions());
        let fused_result = fused.run(100_000);
        let stepped_result = stepped.run(100_000);
        assert_eq!(fused_result, stepped_result, "halt/trap outcome");
        assert_eq!(fused.cycles(), stepped.cycles(), "cycle count");
        assert_eq!(fused.retired(), stepped.retired(), "retired count");
        assert_eq!(
            fused.retired_vector(),
            stepped.retired_vector(),
            "vector retired count"
        );
        assert_eq!(fused.pc(), stepped.pc(), "final PC");
        for index in 0..32 {
            let reg = XReg::from_index(index);
            assert_eq!(fused.xreg(reg), stepped.xreg(reg), "x{index}");
        }
        for index in 0..32 {
            let reg = VReg::from_index(index);
            assert_eq!(
                fused.vector_unit().register_bytes(reg),
                stepped.vector_unit().register_bytes(reg),
                "v{index}"
            );
        }
        for addr in (0..fused.dmem().len() as u32).step_by(8) {
            assert_eq!(
                fused.dmem().read(addr, 8),
                stepped.dmem().read(addr, 8),
                "dmem at {addr}"
            );
        }
    }

    #[test]
    fn fusion_is_transparent_for_scalar_loops() {
        assert_fusion_transparent(
            "li t0, 0\nli t1, 25\nli a0, 7\nloop:\naddi a0, a0, 3\nslli a1, a0, 1\nxor a2, a1, a0\nsw a2, 128(t0)\nlw a3, 128(t0)\naddi t0, t0, 4\nblt t0, t1, loop\necall",
        );
    }

    #[test]
    fn fusion_is_transparent_for_vector_kernels() {
        assert_fusion_transparent(
            "li s1, 10\nvsetvli x0, s1, e64, m1, tu, mu\nli a0, 0\nli a1, 512\nvle64.v v1, (a0)\nvadd.vi v1, v1, 5\nvxor.vv v2, v1, v1\nvse64.v v1, (a1)\nvle64.v v3, (a1)\necall",
        );
    }

    #[test]
    fn fusion_is_transparent_for_csr_reads_mid_block() {
        // csrr cycle/instret inside a fused block must observe the same
        // partial sums the stepping path would.
        assert_fusion_transparent(
            "li a0, 1\nli a1, 2\ncsrr a2, cycle\ncsrr a3, instret\nadd a4, a2, a3\necall",
        );
    }

    #[test]
    fn fusion_is_transparent_for_mid_block_traps() {
        // The store at the end of a fused block faults: the prefix must
        // retire with its cycles and the PC must park on the store.
        assert_fusion_transparent("li t0, 1\nli t1, 8\nsw t0, 0(t1)\nsw t0, 1(t1)\necall");
        assert_fusion_transparent("li t0, 3\nli t1, 100000\naddi t2, t1, 8\nlw a0, 0(t2)\necall");
    }

    #[test]
    fn fused_run_until_pc_stops_inside_a_block() {
        let program = assemble("li a0, 1\nli a0, 2\nli a0, 3\nli a0, 4\necall").unwrap();
        let mut cpu = Processor::new(ProcessorConfig::elen64(5));
        cpu.load_program(program.instructions());
        // PC 8 is strictly inside the 4-instruction fused block: the
        // fast path must defer to stepping and stop exactly there.
        cpu.run_until_pc(8, 100).unwrap();
        assert_eq!(cpu.pc(), 8);
        assert_eq!(cpu.xreg(XReg::X10), 2);
    }

    #[test]
    fn fused_run_respects_the_cycle_limit() {
        let program = assemble("li a0, 1\nli a0, 2\nli a0, 3\nli a0, 4\necall").unwrap();
        for limit in 0..6 {
            let mut fused = Processor::new(ProcessorConfig::elen64(5));
            let mut stepped = Processor::new(ProcessorConfig::elen64(5));
            stepped.set_fusion(false);
            fused.load_program(program.instructions());
            stepped.load_program(program.instructions());
            let fused_result = fused.run(limit);
            let stepped_result = stepped.run(limit);
            assert_eq!(fused_result, stepped_result, "limit {limit}");
            assert_eq!(fused.cycles(), stepped.cycles(), "limit {limit}");
            assert_eq!(fused.pc(), stepped.pc(), "limit {limit}");
        }
    }

    /// Runs `source` three ways — compiled, interpreted-fused and
    /// stepped — and asserts the observable outcomes are identical.
    /// Returns the compiled processor for extra per-test assertions.
    fn assert_compiled_transparent(source: &str) -> Processor {
        let program = assemble(source).expect("assembles");
        let mut compiled = Processor::new(ProcessorConfig::elen64(10));
        compiled.set_compiled(true);
        let mut fused = Processor::new(ProcessorConfig::elen64(10));
        let mut stepped = Processor::new(ProcessorConfig::elen64(10));
        stepped.set_fusion(false);
        for cpu in [&mut compiled, &mut fused, &mut stepped] {
            cpu.load_program(program.instructions());
        }
        let compiled_result = compiled.run(100_000);
        let fused_result = fused.run(100_000);
        let stepped_result = stepped.run(100_000);
        assert_eq!(compiled_result, stepped_result, "halt/trap outcome");
        assert_eq!(compiled_result, fused_result, "halt/trap outcome (fused)");
        for (label, other) in [("fused", &fused), ("stepped", &stepped)] {
            assert_eq!(compiled.cycles(), other.cycles(), "cycles vs {label}");
            assert_eq!(compiled.retired(), other.retired(), "retired vs {label}");
            assert_eq!(
                compiled.retired_vector(),
                other.retired_vector(),
                "vector retired vs {label}"
            );
            assert_eq!(compiled.pc(), other.pc(), "final PC vs {label}");
            for index in 0..32 {
                let reg = XReg::from_index(index);
                assert_eq!(compiled.xreg(reg), other.xreg(reg), "x{index} vs {label}");
            }
            for index in 0..32 {
                let reg = VReg::from_index(index);
                assert_eq!(
                    compiled.vector_unit().register_bytes(reg),
                    other.vector_unit().register_bytes(reg),
                    "v{index} vs {label}"
                );
            }
            for addr in (0..compiled.dmem().len() as u32).step_by(8) {
                assert_eq!(
                    compiled.dmem().read(addr, 8),
                    other.dmem().read(addr, 8),
                    "dmem at {addr} vs {label}"
                );
            }
        }
        compiled
    }

    #[test]
    fn compiled_is_transparent_for_scalar_loops() {
        let cpu = assert_compiled_transparent(
            "li t0, 0\nli t1, 25\nli a0, 7\nloop:\naddi a0, a0, 3\nslli a1, a0, 1\nxor a2, a1, a0\nsw a2, 128(t0)\nlw a3, 128(t0)\naddi t0, t0, 4\nblt t0, t1, loop\necall",
        );
        assert!(cpu.compiled_dispatches() > 0, "blocks actually compiled");
    }

    #[test]
    fn compiled_is_transparent_for_vector_kernels() {
        let cpu = assert_compiled_transparent(
            "li s1, 10\nvsetvli x0, s1, e64, m1, tu, mu\nli a0, 0\nli a1, 512\nvle64.v v1, (a0)\nvadd.vi v1, v1, 5\nvxor.vv v2, v1, v1\nvse64.v v1, (a1)\nvle64.v v3, (a1)\necall",
        );
        assert!(cpu.compiled_dispatches() > 0, "blocks actually compiled");
    }

    #[test]
    fn compiled_is_transparent_for_custom_keccak_ops() {
        // A θ/ρπ-shaped sequence over one 5-lane state plus a two-round
        // ι loop: slides, rotates, ρ, π and `viota` all inside fused
        // blocks, with `csrr` sampling the counters mid-way.
        let cpu = assert_compiled_transparent(
            "li s1, 10\nvsetvli x0, s1, e64, m1, tu, mu\n\
             li a0, 0\nvle64.v v1, (a0)\n\
             vslidedownm.vi v6, v1, 1\nvslideupm.vi v7, v1, 1\n\
             vrotup.vi v7, v7, 1\nvxor.vv v6, v6, v7\n\
             v64rho.vi v2, v1, 0\nvpi.vi v10, v2, 0\nvrhopi.vi v10, v2, 1\n\
             li s3, 0\nli s4, 2\n\
             round:\nviota.vx v6, v6, s3\ncsrr a2, cycle\ncsrr a3, instret\n\
             addi s3, s3, 1\nblt s3, s4, round\n\
             li a1, 512\nvse64.v v6, (a1)\necall",
        );
        assert!(cpu.compiled_dispatches() > 0, "blocks actually compiled");
    }

    #[test]
    fn compiled_is_transparent_for_mid_block_traps() {
        // Scalar store fault inside a block: exact prefix retirement.
        assert_compiled_transparent("li t0, 1\nli t1, 8\nsw t0, 0(t1)\nsw t0, 1(t1)\necall");
        // Vector load past the end of memory after compiled iterations:
        // the bulk path must defer to the element-serial trap.
        assert_compiled_transparent(
            "li s1, 10\nvsetvli x0, s1, e64, m1, tu, mu\nli a0, 100000\nli a1, 1\nvle64.v v1, (a0)\necall",
        );
        // Misaligned base: same story through the store side.
        assert_compiled_transparent(
            "li s1, 10\nvsetvli x0, s1, e64, m1, tu, mu\nli a0, 4\nli a1, 1\nvse64.v v1, (a0)\necall",
        );
        // `viota` round index outside the ROM traps identically.
        assert_compiled_transparent(
            "li s1, 10\nvsetvli x0, s1, e64, m1, tu, mu\nli a0, 3\nli s3, 99\nviota.vx v1, v1, s3\necall",
        );
    }

    #[test]
    fn compiled_run_until_pc_stops_inside_a_block() {
        let program = assemble("li a0, 1\nli a0, 2\nli a0, 3\nli a0, 4\necall").unwrap();
        let mut cpu = Processor::new(ProcessorConfig::elen64(5));
        cpu.set_compiled(true);
        cpu.load_program(program.instructions());
        cpu.run_until_pc(8, 100).unwrap();
        assert_eq!(cpu.pc(), 8);
        assert_eq!(cpu.xreg(XReg::X10), 2);
    }

    #[test]
    fn compiled_run_respects_the_cycle_limit() {
        let program = assemble(
            "li s1, 10\nvsetvli x0, s1, e64, m1, tu, mu\nvxor.vv v1, v2, v3\nvadd.vi v1, v1, 1\nli a0, 4\necall",
        )
        .unwrap();
        for limit in 0..12 {
            let mut compiled = Processor::new(ProcessorConfig::elen64(10));
            compiled.set_compiled(true);
            let mut stepped = Processor::new(ProcessorConfig::elen64(10));
            stepped.set_fusion(false);
            compiled.load_program(program.instructions());
            stepped.load_program(program.instructions());
            let compiled_result = compiled.run(limit);
            let stepped_result = stepped.run(limit);
            assert_eq!(compiled_result, stepped_result, "limit {limit}");
            assert_eq!(compiled.cycles(), stepped.cycles(), "limit {limit}");
            assert_eq!(compiled.pc(), stepped.pc(), "limit {limit}");
        }
    }

    #[test]
    fn compiled_blocks_recompile_per_configuration() {
        // The same block body runs under VL=10 and then VL=5: the cached
        // lowering must be rejected on configuration change and both
        // passes must match the stepped processor.
        assert_compiled_transparent(
            "li s1, 10\nli s2, 5\nli a0, 0\n\
             vsetvli x0, s1, e64, m1, tu, mu\nvle64.v v1, (a0)\nvadd.vi v1, v1, 1\nvxor.vv v2, v1, v1\n\
             vsetvli x0, s2, e64, m1, tu, mu\nvle64.v v1, (a0)\nvadd.vi v1, v1, 1\nvxor.vv v2, v1, v1\n\
             ecall",
        );
    }

    #[test]
    fn shared_compiled_program_is_reused_across_processors() {
        let program = assemble(
            "li s1, 10\nvsetvli x0, s1, e64, m1, tu, mu\nvadd.vi v1, v1, 3\nvxor.vv v2, v1, v1\necall",
        )
        .unwrap();
        let decoded = Arc::new(DecodedProgram::compile(
            program.instructions(),
            &ProcessorConfig::elen64(10).timing,
        ));
        let shared = Arc::new(CompiledProgram::new(decoded));
        let mut first = Processor::new(ProcessorConfig::elen64(10));
        first.load_compiled(Arc::clone(&shared));
        first.run(1_000).unwrap();
        let after_first = shared.compiled_blocks();
        assert!(after_first > 0, "first processor populated the pool");
        let mut second = Processor::new(ProcessorConfig::elen64(10));
        second.load_compiled(Arc::clone(&shared));
        second.run(1_000).unwrap();
        assert_eq!(
            shared.compiled_blocks(),
            after_first,
            "second processor reused the pool"
        );
        assert_eq!(first.cycles(), second.cycles());
        for index in 0..32 {
            let reg = VReg::from_index(index);
            assert_eq!(
                first.vector_unit().register_bytes(reg),
                second.vector_unit().register_bytes(reg),
            );
        }
    }

    #[test]
    fn lone_vector_instructions_dispatch_compiled() {
        // `vxor` between two branch targets never fuses (runs of one);
        // the compiled tier must still pick it up as a singleton.
        let program = assemble(
            "li s1, 10\nvsetvli x0, s1, e64, m1, tu, mu\nbeq x0, x0, skip\nnop\nskip:\nvxor.vv v1, v2, v3\nbeq x0, x0, done\nnop\ndone:\necall",
        )
        .unwrap();
        let mut cpu = Processor::new(ProcessorConfig::elen64(10));
        cpu.set_compiled(true);
        cpu.load_program(program.instructions());
        cpu.run(1_000).unwrap();
        assert!(
            cpu.compiled_dispatches() > 0,
            "singleton vector op went through the compiled tier"
        );
    }

    #[test]
    fn trace_records_when_enabled() {
        let program = assemble("nop\necall").unwrap();
        let mut cpu = Processor::new(ProcessorConfig::elen64(5).with_trace());
        cpu.load_program(program.instructions());
        cpu.run(100).unwrap();
        assert_eq!(cpu.tracer().entries().len(), 2);
    }
}
