//! Compile-once program representation: timing classes and branch
//! targets resolved at load time.
//!
//! [`Processor::step`](crate::Processor::step) used to re-derive the
//! cycle cost of every instruction on every fetch by pattern-matching the
//! whole [`Instruction`] tree against the [`TimingModel`], and to
//! recompute branch-target PCs from the instruction's signed offset each
//! time the branch retired. Both are loop-invariant: the cost depends
//! only on the instruction and the (static) model — plus two runtime
//! scalars, the taken/not-taken direction and the active-group count —
//! and the target of a direct branch depends only on the instruction's
//! address. [`DecodedProgram`] hoists that work into a single pass at
//! program-load time, so the dispatch loop touches a flat, `Copy` record
//! per instruction.
//!
//! The resolution is exact: for every instruction and every runtime
//! context, [`TimingClass::cost`] returns the same number of cycles as
//! [`TimingModel::cost`] (there is a property test pinning this), so
//! pre-decoding cannot change any paper metric.

use crate::timing::{TimingContext, TimingModel};
use krv_isa::{CustomOp, Instruction, MemMode, OpKind};

/// The cycle-cost shape of one instruction, resolved against a
/// [`TimingModel`] at load time.
///
/// Only the runtime-dependent parts of the cost remain symbolic: the
/// branch direction, the active register-group count, and VL.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimingClass {
    /// Cost fully known at decode time (scalar ALU, memory, system…).
    Fixed(u64),
    /// Conditional branch: cost picked by the taken direction.
    Branch {
        /// Cost when the branch is taken.
        taken: u64,
        /// Cost when it falls through.
        not_taken: u64,
    },
    /// Vector instruction costing `issue + active_groups`.
    VectorGroups {
        /// Issue overhead added to the group count.
        issue: u64,
    },
    /// Unit-stride vector memory op: `1 + per_group × active_groups`.
    VmemUnit {
        /// Per-group transfer cost.
        per_group: u64,
    },
    /// Element-serial (strided/indexed) vector memory op:
    /// `1 + per_elem × VL`.
    VmemElem {
        /// Per-element transfer cost.
        per_elem: u64,
    },
}

impl TimingClass {
    /// Resolves the cost shape of `instr` under `model`.
    ///
    /// Mirrors [`TimingModel::cost`] case for case; the two are kept in
    /// lockstep by the `classes_agree_with_model` property test.
    pub fn classify(model: &TimingModel, instr: &Instruction) -> Self {
        match instr {
            Instruction::Lui { .. }
            | Instruction::Auipc { .. }
            | Instruction::OpImm { .. }
            | Instruction::Csrr { .. } => TimingClass::Fixed(model.scalar_alu),
            Instruction::Jal { .. } | Instruction::Jalr { .. } => TimingClass::Fixed(model.jump),
            Instruction::Branch { .. } => TimingClass::Branch {
                taken: model.branch_taken,
                not_taken: model.branch_not_taken,
            },
            Instruction::Load { .. } | Instruction::Store { .. } => {
                TimingClass::Fixed(model.scalar_mem)
            }
            Instruction::Op { kind, .. } => match kind {
                OpKind::Mul | OpKind::Mulh | OpKind::Mulhsu | OpKind::Mulhu => {
                    TimingClass::Fixed(model.mul)
                }
                OpKind::Div | OpKind::Divu | OpKind::Rem | OpKind::Remu => {
                    TimingClass::Fixed(model.div)
                }
                _ => TimingClass::Fixed(model.scalar_alu),
            },
            Instruction::Ecall | Instruction::Ebreak => TimingClass::Fixed(model.system),
            Instruction::Vsetvli { .. } => TimingClass::Fixed(model.vsetvli),
            Instruction::VLoad { mode, .. } | Instruction::VStore { mode, .. } => match mode {
                MemMode::UnitStride => TimingClass::VmemUnit {
                    per_group: model.vmem_unit_per_group,
                },
                MemMode::Strided(_) | MemMode::Indexed(_) => TimingClass::VmemElem {
                    per_elem: model.vmem_elem,
                },
            },
            Instruction::VArith { .. }
            | Instruction::VmvXs { .. }
            | Instruction::VmvSx { .. }
            | Instruction::Vid { .. } => TimingClass::VectorGroups {
                issue: model.vector_issue,
            },
            Instruction::Custom(op) => TimingClass::VectorGroups {
                issue: if matches!(op, CustomOp::Vpi { .. } | CustomOp::Vrhopi { .. }) {
                    model.vpi_issue
                } else {
                    model.vector_issue
                },
            },
        }
    }

    /// The cycle cost under the runtime context.
    #[inline]
    pub fn cost(self, ctx: TimingContext) -> u64 {
        match self {
            TimingClass::Fixed(cycles) => cycles,
            TimingClass::Branch { taken, not_taken } => {
                if ctx.branch_taken {
                    taken
                } else {
                    not_taken
                }
            }
            TimingClass::VectorGroups { issue } => issue + ctx.active_groups as u64,
            TimingClass::VmemUnit { per_group } => 1 + per_group * ctx.active_groups as u64,
            TimingClass::VmemElem { per_elem } => 1 + per_elem * ctx.vl as u64,
        }
    }
}

/// One pre-decoded instruction slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodedInstr {
    /// The architectural instruction (still needed by the executors).
    pub instr: Instruction,
    /// Load-time-resolved cost shape.
    pub timing: TimingClass,
    /// Absolute target PC of a direct control transfer (`jal`,
    /// conditional branches); unused for everything else.
    pub target: u32,
    /// Whether the instruction retires on the vector unit.
    pub is_vector: bool,
}

/// A program compiled once against a [`TimingModel`]: every slot holds
/// the instruction plus its resolved timing class and branch target.
///
/// A `DecodedProgram` is immutable and can be shared (via
/// [`std::sync::Arc`]) between any number of processors configured with
/// the same timing model — the engine pool in `krv-core` decodes each
/// kernel once and hands the same program to every worker.
#[derive(Debug, Clone, PartialEq)]
pub struct DecodedProgram {
    slots: Vec<DecodedInstr>,
    timing: TimingModel,
}

impl DecodedProgram {
    /// Pre-decodes `instructions` against `timing`.
    pub fn compile(instructions: &[Instruction], timing: &TimingModel) -> Self {
        let slots = instructions
            .iter()
            .enumerate()
            .map(|(index, &instr)| {
                let pc = (index as u32) * 4;
                let target = match instr {
                    Instruction::Jal { offset, .. } | Instruction::Branch { offset, .. } => {
                        pc.wrapping_add(offset as u32)
                    }
                    _ => 0,
                };
                DecodedInstr {
                    instr,
                    timing: TimingClass::classify(timing, &instr),
                    target,
                    is_vector: instr.is_vector(),
                }
            })
            .collect();
        Self {
            slots,
            timing: timing.clone(),
        }
    }

    /// The timing model the program was compiled against.
    pub fn timing(&self) -> &TimingModel {
        &self.timing
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the program is empty.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// The slot at `index`, if in range.
    #[inline]
    pub fn get(&self, index: usize) -> Option<&DecodedInstr> {
        self.slots.get(index)
    }

    /// The architectural instructions (e.g. for disassembly).
    pub fn instructions(&self) -> Vec<Instruction> {
        self.slots.iter().map(|slot| slot.instr).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use krv_isa::{BranchKind, RhoRow, VArithOp, VReg, VSource, XReg};

    fn contexts() -> Vec<TimingContext> {
        let mut out = Vec::new();
        for branch_taken in [false, true] {
            for active_groups in [1u32, 2, 5, 8] {
                for vl in [0u32, 1, 10, 50] {
                    out.push(TimingContext {
                        branch_taken,
                        active_groups,
                        vl,
                    });
                }
            }
        }
        out
    }

    fn exemplars() -> Vec<Instruction> {
        let v = VReg::from_index;
        vec![
            Instruction::Lui {
                rd: XReg::X5,
                imm: 0x1000,
            },
            Instruction::Jal {
                rd: XReg::X1,
                offset: 8,
            },
            Instruction::Jalr {
                rd: XReg::X1,
                rs1: XReg::X2,
                offset: 0,
            },
            Instruction::Branch {
                kind: BranchKind::Blt,
                rs1: XReg::X19,
                rs2: XReg::X20,
                offset: -8,
            },
            Instruction::Load {
                kind: krv_isa::LoadKind::Lw,
                rd: XReg::X5,
                rs1: XReg::X6,
                offset: 4,
            },
            Instruction::Op {
                kind: OpKind::Mul,
                rd: XReg::X5,
                rs1: XReg::X6,
                rs2: XReg::X7,
            },
            Instruction::Op {
                kind: OpKind::Divu,
                rd: XReg::X5,
                rs1: XReg::X6,
                rs2: XReg::X7,
            },
            Instruction::Ecall,
            Instruction::Vsetvli {
                rd: XReg::X0,
                rs1: XReg::X9,
                vtype: krv_isa::Vtype::new(krv_isa::Sew::E64, krv_isa::Lmul::M1),
            },
            Instruction::VLoad {
                eew: krv_isa::Sew::E64,
                vd: v(1),
                rs1: XReg::X10,
                mode: MemMode::UnitStride,
                vm: true,
            },
            Instruction::VLoad {
                eew: krv_isa::Sew::E64,
                vd: v(1),
                rs1: XReg::X10,
                mode: MemMode::Indexed(v(2)),
                vm: true,
            },
            Instruction::VStore {
                eew: krv_isa::Sew::E64,
                vs3: v(1),
                rs1: XReg::X10,
                mode: MemMode::Strided(XReg::X11),
                vm: true,
            },
            Instruction::varith(VArithOp::Xor, v(5), v(3), VSource::Vector(v(4))),
            Instruction::Custom(CustomOp::Vpi {
                vd: v(5),
                vs2: v(0),
                row: RhoRow::Row(0),
                vm: true,
            }),
            Instruction::Custom(CustomOp::V64rho {
                vd: v(0),
                vs2: v(0),
                row: RhoRow::All,
                vm: true,
            }),
        ]
    }

    #[test]
    fn classes_agree_with_model() {
        for model in [TimingModel::paper(), TimingModel::unit()] {
            for instr in exemplars() {
                let class = TimingClass::classify(&model, &instr);
                for ctx in contexts() {
                    assert_eq!(
                        class.cost(ctx),
                        model.cost(&instr, ctx),
                        "{instr} under {ctx:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn branch_targets_are_pre_resolved() {
        let program = DecodedProgram::compile(
            &[
                Instruction::nop(),
                Instruction::Branch {
                    kind: BranchKind::Bne,
                    rs1: XReg::X1,
                    rs2: XReg::X2,
                    offset: -4,
                },
                Instruction::Jal {
                    rd: XReg::X0,
                    offset: 8,
                },
            ],
            &TimingModel::paper(),
        );
        assert_eq!(program.get(1).unwrap().target, 0, "4 + (-4)");
        assert_eq!(program.get(2).unwrap().target, 16, "8 + 8");
    }

    #[test]
    fn round_trips_instructions() {
        let instrs = exemplars();
        let program = DecodedProgram::compile(&instrs, &TimingModel::paper());
        assert_eq!(program.instructions(), instrs);
        assert_eq!(program.len(), instrs.len());
        assert!(!program.is_empty());
    }
}
