//! Compile-once program representation: timing classes and branch
//! targets resolved at load time.
//!
//! [`Processor::step`](crate::Processor::step) used to re-derive the
//! cycle cost of every instruction on every fetch by pattern-matching the
//! whole [`Instruction`] tree against the [`TimingModel`], and to
//! recompute branch-target PCs from the instruction's signed offset each
//! time the branch retired. Both are loop-invariant: the cost depends
//! only on the instruction and the (static) model — plus two runtime
//! scalars, the taken/not-taken direction and the active-group count —
//! and the target of a direct branch depends only on the instruction's
//! address. [`DecodedProgram`] hoists that work into a single pass at
//! program-load time, so the dispatch loop touches a flat, `Copy` record
//! per instruction.
//!
//! The resolution is exact: for every instruction and every runtime
//! context, [`TimingClass::cost`] returns the same number of cycles as
//! [`TimingModel::cost`] (there is a property test pinning this), so
//! pre-decoding cannot change any paper metric.

use crate::timing::{TimingContext, TimingModel};
use krv_isa::{CustomOp, Instruction, MemMode, OpKind};

/// The cycle-cost shape of one instruction, resolved against a
/// [`TimingModel`] at load time.
///
/// Only the runtime-dependent parts of the cost remain symbolic: the
/// branch direction, the active register-group count, and VL.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimingClass {
    /// Cost fully known at decode time (scalar ALU, memory, system…).
    Fixed(u64),
    /// Conditional branch: cost picked by the taken direction.
    Branch {
        /// Cost when the branch is taken.
        taken: u64,
        /// Cost when it falls through.
        not_taken: u64,
    },
    /// Vector instruction costing `issue + active_groups`.
    VectorGroups {
        /// Issue overhead added to the group count.
        issue: u64,
    },
    /// Unit-stride vector memory op: `1 + per_group × active_groups`.
    VmemUnit {
        /// Per-group transfer cost.
        per_group: u64,
    },
    /// Element-serial (strided/indexed) vector memory op:
    /// `1 + per_elem × VL`.
    VmemElem {
        /// Per-element transfer cost.
        per_elem: u64,
    },
}

impl TimingClass {
    /// Resolves the cost shape of `instr` under `model`.
    ///
    /// Mirrors [`TimingModel::cost`] case for case; the two are kept in
    /// lockstep by the `classes_agree_with_model` property test.
    pub fn classify(model: &TimingModel, instr: &Instruction) -> Self {
        match instr {
            Instruction::Lui { .. }
            | Instruction::Auipc { .. }
            | Instruction::OpImm { .. }
            | Instruction::Csrr { .. } => TimingClass::Fixed(model.scalar_alu),
            Instruction::Jal { .. } | Instruction::Jalr { .. } => TimingClass::Fixed(model.jump),
            Instruction::Branch { .. } => TimingClass::Branch {
                taken: model.branch_taken,
                not_taken: model.branch_not_taken,
            },
            Instruction::Load { .. } | Instruction::Store { .. } => {
                TimingClass::Fixed(model.scalar_mem)
            }
            Instruction::Op { kind, .. } => match kind {
                OpKind::Mul | OpKind::Mulh | OpKind::Mulhsu | OpKind::Mulhu => {
                    TimingClass::Fixed(model.mul)
                }
                OpKind::Div | OpKind::Divu | OpKind::Rem | OpKind::Remu => {
                    TimingClass::Fixed(model.div)
                }
                _ => TimingClass::Fixed(model.scalar_alu),
            },
            Instruction::Ecall | Instruction::Ebreak => TimingClass::Fixed(model.system),
            Instruction::Vsetvli { .. } => TimingClass::Fixed(model.vsetvli),
            Instruction::VLoad { mode, .. } | Instruction::VStore { mode, .. } => match mode {
                MemMode::UnitStride => TimingClass::VmemUnit {
                    per_group: model.vmem_unit_per_group,
                },
                MemMode::Strided(_) | MemMode::Indexed(_) => TimingClass::VmemElem {
                    per_elem: model.vmem_elem,
                },
            },
            Instruction::VArith { .. }
            | Instruction::VmvXs { .. }
            | Instruction::VmvSx { .. }
            | Instruction::Vid { .. } => TimingClass::VectorGroups {
                issue: model.vector_issue,
            },
            Instruction::Custom(op) => TimingClass::VectorGroups {
                issue: if matches!(op, CustomOp::Vpi { .. } | CustomOp::Vrhopi { .. }) {
                    model.vpi_issue
                } else {
                    model.vector_issue
                },
            },
        }
    }

    /// The cycle cost under the runtime context.
    #[inline]
    pub fn cost(self, ctx: TimingContext) -> u64 {
        match self {
            TimingClass::Fixed(cycles) => cycles,
            TimingClass::Branch { taken, not_taken } => {
                if ctx.branch_taken {
                    taken
                } else {
                    not_taken
                }
            }
            TimingClass::VectorGroups { issue } => issue + ctx.active_groups as u64,
            TimingClass::VmemUnit { per_group } => 1 + per_group * ctx.active_groups as u64,
            TimingClass::VmemElem { per_elem } => 1 + per_elem * ctx.vl as u64,
        }
    }
}

/// One pre-decoded instruction slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodedInstr {
    /// The architectural instruction (still needed by the executors).
    pub instr: Instruction,
    /// Load-time-resolved cost shape.
    pub timing: TimingClass,
    /// Absolute target PC of a direct control transfer (`jal`,
    /// conditional branches); unused for everything else.
    pub target: u32,
    /// Whether the instruction retires on the vector unit.
    pub is_vector: bool,
}

/// A fused macro-op: a maximal straight-line run of non-control
/// instructions, compiled at load time so the dispatch loop can execute
/// it without per-instruction fetch checks, halt checks or group-count
/// divisions.
///
/// Blocks never contain control transfers, `ecall`/`ebreak` or
/// `vsetvli`, so VL and the active-group count are constant across the
/// whole block and its cycle cost is an *exact* linear form
/// `fixed + group_mult × groups + vl_mult × VL` — the same sum the
/// per-instruction path would accumulate, just evaluated in one step.
/// Blocks also never span a static branch or `jal` target, so every
/// architecturally reachable entry point of the program starts either a
/// block or an unfused instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FusedBlock {
    /// One past the last slot index of the block.
    pub end: u32,
    /// Cycle cost independent of the vector configuration.
    pub fixed: u64,
    /// Cycles proportional to the active register-group count.
    pub group_mult: u64,
    /// Cycles proportional to VL (element-serial vector memory ops).
    pub vl_mult: u64,
}

impl FusedBlock {
    /// The exact cycle cost of the whole block under the (block-constant)
    /// vector configuration.
    #[inline]
    pub fn cost(&self, groups: u32, vl: u32) -> u64 {
        self.fixed + self.group_mult * groups as u64 + self.vl_mult * vl as u64
    }
}

/// Whether an instruction may join a fused block: anything that cannot
/// redirect the PC, halt the core or change the vector configuration.
fn fusible(instr: &Instruction) -> bool {
    !matches!(
        instr,
        Instruction::Jal { .. }
            | Instruction::Jalr { .. }
            | Instruction::Branch { .. }
            | Instruction::Ecall
            | Instruction::Ebreak
            | Instruction::Vsetvli { .. }
    )
}

/// The load-time fusion pass: splits the program at control transfers,
/// `vsetvli` and static branch/`jal` targets, and records every
/// resulting straight-line run of two or more instructions as a
/// [`FusedBlock`] anchored at its first slot.
fn fuse(slots: &[DecodedInstr]) -> Vec<Option<FusedBlock>> {
    // Static control-flow targets must start their own block: a loop
    // back-edge lands on its header every iteration, and a block
    // spanning the header would be unreachable from the branch.
    let mut leader = vec![false; slots.len()];
    for slot in slots {
        if matches!(
            slot.instr,
            Instruction::Jal { .. } | Instruction::Branch { .. }
        ) && slot.target.is_multiple_of(4)
        {
            let index = (slot.target / 4) as usize;
            if index < slots.len() {
                leader[index] = true;
            }
        }
    }
    let mut blocks = vec![None; slots.len()];
    let mut start = 0;
    while start < slots.len() {
        if !fusible(&slots[start].instr) {
            start += 1;
            continue;
        }
        let mut end = start + 1;
        while end < slots.len() && fusible(&slots[end].instr) && !leader[end] {
            end += 1;
        }
        // Single-instruction runs gain nothing from fusion.
        if end - start >= 2 {
            let mut block = FusedBlock {
                end: end as u32,
                fixed: 0,
                group_mult: 0,
                vl_mult: 0,
            };
            for slot in &slots[start..end] {
                match slot.timing {
                    TimingClass::Fixed(cycles) => block.fixed += cycles,
                    TimingClass::VectorGroups { issue } => {
                        block.fixed += issue;
                        block.group_mult += 1;
                    }
                    TimingClass::VmemUnit { per_group } => {
                        block.fixed += 1;
                        block.group_mult += per_group;
                    }
                    TimingClass::VmemElem { per_elem } => {
                        block.fixed += 1;
                        block.vl_mult += per_elem;
                    }
                    TimingClass::Branch { .. } => {
                        unreachable!("branches are never fusible")
                    }
                }
            }
            blocks[start] = Some(block);
        }
        start = end;
    }
    blocks
}

/// A program compiled once against a [`TimingModel`]: every slot holds
/// the instruction plus its resolved timing class and branch target.
///
/// A `DecodedProgram` is immutable and can be shared (via
/// [`std::sync::Arc`]) between any number of processors configured with
/// the same timing model — the engine pool in `krv-core` decodes each
/// kernel once and hands the same program to every worker.
#[derive(Debug, Clone, PartialEq)]
pub struct DecodedProgram {
    slots: Vec<DecodedInstr>,
    blocks: Vec<Option<FusedBlock>>,
    timing: TimingModel,
}

impl DecodedProgram {
    /// Pre-decodes `instructions` against `timing`.
    pub fn compile(instructions: &[Instruction], timing: &TimingModel) -> Self {
        let slots = instructions
            .iter()
            .enumerate()
            .map(|(index, &instr)| {
                let pc = (index as u32) * 4;
                let target = match instr {
                    Instruction::Jal { offset, .. } | Instruction::Branch { offset, .. } => {
                        pc.wrapping_add(offset as u32)
                    }
                    _ => 0,
                };
                DecodedInstr {
                    instr,
                    timing: TimingClass::classify(timing, &instr),
                    target,
                    is_vector: instr.is_vector(),
                }
            })
            .collect::<Vec<_>>();
        let blocks = fuse(&slots);
        Self {
            slots,
            blocks,
            timing: timing.clone(),
        }
    }

    /// The timing model the program was compiled against.
    pub fn timing(&self) -> &TimingModel {
        &self.timing
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the program is empty.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// The slot at `index`, if in range.
    #[inline]
    pub fn get(&self, index: usize) -> Option<&DecodedInstr> {
        self.slots.get(index)
    }

    /// The fused block anchored at slot `index`, if any.
    #[inline]
    pub fn fused_block_at(&self, index: usize) -> Option<FusedBlock> {
        *self.blocks.get(index)?
    }

    /// Number of fused blocks in the program (diagnostics).
    pub fn fused_blocks(&self) -> usize {
        self.blocks.iter().flatten().count()
    }

    /// The architectural instructions (e.g. for disassembly).
    pub fn instructions(&self) -> Vec<Instruction> {
        self.slots.iter().map(|slot| slot.instr).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use krv_isa::{BranchKind, RhoRow, VArithOp, VReg, VSource, XReg};

    fn contexts() -> Vec<TimingContext> {
        let mut out = Vec::new();
        for branch_taken in [false, true] {
            for active_groups in [1u32, 2, 5, 8] {
                for vl in [0u32, 1, 10, 50] {
                    out.push(TimingContext {
                        branch_taken,
                        active_groups,
                        vl,
                    });
                }
            }
        }
        out
    }

    fn exemplars() -> Vec<Instruction> {
        let v = VReg::from_index;
        vec![
            Instruction::Lui {
                rd: XReg::X5,
                imm: 0x1000,
            },
            Instruction::Jal {
                rd: XReg::X1,
                offset: 8,
            },
            Instruction::Jalr {
                rd: XReg::X1,
                rs1: XReg::X2,
                offset: 0,
            },
            Instruction::Branch {
                kind: BranchKind::Blt,
                rs1: XReg::X19,
                rs2: XReg::X20,
                offset: -8,
            },
            Instruction::Load {
                kind: krv_isa::LoadKind::Lw,
                rd: XReg::X5,
                rs1: XReg::X6,
                offset: 4,
            },
            Instruction::Op {
                kind: OpKind::Mul,
                rd: XReg::X5,
                rs1: XReg::X6,
                rs2: XReg::X7,
            },
            Instruction::Op {
                kind: OpKind::Divu,
                rd: XReg::X5,
                rs1: XReg::X6,
                rs2: XReg::X7,
            },
            Instruction::Ecall,
            Instruction::Vsetvli {
                rd: XReg::X0,
                rs1: XReg::X9,
                vtype: krv_isa::Vtype::new(krv_isa::Sew::E64, krv_isa::Lmul::M1),
            },
            Instruction::VLoad {
                eew: krv_isa::Sew::E64,
                vd: v(1),
                rs1: XReg::X10,
                mode: MemMode::UnitStride,
                vm: true,
            },
            Instruction::VLoad {
                eew: krv_isa::Sew::E64,
                vd: v(1),
                rs1: XReg::X10,
                mode: MemMode::Indexed(v(2)),
                vm: true,
            },
            Instruction::VStore {
                eew: krv_isa::Sew::E64,
                vs3: v(1),
                rs1: XReg::X10,
                mode: MemMode::Strided(XReg::X11),
                vm: true,
            },
            Instruction::varith(VArithOp::Xor, v(5), v(3), VSource::Vector(v(4))),
            Instruction::Custom(CustomOp::Vpi {
                vd: v(5),
                vs2: v(0),
                row: RhoRow::Row(0),
                vm: true,
            }),
            Instruction::Custom(CustomOp::V64rho {
                vd: v(0),
                vs2: v(0),
                row: RhoRow::All,
                vm: true,
            }),
        ]
    }

    #[test]
    fn classes_agree_with_model() {
        for model in [TimingModel::paper(), TimingModel::unit()] {
            for instr in exemplars() {
                let class = TimingClass::classify(&model, &instr);
                for ctx in contexts() {
                    assert_eq!(
                        class.cost(ctx),
                        model.cost(&instr, ctx),
                        "{instr} under {ctx:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn branch_targets_are_pre_resolved() {
        let program = DecodedProgram::compile(
            &[
                Instruction::nop(),
                Instruction::Branch {
                    kind: BranchKind::Bne,
                    rs1: XReg::X1,
                    rs2: XReg::X2,
                    offset: -4,
                },
                Instruction::Jal {
                    rd: XReg::X0,
                    offset: 8,
                },
            ],
            &TimingModel::paper(),
        );
        assert_eq!(program.get(1).unwrap().target, 0, "4 + (-4)");
        assert_eq!(program.get(2).unwrap().target, 16, "8 + 8");
    }

    #[test]
    fn fusion_splits_at_control_flow_and_targets() {
        // 0: addi   ─┐ block (2 instrs, ends at branch target)
        // 1: addi   ─┘
        // 2: addi   ─┐ block (loop body, starts at the back-edge target)
        // 3: addi   ─┘
        // 4: branch → 2
        // 5: addi     single instruction: no block
        // 6: ecall
        let addi = Instruction::addi(XReg::X5, XReg::X5, 1);
        let program = DecodedProgram::compile(
            &[
                addi,
                addi,
                addi,
                addi,
                Instruction::Branch {
                    kind: BranchKind::Bne,
                    rs1: XReg::X5,
                    rs2: XReg::X6,
                    offset: -8,
                },
                addi,
                Instruction::Ecall,
            ],
            &TimingModel::paper(),
        );
        let head = program.fused_block_at(0).expect("head block");
        assert_eq!(head.end, 2, "must not span the branch target at slot 2");
        let body = program.fused_block_at(2).expect("loop body block");
        assert_eq!(body.end, 4, "must stop before the branch");
        assert!(program.fused_block_at(1).is_none(), "mid-block, no anchor");
        assert!(program.fused_block_at(4).is_none(), "branches never fuse");
        assert!(
            program.fused_block_at(5).is_none(),
            "single-instruction runs gain nothing"
        );
        assert_eq!(program.fused_blocks(), 2);
    }

    #[test]
    fn fused_block_cost_is_the_exact_member_sum() {
        let v = VReg::from_index;
        let instrs = [
            Instruction::addi(XReg::X5, XReg::X5, 1),
            Instruction::varith(VArithOp::Xor, v(8), v(8), VSource::Vector(v(16))),
            Instruction::VLoad {
                eew: krv_isa::Sew::E64,
                vd: v(1),
                rs1: XReg::X10,
                mode: MemMode::UnitStride,
                vm: true,
            },
            Instruction::VStore {
                eew: krv_isa::Sew::E64,
                vs3: v(1),
                rs1: XReg::X10,
                mode: MemMode::Strided(XReg::X11),
                vm: true,
            },
        ];
        let model = TimingModel::paper();
        let program = DecodedProgram::compile(&instrs, &model);
        let block = program.fused_block_at(0).expect("whole program fuses");
        assert_eq!(block.end, 4);
        for ctx in contexts() {
            let member_sum: u64 = instrs.iter().map(|i| model.cost(i, ctx)).sum();
            assert_eq!(
                block.cost(ctx.active_groups, ctx.vl),
                member_sum,
                "under {ctx:?}"
            );
        }
    }

    #[test]
    fn round_trips_instructions() {
        let instrs = exemplars();
        let program = DecodedProgram::compile(&instrs, &TimingModel::paper());
        assert_eq!(program.instructions(), instrs);
        assert_eq!(program.len(), instrs.len());
        assert!(!program.is_empty());
    }
}
