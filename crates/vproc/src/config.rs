//! Processor configuration: the paper's architecture parameters.

use crate::timing::TimingModel;

/// The vector element width (ELEN) of the processor build.
///
/// The paper evaluates two builds of the same SIMD processor: a 64-bit
/// architecture (`ELEN = 64`, §3.1) and a 32-bit architecture
/// (`ELEN = 32`, §3.2). The scalar core is 32-bit in both.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Elen {
    /// 32-bit vector elements (the paper's 32-bit architecture).
    Bits32,
    /// 64-bit vector elements (the paper's 64-bit architecture).
    Bits64,
}

impl Elen {
    /// Element width in bits.
    pub const fn bits(self) -> u32 {
        match self {
            Elen::Bits32 => 32,
            Elen::Bits64 => 64,
        }
    }

    /// Element width in bytes.
    pub const fn bytes(self) -> u32 {
        self.bits() / 8
    }
}

/// Static configuration of a simulated processor instance.
///
/// # Example
///
/// ```
/// use krv_vproc::ProcessorConfig;
///
/// // The paper's largest 64-bit configuration: EleNum = 30, 6 states.
/// let config = ProcessorConfig::elen64(30).with_dmem_bytes(1 << 20);
/// assert_eq!(config.vlen_bits(), 30 * 64);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ProcessorConfig {
    /// Vector element width.
    pub elen: Elen,
    /// Number of ELEN-wide elements per vector register (the paper's
    /// `EleNum`; 5 × SN for SN parallel Keccak states).
    pub elenum: usize,
    /// Data memory size in bytes.
    pub dmem_bytes: usize,
    /// Timing model (defaults to the paper-calibrated model).
    pub timing: TimingModel,
    /// Whether to record an execution trace.
    pub trace: bool,
}

impl ProcessorConfig {
    /// A 64-bit architecture with the given `EleNum`.
    ///
    /// # Panics
    ///
    /// Panics if `elenum` is zero.
    pub fn elen64(elenum: usize) -> Self {
        Self::new(Elen::Bits64, elenum)
    }

    /// A 32-bit architecture with the given `EleNum`.
    ///
    /// # Panics
    ///
    /// Panics if `elenum` is zero.
    pub fn elen32(elenum: usize) -> Self {
        Self::new(Elen::Bits32, elenum)
    }

    /// Creates a configuration with default memory size and timing.
    ///
    /// # Panics
    ///
    /// Panics if `elenum` is zero.
    pub fn new(elen: Elen, elenum: usize) -> Self {
        assert!(elenum > 0, "EleNum must be at least 1");
        Self {
            elen,
            elenum,
            dmem_bytes: 64 * 1024,
            timing: TimingModel::paper(),
            trace: false,
        }
    }

    /// Sets the data memory size.
    pub fn with_dmem_bytes(mut self, bytes: usize) -> Self {
        self.dmem_bytes = bytes;
        self
    }

    /// Replaces the timing model.
    pub fn with_timing(mut self, timing: TimingModel) -> Self {
        self.timing = timing;
        self
    }

    /// Enables execution tracing.
    pub fn with_trace(mut self) -> Self {
        self.trace = true;
        self
    }

    /// The vector register length in bits (`VLEN = EleNum × ELEN`).
    pub fn vlen_bits(&self) -> usize {
        self.elenum * self.elen.bits() as usize
    }

    /// The number of Keccak states the register file can hold
    /// (`SN = EleNum / 5`).
    pub fn keccak_states(&self) -> usize {
        self.elenum / 5
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_configurations() {
        for (elenum, states) in [(5, 1), (15, 3), (30, 6)] {
            let cfg = ProcessorConfig::elen64(elenum);
            assert_eq!(cfg.keccak_states(), states);
            assert_eq!(cfg.vlen_bits(), elenum * 64);
        }
        let cfg32 = ProcessorConfig::elen32(30);
        assert_eq!(cfg32.vlen_bits(), 960);
        assert_eq!(cfg32.keccak_states(), 6);
    }

    #[test]
    #[should_panic(expected = "EleNum must be at least 1")]
    fn zero_elenum_rejected() {
        let _ = ProcessorConfig::elen64(0);
    }
}
